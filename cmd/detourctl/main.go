// Command detourctl plans and executes one upload: direct, via a named
// DTN, or via the automatic probe-based selector — the workflow a user
// of the paper's system would run.
//
// Usage:
//
//	detourctl [-from ubc-pl] [-provider GoogleDrive|Dropbox|OneDrive]
//	          [-size 100] [-via auto|direct|ualberta|umich-pl]
//	          [-pipelined] [-seed N] [-drain dtn] [-multipath]
//
// With -drain, the named DTN's agent is put into drain before the
// transfer plans: it refuses new relay work (an upload routed at it
// fails fast with a "draining" error; the auto selector routes around
// it) while transfers already holding a session there run to
// completion — the operator workflow for taking a DTN out of service
// during routing churn without stranding in-flight work.
//
// With -multipath, the upload is striped across all usable lanes at
// once — the direct route plus every in-service DTN detour — instead of
// picking one. The tool prints the per-path progress timeline (every
// chunk dispatch, completion, failure, and drain, tagged with its path
// and chunk IDs) followed by the per-path report: which chunks each
// lane carried, its committed bytes and rate, and the transfer's
// fairness index. -via is ignored in this mode; -drain still excludes
// the named DTN's lane.
//
// With -journal, the tool instead dumps a control-journal file: the
// record census, any torn tail the replay truncated, and the folded
// state a restarted scheduler would recover — finished jobs, pending
// jobs with their checkpoints and idempotent attempt IDs, spent retry
// tokens, held cap slots. Point it at the file a `detourd`-style
// deployment (or sched.RunCrashsafe with JournalPath) writes. Transfer
// flags are ignored in this mode.
//
// With -health, the tool instead replays the gray-failure schedule with
// the health stack armed and prints the operator's view of it: the
// per-entity health table (learned baseline rates, probation state,
// stall counts), the probation/re-admission transition log, and the
// per-provider retry-budget ledgers. Transfer flags are ignored in
// this mode.
//
// With -capacity, the tool instead replays the storage-exhaustion
// schedule with the mitigation stack armed and prints the operator's
// storage view: each DTN's staging-disk accounting (capacity, used,
// headroom, evictions, orphan sweeps), each provider's quota ledger
// (committed, pending session bytes, sessions reclaimed), and the
// scheduler's quota-mitigation counters. Transfer flags are ignored in
// this mode.
//
// With -dash, the tool instead replays the instrumented flash crowd
// (see internal/sched.RunTelemetry) and prints the operator's terminal
// dashboard: headline delivery and churn counters, every sampled time
// series as a sparkline with min/max/last, and a one-line summary of
// each failed job's flight-recorder trace. Transfer flags are ignored
// in this mode.
package main

import (
	"flag"
	"fmt"
	"os"

	"detournet/internal/core"
	"detournet/internal/detourselect"
	"detournet/internal/fileutil"
	"detournet/internal/multipath"
	"detournet/internal/scenario"
	"detournet/internal/sched"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
)

func main() {
	var (
		from      = flag.String("from", scenario.UBC, "client host")
		provider  = flag.String("provider", scenario.GoogleDrive, "cloud-storage provider")
		sizeMB    = flag.Int("size", 100, "file size in MB")
		via       = flag.String("via", "auto", "route: auto, direct, or a DTN host")
		pipelined = flag.Bool("pipelined", false, "use the pipelined relay (detours only)")
		seed      = flag.Int64("seed", 2015, "world seed")
		traceOut  = flag.String("trace", "", "write the transfer trace as JSON lines to this file")
		drain     = flag.String("drain", "", "put this DTN's agent into drain before planning")
		mpath     = flag.Bool("multipath", false, "stripe the upload across direct + all in-service detours and show per-path progress")
		healthTab = flag.Bool("health", false, "replay the gray-failure schedule with the health stack and print the health table")
		capTab    = flag.Bool("capacity", false, "replay the storage-exhaustion schedule with the mitigation stack and print the staging/quota tables")
		jdump     = flag.String("journal", "", "dump this control-journal file (records, torn tail, recovered state) and exit")
		dash      = flag.Bool("dash", false, "replay the instrumented flash crowd and print the telemetry dashboard")
	)
	flag.Parse()

	if *dash {
		o := sched.RunTelemetry(sched.TelemetryOptions{Seed: *seed})
		sched.WriteTelemetryDash(os.Stdout, o)
		return
	}

	if *jdump != "" {
		if err := sched.WriteJournalDump(os.Stdout, *jdump); err != nil {
			fmt.Fprintf(os.Stderr, "detourctl: journal: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *healthTab {
		os.Exit(runHealthTable(*seed))
	}

	if *capTab {
		os.Exit(runCapacityTable(*seed))
	}

	if _, ok := scenario.Providers[*provider]; !ok {
		fmt.Fprintf(os.Stderr, "detourctl: unknown provider %q\n", *provider)
		os.Exit(2)
	}
	w := scenario.Build(*seed)
	if *drain != "" {
		ag, ok := w.Agents[*drain]
		if !ok {
			fmt.Fprintf(os.Stderr, "detourctl: unknown DTN %q (have %v)\n", *drain, scenario.DTNs)
			os.Exit(2)
		}
		ag.Drain()
		fmt.Printf("draining %s: new relay work refused, existing sessions run out\n", *drain)
	}
	file := fileutil.New("detourctl.bin", float64(*sizeMB)*fileutil.MB, *seed)

	exit := 0
	if *mpath {
		exit = runMultipath(w, *from, *provider, *drain, file)
		writeTrace(w, *traceOut, exit)
		os.Exit(exit)
	}
	w.RunWorkload("detourctl", func(p *simproc.Proc) {
		direct := w.NewSDKClient(*from, *provider)
		defer direct.Close()
		detours := map[string]*core.DetourClient{}
		for _, dtn := range scenario.DTNs {
			detours[dtn] = w.NewDetourClient(*from, dtn)
		}

		route := core.DirectRoute
		switch *via {
		case "auto":
			// The selector only probes DTNs in service: a draining agent
			// refuses probes, so auto mode routes around it.
			pool := map[string]*core.DetourClient{}
			for dtn, c := range detours {
				if dtn != *drain {
					pool[dtn] = c
				}
			}
			sel := detourselect.NewSelector()
			chosen, preds, err := sel.Choose(p, direct, pool, *provider, file.Size)
			if err != nil {
				fmt.Fprintf(os.Stderr, "detourctl: selection: %v\n", err)
				exit = 1
				return
			}
			fmt.Println("probe-based predictions:")
			for _, pr := range preds {
				fmt.Printf("  %-16s %8.2f s\n", pr.Route, pr.Seconds)
			}
			route = chosen
		case "direct":
		default:
			if _, ok := detours[*via]; !ok {
				fmt.Fprintf(os.Stderr, "detourctl: unknown DTN %q (have %v)\n", *via, scenario.DTNs)
				exit = 2
				return
			}
			route = core.ViaRoute(*via)
		}

		var rep core.Report
		var err error
		if *pipelined && route.Kind == core.Detour {
			rep, err = detours[route.Via].UploadPipelined(p, *provider, file.Name, file.Size, file.MD5, 0)
		} else {
			rep, err = core.Upload(p, route, direct, detours, *provider, file.Name, file.Size, file.MD5)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "detourctl: upload: %v\n", err)
			exit = 1
			return
		}
		fmt.Printf("\nuploaded %d MB from %s to %s %s\n", *sizeMB, *from, *provider, rep.Route)
		if rep.Route.Kind == core.Detour && !*pipelined {
			fmt.Printf("  hop1 (rsync to DTN): %8.2f s\n", rep.Hop1)
			fmt.Printf("  hop2 (DTN upload):   %8.2f s\n", rep.Hop2)
		}
		fmt.Printf("  total:               %8.2f s  (%.2f MB/s)\n",
			rep.Total, file.Size/rep.Total/1e6)
	})
	writeTrace(w, *traceOut, exit)
	os.Exit(exit)
}

// runHealthTable replays the gray-failure scenario with the health
// stack armed and renders the tracker's final state the way a real
// deployment's `detourctl health` would read the control plane.
func runHealthTable(seed int64) int {
	out := sched.RunGrayfail(sched.GrayfailOptions{Seed: seed, Stack: true})
	st := out.Stats
	fmt.Printf("health after %d transfers, %.0f virtual s: %d stalls, %d stall-reroutes, %d canaries, %d budget-parked\n",
		len(out.Results), out.VirtualSeconds, st.Stalls, st.StallReroutes, st.Canaries, st.BudgetParks)
	fmt.Println("entities:")
	for _, e := range out.Table {
		state := "healthy"
		if e.Probation {
			state = "probation"
		}
		fmt.Printf("  %-9s %-16s baseline %6.2f MB/s  %-9s stalls %d  obs %d\n",
			e.Class, e.Entity, e.Baseline/1e6, state, e.Stalls, e.Observations)
	}
	fmt.Println("transitions:")
	for _, tr := range out.Health {
		fmt.Printf("  %s\n", tr)
	}
	fmt.Println("retry budgets:")
	for _, b := range out.Budgets {
		fmt.Printf("  %-12s tokens %.1f  spent %d  denied %d\n",
			b.Provider, b.Tokens, b.Spent, b.Denied)
	}
	return 0
}

// runCapacityTable replays the storage-exhaustion scenario with the
// mitigation stack armed and renders the final storage accounting the
// way a real deployment's `detourctl capacity` would read the control
// plane.
func runCapacityTable(seed int64) int {
	out := sched.RunPressure(sched.PressureOptions{Seed: seed, Stack: true})
	st := out.Stats
	fmt.Printf("storage after %d transfers, %.0f virtual s: %d quota failures, %d reclaims, %d spills, %d quota-parked; journal degraded=%v enospc-saves=%d dropped=%d\n",
		len(out.Results), out.VirtualSeconds,
		st.QuotaFailures, st.QuotaReclaims, st.ProviderSpills, st.QuotaParks,
		st.JournalDegraded, st.JournalENOSPCSaves, st.JournalDropped)
	fmt.Println("staging disks:")
	for _, sn := range out.Staging {
		fmt.Printf("  %-9s cap %4.0f MB used %4.0f MB headroom %4.0f MB reserved %4.0f MB | %d staged %d partials %d orphans | %d evictions (%.0f MB) %d orphans swept\n",
			sn.DTN, sn.Capacity/1e6, sn.Used/1e6, sn.Headroom/1e6, sn.Reserved/1e6,
			sn.Staged, sn.Partials, sn.Orphans, sn.Evictions, sn.EvictedBytes/1e6, sn.OrphansSwept)
	}
	fmt.Println("provider quota:")
	for _, q := range out.Quota {
		fmt.Printf("  %-12s quota %4.0f MB used %4.0f MB pending %4.0f MB free %4.0f MB | %d sessions reclaimed\n",
			q.Provider, q.Quota/1e6, q.Used/1e6, q.Pending/1e6,
			(q.Quota-q.Used-q.Pending)/1e6, q.SessionsReclaimed)
	}
	fmt.Println("warnings:")
	for _, tr := range out.Health {
		fmt.Printf("  %s\n", tr)
	}
	return 0
}

func writeTrace(w *scenario.World, path string, exit int) {
	if path == "" || exit != 0 {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detourctl: trace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := w.Trace.WriteJSONL(f); err != nil {
		fmt.Fprintf(os.Stderr, "detourctl: trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace written to %s (%d events)\n", path, w.Trace.Len())
}

// runMultipath stripes one upload across the direct route plus every
// in-service DTN detour, then prints the per-path progress timeline
// (from the trace's mp.* span events) and the per-path report.
func runMultipath(w *scenario.World, from, provider, drain string, file fileutil.TestFile) int {
	exit := 0
	w.RunWorkload("detourctl-multipath", func(p *simproc.Proc) {
		direct := w.NewSDKClient(from, provider)
		defer direct.Close()
		comp, ok := direct.(sdk.Composer)
		if !ok {
			fmt.Fprintf(os.Stderr, "detourctl: provider %s cannot compose parts\n", provider)
			exit = 1
			return
		}

		paths := []multipath.Path{{
			ID: 0, Route: core.DirectRoute,
			Upload: multipath.UploaderFunc(func(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error {
				// The whole-file digest is checked at compose; the empty
				// per-chunk digest skips the per-object verify.
				_, err := core.DirectUploadResumable(p, direct, part, size, "", ck)
				return err
			}),
		}}
		for _, dtn := range scenario.DTNs {
			if dtn == drain {
				continue // a draining DTN refuses new relay work
			}
			dc := w.NewDetourClient(from, dtn)
			paths = append(paths, multipath.Path{
				ID: len(paths), Route: core.ViaRoute(dtn),
				Upload: multipath.UploaderFunc(func(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error {
					_, err := dc.UploadResumable(p, provider, part, size, "", ck)
					return err
				}),
			})
		}

		env := multipath.Env{
			Trace: w.Trace,
			Commit: func(p *simproc.Proc, parts []string) error {
				info, err := comp.Compose(p, file.Name, parts, file.MD5)
				if err != nil {
					return err
				}
				if info.MD5 != "" && info.MD5 != file.MD5 {
					return fmt.Errorf("composed %q has digest %s, want %s", file.Name, info.MD5, file.MD5)
				}
				return nil
			},
		}
		rep, err := multipath.Run(p, multipath.Spec{
			Name: file.Name, Size: file.Size, MD5: file.MD5,
		}, paths, env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detourctl: multipath upload: %v\n", err)
			exit = 1
			return
		}

		fmt.Println("per-path progress (virtual time):")
		for _, ev := range w.Trace.Filter("mp") {
			fmt.Printf("  %s\n", ev.String())
		}
		fmt.Println()
		if err := rep.WriteReport(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "detourctl: report: %v\n", err)
			exit = 1
		}
	})
	return exit
}
