package scenario_test

import (
	"fmt"

	"detournet/internal/core"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
)

// The paper's headline experiment in eight lines: build the calibrated
// world and compare the direct upload with the UAlberta detour.
func ExampleBuild() {
	w := scenario.Build(2015)
	w.RunWorkload("example", func(p *simproc.Proc) {
		drive := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
		defer drive.Close()
		direct, _ := core.DirectUpload(p, drive, "f.bin", 100e6, "")
		detour, _ := w.NewDetourClient(scenario.UBC, scenario.UAlberta).
			Upload(p, scenario.GoogleDrive, "f.bin", 100e6, "")
		fmt.Printf("direct: %.0f s\n", direct.Total)
		fmt.Printf("%s: %.0f s\n", detour.Route, detour.Total)
	})
	// Output:
	// direct: 87 s
	// via ualberta: 38 s
}
