package transport

import (
	"errors"
	"fmt"
	"testing"

	"detournet/internal/simclock"
	"detournet/internal/simproc"
)

// Hardening tests: many connections, failure timing, and cap behavior
// under adversarial sequencing.

func TestManyConcurrentConnectionsShareFairly(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		for {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			cc := c
			r.Go("h", func(hp *simproc.Proc) {
				for {
					if _, err := cc.Recv(hp); err != nil {
						return
					}
				}
			})
		}
	})
	const k = 5
	durs := make([]float64, k)
	futs := make([]*simproc.Future[bool], k)
	for i := 0; i < k; i++ {
		i := i
		futs[i] = simproc.NewFuture[bool](r)
		r.Go(fmt.Sprintf("c%d", i), func(p *simproc.Proc) {
			c, err := n.Dial(p, "client", "server", 80, DialOpts{})
			if err != nil {
				t.Error(err)
				futs[i].Set(true)
				return
			}
			t0 := p.Now()
			_ = c.Send(p, nil, 4e6)
			durs[i] = float64(p.Now() - t0)
			c.Close()
			futs[i].Set(true)
		})
	}
	r.Go("closer", func(p *simproc.Proc) {
		for _, f := range futs {
			simproc.Await(p, f)
		}
		l.Close()
	})
	r.Run()
	// 5 concurrent 4 MB transfers over the 5 MB/s bottleneck: ~4s each
	// (sharing), all within 25% of each other (max-min fairness).
	var lo, hi float64 = durs[0], durs[0]
	for _, d := range durs {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi > lo*1.25 {
		t.Fatalf("unfair sharing: durations %v", durs)
	}
	if lo < 3.5 {
		t.Fatalf("transfers too fast for a shared bottleneck: %v", durs)
	}
}

func TestDialRacesListenerClose(t *testing.T) {
	// The listener closes while a dial's handshake is in flight: the
	// dialer must get a refusal, not a connection to nowhere.
	n, r := world(t)
	l := n.MustListen("server", 80)
	var err error
	r.Go("cli", func(p *simproc.Proc) {
		_, err = n.Dial(p, "client", "server", 80, DialOpts{TLS: true})
	})
	r.Go("closer", func(p *simproc.Proc) {
		p.Sleep(0.01) // mid-handshake (TLS dial takes 150ms here)
		l.Close()
	})
	r.Run()
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("dial racing close = %v, want ErrRefused", err)
	}
}

func TestSendAfterPeerCloseStillCompletesLocally(t *testing.T) {
	// The peer closes while we send; our Send completes (bytes drained
	// into the network) but the message is not delivered.
	n, r := world(t)
	l := n.MustListen("server", 80)
	var srvConn *Conn
	got := 0
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		srvConn = c
		for {
			if _, err := c.Recv(p); err != nil {
				return
			}
			got++
		}
	})
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		_ = c.Send(p, 1, 1e6)
		p.Sleep(1)
		srvConn.Close() // peer goes away
		if err := c.Send(p, 2, 1e6); err != nil {
			t.Errorf("send into closed peer errored locally: %v", err)
		}
		c.Close()
		l.Close()
	})
	r.Run()
	if got != 1 {
		t.Fatalf("server received %d messages, want exactly 1", got)
	}
}

func TestCwndPersistsAcrossIdlePeriods(t *testing.T) {
	// Our model keeps the ramped window across idle gaps (no slow-start
	// restart) — pin that behavior so a future change is deliberate.
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		for {
			if _, err := c.Recv(p); err != nil {
				return
			}
		}
	})
	var first, second float64
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		t0 := p.Now()
		_ = c.Send(p, nil, 2e6)
		first = float64(p.Now() - t0)
		p.Sleep(300) // long idle
		t0 = p.Now()
		_ = c.Send(p, nil, 2e6)
		second = float64(p.Now() - t0)
		c.Close()
		l.Close()
	})
	r.Run()
	if second >= first {
		t.Fatalf("post-idle send (%v) should be no slower than the ramping first send (%v)", second, first)
	}
}

func TestZeroByteSendDeliversMessage(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	var got Message
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		got, _ = c.Recv(p)
	})
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		if err := c.Send(p, "ping", 0); err != nil {
			t.Error(err)
		}
		c.Close()
	})
	r.Run()
	if got.Payload != "ping" || got.Bytes != 0 {
		t.Fatalf("zero-byte message = %+v", got)
	}
}

func TestRTTAccessors(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		if c.LocalHost() != "server" || c.RemoteHost() != "client" {
			t.Errorf("server conn identity: %s %s", c.LocalHost(), c.RemoteHost())
		}
		if c.TLS() {
			t.Error("plain conn reports TLS")
		}
		c.Close()
	})
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		if c.LocalHost() != "client" || c.RemoteHost() != "server" {
			t.Errorf("client conn identity: %s %s", c.LocalHost(), c.RemoteHost())
		}
		if c.RTT() <= 0 {
			t.Error("non-positive RTT")
		}
		_, _ = c.Recv(p) // wait for peer close
		l.Close()
	})
	r.Run()
}

func TestEngineTimeMonotoneUnderChaos(t *testing.T) {
	// Random mix of sends, closes, and dials must never move time
	// backwards or deadlock.
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		for {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			cc := c
			r.Go("h", func(hp *simproc.Proc) {
				for {
					if _, err := cc.Recv(hp); err != nil {
						return
					}
				}
			})
		}
	})
	var last simclock.Time
	r.Go("chaos", func(p *simproc.Proc) {
		for i := 0; i < 10; i++ {
			c, err := n.Dial(p, "client", "server", 80, DialOpts{TLS: i%2 == 0})
			if err != nil {
				t.Error(err)
				break
			}
			_ = c.Send(p, i, float64(1+i)*1e5)
			if i%3 == 0 {
				c.Close()
			}
			if p.Now() < last {
				t.Errorf("time went backwards: %v < %v", p.Now(), last)
			}
			last = p.Now()
			if i%3 != 0 {
				c.Close()
			}
		}
		l.Close()
	})
	r.Run()
}
