package tracelog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"detournet/internal/simclock"
)

func TestEmitAndEvents(t *testing.T) {
	eng := simclock.NewEngine()
	l := New(eng)
	eng.Schedule(5, func() { l.Emit("a.b", map[string]any{"x": 1}) })
	eng.Schedule(7, func() { l.Emit("a.c", nil) })
	eng.Run()
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != 5 || evs[0].Kind != "a.b" || evs[0].Attrs["x"] != 1 {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if evs[1].At != 7 {
		t.Fatalf("ev1 = %+v", evs[1])
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit("anything", nil) // must not panic
	if l.Len() != 0 || l.Events() != nil || l.Filter("x") != nil {
		t.Fatal("nil log not inert")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if l.Summary() != "" {
		t.Fatal("nil summary")
	}
	l.Reset()
}

func TestEmptyKindPanics(t *testing.T) {
	l := New(simclock.NewEngine())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Emit("", nil)
}

func TestFilterByPrefix(t *testing.T) {
	l := New(simclock.NewEngine())
	l.Emit("detour.upload.done", nil)
	l.Emit("detour.download.done", nil)
	l.Emit("agent.relay.upload", nil)
	l.Emit("detourish", nil) // prefix must respect segment boundaries
	if got := len(l.Filter("detour")); got != 2 {
		t.Fatalf("Filter(detour) = %d, want 2", got)
	}
	if got := len(l.Filter("detour.upload.done")); got != 1 {
		t.Fatalf("exact filter = %d", got)
	}
	if got := len(l.Filter("nothing")); got != 0 {
		t.Fatalf("miss filter = %d", got)
	}
}

func TestCapEvictsOldest(t *testing.T) {
	l := New(simclock.NewEngine())
	l.Cap = 3
	for i := 0; i < 10; i++ {
		l.Emit("e", map[string]any{"i": i})
	}
	evs := l.Events()
	if len(evs) != 3 || evs[0].Attrs["i"] != 7 {
		t.Fatalf("evicted wrong events: %+v", evs)
	}
}

func TestWriteJSONL(t *testing.T) {
	eng := simclock.NewEngine()
	l := New(eng)
	l.Emit("k1", map[string]any{"a": "b"})
	l.Emit("k2", nil)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "k1" || e.Attrs["a"] != "b" {
		t.Fatalf("decoded = %+v", e)
	}
}

func TestSummaryAndReset(t *testing.T) {
	l := New(simclock.NewEngine())
	l.Emit("x", nil)
	l.Emit("x", nil)
	l.Emit("y", nil)
	s := l.Summary()
	if !strings.Contains(s, "x") || !strings.Contains(s, "2") {
		t.Fatalf("summary:\n%s", s)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestEventStringSortsKeys(t *testing.T) {
	e := Event{At: 1.5, Kind: "mp.chunk.done", Attrs: map[string]any{
		AttrRoute: "via ualberta",
		AttrChunk: 3,
		AttrPath:  1,
		"bytes":   8388608.0,
		"note":    "",
	}}
	want := `t=1.5 mp.chunk.done bytes=8.388608e+06 chunk=3 note="" path_id=1 route="via ualberta"`
	if got := e.String(); got != want {
		t.Fatalf("String:\n got %q\nwant %q", got, want)
	}
}

func TestEventStringDeterministic(t *testing.T) {
	// Maps iterate in random order; String must not. Render the same
	// event many times and across map-insertion orders.
	mk := func(reverse bool) Event {
		attrs := map[string]any{}
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		if reverse {
			for i := len(keys) - 1; i >= 0; i-- {
				attrs[keys[i]] = i
			}
		} else {
			for i, k := range keys {
				attrs[k] = i
			}
		}
		return Event{At: 2, Kind: "k", Attrs: attrs}
	}
	want := mk(false).String()
	for i := 0; i < 50; i++ {
		if got := mk(i%2 == 1).String(); got != want {
			t.Fatalf("render %d differs:\n got %q\nwant %q", i, got, want)
		}
	}
}

func TestWriteTextGolden(t *testing.T) {
	eng := simclock.NewEngine()
	l := New(eng)
	eng.Schedule(1, func() {
		l.Emit("mp.path.start", map[string]any{AttrPath: 0, AttrRoute: "direct"})
	})
	eng.Schedule(2.25, func() {
		l.Emit("mp.chunk.done", map[string]any{AttrPath: 0, AttrChunk: 0, "seconds": 1.25})
	})
	eng.Run()
	var a, b bytes.Buffer
	if err := l.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same log differ")
	}
	want := "t=1 mp.path.start path_id=0 route=direct\n" +
		"t=2.25 mp.chunk.done chunk=0 path_id=0 seconds=1.25\n"
	if a.String() != want {
		t.Fatalf("WriteText:\n got %q\nwant %q", a.String(), want)
	}
	if err := (*Log)(nil).WriteText(&a); err != nil {
		t.Fatal(err)
	}
}
