package sched

import (
	"sort"
	"sync"
)

// This file is the overload-control layer: CoDel-style queue-delay
// shedding, the brownout state machine, and the per-route latency
// percentile tracker that prices hedged transfers. The bounded,
// fair-queued admission side lives in queue.go; the wiring through
// Submit and the worker loop lives in sched.go.

// codel sheds jobs at dequeue when the queue's *standing* delay exceeds
// a target, CoDel-style: the signal is an EWMA of time-in-queue (sojourn
// time), not instantaneous length, so short bursts pass through and only
// persistent backlog triggers shedding. Hysteresis (exit at target/2)
// keeps it from flapping at the boundary.
type codel struct {
	mu       sync.Mutex
	target   float64 // standing-delay target in seconds
	alpha    float64 // EWMA smoothing factor
	ewma     float64
	primed   bool
	dropping bool
}

func newCodel(target, alpha float64) *codel {
	if target <= 0 {
		return nil
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &codel{target: target, alpha: alpha}
}

// onDequeue folds one observed queue delay into the EWMA and decides
// whether to shed the job it belongs to. A job is shed only while the
// smoothed delay exceeds the target AND its own delay does too — a
// fresh job that raced through a draining queue is never shed.
func (c *codel) onDequeue(delay float64) (shed bool, retryAfter float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.primed {
		c.ewma, c.primed = delay, true
	} else {
		c.ewma = c.alpha*delay + (1-c.alpha)*c.ewma
	}
	switch {
	case !c.dropping && c.ewma > c.target:
		c.dropping = true
	case c.dropping && c.ewma < c.target/2:
		c.dropping = false
	}
	if c.dropping && delay > c.target {
		return true, c.ewma
	}
	return false, 0
}

// smoothed returns the current EWMA of queue delay.
func (c *codel) smoothed() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ewma
}

// brownout is the hysteretic degraded-service state machine: above the
// enter threshold of queue utilization the scheduler sheds *optional*
// work first — bandit exploration, probe-based cache refresh, detour
// planning for small size-buckets, hedging — and restores it only once
// utilization falls below the (lower) exit threshold. Guarded by the
// scheduler's mu.
type brownout struct {
	enter, exit float64 // occupancy fractions of the queue limit
	active      bool
	enters      int64
	exits       int64
}

func newBrownout(enter, exit float64) *brownout {
	if enter <= 0 {
		return nil
	}
	if exit <= 0 || exit >= enter {
		exit = enter / 2
	}
	return &brownout{enter: enter, exit: exit}
}

// observe feeds the current utilization (queued / limit) through the
// hysteresis and reports whether brownout is active.
func (b *brownout) observe(util float64) bool {
	switch {
	case !b.active && util >= b.enter:
		b.active = true
		b.enters++
	case b.active && util <= b.exit:
		b.active = false
		b.exits++
	}
	return b.active
}

// latencyTracker learns per-route service-time distributions from
// completed transfers, normalized to seconds-per-byte so files of
// different sizes share one distribution. It prices hedged transfers:
// a detour attempt gets a time budget of pXX(route) × size, and a
// direct hedge launches only once that budget is exceeded. Guarded by
// the scheduler's mu.
type latencyTracker struct {
	window  int
	samples map[string][]float64 // route → ring of sec/byte
	next    map[string]int
}

func newLatencyTracker(window int) *latencyTracker {
	if window <= 0 {
		window = 64
	}
	return &latencyTracker{
		window:  window,
		samples: make(map[string][]float64),
		next:    make(map[string]int),
	}
}

// note records one completed transfer on a route.
func (t *latencyTracker) note(route string, seconds, bytes float64) {
	if seconds <= 0 || bytes <= 0 {
		return
	}
	spb := seconds / bytes
	s := t.samples[route]
	if len(s) < t.window {
		t.samples[route] = append(s, spb)
		return
	}
	s[t.next[route]%t.window] = spb
	t.next[route] = (t.next[route] + 1) % t.window
}

// count reports how many samples a route has accumulated.
func (t *latencyTracker) count(route string) int { return len(t.samples[route]) }

// percentile returns the route's pXX seconds-per-byte (q in (0,1]), or
// false with no samples.
func (t *latencyTracker) percentile(route string, q float64) (float64, bool) {
	s := t.samples[route]
	if len(s) == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i], true
}

// delayRing keeps the last N queue delays of *admitted* jobs so Stats
// can report a p99 without unbounded memory. Guarded by the scheduler's
// mu.
type delayRing struct {
	buf  []float64
	next int
	full bool
}

func newDelayRing(n int) *delayRing {
	if n <= 0 {
		n = 1024
	}
	return &delayRing{buf: make([]float64, 0, n)}
}

func (r *delayRing) note(d float64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, d)
		return
	}
	r.full = true
	r.buf[r.next] = d
	r.next = (r.next + 1) % cap(r.buf)
}

// percentile returns the q-th percentile (q in (0,1]) of the retained
// window, 0 with no samples.
func (r *delayRing) percentile(q float64) float64 {
	if len(r.buf) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.buf...)
	sort.Float64s(sorted)
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// JainIndex is Jain's fairness index over per-tenant allocations:
// (Σx)² / (n·Σx²), 1.0 when perfectly equal, →1/n when one tenant
// takes everything. Zero-valued inputs count; an empty input is 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
