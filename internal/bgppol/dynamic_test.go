package bgppol

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// clockAt returns a settable virtual clock for driving Dynamic by hand.
func clockAt(t0 float64) (func() float64, func(float64)) {
	now := t0
	return func() float64 { return now }, func(v float64) { now = v }
}

func TestWithdrawBlackholeThenNoRoute(t *testing.T) {
	now, setNow := clockAt(0)
	d := NewDynamic(diamond(), now, rand.New(rand.NewSource(1)), 2, 12)

	if _, err := d.DomainPathAt("stub1", "stub2"); err != nil {
		t.Fatalf("pre-churn path: %v", err)
	}
	if err := d.WithdrawSession("stub2", "t2"); err != nil {
		t.Fatal(err)
	}

	// stub1 and t1 are stale (their delay is >= 2s): stub1 still
	// forwards towards t2, whose new RIB has no route — a transient
	// blackhole, not a clean no-route.
	setNow(1)
	_, err := d.DomainPathAt("stub1", "stub2")
	if !errors.Is(err, ErrBlackhole) {
		t.Fatalf("mid-convergence err = %v, want ErrBlackhole", err)
	}
	if d.Converged() {
		t.Fatal("Converged() true 1s after withdraw with delays >= 2s")
	}

	// Once everyone has adopted, the source itself knows there is no
	// route: the anomaly window has closed.
	setNow(13)
	_, err = d.DomainPathAt("stub1", "stub2")
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("converged err = %v, want ErrNoRoute", err)
	}
	if !d.Converged() {
		t.Fatal("Converged() false after every delay has passed")
	}
}

func TestAnnounceRestoresRelationship(t *testing.T) {
	now, setNow := clockAt(0)
	d := NewDynamic(diamond(), now, rand.New(rand.NewSource(1)), 2, 12)
	if err := d.WithdrawSession("t2", "stub2"); err != nil {
		t.Fatal(err)
	}
	if d.SessionUp("stub2", "t2") {
		t.Fatal("session up after withdraw")
	}
	if !d.SessionKnown("stub2", "t2") {
		t.Fatal("withdrawn session should stay known")
	}

	setNow(20)
	if err := d.AnnounceSession("stub2", "t2"); err != nil {
		t.Fatal(err)
	}
	if !d.SessionUp("stub2", "t2") {
		t.Fatal("session down after announce")
	}
	if d.Current().Relationship("stub2", "t2") != RelCustomer {
		t.Fatalf("restored relationship = %v, want the original customer link",
			d.Current().Relationship("stub2", "t2"))
	}

	// stub1 is stale again: its RIB predates the announce, so the
	// destination is unreachable from its point of view.
	setNow(21)
	if _, err := d.DomainPathAt("stub1", "stub2"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("pre-adoption err = %v, want ErrNoRoute", err)
	}
	setNow(33)
	path, err := d.DomainPathAt("stub1", "stub2")
	if err != nil {
		t.Fatalf("converged path: %v", err)
	}
	want := []string{"stub1", "t1", "t2", "stub2"}
	if fmt.Sprint(path) != fmt.Sprint(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
}

// Mixed-version RIBs can form a genuine forwarding loop: b's stale best
// route to dest runs through a, while a's post-withdraw best runs back
// through b. The walk must die of TTL expiry, not spin.
func TestConvergenceForwardingLoop(t *testing.T) {
	p := NewPolicy()
	p.MustAddCustomerProvider("dest", "a") // a's old best: direct customer
	p.MustAddCustomerProvider("dest", "d")
	p.MustAddCustomerProvider("a", "b") // b's old best: via customer a
	p.MustAddCustomerProvider("b", "d") // b's new best: via provider d

	now, setNow := clockAt(0)
	d := NewDynamic(p, now, rand.New(rand.NewSource(1)), 2, 12)
	if err := d.WithdrawSession("dest", "a"); err != nil {
		t.Fatal(err)
	}
	// a (an endpoint) adopted instantly: its best is now via provider b.
	// b is stale: its best is still via customer a.
	setNow(1)
	_, err := d.DomainPathAt("b", "dest")
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("mid-convergence err = %v, want ErrLoop", err)
	}
	if err != nil && !strings.Contains(err.Error(), "ttl expired") {
		t.Fatalf("loop error %q should carry the ttl-expired substring", err)
	}
	// Converged: b hears about the withdraw and routes via d.
	setNow(13)
	path, err := d.DomainPathAt("b", "dest")
	if err != nil {
		t.Fatalf("converged path: %v", err)
	}
	want := []string{"b", "d", "dest"}
	if fmt.Sprint(path) != fmt.Sprint(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
}

func TestConvergenceScheduleDeterministic(t *testing.T) {
	runOnce := func(seed int64) string {
		now, setNow := clockAt(0)
		d := NewDynamic(diamond(), now, rand.New(rand.NewSource(seed)), 2, 12)
		d.WithdrawSession("t1", "t2")
		setNow(30)
		d.AnnounceSession("t1", "t2")
		var sb strings.Builder
		for _, ev := range d.Events() {
			fmt.Fprintln(&sb, ev)
		}
		return sb.String()
	}
	if runOnce(7) != runOnce(7) {
		t.Fatal("same seed produced different convergence schedules")
	}
	if runOnce(7) == runOnce(8) {
		t.Fatal("different seeds produced identical convergence schedules")
	}
}

func TestBusFanout(t *testing.T) {
	now, _ := clockAt(0)
	d := NewDynamic(diamond(), now, rand.New(rand.NewSource(1)), 2, 12)
	bus := NewBus()
	d.AttachBus(bus)
	var got []Event
	bus.Subscribe(func(ev Event) { got = append(got, ev) })
	bus.Subscribe(func(Event) {}) // a second subscriber must not starve the first
	if err := d.WithdrawSession("t1", "t2"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != EventWithdraw || got[0].DomainA != "t1" {
		t.Fatalf("subscriber saw %v, want one t1~t2 withdraw", got)
	}
	if bus.Published() != 1 {
		t.Fatalf("Published() = %d, want 1", bus.Published())
	}
	if got[0].ConvergedBy < 2 {
		t.Fatalf("ConvergedBy = %.2f, want >= min delay", got[0].ConvergedBy)
	}
}

// RoutesTo memoization must be invisible: a mutation invalidates the
// memo, and a Clone never shares it with its parent.
func TestRoutesToMemoInvalidation(t *testing.T) {
	p := diamond()
	r1, err := p.RoutesTo("stub2")
	if err != nil {
		t.Fatal(err)
	}
	if r1["stub1"].Type == NoRoute {
		t.Fatal("stub1 should reach stub2 via the peering")
	}
	if err := p.RemovePeer("t1", "t2"); err != nil {
		t.Fatal(err)
	}
	r2, err := p.RoutesTo("stub2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r2["stub1"]; ok && r2["stub1"].Type != NoRoute {
		t.Fatalf("memo served a stale route after RemovePeer: %+v", r2["stub1"])
	}

	q := diamond()
	if _, err := q.RoutesTo("stub2"); err != nil { // warm q's memo
		t.Fatal(err)
	}
	c := q.Clone()
	if err := c.RemovePeer("t1", "t2"); err != nil {
		t.Fatal(err)
	}
	rq, err := q.RoutesTo("stub2")
	if err != nil {
		t.Fatal(err)
	}
	if rq["stub1"].Type == NoRoute {
		t.Fatal("mutating a clone leaked into the parent's routes")
	}
}

func TestRemoveRelationship(t *testing.T) {
	p := diamond()
	if p.Relationship("stub1", "t1") != RelCustomer {
		t.Fatalf("stub1->t1 = %v, want customer", p.Relationship("stub1", "t1"))
	}
	if p.Relationship("t1", "stub1") != RelProvider {
		t.Fatalf("t1->stub1 = %v, want provider", p.Relationship("t1", "stub1"))
	}
	if err := p.RemoveCustomerProvider("stub1", "t1"); err != nil {
		t.Fatal(err)
	}
	if p.Relationship("stub1", "t1") != RelNone {
		t.Fatal("relationship survives removal")
	}
	if err := p.RemoveCustomerProvider("stub1", "t1"); err == nil {
		t.Fatal("double removal accepted")
	}
	if err := p.RemovePeer("stub1", "t1"); err == nil {
		t.Fatal("RemovePeer accepted a non-peering")
	}
}
