package scenario

import (
	"math/rand"

	"detournet/internal/bgppol"
	"detournet/internal/topology"
)

// Policy-routing mode: instead of the default filtered min-delay router,
// the world can route with the full Gao–Rexford model over the AS-level
// relationships of the 2015 setting. The three observed route pins still
// apply (they model operator configuration the policy model cannot
// derive); everything else follows from who-buys-from-whom.
//
// This mode exists to study the routing layer itself — e.g. that the
// Purdue pathology needs no misconfiguration at all, just a commodity
// provider route tying with the research route — while the default mode
// stays the calibrated reproduction target.

// PaperPolicy returns the AS relationship graph of the paper's setting.
// Domain names match the Node.Domain values of the built topology.
func PaperPolicy() *bgppol.Policy {
	p := bgppol.NewPolicy()
	// Universities buy from their regional research networks.
	p.MustAddCustomerProvider("UBC", "BCNet")
	p.MustAddCustomerProvider("UAlberta", "Cybera")
	p.MustAddCustomerProvider("UMich", "Merit")
	p.MustAddCustomerProvider("Purdue", "Internet2")
	p.MustAddCustomerProvider("UCLA", "CENIC")
	// Regionals buy from the national backbones.
	p.MustAddCustomerProvider("BCNet", "CANARIE")
	p.MustAddCustomerProvider("Cybera", "CANARIE")
	p.MustAddCustomerProvider("Merit", "Internet2")
	// National backbones peer with each other and with the providers.
	p.MustAddPeer("CANARIE", "Internet2")
	p.MustAddPeer("Google", "CANARIE")
	p.MustAddPeer("Google", "Internet2")
	p.MustAddPeer("Google", "CENIC")
	p.MustAddPeer("Microsoft", "CANARIE")
	p.MustAddPeer("Microsoft", "Internet2")
	// PacificWave is deliberately absent: it is an IXP fabric, not an
	// AS, so it never appears in AS paths. The only route through it is
	// the pinned UBC→Google artifact, which models operator/exchange
	// configuration that BGP policy cannot derive.
	// Commodity transit: campuses and backbones buy it for destinations
	// without research peering; the cloud providers buy it too.
	p.MustAddCustomerProvider("Purdue", "ISP")
	p.MustAddCustomerProvider("CANARIE", "Transit")
	p.MustAddCustomerProvider("Merit", "Transit")
	p.MustAddCustomerProvider("CENIC", "Transit")
	p.MustAddCustomerProvider("BCNet", "Transit")
	p.MustAddPeer("ISP", "Transit")
	p.MustAddCustomerProvider("Google", "ISP")
	p.MustAddCustomerProvider("Microsoft", "ISP")
	p.MustAddCustomerProvider("Microsoft", "Transit")
	p.MustAddCustomerProvider("Dropbox", "Transit")
	p.MustAddCustomerProvider("Dropbox", "ISP")
	return p
}

// WithPolicyRouting switches the world to full Gao–Rexford inter-domain
// routing over PaperPolicy (plus the standard route pins).
func WithPolicyRouting() Option {
	return func(c *buildCfg) { c.policyRouting = true }
}

// installPolicyRouting replaces the router after the graph is built.
func (w *World) installPolicyRouting() {
	w.Graph.SetRouter(bgppol.Finder{Policy: PaperPolicy()})
}

// WithDynamicRouting routes the world with the staged-convergence BGP
// layer over PaperPolicy: sessions can be withdrawn and re-announced at
// run time (see faults.RouteChurn), domains adopt changes after
// deterministic per-domain delays, and during the convergence window
// paths can transiently blackhole or loop exactly as real reconvergence
// does. Route pins still apply, but a pin whose domain crossings ride a
// withdrawn session falls through to the (converging) router.
func WithDynamicRouting() Option {
	return func(c *buildCfg) { c.dynamicRouting = true }
}

// routeChurnSeedSalt decorrelates convergence delays from every other
// seeded stream in the world.
const routeChurnSeedSalt = 0x6267700d

// installDynamicRouting replaces the router after the graph is built.
func (w *World) installDynamicRouting() {
	rng := rand.New(rand.NewSource(w.seed ^ routeChurnSeedSalt))
	now := func() float64 { return float64(w.Eng.Now()) }
	dyn := bgppol.NewDynamic(PaperPolicy(), now, rng, 2, 12)
	dyn.AttachBus(w.RouteBus)
	w.Routing = dyn
	w.Graph.SetRouter(bgppol.DynamicFinder{D: dyn})
	// Pins model operator configuration, but they still ride BGP
	// sessions: if a pinned path crosses a withdrawn session boundary,
	// the pin breaks and the pair reconverges with everyone else.
	// Crossings unknown to the policy (the PacificWave IXP fabric) are
	// exempt — those are static exchange configuration.
	w.Graph.SetOverrideVeto(func(hops []*topology.Node) bool {
		for i := 0; i+1 < len(hops); i++ {
			a, b := hops[i].Domain, hops[i+1].Domain
			if a == b {
				continue
			}
			if dyn.SessionKnown(a, b) && !dyn.SessionUp(a, b) {
				return true
			}
		}
		return false
	})
}

// DomainPathOf returns the AS-level path a host-to-host route crosses,
// for tests and diagnostics: consecutive duplicate domains collapsed.
func (w *World) DomainPathOf(src, dst string) ([]string, error) {
	nodes, err := w.Graph.Path(src, dst)
	if err != nil {
		return nil, err
	}
	var doms []string
	for _, n := range nodes {
		if len(doms) == 0 || doms[len(doms)-1] != n.Domain {
			doms = append(doms, n.Domain)
		}
	}
	return doms, nil
}
