// Dynamic routing: incremental withdraw/announce events with staged
// per-domain convergence. A withdrawn or re-announced BGP session does
// not update the internet atomically — each domain adopts the new
// routing table after its own deterministic propagation delay, and
// while the RIBs disagree the data path can hit exactly the anomalies
// real reconvergence produces: transient blackholes (a stale RIB
// forwards to a next hop whose session is gone) and forwarding loops
// (two domains pointing at each other until TTL expiry).
package bgppol

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"detournet/internal/topology"
)

// Typed anomalies surfaced by DomainPathAt during convergence windows.
// Their messages deliberately contain stable substrings ("blackhole",
// "ttl expired", "no route") because agent relay errors cross the wire
// as strings and are re-classified by substring on the far side.
var (
	// ErrBlackhole: a stale RIB forwarded towards a withdrawn session;
	// the packet is dropped at the session boundary.
	ErrBlackhole = errors.New("bgppol: transient blackhole (withdrawn next hop)")
	// ErrLoop: inconsistent RIBs formed a forwarding loop; the packet
	// died of TTL expiry.
	ErrLoop = errors.New("bgppol: forwarding loop (ttl expired)")
	// ErrNoRoute: the source's own RIB has no route to the destination.
	ErrNoRoute = errors.New("bgppol: no route to destination domain")
)

// EventKind distinguishes routing-plane event directions.
type EventKind int

const (
	// EventWithdraw removes a session (or link) from service.
	EventWithdraw EventKind = iota
	// EventAnnounce restores it.
	EventAnnounce
)

func (k EventKind) String() string {
	if k == EventWithdraw {
		return "withdraw"
	}
	return "announce"
}

// Event is one routing-plane change, published on the Bus. Session
// events (BGP withdraw/announce) carry the two domain names; link
// events (data-plane flaps and pinned-path flips published by the
// fault injector) carry node names instead. ConvergedBy is the virtual
// time by which the last domain will have adopted the change — for
// link events, which have no convergence window, it equals At.
type Event struct {
	Kind             EventKind
	DomainA, DomainB string // session scope (empty for link events)
	FromNode, ToNode string // link scope (empty for session events)
	At               float64
	ConvergedBy      float64
}

func (ev Event) String() string {
	if ev.DomainA != "" {
		return fmt.Sprintf("%s session %s~%s t=%.3f converged=%.3f",
			ev.Kind, ev.DomainA, ev.DomainB, ev.At, ev.ConvergedBy)
	}
	return fmt.Sprintf("%s link %s-%s t=%.3f", ev.Kind, ev.FromNode, ev.ToNode, ev.At)
}

// Bus fans routing events out to subscribers (route caches, schedulers,
// reports) the instant they happen — push-based invalidation instead of
// waiting out cache TTLs.
type Bus struct {
	mu   sync.Mutex
	subs []func(Event)
	sent int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn for every future event. Subscribers run
// synchronously in publish order and must not block.
func (b *Bus) Subscribe(fn func(Event)) {
	b.mu.Lock()
	b.subs = append(b.subs, fn)
	b.mu.Unlock()
}

// Publish delivers ev to every subscriber.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	subs := make([]func(Event), len(b.subs))
	copy(subs, b.subs)
	b.sent++
	b.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Published returns the number of events published so far.
func (b *Bus) Published() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent
}

// Dynamic layers withdraw/announce events over a base Policy. Every
// event produces a new immutable policy snapshot; each domain adopts
// snapshot i at its own time adoptAt[domain][i] (the two session
// endpoints immediately, everyone else after a propagation delay drawn
// from the seeded RNG), so the RIB a domain forwards with is a pure
// function of the event log and the clock — fully deterministic and
// replayable.
type Dynamic struct {
	mu         sync.Mutex
	now        func() float64
	rng        *rand.Rand
	dmin, dmax float64
	bus        *Bus

	versions []*Policy            // versions[0] is the base policy
	adoptAt  map[string][]float64 // domain -> adoption time per version
	events   []Event
}

// NewDynamic wraps base in a staged-convergence layer. now supplies the
// virtual clock; per-domain propagation delays are drawn uniformly from
// [delayMin, delayMax) seconds using rng, in fixed domain order.
func NewDynamic(base *Policy, now func() float64, rng *rand.Rand, delayMin, delayMax float64) *Dynamic {
	if delayMax < delayMin {
		delayMax = delayMin
	}
	d := &Dynamic{
		now:      now,
		rng:      rng,
		dmin:     delayMin,
		dmax:     delayMax,
		versions: []*Policy{base},
		adoptAt:  make(map[string][]float64),
	}
	for _, dom := range base.Domains() {
		d.adoptAt[dom] = []float64{0}
	}
	return d
}

// AttachBus makes d publish every session event on bus.
func (d *Dynamic) AttachBus(bus *Bus) { d.bus = bus }

// Current returns the latest policy snapshot — the ground truth every
// domain is converging towards.
func (d *Dynamic) Current() *Policy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.versions[len(d.versions)-1]
}

// Events returns the event log so far.
func (d *Dynamic) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.events...)
}

// SessionUp reports whether the a~b session exists in the latest
// snapshot (the session itself is either up or down everywhere; what
// converges lazily is who has heard).
func (d *Dynamic) SessionUp(a, b string) bool {
	return d.Current().Relationship(a, b) != RelNone
}

// SessionKnown reports whether a~b has ever been a session in any
// snapshot — used to tell "withdrawn" apart from "never a BGP session"
// (static pins may cross non-BGP hand-offs like an IXP fabric).
func (d *Dynamic) SessionKnown(a, b string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.versions {
		if p.Relationship(a, b) != RelNone {
			return true
		}
	}
	return false
}

// Converged reports whether every domain has adopted the latest
// snapshot.
func (d *Dynamic) Converged() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	last := len(d.versions) - 1
	for _, times := range d.adoptAt {
		if len(times) > last && times[last] > now {
			return false
		}
	}
	return true
}

// WithdrawSession takes the a~b BGP session down (peer or transit, in
// either order) and starts staged reconvergence.
func (d *Dynamic) WithdrawSession(a, b string) error {
	return d.apply(EventWithdraw, a, b, func(p *Policy) error {
		switch p.Relationship(a, b) {
		case RelPeer:
			return p.RemovePeer(a, b)
		case RelCustomer:
			return p.RemoveCustomerProvider(a, b)
		case RelProvider:
			return p.RemoveCustomerProvider(b, a)
		default:
			return fmt.Errorf("bgppol: no session %s~%s to withdraw", a, b)
		}
	})
}

// AnnounceSession restores the a~b session with the relationship it
// last had before withdrawal.
func (d *Dynamic) AnnounceSession(a, b string) error {
	d.mu.Lock()
	var rel Relationship
	for i := len(d.versions) - 1; i >= 0 && rel == RelNone; i-- {
		rel = d.versions[i].Relationship(a, b)
	}
	d.mu.Unlock()
	if rel == RelNone {
		return fmt.Errorf("bgppol: %s~%s was never a session", a, b)
	}
	return d.apply(EventAnnounce, a, b, func(p *Policy) error {
		if p.Relationship(a, b) != RelNone {
			return fmt.Errorf("bgppol: session %s~%s already up", a, b)
		}
		switch rel {
		case RelPeer:
			return p.AddPeer(a, b)
		case RelCustomer:
			return p.AddCustomerProvider(a, b)
		default:
			return p.AddCustomerProvider(b, a)
		}
	})
}

// apply clones the latest snapshot, mutates it, and schedules every
// domain's adoption time. The two session endpoints adopt immediately
// (they originated the UPDATE); everyone else after a propagation
// delay drawn in fixed domain order so the schedule is deterministic.
func (d *Dynamic) apply(kind EventKind, a, b string, mut func(*Policy) error) error {
	d.mu.Lock()
	cur := d.versions[len(d.versions)-1]
	np := cur.Clone()
	if err := mut(np); err != nil {
		d.mu.Unlock()
		return err
	}
	now := d.now()
	converged := now
	for _, dom := range np.Domains() {
		delay := 0.0
		if dom != a && dom != b {
			delay = d.dmin + d.rng.Float64()*(d.dmax-d.dmin)
		}
		d.adoptAt[dom] = append(d.adoptAt[dom], now+delay)
		if now+delay > converged {
			converged = now + delay
		}
	}
	d.versions = append(d.versions, np)
	ev := Event{Kind: kind, DomainA: a, DomainB: b, At: now, ConvergedBy: converged}
	d.events = append(d.events, ev)
	bus := d.bus
	d.mu.Unlock()
	if bus != nil {
		bus.Publish(ev)
	}
	return nil
}

// ribFor returns the policy snapshot domain dom forwards with right
// now: the newest version it has adopted. Adoption of version i implies
// knowledge of every earlier event (snapshots chain), so a domain whose
// delay for an old event exceeds a newer event's can skip straight to
// the newer table. Callers hold d.mu.
func (d *Dynamic) ribFor(dom string, now float64) *Policy {
	times := d.adoptAt[dom]
	for i := len(times) - 1; i >= 0; i-- {
		if times[i] <= now {
			return d.versions[i]
		}
	}
	return d.versions[0]
}

// DomainPathAt walks the AS path a packet takes from src to dst right
// now, each domain forwarding by its own (possibly stale) RIB. During
// convergence this is where the anomalies live: a hop across a
// withdrawn session is a blackhole, and a walk longer than the domain
// count is a loop killed by TTL.
func (d *Dynamic) DomainPathAt(src, dst string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	latest := d.versions[len(d.versions)-1]
	path := []string{src}
	at := src
	ttl := len(latest.Domains()) + 1
	for at != dst {
		rib := d.ribFor(at, now)
		routes, err := rib.RoutesTo(dst)
		if err != nil {
			return nil, err
		}
		r, ok := routes[at]
		if !ok || r.Type == NoRoute {
			if at == src {
				return nil, fmt.Errorf("bgppol: %s -> %s: %w", src, dst, ErrNoRoute)
			}
			return nil, fmt.Errorf("bgppol: %s -> %s dropped at %s: %w", src, dst, at, ErrBlackhole)
		}
		next := r.NextHop
		// The session itself is down everywhere the moment it is
		// withdrawn; a stale RIB still pointing at it blackholes here.
		if latest.Relationship(at, next) == RelNone {
			return nil, fmt.Errorf("bgppol: %s -> %s dropped at %s~%s: %w", src, dst, at, next, ErrBlackhole)
		}
		path = append(path, next)
		at = next
		if len(path) > ttl {
			return nil, fmt.Errorf("bgppol: %s -> %s via %v: %w", src, dst, path[:4], ErrLoop)
		}
	}
	return path, nil
}

// DynamicFinder routes across a topology.Graph with the staged RIBs:
// what Finder is to a frozen Policy, this is to a converging one.
type DynamicFinder struct {
	D *Dynamic
}

// Path implements topology.PathFinder.
func (f DynamicFinder) Path(g *topology.Graph, src, dst *topology.Node) ([]*topology.Node, error) {
	if f.D == nil {
		return nil, fmt.Errorf("bgppol: DynamicFinder with nil Dynamic")
	}
	if src.Domain == "" || dst.Domain == "" {
		return nil, fmt.Errorf("bgppol: node without a domain (%s, %s)", src.Name, dst.Name)
	}
	doms, err := f.D.DomainPathAt(src.Domain, dst.Domain)
	if err != nil {
		return nil, err
	}
	return expandDomainPath(g, src, dst, doms)
}
