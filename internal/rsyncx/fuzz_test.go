package rsyncx

import (
	"bytes"
	"testing"
)

// FuzzDeltaRoundTrip checks the core rsync invariant on arbitrary
// byte pairs: Apply(basis, ComputeDelta(Sign(basis), target)) == target.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte(""), []byte(""), 16)
	f.Add([]byte("hello world"), []byte("hello brave new world"), 4)
	f.Add(bytes.Repeat([]byte{0xAA}, 1000), bytes.Repeat([]byte{0xAA}, 999), 64)
	f.Add([]byte("abcdefgh"), []byte("abcdefgh"), 1)
	f.Fuzz(func(t *testing.T, basis, target []byte, blockRaw int) {
		block := blockRaw%256 + 1
		sig := Sign(basis, block)
		d := ComputeDelta(sig, target)
		got, err := Apply(basis, d)
		if err != nil {
			t.Fatalf("Apply failed: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(target))
		}
	})
}

// FuzzApplyRobustness feeds Apply adversarial delta structures: it may
// error but must never panic or return a wrong-length result as success.
func FuzzApplyRobustness(f *testing.F) {
	f.Add([]byte("basis"), 3, 100, []byte("lit"), 999)
	f.Add([]byte(""), 0, 0, []byte(""), 0)
	f.Fuzz(func(t *testing.T, basis []byte, idx, targetLen int, lit []byte, block int) {
		d := &Delta{
			BlockSize: block,
			TargetLen: targetLen,
			Ops: []Op{
				{Kind: OpCopy, Index: idx},
				{Kind: OpData, Data: lit},
			},
		}
		out, err := Apply(basis, d)
		if err == nil && len(out) != targetLen {
			t.Fatalf("Apply returned success with wrong length %d != %d", len(out), targetLen)
		}
	})
}

// FuzzRollConsistency: rolling must equal from-scratch for any window.
func FuzzRollConsistency(f *testing.F) {
	f.Add([]byte("abcdefghij"), 3)
	f.Fuzz(func(t *testing.T, data []byte, nRaw int) {
		n := nRaw%64 + 1
		if len(data) < n+1 {
			return
		}
		w := weak(data[:n])
		for i := 0; i+n < len(data); i++ {
			w = roll(w, data[i], data[i+n], n)
			if w != weak(data[i+1:i+1+n]) {
				t.Fatalf("roll diverged at %d (n=%d)", i+1, n)
			}
		}
	})
}
