package core

import (
	"strings"
	"testing"

	"detournet/internal/simproc"
)

func TestDirectDownload(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	tb.run(t, func(p *simproc.Proc) {
		if _, err := client.Upload(p, "f.bin", 20e6, "d"); err != nil {
			t.Error(err)
			return
		}
		rep, err := DirectDownload(p, client, "f.bin")
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Info.Size != 20e6 || rep.Total <= 0 {
			t.Errorf("report = %+v", rep)
		}
		// Download rides the same 2 MB/s bottleneck: ~10.3s.
		if rep.Total < 9 || rep.Total > 13 {
			t.Errorf("direct download took %v, want ~10.3s", rep.Total)
		}
	})
}

func TestDirectDownloadMissing(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	tb.run(t, func(p *simproc.Proc) {
		if _, err := DirectDownload(p, client, "ghost.bin"); err == nil {
			t.Error("download of missing file succeeded")
		}
	})
}

func TestDetourDownload(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		if _, err := client.Upload(p, "f.bin", 20e6, "digest"); err != nil {
			t.Error(err)
			return
		}
		rep, err := dc.Download(p, "GoogleDrive", "f.bin")
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Hop1 <= 0 || rep.Hop2 <= 0 {
			t.Errorf("hop times: %+v", rep)
		}
		if rep.Total < rep.Hop1+rep.Hop2-1e-9 {
			t.Errorf("store-and-forward download: total %v < %v", rep.Total, rep.Hop1+rep.Hop2)
		}
		// Both hops ride 8 MB/s paths: total ~5.5s, beating direct ~10.3s.
		if rep.Total > 9 {
			t.Errorf("detour download took %v, want < 9s", rep.Total)
		}
		// The staged copy carries the provider's digest end to end.
		st, ok := tb.agent.daemon.Staged("f.bin")
		if !ok || st.MD5 != "digest" {
			t.Errorf("staged = %+v %v", st, ok)
		}
	})
}

func TestDetourDownloadBeatsDirectHere(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		if _, err := client.Upload(p, "f.bin", 30e6, ""); err != nil {
			t.Error(err)
			return
		}
		direct, err := DirectDownload(p, client, "f.bin")
		if err != nil {
			t.Error(err)
			return
		}
		det, err := dc.Download(p, "GoogleDrive", "f.bin")
		if err != nil {
			t.Error(err)
			return
		}
		if det.Total >= direct.Total {
			t.Errorf("detour download %v not faster than direct %v", det.Total, direct.Total)
		}
	})
}

func TestDetourDownloadMissingFile(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		_, err := dc.Download(p, "GoogleDrive", "ghost.bin")
		if err == nil || !strings.Contains(err.Error(), "hop1") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestDetourDownloadUnknownProvider(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		if _, err := dc.Download(p, "Nope", "f.bin"); err == nil {
			t.Error("download via unknown provider succeeded")
		}
	})
}
