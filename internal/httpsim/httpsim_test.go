package httpsim

import (
	"strings"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

func world(t *testing.T) (*transport.Net, *simproc.Runner) {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	for _, n := range []string{"client", "server"} {
		g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
	}
	g.MustConnect("client", "server", topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.020})
	return transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20}), r
}

func startServer(t *testing.T, n *transport.Net, setup func(*Server)) *transport.Listener {
	t.Helper()
	s := NewServer(n)
	setup(s)
	l := n.MustListen("server", 443)
	s.Serve(l)
	return l
}

func TestBasicRoundTrip(t *testing.T) {
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("GET", "/hello", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusOK, Body: []byte("hi " + ctx.RemoteHost)}
		})
	})
	var got string
	var status int
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		resp, err := c.Do(p, &Request{Method: "GET", Path: "/hello", Host: "server"})
		if err != nil {
			t.Error(err)
			return
		}
		status = resp.Status
		got = string(resp.Body)
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	if status != StatusOK || got != "hi client" {
		t.Fatalf("status=%d body=%q", status, got)
	}
}

func TestRouting(t *testing.T) {
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("POST", "/upload/session", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusCreated, Body: []byte("session")}
		})
		s.Handle("POST", "/upload", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusOK, Body: []byte("upload")}
		})
		s.Handle("*", "/", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusOK, Body: []byte("fallback")}
		})
	})
	var bodies []string
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		for _, pq := range []struct{ m, path string }{
			{"POST", "/upload/session"}, // longest prefix
			{"POST", "/upload/x"},
			{"DELETE", "/anything"},
			{"GET", "/upload"}, // method mismatch on /upload -> fallback
		} {
			resp, err := c.Do(p, &Request{Method: pq.m, Path: pq.path, Host: "server"})
			if err != nil {
				t.Error(err)
				return
			}
			bodies = append(bodies, string(resp.Body))
		}
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	want := "session,upload,fallback,fallback"
	if got := strings.Join(bodies, ","); got != want {
		t.Fatalf("bodies = %s, want %s", got, want)
	}
}

func TestNotFound(t *testing.T) {
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("GET", "/only", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusOK}
		})
	})
	var status int
	var errStr string
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		resp, err := c.Do(p, &Request{Method: "GET", Path: "/nope", Host: "server"})
		if err != nil {
			t.Error(err)
			return
		}
		status = resp.Status
		if e := resp.Error(); e != nil {
			errStr = e.Error()
		}
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	if status != StatusNotFound {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(errStr, "404") {
		t.Fatalf("Error() = %q", errStr)
	}
}

func TestKeepAliveReusesConnection(t *testing.T) {
	// Second request must be much faster than the first (no handshake,
	// ramped window).
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("GET", "/", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusOK, BodySize: 500}
		})
	})
	var first, second float64
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		t0 := p.Now()
		if _, err := c.Do(p, &Request{Method: "GET", Path: "/", Host: "server"}); err != nil {
			t.Error(err)
		}
		first = float64(p.Now() - t0)
		t0 = p.Now()
		if _, err := c.Do(p, &Request{Method: "GET", Path: "/", Host: "server"}); err != nil {
			t.Error(err)
		}
		second = float64(p.Now() - t0)
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	// First pays 3 RTTs of handshake (TLS); second only the exchange.
	if second >= first*0.7 {
		t.Fatalf("keep-alive not reused: first=%v second=%v", first, second)
	}
}

func TestRequestSizeAccounting(t *testing.T) {
	req := &Request{Method: "PUT", Path: "/f", Host: "h", BodySize: 1000}
	if req.Size() <= 1000 || req.Size() > 1500 {
		t.Fatalf("Size = %v", req.Size())
	}
	req2 := &Request{Method: "PUT", Path: "/f", Host: "h", Body: make([]byte, 1000)}
	if req2.ContentLength() != 1000 {
		t.Fatalf("ContentLength = %v", req2.ContentLength())
	}
	req3 := &Request{Method: "GET", Path: "/f", Host: "h", Header: map[string]string{"Authorization": "Bearer tok"}}
	if req3.Size() <= req.Size()-1000 {
		t.Fatalf("headers not counted: %v", req3.Size())
	}
	resp := &Response{Status: 200, BodySize: 2000}
	if resp.Size() <= 2000 {
		t.Fatalf("response Size = %v", resp.Size())
	}
}

func TestServerProcessingDelayCharged(t *testing.T) {
	n, r := world(t)
	s := NewServer(n)
	s.ProcessingDelay = 0.5
	s.Handle("GET", "/", func(ctx *Ctx, req *Request) *Response {
		return &Response{Status: StatusOK}
	})
	l := n.MustListen("server", 443)
	s.Serve(l)
	var dur float64
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		t0 := p.Now()
		_, _ = c.Do(p, &Request{Method: "GET", Path: "/", Host: "server"})
		dur = float64(p.Now() - t0)
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	if dur < 0.5 {
		t.Fatalf("processing delay not charged: %v", dur)
	}
}

func TestHandlerCanSleep(t *testing.T) {
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("POST", "/slow", func(ctx *Ctx, req *Request) *Response {
			ctx.Proc.Sleep(1.0) // model storage backend commit
			return &Response{Status: StatusCreated}
		})
	})
	var dur float64
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		t0 := p.Now()
		_, _ = c.Do(p, &Request{Method: "POST", Path: "/slow", Host: "server"})
		dur = float64(p.Now() - t0)
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	if dur < 1.0 {
		t.Fatalf("handler sleep not observed: %v", dur)
	}
}

func TestLargeUploadDominatedByBandwidth(t *testing.T) {
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("PUT", "/blob", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusCreated}
		})
	})
	var dur float64
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		t0 := p.Now()
		resp, err := c.Do(p, &Request{Method: "PUT", Path: "/blob", Host: "server", BodySize: 50e6})
		if err != nil || !resp.OK() {
			t.Errorf("upload failed: %v %v", resp, err)
		}
		dur = float64(p.Now() - t0)
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	// ~51.5MB wire at 10MB/s ≈ 5.15s + handshakes.
	if dur < 5 || dur > 7 {
		t.Fatalf("50MB upload took %v, want ~5.2-6s", dur)
	}
}

func TestMissingHostRejected(t *testing.T) {
	n, r := world(t)
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		if _, err := c.Do(p, &Request{Method: "GET", Path: "/"}); err == nil {
			t.Error("request without host accepted")
		}
	})
	r.Run()
}

func TestDialFailureSurfaces(t *testing.T) {
	n, r := world(t)
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		if _, err := c.Do(p, &Request{Method: "GET", Path: "/", Host: "server"}); err == nil {
			t.Error("request to non-listening host succeeded")
		}
	})
	r.Run()
}
