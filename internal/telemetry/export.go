package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// fnum formats a float with the shortest representation that round-trips,
// matching tracelog's attribute formatting so dumps stay byte-stable.
func fnum(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promLabels(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for i, n := range names {
		emit(n, values[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: HELP/TYPE headers, cumulative histogram buckets with le
// labels, _sum and _count series. Output order is the snapshot's
// deterministic order.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if f.Type == TypeHistogram && m.Hist != nil {
				var cum uint64
				for i, c := range m.Hist.Counts {
					cum += c
					le := "+Inf"
					if i < len(m.Hist.Bounds) {
						le = fnum(m.Hist.Bounds[i])
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, promLabels(f.Labels, m.LabelValues, "le", le), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
					f.Name, promLabels(f.Labels, m.LabelValues), fnum(m.Hist.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
					f.Name, promLabels(f.Labels, m.LabelValues), m.Hist.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.Name, promLabels(f.Labels, m.LabelValues), fnum(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON. Struct field order is
// fixed, so the encoding is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV renders the snapshot as flat CSV rows:
//
//	family,type,labels,field,value
//
// Counters and gauges emit one "value" row; histograms emit one row per
// bucket (field "le=<bound>") plus "sum" and "count" rows. Label values
// are joined with ';' in schema order.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "family,type,labels,field,value"); err != nil {
		return err
	}
	for _, f := range s.Families {
		for _, m := range f.Metrics {
			labels := strings.Join(m.LabelValues, ";")
			if f.Type == TypeHistogram && m.Hist != nil {
				for i, c := range m.Hist.Counts {
					le := "+Inf"
					if i < len(m.Hist.Bounds) {
						le = fnum(m.Hist.Bounds[i])
					}
					if _, err := fmt.Fprintf(w, "%s,%s,%s,le=%s,%d\n",
						f.Name, f.Type, labels, le, c); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s,%s,%s,sum,%s\n", f.Name, f.Type, labels, fnum(m.Hist.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s,%s,%s,count,%d\n", f.Name, f.Type, labels, m.Hist.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%s,value,%s\n", f.Name, f.Type, labels, fnum(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
