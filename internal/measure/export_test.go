package measure

import (
	"bytes"
	"testing"

	"detournet/internal/core"
	"detournet/internal/stats"
)

// goldenGrid is a small hand-built grid with exactly-representable
// numbers, so every export format can be pinned byte-for-byte. Values
// echo the paper's UBC→Google Drive headline (87 s direct vs 36 s via
// UAlberta at 100 MB).
func goldenGrid() *Grid {
	spec := GridSpec{
		Client:   "ubc-pl",
		Provider: "GoogleDrive",
		Routes:   []core.Route{core.DirectRoute, core.ViaRoute("ualberta")},
		SizesMB:  []int{10, 100},
		Runs:     3, Keep: 3,
	}
	mk := func(sizeMB int, route core.Route, runs []float64, hop1, hop2 float64) *Cell {
		return &Cell{
			SizeMB: sizeMB, Route: route, Runs: runs,
			Summary: stats.LastN(runs, spec.Keep),
			Hop1:    hop1, Hop2: hop2,
		}
	}
	return &Grid{
		Spec: spec,
		Cells: []*Cell{
			mk(10, core.DirectRoute, []float64{7, 8, 9}, 0, 8),
			mk(10, core.ViaRoute("ualberta"), []float64{5.25, 5.25, 5.25}, 2.25, 3),
			mk(100, core.DirectRoute, []float64{86, 87, 88}, 0, 87),
			mk(100, core.ViaRoute("ualberta"), []float64{35, 36, 37}, 17, 19),
		},
	}
}

const goldenCSV = `client,provider,size_mb,route,mean_s,stddev_s,runs_kept,hop1_s,hop2_s,runs_s
ubc-pl,GoogleDrive,10,Direct,8.000,1.000,3,0.000,8.000,7.000;8.000;9.000
ubc-pl,GoogleDrive,10,via ualberta,5.250,0.000,3,2.250,3.000,5.250;5.250;5.250
ubc-pl,GoogleDrive,100,Direct,87.000,1.000,3,0.000,87.000,86.000;87.000;88.000
ubc-pl,GoogleDrive,100,via ualberta,36.000,1.000,3,17.000,19.000,35.000;36.000;37.000
`

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenGrid().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenCSV {
		t.Errorf("CSV drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenCSV)
	}
}

const goldenJSON = `[
  {
    "client": "ubc-pl",
    "provider": "GoogleDrive",
    "size_mb": 10,
    "route": "Direct",
    "mean_s": 8,
    "stddev_s": 1,
    "runs_kept": 3,
    "hop1_s": 0,
    "hop2_s": 8,
    "runs_s": [
      7,
      8,
      9
    ]
  },
  {
    "client": "ubc-pl",
    "provider": "GoogleDrive",
    "size_mb": 10,
    "route": "via ualberta",
    "mean_s": 5.25,
    "stddev_s": 0,
    "runs_kept": 3,
    "hop1_s": 2.25,
    "hop2_s": 3,
    "runs_s": [
      5.25,
      5.25,
      5.25
    ]
  },
  {
    "client": "ubc-pl",
    "provider": "GoogleDrive",
    "size_mb": 100,
    "route": "Direct",
    "mean_s": 87,
    "stddev_s": 1,
    "runs_kept": 3,
    "hop1_s": 0,
    "hop2_s": 87,
    "runs_s": [
      86,
      87,
      88
    ]
  },
  {
    "client": "ubc-pl",
    "provider": "GoogleDrive",
    "size_mb": 100,
    "route": "via ualberta",
    "mean_s": 36,
    "stddev_s": 1,
    "runs_kept": 3,
    "hop1_s": 17,
    "hop2_s": 19,
    "runs_s": [
      35,
      36,
      37
    ]
  }
]
`

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenGrid().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenJSON {
		t.Errorf("JSON drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenJSON)
	}
}

func TestFormatTableGolden(t *testing.T) {
	want := "Size(MB)   | Direct                   | via ualberta            \n" +
		"----------------------------------------------------------------\n" +
		"10         | 8.00 s                   | 5.25 s [-34.38%]        \n" +
		"100        | 87.00 s                  | 36.00 s [-58.62%]       \n"
	if got := goldenGrid().FormatTable(); got != want {
		t.Errorf("table drifted from golden.\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestFormatFigureGolden(t *testing.T) {
	want := "UBC -> GoogleDrive\n" +
		"   10 MB:  Direct=8.00±1.00  via ualberta=5.25±0.00\n" +
		"  100 MB:  Direct=87.00±1.00  via ualberta=36.00±1.00\n"
	if got := goldenGrid().FormatFigure("UBC -> GoogleDrive"); got != want {
		t.Errorf("figure drifted from golden.\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestSeriesGolden pins the per-route series extraction the figures
// plot from.
func TestSeriesGolden(t *testing.T) {
	g := goldenGrid()
	direct := g.Series(core.DirectRoute)
	detour := g.Series(core.ViaRoute("ualberta"))
	wantD, wantV := []float64{8, 87}, []float64{5.25, 36}
	for i := range wantD {
		if direct[i] != wantD[i] || detour[i] != wantV[i] {
			t.Fatalf("series = %v / %v, want %v / %v", direct, detour, wantD, wantV)
		}
	}
}
