// Pressure replay: the storage-exhaustion harness behind `make
// pressure`, the examples/pressure program, detourd's -pressure mode,
// and the pressure acceptance tests. One RunPressure call builds a
// world whose storage is finite everywhere it used to be bottomless —
// each DTN gets a bounded staging disk, Google Drive gets a finite
// account quota, the control-plane journal sits on a bounded device —
// then arms faults.PressureSchedule (a co-tenant filling the staging
// volumes, an abandoned client draining the quota, the journal volume
// filling mid-run) and drives a fixed UBC fleet through the scheduler.
//
// The Stack arm runs the full mitigation ladder: LRU eviction of stale
// staged state, spill-aware placement (route election reads DTN
// headroom), provider-session reclamation on the first 507, spill to
// alternate providers, and journal degradation to in-memory folding.
// The control arm is the pre-mitigation scheduler: no eviction (a full
// disk stays full), no capacity oracle (routes are elected blind), a
// reclaim pass that frees nothing, and no alternate providers (quota
// exhaustion parks the job).
//
// Everything is deterministic per seed: Workers is 1, faults are pure
// functions of the virtual clock, and the report renderer only
// iterates sorted or fixed-order data. Same seed, same binary ⇒
// byte-identical output, which `make check` verifies.
package sched

import (
	"fmt"
	"io"

	"detournet/internal/faults"
	"detournet/internal/health"
	"detournet/internal/journal"
	"detournet/internal/rsyncx"
	"detournet/internal/scenario"
)

// Pressure-world sizing. The fleet commits 60 x 60 MB = 3.6 GB against
// a 2.4 GB Google Drive quota with 600 MB drained by an abandoned
// session for most of the run, so the last third of the fleet can only
// finish by reclaiming the drain and spilling to the alternate
// providers. Staging disks hold ten transfers each; staged copies are
// never deleted after success, so the fleet overruns them early and
// only eviction keeps detours admitting.
const (
	pressureStagingCap = 600e6
	pressureQuota      = 2.4e9
	pressureAltQuota   = 3e9
	pressureJournalCap = 256 << 10
)

// PressureOptions configures one storage-pressure replay.
type PressureOptions struct {
	// Seed drives the world and the injected fault windows.
	Seed int64
	// Jobs is the fleet size (default 60); Size the bytes per transfer
	// (default 60 MB).
	Jobs int
	Size float64
	// Stack arms the mitigation ladder. False runs the ablation: no
	// eviction, no capacity oracle, no reclaim, no spill targets.
	Stack bool
}

// StagingSnapshot is one DTN's final staging-disk accounting.
type StagingSnapshot struct {
	DTN string
	rsyncx.CapacityStats
}

// QuotaSnapshot is one provider's final storage accounting.
type QuotaSnapshot struct {
	Provider string
	// Quota is the configured bound; Used the committed object bytes;
	// Pending the uncommitted bytes live upload sessions still hold.
	Quota, Used, Pending float64
	// SessionsReclaimed counts abandoned sessions GC'd by reclaim.
	SessionsReclaimed int
}

// PressureOutcome is one replay's complete, deterministic result set.
type PressureOutcome struct {
	// Results in completion order.
	Results []Result
	Stats   Stats
	// Transitions is the fault injector's transition log.
	Transitions []string
	// Health is the tracker's transition log (probation and warning
	// lines — the journal-degraded warning lands here); empty for the
	// ablation.
	Health []string
	// Staging holds each DTN's final disk accounting, in scenario.DTNs
	// order.
	Staging []StagingSnapshot
	// Quota holds each provider's final storage accounting, in
	// scenario.ProviderNames order.
	Quota []QuotaSnapshot
	// VirtualSeconds is the total simulated time the replay spanned.
	VirtualSeconds float64
}

// Goodput is the replay's delivered rate: successfully transferred
// bytes over the virtual seconds the whole fleet took.
func (o PressureOutcome) Goodput() float64 {
	if o.VirtualSeconds <= 0 {
		return 0
	}
	var bytes float64
	for _, r := range o.Results {
		if r.Err == nil {
			bytes += r.Job.Size
		}
	}
	return bytes / o.VirtualSeconds
}

// noReclaimExec is the ablation's executor: the full SimExecutor minus
// quota reclamation. Shadowing ReclaimQuota with a no-op models the
// pre-mitigation scheduler, whose 507 handling never asked the
// provider to GC abandoned sessions.
type noReclaimExec struct{ *SimExecutor }

func (e noReclaimExec) ReclaimQuota(provider string) float64 { return 0 }

// RunPressure replays the storage-pressure scenario once.
func RunPressure(o PressureOptions) PressureOutcome {
	if o.Jobs <= 0 {
		o.Jobs = 60
	}
	if o.Size <= 0 {
		o.Size = 60e6
	}
	w := scenario.Build(o.Seed)
	// Finite storage everywhere the seed world was bottomless. Both arms
	// get identical bounds — the delta under test is the mitigation, not
	// the hardware.
	for _, dtn := range scenario.DTNs {
		d := w.Daemons[dtn]
		d.Capacity = pressureStagingCap
		d.EvictStale = o.Stack
	}
	for _, name := range scenario.ProviderNames {
		if name == scenario.GoogleDrive {
			w.Services[name].Store.Quota = pressureQuota
		} else {
			w.Services[name].Store.Quota = pressureAltQuota
		}
	}
	dev := journal.NewMemDevice()
	dev.Capacity = pressureJournalCap
	cj, _, err := NewControlJournal(dev)
	if err != nil {
		panic(err)
	}
	inj := faults.NewInjector(w, o.Seed, faults.PressureSchedule()...)
	inj.SetCrashControl(&faults.CrashControl{JournalENOSPC: cj.JournalENOSPC})
	exec := NewSimExecutor(w)
	defer exec.Close()

	var results []Result
	cfg := Config{
		Workers:  1, // sequential ⇒ deterministic
		Executor: exec, Planner: exec,
		MaxAttempts: 4,
		// Pinned past the whole replay for the same reason as grayfail:
		// a short TTL would let either arm escape a pressure window by
		// re-probe luck instead of through the mitigation under test.
		CacheTTL: 3600,
		Now:      exec.VirtualNow,
		Sleep:    exec.SleepVirtual,
		Journal:  cj,
		OnResult: func(r Result) { results = append(results, r) },
	}
	var tracker *health.Tracker
	if o.Stack {
		cfg.Capacity = exec
		tracker = health.New(health.Options{
			Now: exec.VirtualNow, Trace: w.Trace,
			CanaryInterval: 60,
		})
		cfg.Health = tracker
	} else {
		cfg.DisableHealth = true
		cfg.Executor = noReclaimExec{exec}
	}
	s := New(cfg)
	s.Start()
	// A single-site fleet: UBC to Google Drive, the same shape as the
	// grayfail fleet — except this time the detour DTNs' disks and the
	// destination account are what runs out, not their speed. The stack
	// arm may spill overflow onto the other two providers; the ablation
	// has nowhere to go.
	for i := 0; i < o.Jobs; i++ {
		j := Job{
			Tenant: "pressure", Client: scenario.UBC,
			Provider: scenario.GoogleDrive,
			Name:     fmt.Sprintf("pressure-%03d.bin", i), Size: o.Size,
		}
		if o.Stack {
			j.AltProviders = []string{scenario.Dropbox, scenario.OneDrive}
		}
		if err := s.Submit(j); err != nil {
			panic(err)
		}
	}
	s.Drain()
	st := s.Stats()
	s.Close()
	out := PressureOutcome{
		Results: results, Stats: st,
		Transitions:    inj.Transitions(),
		VirtualSeconds: exec.VirtualNow(),
	}
	for _, dtn := range scenario.DTNs {
		out.Staging = append(out.Staging, StagingSnapshot{
			DTN: dtn, CapacityStats: w.Daemons[dtn].Stats(),
		})
	}
	for _, name := range scenario.ProviderNames {
		svc := w.Services[name]
		out.Quota = append(out.Quota, QuotaSnapshot{
			Provider: name,
			Quota:    svc.Store.Quota, Used: svc.Store.Used(),
			Pending:           svc.PendingBytes(),
			SessionsReclaimed: svc.SessionsReclaimed,
		})
	}
	if tracker != nil {
		out.Health = tracker.Transitions()
	}
	return out
}

// PressureVerdict is the acceptance arithmetic over an ablation/stack
// pair.
type PressureVerdict struct {
	// ControlGoodput and StackGoodput are delivered bytes/sec; Speedup
	// their ratio (the mitigation ladder's recovery factor).
	ControlGoodput float64
	StackGoodput   float64
	// ControlFailed and StackFailed count terminal failures.
	ControlFailed int
	StackFailed   int
	// StackEvictions and StackEvictedBytes aggregate LRU evictions
	// across the stack arm's staging disks.
	StackEvictions    int
	StackEvictedBytes float64
	// QuotaReclaims and ProviderSpills are the stack arm's 507
	// mitigations; QuotaParks its terminal quota failures.
	QuotaReclaims  int64
	ProviderSpills int64
	QuotaParks     int64
}

// Speedup is stack goodput over control goodput (0 when control is 0).
func (v PressureVerdict) Speedup() float64 {
	if v.ControlGoodput <= 0 {
		return 0
	}
	return v.StackGoodput / v.ControlGoodput
}

// ComparePressure scores the ablation against the mitigation stack for
// the same fleet and seed.
func ComparePressure(control, stack PressureOutcome) PressureVerdict {
	v := PressureVerdict{
		ControlGoodput: control.Goodput(),
		StackGoodput:   stack.Goodput(),
		QuotaReclaims:  stack.Stats.QuotaReclaims,
		ProviderSpills: stack.Stats.ProviderSpills,
		QuotaParks:     stack.Stats.QuotaParks,
	}
	for _, r := range control.Results {
		if r.Err != nil {
			v.ControlFailed++
		}
	}
	for _, r := range stack.Results {
		if r.Err != nil {
			v.StackFailed++
		}
	}
	for _, sn := range stack.Staging {
		v.StackEvictions += sn.Evictions
		v.StackEvictedBytes += sn.EvictedBytes
	}
	return v
}

// WritePressureReport renders the deterministic with/without report
// the pressure example and detourd's -pressure mode print.
func WritePressureReport(out io.Writer, control, stack PressureOutcome) {
	line := func(label string, o PressureOutcome) {
		st := o.Stats
		fmt.Fprintf(out, "%-8s %3d done %3d failed | quota: %d fails %d reclaims %d spills %d parked | journal: degraded=%v saves=%d dropped=%d | goodput %.2f MB/s | %.0f virtual s\n",
			label, st.Done, st.Failed,
			st.QuotaFailures, st.QuotaReclaims, st.ProviderSpills, st.QuotaParks,
			st.JournalDegraded, st.JournalENOSPCSaves, st.JournalDropped,
			o.Goodput()/1e6, o.VirtualSeconds)
	}
	fmt.Fprintf(out, "Pressure: %d transfers vs storage exhaustion (%d fault transitions: staging disks fill, quota drains, journal device fills)\n",
		len(stack.Results), len(stack.Transitions))
	line("control", control)
	line("stack", stack)

	v := ComparePressure(control, stack)
	fmt.Fprintf(out, "goodput %.2fx the no-mitigation ablation\n", v.Speedup())
	fmt.Fprintln(out, "staging disks (stack arm):")
	for _, sn := range stack.Staging {
		fmt.Fprintf(out, "  %-9s cap %4.0f MB used %4.0f MB headroom %4.0f MB | %d staged %d partials | %d evictions (%.0f MB) %d orphans swept\n",
			sn.DTN, sn.Capacity/1e6, sn.Used/1e6, sn.Headroom/1e6,
			sn.Staged, sn.Partials, sn.Evictions, sn.EvictedBytes/1e6, sn.OrphansSwept)
	}
	fmt.Fprintln(out, "provider quota (stack arm):")
	for _, q := range stack.Quota {
		fmt.Fprintf(out, "  %-12s quota %4.0f MB used %4.0f MB pending %4.0f MB | %d sessions reclaimed\n",
			q.Provider, q.Quota/1e6, q.Used/1e6, q.Pending/1e6, q.SessionsReclaimed)
	}
	fmt.Fprintln(out, "health transitions:")
	for _, tr := range stack.Health {
		fmt.Fprintf(out, "  %s\n", tr)
	}
}
