package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterAdvancesFromNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil func did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel reported false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestCancelFired(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel of fired event reported true")
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.Schedule(10, func() { at = e.Now() })
	if !e.Reschedule(ev, 4) {
		t.Fatal("Reschedule reported false")
	}
	e.Run()
	if at != 4 {
		t.Fatalf("rescheduled event fired at %v, want 4", at)
	}
	if e.Reschedule(ev, 20) {
		t.Fatal("Reschedule of fired event reported true")
	}
}

func TestRescheduleKeepsOrder(t *testing.T) {
	e := NewEngine()
	var got []string
	a := e.Schedule(1, func() { got = append(got, "a") })
	e.Schedule(2, func() { got = append(got, "b") })
	e.Reschedule(a, 2) // same time as b, but rescheduled later => runs after b
	e.Run()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("order = %v, want [b a]", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1,2", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("Now = %v, want 2", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Now() != 4 {
		t.Fatalf("Now = %v, want 4", e.Now())
	}
}

func TestRunUntilAdvancesClockPastQueue(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(5, func() { n++ })
	e.Advance(3)
	if n != 0 || e.Now() != 3 {
		t.Fatalf("after Advance(3): n=%d now=%v", n, e.Now())
	}
	e.Advance(3)
	if n != 1 || e.Now() != 6 {
		t.Fatalf("after Advance(6): n=%d now=%v", n, e.Now())
	}
}

func TestPeekTime(t *testing.T) {
	e := NewEngine()
	if e.PeekTime() != Infinity {
		t.Fatal("PeekTime on empty queue not Infinity")
	}
	e.Schedule(7, func() {})
	if e.PeekTime() != 7 {
		t.Fatalf("PeekTime = %v, want 7", e.PeekTime())
	}
}

func TestMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 100
	var loop func()
	loop = func() { e.After(0, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("event loop did not trip MaxEvents")
		}
	}()
	e.Run()
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(1, func() {
		e.After(1, func() { got = append(got, e.Now()) })
		e.After(2, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("nested scheduling produced %v, want [2 3]", got)
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

// Property: for any set of (time, id) pairs, execution order equals a
// stable sort by time.
func TestPropertyExecutionIsStableSortByTime(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		e := NewEngine()
		type item struct {
			at  Time
			seq int
		}
		var want []item
		var got []item
		for i, r := range raw {
			at := Time(r % 50)
			want = append(want, item{at, i})
			i := i
			e.Schedule(at, func() { got = append(got, item{at, i}) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never fires those events and fires
// all others.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		e := NewEngine()
		n := 50
		fired := make([]bool, n)
		evs := make([]*Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(Time(rng.Intn(20)), func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				e.Cancel(evs[i])
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if cancelled[i] && fired[i] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, i)
			}
			if !cancelled[i] && !fired[i] {
				t.Fatalf("trial %d: live event %d did not fire", trial, i)
			}
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}

func BenchmarkCancelHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		evs := make([]*Event, 1000)
		for j := range evs {
			evs[j] = e.Schedule(Time(j), func() {})
		}
		for j := 0; j < len(evs); j += 2 {
			e.Cancel(evs[j])
		}
		e.Run()
	}
}
