package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"detournet/internal/tracelog"
)

// FlightRecorder keeps a bounded per-job decision trace: every routing
// election, retry, reroute, park, and failure classification a job goes
// through. When a job finishes the recorder applies the retention
// policy: failed (or parked-out) jobs keep their full trace — up to the
// per-job cap, with a drop counter — while successful jobs are
// truncated to a bare completion marker. The retained set is itself
// bounded FIFO, so a long soak cannot grow memory without bound.
//
// Recording is hot-path work (every job pays for it whether or not it
// fails), so the design keeps the success path allocation-light: a live
// Trace is one allocation with inline storage for the first few events,
// events are compact key/value pairs (no attribute maps), and the only
// recorder-wide lock is taken at Finish. The tracelog.Event view is
// materialized once, at retention time, and only for traces that are
// actually kept.
//
// A nil *FlightRecorder (and the nil *Trace it hands out) is safe
// everywhere; instrumented code never guards.
type FlightRecorder struct {
	now      func() float64
	perJob   int
	retained int

	live atomic.Int64 // handles begun and not yet finished

	mu     sync.Mutex
	kept   []JobTrace // terminal traces, FIFO-bounded at retained
	fin    int        // total finished
	failed int        // finished failed (trace retained in full)
}

// maxNotePairs is the inline attribute capacity of one recorded event.
// Pairs past it are dropped; every instrumentation site stays under it.
const maxNotePairs = 3

// inlineEvents is how many events a Trace holds without a second
// allocation; only jobs with longer decision histories (retry storms)
// spill to the heap.
const inlineEvents = 4

// recEvent is the compact live representation of one decision event:
// key/value pairs inline, so the success fast path never allocates an
// attribute map.
type recEvent struct {
	at   float64
	kind string
	n    int
	kv   [2 * maxNotePairs]string
}

func (e *recEvent) event() tracelog.Event {
	var attrs map[string]any
	if e.n > 0 {
		attrs = make(map[string]any, e.n)
		for i := 0; i < e.n; i++ {
			attrs[e.kv[2*i]] = e.kv[2*i+1]
		}
	}
	return tracelog.Event{At: e.at, Kind: e.kind, Attrs: attrs}
}

// Trace is the live recording handle for one job, obtained once per job
// via Begin. Notes take only the trace's own lock (uncontended unless a
// hedge straggler races the main attempt), never the recorder's.
type Trace struct {
	rec *FlightRecorder
	job string

	mu      sync.Mutex
	buf     []recEvent
	inline  [inlineEvents]recEvent
	seen    int
	dropped int
	done    bool
}

// JobTrace is the retained decision history of one finished job.
type JobTrace struct {
	Job     string
	Events  []tracelog.Event
	Dropped int  // events evicted by the per-job cap
	Seen    int  // total events noted, including dropped/truncated
	Failed  bool // retention reason; false = truncated success
}

// NewFlightRecorder builds a recorder stamping events with now(),
// keeping at most perJob events per live trace and the last retained
// failed traces. Zero values pick defaults (64 events, 8 traces); a nil
// now stamps every event at 0.
func NewFlightRecorder(now func() float64, perJob, retained int) *FlightRecorder {
	if perJob <= 0 {
		perJob = 64
	}
	if retained <= 0 {
		retained = 8
	}
	if now == nil {
		now = func() float64 { return 0 }
	}
	return &FlightRecorder{
		now:      now,
		perJob:   perJob,
		retained: retained,
	}
}

// Begin opens a live trace for job. The handle is not registered
// anywhere — the caller threads it through the job's lifetime and hands
// it back to Finish — so beginning costs one allocation and no lock.
func (r *FlightRecorder) Begin(job string) *Trace {
	if r == nil {
		return nil
	}
	t := &Trace{rec: r, job: job}
	t.buf = t.inline[:0]
	r.live.Add(1)
	return t
}

// Note appends a decision event to the trace. kv alternates keys and
// values (already formatted; tracelog renders them verbatim). At most
// maxNotePairs pairs are kept. Oldest events are evicted FIFO once the
// per-job cap is hit; notes after Finish are dropped.
func (t *Trace) Note(kind string, kv ...string) {
	if t == nil {
		return
	}
	at := t.rec.now()
	n := len(kv) / 2
	if n > maxNotePairs {
		n = maxNotePairs
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.seen++
	if len(t.buf) >= t.rec.perJob {
		copy(t.buf, t.buf[1:])
		t.buf = t.buf[:len(t.buf)-1]
		t.dropped++
	}
	var e recEvent
	e.at = at
	e.kind = kind
	e.n = n
	copy(e.kv[:], kv[:2*n])
	t.buf = append(t.buf, e)
	t.mu.Unlock()
}

// Finish applies the retention policy to a job's trace. Failed jobs
// keep everything recorded so far — materialized as tracelog events
// here, the one place that pays for attribute maps; successful jobs are
// truncated to their event count. tr may be nil (a job that never
// recorded anything, or recording off mid-stream): an empty terminal
// trace is kept so counts stay honest. Finishing the same handle twice
// counts once.
func (r *FlightRecorder) Finish(tr *Trace, job string, failed bool) {
	if r == nil {
		return
	}
	kept := JobTrace{Job: job, Failed: failed}
	if tr != nil {
		tr.mu.Lock()
		if tr.done {
			tr.mu.Unlock()
			return
		}
		tr.done = true
		kept.Seen = tr.seen
		if failed {
			kept.Dropped = tr.dropped
			kept.Events = make([]tracelog.Event, len(tr.buf))
			for i := range tr.buf {
				kept.Events[i] = tr.buf[i].event()
			}
		}
		tr.buf = nil
		tr.mu.Unlock()
		r.live.Add(-1)
	}
	r.mu.Lock()
	r.fin++
	if failed {
		r.failed++
	}
	r.kept = append(r.kept, kept)
	if len(r.kept) > r.retained {
		// Evict the oldest truncated-success marker first; only
		// displace a failed trace when everything retained is failed.
		evict := 0
		for i := range r.kept {
			if !r.kept[i].Failed {
				evict = i
				break
			}
		}
		copy(r.kept[evict:], r.kept[evict+1:])
		r.kept = r.kept[:len(r.kept)-1]
	}
	r.mu.Unlock()
}

// Retained returns copies of the kept terminal traces, failed traces
// first, each group ordered by job name, so reports are deterministic.
func (r *FlightRecorder) Retained() []JobTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobTrace, 0, len(r.kept))
	for _, tr := range r.kept {
		cp := tr
		cp.Events = append([]tracelog.Event(nil), tr.Events...)
		out = append(out, cp)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Failed != out[j].Failed {
			return out[i].Failed
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// Live returns the number of in-flight traces.
func (r *FlightRecorder) Live() int {
	if r == nil {
		return 0
	}
	return int(r.live.Load())
}

// Counts reports (finished, failed-and-retained-in-full).
func (r *FlightRecorder) Counts() (finished, failed int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fin, r.failed
}
