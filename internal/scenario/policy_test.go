package scenario

import (
	"strings"
	"testing"

	"detournet/internal/core"
	"detournet/internal/simproc"
)

func TestPolicyWorldRoutesAllPairs(t *testing.T) {
	w := Build(71, WithPolicyRouting())
	pol := PaperPolicy()
	// The three pinned routes model operator/IXP configuration outside
	// the AS-relationship model; they must route but are exempt from the
	// valley-free check.
	pinned := map[[2]string]bool{
		{UBC, GDriveDC}:      true,
		{Purdue, GDriveDC}:   true,
		{Purdue, OneDriveDC}: true,
	}
	endpoints := append(append([]string{}, Clients...), UAlberta, UMich)
	for _, src := range endpoints {
		for _, prov := range ProviderNames {
			dst := Providers[prov]
			doms, err := w.DomainPathOf(src, dst)
			if err != nil {
				t.Fatalf("%s -> %s unroutable under policy: %v", src, dst, err)
			}
			if pinned[[2]string{src, dst}] {
				continue
			}
			if !pol.ValleyFree(doms) {
				t.Fatalf("%s -> %s domain path %v not valley-free", src, dst, doms)
			}
		}
	}
}

func TestPolicyWorldKeepsPaperArtifacts(t *testing.T) {
	w := Build(72, WithPolicyRouting())
	// The pinned UBC->Google route still crosses PacificWave.
	doms, err := w.DomainPathOf(UBC, GDriveDC)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(doms, ","); !strings.Contains(got, "PacificWave") {
		t.Fatalf("pinned UBC route lost under policy routing: %v", doms)
	}
	// UAlberta (unpinned) exits CANARIE straight into Google.
	doms, err = w.DomainPathOf(UAlberta, GDriveDC)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(doms, ",")
	if !strings.Contains(got, "CANARIE,Google") {
		t.Fatalf("UAlberta -> Google = %v, want CANARIE peering exit", doms)
	}
	// No university domain ever transits another's traffic.
	for _, src := range Clients {
		for _, prov := range ProviderNames {
			doms, err := w.DomainPathOf(src, Providers[prov])
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range doms[1:] {
				for _, stub := range []string{"UBC", "UAlberta", "UMich", "Purdue", "UCLA"} {
					if d == stub && doms[0] != stub {
						t.Fatalf("%s -> %s transits university stub %s: %v", src, prov, stub, doms)
					}
				}
			}
		}
	}
}

func TestPolicyWorldTransfersStillWork(t *testing.T) {
	// End-to-end: uploads complete under policy routing, and the
	// headline detour still wins (the artifact links are unchanged).
	w := Build(73, WithPolicyRouting())
	var direct, detour float64
	w.RunWorkload("policy-transfer", func(p *simproc.Proc) {
		client := w.NewSDKClient(UBC, GoogleDrive)
		defer client.Close()
		rep, err := core.DirectUpload(p, client, "a.bin", 60e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		direct = rep.Total
		dc := w.NewDetourClient(UBC, UAlberta)
		rep, err = dc.Upload(p, GoogleDrive, "b.bin", 60e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		detour = rep.Total
	})
	if detour >= direct {
		t.Fatalf("under policy routing detour (%v) should still beat direct (%v)", detour, direct)
	}
}

func TestPolicyPaperPolicyValleyFreeEverywhere(t *testing.T) {
	pol := PaperPolicy()
	for _, src := range pol.Domains() {
		for _, dst := range pol.Domains() {
			if src == dst {
				continue
			}
			path, err := pol.DomainPath(src, dst)
			if err != nil {
				continue // some pairs are legitimately unreachable
			}
			if !pol.ValleyFree(path) {
				t.Fatalf("%s -> %s = %v not valley-free", src, dst, path)
			}
		}
	}
}
