package sched

import (
	"errors"
	"sync"
	"testing"

	"detournet/internal/core"
	"detournet/internal/httpsim"
)

// reclaimExec wraps countingExec with a QuotaReclaimer whose freed
// bytes and call count the tests script and inspect.
type reclaimExec struct {
	*countingExec
	mu    sync.Mutex
	freed float64
	calls int
}

func (e *reclaimExec) ReclaimQuota(provider string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calls++
	return e.freed
}

func (e *reclaimExec) reclaimCalls() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

// quota507 builds the typed error a 507 Insufficient Storage surfaces
// through the SDK: FailQuota class, Retry-After hint in the chain.
func quota507(retryAfter float64) error {
	return Quota(&httpsim.StatusError{
		Status: httpsim.StatusInsufficientStorage, RetryAfter: retryAfter,
	})
}

// TestQuotaReclaimRetryFloorsBackoff: when session reclaim frees bytes,
// the retry against the same provider is floored at the 507's
// Retry-After hint — retrying before the provider's pacing window just
// burns the attempt the reclaim bought back.
func TestQuotaReclaimRetryFloorsBackoff(t *testing.T) {
	var mu sync.Mutex
	failed := false
	exec := &reclaimExec{countingExec: newCountingExec(0), freed: 100e6}
	exec.fail = func(Job, core.Route) error {
		mu.Lock()
		defer mu.Unlock()
		if !failed {
			failed = true
			return quota507(9)
		}
		return nil
	}
	var delays []float64
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: &staticPlanner{route: core.DirectRoute},
		MaxAttempts: 3,
		// Tiny curve: a delay near the hint provably came from the floor.
		Backoff:  Backoff{Base: 0.01, Max: 0.02, Factor: 2, Jitter: 0.5},
		Sleep:    func(sec float64) { delays = append(delays, sec) },
		OnResult: got.add,
	})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "full.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if res := got.all(); len(res) != 1 || res[0].Err != nil {
		t.Fatalf("result = %+v, want one success", res)
	}
	if len(delays) != 1 || delays[0] != 9 {
		t.Fatalf("sleeps = %v, want exactly [9] (the 507 Retry-After hint)", delays)
	}
	if n := exec.reclaimCalls(); n != 1 {
		t.Fatalf("reclaim calls = %d, want 1", n)
	}
	st := s.Stats()
	if st.QuotaFailures != 1 || st.QuotaReclaims != 1 || st.ProviderSpills != 0 || st.QuotaParks != 0 {
		t.Fatalf("stats = %+v, want 1 quota failure, 1 reclaim, 0 spills, 0 parks", st)
	}
}

// TestQuotaSpillSwitchesProvider: reclaim freeing nothing, the job
// spills to its first allowed alternate — a fresh provider session,
// no attempt slot burned, no backoff sleep.
func TestQuotaSpillSwitchesProvider(t *testing.T) {
	exec := &reclaimExec{countingExec: newCountingExec(0), freed: 0}
	exec.fail = func(j Job, _ core.Route) error {
		if j.Provider == "full-a" || j.Provider == "full-b" {
			return quota507(5)
		}
		return nil
	}
	var delays []float64
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: &staticPlanner{route: core.DirectRoute},
		MaxAttempts: 3,
		Backoff:     Backoff{Base: 0.01, Max: 0.02, Factor: 2, Jitter: 0.5},
		Sleep:       func(sec float64) { delays = append(delays, sec) },
		OnResult:    got.add,
	})
	s.Start()
	defer s.Close()
	err := s.Submit(Job{
		Tenant: "t", Client: "c", Provider: "full-a",
		AltProviders: []string{"full-b", "open"},
		Name:         "spill.bin", Size: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := got.all()
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("result = %+v, want one success", res)
	}
	if res[0].Job.Provider != "open" {
		t.Fatalf("final provider = %q, want %q (spilled down the alt chain)", res[0].Job.Provider, "open")
	}
	if res[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (spills do not burn attempt slots)", res[0].Attempts)
	}
	if len(delays) != 0 {
		t.Fatalf("sleeps = %v, want none (spills do not back off)", delays)
	}
	st := s.Stats()
	if st.ProviderSpills != 2 || st.QuotaFailures != 2 || st.QuotaParks != 0 {
		t.Fatalf("stats = %+v, want 2 spills, 2 quota failures, 0 parks", st)
	}
}

// TestQuotaParksWithTypedError: nothing reclaimed and nowhere to
// spill, the job parks with a *QuotaError carrying the provider's
// Retry-After hint, and errors.Is matches core.ErrQuotaExhausted.
func TestQuotaParksWithTypedError(t *testing.T) {
	exec := newCountingExec(0)
	exec.fail = func(Job, core.Route) error { return quota507(12) }
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: &staticPlanner{route: core.DirectRoute},
		MaxAttempts: 4,
		Backoff:     Backoff{Base: 0.01, Max: 0.02, Factor: 2, Jitter: 0.5},
		Sleep:       func(float64) {},
		OnResult:    got.add,
	})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "parked.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := got.all()
	if len(res) != 1 || res[0].Err == nil {
		t.Fatalf("result = %+v, want one failure", res)
	}
	var qe *QuotaError
	if !errors.As(res[0].Err, &qe) {
		t.Fatalf("err = %v (%T), want *QuotaError", res[0].Err, res[0].Err)
	}
	if qe.Provider != "p" || qe.RetryAfter != 12 {
		t.Fatalf("QuotaError = %+v, want provider p, retry-after 12", qe)
	}
	if !errors.Is(res[0].Err, core.ErrQuotaExhausted) {
		t.Fatal("errors.Is(err, core.ErrQuotaExhausted) = false, want true")
	}
	if res[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (quota parks immediately, no blind retries)", res[0].Attempts)
	}
	st := s.Stats()
	if st.QuotaParks != 1 {
		t.Fatalf("stats = %+v, want 1 quota park", st)
	}
}

// TestQuotaParkDefaultHint: a 507 without Retry-After parks with the
// default hint instead of zero.
func TestQuotaParkDefaultHint(t *testing.T) {
	exec := newCountingExec(0)
	exec.fail = func(Job, core.Route) error { return quota507(0) }
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: &staticPlanner{route: core.DirectRoute},
		MaxAttempts: 2,
		Backoff:     Backoff{Base: 0.01, Max: 0.02, Factor: 2, Jitter: 0.5},
		Sleep:       func(float64) {},
		OnResult:    got.add,
	})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "hintless.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := got.all()
	var qe *QuotaError
	if len(res) != 1 || !errors.As(res[0].Err, &qe) {
		t.Fatalf("result = %+v, want one *QuotaError failure", res)
	}
	if qe.RetryAfter != defaultQuotaParkAfter {
		t.Fatalf("RetryAfter = %v, want default %v", qe.RetryAfter, float64(defaultQuotaParkAfter))
	}
}

// TestQuotaReclaimOnlyOnce: a provider that stays full after a
// successful-looking reclaim is not reclaimed again by the same job —
// the ladder moves on to spill/park instead of looping.
func TestQuotaReclaimOnlyOnce(t *testing.T) {
	exec := &reclaimExec{countingExec: newCountingExec(0), freed: 100e6}
	exec.fail = func(Job, core.Route) error { return quota507(1) }
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: &staticPlanner{route: core.DirectRoute},
		MaxAttempts: 4,
		Backoff:     Backoff{Base: 0.01, Max: 0.02, Factor: 2, Jitter: 0.5},
		Sleep:       func(float64) {},
		OnResult:    got.add,
	})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "stillfull.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := got.all()
	if len(res) != 1 || res[0].Err == nil {
		t.Fatalf("result = %+v, want one failure", res)
	}
	if n := exec.reclaimCalls(); n != 1 {
		t.Fatalf("reclaim calls = %d, want exactly 1 per job per provider", n)
	}
}

// TestClassifyQuota pins the taxonomy: tagged quota errors and bare
// core.ErrQuotaExhausted classify FailQuota; the class renders "quota".
func TestClassifyQuota(t *testing.T) {
	if c := Classify(quota507(3)); c != FailQuota {
		t.Fatalf("Classify(tagged 507) = %v, want FailQuota", c)
	}
	if c := Classify(core.ErrQuotaExhausted); c != FailQuota {
		t.Fatalf("Classify(sentinel) = %v, want FailQuota", c)
	}
	if FailQuota.String() != "quota" {
		t.Fatalf("FailQuota.String() = %q", FailQuota.String())
	}
}
