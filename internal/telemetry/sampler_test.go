package telemetry

import (
	"testing"

	"detournet/internal/simclock"
)

func TestSeriesWraparound(t *testing.T) {
	s := newSeries(4)
	for i := 0; i < 10; i++ {
		s.push(float64(i), float64(i)*10)
	}
	snap := s.snapshot("w")
	if snap.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.Dropped)
	}
	if len(snap.Values) != 4 {
		t.Fatalf("len = %d, want 4", len(snap.Values))
	}
	for i, wantT := range []float64{6, 7, 8, 9} {
		if snap.Times[i] != wantT || snap.Values[i] != wantT*10 {
			t.Fatalf("snapshot = %+v, want last four samples in order", snap)
		}
	}
	if snap.Last() != 90 || snap.Min() != 60 || snap.Max() != 90 {
		t.Fatalf("last/min/max = %g/%g/%g", snap.Last(), snap.Min(), snap.Max())
	}
}

func TestSamplerGridAlignmentAndPause(t *testing.T) {
	eng := simclock.NewEngine()
	samp := NewSampler(eng, 5, 16)
	depth := 0.0
	samp.Track("depth", func() float64 { return depth })

	// Start mid-grid: first tick must land on the next multiple of 5.
	eng.RunUntil(3)
	samp.Restart()
	depth = 2
	eng.RunUntil(12) // ticks at 5, 10
	samp.StopAll()
	snap := samp.Series("depth")
	if len(snap.Times) != 2 || snap.Times[0] != 5 || snap.Times[1] != 10 {
		t.Fatalf("tick times = %v, want [5 10]", snap.Times)
	}
	if snap.Values[0] != 2 || snap.Values[1] != 2 {
		t.Fatalf("values = %v", snap.Values)
	}

	// While stopped no ticks fire; Restart realigns to the grid.
	eng.RunUntil(23)
	samp.Restart()
	depth = 7
	eng.RunUntil(31)
	samp.StopAll()
	snap = samp.Series("depth")
	if len(snap.Times) != 4 || snap.Times[2] != 25 || snap.Times[3] != 30 {
		t.Fatalf("tick times after pause = %v, want [5 10 25 30]", snap.Times)
	}
	if snap.Values[3] != 7 {
		t.Fatalf("values = %v", snap.Values)
	}
	if samp.Samples() != 4 {
		t.Fatalf("samples = %d, want 4", samp.Samples())
	}
}

func TestSamplerProbesSortedAndOnSample(t *testing.T) {
	eng := simclock.NewEngine()
	samp := NewSampler(eng, 1, 8)
	var order []string
	samp.Track("zz", func() float64 { order = append(order, "zz"); return 0 })
	samp.Track("aa", func() float64 { order = append(order, "aa"); return 0 })
	var ticks []float64
	samp.OnSample(func(tm float64) { ticks = append(ticks, tm) })
	samp.Restart()
	eng.RunUntil(2.5)
	samp.StopAll()
	if len(order) != 4 || order[0] != "aa" || order[1] != "zz" {
		t.Fatalf("probe order = %v, want sorted per tick", order)
	}
	if len(ticks) != 2 || ticks[0] != 1 || ticks[1] != 2 {
		t.Fatalf("onSample ticks = %v", ticks)
	}
	names := samp.Snapshot()
	if len(names) != 2 || names[0].Name != "aa" || names[1].Name != "zz" {
		t.Fatalf("snapshot order = %+v", names)
	}
}

func TestSpark(t *testing.T) {
	if Spark(nil, 10) != "" {
		t.Fatal("empty series should render empty")
	}
	s := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("spark = %q", s)
	}
	if got := Spark([]float64{5, 5, 5}, 8); got != "▅▅▅" {
		t.Fatalf("flat spark = %q, want mid-height", got)
	}
	// Downsampling halves 8 points into 4 columns of bucket means.
	if got := Spark([]float64{0, 0, 8, 8, 0, 0, 8, 8}, 4); len([]rune(got)) != 4 {
		t.Fatalf("downsampled width = %q", got)
	}
}
