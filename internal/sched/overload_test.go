package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"detournet/internal/core"
	"detournet/internal/faults"
	"detournet/internal/scenario"
)

// ---- synthetic deterministic harness ----------------------------------
//
// The overload acceptance tests run the real scheduler against a manual
// virtual clock and an analytic executor: one worker, so every clock
// advance is sequential, and trace arrivals are injected the moment an
// executor call carries the clock past them. Same trace + same config ⇒
// byte-identical outcomes — the pattern examples/overload reuses.

// vclock is a manual scheduler clock safe for concurrent reads.
type vclock struct {
	mu sync.Mutex
	t  float64
}

func (c *vclock) now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.t += d
	}
	return c.t
}

// arrival is one trace entry for the synthetic driver.
type arrival struct {
	at  float64
	job Job
}

// synthExec serves every transfer at a fixed seconds-per-byte rate in
// manual virtual time, and — the crucial part — calls feed after every
// clock advance so arrivals due during a transfer enter the queue as if
// they had arrived in real time.
type synthExec struct {
	clock   *vclock
	spb     float64
	planSec float64
	feed    func(now float64)
}

func (e *synthExec) Execute(j Job, r core.Route) (float64, error) {
	sec := j.Size * e.spb
	end := e.clock.advance(sec)
	if e.feed != nil {
		e.feed(end)
	}
	return sec, nil
}

func (e *synthExec) Plan(client, provider string, size float64) (core.Route, []core.Route, error) {
	end := e.clock.advance(e.planSec)
	if e.feed != nil {
		e.feed(end)
	}
	return core.DirectRoute, nil, nil
}

func (e *synthExec) sleep(sec float64) {
	end := e.clock.advance(sec)
	if e.feed != nil {
		e.feed(end)
	}
}

// synthRun drives one scheduler through one trace.
type synthRun struct {
	clock *vclock
	s     *Scheduler
	col   *collector

	mu       sync.Mutex
	trace    []arrival
	i        int
	attempts map[string]int64 // per-tenant submission attempts
	rejects  map[string]int64 // per-tenant backpressure rejections
}

func newSynthRun(trace []arrival, tune func(*Config)) *synthRun {
	r := &synthRun{
		clock:    &vclock{},
		col:      &collector{},
		trace:    trace,
		attempts: map[string]int64{},
		rejects:  map[string]int64{},
	}
	exec := &synthExec{clock: r.clock, spb: 1e-7, planSec: 0.5, feed: r.feed}
	cfg := Config{
		Workers:     1, // sequential ⇒ deterministic
		Executor:    exec,
		Planner:     exec,
		ProviderCap: -1, DTNCap: -1,
		MaxAttempts: 1,
		CacheTTL:    1e9,
		Now:         r.clock.now,
		Sleep:       exec.sleep,
		OnResult:    r.col.add,
	}
	if tune != nil {
		tune(&cfg)
	}
	r.s = New(cfg)
	return r
}

// feed submits every trace arrival that is due by now. Called from the
// worker (mid-execution) and from drive (worker idle); the two never
// overlap, but the mutex keeps the race detector satisfied.
func (r *synthRun) feed(now float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.i < len(r.trace) && r.trace[r.i].at <= now {
		j := r.trace[r.i].job
		r.i++
		r.attempts[j.Tenant]++
		if err := r.s.Submit(j); err != nil {
			r.rejects[j.Tenant]++
		}
	}
}

// drive replays the whole trace and drains the scheduler.
func (r *synthRun) drive() {
	r.s.Start()
	for {
		r.s.Drain()
		r.mu.Lock()
		done := r.i >= len(r.trace)
		var next float64
		if !done {
			next = r.trace[r.i].at
		}
		r.mu.Unlock()
		if done {
			break
		}
		if now := r.clock.now(); next > now {
			r.clock.advance(next - now)
		}
		r.feed(r.clock.now())
	}
	r.s.Drain()
	r.s.Close()
}

// flashCrowdTrace builds the acceptance workload: four steady tenants
// at 1.25 jobs/s for the whole 160s trace, plus a flash tenant bursting
// at 25 jobs/s during [40s, 120s) — 30 jobs/s aggregate against a
// 10 jobs/s sustainable service rate (1 MB jobs at 10 MB/s), every job
// with 15s of deadline slack.
const (
	synthSlack      = 15.0
	synthTraceEnd   = 160.0
	synthBurstStart = 40.0
	synthBurstEnd   = 120.0
)

func flashCrowdTrace(seed int64) []arrival {
	rng := rand.New(rand.NewSource(seed))
	var trace []arrival
	add := func(tenant string, at float64, i int) {
		trace = append(trace, arrival{at: at, job: Job{
			Tenant: tenant, Client: "site", Provider: "P",
			Name: fmt.Sprintf("%s-%05d.bin", tenant, i),
			Size: 1e6, Deadline: at + synthSlack,
		}})
	}
	for ti := 0; ti < 4; ti++ {
		tenant := fmt.Sprintf("steady-%d", ti)
		t, i := 0.0, 0
		for {
			t += rng.ExpFloat64() / 1.25
			if t > synthTraceEnd {
				break
			}
			add(tenant, t, i)
			i++
		}
	}
	t, i := synthBurstStart, 0
	for {
		t += rng.ExpFloat64() / 25
		if t >= synthBurstEnd {
			break
		}
		add("flash", t, i)
		i++
	}
	sort.SliceStable(trace, func(a, b int) bool { return trace[a].at < trace[b].at })
	return trace
}

// overloadTune arms the full overload-control stack.
func overloadTune(cfg *Config) {
	cfg.QueueLimit = 200
	cfg.TenantQueueLimit = 120
	cfg.FairQueue = true
	cfg.DRRQuantumBytes = 1e6
	cfg.CoDelTarget = 3
	cfg.BrownoutEnter = 0.7
}

// goodput sums bytes of jobs that completed before their deadline.
func goodput(results []Result) float64 {
	var b float64
	for _, r := range results {
		if r.Err == nil && !r.Late {
			b += r.Job.Size
		}
	}
	return b
}

// quarterMeans buckets every result's queue delay by its arrival-time
// quarter of the trace.
func quarterMeans(results []Result) [4]float64 {
	var sum, n [4]float64
	for _, r := range results {
		at := r.Job.Deadline - synthSlack
		q := int(at / (synthTraceEnd / 4))
		if q > 3 {
			q = 3
		}
		sum[q] += r.QueueDelay
		n[q]++
	}
	var out [4]float64
	for i := range out {
		if n[i] > 0 {
			out[i] = sum[i] / n[i]
		}
	}
	return out
}

// TestOverloadAcceptance is the issue's acceptance criterion: under a
// flash crowd at 3× the sustainable rate, the overload-controlled
// scheduler beats a control run (no bounds, no shedding, no fairness)
// by ≥1.5× goodput, keeps every steady tenant at ≥half its fair share
// (Jain ≥ 0.9 across steady tenants; the flash aggressor is excluded
// since it demands far more than its share by construction), and keeps
// queue delay bounded while the control's grows through the trace.
func TestOverloadAcceptance(t *testing.T) {
	trace := flashCrowdTrace(42)

	control := newSynthRun(trace, nil)
	control.drive()
	overload := newSynthRun(trace, overloadTune)
	overload.drive()

	gControl, gOverload := goodput(control.col.all()), goodput(overload.col.all())
	t.Logf("goodput: control=%.0fMB overload=%.0fMB (%.2fx)", gControl/1e6, gOverload/1e6, gOverload/gControl)
	if gOverload < 1.5*gControl {
		t.Errorf("goodput %.0fMB < 1.5x control %.0fMB", gOverload/1e6, gControl/1e6)
	}

	// Fairness: per-steady-tenant completion ratio (deadline-met jobs
	// over submission attempts).
	doneByTenant := map[string]float64{}
	for _, r := range overload.col.all() {
		if r.Err == nil && !r.Late {
			doneByTenant[r.Job.Tenant]++
		}
	}
	var ratios []float64
	for ti := 0; ti < 4; ti++ {
		tenant := fmt.Sprintf("steady-%d", ti)
		ratio := doneByTenant[tenant] / float64(overload.attempts[tenant])
		ratios = append(ratios, ratio)
		if ratio < 0.5 {
			t.Errorf("tenant %s completion ratio %.2f < 0.5 of its demand", tenant, ratio)
		}
	}
	if jain := JainIndex(ratios); jain < 0.9 {
		t.Errorf("Jain index over steady tenants = %.3f < 0.9 (ratios %v)", jain, ratios)
	}
	if doneByTenant["flash"] == 0 {
		t.Error("flash tenant fully starved; fairness should leave it the residual capacity")
	}

	// Queue delay: the control's grows across the burst, the overload
	// run's stays bounded near the CoDel target.
	cm, om := quarterMeans(control.col.all()), quarterMeans(overload.col.all())
	t.Logf("mean queue delay by quarter: control=%v overload=%v", cm, om)
	if !(cm[2] > cm[1] && cm[1] > cm[0]) {
		t.Errorf("control delay should grow through the burst: %v", cm)
	}
	oMax := 0.0
	for _, v := range om {
		if v > oMax {
			oMax = v
		}
	}
	if cm[2] < 3*oMax {
		t.Errorf("control Q3 delay %.1fs not >> overload max quarter %.1fs", cm[2], oMax)
	}
	ost := overload.s.Stats()
	if ost.QueueDelayP99 >= synthSlack {
		t.Errorf("overload p99 admitted delay %.1fs not bounded below the %gs slack", ost.QueueDelayP99, synthSlack)
	}

	// The control mechanisms actually fired.
	if ost.Shed == 0 {
		t.Error("overload run shed nothing")
	}
	if ost.QueueFullRejects+ost.TenantQuotaRejects == 0 {
		t.Error("overload run never exerted backpressure")
	}
	cst := control.s.Stats()
	if cst.Expired == 0 {
		t.Error("control run expired nothing; the trace is not overloading it")
	}
}

// synthSummary renders one run as a stable string for the determinism
// regression (sorted iteration everywhere).
func synthSummary(seed int64) string {
	run := newSynthRun(flashCrowdTrace(seed), overloadTune)
	run.drive()
	st := run.s.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "goodput=%.0f done=%d failed=%d expired=%d shed=%d late=%d qfull=%d quota=%d p99=%.3f\n",
		goodput(run.col.all()), st.Done, st.Failed, st.Expired, st.Shed, st.Late,
		st.QueueFullRejects, st.TenantQuotaRejects, st.QueueDelayP99)
	perTenant := map[string][2]int64{}
	for _, r := range run.col.all() {
		c := perTenant[r.Job.Tenant]
		c[0]++
		if r.Err == nil {
			c[1]++
		}
		perTenant[r.Job.Tenant] = c
	}
	tenants := make([]string, 0, len(perTenant))
	for tn := range perTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		fmt.Fprintf(&b, "%s results=%d done=%d attempts=%d rejects=%d\n",
			tn, perTenant[tn][0], perTenant[tn][1], run.attempts[tn], run.rejects[tn])
	}
	return b.String()
}

// TestOverloadDeterminism mirrors the chaos determinism regression: the
// same seed must reproduce the whole overload run byte-for-byte —
// shedding, backpressure, fairness, and per-tenant outcomes included.
func TestOverloadDeterminism(t *testing.T) {
	a, b := synthSummary(7), synthSummary(7)
	if a != b {
		t.Fatalf("overload replay diverged for one seed:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if synthSummary(8) == a {
		t.Fatal("different seeds produced identical summaries; the trace ignores its seed")
	}
}

// ---- unit tests for the control mechanisms ----------------------------

func TestCodelShedsOnStandingDelay(t *testing.T) {
	c := newCodel(1.0, 0.5)
	// A single spike is absorbed: EWMA primed at 5 > target, but the
	// next fast samples pull it back down.
	if shed, _ := c.onDequeue(0.1); shed {
		t.Fatal("shed a fast job on a fresh queue")
	}
	// Standing delay: repeated slow samples must start shedding.
	shedCount := 0
	for i := 0; i < 10; i++ {
		if shed, after := c.onDequeue(5); shed {
			shedCount++
			if after <= 0 {
				t.Fatal("retry-after hint not populated")
			}
		}
	}
	if shedCount < 8 {
		t.Fatalf("standing 5s delay against 1s target shed only %d/10", shedCount)
	}
	// A slow job during recovery is spared once the EWMA halves.
	for i := 0; i < 20; i++ {
		c.onDequeue(0.01)
	}
	if shed, _ := c.onDequeue(1.5); shed {
		t.Fatal("kept shedding after the standing delay cleared (no hysteresis exit)")
	}
}

func TestShedErrorShape(t *testing.T) {
	err := error(&ShedError{RetryAfter: 2.5})
	if !errors.Is(err, ErrShed) {
		t.Fatal("ShedError does not match ErrShed")
	}
	var se *ShedError
	if !errors.As(err, &se) || se.RetryAfter != 2.5 {
		t.Fatalf("retry-after lost: %v", err)
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	b := newBrownout(0.7, 0.3)
	if b.observe(0.5) {
		t.Fatal("brownout below enter threshold")
	}
	if !b.observe(0.8) {
		t.Fatal("no brownout above enter threshold")
	}
	if !b.observe(0.5) {
		t.Fatal("brownout exited above the exit threshold (no hysteresis)")
	}
	if b.observe(0.2) {
		t.Fatal("brownout survived below exit threshold")
	}
	if b.enters != 1 || b.exits != 1 {
		t.Fatalf("transitions = %d/%d, want 1/1", b.enters, b.exits)
	}
}

// waitFor polls a condition with a real-time deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// gatedExec blocks a designated job until released, then serves
// everything instantly — it pins a worker so tests can pile up a queue.
type gatedExec struct {
	gate chan struct{}
}

func (e *gatedExec) Execute(j Job, r core.Route) (float64, error) {
	if j.Name == "blocker" {
		<-e.gate
	}
	return 0.01, nil
}

func TestBrownoutShedsOptionalWork(t *testing.T) {
	exec := &gatedExec{gate: make(chan struct{})}
	planner := &staticPlanner{route: core.ViaRoute(scenario.UAlberta)}
	clock := &vclock{}
	s := New(Config{
		Workers: 1, Executor: exec, Planner: planner,
		QueueLimit: 10, BrownoutEnter: 0.2, BrownoutExit: 0.05,
		CacheTTL: 1e9, Now: clock.now, Sleep: func(float64) {},
	})
	s.Start()
	defer s.Close()

	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P1", Name: "blocker", Size: 1e3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Running == 1 })
	// Pile up 5 small jobs: occupancy 0.5 ≥ 0.2 ⇒ brownout.
	for i := 0; i < 5; i++ {
		if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P2", Name: fmt.Sprintf("small-%d", i), Size: 1e3}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Stats().BrownoutActive {
		t.Fatal("queue half full but brownout inactive")
	}
	close(exec.gate)
	s.Drain()

	st := s.Stats()
	if st.BrownoutDirect == 0 {
		t.Error("no small jobs skipped planning during brownout")
	}
	// The blocker (pre-brownout, provider P1) planned, and the final P2
	// job planned after draining the queue ended the brownout; the jobs
	// in between would each have missed the cache, but brownout sent
	// them direct without a probe.
	if got := planner.planCalls(); got != 2 {
		t.Errorf("planner called %d times, want 2 (brownout must shed probes)", got)
	}
	if st.BrownoutEnters == 0 {
		t.Error("no brownout transition recorded")
	}
}

func TestBrownoutServesStaleCache(t *testing.T) {
	exec := &gatedExec{gate: make(chan struct{})}
	planner := &staticPlanner{route: core.ViaRoute(scenario.UAlberta)}
	clock := &vclock{}
	s := New(Config{
		Workers: 1, Executor: exec, Planner: planner,
		QueueLimit: 10, BrownoutEnter: 0.2, BrownoutExit: 0.05,
		CacheTTL: 5, Now: clock.now, Sleep: func(float64) {},
	})
	s.Start()
	defer s.Close()

	// Seed the cache for the big-file key at t=0.
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P", Name: "seed", Size: 100e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if got := planner.planCalls(); got != 1 {
		t.Fatalf("seed should have planned once, got %d", got)
	}
	clock.advance(10) // entry now expired

	// Enter brownout under a blocker.
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P1", Name: "blocker", Size: 1e3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Running == 1 })
	for i := 0; i < 5; i++ {
		if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P", Name: fmt.Sprintf("big-%d", i), Size: 100e6}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Stats().BrownoutActive {
		t.Fatal("brownout inactive")
	}
	close(exec.gate)
	s.Drain()

	st := s.Stats()
	if st.StaleServes == 0 {
		t.Error("expired cache entry not served stale during brownout")
	}
	// The big jobs re-used the stale decision instead of re-probing:
	// seed + blocker + the final job (which drained the queue, ended the
	// brownout, and re-probed the expired key the normal way).
	if got := planner.planCalls(); got != 3 {
		t.Errorf("planner called %d times, want 3 (stale entries must suppress re-probes)", got)
	}
}

// hedgeExec scripts a hedged executor: detours take detourSec unless
// hedged, in which case the hedge wins at hedgeSec.
type hedgeExec struct {
	mu        sync.Mutex
	hedged    int
	detourSec float64
	hedgeSec  float64
}

func (e *hedgeExec) Execute(j Job, r core.Route) (float64, error) { return e.detourSec, nil }
func (e *hedgeExec) ExecuteResumable(j Job, r core.Route, ck *core.Checkpoint) (float64, error) {
	return e.detourSec, nil
}
func (e *hedgeExec) ExecuteHedged(j Job, r core.Route, budget float64, ck *core.Checkpoint) (float64, core.Route, bool, bool, error) {
	e.mu.Lock()
	e.hedged++
	e.mu.Unlock()
	return e.hedgeSec, core.DirectRoute, true, true, nil
}

func TestHedgeBudgetAndCap(t *testing.T) {
	exec := &hedgeExec{detourSec: 2, hedgeSec: 0.5}
	planner := &staticPlanner{route: core.ViaRoute(scenario.UAlberta)}
	clock := &vclock{}
	col := &collector{}
	s := New(Config{
		Workers: 1, Executor: exec, Planner: planner,
		Hedge: true, HedgeMinSamples: 2, HedgeMaxFrac: 0.25,
		CacheTTL: 1e9, MaxAttempts: 1,
		Now: clock.now, Sleep: func(float64) {},
		OnResult: col.add,
	})
	s.Start()
	defer s.Close()
	submit := func(name string) {
		if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P", Name: name, Size: 1e6}); err != nil {
			t.Fatal(err)
		}
		s.Drain()
	}

	// First two jobs: the detour route has no latency history, so no
	// hedge can be priced.
	submit("warm-1")
	submit("warm-2")
	if got := s.Stats().Hedges; got != 0 {
		t.Fatalf("hedged before MinSamples: %d", got)
	}
	// Third job: budget available, hedge launches and wins.
	submit("hedge-me")
	st := s.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	results := col.all()
	last := results[len(results)-1]
	if !last.Hedged || !last.HedgeWon || last.Route.Kind != core.Direct {
		t.Fatalf("winning hedge not reflected in result: %+v", last)
	}
	// Cap: with 4 submissions and MaxFrac 0.25, one hedge exhausts the
	// budget — the fourth job must run unhedged.
	submit("capped")
	if got := s.Stats().Hedges; got != 1 {
		t.Fatalf("hedge cap leaked: %d hedges after cap", got)
	}
	if got := exec.hedged; got != 1 {
		t.Fatalf("executor saw %d hedged calls, want 1", got)
	}
}

// integrityExec fails each job's first attempt with a digest mismatch,
// as a poisoned resumed session would, then succeeds.
type integrityExec struct {
	mu    sync.Mutex
	tried map[string]bool
}

func (e *integrityExec) Execute(j Job, r core.Route) (float64, error) { return 1, nil }
func (e *integrityExec) ExecuteResumable(j Job, r core.Route, ck *core.Checkpoint) (float64, error) {
	e.mu.Lock()
	first := !e.tried[j.Name]
	e.tried[j.Name] = true
	e.mu.Unlock()
	if first {
		ck.DiscardSession()
		return 0, Transient(fmt.Errorf("synthetic corrupt resume: %w", core.ErrIntegrity))
	}
	return 1, nil
}

func TestIntegrityMismatchRetried(t *testing.T) {
	exec := &integrityExec{tried: map[string]bool{}}
	planner := &staticPlanner{route: core.DirectRoute}
	col := &collector{}
	s := New(Config{
		Workers: 1, Executor: exec, Planner: planner,
		Sleep:    func(float64) {},
		OnResult: col.add,
	})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P", Name: "f.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := col.all()[0]
	if res.Err != nil {
		t.Fatalf("corrupted resume not recovered: %v", res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (fail, then clean retry)", res.Attempts)
	}
	if got := s.Stats().IntegrityRetries; got != 1 {
		t.Fatalf("IntegrityRetries = %d, want 1", got)
	}
}

// TestSimHedgedTransfer runs the hedge race on the real simulated
// topology: two warm-up transfers teach the scheduler the healthy
// detour's pace, then the detour's first-hop link degrades to a crawl
// and a big job's detour attempt blows its latency budget. The direct
// hedge must launch, win, and kill the crawling primary — whose partial
// bytes show up as rewritten work.
func TestSimHedgedTransfer(t *testing.T) {
	w := scenario.Build(5)
	exec := NewSimExecutor(w)
	defer exec.Close()
	// The detour's first hop (CANARIE Vancouver–Edmonton) drops to 3% of
	// its capacity at t=100 and never recovers.
	faults.NewInjector(w, 5, faults.Spec{
		Kind: faults.LinkDegrade, From: "vncv1", To: "edmn1",
		Start: 100, Duration: 1e9, CapacityFactor: 0.03,
	})
	col := &collector{}
	s := New(Config{
		Workers: 1, Executor: exec, Planner: pinDetour(),
		MaxAttempts: 1,
		Hedge:       true, HedgeMinSamples: 2, HedgeMaxFrac: 1,
		Now:      exec.VirtualNow,
		Sleep:    exec.SleepVirtual,
		OnResult: col.add,
	})
	s.Start()
	defer s.Close()

	for i := 0; i < 2; i++ {
		if err := s.Submit(Job{
			Tenant: "t", Client: scenario.UBC, Provider: scenario.GoogleDrive,
			Name: fmt.Sprintf("warm-%d.bin", i), Size: 5e6,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	for _, r := range col.all() {
		if r.Err != nil {
			t.Fatalf("warm-up failed: %v", r.Err)
		}
		if r.Hedged {
			t.Fatal("warm-up hedged before the budget had samples")
		}
	}
	// Jump past the degrade onset, then send the job that will stall.
	if now := exec.VirtualNow(); now < 101 {
		exec.SleepVirtual(101 - now)
	}
	if err := s.Submit(Job{
		Tenant: "t", Client: scenario.UBC, Provider: scenario.GoogleDrive,
		Name: "stalled.bin", Size: 100e6,
	}); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	results := col.all()
	res := results[len(results)-1]
	if res.Err != nil {
		t.Fatalf("hedged job failed: %v", res.Err)
	}
	if !res.Hedged || !res.HedgeWon {
		t.Fatalf("hedge did not launch and win: hedged=%v won=%v", res.Hedged, res.HedgeWon)
	}
	if res.Route != core.DirectRoute {
		t.Fatalf("winning route = %s, want Direct", res.Route)
	}
	// The killed primary's partial progress is charged as rewritten.
	if res.Rewritten == 0 {
		t.Error("no rewritten bytes accounted for the cancelled primary")
	}
	st := s.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); j < 0.999 {
		t.Fatalf("equal shares: %v", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); j > 0.26 {
		t.Fatalf("one-taker: %v, want ~0.25", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty: %v", j)
	}
}

func TestSubmitWaitBlocksUntilSpace(t *testing.T) {
	exec := &gatedExec{gate: make(chan struct{})}
	planner := &staticPlanner{route: core.DirectRoute}
	s := New(Config{
		Workers: 1, Executor: exec, Planner: planner,
		QueueLimit: 1, Sleep: func(float64) {},
	})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P", Name: "blocker", Size: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Running == 1 })
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P", Name: "fills-queue", Size: 1}); err != nil {
		t.Fatal(err)
	}
	// Queue is now full: Submit bounces, SubmitWait blocks.
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "P", Name: "bounced", Size: 1}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue: %v, want ErrQueueFull", err)
	}
	unblocked := make(chan error, 1)
	go func() {
		unblocked <- s.SubmitWait(Job{Tenant: "t", Client: "c", Provider: "P", Name: "patient", Size: 1})
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("SubmitWait returned %v while the queue was full", err)
	default:
	}
	close(exec.gate) // worker drains; space frees
	if err := <-unblocked; err != nil {
		t.Fatalf("SubmitWait after space freed: %v", err)
	}
	s.Drain()
	// blocker + fills-queue + patient; "bounced" never entered.
	if st := s.Stats(); st.Done != 3 {
		t.Fatalf("done = %d, want 3", st.Done)
	}
}
