package rsyncx_test

import (
	"fmt"

	"detournet/internal/rsyncx"
)

// The rsync algorithm end to end: sign a basis, diff an edited copy
// against it, and rebuild the edit from the delta.
func ExampleComputeDelta() {
	basis := []byte("the quick brown fox jumps over the lazy dog, repeatedly and at length")
	target := append([]byte("PREFIX "), basis...) // a 7-byte insertion at the front

	sig := rsyncx.Sign(basis, 16)
	delta := rsyncx.ComputeDelta(sig, target)
	rebuilt, _ := rsyncx.Apply(basis, delta)

	fmt.Printf("literal bytes shipped: %d of %d\n", delta.LiteralBytes(), len(target))
	fmt.Printf("rebuilt correctly: %v\n", string(rebuilt) == string(target))
	// Output:
	// literal bytes shipped: 12 of 76
	// rebuilt correctly: true
}
