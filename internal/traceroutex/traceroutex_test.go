package traceroutex

import (
	"math/rand"
	"strings"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/geo"
	"detournet/internal/simclock"
	"detournet/internal/topology"
)

func buildGraph() *topology.Graph {
	g := topology.New(fluid.New(simclock.NewEngine()))
	add := func(name, host, ip string, icmp bool, site geo.Site) {
		g.MustAddNode(&topology.Node{Name: name, Hostname: host, IP: ip, RespondsICMP: icmp, Site: site})
	}
	add("src", "src.example.edu", "10.0.0.1", true, geo.UBC)
	add("r1", "border.example.edu", "10.0.1.1", true, geo.UBC)
	add("r2", "dark.transit.net", "10.0.2.1", false, geo.SeattleIX) // anonymous hop
	add("dst", "www.googleapis.com", "216.58.216.138", true, geo.GoogleDriveDC)
	spec := topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.005}
	g.MustConnect("src", "r1", spec)
	g.MustConnect("r1", "r2", spec)
	g.MustConnect("r2", "dst", spec)
	return g
}

func TestRunBasic(t *testing.T) {
	g := buildGraph()
	res, err := Run(g, "src", "dst", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(res.Hops))
	}
	names := res.HopNames()
	if names[0] != "border.example.edu" || names[1] != "*" || names[2] != "www.googleapis.com" {
		t.Fatalf("hop names = %v", names)
	}
	// RTTs are cumulative and monotone.
	if !(res.Hops[0].RTTms[0] < res.Hops[1].RTTms[0] && res.Hops[1].RTTms[0] < res.Hops[2].RTTms[0]) {
		t.Fatalf("RTTs not monotone: %v %v %v", res.Hops[0].RTTms[0], res.Hops[1].RTTms[0], res.Hops[2].RTTms[0])
	}
	// Final hop RTT = 2 * 15ms.
	if got := res.Hops[2].RTTms[0]; got < 29.9 || got > 30.1 {
		t.Fatalf("final RTT = %v, want 30ms", got)
	}
}

func TestFormatLooksLikeTraceroute(t *testing.T) {
	g := buildGraph()
	res, _ := Run(g, "src", "dst", Options{})
	out := res.Format()
	if !strings.HasPrefix(out, "traceroute to www.googleapis.com (216.58.216.138)") {
		t.Fatalf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "* * *") {
		t.Fatal("anonymous hop not rendered as * * *")
	}
	if !strings.Contains(out, "border.example.edu (10.0.1.1)") {
		t.Fatal("hop line missing host (ip)")
	}
}

func TestCrossesHost(t *testing.T) {
	g := buildGraph()
	res, _ := Run(g, "src", "dst", Options{})
	if !res.CrossesHost("border.example.edu") {
		t.Fatal("CrossesHost missed a visible hop")
	}
	if res.CrossesHost("dark.transit.net") {
		t.Fatal("CrossesHost matched a hidden hop")
	}
	if res.CrossesHost("nowhere") {
		t.Fatal("CrossesHost matched a non-hop")
	}
}

func TestGeolocateAndPathKm(t *testing.T) {
	g := buildGraph()
	res, _ := Run(g, "src", "dst", Options{})
	db := geo.NewDB()
	db.MustAdd("10.0.1.0/24", geo.UBC)
	db.MustAdd("216.58.216.0/24", geo.GoogleDriveDC)
	hops := res.Geolocate(db)
	if !hops[0].OK || hops[0].Site.Name != "UBC" {
		t.Fatalf("hop0 geo = %+v", hops[0])
	}
	if hops[1].OK {
		t.Fatal("hidden hop geolocated")
	}
	km := PathKm(hops)
	// UBC -> Mountain View ≈ 1300 km.
	if km < 1200 || km > 1450 {
		t.Fatalf("PathKm = %v", km)
	}
}

func TestJitterPerturbsProbes(t *testing.T) {
	g := buildGraph()
	res, _ := Run(g, "src", "dst", Options{Jitter: rand.New(rand.NewSource(1))})
	h := res.Hops[0]
	if h.RTTms[0] == h.RTTms[1] && h.RTTms[1] == h.RTTms[2] {
		t.Fatal("jittered probes identical")
	}
}

func TestMaxTTLTruncates(t *testing.T) {
	g := buildGraph()
	res, _ := Run(g, "src", "dst", Options{MaxTTL: 1})
	if len(res.Hops) != 1 {
		t.Fatalf("hops = %d, want 1", len(res.Hops))
	}
}

func TestNoRouteErrors(t *testing.T) {
	g := topology.New(fluid.New(simclock.NewEngine()))
	g.MustAddNode(&topology.Node{Name: "a"})
	g.MustAddNode(&topology.Node{Name: "b"})
	if _, err := Run(g, "a", "b", Options{}); err == nil {
		t.Fatal("trace across disconnected graph succeeded")
	}
}

func TestOverrideChangesTrace(t *testing.T) {
	g := buildGraph()
	// Add an alternate direct edge and pin the route over it.
	g.MustConnect("src", "dst", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.050})
	g.MustSetOverride("src", "dst")
	res, _ := Run(g, "src", "dst", Options{})
	if len(res.Hops) != 1 || res.Hops[0].Node.Name != "dst" {
		t.Fatalf("override trace = %v", res.HopNames())
	}
}
