// Package tracelog records structured events on the virtual timeline —
// the observability layer a production detour deployment would ship:
// which route a transfer took, how long each hop ran, what the relay
// agent did. Events serialize as JSON lines for offline analysis.
package tracelog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"detournet/internal/simclock"
)

// Event is one timestamped record.
type Event struct {
	// At is the virtual time in seconds.
	At float64 `json:"t"`
	// Kind is a dotted event name, e.g. "detour.upload.done".
	Kind string `json:"kind"`
	// Attrs carries event fields (strings and numbers).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Standard span attribute keys. Multipath transfers tag every event
// with the path that produced it, so per-path timelines can be filtered
// out of one interleaved log — and so golden logs are stable: the keys
// are fixed and String renders all attributes in sorted-key order.
const (
	// AttrPath is the integer path index within a striped transfer.
	AttrPath = "path_id"
	// AttrChunk is the integer chunk index within the transfer.
	AttrChunk = "chunk"
	// AttrRoute is the path's route in core.Route.String() form.
	AttrRoute = "route"
	// AttrEntity names the health-tracked entity (route, DTN, or
	// provider) a health.* transition event is about.
	AttrEntity = "entity"
)

// String renders the event as one deterministic text line:
// "t=<time> <kind> k1=v1 k2=v2 ..." with attribute keys sorted.
// Floats render via strconv.FormatFloat(-1), the shortest exact form,
// so equal values always produce identical bytes — the property the
// golden-log tests and `make check`'s byte-compares rely on.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s %s", formatAttr(e.At), e.Kind)
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(formatAttr(e.Attrs[k]))
	}
	return b.String()
}

// formatAttr renders one attribute value deterministically. Strings
// with spaces (or empty) are quoted so lines stay machine-splittable.
func formatAttr(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case string:
		if x == "" || strings.ContainsAny(x, " \t\n\"") {
			return strconv.Quote(x)
		}
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Log collects events. The zero value is not usable; use New. A nil
// *Log is safe to emit into (no-op), so instrumented code never needs
// nil checks at call sites.
type Log struct {
	eng    *simclock.Engine
	events []Event
	// Cap bounds retained events (FIFO eviction); zero means unbounded.
	Cap int
}

// New returns an empty log on the clock.
func New(eng *simclock.Engine) *Log {
	if eng == nil {
		panic("tracelog: nil engine")
	}
	return &Log{eng: eng}
}

// Emit appends an event at the current virtual time. Emit on a nil log
// is a no-op.
func (l *Log) Emit(kind string, attrs map[string]any) {
	if l == nil {
		return
	}
	if kind == "" {
		panic("tracelog: empty event kind")
	}
	l.events = append(l.events, Event{At: float64(l.eng.Now()), Kind: kind, Attrs: attrs})
	if l.Cap > 0 && len(l.events) > l.Cap {
		l.events = l.events[len(l.events)-l.Cap:]
	}
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Events returns a copy of the retained events in emission order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return append([]Event(nil), l.events...)
}

// Filter returns events whose kind matches the prefix (dotted segments).
func (l *Log) Filter(prefix string) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Kind == prefix || strings.HasPrefix(e.Kind, prefix+".") {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all retained events.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.events = l.events[:0]
}

// WriteJSONL streams the events as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// WriteText streams the events as deterministic text lines (see
// Event.String). Unlike WriteJSONL it is meant for golden files and
// byte-compares: same events ⇒ same bytes, always.
func (l *Log) WriteText(w io.Writer) error {
	if l == nil {
		return nil
	}
	for _, e := range l.events {
		if _, err := io.WriteString(w, e.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-kind counts, for quick inspection.
func (l *Log) Summary() string {
	if l == nil {
		return ""
	}
	counts := map[string]int{}
	for _, e := range l.events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-28s %d\n", k, counts[k])
	}
	return b.String()
}
