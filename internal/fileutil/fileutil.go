// Package fileutil generates the workload files of the case study: the
// paper creates 10–100 MB binary files of random data with dd so that
// transfers are incompressible and rsync finds no deltas. TestFile does
// the same from a seed, either materializing the bytes (for protocol
// tests) or describing them by size and digest alone (for large timed
// transfers, which never need the bytes in memory).
package fileutil

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// MB is the paper's file-size unit (decimal megabytes, matching dd).
const MB = 1_000_000

// PaperSizesMB are the file sizes of every figure and table: 10–60 and
// 100 MB.
var PaperSizesMB = []int{10, 20, 30, 40, 50, 60, 100}

// TestFile describes one generated workload file.
type TestFile struct {
	Name string
	Size float64
	// MD5 is the digest of the (possibly virtual) contents.
	MD5 string
	// Data holds the materialized bytes, nil for virtual files.
	Data []byte
}

// New generates a virtual test file: sized and digested, bytes never
// materialized. The digest is derived deterministically from the seed
// and size, so retries and verification behave like a real file's.
func New(name string, sizeBytes float64, seed int64) TestFile {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], uint64(seed))
	binary.BigEndian.PutUint64(b[8:], uint64(sizeBytes))
	sum := md5.Sum(b[:])
	return TestFile{Name: name, Size: sizeBytes, MD5: fmt.Sprintf("%x", sum)}
}

// NewWithData generates a materialized test file with seeded random
// (incompressible) contents, the equivalent of
// `dd if=/dev/urandom of=name bs=1M count=n`.
func NewWithData(name string, sizeBytes int, seed int64) TestFile {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, sizeBytes)
	rng.Read(data)
	sum := md5.Sum(data)
	return TestFile{Name: name, Size: float64(sizeBytes), MD5: fmt.Sprintf("%x", sum), Data: data}
}

// PaperSet returns the paper's seven file sizes as virtual files named
// like "file-10MB.bin".
func PaperSet(seed int64) []TestFile {
	out := make([]TestFile, 0, len(PaperSizesMB))
	for _, mb := range PaperSizesMB {
		name := fmt.Sprintf("file-%dMB.bin", mb)
		out = append(out, New(name, float64(mb*MB), seed+int64(mb)))
	}
	return out
}
