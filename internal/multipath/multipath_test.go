package multipath

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"detournet/internal/core"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
)

// drive runs fn as a workload process and drains the engine.
func drive(t *testing.T, fn func(p *simproc.Proc)) {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	done := false
	r.Go("test", func(p *simproc.Proc) {
		fn(p)
		done = true
	})
	r.Drive()
	if !done {
		t.Fatal("workload did not finish")
	}
}

// fakeUploader models a path of fixed rate with an optional per-attempt
// failure schedule keyed by part name.
type fakeUploader struct {
	rate  float64 // bytes/second
	fails map[string]int
	sent  float64
}

func (f *fakeUploader) UploadChunk(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error {
	p.Sleep(simclock.Duration(size / f.rate))
	f.sent += size
	if f.fails[part] > 0 {
		f.fails[part]--
		return fmt.Errorf("fake: injected failure on %s", part)
	}
	ck.Hop2High = size
	return nil
}

// coverage verifies the ledger invariant: every chunk committed by
// exactly one path, no chunk missing, none duplicated.
func coverage(t *testing.T, rep Report) {
	t.Helper()
	seen := make(map[int]int)
	for _, pr := range rep.Paths {
		for _, c := range pr.Chunks {
			seen[c]++
		}
	}
	if len(seen) != rep.NumChunks {
		t.Fatalf("committed %d distinct chunks, want %d", len(seen), rep.NumChunks)
	}
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("chunk %d committed %d times", c, n)
		}
	}
}

func TestStripeProportionalAndCommit(t *testing.T) {
	var gotParts []string
	var rep Report
	var err error
	fast := &fakeUploader{rate: 8e6}
	slow := &fakeUploader{rate: 2e6}
	drive(t, func(p *simproc.Proc) {
		rep, err = Run(p, Spec{Name: "big.bin", Size: 80e6, Chunk: 8e6}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: fast},
			{ID: 1, Route: core.ViaRoute("UAlberta"), Upload: slow},
		}, Env{Commit: func(p *simproc.Proc, parts []string) error {
			gotParts = append([]string(nil), parts...)
			return nil
		}})
	})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, rep)
	if rep.Paths[0].Bytes <= rep.Paths[1].Bytes {
		t.Errorf("fast path carried %.0fB, slow %.0fB; want throughput-proportional split",
			rep.Paths[0].Bytes, rep.Paths[1].Bytes)
	}
	// 80 MB over 2 paths: 8 full 8 MB chunks + the 16 MB tail split into
	// 8 quarter chunks.
	if len(gotParts) != 16 || gotParts[0] != "big.bin.mp0000" || gotParts[15] != "big.bin.mp0015" {
		t.Errorf("commit got parts %v", gotParts)
	}
	// Both lanes ran concurrently: the wall clock must beat the best
	// single path (80MB / 8MB/s = 10s) by a clear margin.
	if rep.Seconds >= 10 {
		t.Errorf("striped transfer took %.1fs, single fast path would take 10s", rep.Seconds)
	}
	if rep.Fairness <= 0.5 || rep.Fairness > 1 {
		t.Errorf("fairness = %v", rep.Fairness)
	}
}

func TestHedgeReclaimsStraggler(t *testing.T) {
	// The crawl path grabs a chunk early and takes ~400s on it; the
	// fast path finishes the rest and must hedge the straggler's chunk
	// instead of idling until the crawl completes.
	var rep Report
	var err error
	drive(t, func(p *simproc.Proc) {
		rep, err = Run(p, Spec{Name: "h.bin", Size: 40e6, Chunk: 8e6, HedgeMaxFrac: 0.25}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: &fakeUploader{rate: 4e6}},
			{ID: 1, Route: core.ViaRoute("UMich"), Upload: &fakeUploader{rate: 0.02e6}},
		}, Env{})
	})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, rep)
	if rep.HedgedChunks == 0 {
		t.Error("no chunk was hedged; fast path idled behind the straggler")
	}
	if rep.Seconds > 60 {
		t.Errorf("transfer took %.1fs; hedging should finish well under the straggler's 400s", rep.Seconds)
	}
	if rep.DuplicateBytes > 0.25*40e6 {
		t.Errorf("duplicate bytes %.0f exceed HedgeMaxFrac budget %.0f", rep.DuplicateBytes, 0.25*40e6)
	}
}

func TestHedgeBudgetCapsDuplication(t *testing.T) {
	// With a zero-ish budget (negative disables), the fast path may NOT
	// duplicate: it waits for the straggler.
	var rep Report
	var err error
	drive(t, func(p *simproc.Proc) {
		rep, err = Run(p, Spec{Name: "b.bin", Size: 16e6, Chunk: 8e6, HedgeMaxFrac: -1, StallTimeout: 5000}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: &fakeUploader{rate: 8e6}},
			{ID: 1, Route: core.ViaRoute("UMich"), Upload: &fakeUploader{rate: 0.01e6}},
		}, Env{})
	})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, rep)
	if rep.HedgedChunks != 0 || rep.DuplicateBytes != 0 {
		t.Errorf("hedging disabled but hedged=%d dup=%.0f", rep.HedgedChunks, rep.DuplicateBytes)
	}
}

func TestFailureReleasesChunkToOtherPath(t *testing.T) {
	// Path 1 fails every dispatch (and its in-place retry) until it
	// retires; each chunk it claimed must come back to pending and land
	// via path 0.
	flaky := &fakeUploader{rate: 4e6, fails: map[string]int{}}
	for i := 0; i < 4; i++ {
		flaky.fails[PartName("f.bin", i)] = 99
	}
	var rep Report
	var err error
	drive(t, func(p *simproc.Proc) {
		rep, err = Run(p, Spec{Name: "f.bin", Size: 32e6, Chunk: 8e6, TailSplit: 1}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: &fakeUploader{rate: 4e6}},
			{ID: 1, Route: core.ViaRoute("UAlberta"), Upload: flaky},
		}, Env{})
	})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, rep)
	if rep.ResentChunks == 0 {
		t.Error("failed chunk was never released back to pending")
	}
	for _, pr := range rep.Paths {
		if pr.ID == 1 && len(pr.Chunks) > 0 {
			t.Errorf("flaky path committed chunks %v despite always failing", pr.Chunks)
		}
	}
}

func TestDrainMakeBeforeBreak(t *testing.T) {
	// Path 1's route is withdrawn mid-transfer: it must stop claiming
	// new chunks while unusable, then resume when the route returns.
	// The drain window [4s, 20s) is long enough that the path observes
	// it between chunks.
	var rep Report
	var err error
	via := core.ViaRoute("UAlberta")
	var eng *simclock.Engine
	e := simclock.NewEngine()
	eng = e
	r := simproc.New(e)
	r.Go("test", func(p *simproc.Proc) {
		rep, err = Run(p, Spec{Name: "d.bin", Size: 64e6, Chunk: 8e6}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: &fakeUploader{rate: 2e6}},
			{ID: 1, Route: via, Upload: &fakeUploader{rate: 2e6}},
		}, Env{Usable: func(route core.Route, existing bool) bool {
			if route != via {
				return true
			}
			now := float64(eng.Now())
			if now >= 4 && now < 20 {
				return existing // draining: finish existing, refuse new
			}
			return true
		}})
	})
	r.Drive()
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, rep)
	drains := 0
	for _, pr := range rep.Paths {
		drains += pr.Drains
	}
	if drains == 0 {
		t.Error("withdrawn route never drained")
	}
	// Both paths still carried work: drain was make-before-break, not
	// tear-down.
	for _, pr := range rep.Paths {
		if len(pr.Chunks) == 0 {
			t.Errorf("path %d carried nothing", pr.ID)
		}
	}
}

func TestAllPathsRetiredFails(t *testing.T) {
	always := &fakeUploader{rate: 4e6, fails: map[string]int{}}
	for i := 0; i < 4; i++ {
		always.fails[PartName("x.bin", i)] = 99
	}
	var err error
	drive(t, func(p *simproc.Proc) {
		_, err = Run(p, Spec{Name: "x.bin", Size: 32e6, Chunk: 8e6}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: always},
		}, Env{})
	})
	if err == nil || !strings.Contains(err.Error(), "no usable path") {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestStallTimeout(t *testing.T) {
	var err error
	drive(t, func(p *simproc.Proc) {
		_, err = Run(p, Spec{Name: "s.bin", Size: 8e6, Chunk: 8e6, StallTimeout: 30}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: &fakeUploader{rate: 1e6}},
		}, Env{Usable: func(core.Route, bool) bool { return false }})
	})
	if err == nil || !strings.Contains(err.Error(), "no chunk committed") {
		t.Fatalf("err = %v, want stall", err)
	}
}

func TestAbortInvokedOnHedgeLoser(t *testing.T) {
	var aborted []int
	var rep Report
	var err error
	drive(t, func(p *simproc.Proc) {
		rep, err = Run(p, Spec{Name: "a.bin", Size: 24e6, Chunk: 8e6, HedgeMaxFrac: 0.5}, []Path{
			{ID: 0, Route: core.DirectRoute, Upload: &fakeUploader{rate: 8e6}},
			{ID: 1, Route: core.ViaRoute("UMich"), Upload: &fakeUploader{rate: 0.05e6}},
		}, Env{Abort: func(path Path) { aborted = append(aborted, path.ID) }})
	})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, rep)
	if rep.HedgedChunks > 0 && len(aborted) == 0 {
		t.Error("hedge won but the losing duplicate was never aborted")
	}
}

// randomUploader fails with probability pFail per attempt, with a rate
// jittered per chunk — the scheduler must preserve exactly-once commit
// coverage under arbitrary failure interleavings.
type randomUploader struct {
	rng   *rand.Rand
	base  float64
	pFail float64
}

func (f *randomUploader) UploadChunk(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error {
	rate := f.base * (0.25 + 1.5*f.rng.Float64())
	p.Sleep(simclock.Duration(size / rate))
	if f.rng.Float64() < f.pFail {
		return fmt.Errorf("fake: random failure on %s", part)
	}
	ck.Hop2High = size
	return nil
}

func TestPropertyNoChunkLostOrDuplicated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		var rep Report
		var err error
		drive(t, func(p *simproc.Proc) {
			rng := rand.New(rand.NewSource(seed))
			paths := []Path{
				{ID: 0, Route: core.DirectRoute, Upload: &randomUploader{rng: rng, base: 4e6, pFail: 0.15}},
				{ID: 1, Route: core.ViaRoute("UAlberta"), Upload: &randomUploader{rng: rng, base: 6e6, pFail: 0.15}},
				{ID: 2, Route: core.ViaRoute("UMich"), Upload: &randomUploader{rng: rng, base: 2e6, pFail: 0.15}},
			}
			rep, err = Run(p, Spec{Name: "p.bin", Size: 96e6, Chunk: 8e6}, paths, Env{})
		})
		if err != nil {
			// All-paths-retired is a legal outcome under heavy random
			// failure; the invariant is about successful runs.
			continue
		}
		coverage(t, rep)
		var committed float64
		for _, pr := range rep.Paths {
			committed += pr.Bytes
		}
		if math.Abs(committed-96e6) > 1 {
			t.Fatalf("seed %d: committed %.0fB, want 96MB exactly", seed, committed)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	render := func() string {
		var rep Report
		drive(t, func(p *simproc.Proc) {
			rng := rand.New(rand.NewSource(7))
			var err error
			rep, err = Run(p, Spec{Name: "det.bin", Size: 64e6, Chunk: 8e6}, []Path{
				{ID: 0, Route: core.DirectRoute, Upload: &randomUploader{rng: rng, base: 4e6, pFail: 0.1}},
				{ID: 1, Route: core.ViaRoute("UAlberta"), Upload: &randomUploader{rng: rng, base: 6e6, pFail: 0.1}},
			}, Env{})
			if err != nil {
				t.Fatal(err)
			}
		})
		var b bytes.Buffer
		if err := rep.WriteReport(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed produced different reports:\n%s\n---\n%s", a, b)
	}
}

func TestPartName(t *testing.T) {
	if got := PartName("file.bin", 7); got != "file.bin.mp0007" {
		t.Errorf("PartName = %q", got)
	}
	if got := PartName("file.bin", 1234); got != "file.bin.mp1234" {
		t.Errorf("PartName = %q", got)
	}
}

func TestLayout(t *testing.T) {
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	// Head of full chunks, tail split 4x over K chunks' worth.
	got := Layout(80e6, 8e6, 2, 4)
	if len(got) != 16 || got[0] != 8e6 || got[8] != 2e6 || sum(got) != 80e6 {
		t.Errorf("layout(80MB, 8MB, k=2, split=4) = %v", got)
	}
	// Small transfers and split=1 cut uniformly.
	for _, tc := range []struct {
		size  float64
		k     int
		split int
		want  int
	}{
		{80e6, 2, 1, 10},
		{81e6, 2, 1, 11},
		{16e6, 3, 4, 2}, // too small for a head
		{1, 2, 4, 1},
	} {
		got := Layout(tc.size, 8e6, tc.k, tc.split)
		if len(got) != tc.want || sum(got) != tc.size {
			t.Errorf("layout(%v, k=%d, split=%d) = %d chunks sum %v, want %d chunks",
				tc.size, tc.k, tc.split, len(got), sum(got), tc.want)
		}
	}
}
