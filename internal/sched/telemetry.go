package sched

import (
	"strconv"

	"detournet/internal/core"
	"detournet/internal/telemetry"
)

// schedMetrics holds pre-resolved registry handles for the scheduler's
// hot paths: one family lookup at construction, one atomic op per
// observation after that. A nil *schedMetrics (telemetry off) makes
// every method a cheap no-op — call sites guard with a single nil check.
type schedMetrics struct {
	submitted, done, failed, expired, shed, late *telemetry.Metric
	rejected                                     *telemetry.Family // reason
	retries, fallbacks, failovers                *telemetry.Metric
	reroutes, parks, stalls, stallReroutes       *telemetry.Metric
	hedges, hedgeWins, canaries                  *telemetry.Metric
	quotaFails, quotaReclaims, spills            *telemetry.Metric
	quotaParks, budgetParks                      *telemetry.Metric
	queueDepth, running                          *telemetry.Metric
	queueDelay, transferSec, attempts            *telemetry.Metric
	routeBytes, routeJobs                        *telemetry.Family // route
	// directBytes/directJobs are the pre-resolved "direct" children of
	// the route families — the common case skips the label lookup.
	directBytes, directJobs *telemetry.Metric
}

func newSchedMetrics(reg *telemetry.Registry) *schedMetrics {
	if reg == nil {
		return nil
	}
	m := &schedMetrics{
		submitted: reg.Counter("sched_jobs_submitted_total", "Jobs admitted to the queue.").With(),
		done:      reg.Counter("sched_jobs_done_total", "Jobs finished successfully.").With(),
		failed:    reg.Counter("sched_jobs_failed_total", "Jobs terminally failed.").With(),
		expired:   reg.Counter("sched_jobs_expired_total", "Jobs expired past their deadline.").With(),
		shed:      reg.Counter("sched_jobs_shed_total", "Jobs shed by CoDel at dequeue.").With(),
		late:      reg.Counter("sched_jobs_late_total", "Jobs that finished past their deadline.").With(),
		rejected:  reg.Counter("sched_rejects_total", "Submissions rejected at the door.", "reason"),

		retries:       reg.Counter("sched_retries_total", "Attempt retries (backoff and free reroutes).").With(),
		fallbacks:     reg.Counter("sched_fallbacks_total", "Detour-to-direct fallbacks.").With(),
		failovers:     reg.Counter("sched_failovers_total", "Route-down failovers to an alternate route.").With(),
		reroutes:      reg.Counter("sched_reroutes_total", "Mid-transfer make-before-break reroutes.").With(),
		parks:         reg.Counter("sched_parks_total", "Attempts that parked waiting for any route.").With(),
		stalls:        reg.Counter("sched_stalls_total", "Watchdog-aborted stalled transfers.").With(),
		stallReroutes: reg.Counter("sched_stall_reroutes_total", "Free failovers after a stall.").With(),
		hedges:        reg.Counter("sched_hedges_total", "Hedged transfers launched.").With(),
		hedgeWins:     reg.Counter("sched_hedge_wins_total", "Hedges that beat the primary.").With(),
		canaries:      reg.Counter("sched_canaries_total", "Canary probes of probation routes.").With(),

		quotaFails:    reg.Counter("sched_quota_fails_total", "Provider quota-full failures.").With(),
		quotaReclaims: reg.Counter("sched_quota_reclaims_total", "Successful quota reclaims.").With(),
		spills:        reg.Counter("sched_provider_spills_total", "Jobs spilled to an alternate provider.").With(),
		quotaParks:    reg.Counter("sched_quota_parks_total", "Jobs parked on exhausted quota.").With(),
		budgetParks:   reg.Counter("sched_budget_parks_total", "Jobs parked on an exhausted retry budget.").With(),

		queueDepth: reg.Gauge("sched_queue_depth", "Jobs waiting in the queue.").With(),
		running:    reg.Gauge("sched_running", "Jobs currently executing.").With(),

		queueDelay: reg.Histogram("sched_queue_delay_seconds", "Time from admit to dequeue.",
			telemetry.HistOpts{Start: 0.001, Factor: 4, Buckets: 12}).With(),
		transferSec: reg.Histogram("sched_transfer_seconds", "Successful transfer durations.",
			telemetry.HistOpts{Start: 0.25, Factor: 2, Buckets: 16}).With(),
		attempts: reg.Histogram("sched_job_attempts", "Attempts per finished job.",
			telemetry.HistOpts{Start: 1, Factor: 2, Buckets: 5}).With(),

		routeBytes: reg.Counter("sched_route_bytes_total", "Bytes delivered, by final route.", "route"),
		routeJobs:  reg.Counter("sched_route_jobs_total", "Jobs delivered, by final route.", "route"),
	}
	m.directBytes = m.routeBytes.With("direct")
	m.directJobs = m.routeJobs.With("direct")
	return m
}

// routeMetrics resolves the per-route delivery counters, using the
// pre-resolved handles for the direct route.
func (m *schedMetrics) routeMetrics(r core.Route) (bytes, jobs *telemetry.Metric) {
	if r.Kind != core.Detour {
		return m.directBytes, m.directJobs
	}
	lbl := routeLabel(r)
	return m.routeBytes.With(lbl), m.routeJobs.With(lbl)
}

// noteDepth refreshes the occupancy gauges from the counters already
// guarded by s.mu; callers must hold s.mu.
func (s *Scheduler) noteDepthLocked() {
	if s.met == nil {
		return
	}
	q := s.pending - s.running
	if q < 0 {
		q = 0
	}
	s.met.queueDepth.Set(float64(q))
	s.met.running.Set(float64(s.running))
}

// Depths is a lock-cheap occupancy snapshot (queued, running) for
// samplers — unlike Stats it copies no maps.
func (s *Scheduler) Depths() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.pending - s.running
	if q < 0 {
		q = 0
	}
	return int(q), int(s.running)
}

// recordTerminal writes the terminal flight-recorder event for a result
// and applies retention: failed traces are kept in full, successes are
// truncated to a count.
func (s *Scheduler) recordTerminal(res Result) {
	if s.rec == nil {
		return
	}
	if res.Err != nil {
		res.tr.Note("job.failed",
			"err", res.Err.Error(),
			"attempts", strconv.Itoa(res.Attempts),
			"route", res.Route.String())
		s.rec.Finish(res.tr, res.Job.Name, true)
		return
	}
	res.tr.Note("job.done",
		"sec", strconv.FormatFloat(res.Seconds, 'g', -1, 64),
		"route", res.Route.String())
	s.rec.Finish(res.tr, res.Job.Name, false)
}

// routeLabel collapses a route to its metric label: "direct" or
// "detour:<dtn>", keeping family cardinality bounded by the DTN fleet.
func routeLabel(r core.Route) string {
	if r.Kind == core.Detour {
		return "detour:" + r.Via
	}
	return "direct"
}
