package core

import (
	"math"
	"strings"
	"testing"

	"detournet/internal/cloudsim"
	"detournet/internal/fluid"
	"detournet/internal/rsyncx"
	"detournet/internal/sdk"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

// testbed models the UBC story in miniature: a slow direct path from
// user to provider (2 MB/s) and fast paths user→DTN and DTN→provider
// (8 MB/s each), so a detour should win on large files.
type testbed struct {
	eng   *simclock.Engine
	r     *simproc.Runner
	g     *topology.Graph
	tn    *transport.Net
	svc   *cloudsim.Service
	agent *Agent
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	for _, n := range []string{"user", "dtn", "provider-dc"} {
		g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
	}
	g.MustConnect("user", "provider-dc", topology.LinkSpec{CapacityBps: 2e6, DelaySec: 0.010})
	g.MustConnect("user", "dtn", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.006})
	g.MustConnect("dtn", "provider-dc", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.012})
	tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})

	svc := cloudsim.NewService(eng, tn, "GoogleDrive", "provider-dc", cloudsim.GoogleDrive)
	svc.Start(tn)

	daemon := rsyncx.NewDaemon(tn, "dtn")
	daemon.Start()
	agent := NewAgent(tn, "dtn", daemon)
	creds := sdk.Register(svc, "dtn-agent", "s")
	agent.RegisterProvider(sdk.NewGoogleDrive(eng, tn, "dtn", "provider-dc", creds, sdk.Options{}))
	agent.Start()

	return &testbed{eng: eng, r: r, g: g, tn: tn, svc: svc, agent: agent}
}

// linkState raises or drops both directions of an adjacency.
func (tb *testbed) linkState(a, b string, up bool) {
	tb.g.SetLinkState(a, b, up)
	tb.g.SetLinkState(b, a, up)
}

func (tb *testbed) directClient() sdk.SessionClient {
	creds := sdk.Register(tb.svc, "user-app", "s")
	return sdk.NewGoogleDrive(tb.eng, tb.tn, "user", "provider-dc", creds, sdk.Options{})
}

func (tb *testbed) run(t *testing.T, fn func(p *simproc.Proc)) {
	t.Helper()
	done := false
	tb.r.Go("test", func(p *simproc.Proc) {
		fn(p)
		done = true
	})
	tb.r.RunUntil(simclock.Time(1e7))
	if !done {
		t.Fatal("test proc did not finish")
	}
}

func TestDirectUpload(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	tb.run(t, func(p *simproc.Proc) {
		rep, err := DirectUpload(p, client, "f.bin", 20e6, "d")
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Route.Kind != Direct || rep.Hop1 != 0 || rep.Total != rep.Hop2 {
			t.Errorf("report = %+v", rep)
		}
		// 20.6MB wire at 2MB/s ≈ 10.3s.
		if rep.Total < 10 || rep.Total > 13 {
			t.Errorf("direct total = %v, want ~10.3-12s", rep.Total)
		}
		if rep.Info.Size != 20e6 {
			t.Errorf("info = %+v", rep.Info)
		}
	})
}

func TestStoreAndForwardDetour(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		rep, err := dc.Upload(p, "GoogleDrive", "f.bin", 20e6, "d")
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Route.String() != "via dtn" {
			t.Errorf("route = %v", rep.Route)
		}
		// Hops: ~2.6s each at 8MB/s; total ≈ 5.5-7s, beating direct ~10.3s.
		if rep.Total > 9 {
			t.Errorf("detour total = %v, want < 9", rep.Total)
		}
		if rep.Hop1 <= 0 || rep.Hop2 <= 0 {
			t.Errorf("hop times: %+v", rep)
		}
		// Store-and-forward: hops are serial; Total >= Hop1+Hop2.
		if rep.Total < rep.Hop1+rep.Hop2-1e-9 {
			t.Errorf("total %v < hop1+hop2 %v", rep.Total, rep.Hop1+rep.Hop2)
		}
		if o, ok := tb.svc.Store.Get("f.bin"); !ok || o.Size != 20e6 {
			t.Errorf("not stored at provider: %+v %v", o, ok)
		}
	})
	if tb.agent.Relayed != 1 {
		t.Fatalf("Relayed = %d", tb.agent.Relayed)
	}
}

func TestDetourBeatsDirectOnThisTopology(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		direct, err := DirectUpload(p, client, "a.bin", 30e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		det, err := dc.Upload(p, "GoogleDrive", "b.bin", 30e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		if det.Total >= direct.Total {
			t.Errorf("detour %v not faster than direct %v", det.Total, direct.Total)
		}
	})
}

func TestPipelinedBeatsStoreAndForward(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		saf, err := dc.Upload(p, "GoogleDrive", "a.bin", 40e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		pipe, err := dc.UploadPipelined(p, "GoogleDrive", "b.bin", 40e6, "", 4<<20)
		if err != nil {
			t.Error(err)
			return
		}
		// Overlapping hops should save a large fraction of the shorter
		// hop (both ~5s here).
		if pipe.Total >= saf.Total*0.85 {
			t.Errorf("pipelined %v vs store-and-forward %v: no overlap benefit", pipe.Total, saf.Total)
		}
		if o, ok := tb.svc.Store.Get("b.bin"); !ok || o.Size != 40e6 {
			t.Errorf("pipelined object: %+v %v", o, ok)
		}
	})
}

func TestCleanStagingDeletesBeforeTransfer(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		if _, err := dc.Upload(p, "GoogleDrive", "f.bin", 1e6, ""); err != nil {
			t.Error(err)
		}
		// Second run must also succeed and re-stage (no stale reuse).
		if _, err := dc.Upload(p, "GoogleDrive", "f.bin", 2e6, ""); err != nil {
			t.Error(err)
		}
		if o, _ := tb.svc.Store.Get("f.bin"); o.Size != 2e6 {
			t.Errorf("stale staging reused: %+v", o)
		}
	})
}

func TestUnknownProviderRejected(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		_, err := dc.Upload(p, "Nope", "f.bin", 1e6, "")
		if err == nil || !strings.Contains(err.Error(), "unknown provider") {
			t.Errorf("err = %v", err)
		}
		_, err = dc.UploadPipelined(p, "Nope", "f.bin", 1e6, "", 0)
		if err == nil {
			t.Error("pipelined to unknown provider succeeded")
		}
	})
}

func TestRelayWithoutStagedFileFails(t *testing.T) {
	tb := newTestbed(t)
	tb.run(t, func(p *simproc.Proc) {
		c, err := tb.tn.Dial(p, "user", "dtn", AgentPort, transport.DialOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		msg, err := c.Exchange(p, relayUpload{Name: "ghost", Provider: "GoogleDrive"}, ctrlBytes)
		if err != nil {
			t.Error(err)
			return
		}
		res := msg.Payload.(relayResult)
		if res.OK || !strings.Contains(res.Err, "not staged") {
			t.Errorf("res = %+v", res)
		}
	})
}

func TestUploadDispatch(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	detours := map[string]*DetourClient{"dtn": NewDetourClient(tb.tn, "user", "dtn")}
	tb.run(t, func(p *simproc.Proc) {
		rep, err := Upload(p, DirectRoute, client, detours, "GoogleDrive", "a.bin", 1e6, "")
		if err != nil || rep.Route.Kind != Direct {
			t.Errorf("direct dispatch: %+v %v", rep, err)
		}
		rep, err = Upload(p, ViaRoute("dtn"), client, detours, "GoogleDrive", "b.bin", 1e6, "")
		if err != nil || rep.Route.Via != "dtn" {
			t.Errorf("detour dispatch: %+v %v", rep, err)
		}
		if _, err := Upload(p, ViaRoute("ghost"), client, detours, "GoogleDrive", "c.bin", 1e6, ""); err == nil {
			t.Error("dispatch to unknown detour succeeded")
		}
	})
}

func TestRouteStrings(t *testing.T) {
	if DirectRoute.String() != "Direct" || ViaRoute("UAlberta").String() != "via UAlberta" {
		t.Fatal("route labels")
	}
}

func TestPipelinedValidation(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		if _, err := dc.UploadPipelined(p, "GoogleDrive", "f", 0, "", 0); err == nil {
			t.Error("zero-size pipelined accepted")
		}
	})
}

func TestAgentProviderRegistrationGuard(t *testing.T) {
	tb := newTestbed(t)
	creds := sdk.Register(tb.svc, "x", "y")
	wrong := sdk.NewGoogleDrive(tb.eng, tb.tn, "user", "provider-dc", creds, sdk.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("agent accepted client dialing from the wrong host")
		}
	}()
	tb.agent.RegisterProvider(wrong)
}

func TestReportTimesFinite(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	tb.run(t, func(p *simproc.Proc) {
		rep, err := dc.Upload(p, "GoogleDrive", "f.bin", 10e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		for _, v := range []float64{rep.Total, rep.Hop1, rep.Hop2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("bad time %v in %+v", v, rep)
			}
		}
	})
}
