package sdk

import (
	"encoding/json"
	"fmt"

	"detournet/internal/cloudsim"
	"detournet/internal/httpsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// GoogleDrive is the Drive v3 client: resumable session initiation
// followed by Content-Range PUTs of (by default) 8 MiB.
type GoogleDrive struct {
	base
}

// NewGoogleDrive returns a Drive client dialing from `from` to the API
// frontend at `host`.
func NewGoogleDrive(eng *simclock.Engine, tn *transport.Net, from, host string, creds Credentials, opts Options) *GoogleDrive {
	return &GoogleDrive{base: newBase(eng, tn, from, host, creds, cloudsim.GoogleDrive, opts)}
}

// ProviderName implements Client.
func (g *GoogleDrive) ProviderName() string { return "GoogleDrive" }

// Upload implements Client via the resumable protocol.
func (g *GoogleDrive) Upload(p *simproc.Proc, name string, size float64, md5 string) (FileInfo, error) {
	if size < 0 {
		return FileInfo{}, fmt.Errorf("sdk: negative size")
	}
	attempt := g.attemptID // captured before I/O: the client may be shared
	// 1. Initiate the session.
	req, err := g.authed(p, "POST", "/upload/drive/v3/files?uploadType=resumable")
	if err != nil {
		return FileInfo{}, err
	}
	meta, _ := json.Marshal(map[string]any{"name": name, "size": size})
	req.Header["Content-Type"] = "application/json"
	req.Body = meta
	resp, err := g.do(p, req)
	if err != nil {
		return FileInfo{}, fmt.Errorf("sdk: drive initiate: %w", err)
	}
	location := resp.Header["Location"]
	if location == "" {
		return FileInfo{}, fmt.Errorf("sdk: drive initiate returned no Location")
	}

	// 2. PUT the content. Empty files are a single bare PUT (there is no
	// valid Content-Range for zero bytes); everything else goes in
	// Content-Range chunks.
	if size == 0 {
		put, err := g.authed(p, "PUT", location)
		if err != nil {
			return FileInfo{}, err
		}
		resp, err := g.do(p, put)
		if err != nil {
			return FileInfo{}, fmt.Errorf("sdk: drive empty upload: %w", err)
		}
		return decodeMeta(resp.Body)
	}
	n := chunksOf(size, g.chunk)
	var sent float64
	for i := 0; i < n; i++ {
		chunk := g.chunk
		if sent+chunk > size {
			chunk = size - sent
		}
		put, err := g.authed(p, "PUT", location)
		if err != nil {
			return FileInfo{}, err
		}
		put.Header["Content-Range"] = fmt.Sprintf("bytes %.0f-%.0f/%.0f", sent, sent+chunk-1, size)
		if md5 != "" {
			put.Header["X-Content-MD5"] = md5
		}
		tagAttempt(put, attempt)
		put.BodySize = chunk
		resp, err := g.doRaw(p, put)
		if err != nil {
			return FileInfo{}, err
		}
		sent += chunk
		switch resp.Status {
		case httpsim.StatusPermanentRedirect: // 308: more expected
			if i == n-1 {
				return FileInfo{}, fmt.Errorf("sdk: drive signalled incomplete after final chunk")
			}
		case httpsim.StatusOK:
			return decodeMeta(resp.Body)
		default:
			return FileInfo{}, fmt.Errorf("sdk: drive upload chunk %d: %w", i, resp.Error())
		}
	}
	return FileInfo{}, fmt.Errorf("sdk: drive upload ended without completion")
}

// lookup resolves a name to metadata via the files search endpoint.
func (g *GoogleDrive) lookup(p *simproc.Proc, name string) (FileInfo, error) {
	req, err := g.authed(p, "GET", "/drive/v3/files?q=name='"+name+"'")
	if err != nil {
		return FileInfo{}, err
	}
	resp, err := g.do(p, req)
	if err != nil {
		return FileInfo{}, err
	}
	var out struct {
		Files []FileInfo `json:"files"`
	}
	if err := json.Unmarshal(resp.Body, &out); err != nil {
		return FileInfo{}, fmt.Errorf("sdk: bad list response: %w", err)
	}
	if len(out.Files) == 0 {
		return FileInfo{}, fmt.Errorf("sdk: drive: no file named %q", name)
	}
	return out.Files[0], nil
}

// Stat implements Stater: a metadata-only lookup by name.
func (g *GoogleDrive) Stat(p *simproc.Proc, name string) (FileInfo, error) {
	return g.lookup(p, name)
}

// Download implements Client: name lookup, then an alt=media GET.
func (g *GoogleDrive) Download(p *simproc.Proc, name string) (FileInfo, error) {
	fi, err := g.lookup(p, name)
	if err != nil {
		return FileInfo{}, err
	}
	req, err := g.authed(p, "GET", "/drive/v3/files/"+fi.ID+"?alt=media")
	if err != nil {
		return FileInfo{}, err
	}
	if _, err := g.do(p, req); err != nil {
		return FileInfo{}, err
	}
	return fi, nil
}

// Delete implements Client: lookup then DELETE by id.
func (g *GoogleDrive) Delete(p *simproc.Proc, name string) error {
	fi, err := g.lookup(p, name)
	if err != nil {
		return err
	}
	req, err := g.authed(p, "DELETE", "/drive/v3/files/"+fi.ID)
	if err != nil {
		return err
	}
	_, err = g.do(p, req)
	return err
}

var _ Client = (*GoogleDrive)(nil)
