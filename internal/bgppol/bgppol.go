// Package bgppol implements inter-domain policy routing in the
// Gao–Rexford model: domains (autonomous systems) are related as
// customer/provider or peer, routes must be valley-free, and route
// preference is customer > peer > provider, then shortest AS path, then
// a deterministic lexicographic tie-break.
//
// The paper's routing inefficiencies are artifacts of exactly this layer
// — traffic between two nearby hosts crossing a distant or rate-limited
// exchange because of peering relationships — so experiments route over
// a Policy installed as the topology's PathFinder, plus the handful of
// explicit per-pair overrides observed in the paper's traceroutes.
package bgppol

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"detournet/internal/topology"
)

// RouteType classifies how a domain reaches a destination, in increasing
// preference order.
type RouteType int

const (
	// NoRoute means the destination is unreachable under policy.
	NoRoute RouteType = iota
	// ProviderRoute is learned from a provider (least preferred).
	ProviderRoute
	// PeerRoute is learned from a settlement-free peer.
	PeerRoute
	// CustomerRoute is learned from a customer (most preferred).
	CustomerRoute
	// SelfRoute is the destination's own domain.
	SelfRoute
)

func (t RouteType) String() string {
	switch t {
	case ProviderRoute:
		return "provider"
	case PeerRoute:
		return "peer"
	case CustomerRoute:
		return "customer"
	case SelfRoute:
		return "self"
	default:
		return "none"
	}
}

// Policy holds the domain relationship graph.
type Policy struct {
	domains   map[string]bool
	order     []string
	providers map[string][]string // domain -> its providers (sorted)
	customers map[string][]string // domain -> its customers (sorted)
	peers     map[string][]string // domain -> its peers (sorted)

	// RoutesTo is called per transfer on the hot path; the result only
	// changes when a relationship does, so it is memoized per destination
	// and invalidated by every mutator.
	memoMu sync.Mutex
	memo   map[string]map[string]Route
}

// NewPolicy returns an empty relationship graph.
func NewPolicy() *Policy {
	return &Policy{
		domains:   make(map[string]bool),
		providers: make(map[string][]string),
		customers: make(map[string][]string),
		peers:     make(map[string][]string),
	}
}

// invalidate drops the memoized routing tables; every mutator calls it.
func (p *Policy) invalidate() {
	p.memoMu.Lock()
	p.memo = nil
	p.memoMu.Unlock()
}

// AddDomain registers a domain name. Adding twice is a no-op.
func (p *Policy) AddDomain(name string) {
	if name == "" {
		panic("bgppol: empty domain name")
	}
	if !p.domains[name] {
		p.domains[name] = true
		p.order = append(p.order, name)
		p.invalidate()
	}
}

// Domains returns all registered domains in insertion order.
func (p *Policy) Domains() []string { return append([]string(nil), p.order...) }

func insertSorted(xs []string, s string) []string {
	i := sort.SearchStrings(xs, s)
	if i < len(xs) && xs[i] == s {
		return xs
	}
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = s
	return xs
}

func removeSorted(xs []string, s string) []string {
	i := sort.SearchStrings(xs, s)
	if i >= len(xs) || xs[i] != s {
		return xs
	}
	return append(xs[:i:i], xs[i+1:]...)
}

func contains(xs []string, s string) bool {
	i := sort.SearchStrings(xs, s)
	return i < len(xs) && xs[i] == s
}

// AddCustomerProvider records that customer buys transit from provider.
// Both domains are registered implicitly.
func (p *Policy) AddCustomerProvider(customer, provider string) error {
	if customer == provider {
		return fmt.Errorf("bgppol: %q cannot be its own provider", customer)
	}
	if contains(p.peers[customer], provider) {
		return fmt.Errorf("bgppol: %s and %s are already peers", customer, provider)
	}
	if contains(p.providers[provider], customer) {
		return fmt.Errorf("bgppol: relationship cycle between %s and %s", customer, provider)
	}
	p.AddDomain(customer)
	p.AddDomain(provider)
	p.providers[customer] = insertSorted(p.providers[customer], provider)
	p.customers[provider] = insertSorted(p.customers[provider], customer)
	p.invalidate()
	return nil
}

// RemoveCustomerProvider withdraws a transit relationship. The domains
// stay registered; only the session between them disappears.
func (p *Policy) RemoveCustomerProvider(customer, provider string) error {
	if !contains(p.providers[customer], provider) {
		return fmt.Errorf("bgppol: %s does not buy transit from %s", customer, provider)
	}
	p.providers[customer] = removeSorted(p.providers[customer], provider)
	p.customers[provider] = removeSorted(p.customers[provider], customer)
	p.invalidate()
	return nil
}

// AddPeer records a settlement-free peering between a and b.
func (p *Policy) AddPeer(a, b string) error {
	if a == b {
		return fmt.Errorf("bgppol: %q cannot peer with itself", a)
	}
	if contains(p.providers[a], b) || contains(p.providers[b], a) {
		return fmt.Errorf("bgppol: %s and %s already have a transit relationship", a, b)
	}
	p.AddDomain(a)
	p.AddDomain(b)
	p.peers[a] = insertSorted(p.peers[a], b)
	p.peers[b] = insertSorted(p.peers[b], a)
	p.invalidate()
	return nil
}

// RemovePeer withdraws a peering session between a and b.
func (p *Policy) RemovePeer(a, b string) error {
	if !contains(p.peers[a], b) {
		return fmt.Errorf("bgppol: %s and %s are not peers", a, b)
	}
	p.peers[a] = removeSorted(p.peers[a], b)
	p.peers[b] = removeSorted(p.peers[b], a)
	p.invalidate()
	return nil
}

// Relationship describes how two domains are (or are not) connected.
type Relationship int

const (
	// RelNone means no BGP session between the two domains.
	RelNone Relationship = iota
	// RelPeer is a settlement-free peering.
	RelPeer
	// RelCustomer means the first domain buys transit from the second.
	RelCustomer
	// RelProvider means the first domain sells transit to the second.
	RelProvider
)

// Relationship reports how a relates to b.
func (p *Policy) Relationship(a, b string) Relationship {
	switch {
	case contains(p.peers[a], b):
		return RelPeer
	case contains(p.providers[a], b):
		return RelCustomer
	case contains(p.customers[a], b):
		return RelProvider
	default:
		return RelNone
	}
}

// Clone returns an independent copy of the relationship graph with a
// cold memo, for staged-convergence snapshots.
func (p *Policy) Clone() *Policy {
	np := &Policy{
		domains:   make(map[string]bool, len(p.domains)),
		order:     append([]string(nil), p.order...),
		providers: make(map[string][]string, len(p.providers)),
		customers: make(map[string][]string, len(p.customers)),
		peers:     make(map[string][]string, len(p.peers)),
	}
	for d := range p.domains {
		np.domains[d] = true
	}
	for d, xs := range p.providers {
		np.providers[d] = append([]string(nil), xs...)
	}
	for d, xs := range p.customers {
		np.customers[d] = append([]string(nil), xs...)
	}
	for d, xs := range p.peers {
		np.peers[d] = append([]string(nil), xs...)
	}
	return np
}

// MustAddCustomerProvider panics on error; for static policy tables.
func (p *Policy) MustAddCustomerProvider(customer, provider string) {
	if err := p.AddCustomerProvider(customer, provider); err != nil {
		panic(err)
	}
}

// MustAddPeer panics on error; for static policy tables.
func (p *Policy) MustAddPeer(a, b string) {
	if err := p.AddPeer(a, b); err != nil {
		panic(err)
	}
}

// Route is one domain's best route towards a destination domain.
type Route struct {
	Type    RouteType
	NextHop string // next domain; empty for SelfRoute/NoRoute
	Len     int    // AS-path length (0 for self)
}

// RoutesTo computes every domain's best route to dst under Gao–Rexford
// export and preference rules, with deterministic tie-breaking. The
// returned map is memoized and shared: callers must not mutate it.
func (p *Policy) RoutesTo(dst string) (map[string]Route, error) {
	p.memoMu.Lock()
	if cached, ok := p.memo[dst]; ok {
		p.memoMu.Unlock()
		return cached, nil
	}
	p.memoMu.Unlock()
	best, err := p.computeRoutesTo(dst)
	if err != nil {
		return nil, err
	}
	p.memoMu.Lock()
	if p.memo == nil {
		p.memo = make(map[string]map[string]Route)
	}
	p.memo[dst] = best
	p.memoMu.Unlock()
	return best, nil
}

func (p *Policy) computeRoutesTo(dst string) (map[string]Route, error) {
	if !p.domains[dst] {
		return nil, fmt.Errorf("bgppol: unknown destination domain %q", dst)
	}
	best := make(map[string]Route, len(p.domains))
	best[dst] = Route{Type: SelfRoute}

	// Phase 1 — customer routes: BFS from dst up provider edges. A domain
	// x has a customer route iff there is an all-customer chain from x
	// down to dst; x learns it from the chain's first hop.
	type qitem struct {
		dom string
		len int
	}
	queue := []qitem{{dst, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, prov := range p.providers[cur.dom] {
			if r, ok := best[prov]; ok {
				// Already has a customer (or self) route; keep shorter /
				// lexicographically smaller.
				if r.Type == SelfRoute || r.Len < cur.len+1 ||
					(r.Len == cur.len+1 && r.NextHop <= cur.dom) {
					continue
				}
			}
			best[prov] = Route{Type: CustomerRoute, NextHop: cur.dom, Len: cur.len + 1}
			queue = append(queue, qitem{prov, cur.len + 1})
		}
	}

	// Phase 2 — peer routes: a domain exports only customer/self routes
	// to peers.
	peerRoutes := make(map[string]Route)
	for _, dom := range p.order {
		if _, ok := best[dom]; ok {
			continue
		}
		bestPeer := Route{Type: NoRoute, Len: math.MaxInt32}
		for _, pe := range p.peers[dom] {
			r, ok := best[pe]
			if !ok || (r.Type != CustomerRoute && r.Type != SelfRoute) {
				continue
			}
			cand := Route{Type: PeerRoute, NextHop: pe, Len: r.Len + 1}
			if cand.Len < bestPeer.Len || (cand.Len == bestPeer.Len && cand.NextHop < bestPeer.NextHop) {
				bestPeer = cand
			}
		}
		if bestPeer.Type == PeerRoute {
			peerRoutes[dom] = bestPeer
		}
	}
	for dom, r := range peerRoutes {
		best[dom] = r
	}

	// Phase 3 — provider routes: providers export their best route to
	// customers; uphill chains may be arbitrarily long, so run a
	// Dijkstra-style relaxation over customer->provider edges.
	for {
		changed := false
		// Deterministic sweep order.
		for _, dom := range p.order {
			if r, ok := best[dom]; ok && r.Type != ProviderRoute {
				continue // customer/peer/self routes always win
			}
			cand := Route{Type: NoRoute, Len: math.MaxInt32}
			for _, prov := range p.providers[dom] {
				r, ok := best[prov]
				if !ok {
					continue
				}
				c := Route{Type: ProviderRoute, NextHop: prov, Len: r.Len + 1}
				if c.Len < cand.Len || (c.Len == cand.Len && c.NextHop < cand.NextHop) {
					cand = c
				}
			}
			if cand.Type == ProviderRoute {
				if cur, ok := best[dom]; !ok || cand.Len < cur.Len ||
					(cand.Len == cur.Len && cand.NextHop < cur.NextHop) {
					best[dom] = cand
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return best, nil
}

// DomainPath returns the domain-level AS path from src to dst, inclusive.
func (p *Policy) DomainPath(src, dst string) ([]string, error) {
	if !p.domains[src] {
		return nil, fmt.Errorf("bgppol: unknown source domain %q", src)
	}
	routes, err := p.RoutesTo(dst)
	if err != nil {
		return nil, err
	}
	var path []string
	at := src
	for {
		path = append(path, at)
		r, ok := routes[at]
		if !ok {
			return nil, fmt.Errorf("bgppol: no policy-compliant route %s -> %s", src, dst)
		}
		if r.Type == SelfRoute {
			return path, nil
		}
		at = r.NextHop
		if len(path) > len(p.order)+1 {
			return nil, fmt.Errorf("bgppol: routing loop computing %s -> %s", src, dst)
		}
	}
}

// ValleyFree reports whether a domain path obeys Gao–Rexford: zero or
// more uphill (customer->provider) edges, at most one peer edge, then
// zero or more downhill (provider->customer) edges.
func (p *Policy) ValleyFree(path []string) bool {
	const (
		up = iota
		peered
		down
	)
	state := up
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		switch {
		case contains(p.providers[a], b): // uphill
			if state != up {
				return false
			}
		case contains(p.peers[a], b): // the single peer edge
			if state != up {
				return false
			}
			state = peered
		case contains(p.customers[a], b): // downhill
			state = down
		default:
			return false // no relationship at all
		}
	}
	return true
}

// Finder routes across a topology.Graph using this policy at the domain
// level and hot-potato routing inside each domain: from the current
// ingress the packet exits at the nearest (by intra-domain delay) border
// router that connects to the next domain.
type Finder struct {
	Policy *Policy
}

// Path implements topology.PathFinder.
func (f Finder) Path(g *topology.Graph, src, dst *topology.Node) ([]*topology.Node, error) {
	if f.Policy == nil {
		return nil, fmt.Errorf("bgppol: Finder with nil policy")
	}
	if src.Domain == "" || dst.Domain == "" {
		return nil, fmt.Errorf("bgppol: node without a domain (%s, %s)", src.Name, dst.Name)
	}
	doms, err := f.Policy.DomainPath(src.Domain, dst.Domain)
	if err != nil {
		return nil, err
	}
	return expandDomainPath(g, src, dst, doms)
}

// expandDomainPath turns a domain-level AS path into node hops using
// hot-potato routing inside each domain. Shared by the static Finder
// and the staged-convergence DynamicFinder.
func expandDomainPath(g *topology.Graph, src, dst *topology.Node, doms []string) ([]*topology.Node, error) {
	full := []*topology.Node{src}
	cur := src
	for i := 0; i+1 < len(doms); i++ {
		nextDom := doms[i+1]
		seg, exit, err := nearestBorder(g, cur, doms[i], nextDom)
		if err != nil {
			return nil, fmt.Errorf("bgppol: %s->%s: %w", doms[i], nextDom, err)
		}
		full = append(full, seg[1:]...) // intra-domain hops to the border
		full = append(full, exit)       // cross into the next domain
		cur = exit
	}
	if cur != dst {
		seg, err := intraPath(g, cur, dst, dst.Domain)
		if err != nil {
			return nil, fmt.Errorf("bgppol: within %s: %w", dst.Domain, err)
		}
		full = append(full, seg[1:]...)
	}
	return full, nil
}

// nearestBorder finds the shortest intra-domain path from start to a
// router in domain dom that has an edge into domain next, returning the
// path and the first node on the far side.
func nearestBorder(g *topology.Graph, start *topology.Node, dom, next string) ([]*topology.Node, *topology.Node, error) {
	type cand struct {
		path []*topology.Node
		exit *topology.Node
		cost float64
	}
	bestC := cand{cost: math.Inf(1)}
	for _, n := range g.Nodes() {
		if n.Domain != dom {
			continue
		}
		var far *topology.Node
		for _, e := range g.Edges(n.Name) {
			if e.To.Domain == next {
				far = e.To
				break // edges are sorted; first is the deterministic pick
			}
		}
		if far == nil {
			continue
		}
		seg, err := intraPath(g, start, n, dom)
		if err != nil {
			continue
		}
		cost := 0.0
		for i := 0; i+1 < len(seg); i++ {
			e, _ := g.Edge(seg[i].Name, seg[i+1].Name)
			cost += e.Link.PropDelay
		}
		if cost < bestC.cost || (cost == bestC.cost && far.Name < bestC.exit.Name) {
			bestC = cand{path: seg, exit: far, cost: cost}
		}
	}
	if bestC.exit == nil {
		return nil, nil, fmt.Errorf("no border router towards %s", next)
	}
	return bestC.path, bestC.exit, nil
}

// intraPath is delay-weighted Dijkstra restricted to one domain's nodes.
func intraPath(g *topology.Graph, src, dst *topology.Node, dom string) ([]*topology.Node, error) {
	if src == dst {
		return []*topology.Node{src}, nil
	}
	dist := map[string]float64{src.Name: 0}
	prev := map[string]string{}
	visited := map[string]bool{}
	for {
		cur := ""
		best := math.Inf(1)
		for _, n := range g.Nodes() {
			if n.Domain != dom || visited[n.Name] {
				continue
			}
			if d, ok := dist[n.Name]; ok && d < best {
				best = d
				cur = n.Name
			}
		}
		if cur == "" {
			return nil, fmt.Errorf("no intra-domain route %s -> %s in %s", src.Name, dst.Name, dom)
		}
		if cur == dst.Name {
			break
		}
		visited[cur] = true
		for _, e := range g.Edges(cur) {
			if e.To.Domain != dom {
				continue
			}
			nd := dist[cur] + e.Link.PropDelay
			if d, ok := dist[e.To.Name]; !ok || nd < d {
				dist[e.To.Name] = nd
				prev[e.To.Name] = cur
			}
		}
	}
	var rev []string
	for at := dst.Name; at != src.Name; at = prev[at] {
		rev = append(rev, at)
	}
	out := []*topology.Node{src}
	for i := len(rev) - 1; i >= 0; i-- {
		n, _ := g.Node(rev[i])
		out = append(out, n)
	}
	return out, nil
}
