package telemetry

import (
	"math"
	"sort"
	"sync"

	"detournet/internal/simclock"
)

// Series is a bounded ring buffer of (time, value) samples. Once full,
// new samples overwrite the oldest and Dropped counts the evictions.
type Series struct {
	capacity int
	times    []float64
	values   []float64
	start    int
	n        int
	dropped  int
}

func newSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 256
	}
	return &Series{
		capacity: capacity,
		times:    make([]float64, capacity),
		values:   make([]float64, capacity),
	}
}

func (s *Series) push(t, v float64) {
	if s.n < s.capacity {
		idx := (s.start + s.n) % s.capacity
		s.times[idx], s.values[idx] = t, v
		s.n++
		return
	}
	s.times[s.start], s.values[s.start] = t, v
	s.start = (s.start + 1) % s.capacity
	s.dropped++
}

func (s *Series) snapshot(name string) SeriesSnapshot {
	out := SeriesSnapshot{
		Name:    name,
		Times:   make([]float64, s.n),
		Values:  make([]float64, s.n),
		Dropped: s.dropped,
	}
	for i := 0; i < s.n; i++ {
		idx := (s.start + i) % s.capacity
		out.Times[i] = s.times[idx]
		out.Values[i] = s.values[idx]
	}
	return out
}

// SeriesSnapshot is an ordered copy of one ring buffer.
type SeriesSnapshot struct {
	Name    string    `json:"name"`
	Times   []float64 `json:"times"`
	Values  []float64 `json:"values"`
	Dropped int       `json:"dropped,omitempty"`
}

// Last returns the most recent value (0 when empty).
func (s SeriesSnapshot) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Min and Max scan the retained window (0 when empty).
func (s SeriesSnapshot) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		m = math.Min(m, v)
	}
	return m
}

func (s SeriesSnapshot) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		m = math.Max(m, v)
	}
	return m
}

// Sampler polls a set of named probes on a fixed virtual-time grid and
// records each into its own ring buffer. It implements the scenario
// Pauser contract (Restart/StopAll) so its self-rescheduling tick never
// keeps the event queue from draining between workloads: ticks only run
// while a workload is being driven, exactly like cross-traffic.
//
// Ticks land on multiples of the interval ((floor(now/interval)+1) *
// interval), so sample times — and therefore dumps — are identical
// across same-seed runs regardless of when sampling (re)starts.
type Sampler struct {
	eng      *simclock.Engine
	interval float64
	capacity int

	mu       sync.Mutex
	names    []string // sorted; probe iteration order
	probes   map[string]func() float64
	series   map[string]*Series
	tick     *simclock.Event
	samples  int
	onSample func(t float64)
}

// NewSampler builds a sampler polling every interval virtual seconds,
// keeping up to capacity samples per series.
func NewSampler(eng *simclock.Engine, interval float64, capacity int) *Sampler {
	if interval <= 0 {
		interval = 5
	}
	return &Sampler{
		eng:      eng,
		interval: interval,
		capacity: capacity,
		probes:   make(map[string]func() float64),
		series:   make(map[string]*Series),
	}
}

// Track registers a probe under name. Probes run in sorted-name order on
// every tick; they must be cheap and must not advance virtual time.
// Re-tracking a name replaces its probe but keeps the series.
func (s *Sampler) Track(name string, probe func() float64) {
	if s == nil || probe == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.probes[name]; !ok {
		s.names = append(s.names, name)
		sort.Strings(s.names)
		s.series[name] = newSeries(s.capacity)
	}
	s.probes[name] = probe
}

// OnSample registers a callback invoked after each tick's probes have
// been recorded, with the tick's virtual time. Used for periodic dumps.
func (s *Sampler) OnSample(fn func(t float64)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onSample = fn
	s.mu.Unlock()
}

// Interval returns the sampling interval in virtual seconds.
func (s *Sampler) Interval() float64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Samples returns the number of ticks recorded so far.
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// Restart (Pauser) schedules the next grid-aligned tick. Idempotent.
func (s *Sampler) Restart() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scheduleLocked()
}

// StopAll (Pauser) cancels the pending tick so the engine can drain.
func (s *Sampler) StopAll() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tick != nil {
		s.eng.Cancel(s.tick)
		s.tick = nil
	}
}

func (s *Sampler) scheduleLocked() {
	if s.tick != nil {
		s.eng.Cancel(s.tick)
	}
	now := float64(s.eng.Now())
	next := (math.Floor(now/s.interval) + 1) * s.interval
	s.tick = s.eng.Schedule(simclock.Time(next), s.run)
}

func (s *Sampler) run() {
	s.mu.Lock()
	t := float64(s.eng.Now())
	for _, name := range s.names {
		s.series[name].push(t, s.probes[name]())
	}
	s.samples++
	cb := s.onSample
	s.scheduleLocked()
	s.mu.Unlock()
	if cb != nil {
		cb(t)
	}
}

// Snapshot copies every series, sorted by name.
func (s *Sampler) Snapshot() []SeriesSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, s.series[name].snapshot(name))
	}
	return out
}

// Series returns the snapshot of one named series (zero value if the
// name is untracked).
func (s *Sampler) Series(name string) SeriesSnapshot {
	if s == nil {
		return SeriesSnapshot{Name: name}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ser, ok := s.series[name]; ok {
		return ser.snapshot(name)
	}
	return SeriesSnapshot{Name: name}
}
