package cloudsim

import (
	"strings"
	"testing"

	"detournet/internal/httpsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
)

// TestPendingBytesChargeQuota: live upload sessions charge the quota
// before they commit — a resumable chunk that would fit next to the
// committed objects alone is still refused when pending sessions
// already hold the headroom, and the 507 carries a Retry-After hint.
func TestPendingBytesChargeQuota(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	rg.svc.Store.Quota = 100
	rg.svc.InjectAbandonedSession("ghost.bin", 80)
	if got := rg.svc.PendingBytes(); got != 80 {
		t.Fatalf("pending = %v, want 80", got)
	}
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/upload/drive/v3/files?uploadType=resumable", Host: "dc",
			Header: map[string]string{"Authorization": auth},
			Body:   []byte(`{"name":"f","size":50}`),
		})
		loc := resp.Header["Location"]
		resp, _ = c.Do(p, &httpsim.Request{
			Method: "PUT", Path: loc, Host: "dc",
			Header:   map[string]string{"Authorization": auth, "Content-Range": "bytes 0-49/50"},
			BodySize: 50,
		})
		if resp.Status != httpsim.StatusInsufficientStorage {
			t.Errorf("chunk over pending-charged quota got %d, want 507", resp.Status)
		}
		if resp.Header["Retry-After"] == "" {
			t.Error("507 carries no Retry-After hint")
		}
		if !strings.Contains(string(resp.Body), ErrQuotaExceeded.Error()) {
			t.Errorf("507 body %q lacks the quota message", resp.Body)
		}
	})
	// The refused chunk must not have leaked into used or pending.
	if got := rg.svc.PendingBytes(); got != 80 {
		t.Fatalf("pending after refusal = %v, want the injected 80", got)
	}
	if used := rg.svc.Store.Used(); used != 0 {
		t.Fatalf("used after refusal = %v, want 0", used)
	}
}

// TestReclaimQuotaIdleThreshold: reclaim collects only sessions idle
// for at least the threshold, frees exactly their pending bytes, and
// counts them; a drop after reclaim reports the session already gone.
func TestReclaimQuotaIdleThreshold(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	rg.svc.Store.Quota = 1000
	id := rg.svc.InjectAbandonedSession("ghost.bin", 150)
	if freed := rg.svc.ReclaimQuota(30); freed != 0 {
		t.Fatalf("reclaimed %v bytes from a fresh session, want 0", freed)
	}
	// Age the session past the idle threshold in virtual time.
	rg.r.Go("age", func(p *simproc.Proc) { p.Sleep(60) })
	rg.r.RunUntil(simclock.Time(100))
	if freed := rg.svc.ReclaimQuota(30); freed != 150 {
		t.Fatalf("reclaimed %v bytes, want 150", freed)
	}
	if rg.svc.SessionsReclaimed != 1 {
		t.Fatalf("SessionsReclaimed = %d, want 1", rg.svc.SessionsReclaimed)
	}
	if got := rg.svc.PendingBytes(); got != 0 {
		t.Fatalf("pending after reclaim = %v, want 0", got)
	}
	if rg.svc.DropSession(id) {
		t.Fatal("DropSession found a session reclaim already collected")
	}
}

// TestDropSession: the fault injector's window-close hook removes the
// injected session exactly once.
func TestDropSession(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	id := rg.svc.InjectAbandonedSession("ghost.bin", 40)
	if got := rg.svc.PendingBytes(); got != 40 {
		t.Fatalf("pending = %v, want 40", got)
	}
	if !rg.svc.DropSession(id) {
		t.Fatal("first drop reported the session missing")
	}
	if got := rg.svc.PendingBytes(); got != 0 {
		t.Fatalf("pending after drop = %v, want 0", got)
	}
	if rg.svc.DropSession(id) {
		t.Fatal("second drop succeeded")
	}
}

// TestUsedNeverExceedsQuota: under a mix of commits, pending sessions,
// and reclaim, the committed bytes stay within quota and admission
// accounts pending bytes — the provider-side storage invariant.
func TestUsedNeverExceedsQuota(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	rg.svc.Store.Quota = 200
	check := func(stage string) {
		t.Helper()
		if used := rg.svc.Store.Used(); used > rg.svc.Store.Quota {
			t.Fatalf("%s: used %v exceeds quota %v", stage, used, rg.svc.Store.Quota)
		}
	}
	rg.svc.InjectAbandonedSession("a.bin", 90)
	rg.svc.InjectAbandonedSession("b.bin", 90)
	check("after injections")
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		// 30 bytes would fit against used alone; pending blocks it.
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/upload/drive/v3/files?uploadType=resumable", Host: "dc",
			Header: map[string]string{"Authorization": auth},
			Body:   []byte(`{"name":"f","size":30}`),
		})
		loc := resp.Header["Location"]
		resp, _ = c.Do(p, &httpsim.Request{
			Method: "PUT", Path: loc, Host: "dc",
			Header:   map[string]string{"Authorization": auth, "Content-Range": "bytes 0-29/30"},
			BodySize: 30,
		})
		if resp.Status != httpsim.StatusInsufficientStorage {
			t.Errorf("admission ignored pending bytes: got %d, want 507", resp.Status)
		}
		// Reclaim the two idle ghosts, then the same upload commits.
		p.Sleep(60)
		if freed := rg.svc.ReclaimQuota(30); freed != 180 {
			t.Errorf("reclaimed %v, want 180", freed)
		}
		resp, _ = c.Do(p, &httpsim.Request{
			Method: "PUT", Path: loc, Host: "dc",
			Header:   map[string]string{"Authorization": auth, "Content-Range": "bytes 0-29/30"},
			BodySize: 30,
		})
		if !resp.OK() {
			t.Errorf("post-reclaim chunk got %d, want success", resp.Status)
		}
	})
	check("after reclaim and commit")
	if used := rg.svc.Store.Used(); used != 30 {
		t.Fatalf("used = %v, want the committed 30", used)
	}
}
