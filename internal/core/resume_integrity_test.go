package core

import (
	"errors"
	"testing"

	"detournet/internal/rsyncx"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
)

func TestVerifyDigest(t *testing.T) {
	ck := &Checkpoint{HasSession: true, Hop2High: 5e6}
	// Either side empty, or a match: no-op.
	for _, pair := range [][2]string{{"", "abc"}, {"abc", ""}, {"abc", "abc"}} {
		if err := ck.verifyDigest(pair[0], pair[1]); err != nil {
			t.Fatalf("verifyDigest(%q, %q) = %v", pair[0], pair[1], err)
		}
		if !ck.HasSession {
			t.Fatalf("verifyDigest(%q, %q) discarded the session", pair[0], pair[1])
		}
	}
	// Mismatch: typed error, session gone, progress charged as rewritten.
	err := ck.verifyDigest("good", "bad")
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("mismatch error = %v, want ErrIntegrity", err)
	}
	if ck.HasSession || ck.Hop2High != 0 {
		t.Fatalf("session survived the mismatch: %+v", ck)
	}
	if ck.BytesRewritten != 5e6 {
		t.Fatalf("rewritten = %.0f, want the discarded session's 5e6", ck.BytesRewritten)
	}
}

// TestCorruptedResumeDetectedAndRetried is the integrity satellite's
// end-to-end proof: a checkpoint resumes a provider session that was
// begun against corrupted bytes (its committed digest will not match
// the source), the completed upload fails the digest gate with
// ErrIntegrity, the poisoned session is discarded — and the very next
// attempt, resuming nothing, uploads clean.
func TestCorruptedResumeDetectedAndRetried(t *testing.T) {
	tb := newTestbed(t)
	client := tb.directClient()
	sc, ok := client.(sdk.SessionClient)
	if !ok {
		t.Fatal("direct client has no session support")
	}
	good := rsyncx.Checksum([]byte("the file the user actually has"))
	bad := rsyncx.Checksum([]byte("what a corrupted staging area held"))
	const size = 20e6

	tb.run(t, func(p *simproc.Proc) {
		// A prior attempt began its session from corrupted staging: the
		// provider will commit — and echo — the bad digest.
		sess, err := sc.BeginUpload(p, "f.bin", size, bad)
		if err != nil {
			t.Errorf("begin poisoned session: %v", err)
			return
		}
		if _, err := sess.WriteChunk(p, 8e6, false); err != nil {
			t.Errorf("poisoned chunk: %v", err)
			return
		}
		ck := &Checkpoint{}
		ts, ok := sess.(sdk.TokenSession)
		if !ok {
			t.Error("session has no token")
			return
		}
		ck.Session, ck.HasSession = ts.Token(), true
		ck.Hop2High = sess.Written()

		// The retry resumes the poisoned session, finishes the upload,
		// and must detect the mismatch at completion.
		_, err = DirectUploadResumable(p, client, "f.bin", size, good, ck)
		if !errors.Is(err, ErrIntegrity) {
			t.Errorf("resumed upload err = %v, want ErrIntegrity", err)
			return
		}
		if ck.HasSession {
			t.Error("poisoned session not discarded")
		}
		if ck.BytesRewritten < size {
			t.Errorf("rewritten = %.0f, want >= %.0f (the whole poisoned upload)", ck.BytesRewritten, float64(size))
		}

		// The next attempt starts a fresh session and commits the real
		// digest.
		rep, err := DirectUploadResumable(p, client, "f.bin", size, good, ck)
		if err != nil {
			t.Errorf("clean retry failed: %v", err)
			return
		}
		if rep.Info.MD5 != good {
			t.Errorf("provider digest after retry = %q, want %q", rep.Info.MD5, good)
		}
		if o, ok := tb.svc.Store.Get("f.bin"); !ok || o.MD5 != good {
			t.Errorf("stored object digest = %+v, want %q", o, good)
		}
	})
}

// TestDetourResumableVerifiesDigest covers the detour path's gate: the
// relayed session commits whatever digest the staging held, and the
// client-side checkpoint must reject it when it isn't the source's.
func TestDetourResumableVerifiesDigest(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	good := rsyncx.Checksum([]byte("source bytes"))
	tb.run(t, func(p *simproc.Proc) {
		// Happy path: digest threads client → staging → provider.
		ck := &Checkpoint{}
		rep, err := dc.UploadResumable(p, "GoogleDrive", "ok.bin", 10e6, good, ck)
		if err != nil {
			t.Errorf("detour resumable: %v", err)
			return
		}
		if rep.Info.MD5 != good {
			t.Errorf("detour committed digest %q, want %q", rep.Info.MD5, good)
		}
		if ck.HasSession {
			t.Error("committed upload left a live session in the checkpoint")
		}
	})
}
