// Package core implements the paper's contribution: routing detours for
// client-to-cloud-storage transfers.
//
// A detour replaces the direct API upload with two explicit hops: an
// rsync transfer from the user machine to an intermediate data-transfer
// node (DTN), then a provider-API upload from the DTN (Fig 1 of the
// paper). The paper's detours are store-and-forward — the two hop times
// simply add (36 s = 17 s + 19 s in the UBC example) — and this package
// also provides the pipelined variant the paper leaves as future work,
// where the DTN starts uploading chunks to the provider while later
// chunks are still arriving.
package core

import (
	"fmt"

	"detournet/internal/rsyncx"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
	"detournet/internal/tracelog"
	"detournet/internal/transport"
)

// RouteKind distinguishes direct uploads from detours.
type RouteKind int

const (
	// Direct uses the provider API straight from the user machine.
	Direct RouteKind = iota
	// Detour relays through an intermediate DTN.
	Detour
)

// Route names one way of reaching a provider.
type Route struct {
	Kind RouteKind
	// Via is the DTN host name for detours; empty for direct routes.
	Via string
}

// DirectRoute is the direct route constant.
var DirectRoute = Route{Kind: Direct}

// ViaRoute returns a detour route through the named DTN.
func ViaRoute(dtn string) Route { return Route{Kind: Detour, Via: dtn} }

// String renders the route the way the paper labels its series.
func (r Route) String() string {
	if r.Kind == Direct {
		return "Direct"
	}
	return "via " + r.Via
}

// Report is the outcome of one transfer.
type Report struct {
	Route Route
	// Total is the end-to-end transfer time in virtual seconds.
	Total float64
	// Hop1 is the user→DTN leg (zero for direct routes).
	Hop1 float64
	// Hop2 is the DTN→provider leg (or the whole direct upload).
	Hop2 float64
	// Info is the provider's stored-object metadata.
	Info sdk.FileInfo
}

// DirectUpload times a plain API upload from the user machine — the
// paper's baseline.
func DirectUpload(p *simproc.Proc, client sdk.Client, name string, size float64, md5 string) (Report, error) {
	t0 := p.Now()
	info, err := client.Upload(p, name, size, md5)
	if err != nil {
		return Report{}, fmt.Errorf("core: direct upload: %w", err)
	}
	d := float64(p.Now() - t0)
	return Report{Route: DirectRoute, Total: d, Hop2: d, Info: info}, nil
}

// AgentPort is the TCP port of the DTN relay agent.
const AgentPort = 7373

// Agent is the DTN-side relay: it shares the rsync daemon's staging area
// and holds provider SDK clients that dial *from the DTN*, so the second
// hop rides the DTN's (often better) route to the provider.
type Agent struct {
	tn     *transport.Net
	host   string
	daemon *rsyncx.Daemon

	clients map[string]sdk.SessionClient
	// relays tracks detached resumable relays by object name, so a
	// client retry attaches to the push already in flight instead of
	// starting a duplicate.
	relays map[string]*relayJob
	// relayChunk is the adaptive per-provider relay write size. It
	// persists across relays: when a provider is silently throttling
	// this DTN, the first relay to notice downshifts, and every
	// subsequent relay (including canary probes) starts small — so a
	// parked or aborted push strands seconds of work, not minutes.
	relayChunk map[string]float64
	// Relayed counts completed relay uploads, for tests.
	Relayed int
	// Trace, when set, receives agent-side events.
	Trace *tracelog.Log

	l        *transport.Listener
	conns    map[*transport.Conn]struct{}
	draining bool
	// DrainRejects counts requests refused while draining, for tests.
	DrainRejects int
}

// Drain puts the agent in administrative drain: new detour work —
// fresh relays, streams, probes — is refused with a typed "draining"
// error, while requests already in flight and checkpoint continuations
// carrying a provider session token run to completion. Staged files
// and partials stay on disk throughout.
func (a *Agent) Drain() { a.draining = true }

// Undrain returns the agent to service.
func (a *Agent) Undrain() { a.draining = false }

// Draining reports the administrative drain state.
func (a *Agent) Draining() bool { return a.draining }

// rejectDraining answers a refused request; the error substring
// "draining" is load-bearing — schedulers classify it as a route-level
// failure and fail the job over with its checkpoint.
func (a *Agent) rejectDraining(p *simproc.Proc, c *transport.Conn) {
	a.DrainRejects++
	a.Trace.Emit("agent.drain.reject", map[string]any{
		"dtn": a.host, "client": c.RemoteHost(),
	})
	_ = c.Send(p, relayResult{OK: false, Err: "dtn draining: " + a.host}, ctrlBytes)
}

// NewAgent returns an agent for the DTN host, sharing the rsync daemon's
// staging area.
func NewAgent(tn *transport.Net, host string, daemon *rsyncx.Daemon) *Agent {
	if tn == nil || daemon == nil {
		panic("core: nil transport or daemon")
	}
	return &Agent{tn: tn, host: host, daemon: daemon,
		clients:    make(map[string]sdk.SessionClient),
		relays:     make(map[string]*relayJob),
		relayChunk: make(map[string]float64),
		conns:      make(map[*transport.Conn]struct{}),
	}
}

// Crash models the agent process dying: the listener unbinds and every
// active relay connection drops mid-flight. Provider upload sessions
// survive server-side (their tokens live in client checkpoints), and
// the shared staging area is the daemon's disk — so a restarted agent
// resumes where the crashed one left off. Call Start again to restart.
func (a *Agent) Crash() {
	if a.l != nil {
		a.l.Close()
		a.l = nil
	}
	for c := range a.conns {
		c.Close()
	}
	a.conns = make(map[*transport.Conn]struct{})
}

// RegisterProvider installs the SDK client the agent uses for a
// provider. The client must dial from the agent's host.
func (a *Agent) RegisterProvider(client sdk.SessionClient) {
	if client.From() != a.host {
		panic(fmt.Sprintf("core: provider client dials from %q, agent lives on %q", client.From(), a.host))
	}
	a.clients[client.ProviderName()] = client
}

// CapacityStats snapshots the staging disk the agent shares with its
// rsync daemon — the per-agent used/reserved/headroom view the
// scheduler's spill-aware placement and `detourctl -capacity` read.
func (a *Agent) CapacityStats() rsyncx.CapacityStats {
	return a.daemon.Stats()
}

// Providers lists registered provider names.
func (a *Agent) Providers() []string {
	out := make([]string, 0, len(a.clients))
	for name := range a.clients {
		out = append(out, name)
	}
	return out
}

// Start binds the agent listener and serves until the listener closes.
func (a *Agent) Start() *transport.Listener {
	l := a.tn.MustListen(a.host, AgentPort)
	a.l = l
	r := a.tn.Runner()
	r.Go("detourd:"+a.host, func(p *simproc.Proc) {
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			a.conns[c] = struct{}{}
			r.Go("detourd-conn:"+c.RemoteHost(), func(hp *simproc.Proc) {
				defer delete(a.conns, c)
				a.serve(hp, c)
			})
		}
	})
	return l
}

// Agent wire protocol.

type relayUpload struct {
	Name     string
	Provider string
}

type streamBegin struct {
	Name     string
	Size     float64
	MD5      string
	Provider string
}

type streamChunk struct {
	N    float64
	Last bool
}

type relayResult struct {
	OK      bool
	Err     string
	Info    sdk.FileInfo
	Seconds float64 // DTN-side upload time

	// Resumable-relay checkpoint fields (relayResume/relayPoll replies
	// only). Done distinguishes a finished detached relay from one still
	// in flight — a poll of a live relay reports OK with Done false.
	Done        bool
	HasToken    bool
	Token       sdk.SessionToken // provider session at reply time
	StartOffset float64          // session offset when this relay began
	Written     float64          // session offset at reply time
}

// relayResume is the checkpoint-aware second hop: upload the staged
// file through a provider session, reattaching to Token when possible,
// and return the session token on failure so the caller can carry it —
// across retries and even across routes.
type relayResume struct {
	Name     string
	Provider string
	HasToken bool
	Token    sdk.SessionToken
	// Scope is the caller's flow scope; the agent adopts it while
	// relaying so the second hop's flows are attributable (and
	// abortable) as part of the caller's transfer.
	Scope string
	// AttemptID is the caller's idempotency key: the agent stamps it on
	// the provider client so the relay's commit is safe to replay after
	// a control-plane crash.
	AttemptID string
}

// relayPoll watches a detached resumable relay: the reply is the
// relay's live relayResult (Done false while the push is in flight).
type relayPoll struct {
	Name string
}

// relayAbort asks the DTN to park a detached relay at its next chunk
// boundary. The staged file and the provider session survive, so a
// retry (any route) resumes instead of restarting.
type relayAbort struct {
	Name string
}

// relayPollInterval paces a client watching its detached relay — short
// enough that a stall watchdog's cooperative abort lands promptly AND
// that completion is noticed without idling the lane: a striped
// transfer claims its next chunk only after the poll sees Done, so the
// interval is a dead-time tax on every chunk a detour lane carries.
const relayPollInterval = 0.25

type probeReq struct {
	Provider string
	Bytes    float64
}

const ctrlBytes = 96

func (a *Agent) serve(p *simproc.Proc, c *transport.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return
		}
		switch m := msg.Payload.(type) {
		case relayUpload:
			if a.draining {
				a.rejectDraining(p, c)
				continue
			}
			a.handleRelay(p, c, m)
		case relayResume:
			// A continuation carrying a provider session token is an
			// existing job finishing its work; drain only refuses new ones.
			if a.draining && !m.HasToken {
				a.rejectDraining(p, c)
				continue
			}
			a.handleRelayResume(p, c, m)
		case relayPoll:
			// Watching an in-flight relay is never new work.
			a.handleRelayPoll(p, c, m)
		case relayAbort:
			// Neither is giving one up.
			a.handleRelayAbort(p, c, m)
		case streamBegin:
			if a.draining {
				a.rejectDraining(p, c)
				continue
			}
			a.handleStream(p, c, m)
		case probeReq:
			if a.draining {
				a.rejectDraining(p, c)
				continue
			}
			a.handleProbe(p, c, m)
		case relayDownload:
			if a.draining {
				a.rejectDraining(p, c)
				continue
			}
			a.handleDownload(p, c, m)
		default:
			_ = c.Send(p, relayResult{OK: false, Err: "protocol error"}, ctrlBytes)
			return
		}
	}
}

// handleRelay is the store-and-forward second hop: upload an
// already-staged file to the provider.
func (a *Agent) handleRelay(p *simproc.Proc, c *transport.Conn, m relayUpload) {
	client, ok := a.clients[m.Provider]
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Err: "unknown provider " + m.Provider}, ctrlBytes)
		return
	}
	st, ok := a.daemon.Staged(m.Name)
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Err: "not staged: " + m.Name}, ctrlBytes)
		return
	}
	// An in-flight relay read pins its staged file against eviction.
	a.daemon.Pin(m.Name)
	defer a.daemon.Unpin(m.Name)
	t0 := p.Now()
	info, err := client.Upload(p, st.Name, st.Size, st.MD5)
	if err != nil {
		_ = c.Send(p, relayResult{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	a.Relayed++
	a.Trace.Emit("agent.relay.upload", map[string]any{
		"name": st.Name, "provider": m.Provider, "bytes": st.Size,
		"seconds": float64(p.Now() - t0), "client": c.RemoteHost(),
	})
	_ = c.Send(p, relayResult{OK: true, Info: info, Seconds: float64(p.Now() - t0)}, ctrlBytes)
}

// handleStream is the pipelined mode: chunks arrive on the connection
// and are written to a provider upload session as they land, so the
// user→DTN and DTN→provider hops overlap.
func (a *Agent) handleStream(p *simproc.Proc, c *transport.Conn, m streamBegin) {
	client, ok := a.clients[m.Provider]
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Err: "unknown provider " + m.Provider}, ctrlBytes)
		return
	}
	sess, err := client.BeginUpload(p, m.Name, m.Size, m.MD5)
	if err != nil {
		_ = c.Send(p, relayResult{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	if err := c.Send(p, relayResult{OK: true}, ctrlBytes); err != nil {
		return
	}
	t0 := p.Now()
	var info sdk.FileInfo
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return
		}
		ch, ok := msg.Payload.(streamChunk)
		if !ok {
			_ = c.Send(p, relayResult{OK: false, Err: "expected chunk"}, ctrlBytes)
			return
		}
		info, err = sess.WriteChunk(p, ch.N, ch.Last)
		if err != nil {
			_ = c.Send(p, relayResult{OK: false, Err: err.Error()}, ctrlBytes)
			return
		}
		if ch.Last {
			break
		}
	}
	a.Relayed++
	_ = c.Send(p, relayResult{OK: true, Info: info, Seconds: float64(p.Now() - t0)}, ctrlBytes)
}

// handleProbe times a small upload from the DTN to the provider, the
// second-hop measurement the detour selector extrapolates from.
func (a *Agent) handleProbe(p *simproc.Proc, c *transport.Conn, m probeReq) {
	client, ok := a.clients[m.Provider]
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Err: "unknown provider " + m.Provider}, ctrlBytes)
		return
	}
	if m.Bytes <= 0 {
		m.Bytes = 1 << 20
	}
	t0 := p.Now()
	name := fmt.Sprintf(".probe-%s-%d", c.RemoteHost(), int64(p.Now()*1e6))
	_, err := client.Upload(p, name, m.Bytes, "")
	if err != nil {
		_ = c.Send(p, relayResult{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	// Best-effort cleanup so probes do not accumulate provider-side.
	_ = client.Delete(p, name)
	_ = c.Send(p, relayResult{OK: true, Seconds: float64(p.Now() - t0)}, ctrlBytes)
}

// DetourClient executes detoured uploads from a user machine through one
// DTN.
type DetourClient struct {
	tn   *transport.Net
	from string
	dtn  string
	// Rsync is the first-hop client; exposed so tests can tune it.
	Rsync *rsyncx.Client
	// CleanStaging, when set (the default), deletes any staged copy
	// before transferring, as the paper's methodology prescribes.
	CleanStaging bool
	// Trace, when set, receives client-side detour events.
	Trace *tracelog.Log
}

// NewDetourClient returns a detour client from `from` via the DTN `dtn`.
func NewDetourClient(tn *transport.Net, from, dtn string) *DetourClient {
	return &DetourClient{
		tn:           tn,
		from:         from,
		dtn:          dtn,
		Rsync:        rsyncx.NewClient(tn, from, dtn),
		CleanStaging: true,
	}
}

// Route returns the detour's route label.
func (d *DetourClient) Route() Route { return ViaRoute(d.dtn) }

// Upload performs the paper's store-and-forward detour: rsync the file
// to the DTN, then command the agent to upload it to the provider. The
// report carries both hop times; Total = Hop1 + Hop2 (+ command RTTs).
func (d *DetourClient) Upload(p *simproc.Proc, provider, name string, size float64, md5 string) (Report, error) {
	t0 := p.Now()
	if d.CleanStaging {
		// Best-effort: deleting a non-staged file is fine.
		_ = d.Rsync.Delete(p, name)
	}
	h0 := p.Now()
	if err := d.Rsync.PushSized(p, name, size, md5); err != nil {
		return Report{}, fmt.Errorf("core: detour hop1: %w", err)
	}
	hop1 := float64(p.Now() - h0)

	c, err := d.tn.Dial(p, d.from, d.dtn, AgentPort, transport.DialOpts{})
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent dial: %w", err)
	}
	defer c.Close()
	msg, err := c.Exchange(p, relayUpload{Name: name, Provider: provider}, ctrlBytes)
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent: %w", err)
	}
	res, ok := msg.Payload.(relayResult)
	if !ok {
		return Report{}, fmt.Errorf("core: detour agent sent %T", msg.Payload)
	}
	if !res.OK {
		return Report{}, fmt.Errorf("core: detour hop2: %s", res.Err)
	}
	rep := Report{
		Route: d.Route(),
		Total: float64(p.Now() - t0),
		Hop1:  hop1,
		Hop2:  res.Seconds,
		Info:  res.Info,
	}
	d.Trace.Emit("detour.upload.done", map[string]any{
		"from": d.from, "via": d.dtn, "provider": provider, "name": name,
		"bytes": size, "total": rep.Total, "hop1": rep.Hop1, "hop2": rep.Hop2,
	})
	return rep, nil
}

// ProbeHop1 times a small rsync transfer to the DTN and returns its
// duration in seconds.
func (d *DetourClient) ProbeHop1(p *simproc.Proc, bytes float64) (float64, error) {
	if bytes <= 0 {
		bytes = 1 << 20
	}
	name := fmt.Sprintf(".probe-%s-%d", d.from, int64(float64(p.Now())*1e6))
	t0 := p.Now()
	if err := d.Rsync.PushSized(p, name, bytes, ""); err != nil {
		return 0, err
	}
	dur := float64(p.Now() - t0)
	_ = d.Rsync.Delete(p, name)
	return dur, nil
}

// ProbeHop2 asks the agent to time a small upload from the DTN to the
// provider and returns its duration in seconds.
func (d *DetourClient) ProbeHop2(p *simproc.Proc, provider string, bytes float64) (float64, error) {
	c, err := d.tn.Dial(p, d.from, d.dtn, AgentPort, transport.DialOpts{})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	msg, err := c.Exchange(p, probeReq{Provider: provider, Bytes: bytes}, ctrlBytes)
	if err != nil {
		return 0, err
	}
	res, ok := msg.Payload.(relayResult)
	if !ok {
		return 0, fmt.Errorf("core: probe got %T", msg.Payload)
	}
	if !res.OK {
		return 0, fmt.Errorf("core: probe: %s", res.Err)
	}
	return res.Seconds, nil
}

// UploadPipelined performs the pipelined detour (the paper's future
// work): the file moves to the DTN in chunks over one stream and the
// agent forwards each chunk into a provider upload session while later
// chunks are still in flight.
func (d *DetourClient) UploadPipelined(p *simproc.Proc, provider, name string, size float64, md5 string, chunkBytes float64) (Report, error) {
	if size <= 0 {
		return Report{}, fmt.Errorf("core: pipelined upload needs positive size")
	}
	if chunkBytes <= 0 {
		chunkBytes = 4 << 20
	}
	t0 := p.Now()
	c, err := d.tn.Dial(p, d.from, d.dtn, AgentPort, transport.DialOpts{})
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent dial: %w", err)
	}
	defer c.Close()
	msg, err := c.Exchange(p, streamBegin{Name: name, Size: size, MD5: md5, Provider: provider}, ctrlBytes)
	if err != nil {
		return Report{}, fmt.Errorf("core: stream begin: %w", err)
	}
	if res, ok := msg.Payload.(relayResult); !ok || !res.OK {
		return Report{}, fmt.Errorf("core: stream begin rejected: %+v", msg.Payload)
	}
	for sent := 0.0; sent < size; {
		n := chunkBytes
		last := false
		if sent+n >= size {
			n = size - sent
			last = true
		}
		if err := c.Send(p, streamChunk{N: n, Last: last}, n); err != nil {
			return Report{}, fmt.Errorf("core: stream chunk: %w", err)
		}
		sent += n
	}
	msg, err = c.Recv(p)
	if err != nil {
		return Report{}, fmt.Errorf("core: stream result: %w", err)
	}
	res, ok := msg.Payload.(relayResult)
	if !ok {
		return Report{}, fmt.Errorf("core: stream result sent %T", msg.Payload)
	}
	if !res.OK {
		return Report{}, fmt.Errorf("core: pipelined relay: %s", res.Err)
	}
	total := float64(p.Now() - t0)
	d.Trace.Emit("detour.pipeline.done", map[string]any{
		"from": d.from, "via": d.dtn, "provider": provider, "name": name,
		"bytes": size, "total": total, "hop2": res.Seconds,
	})
	return Report{
		Route: d.Route(),
		Total: total,
		Hop1:  total, // hops overlap; both span the whole transfer
		Hop2:  res.Seconds,
		Info:  res.Info,
	}, nil
}

// Upload executes a transfer over the given route: direct via `direct`,
// or detoured via the matching client in `detours`. It is the uniform
// entry point the measurement harness drives.
func Upload(p *simproc.Proc, route Route, direct sdk.Client, detours map[string]*DetourClient,
	provider, name string, size float64, md5 string) (Report, error) {
	if route.Kind == Direct {
		return DirectUpload(p, direct, name, size, md5)
	}
	dc, ok := detours[route.Via]
	if !ok {
		return Report{}, fmt.Errorf("core: no detour client via %q", route.Via)
	}
	return dc.Upload(p, provider, name, size, md5)
}
