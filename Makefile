GO ?= go

.PHONY: build test vet race bench check fleet chaos overload stress churn multipath grayfail crashsafe pressure telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Bench: every Go benchmark (scheduler drain bare vs instrumented,
# registry hot path, transfer kernels), then the seeded detourbench
# sweep that writes the machine-readable BENCH_10.json (storm goodput,
# drain wall time with/without telemetry, dispatch ns/job).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
	$(GO) run ./cmd/detourbench -experiment bench -out BENCH_10.json

fleet:
	$(GO) run ./examples/fleet

# Chaos: the fault-injection tests race-clean, then the fleet trace
# replayed under the canned fault schedule.
chaos:
	$(GO) test -race ./internal/faults/ ./internal/sched/
	$(GO) run ./examples/chaos

# Overload: the flash-crowd trace replayed with and without the
# overload-control stack (admission control, fair queuing, shedding,
# hedging, brownout), comparing goodput and fairness.
overload:
	$(GO) run ./examples/overload

# Churn: the routing-dynamics tests race-clean (staged convergence,
# push invalidation, make-before-break reroute/reattach), then the BGP
# reconvergence storm replayed with and without the churn stack.
churn:
	$(GO) test -race ./internal/bgppol/ ./internal/sched/ ./internal/core/
	$(GO) run ./examples/churn

# Multipath: the striping tests race-clean (chunk ledger, hedging,
# drains, churn digest property), then the striped-vs-single replay.
multipath:
	$(GO) test -race ./internal/multipath/ ./internal/stats/ ./internal/sched/
	$(GO) run ./examples/multipath

# Grayfail: the gray-failure detection tests race-clean (stall
# watchdogs, outlier ejection with canary re-admission, retry budgets),
# then the silent-degradation replay with and without the health stack.
grayfail:
	$(GO) test -race ./internal/health/ ./internal/faults/ ./internal/sched/
	$(GO) run ./examples/grayfail

# Crashsafe: the crash-consistency tests race-clean (journal framing,
# replay fold, torn tails, snapshot equivalence, the full crash-point
# sweep), the journal record-decode fuzzer holds up for a short smoke
# run, then the sweep replay: kill at every crash point, restart on the
# journal, converge byte-identical with zero duplicate commits.
crashsafe:
	$(GO) test -race ./internal/journal/ ./internal/sched/
	$(GO) test -fuzz=FuzzScan -fuzztime=5s ./internal/journal
	$(GO) run ./examples/crashsafe

# Pressure: the storage-exhaustion tests race-clean (staging-disk
# admission/eviction/conservation, quota reclaim/spill/park ladder,
# journal ENOSPC compaction and degraded mode), then the replay:
# disks fill, quota drains, the journal device fills — the full stack
# vs the no-mitigation ablation.
pressure:
	$(GO) test -race ./internal/rsyncx/ ./internal/sched/ ./internal/cloudsim/ ./internal/journal/
	$(GO) run ./examples/pressure

# Telemetry: the observability-plane tests race-clean (registry hot
# path, histogram merges, sampler wraparound/pause, flight-recorder
# retention, determinism, no-observer-effect), then the instrumented
# flash-crowd replay: live dumps, dashboard sparklines, failed-job
# decision traces, Prometheus dump.
telemetry:
	$(GO) test -race ./internal/telemetry/ ./internal/sched/
	$(GO) run ./examples/telemetry

# Stress: the scheduler suite repeated under the race detector to
# shake out ordering-dependent bugs in the queue and overload layer.
stress:
	$(GO) test -race -count=5 ./internal/sched/

# The gate PRs must pass: everything compiles, vets clean, the full
# test suite (including the really-concurrent scheduler) is race-clean,
# the delta-encoding and journal-decode fuzzers hold up for a short
# smoke run, the chaos and overload replays complete, and the churn,
# multipath, grayfail, crashsafe, pressure, and telemetry replays are
# byte-identical across two runs of the same seed — for telemetry that
# covers the whole observability plane: metric dumps, time series,
# sparklines, and flight-recorder traces. The eviction-safety suites
# get an explicit race pass (cheap, and kept even if the blanket ./...
# leg above is ever narrowed).
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
	$(GO) test -race ./internal/rsyncx/ ./internal/sched/
	$(GO) test -fuzz=FuzzDelta -fuzztime=10s ./internal/rsyncx
	$(GO) test -fuzz=FuzzScan -fuzztime=5s ./internal/journal
	$(GO) run ./examples/chaos >/dev/null
	$(GO) run ./examples/overload >/dev/null
	$(GO) run ./examples/churn >.churn.a.tmp
	$(GO) run ./examples/churn >.churn.b.tmp
	cmp .churn.a.tmp .churn.b.tmp
	rm -f .churn.a.tmp .churn.b.tmp
	$(GO) run ./examples/multipath >.mp.a.tmp
	$(GO) run ./examples/multipath >.mp.b.tmp
	cmp .mp.a.tmp .mp.b.tmp
	rm -f .mp.a.tmp .mp.b.tmp
	$(GO) run ./examples/grayfail >.gray.a.tmp
	$(GO) run ./examples/grayfail >.gray.b.tmp
	cmp .gray.a.tmp .gray.b.tmp
	rm -f .gray.a.tmp .gray.b.tmp
	$(GO) run ./examples/crashsafe >.cs.a.tmp
	$(GO) run ./examples/crashsafe >.cs.b.tmp
	cmp .cs.a.tmp .cs.b.tmp
	rm -f .cs.a.tmp .cs.b.tmp
	$(GO) run ./examples/pressure >.pr.a.tmp
	$(GO) run ./examples/pressure >.pr.b.tmp
	cmp .pr.a.tmp .pr.b.tmp
	rm -f .pr.a.tmp .pr.b.tmp
	$(GO) run ./examples/telemetry >.tlm.a.tmp
	$(GO) run ./examples/telemetry >.tlm.b.tmp
	cmp .tlm.a.tmp .tlm.b.tmp
	rm -f .tlm.a.tmp .tlm.b.tmp
