// Package overlay generalizes the paper's one-hop routing detours into a
// small resilient-overlay-network (RON-style) substrate: overlay member
// hosts run a daemon that can probe each other and relay payloads along
// multi-hop paths; a Mesh controller maintains pairwise throughput
// estimates from periodic probes and routes each transfer over the
// widest (max-bottleneck-throughput) path within a hop budget.
//
// This is the paper's stated future work — "monitor and bypass dynamic
// bottlenecks on the WAN" — built on the same transport substrate as the
// detour system, so the overlay-monitor example can show a congestion
// episode appearing on the direct path and the mesh routing around it.
package overlay

import (
	"fmt"
	"math"
	"sort"

	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// Port is the overlay daemon port.
const Port = 9101

const ctrlBytes = 96

// Daemon is one overlay member's service: it answers probe and relay
// commands from peers and controllers.
type Daemon struct {
	tn   *transport.Net
	host string
	// Relayed counts payloads forwarded through this member.
	Relayed int
}

// NewDaemon returns a daemon for the host.
func NewDaemon(tn *transport.Net, host string) *Daemon {
	if tn == nil {
		panic("overlay: nil transport")
	}
	return &Daemon{tn: tn, host: host}
}

// Host returns the member host name.
func (d *Daemon) Host() string { return d.host }

// Start binds the daemon and serves until the listener closes.
func (d *Daemon) Start() *transport.Listener {
	l := d.tn.MustListen(d.host, Port)
	r := d.tn.Runner()
	r.Go("overlayd:"+d.host, func(p *simproc.Proc) {
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			r.Go("overlayd-conn:"+c.RemoteHost(), func(hp *simproc.Proc) {
				d.serve(hp, c)
			})
		}
	})
	return l
}

// Wire messages.

type probeCmd struct {
	Target string
	Bytes  float64
}

type payloadMsg struct {
	Bytes float64
	// Path holds the remaining hops after this one; empty means this
	// member is the destination.
	Path []string
}

type result struct {
	OK      bool
	Err     string
	Seconds float64
}

func (d *Daemon) serve(p *simproc.Proc, c *transport.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return
		}
		switch m := msg.Payload.(type) {
		case probeCmd:
			d.handleProbe(p, c, m)
		case payloadMsg:
			d.handlePayload(p, c, m)
		default:
			_ = c.Send(p, result{OK: false, Err: "protocol error"}, ctrlBytes)
			return
		}
	}
}

// handleProbe times a payload transfer from this member to the target
// member and reports the duration to the requester.
func (d *Daemon) handleProbe(p *simproc.Proc, c *transport.Conn, m probeCmd) {
	t0 := p.Now()
	err := d.forward(p, m.Target, payloadMsg{Bytes: m.Bytes})
	if err != nil {
		_ = c.Send(p, result{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	_ = c.Send(p, result{OK: true, Seconds: float64(p.Now() - t0)}, ctrlBytes)
}

// handlePayload accepts a payload; if more hops remain it forwards
// (store-and-forward) and reports the outcome upstream.
func (d *Daemon) handlePayload(p *simproc.Proc, c *transport.Conn, m payloadMsg) {
	if len(m.Path) == 0 {
		_ = c.Send(p, result{OK: true}, ctrlBytes)
		return
	}
	d.Relayed++
	next, rest := m.Path[0], m.Path[1:]
	if err := d.forward(p, next, payloadMsg{Bytes: m.Bytes, Path: rest}); err != nil {
		_ = c.Send(p, result{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	_ = c.Send(p, result{OK: true}, ctrlBytes)
}

// forward sends a payload to the next member and waits for its ack.
func (d *Daemon) forward(p *simproc.Proc, next string, m payloadMsg) error {
	conn, err := d.tn.Dial(p, d.host, next, Port, transport.DialOpts{})
	if err != nil {
		return err
	}
	defer conn.Close()
	reply, err := conn.Exchange(p, m, m.Bytes+ctrlBytes)
	if err != nil {
		return err
	}
	res, ok := reply.Payload.(result)
	if !ok {
		return fmt.Errorf("overlay: hop %s sent %T", next, reply.Payload)
	}
	if !res.OK {
		return fmt.Errorf("overlay: hop %s: %s", next, res.Err)
	}
	return nil
}

// Stat is the mesh's view of one directed member pair.
type Stat struct {
	// Rate is the EWMA throughput estimate in bytes/second.
	Rate float64
	// Probes counts measurements taken.
	Probes int
	// LastProbe is the virtual time of the latest measurement.
	LastProbe simclock.Time
}

// Mesh is the overlay controller: membership, link statistics, path
// selection, and transfers.
type Mesh struct {
	tn      *transport.Net
	from    string // controller's host, used to dial member daemons
	members []string
	stats   map[[2]string]*Stat

	// MaxIntermediates bounds detour length; 1 reproduces the paper's
	// single-hop detours, larger values allow RON-style multi-hop.
	MaxIntermediates int
	// ProbeBytes sizes monitoring transfers (default 1 MiB).
	ProbeBytes float64
	// Alpha is the EWMA weight of new probes.
	Alpha float64
}

// NewMesh returns a controller at `from` for the given member hosts
// (each must run a Daemon).
func NewMesh(tn *transport.Net, from string, members []string) *Mesh {
	if len(members) < 2 {
		panic("overlay: mesh needs at least 2 members")
	}
	return &Mesh{
		tn: tn, from: from,
		members:          append([]string(nil), members...),
		stats:            make(map[[2]string]*Stat),
		MaxIntermediates: 1,
		ProbeBytes:       1 << 20,
		Alpha:            0.4,
	}
}

// Members returns the member hosts.
func (m *Mesh) Members() []string { return append([]string(nil), m.members...) }

// Stat returns the current estimate for a directed pair.
func (m *Mesh) Stat(src, dst string) (Stat, bool) {
	s, ok := m.stats[[2]string{src, dst}]
	if !ok {
		return Stat{}, false
	}
	return *s, true
}

// Probe measures src->dst once by commanding src's daemon and folds the
// result into the EWMA.
func (m *Mesh) Probe(p *simproc.Proc, src, dst string) (float64, error) {
	var seconds float64
	if src == m.from {
		// The controller is the probe source: time the transfer itself.
		conn, err := m.tn.Dial(p, m.from, dst, Port, transport.DialOpts{})
		if err != nil {
			return 0, err
		}
		t0 := p.Now()
		reply, err := conn.Exchange(p, payloadMsg{Bytes: m.ProbeBytes}, m.ProbeBytes+ctrlBytes)
		conn.Close()
		if err != nil {
			return 0, err
		}
		if res, ok := reply.Payload.(result); !ok || !res.OK {
			return 0, fmt.Errorf("overlay: probe %s->%s failed: %+v", src, dst, reply.Payload)
		}
		seconds = float64(p.Now() - t0)
	} else {
		conn, err := m.tn.Dial(p, m.from, src, Port, transport.DialOpts{})
		if err != nil {
			return 0, err
		}
		reply, err := conn.Exchange(p, probeCmd{Target: dst, Bytes: m.ProbeBytes}, ctrlBytes)
		conn.Close()
		if err != nil {
			return 0, err
		}
		res, ok := reply.Payload.(result)
		if !ok || !res.OK {
			return 0, fmt.Errorf("overlay: probe %s->%s failed: %+v", src, dst, reply.Payload)
		}
		seconds = res.Seconds
	}
	rate := m.ProbeBytes / seconds
	key := [2]string{src, dst}
	s := m.stats[key]
	if s == nil {
		s = &Stat{Rate: rate}
		m.stats[key] = s
	} else {
		s.Rate = m.Alpha*rate + (1-m.Alpha)*s.Rate
	}
	s.Probes++
	s.LastProbe = p.Now()
	return rate, nil
}

// ProbeAll measures every ordered member pair once, in deterministic
// order. A pair whose probe fails (unreachable member, dead link) has
// its rate zeroed and the sweep continues — path selection then routes
// around it, which is the point of monitoring.
func (m *Mesh) ProbeAll(p *simproc.Proc) error {
	srcs := append([]string(nil), m.members...)
	sort.Strings(srcs)
	var firstErr error
	for _, s := range srcs {
		for _, d := range srcs {
			if s == d {
				continue
			}
			if _, err := m.Probe(p, s, d); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				key := [2]string{s, d}
				if st := m.stats[key]; st != nil {
					st.Rate = 0
					st.Probes++
				} else {
					m.stats[key] = &Stat{Rate: 0, Probes: 1}
				}
			}
		}
	}
	return firstErr
}

// Monitor starts a background process probing all pairs every interval
// seconds until the returned stop function is called.
func (m *Mesh) Monitor(interval float64) (stop func()) {
	stopped := false
	r := m.tn.Runner()
	r.Go("overlay-monitor", func(p *simproc.Proc) {
		for !stopped {
			_ = m.ProbeAll(p) // failed pairs are zeroed; keep monitoring
			p.Sleep(interval)
		}
	})
	return func() { stopped = true }
}

// BestPath returns the member path (src first, dst last) maximizing the
// bottleneck throughput estimate, with at most MaxIntermediates relay
// members, and that bottleneck rate. Pairs never probed rate as zero.
func (m *Mesh) BestPath(src, dst string) ([]string, float64) {
	rate := func(a, b string) float64 {
		if s, ok := m.stats[[2]string{a, b}]; ok {
			return s.Rate
		}
		return 0
	}
	type cand struct {
		path []string
		bw   float64
	}
	best := cand{path: []string{src, dst}, bw: rate(src, dst)}
	var extend func(path []string, bw float64)
	extend = func(path []string, bw float64) {
		last := path[len(path)-1]
		if len(path)-1 > m.MaxIntermediates {
			return
		}
		// Close the path to dst.
		if closeBW := math.Min(bw, rate(last, dst)); closeBW > best.bw {
			best = cand{path: append(append([]string(nil), path...), dst), bw: closeBW}
		}
		for _, mem := range m.members {
			if mem == dst || contains(path, mem) {
				continue
			}
			nb := math.Min(bw, rate(last, mem))
			if nb <= best.bw { // cannot improve the bottleneck
				continue
			}
			extend(append(append([]string(nil), path...), mem), nb)
		}
	}
	extend([]string{src}, math.Inf(1))
	return best.path, best.bw
}

// Transfer moves size bytes along an explicit member path
// (store-and-forward at each hop) and returns the elapsed seconds. When
// the controller host is itself the path's source the payload is sent
// straight to the next hop; otherwise the payload is injected at the
// source member first.
func (m *Mesh) Transfer(p *simproc.Proc, path []string, size float64) (float64, error) {
	if len(path) < 2 {
		return 0, fmt.Errorf("overlay: path needs at least src and dst")
	}
	first, rest := path[0], path[1:]
	if first == m.from {
		first, rest = rest[0], rest[1:]
	}
	conn, err := m.tn.Dial(p, m.from, first, Port, transport.DialOpts{})
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	t0 := p.Now()
	reply, err := conn.Exchange(p, payloadMsg{Bytes: size, Path: rest}, size+ctrlBytes)
	if err != nil {
		return 0, err
	}
	res, ok := reply.Payload.(result)
	if !ok || !res.OK {
		return 0, fmt.Errorf("overlay: transfer failed: %+v", reply.Payload)
	}
	return float64(p.Now() - t0), nil
}

// Send routes size bytes from src to dst over the current best path and
// returns the path taken and the elapsed seconds.
func (m *Mesh) Send(p *simproc.Proc, src, dst string, size float64) ([]string, float64, error) {
	path, bw := m.BestPath(src, dst)
	if bw <= 0 {
		return nil, 0, fmt.Errorf("overlay: no probed path %s -> %s", src, dst)
	}
	sec, err := m.Transfer(p, path, size)
	return path, sec, err
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
