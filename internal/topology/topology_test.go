package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"detournet/internal/fluid"
	"detournet/internal/geo"
	"detournet/internal/simclock"
)

func newGraph() *Graph {
	return New(fluid.New(simclock.NewEngine()))
}

func addN(t *testing.T, g *Graph, names ...string) {
	t.Helper()
	for _, n := range names {
		g.MustAddNode(&Node{Name: n, Kind: Router, RespondsICMP: true})
	}
}

func TestAddNodeErrors(t *testing.T) {
	g := newGraph()
	if _, err := g.AddNode(&Node{}); err == nil {
		t.Fatal("nameless node accepted")
	}
	g.MustAddNode(&Node{Name: "a"})
	if _, err := g.AddNode(&Node{Name: "a"}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestHostnameDefaultsToName(t *testing.T) {
	g := newGraph()
	n := g.MustAddNode(&Node{Name: "r1"})
	if n.Hostname != "r1" {
		t.Fatalf("Hostname = %q", n.Hostname)
	}
}

func TestConnectErrors(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "b")
	if err := g.Connect("a", "missing", LinkSpec{CapacityBps: 1}); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := g.Connect("a", "a", LinkSpec{CapacityBps: 1}); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := g.Connect("a", "b", LinkSpec{CapacityBps: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	g.MustConnect("a", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.001})
	if err := g.ConnectAsym("a", "b", LinkSpec{CapacityBps: 1}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestDelayDerivedFromGeo(t *testing.T) {
	g := newGraph()
	g.MustAddNode(&Node{Name: "van", Site: geo.UBC})
	g.MustAddNode(&Node{Name: "edm", Site: geo.UAlberta})
	g.MustConnect("van", "edm", LinkSpec{CapacityBps: 1e6})
	e, _ := g.Edge("van", "edm")
	// ~820 km * 1.4 / 200000 km/s ≈ 5.7 ms
	if e.Link.PropDelay < 0.004 || e.Link.PropDelay > 0.008 {
		t.Fatalf("derived delay = %v, want ~5.7ms", e.Link.PropDelay)
	}
}

func TestSameSiteDefaultDelay(t *testing.T) {
	g := newGraph()
	g.MustAddNode(&Node{Name: "h1", Site: geo.UBC})
	g.MustAddNode(&Node{Name: "h2", Site: geo.UBC})
	g.MustConnect("h1", "h2", LinkSpec{CapacityBps: 1e6})
	e, _ := g.Edge("h1", "h2")
	if e.Link.PropDelay <= 0 {
		t.Fatal("same-site link must still have positive delay")
	}
}

func TestShortestPathByDelay(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "m1", "m2", "b")
	g.MustConnect("a", "m1", LinkSpec{CapacityBps: 1, DelaySec: 0.010})
	g.MustConnect("m1", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.010})
	g.MustConnect("a", "m2", LinkSpec{CapacityBps: 1, DelaySec: 0.002})
	g.MustConnect("m2", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.002})
	p, err := g.Path("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(PathNames(p), ","); got != "a,m2,b" {
		t.Fatalf("path = %s, want a,m2,b", got)
	}
}

func TestNoRoute(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "b")
	if _, err := g.Path("a", "b"); err == nil {
		t.Fatal("disconnected path did not error")
	}
	if _, err := g.Path("a", "missing"); err == nil {
		t.Fatal("unknown dst did not error")
	}
	if _, err := g.Path("missing", "a"); err == nil {
		t.Fatal("unknown src did not error")
	}
}

func TestTrivialPath(t *testing.T) {
	g := newGraph()
	addN(t, g, "a")
	p, err := g.Path("a", "a")
	if err != nil || len(p) != 1 || p[0].Name != "a" {
		t.Fatalf("self path = %v, %v", p, err)
	}
}

func TestOverrideWins(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "fast", "slow", "b")
	g.MustConnect("a", "fast", LinkSpec{CapacityBps: 1, DelaySec: 0.001})
	g.MustConnect("fast", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.001})
	g.MustConnect("a", "slow", LinkSpec{CapacityBps: 1, DelaySec: 0.050})
	g.MustConnect("slow", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.050})
	g.MustSetOverride("a", "slow", "b")
	p, err := g.Path("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(PathNames(p), ","); got != "a,slow,b" {
		t.Fatalf("override ignored: %s", got)
	}
	// Reverse direction unaffected.
	p, err = g.Path("b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(PathNames(p), ","); got != "b,fast,a" {
		t.Fatalf("reverse path = %s, want b,fast,a", got)
	}
}

func TestOverrideValidation(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "b", "c")
	g.MustConnect("a", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.001})
	if err := g.SetOverride("a"); err == nil {
		t.Fatal("single-hop override accepted")
	}
	if err := g.SetOverride("a", "c"); err == nil {
		t.Fatal("override over missing edge accepted")
	}
}

func TestLinkPathAndRTT(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "m", "b")
	g.MustConnect("a", "m", LinkSpec{CapacityBps: 100, DelaySec: 0.010})
	g.MustConnect("m", "b", LinkSpec{CapacityBps: 50, DelaySec: 0.020})
	links, err := g.RoutedLinks("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d, want 2", len(links))
	}
	if c := fluid.BottleneckCapacity(links); c != 50 {
		t.Fatalf("bottleneck = %v, want 50", c)
	}
	rtt, err := g.RTT("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 0.0599 || rtt > 0.0601 {
		t.Fatalf("RTT = %v, want 60ms", rtt)
	}
}

func TestLinkPathErrors(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "b")
	if _, err := g.LinkPath([]*Node{g.MustNode("a")}); err == nil {
		t.Fatal("1-node link path accepted")
	}
	if _, err := g.LinkPath([]*Node{g.MustNode("a"), g.MustNode("b")}); err == nil {
		t.Fatal("link path over missing edge accepted")
	}
}

func TestFlowOverRoutedPath(t *testing.T) {
	eng := simclock.NewEngine()
	g := New(fluid.New(eng))
	addN(t, g, "src", "r", "dst")
	g.MustConnect("src", "r", LinkSpec{CapacityBps: 1000, DelaySec: 0.001})
	g.MustConnect("r", "dst", LinkSpec{CapacityBps: 100, DelaySec: 0.001})
	links, err := g.RoutedLinks("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	f := g.Fluid().StartFlow(links, 1000, fluid.FlowOpts{})
	eng.Run()
	if got := float64(f.FinishedAt()); got < 9.99 || got > 10.01 {
		t.Fatalf("transfer over routed path took %v, want 10", got)
	}
}

func TestMinWeightRouter(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "m1", "m2", "b")
	// m1 has lower delay, m2 higher capacity.
	g.MustConnect("a", "m1", LinkSpec{CapacityBps: 10, DelaySec: 0.001})
	g.MustConnect("m1", "b", LinkSpec{CapacityBps: 10, DelaySec: 0.001})
	g.MustConnect("a", "m2", LinkSpec{CapacityBps: 1000, DelaySec: 0.050})
	g.MustConnect("m2", "b", LinkSpec{CapacityBps: 1000, DelaySec: 0.050})
	g.SetRouter(MinWeight{Weight: func(e *Edge) float64 { return 1 / e.Link.Capacity }})
	p, _ := g.Path("a", "b")
	if got := strings.Join(PathNames(p), ","); got != "a,m2,b" {
		t.Fatalf("capacity-weighted path = %s, want a,m2,b", got)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-delay routes: the one through the first-inserted node wins,
	// consistently.
	for trial := 0; trial < 5; trial++ {
		g := newGraph()
		addN(t, g, "a", "x", "y", "b")
		spec := LinkSpec{CapacityBps: 1, DelaySec: 0.005}
		g.MustConnect("a", "x", spec)
		g.MustConnect("x", "b", spec)
		g.MustConnect("a", "y", spec)
		g.MustConnect("y", "b", spec)
		p, _ := g.Path("a", "b")
		if got := strings.Join(PathNames(p), ","); got != "a,x,b" {
			t.Fatalf("tie-break not deterministic: %s", got)
		}
	}
}

// Property: on random connected graphs, Dijkstra paths are valid edge
// walks, start/end correctly, and delay is minimal versus brute-force DFS
// enumeration on small graphs.
func TestPropertyDijkstraOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := newGraph()
		n := 6
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			g.MustAddNode(&Node{Name: names[i]})
		}
		// Ring for connectivity plus random chords.
		for i := 0; i < n; i++ {
			spec := LinkSpec{CapacityBps: 1, DelaySec: 0.001 + rng.Float64()*0.05}
			g.MustConnect(names[i], names[(i+1)%n], spec)
		}
		for i := 0; i < 4; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			spec := LinkSpec{CapacityBps: 1, DelaySec: 0.001 + rng.Float64()*0.05}
			_ = g.Connect(names[a], names[b], spec) // duplicates rejected, fine
		}
		src, dst := names[0], names[n-1]
		p, err := g.Path(src, dst)
		if err != nil {
			return false
		}
		// Validate edge walk.
		for i := 0; i+1 < len(p); i++ {
			if _, ok := g.Edge(p[i].Name, p[i+1].Name); !ok {
				return false
			}
		}
		if p[0].Name != src || p[len(p)-1].Name != dst {
			return false
		}
		got := pathDelay(g, p)
		// Brute force all simple paths.
		best := bruteBest(g, src, dst)
		return got <= best+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func pathDelay(g *Graph, p []*Node) float64 {
	var d float64
	for i := 0; i+1 < len(p); i++ {
		e, _ := g.Edge(p[i].Name, p[i+1].Name)
		d += e.Link.PropDelay
	}
	return d
}

func bruteBest(g *Graph, src, dst string) float64 {
	best := 1e18
	seen := map[string]bool{src: true}
	var dfs func(at string, d float64)
	dfs = func(at string, d float64) {
		if d >= best {
			return
		}
		if at == dst {
			best = d
			return
		}
		for _, e := range g.Edges(at) {
			if !seen[e.To.Name] {
				seen[e.To.Name] = true
				dfs(e.To.Name, d+e.Link.PropDelay)
				seen[e.To.Name] = false
			}
		}
	}
	dfs(src, 0)
	return best
}

func TestSetLinkStateReroutes(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "m1", "m2", "b")
	g.MustConnect("a", "m1", LinkSpec{CapacityBps: 1, DelaySec: 0.001})
	g.MustConnect("m1", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.001})
	g.MustConnect("a", "m2", LinkSpec{CapacityBps: 1, DelaySec: 0.050})
	g.MustConnect("m2", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.050})
	p, _ := g.Path("a", "b")
	if strings.Join(PathNames(p), ",") != "a,m1,b" {
		t.Fatalf("initial path = %v", PathNames(p))
	}
	if !g.SetLinkState("a", "m1", false) {
		t.Fatal("SetLinkState reported missing edge")
	}
	p, err := g.Path("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(PathNames(p), ",") != "a,m2,b" {
		t.Fatalf("post-failure path = %v", PathNames(p))
	}
	e, _ := g.Edge("a", "m1")
	if !e.Down() || e.Link.Available() > e.Link.Capacity*0.05 {
		t.Fatalf("down edge state: down=%v avail=%v", e.Down(), e.Link.Available())
	}
	// Bring it back.
	g.SetLinkState("a", "m1", true)
	p, _ = g.Path("a", "b")
	if strings.Join(PathNames(p), ",") != "a,m1,b" {
		t.Fatalf("post-recovery path = %v", PathNames(p))
	}
	if e.Link.Available() != e.Link.Capacity {
		t.Fatalf("recovered link available = %v", e.Link.Available())
	}
}

func TestSetLinkStateDisconnects(t *testing.T) {
	g := newGraph()
	addN(t, g, "a", "b")
	g.MustConnect("a", "b", LinkSpec{CapacityBps: 1, DelaySec: 0.001})
	g.SetLinkState("a", "b", false)
	if _, err := g.Path("a", "b"); err == nil {
		t.Fatal("path found over the only (dead) link")
	}
	// Reverse direction stays up.
	if _, err := g.Path("b", "a"); err != nil {
		t.Fatalf("reverse path should survive: %v", err)
	}
	if g.SetLinkState("a", "ghost", false) {
		t.Fatal("missing edge reported as toggled")
	}
}
