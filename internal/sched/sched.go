// Package sched is the multi-tenant transfer-scheduler control plane:
// the long-lived layer the paper's one-shot detours lack. It accepts
// many concurrent upload jobs (tenant, provider, size, priority,
// deadline), admits them through per-tenant rate limits, queues them by
// priority, and drains them with a bounded worker pool that enforces
// per-provider and per-DTN concurrency caps so detour nodes don't
// self-congest.
//
// Route decisions come from a route cache keyed by (client, provider,
// size bucket) with TTL expiry and failure-driven invalidation,
// populated lazily from the probe selector and refreshed by the bandit
// on repeated traffic — the expensive probing the paper leaves as open
// work is paid once per key and amortized across the fleet. Failed hops
// retry with capped, jittered exponential backoff and fall back from
// detour to direct after repeated DTN failures.
//
// Unlike the simulation packages, the scheduler is really concurrent:
// workers are goroutines and all shared state is lock-guarded, so it
// runs (and is tested) under the race detector. The simulation plugs in
// behind the Executor/Planner seams (see SimExecutor).
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"detournet/internal/core"
)

// Job is one upload request submitted to the control plane.
type Job struct {
	// Tenant is the rate-limiting principal (a user, a site, an app).
	Tenant string
	// Client is the origin host the transfer leaves from.
	Client string
	// Provider is the destination cloud-storage service.
	Provider string
	// Name is the object name; it should be unique per provider.
	Name string
	// Size is the file size in bytes.
	Size float64
	// Priority orders the queue: higher drains sooner.
	Priority int
	// Deadline, when positive, is the scheduler-clock time after which
	// the job is dropped instead of run. Zero means no deadline.
	Deadline float64
}

// Result is the terminal outcome of one job.
type Result struct {
	Job   Job
	Route core.Route
	// Seconds is the successful transfer's duration (virtual seconds
	// under the simulation executor).
	Seconds float64
	// Attempts counts executions, including the successful one.
	Attempts int
	// CacheHit reports whether the job rode a cached route decision
	// (including decisions it coalesced onto) rather than paying a probe.
	CacheHit bool
	// Err is nil on success.
	Err error
}

// Executor runs one transfer over a chosen route. Implementations must
// be safe for concurrent use; Execute blocks until the transfer ends.
type Executor interface {
	Execute(job Job, route core.Route) (seconds float64, err error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(Job, core.Route) (float64, error)

// Execute implements Executor.
func (f ExecutorFunc) Execute(j Job, r core.Route) (float64, error) { return f(j, r) }

// Planner makes the expensive route decision for a cache miss —
// typically by probing every candidate path (detourselect.Selector).
// It returns the chosen route plus the full candidate set the cache's
// bandit keeps refining. Implementations must be concurrency-safe.
type Planner interface {
	Plan(client, provider string, size float64) (route core.Route, candidates []core.Route, err error)
}

// PlannerFunc adapts a function to the Planner interface.
type PlannerFunc func(string, string, float64) (core.Route, []core.Route, error)

// Plan implements Planner.
func (f PlannerFunc) Plan(c, p string, s float64) (core.Route, []core.Route, error) { return f(c, p, s) }

// Sentinel errors surfaced through Submit and Result.Err.
var (
	// ErrClosed reports a scheduler that has been shut down.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrRateLimited reports a Submit rejected by the tenant's bucket.
	ErrRateLimited = errors.New("sched: tenant rate limited")
	// ErrDeadline reports a job dropped because its deadline passed
	// before a worker reached it.
	ErrDeadline = errors.New("sched: deadline exceeded")
)

// Config tunes a Scheduler. Executor and Planner are required;
// everything else has serviceable defaults.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// Executor runs transfers; required.
	Executor Executor
	// Planner makes route decisions on cache misses; required.
	Planner Planner

	// ProviderCap bounds concurrent transfers per provider (default 4;
	// <= -1 means unlimited).
	ProviderCap int
	// DTNCap bounds concurrent detour transfers per DTN (default 2;
	// <= -1 means unlimited) — the knob that keeps detour nodes from
	// self-congesting under fleet load.
	DTNCap int

	// MaxAttempts bounds executions per job, first try included
	// (default 3).
	MaxAttempts int
	// DetourFailLimit is how many detour failures a job tolerates
	// before the cached detour is invalidated and the job falls back to
	// direct (default 2).
	DetourFailLimit int

	// TenantRate admits jobs per tenant at this sustained rate in
	// jobs/sec (0 = unlimited). TenantBurst is the bucket depth
	// (default max(1, TenantRate)).
	TenantRate  float64
	TenantBurst float64

	// CacheTTL is the route-cache entry lifetime in scheduler-clock
	// seconds (default 300). QuarantineTTL is how long a failed detour
	// stays benched (default CacheTTL).
	CacheTTL      float64
	QuarantineTTL float64

	// Backoff shapes the retry delays.
	Backoff Backoff
	// Rand seeds backoff jitter and the cache's bandit (default a
	// fixed-seed source, so runs are reproducible).
	Rand *rand.Rand
	// Now is the scheduler clock in seconds (default: monotonic wall
	// time since New). Tests inject fake clocks here.
	Now func() float64
	// Sleep pauses a worker for backoff (default time.Sleep). Tests
	// inject no-ops or recorders here.
	Sleep func(seconds float64)
	// OnResult, when set, receives every terminal Result. It is called
	// from worker goroutines, outside scheduler locks.
	OnResult func(Result)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Executor == nil || c.Planner == nil {
		panic("sched: Config needs an Executor and a Planner")
	}
	if c.ProviderCap == 0 {
		c.ProviderCap = 4
	}
	if c.DTNCap == 0 {
		c.DTNCap = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.DetourFailLimit <= 0 {
		c.DetourFailLimit = 2
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 300
	}
	if c.QuarantineTTL <= 0 {
		c.QuarantineTTL = c.CacheTTL
	}
	c.Backoff = c.Backoff.withDefaults()
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	if c.Now == nil {
		start := time.Now()
		c.Now = func() float64 { return time.Since(start).Seconds() }
	}
	if c.Sleep == nil {
		c.Sleep = func(sec float64) { time.Sleep(time.Duration(sec * float64(time.Second))) }
	}
	return c
}

// planCall coalesces concurrent cache misses on one key so a probe is
// paid once per key, not once per in-flight job.
type planCall struct {
	done  chan struct{}
	route core.Route
}

// Scheduler is the control plane. Create with New, arm with Start,
// feed with Submit, and wait with Drain; Close shuts the pool down.
type Scheduler struct {
	cfg     Config
	q       *jobQueue
	cache   *RouteCache
	caps    *capTable
	buckets *tenantBuckets
	wg      sync.WaitGroup

	planMu   sync.Mutex
	planning map[CacheKey]*planCall

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	// Counters (all guarded by mu).
	submitted, rateLimited int64
	pending, running       int64
	done, failed, expired  int64
	retries, fallbacks     int64
	cacheHits, cacheMiss   int64
	perRoute               map[string]*RouteStats
	jitterRng              *rand.Rand
}

// New builds a scheduler; call Start before submitting.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		q:        newJobQueue(),
		caps:     newCapTable(cfg.ProviderCap, cfg.DTNCap),
		buckets:  newTenantBuckets(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
		planning: make(map[CacheKey]*planCall),
		perRoute: make(map[string]*RouteStats),
		// The cache's bandit and the backoff jitter draw from separate
		// streams so their consumption patterns can't perturb each other.
		jitterRng: rand.New(rand.NewSource(cfg.Rand.Int63())),
	}
	s.cache = NewRouteCache(cfg.CacheTTL, cfg.QuarantineTTL, cfg.Now, rand.New(rand.NewSource(cfg.Rand.Int63())))
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Cache exposes the scheduler's route cache (read-mostly; for
// inspection and tests).
func (s *Scheduler) Cache() *RouteCache { return s.cache }

// Start launches the worker pool. It may be called once.
func (s *Scheduler) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Submit admits one job. It returns ErrRateLimited if the tenant's
// bucket is empty, ErrClosed after Close, and a validation error for
// malformed jobs; otherwise the job is queued and will produce exactly
// one Result.
func (s *Scheduler) Submit(j Job) error {
	if j.Tenant == "" || j.Client == "" || j.Provider == "" || j.Name == "" {
		return fmt.Errorf("sched: job needs tenant, client, provider, and name: %+v", j)
	}
	if j.Size <= 0 {
		return fmt.Errorf("sched: job %q has non-positive size", j.Name)
	}
	allowed := s.buckets.allow(j.Tenant)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !allowed {
		s.rateLimited++
		s.mu.Unlock()
		return ErrRateLimited
	}
	s.submitted++
	s.pending++
	s.mu.Unlock()
	s.q.push(j)
	return nil
}

// Drain blocks until every admitted job has reached a terminal state.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for s.pending > 0 && !s.closed {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close stops the pool: workers finish their current job and exit, and
// jobs still queued fail with ErrClosed. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.q.close()
	s.caps.close()
	s.wg.Wait()
	// Fail whatever never reached a worker.
	for {
		j, ok := s.q.tryPop()
		if !ok {
			break
		}
		s.finish(Result{Job: j, Err: ErrClosed})
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.finish(s.runJob(j))
	}
}

// finish records a terminal result and notifies Drain and OnResult.
func (s *Scheduler) finish(res Result) {
	s.mu.Lock()
	s.pending--
	if s.running > 0 {
		s.running--
	}
	switch {
	case res.Err == nil:
		s.done++
		rs := s.perRoute[res.Route.String()]
		if rs == nil {
			rs = &RouteStats{}
			s.perRoute[res.Route.String()] = rs
		}
		rs.Jobs++
		rs.Bytes += res.Job.Size
		rs.Seconds += res.Seconds
	case errors.Is(res.Err, ErrDeadline):
		s.expired++
	default:
		s.failed++
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(res)
	}
}

// runJob is a worker's whole handling of one job: route decision,
// capped execution, retry with backoff, detour→direct fallback.
func (s *Scheduler) runJob(j Job) Result {
	if j.Deadline > 0 && s.cfg.Now() > j.Deadline {
		return Result{Job: j, Err: ErrDeadline}
	}
	key := KeyFor(j.Client, j.Provider, j.Size)
	route, hit := s.routeFor(key, j)

	var lastErr error
	attempts, detourFails := 0, 0
	for {
		attempts++
		if err := s.caps.acquire(j.Provider, route.Via); err != nil {
			return Result{Job: j, Route: route, Attempts: attempts - 1, CacheHit: hit, Err: err}
		}
		sec, err := s.cfg.Executor.Execute(j, route)
		s.caps.release(j.Provider, route.Via)
		if err == nil {
			s.cache.Observe(key, route, j.Size, sec)
			return Result{Job: j, Route: route, Seconds: sec, Attempts: attempts, CacheHit: hit}
		}
		lastErr = err
		if route.Kind == core.Detour {
			detourFails++
			if detourFails >= s.cfg.DetourFailLimit {
				// Repeated DTN failures: bench the detour for every
				// follower of this key and fall back to direct ourselves.
				s.cache.Invalidate(key, route)
				route = core.DirectRoute
				s.mu.Lock()
				s.fallbacks++
				s.mu.Unlock()
			}
		}
		if attempts >= s.cfg.MaxAttempts {
			return Result{Job: j, Route: route, Attempts: attempts, CacheHit: hit, Err: lastErr}
		}
		s.mu.Lock()
		s.retries++
		u := s.jitterRng.Float64()
		s.mu.Unlock()
		s.cfg.Sleep(s.cfg.Backoff.Delay(attempts, u))
	}
}

// routeFor resolves the job's route: cached decision, coalesced onto an
// in-flight probe, or a fresh plan. The bool reports whether the job
// avoided paying a probe.
func (s *Scheduler) routeFor(key CacheKey, j Job) (core.Route, bool) {
	if r, ok := s.cache.Lookup(key); ok {
		s.noteCache(true)
		return r, true
	}
	s.planMu.Lock()
	if call, ok := s.planning[key]; ok {
		s.planMu.Unlock()
		<-call.done
		s.noteCache(true)
		return call.route, true
	}
	// Re-check under planMu: the planner that just finished may have
	// inserted between our Lookup and the lock.
	if r, ok := s.cache.Lookup(key); ok {
		s.planMu.Unlock()
		s.noteCache(true)
		return r, true
	}
	call := &planCall{done: make(chan struct{})}
	s.planning[key] = call
	s.planMu.Unlock()

	route, cands, err := s.cfg.Planner.Plan(j.Client, j.Provider, j.Size)
	if err != nil {
		// A failed probe is not fatal: direct always exists. The entry
		// still caches so the fleet doesn't hammer a broken prober.
		route, cands = core.DirectRoute, nil
	}
	s.cache.Insert(key, route, cands)
	call.route = route
	close(call.done)

	s.planMu.Lock()
	delete(s.planning, key)
	s.planMu.Unlock()
	s.noteCache(false)
	return route, false
}

func (s *Scheduler) noteCache(hit bool) {
	s.mu.Lock()
	if hit {
		s.cacheHits++
	} else {
		s.cacheMiss++
	}
	s.mu.Unlock()
}

// RouteStats aggregates completed transfers over one route.
type RouteStats struct {
	Jobs    int64
	Bytes   float64
	Seconds float64
}

// Throughput is the route's aggregate bytes/sec (0 before any job).
func (r RouteStats) Throughput() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.Bytes / r.Seconds
}

// Stats is a consistent snapshot of the control plane.
type Stats struct {
	Submitted, RateLimited        int64
	Queued, Running               int64
	Done, Failed, Expired         int64
	Retries, Fallbacks            int64
	CacheHits, CacheMisses        int64
	CacheInvalidations            int64
	PerRoute                      map[string]RouteStats
	ProviderPeak, DTNPeak         map[string]int
	ProviderInUse, DTNInUse       map[string]int
}

// CacheHitRate is hits/(hits+misses), 0 before any lookup.
func (st Stats) CacheHitRate() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// String renders the one-line form the detourd daemon logs.
func (st Stats) String() string {
	return fmt.Sprintf("queued=%d running=%d done=%d failed=%d expired=%d retries=%d fallbacks=%d rate-limited=%d cache=%.0f%%",
		st.Queued, st.Running, st.Done, st.Failed, st.Expired, st.Retries, st.Fallbacks, st.RateLimited, st.CacheHitRate()*100)
}

// Stats returns a snapshot of counters, per-route aggregates, and the
// concurrency high-water marks the caps enforce.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Submitted: s.submitted, RateLimited: s.rateLimited,
		Running: s.running,
		Done:    s.done, Failed: s.failed, Expired: s.expired,
		Retries: s.retries, Fallbacks: s.fallbacks,
		CacheHits: s.cacheHits, CacheMisses: s.cacheMiss,
		PerRoute: make(map[string]RouteStats, len(s.perRoute)),
	}
	st.Queued = s.pending - s.running
	for k, v := range s.perRoute {
		st.PerRoute[k] = *v
	}
	s.mu.Unlock()
	_, _, st.CacheInvalidations = s.cache.Counters()
	st.ProviderInUse, st.ProviderPeak, st.DTNInUse, st.DTNPeak = s.caps.snapshot()
	return st
}
