// Quickstart: build the case-study world, upload one file from the UBC
// PlanetLab node to Google Drive directly and via the UAlberta detour,
// and print both timings — the paper's headline example (Sec I: 87 s
// direct vs 36 s detoured for 100 MB).
package main

import (
	"fmt"

	"detournet/internal/core"
	"detournet/internal/fileutil"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
)

func main() {
	// A World is the full simulated substrate: topology, TCP transport,
	// the three provider services, rsync daemons and relay agents on the
	// two DTNs, and seeded cross-traffic.
	w := scenario.Build(2015)

	// The workload runs as a simulation process on virtual time.
	w.RunWorkload("quickstart", func(p *simproc.Proc) {
		file := fileutil.New("quickstart-100MB.bin", 100*fileutil.MB, 1)

		// Direct upload with the Google Drive SDK from the UBC node.
		drive := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
		defer drive.Close()
		direct, err := core.DirectUpload(p, drive, file.Name, file.Size, file.MD5)
		if err != nil {
			panic(err)
		}

		// Detoured upload: rsync to the UAlberta DTN, then the relay
		// agent uploads from there.
		detour := w.NewDetourClient(scenario.UBC, scenario.UAlberta)
		viaUAlberta, err := detour.Upload(p, scenario.GoogleDrive, file.Name, file.Size, file.MD5)
		if err != nil {
			panic(err)
		}

		fmt.Printf("Uploading %s from %s to %s:\n\n", file.Name, scenario.UBC, scenario.GoogleDrive)
		fmt.Printf("  %-14s %8.1f s\n", direct.Route, direct.Total)
		fmt.Printf("  %-14s %8.1f s  (rsync %.1f s + upload %.1f s)\n",
			viaUAlberta.Route, viaUAlberta.Total, viaUAlberta.Hop1, viaUAlberta.Hop2)
		fmt.Printf("\nThe geographic detour through Edmonton is %.1fx faster.\n",
			direct.Total/viaUAlberta.Total)
	})
}
