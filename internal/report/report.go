// Package report renders a complete reproduction report — every table,
// figure series, traceroute, and extension study — as a single markdown
// document. `detourbench -experiment report` writes it to stdout; the
// committed EXPERIMENTS.md is the hand-annotated version of this
// output.
package report

import (
	"fmt"
	"io"
	"strings"

	"detournet/internal/core"
	"detournet/internal/experiments"
	"detournet/internal/scenario"
)

// Config selects what the report includes.
type Config struct {
	// Options is the measurement protocol.
	Options experiments.Options
	// Extensions adds the sensitivity/contention/workload studies.
	Extensions bool
}

// Write renders the report to w.
func Write(w io.Writer, cfg Config) error {
	r := &renderer{w: w, suite: &experiments.Suite{Options: cfg.Options}}
	r.header(cfg)
	r.headline()
	r.figures()
	r.tables()
	r.traceroutes()
	r.geography()
	if cfg.Extensions {
		r.extensions(cfg)
	}
	return r.err
}

type renderer struct {
	w     io.Writer
	suite *experiments.Suite
	err   error
}

func (r *renderer) printf(format string, args ...any) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format, args...)
}

func (r *renderer) section(title string) {
	r.printf("\n## %s\n\n", title)
}

func (r *renderer) code(body string) {
	r.printf("```\n%s```\n", ensureNL(body))
}

func ensureNL(s string) string {
	if !strings.HasSuffix(s, "\n") {
		return s + "\n"
	}
	return s
}

func (r *renderer) header(cfg Config) {
	r.printf("# detournet reproduction report\n\n")
	r.printf("Seed %d, %d runs per cell (mean of last %d), sizes %v MB.\n",
		cfg.Options.Seed, cfg.Options.Runs, cfg.Options.Keep, cfg.Options.SizesMB)
	r.printf("All values are virtual-time seconds in the simulated WAN; see DESIGN.md.\n")
}

func (r *renderer) headline() {
	r.section("Headline (paper Sec I)")
	g := r.suite.Pair(scenario.UBC, scenario.GoogleDrive).Grid
	direct := g.Cell(100, core.DirectRoute)
	det := g.Cell(100, core.ViaRoute(scenario.UAlberta))
	if direct == nil || det == nil {
		r.printf("(100 MB cell not measured at these options)\n")
		return
	}
	r.printf("UBC -> Google Drive, 100 MB: direct %.1f s, via UAlberta %.1f s "+
		"(rsync %.1f s + upload %.1f s) — %.1fx faster despite the geographic detour.\n",
		direct.Summary.Mean, det.Summary.Mean, det.Hop1, det.Hop2,
		direct.Summary.Mean/det.Summary.Mean)
}

func (r *renderer) figures() {
	r.section("Figures 2, 4, 7-11 (upload grids)")
	for _, fig := range []struct {
		render func() string
	}{
		{r.suite.Fig2}, {r.suite.Fig4}, {r.suite.Fig7},
		{r.suite.Fig8}, {r.suite.Fig9}, {r.suite.Fig10}, {r.suite.Fig11},
	} {
		r.code(fig.render())
		r.printf("\n")
	}
}

func (r *renderer) tables() {
	r.section("Tables I-IV")
	for _, t := range []func() string{
		r.suite.TableI, r.suite.TableII, r.suite.TableIII, r.suite.TableIV,
	} {
		r.code(t())
		r.printf("\n")
	}
}

func (r *renderer) traceroutes() {
	r.section("Figures 5-6 (traceroutes)")
	r.code(r.suite.Fig5())
	r.printf("\n")
	r.code(r.suite.Fig6())
}

func (r *renderer) geography() {
	r.section("Figure 3 / Table V (geography)")
	r.code(r.suite.Fig3())
	r.printf("\n")
	r.code(r.suite.TableV())
}

func (r *renderer) extensions(cfg Config) {
	r.section("Extension studies")
	points := experiments.SensitivityPacificWave(cfg.Options, []float64{0.6, 1.25, 2.5, 4, 8})
	r.code(experiments.FormatSensitivity(points))
	r.printf("\n")
	cont, err := experiments.ContentionStudy(cfg.Options, [][]string{
		{scenario.UBC},
		{scenario.UBC, scenario.Purdue},
		{scenario.UBC, scenario.Purdue, scenario.UCLA},
	})
	if err != nil {
		r.err = err
		return
	}
	r.code(experiments.FormatContention(cont))
	r.printf("\n")
	wl, err := experiments.WorkloadStudy(cfg.Options, scenario.Purdue, scenario.GoogleDrive, 12)
	if err != nil {
		r.err = err
		return
	}
	r.code(experiments.FormatWorkloadStudy(scenario.Purdue, scenario.GoogleDrive, wl))
}
