// Package fluid is a flow-level ("fluid") wide-area network simulator.
//
// Instead of simulating individual packets, each active transfer is a
// fluid flow over a path of links; every time the set of flows (or the
// capacity available to them) changes, the simulator recomputes a global
// max-min fair allocation — the classic progressive-filling model of TCP
// bandwidth sharing — and reschedules each flow's completion event.
//
// Per-flow rate caps model everything that keeps a real TCP connection
// below its fair share: receive windows, slow-start ramping (driven by
// package tcpmodel), and application pacing. Cross-traffic (package
// xtraffic) modulates the capacity a link has left for foreground flows.
package fluid

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"detournet/internal/simclock"
)

// Inf is the rate-cap value meaning "uncapped".
var Inf = math.Inf(1)

// Link is a unidirectional network link.
type Link struct {
	id       int
	Name     string
	Capacity float64 // bytes/second at zero cross-traffic
	load     float64 // fraction of Capacity consumed by cross-traffic, [0, maxLoad]

	// FlowCap, when positive, caps every individual flow crossing this
	// link at that rate — the behaviour of a stateful campus firewall
	// doing per-connection inspection, the bottleneck Science DMZ data
	// transfer nodes exist to bypass.
	FlowCap float64

	// PropDelay is the one-way propagation delay contributed by this
	// link in seconds. The fluid allocator ignores it; path RTTs are
	// computed from it by higher layers.
	PropDelay float64

	flows []*Flow // active flows crossing this link, ordered by flow id
}

// maxLoad bounds cross-traffic so foreground flows always make progress;
// a fully starved link would make completion times infinite.
const maxLoad = 0.98

// Available returns the capacity currently left for foreground flows.
func (l *Link) Available() float64 {
	return l.Capacity * (1 - l.load)
}

// Load returns the current cross-traffic fraction.
func (l *Link) Load() float64 { return l.load }

// Utilization returns the fraction of capacity in use right now:
// cross-traffic load plus the allocated rates of every foreground flow
// crossing the link. 0 on a zero-capacity link.
func (l *Link) Utilization() float64 {
	if l.Capacity <= 0 {
		return 0
	}
	used := l.load * l.Capacity
	for _, f := range l.flows {
		used += f.rate
	}
	return used / l.Capacity
}

// NumFlows returns the number of foreground flows on the link.
func (l *Link) NumFlows() int { return len(l.flows) }

// Flows returns the active foreground flows on the link, in flow-id
// order. The slice is a copy; mutating it does not affect the link.
func (l *Link) Flows() []*Flow {
	out := make([]*Flow, len(l.flows))
	copy(out, l.flows)
	return out
}

// FlowState describes where a flow is in its lifecycle.
type FlowState int

const (
	// FlowActive means the flow is transferring.
	FlowActive FlowState = iota
	// FlowDone means the flow delivered all its bytes.
	FlowDone
	// FlowCancelled means the flow was aborted before completion.
	FlowCancelled
)

// Flow is an in-progress bulk transfer over a fixed path.
type Flow struct {
	id    int
	Label string
	path  []*Link

	remaining  float64 // bytes still to deliver, as of lastTouch
	rate       float64 // current allocated rate, bytes/sec
	cap        float64 // external rate cap (TCP window, pacing)
	lastTouch  simclock.Time
	state      FlowState
	startedAt  simclock.Time
	finishedAt simclock.Time

	onComplete func(*Flow)
	onAbort    func(*Flow)
	completion *simclock.Event

	// progressive-filling scratch state
	frozen bool
}

// Rate returns the flow's current allocated rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Cap returns the flow's current external rate cap.
func (f *Flow) Cap() float64 { return f.cap }

// State returns the flow's lifecycle state.
func (f *Flow) State() FlowState { return f.state }

// StartedAt returns the virtual time the flow was started.
func (f *Flow) StartedAt() simclock.Time { return f.startedAt }

// FinishedAt returns the virtual completion time; it is meaningful only
// once State is FlowDone or FlowCancelled.
func (f *Flow) FinishedAt() simclock.Time { return f.finishedAt }

// Path returns the flow's links in order.
func (f *Flow) Path() []*Link { return f.path }

// Network owns links and flows and keeps the allocation consistent.
type Network struct {
	eng      *simclock.Engine
	links    []*Link
	flows    []*Flow // active flows, ordered by id
	nextFlow int
	nextLink int

	// Reallocations counts global rate recomputations, exposed for
	// performance tests and benchmarks.
	Reallocations uint64
}

// New returns an empty network bound to the engine.
func New(eng *simclock.Engine) *Network {
	if eng == nil {
		panic("fluid: nil engine")
	}
	return &Network{eng: eng}
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *simclock.Engine { return n.eng }

// AddLink creates a link. Capacity is in bytes/second and must be
// positive; propDelay is the one-way propagation delay in seconds.
func (n *Network) AddLink(name string, capacity, propDelay float64) *Link {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("fluid: link %q capacity %v", name, capacity))
	}
	if propDelay < 0 {
		panic(fmt.Sprintf("fluid: link %q negative delay", name))
	}
	l := &Link{id: n.nextLink, Name: name, Capacity: capacity, PropDelay: propDelay}
	n.nextLink++
	n.links = append(n.links, l)
	return l
}

// SetLinkLoad sets the fraction of a link's capacity consumed by
// cross-traffic and reallocates. The fraction is clamped to [0, 0.98].
func (n *Network) SetLinkLoad(l *Link, fraction float64) {
	if math.IsNaN(fraction) {
		panic("fluid: NaN link load")
	}
	fraction = math.Max(0, math.Min(maxLoad, fraction))
	if fraction == l.load {
		return
	}
	l.load = fraction
	if len(l.flows) > 0 {
		n.reallocate()
	}
}

// FlowOpts configures StartFlow.
type FlowOpts struct {
	// Label names the flow in diagnostics.
	Label string
	// RateCap is the initial external cap in bytes/sec; zero means
	// uncapped.
	RateCap float64
	// OnComplete runs (inside the simulation) when the last byte is
	// delivered. It is not called for cancelled flows.
	OnComplete func(*Flow)
	// OnAbort runs (inside the simulation) when the flow is killed by
	// KillFlow — a link failure tearing down the transfer underneath
	// the endpoints. It is not called for CancelFlow (a deliberate
	// local abort) or for completed flows.
	OnAbort func(*Flow)
}

// StartFlow begins transferring bytes over path and returns the flow.
// The path must be non-empty and bytes positive.
func (n *Network) StartFlow(path []*Link, bytes float64, opts FlowOpts) *Flow {
	if len(path) == 0 {
		panic("fluid: empty path")
	}
	if bytes <= 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		panic(fmt.Sprintf("fluid: flow of %v bytes", bytes))
	}
	cap := opts.RateCap
	if cap <= 0 {
		cap = Inf
	}
	f := &Flow{
		id:         n.nextFlow,
		Label:      opts.Label,
		path:       path,
		remaining:  bytes,
		cap:        cap,
		lastTouch:  n.eng.Now(),
		startedAt:  n.eng.Now(),
		onComplete: opts.OnComplete,
		onAbort:    opts.OnAbort,
	}
	n.nextFlow++
	n.flows = append(n.flows, f)
	for _, l := range path {
		l.flows = append(l.flows, f)
	}
	n.reallocate()
	return f
}

// SetFlowCap changes a flow's external rate cap (bytes/sec; <=0 means
// uncapped) and reallocates. Calling it on a finished flow is a no-op.
func (n *Network) SetFlowCap(f *Flow, cap float64) {
	if f.state != FlowActive {
		return
	}
	if cap <= 0 {
		cap = Inf
	}
	if cap == f.cap {
		return
	}
	f.cap = cap
	n.reallocate()
}

// CancelFlow aborts an active flow without running its completion
// callback. It reports whether the flow was still active.
func (n *Network) CancelFlow(f *Flow) bool {
	if f.state != FlowActive {
		return false
	}
	f.settleProgress(n.eng.Now())
	f.state = FlowCancelled
	f.finishedAt = n.eng.Now()
	if f.completion != nil {
		n.eng.Cancel(f.completion)
		f.completion = nil
	}
	n.detach(f)
	n.reallocate()
	return true
}

// KillFlow forcibly aborts an active flow — the path failed underneath
// it — and runs its OnAbort callback so the endpoints learn the
// transfer died. It reports whether the flow was still active. Unlike
// CancelFlow (a deliberate local abort that notifies nobody), KillFlow
// models an external failure the sender did not ask for.
func (n *Network) KillFlow(f *Flow) bool {
	if f.state != FlowActive {
		return false
	}
	f.settleProgress(n.eng.Now())
	f.state = FlowCancelled
	f.finishedAt = n.eng.Now()
	if f.completion != nil {
		n.eng.Cancel(f.completion)
		f.completion = nil
	}
	n.detach(f)
	n.reallocate()
	if f.onAbort != nil {
		f.onAbort(f)
	}
	return true
}

// KillFlowsWhere kills every active flow the predicate accepts (nil
// accepts all), running each victim's OnAbort, and reports how many
// died. The victim set is snapshotted first, so aborts that start new
// flows are not swept up. Hedged transfers use this to cancel the
// losing side of a race by label.
func (n *Network) KillFlowsWhere(pred func(*Flow) bool) int {
	victims := make([]*Flow, 0, len(n.flows))
	for _, f := range n.flows {
		if pred == nil || pred(f) {
			victims = append(victims, f)
		}
	}
	killed := 0
	for _, f := range victims {
		if n.KillFlow(f) {
			killed++
		}
	}
	return killed
}

// KillFlowsLabeled kills every active flow whose Label starts with
// prefix and reports how many died. Transport labels its flows
// "src->dst:port", prefixed "scope|" when the sending process carries a
// flow scope, so "scope|src->dst:" pins one transfer's traffic between
// one endpoint pair — how a multipath driver aborts the losing
// duplicate of a hedged chunk without touching the other paths' flows
// or any other transfer's.
func (n *Network) KillFlowsLabeled(prefix string) int {
	return n.KillFlowsWhere(func(f *Flow) bool {
		return strings.HasPrefix(f.Label, prefix)
	})
}

// SetLinkCapacity changes a link's capacity (bytes/second, must stay
// positive) and reallocates — the degradation hook for fault injection:
// a brownout halves capacity, recovery restores it.
func (n *Network) SetLinkCapacity(l *Link, capacity float64) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("fluid: link %q capacity %v", l.Name, capacity))
	}
	if capacity == l.Capacity {
		return
	}
	l.Capacity = capacity
	if len(l.flows) > 0 {
		n.reallocate()
	}
}

// Remaining returns the bytes a flow still has to deliver as of now.
func (n *Network) Remaining(f *Flow) float64 {
	if f.state != FlowActive {
		return 0
	}
	elapsed := float64(n.eng.Now() - f.lastTouch)
	rem := f.remaining - f.rate*elapsed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ActiveFlows returns the number of active flows in the network.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// settleProgress charges the bytes transferred since lastTouch against
// remaining, as of time now.
func (f *Flow) settleProgress(now simclock.Time) {
	elapsed := float64(now - f.lastTouch)
	if elapsed > 0 && f.rate > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < 1e-9 {
			f.remaining = 0
		}
	}
	f.lastTouch = now
}

func (n *Network) detach(f *Flow) {
	for _, l := range f.path {
		for i, g := range l.flows {
			if g == f {
				l.flows = append(l.flows[:i], l.flows[i+1:]...)
				break
			}
		}
	}
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			break
		}
	}
}

// reallocate recomputes the global max-min fair allocation and
// reschedules completion events. It must be called whenever the flow
// set, a link's available capacity, or a flow cap changes.
func (n *Network) reallocate() {
	n.Reallocations++
	now := n.eng.Now()

	// Charge progress under the old rates before changing anything.
	for _, f := range n.flows {
		f.settleProgress(now)
	}

	n.computeMaxMin()

	// Reschedule completions under the new rates.
	for _, f := range n.flows {
		var at simclock.Time
		if f.rate <= 0 {
			at = simclock.Infinity
		} else {
			at = now + simclock.Time(f.remaining/f.rate)
		}
		if f.completion != nil {
			n.eng.Cancel(f.completion)
			f.completion = nil
		}
		if at != simclock.Infinity {
			f := f
			f.completion = n.eng.Schedule(at, func() { n.complete(f) })
		}
	}
}

func (n *Network) complete(f *Flow) {
	if f.state != FlowActive {
		return
	}
	f.settleProgress(n.eng.Now())
	f.remaining = 0
	f.state = FlowDone
	f.finishedAt = n.eng.Now()
	f.completion = nil
	n.detach(f)
	n.reallocate()
	if f.onComplete != nil {
		f.onComplete(f)
	}
}

// computeMaxMin runs progressive filling with per-flow caps: all unfrozen
// flows' rates rise together; a flow freezes when a link on its path
// saturates or when it reaches its own cap. The result is the unique
// max-min fair allocation.
func (n *Network) computeMaxMin() {
	if len(n.flows) == 0 {
		return
	}
	for _, f := range n.flows {
		f.rate = 0
		f.frozen = false
	}
	// Effective per-flow ceiling: the external cap combined with any
	// per-flow caps (firewalls) on the path.
	effCap := func(f *Flow) float64 {
		c := f.cap
		for _, l := range f.path {
			if l.FlowCap > 0 && l.FlowCap < c {
				c = l.FlowCap
			}
		}
		return c
	}
	caps := make(map[*Flow]float64, len(n.flows))
	for _, f := range n.flows {
		caps[f] = effCap(f)
	}
	unfrozen := len(n.flows)
	for unfrozen > 0 {
		// Smallest headroom-per-flow across links with unfrozen flows,
		// and smallest cap slack across unfrozen flows.
		delta := math.Inf(1)
		for _, l := range n.links {
			cnt := 0
			used := 0.0
			for _, f := range l.flows {
				used += f.rate
				if !f.frozen {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			d := (l.Available() - used) / float64(cnt)
			if d < delta {
				delta = d
			}
		}
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			if slack := caps[f] - f.rate; slack < delta {
				delta = slack
			}
		}
		if delta < 0 {
			delta = 0
		}
		if math.IsInf(delta, 1) {
			// Only possible if every unfrozen flow is uncapped and all
			// its links have infinite headroom — links have finite
			// capacity, so this is unreachable.
			panic("fluid: unbounded allocation")
		}
		for _, f := range n.flows {
			if !f.frozen {
				f.rate += delta
			}
		}
		// Freeze flows at saturated links or at their caps.
		for _, l := range n.links {
			used := 0.0
			hasUnfrozen := false
			for _, f := range l.flows {
				used += f.rate
				if !f.frozen {
					hasUnfrozen = true
				}
			}
			if !hasUnfrozen {
				continue
			}
			if l.Available()-used <= 1e-9*math.Max(1, l.Available()) {
				for _, f := range l.flows {
					if !f.frozen {
						f.frozen = true
						unfrozen--
					}
				}
			}
		}
		for _, f := range n.flows {
			c := caps[f]
			if !f.frozen && !math.IsInf(c, 1) && c-f.rate <= 1e-12*math.Max(1, c) {
				f.frozen = true
				unfrozen--
			}
		}
		if delta == 0 {
			// No headroom anywhere: freeze everything still live to
			// guarantee termination (their rates stay as allocated).
			for _, f := range n.flows {
				if !f.frozen {
					f.frozen = true
					unfrozen--
				}
			}
		}
	}
}

// PathDelay sums the propagation delay of a path, in seconds.
func PathDelay(path []*Link) float64 {
	var d float64
	for _, l := range path {
		d += l.PropDelay
	}
	return d
}

// BottleneckCapacity returns the smallest available capacity on a path.
func BottleneckCapacity(path []*Link) float64 {
	if len(path) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, l := range path {
		if a := l.Available(); a < m {
			m = a
		}
	}
	return m
}

// SortedFlowLabels returns the labels of active flows in id order; it
// exists for deterministic test assertions and diagnostics.
func (n *Network) SortedFlowLabels() []string {
	out := make([]string, len(n.flows))
	for i, f := range n.flows {
		out[i] = f.Label
	}
	sort.Strings(out)
	return out
}
