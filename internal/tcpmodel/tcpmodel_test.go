package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
)

func TestDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.MSS != 1460 || p.InitCwndSegments != 10 || p.RwndBytes != 1<<20 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestConnectDelay(t *testing.T) {
	p := Params{}
	if d := p.ConnectDelay(0.040, false); math.Abs(d-0.040) > 1e-12 {
		t.Fatalf("TCP connect = %v, want 1 RTT", d)
	}
	if d := p.ConnectDelay(0.040, true); math.Abs(d-0.120) > 1e-12 {
		t.Fatalf("TLS connect = %v, want 3 RTT", d)
	}
}

func TestMaxRate(t *testing.T) {
	p := Params{RwndBytes: 1e6}
	if r := p.MaxRate(0.1); math.Abs(r-1e7) > 1 {
		t.Fatalf("MaxRate = %v, want 1e7", r)
	}
	if !math.IsInf(p.MaxRate(0), 1) {
		t.Fatal("zero RTT should be uncapped")
	}
}

func TestCwndStartsAtIW(t *testing.T) {
	c := NewCwnd(Params{})
	if c.Bytes() != 14600 {
		t.Fatalf("initial cwnd = %v, want 14600", c.Bytes())
	}
	if r := c.RateCap(0.1); math.Abs(r-146000) > 1e-9 {
		t.Fatalf("RateCap = %v", r)
	}
}

func TestRampDoublesToRwnd(t *testing.T) {
	eng := simclock.NewEngine()
	fl := fluid.New(eng)
	l := fl.AddLink("l", 1e12, 0.05) // effectively unconstrained link
	params := Params{RwndBytes: 1 << 20}
	cwnd := NewCwnd(params)
	f := fl.StartFlow([]*fluid.Link{l}, 1e15, fluid.FlowOpts{})
	StartRamp(fl, f, cwnd, params, 0.1)
	if got := f.Cap(); math.Abs(got-146000) > 1 {
		t.Fatalf("initial cap = %v", got)
	}
	eng.Advance(0.1)
	if got := f.Cap(); math.Abs(got-292000) > 1 {
		t.Fatalf("cap after 1 RTT = %v, want doubled", got)
	}
	// After enough RTTs the window saturates at rwnd.
	eng.Advance(2)
	want := float64(1<<20) / 0.1
	if got := f.Cap(); math.Abs(got-want) > 1 {
		t.Fatalf("saturated cap = %v, want %v", got, want)
	}
	if cwnd.Bytes() != 1<<20 {
		t.Fatalf("cwnd = %v, want rwnd", cwnd.Bytes())
	}
	fl.CancelFlow(f)
	eng.Run()
}

func TestRampStopsWhenFlowDone(t *testing.T) {
	eng := simclock.NewEngine()
	fl := fluid.New(eng)
	l := fl.AddLink("l", 1e6, 0.01)
	params := Params{}
	cwnd := NewCwnd(params)
	f := fl.StartFlow([]*fluid.Link{l}, 20000, fluid.FlowOpts{})
	StartRamp(fl, f, cwnd, params, 0.1)
	eng.Run() // must terminate: ramp must not keep scheduling forever
	if f.State() != fluid.FlowDone {
		t.Fatal("flow did not finish")
	}
}

func TestRampStopCancels(t *testing.T) {
	eng := simclock.NewEngine()
	fl := fluid.New(eng)
	l := fl.AddLink("l", 1e9, 0.01)
	params := Params{}
	cwnd := NewCwnd(params)
	f := fl.StartFlow([]*fluid.Link{l}, 1e12, fluid.FlowOpts{})
	r := StartRamp(fl, f, cwnd, params, 0.1)
	before := cwnd.Bytes()
	r.Stop()
	r.Stop() // idempotent
	eng.Advance(1)
	if cwnd.Bytes() != before {
		t.Fatal("cwnd grew after Stop")
	}
	fl.CancelFlow(f)
}

func TestCwndSharedAcrossTransfers(t *testing.T) {
	// Second transfer on the same connection starts from the ramped
	// window, not from IW.
	eng := simclock.NewEngine()
	fl := fluid.New(eng)
	l := fl.AddLink("l", 1e9, 0.01)
	params := Params{RwndBytes: 1 << 20}
	cwnd := NewCwnd(params)
	f1 := fl.StartFlow([]*fluid.Link{l}, 5e6, fluid.FlowOpts{})
	StartRamp(fl, f1, cwnd, params, 0.05)
	eng.Run()
	rampedTo := cwnd.Bytes()
	if rampedTo <= 14600 {
		t.Fatalf("cwnd never grew: %v", rampedTo)
	}
	f2 := fl.StartFlow([]*fluid.Link{l}, 5e6, fluid.FlowOpts{})
	StartRamp(fl, f2, cwnd, params, 0.05)
	if f2.Cap() != cwnd.RateCap(0.05) || cwnd.Bytes() != rampedTo {
		t.Fatal("second transfer did not inherit ramped window")
	}
	eng.Run()
}

func TestSlowStartMakesSmallTransfersSublinear(t *testing.T) {
	// Time for 2x bytes should be < 2x time for small transfers (the ramp
	// dominates), approaching 2x for large ones.
	dur := func(bytes float64) float64 {
		eng := simclock.NewEngine()
		fl := fluid.New(eng)
		l := fl.AddLink("l", 1e7, 0.025)
		params := Params{RwndBytes: 4 << 20}
		cwnd := NewCwnd(params)
		f := fl.StartFlow([]*fluid.Link{l}, bytes, fluid.FlowOpts{})
		StartRamp(fl, f, cwnd, params, 0.05)
		eng.Run()
		return float64(f.FinishedAt() - f.StartedAt())
	}
	small1, small2 := dur(50e3), dur(100e3)
	if small2 >= 2*small1 {
		t.Fatalf("small transfers linear: %v vs %v", small1, small2)
	}
	big1, big2 := dur(50e6), dur(100e6)
	ratio := big2 / big1
	if ratio < 1.8 || ratio > 2.1 {
		t.Fatalf("large transfers should be ~linear: ratio %v", ratio)
	}
}

func TestEstimateTransferTimeMatchesSimulation(t *testing.T) {
	// The closed-form estimator should track the simulated time within a
	// few percent when the bottleneck is stable.
	params := Params{RwndBytes: 4 << 20}
	rtt := 0.04
	rate := 5e6
	for _, size := range []float64{1e5, 1e6, 1e7, 1e8} {
		eng := simclock.NewEngine()
		fl := fluid.New(eng)
		l := fl.AddLink("l", rate, rtt/2)
		cwnd := NewCwnd(params)
		f := fl.StartFlow([]*fluid.Link{l}, size, fluid.FlowOpts{})
		StartRamp(fl, f, cwnd, params, rtt)
		eng.Run()
		sim := float64(f.FinishedAt() - f.StartedAt())
		est := params.EstimateTransferTime(size, rate, rtt)
		if math.Abs(sim-est)/sim > 0.25 {
			t.Fatalf("size %v: sim %v vs est %v", size, sim, est)
		}
	}
}

func TestEstimateEdgeCases(t *testing.T) {
	p := Params{}
	if p.EstimateTransferTime(0, 1e6, 0.05) != 0 {
		t.Fatal("zero size should take zero time")
	}
	if !math.IsInf(p.EstimateTransferTime(1e6, 0, 0.05), 1) {
		t.Fatal("zero rate should be infinite")
	}
}

func TestPropertyEstimateMonotoneInSize(t *testing.T) {
	p := Params{}
	f := func(a, b uint32) bool {
		s1, s2 := float64(a%100000000), float64(b%100000000)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		t1 := p.EstimateTransferTime(s1, 2e6, 0.05)
		t2 := p.EstimateTransferTime(s2, 2e6, 0.05)
		return t1 <= t2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEstimateMonotoneInRate(t *testing.T) {
	p := Params{}
	f := func(a, b uint32) bool {
		r1, r2 := 1e3+float64(a%10000000), 1e3+float64(b%10000000)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		t1 := p.EstimateTransferTime(5e7, r1, 0.05)
		t2 := p.EstimateTransferTime(5e7, r2, 0.05)
		return t2 <= t1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
