// Package sched is the multi-tenant transfer-scheduler control plane:
// the long-lived layer the paper's one-shot detours lack. It accepts
// many concurrent upload jobs (tenant, provider, size, priority,
// deadline), admits them through per-tenant rate limits, queues them by
// priority, and drains them with a bounded worker pool that enforces
// per-provider and per-DTN concurrency caps so detour nodes don't
// self-congest.
//
// Route decisions come from a route cache keyed by (client, provider,
// size bucket) with TTL expiry and failure-driven invalidation,
// populated lazily from the probe selector and refreshed by the bandit
// on repeated traffic — the expensive probing the paper leaves as open
// work is paid once per key and amortized across the fleet. Failed hops
// retry with capped, jittered exponential backoff and fall back from
// detour to direct after repeated DTN failures.
//
// Unlike the simulation packages, the scheduler is really concurrent:
// workers are goroutines and all shared state is lock-guarded, so it
// runs (and is tested) under the race detector. The simulation plugs in
// behind the Executor/Planner seams (see SimExecutor).
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"detournet/internal/core"
	"detournet/internal/health"
	"detournet/internal/httpsim"
	"detournet/internal/multipath"
	"detournet/internal/telemetry"
)

// Job is one upload request submitted to the control plane.
type Job struct {
	// Tenant is the rate-limiting principal (a user, a site, an app).
	Tenant string
	// Client is the origin host the transfer leaves from.
	Client string
	// Provider is the destination cloud-storage service.
	Provider string
	// AltProviders, when non-empty, are fallback destinations the job
	// may spill to when Provider's storage quota is exhausted and
	// reclamation frees nothing — in preference order. A spill keeps
	// the job's hop-1 staging progress (DTN partials are
	// provider-agnostic) but starts a fresh provider session.
	AltProviders []string
	// Name is the object name; it should be unique per provider.
	Name string
	// Size is the file size in bytes.
	Size float64
	// MD5 is the source file's digest (rsyncx.Checksum). When set, a
	// resumable executor verifies the provider-side digest against it at
	// completion, so a corrupted or stale resume is detected and retried
	// instead of silently accepted. Empty skips verification.
	MD5 string
	// Mode selects how the transfer runs: JobSingle (default) picks one
	// route; JobMultipath stripes the upload across several concurrent
	// routes when the Executor supports it (and degrades to single-path
	// under brownout or on an unsupporting executor).
	Mode JobMode
	// MaxPaths caps a multipath job's concurrent routes (0 = the
	// Config.MultipathMaxPaths default).
	MaxPaths int
	// Priority orders the queue: higher drains sooner.
	Priority int
	// Deadline, when positive, is the scheduler-clock time after which
	// the job is dropped instead of run. Zero means no deadline.
	Deadline float64
}

// Result is the terminal outcome of one job.
type Result struct {
	Job   Job
	Route core.Route
	// Seconds is the successful transfer's duration (virtual seconds
	// under the simulation executor).
	Seconds float64
	// Attempts counts executions, including the successful one.
	Attempts int
	// CacheHit reports whether the job rode a cached route decision
	// (including decisions it coalesced onto) rather than paying a probe.
	CacheHit bool
	// Resumed and Rewritten are the job's checkpoint accounting when a
	// ResumableExecutor ran it: bytes skipped thanks to checkpoints, and
	// bytes sent more than once. Zero for plain executors.
	Resumed   float64
	Rewritten float64
	// ChunkRepairs counts manifest chunks the transfer re-sent to heal
	// staged-copy corruption — repairs, not integrity retries: the
	// transfer was never discarded, only the damaged chunks were paid
	// for again. Zero for plain executors.
	ChunkRepairs int
	// QueueDelay is how long the job waited between Submit and its
	// terminal dequeue (or its in-queue expiry), in scheduler-clock
	// seconds.
	QueueDelay float64
	// Late reports a job that completed successfully but after its
	// deadline — it ran, but its bytes don't count as goodput.
	Late bool
	// Hedged reports that at least one attempt raced a direct-route
	// hedge against the detour; HedgeWon reports the hedge finished
	// first.
	Hedged   bool
	HedgeWon bool
	// Reroutes counts mid-transfer route switches a ReroutingExecutor
	// performed make-before-break (checkpoint reattached on the new path
	// before the old flows died). Parked is how many scheduler-clock
	// seconds the job sat with no usable route at all, waiting for a
	// re-announce. Zero for plain executors.
	Reroutes int
	Parked   float64
	// Multipath carries the striped transfer's per-path report when the
	// job ran in JobMultipath mode (nil otherwise). Degraded reports a
	// multipath job that ran single-path instead — brownout shed the
	// extra lanes, the executor lacked support, or the striped attempt
	// failed and fell back.
	Multipath *multipath.Report
	Degraded  bool
	// Err is nil on success.
	Err error

	// tr is the job's live flight-recorder handle, threaded from runJob
	// to the terminal recording in finish. Nil when recording is off.
	tr *telemetry.Trace
}

// Executor runs one transfer over a chosen route. Implementations must
// be safe for concurrent use; Execute blocks until the transfer ends.
type Executor interface {
	Execute(job Job, route core.Route) (seconds float64, err error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(Job, core.Route) (float64, error)

// Execute implements Executor.
func (f ExecutorFunc) Execute(j Job, r core.Route) (float64, error) { return f(j, r) }

// ResumableExecutor is an Executor that can carry a checkpoint across
// attempts — and across routes: the scheduler hands every attempt of a
// job the same *core.Checkpoint, so a retry resumes from the DTN's
// partial offset and a failover reattaches the provider session from
// the previous route instead of restarting at byte zero.
type ResumableExecutor interface {
	Executor
	ExecuteResumable(job Job, route core.Route, ck *core.Checkpoint) (seconds float64, err error)
}

// PrecheckExecutor is an Executor that can ask the destination
// provider whether a job's object already exists, intact, before
// moving any bytes. Crash recovery uses it to resolve the
// committed-but-unjournaled window: a job whose finish record died
// with the process but whose commit landed completes instantly instead
// of re-uploading (and the idempotent attempt ID would have suppressed
// the duplicate anyway).
type PrecheckExecutor interface {
	Precheck(job Job) bool
}

// HedgedExecutor is a ResumableExecutor that can race a direct-route
// hedge against a slow detour attempt: run the job on primary, and if
// it hasn't finished after budget seconds, launch a direct transfer and
// let them race — first success wins, the loser is cancelled (its flows
// killed, its partial bytes charged as rewritten in ck).
//
// It returns the winner's elapsed seconds and route, whether a hedge
// was actually launched (a primary that beats the budget never pays for
// one), and whether the hedge won.
type HedgedExecutor interface {
	ResumableExecutor
	ExecuteHedged(job Job, primary core.Route, budget float64, ck *core.Checkpoint) (seconds float64, winner core.Route, hedgeLaunched, hedgeWon bool, err error)
}

// ReroutingExecutor is a ResumableExecutor that survives routing churn
// from inside an attempt: when the path under a transfer is withdrawn,
// it establishes the best surviving route (core.RerouteOrder),
// reattaches the job's checkpoint there, and only then abandons the old
// flows — make-before-break. When no route exists at all it parks the
// transfer (up to parkBudget scheduler-clock seconds total) and resumes
// on re-announce; exhausting the budget fails with an error wrapping
// core.ErrNoRoute.
//
// It returns the transfer's elapsed seconds, the route it finally
// completed (or gave up) on, how many reroutes happened, and the total
// parked seconds.
type ReroutingExecutor interface {
	ResumableExecutor
	ExecuteRerouting(job Job, route core.Route, ck *core.Checkpoint, parkBudget float64) (seconds float64, final core.Route, reroutes int, parked float64, err error)
}

// Planner makes the expensive route decision for a cache miss —
// typically by probing every candidate path (detourselect.Selector).
// It returns the chosen route plus the full candidate set the cache's
// bandit keeps refining. Implementations must be concurrency-safe.
type Planner interface {
	Plan(client, provider string, size float64) (route core.Route, candidates []core.Route, err error)
}

// PlannerFunc adapts a function to the Planner interface.
type PlannerFunc func(string, string, float64) (core.Route, []core.Route, error)

// Plan implements Planner.
func (f PlannerFunc) Plan(c, p string, s float64) (core.Route, []core.Route, error) {
	return f(c, p, s)
}

// HealthAware is an Executor that accepts the shared gray-failure
// tracker — the hook through which the simulation executor arms its
// stall watchdogs with the scheduler's learned baselines.
type HealthAware interface {
	SetHealth(*health.Tracker)
}

// CapacityOracle reports a DTN's free staging bytes. When Config.
// Capacity is set, route election down-weights detours through DTNs
// below the headroom floor — spill-aware placement: jobs steer toward
// DTNs that can actually hold their hop-1 bytes, before the first
// ErrNoSpace rejection rather than after it.
type CapacityOracle interface {
	DTNHeadroom(dtn string) float64
}

// QuotaReclaimer is an Executor that can ask a provider to
// garbage-collect abandoned upload sessions, freeing their pending
// quota bytes. The scheduler calls it once per job on the first 507
// before considering a provider spill; it returns the bytes freed.
type QuotaReclaimer interface {
	ReclaimQuota(provider string) float64
}

// PathAwarePlanner is a Planner that can also report the node/domain
// hops each candidate route traverses. A scheduler whose planner
// implements it stores those paths alongside cache entries, which is
// what lets ApplyRouteEvent target invalidations at exactly the routes
// crossing a withdrawn session instead of flushing everything.
type PathAwarePlanner interface {
	Planner
	RoutePaths(client, provider string, routes []core.Route) map[core.Route][]PathHop
}

// Sentinel errors surfaced through Submit and Result.Err.
var (
	// ErrClosed reports a scheduler that has been shut down.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrRateLimited reports a Submit rejected by the tenant's bucket.
	ErrRateLimited = errors.New("sched: tenant rate limited")
	// ErrDeadline reports a job dropped because its deadline passed
	// before a worker reached it.
	ErrDeadline = errors.New("sched: deadline exceeded")
)

// Config tunes a Scheduler. Executor and Planner are required;
// everything else has serviceable defaults.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// Executor runs transfers; required.
	Executor Executor
	// Planner makes route decisions on cache misses; required.
	Planner Planner

	// ProviderCap bounds concurrent transfers per provider (default 4;
	// <= -1 means unlimited).
	ProviderCap int
	// DTNCap bounds concurrent detour transfers per DTN (default 2;
	// <= -1 means unlimited) — the knob that keeps detour nodes from
	// self-congesting under fleet load.
	DTNCap int

	// MaxAttempts bounds executions per job, first try included
	// (default 3).
	MaxAttempts int
	// DetourFailLimit is how many detour failures a job tolerates
	// before the cached detour is invalidated and the job falls back to
	// direct (default 2).
	DetourFailLimit int

	// TenantRate admits jobs per tenant at this sustained rate in
	// jobs/sec (0 = unlimited). TenantBurst is the bucket depth
	// (default max(1, TenantRate)).
	TenantRate  float64
	TenantBurst float64

	// CacheTTL is the route-cache entry lifetime in scheduler-clock
	// seconds (default 300). QuarantineTTL is how long a failed detour
	// stays benched (default CacheTTL).
	CacheTTL      float64
	QuarantineTTL float64

	// BreakerThreshold is how many consecutive route-level failures open
	// a route's circuit breaker (default 3). BreakerCooldown is how many
	// scheduler-clock seconds an open breaker rejects traffic before
	// admitting a half-open probe (default 30).
	BreakerThreshold int
	BreakerCooldown  float64

	// DisableRecovery turns off checkpointed resume even when the
	// Executor supports it: every attempt restarts from byte zero. For
	// ablations and negative tests.
	DisableRecovery bool

	// Reroute enables make-before-break rerouting when the Executor
	// implements ReroutingExecutor: an attempt whose path is withdrawn
	// mid-transfer re-establishes on a surviving route inside the attempt
	// instead of failing back to the retry loop, and parks (holding its
	// checkpoint) when no route exists at all. ParkBudget caps the total
	// parked seconds per attempt (default 90).
	Reroute    bool
	ParkBudget float64

	// MultipathMaxPaths caps how many routes a JobMultipath job stripes
	// across — direct plus detours (default 3). MultipathChunk is the
	// stripe unit in bytes (default core.DefaultResumeChunk).
	MultipathMaxPaths int
	MultipathChunk    float64

	// --- Overload control (all off by default) ---

	// QueueLimit bounds total queue occupancy: Submit rejects with
	// ErrQueueFull (SubmitWait blocks) once this many jobs wait. 0 =
	// unbounded, the PR-1 behavior.
	QueueLimit int
	// TenantQueueLimit bounds one tenant's share of the queue; a Submit
	// past it rejects with ErrTenantQuota (which errors.Is-matches
	// ErrQueueFull). 0 = unbounded.
	TenantQueueLimit int
	// FairQueue switches draining within each priority level from
	// strict FIFO/deadline order to weighted deficit-round-robin across
	// tenants, so a bursty tenant cannot starve its peers.
	FairQueue bool
	// TenantWeights are DRR weights (default 1 per tenant);
	// DRRQuantumBytes is the per-visit deficit refill (default 32 MB).
	TenantWeights   map[string]float64
	DRRQuantumBytes float64
	// CoDelTarget enables CoDel-style shedding: when the EWMA of
	// time-in-queue exceeds this many seconds, jobs whose own delay also
	// exceeds it are dropped at dequeue with a *ShedError (retry-after).
	// 0 disables shedding. CoDelAlpha is the EWMA smoothing factor
	// (default 0.3).
	CoDelTarget float64
	CoDelAlpha  float64
	// Hedge enables hedged transfers when the Executor implements
	// HedgedExecutor: a detour attempt that outlives its learned
	// percentile budget races a direct-route hedge, loser cancelled.
	Hedge bool
	// HedgePercentile is the per-route latency percentile that prices
	// the budget (default 0.95); HedgeMinSamples is how many completed
	// transfers a route needs before hedging trusts its distribution
	// (default 8); HedgeMaxFrac caps launched hedges as a fraction of
	// submitted jobs so hedging cannot amplify overload (default 0.1).
	HedgePercentile float64
	HedgeMinSamples int
	HedgeMaxFrac    float64
	// BrownoutEnter, as a fraction of QueueLimit occupancy, turns on
	// brownout mode: optional work — bandit exploration, probe-based
	// cache refresh, detour planning for small size-buckets, hedging —
	// is shed first. BrownoutExit (default Enter/2) restores it
	// hysteretically. 0 disables brownout; requires QueueLimit > 0.
	BrownoutEnter float64
	BrownoutExit  float64
	// BrownoutSmallBucket: during brownout, jobs in size buckets ≤ this
	// skip detour planning entirely and go direct (default 1 ≈ files
	// under ~4 MB, where detour gains are smallest; -1 = none).
	BrownoutSmallBucket int

	// Capacity, when set, arms spill-aware placement: detour routes
	// through DTNs whose staging headroom sits below CapacityFloor are
	// down-weighted in route election (not excluded — a nearly-full
	// DTN still serves small jobs), composing multiplicatively with
	// the health layer's probation weights. nil turns it off.
	Capacity CapacityOracle
	// CapacityFloor is the headroom (bytes) below which a DTN is
	// considered under storage pressure (default 64 MB).
	CapacityFloor float64

	// Health, when set, arms the gray-failure layer: stall watchdogs on
	// supporting executors (aborted transfers surface core.ErrStall and
	// fail over without burning an attempt), outlier ejection feeding the
	// route cache's bandit weights (probation routes are down-weighted,
	// not excluded, and re-admitted by canary transfers), and
	// per-provider retry budgets (exhaustion parks the job with a
	// *BudgetError). nil turns all of it off.
	Health *health.Tracker
	// DisableHealth ignores Health even when set — the ablation switch,
	// so A/B harnesses can share one config constructor.
	DisableHealth bool

	// Journal, when set, makes the control plane crash-consistent:
	// submissions, attempt starts, checkpoint watermarks, cap and
	// retry-token spends, and finishes are written ahead to the journal,
	// and a scheduler restarted on the same device replays them — jobs
	// with finish records are not re-run, in-flight jobs resume from
	// their journaled checkpoints under their original attempt IDs. The
	// journal is also the crash injector: when an armed crash point
	// fires, the scheduler is "killed" — Drain wakes, workers unwind,
	// results after the kill carry ErrCrashKilled. nil turns all of it
	// off.
	Journal *ControlJournal

	// Backoff shapes the retry delays.
	Backoff Backoff
	// Rand seeds backoff jitter and the cache's bandit (default a
	// fixed-seed source, so runs are reproducible).
	Rand *rand.Rand
	// Now is the scheduler clock in seconds (default: monotonic wall
	// time since New). Tests inject fake clocks here.
	Now func() float64
	// Sleep pauses a worker for backoff (default time.Sleep). Tests
	// inject no-ops or recorders here.
	Sleep func(seconds float64)
	// OnResult, when set, receives every terminal Result. It is called
	// from worker goroutines, outside scheduler locks.
	OnResult func(Result)

	// Telemetry, when set, is the metrics registry the scheduler reports
	// into: job outcomes, queue occupancy, retry/reroute/park/spill
	// counters, queue-delay and transfer-time histograms, and per-route
	// byte totals. nil disables metric export at a single branch per
	// observation site.
	Telemetry *telemetry.Registry
	// Recorder, when set, keeps a per-job flight-recorder trace of every
	// control-plane decision (election, attempts, failure classes,
	// failovers, reroutes, parks) — retained in full when the job fails,
	// truncated to a count when it succeeds. nil disables recording.
	Recorder *telemetry.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Executor == nil || c.Planner == nil {
		panic("sched: Config needs an Executor and a Planner")
	}
	if c.ProviderCap == 0 {
		c.ProviderCap = 4
	}
	if c.DTNCap == 0 {
		c.DTNCap = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.DetourFailLimit <= 0 {
		c.DetourFailLimit = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 300
	}
	if c.QuarantineTTL <= 0 {
		c.QuarantineTTL = c.CacheTTL
	}
	if c.CoDelAlpha <= 0 || c.CoDelAlpha > 1 {
		c.CoDelAlpha = 0.3
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile > 1 {
		c.HedgePercentile = 0.95
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 8
	}
	if c.HedgeMaxFrac <= 0 || c.HedgeMaxFrac > 1 {
		c.HedgeMaxFrac = 0.1
	}
	if c.BrownoutSmallBucket == 0 {
		c.BrownoutSmallBucket = 1
	}
	if c.ParkBudget <= 0 {
		c.ParkBudget = 90
	}
	if c.MultipathMaxPaths <= 0 {
		c.MultipathMaxPaths = 3
	}
	if c.DisableHealth {
		c.Health = nil
	}
	if c.CapacityFloor <= 0 {
		c.CapacityFloor = 64e6
	}
	c.Backoff = c.Backoff.withDefaults()
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	if c.Now == nil {
		start := time.Now()
		c.Now = func() float64 { return time.Since(start).Seconds() }
	}
	if c.Sleep == nil {
		c.Sleep = func(sec float64) { time.Sleep(time.Duration(sec * float64(time.Second))) }
	}
	return c
}

// planCall coalesces concurrent cache misses on one key so a probe is
// paid once per key, not once per in-flight job.
type planCall struct {
	done  chan struct{}
	route core.Route
}

// Scheduler is the control plane. Create with New, arm with Start,
// feed with Submit, and wait with Drain; Close shuts the pool down.
type Scheduler struct {
	cfg      Config
	q        *jobQueue
	cache    *RouteCache
	caps     *capTable
	buckets  *tenantBuckets
	breakers *breakerSet
	codel    *codel // nil when shedding is off
	wg       sync.WaitGroup

	planMu   sync.Mutex
	planning map[CacheKey]*planCall

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	// crashKilled mirrors the journal's kill switch under s.mu so Drain
	// can wake on it.
	crashKilled bool
	// Counters (all guarded by mu).
	submitted, rateLimited int64
	queueFullRej, quotaRej int64
	pending, running       int64
	done, failed, expired  int64
	shed, late             int64
	retries, fallbacks     int64
	failovers, breakerSkip int64
	hedges, hedgeWins      int64
	brownDirect, staleHits int64
	integrityRetries       int64
	reroutes, parks        int64
	parkSeconds            float64
	mpJobs, mpDegraded     int64
	mpHedged, mpResent     int64
	mpDuplicateBytes       float64
	routeEvents            int64
	stalls, stallRerouted  int64
	canaries, budgetParks  int64
	quotaFails, quotaParks int64
	quotaReclaims          int64
	providerSpills         int64
	bytesResumed           float64
	bytesRewritten         float64
	chunkRepairs           int64
	cacheHits, cacheMiss   int64
	perRoute               map[string]*RouteStats
	brown                  *brownout // nil when brownout is off
	lat                    *latencyTracker
	delays                 *delayRing
	jitterRng              *rand.Rand

	// met/rec are the telemetry hooks (nil when observability is off);
	// set once in New, read without locks on hot paths.
	met *schedMetrics
	rec *telemetry.FlightRecorder
}

// New builds a scheduler; call Start before submitting.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg: cfg,
		q: newJobQueue(queueOpts{
			limit:       cfg.QueueLimit,
			tenantLimit: cfg.TenantQueueLimit,
			fair:        cfg.FairQueue,
			quantum:     cfg.DRRQuantumBytes,
			weights:     cfg.TenantWeights,
			now:         cfg.Now,
		}),
		caps:     newCapTable(cfg.ProviderCap, cfg.DTNCap),
		buckets:  newTenantBuckets(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
		codel:    newCodel(cfg.CoDelTarget, cfg.CoDelAlpha),
		planning: make(map[CacheKey]*planCall),
		perRoute: make(map[string]*RouteStats),
		lat:      newLatencyTracker(0),
		delays:   newDelayRing(0),
		// The cache's bandit and the backoff jitter draw from separate
		// streams so their consumption patterns can't perturb each other.
		jitterRng: rand.New(rand.NewSource(cfg.Rand.Int63())),
	}
	s.met = newSchedMetrics(cfg.Telemetry)
	s.rec = cfg.Recorder
	if cfg.QueueLimit > 0 {
		s.brown = newBrownout(cfg.BrownoutEnter, cfg.BrownoutExit)
	}
	s.cache = NewRouteCache(cfg.CacheTTL, cfg.QuarantineTTL, cfg.Now, rand.New(rand.NewSource(cfg.Rand.Int63())))
	s.breakers = newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now)
	if cfg.Health != nil {
		if ha, ok := cfg.Executor.(HealthAware); ok {
			ha.SetHealth(cfg.Health)
		}
	}
	if cfg.Health != nil || cfg.Capacity != nil {
		// Probation down-weights the bandit's view of a route instead of
		// hard-excluding it: traffic trickles, canaries decide re-admission.
		// Capacity pressure composes multiplicatively: a gray DTN that is
		// also nearly full is doubly unattractive.
		s.cache.SetWeight(func(r core.Route) float64 {
			w := 1.0
			if cfg.Health != nil {
				w = cfg.Health.Weight(health.ClassRoute, r.String())
			}
			return w * s.capacityWeight(r)
		})
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Journal != nil {
		// A fired crash point must wake Drain: the fleet is not finishing.
		cfg.Journal.OnKill(func() {
			s.mu.Lock()
			s.crashKilled = true
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		if cfg.Health != nil {
			// A journal forced into in-memory mode is a silent durability
			// loss; surface it once through the health transitions log
			// instead of letting it hide until the next crash.
			cfg.Journal.OnDegraded(func() {
				cfg.Health.NoteWarning("journal", "control",
					"device full after compaction; folding records in memory only")
			})
		}
	}
	return s
}

// Weight multipliers for DTNs under storage pressure: below the floor
// the route is nearly benched (a trickle still probes recovery, like
// probation); inside 2x the floor it is merely discouraged.
const (
	capWeightCritical = 0.05
	capWeightLow      = 0.5
)

// capacityWeight is the spill-aware placement term of route election:
// 1 for direct routes, unknown DTNs, and unbounded disks; discounted
// as a DTN's staging headroom approaches (and crosses) the floor.
func (s *Scheduler) capacityWeight(r core.Route) float64 {
	o := s.cfg.Capacity
	if o == nil || r.Kind != core.Detour {
		return 1
	}
	h := o.DTNHeadroom(r.Via)
	switch {
	case h <= s.cfg.CapacityFloor:
		return capWeightCritical
	case h <= 2*s.cfg.CapacityFloor:
		return capWeightLow
	}
	return 1
}

// crashed reports whether the control plane's journal has fired an
// armed crash point — the process is "dead" and workers just unwind.
func (s *Scheduler) crashed() bool {
	return s.cfg.Journal != nil && s.cfg.Journal.Killed()
}

// Cache exposes the scheduler's route cache (read-mostly; for
// inspection and tests).
func (s *Scheduler) Cache() *RouteCache { return s.cache }

// Health exposes the scheduler's gray-failure tracker (nil when the
// health layer is off) for inspection, reports, and the health table.
func (s *Scheduler) Health() *health.Tracker { return s.cfg.Health }

// RouteEvent feeds one routing-plane event (withdraw or announce) into
// the control plane. It is the push half of route invalidation: wire it
// to a bgppol.Bus subscription and cached decisions whose stored paths
// cross the withdrawn session flip to Converging immediately — the next
// lookup re-elects — instead of serving a blackholed route until TTL.
// An announce clears both Converging and Quarantined holds, so a
// restored link returns to service at once. Safe for concurrent use.
func (s *Scheduler) RouteEvent(ev RouteEvent) {
	s.mu.Lock()
	s.routeEvents++
	s.mu.Unlock()
	s.cache.ApplyRouteEvent(ev)
}

// Start launches the worker pool. It may be called once.
func (s *Scheduler) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Submit admits one job without blocking. It returns ErrRateLimited if
// the tenant's bucket is empty, ErrQueueFull / ErrTenantQuota when the
// bounded queue is at capacity (backpressure — resubmit later), ErrClosed
// after Close, and a validation error for malformed jobs; otherwise the
// job is queued and will produce exactly one Result.
func (s *Scheduler) Submit(j Job) error { return s.submit(j, false) }

// SubmitWait is Submit with blocking backpressure: instead of rejecting
// with ErrQueueFull it blocks the producer until queue space frees (or
// the scheduler closes). Rate-limit and validation errors still return
// immediately.
func (s *Scheduler) SubmitWait(j Job) error { return s.submit(j, true) }

func (s *Scheduler) submit(j Job, wait bool) error {
	if j.Tenant == "" || j.Client == "" || j.Provider == "" || j.Name == "" {
		return fmt.Errorf("sched: job needs tenant, client, provider, and name: %+v", j)
	}
	if j.Size <= 0 {
		return fmt.Errorf("sched: job %q has non-positive size", j.Name)
	}
	allowed := s.buckets.allow(j.Tenant)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !allowed {
		s.rateLimited++
		s.mu.Unlock()
		if s.met != nil {
			s.met.rejected.With("rate-limited").Inc()
		}
		return ErrRateLimited
	}
	s.pending++
	s.mu.Unlock()

	// The push may sweep dead jobs out of a full queue to make room;
	// those expirations are terminal results we must deliver.
	var expired []queued
	var err error
	if wait {
		expired, err = s.q.pushWait(j, s.cfg.Now)
	} else {
		expired, err = s.q.push(j, s.cfg.Now())
	}
	s.mu.Lock()
	if err != nil {
		s.pending--
		switch {
		case errors.Is(err, ErrTenantQuota):
			s.quotaRej++
			if s.met != nil {
				s.met.rejected.With("tenant-quota").Inc()
			}
		case errors.Is(err, ErrQueueFull):
			s.queueFullRej++
			if s.met != nil {
				s.met.rejected.With("queue-full").Inc()
			}
		}
	} else {
		s.submitted++
		if s.met != nil {
			s.met.submitted.Inc()
		}
	}
	s.noteDepthLocked()
	s.mu.Unlock()
	if err == nil && s.cfg.Journal != nil {
		// Write-ahead: the job is durable before any worker touches it. A
		// resubmission of a journaled name reuses its sequence number (and
		// therefore its idempotent attempt ID).
		s.cfg.Journal.NoteSubmit(j)
	}
	s.expireQueued(expired)
	s.noteQueueDepth()
	return err
}

// expireQueued finishes jobs a queue sweep expired in place: their
// deadline passed while they waited, so they terminate with ErrDeadline
// without ever reaching a worker.
func (s *Scheduler) expireQueued(items []queued) {
	if len(items) == 0 {
		return
	}
	now := s.cfg.Now()
	for _, it := range items {
		s.finish(Result{Job: it.job, QueueDelay: now - it.enq, Err: ErrDeadline})
	}
}

// noteQueueDepth feeds queue utilization through the brownout state
// machine.
func (s *Scheduler) noteQueueDepth() {
	if s.brown == nil || s.cfg.QueueLimit <= 0 {
		return
	}
	util := float64(s.q.length()) / float64(s.cfg.QueueLimit)
	s.mu.Lock()
	s.brown.observe(util)
	s.mu.Unlock()
}

// brownoutActive reports whether the scheduler is currently shedding
// optional work.
func (s *Scheduler) brownoutActive() bool {
	if s.brown == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.brown.active
}

// Drain blocks until every admitted job has reached a terminal state.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for s.pending > 0 && !s.closed && !s.crashKilled {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close stops the pool: workers finish their current job and exit, and
// jobs still queued fail with ErrClosed. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.q.close()
	s.caps.close()
	s.wg.Wait()
	// Fail whatever never reached a worker.
	for {
		j, ok := s.q.tryPop()
		if !ok {
			break
		}
		s.finish(Result{Job: j, Err: ErrClosed})
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		it, expired, ok := s.q.pop()
		s.expireQueued(expired)
		if !ok {
			return
		}
		if it == nil {
			// The sweep emptied the queue; nothing runnable this round.
			continue
		}
		delay := s.cfg.Now() - it.enq
		if s.codel != nil {
			if shed, after := s.codel.onDequeue(delay); shed {
				s.finish(Result{Job: it.job, QueueDelay: delay, Err: &ShedError{RetryAfter: after}})
				s.noteQueueDepth()
				continue
			}
		}
		s.mu.Lock()
		s.running++
		s.delays.note(delay)
		s.noteDepthLocked()
		s.mu.Unlock()
		s.noteQueueDepth()
		res := s.runJob(it.job)
		res.QueueDelay = delay
		if it.job.Mode == JobMultipath && res.Multipath == nil {
			res.Degraded = true
		}
		s.finish(res)
		if s.crashed() {
			// The crash point fired: this worker is part of the dead
			// process. Finish the bookkeeping for the current result (above)
			// and unwind without touching the queue again.
			return
		}
	}
}

// finish records a terminal result and notifies Drain and OnResult.
func (s *Scheduler) finish(res Result) {
	if res.Err == nil && res.Job.Deadline > 0 && s.cfg.Now() > res.Job.Deadline {
		res.Late = true
	}
	if s.cfg.Journal != nil && !errors.Is(res.Err, ErrCrashKilled) {
		// Journal the terminal record before it becomes observable. This
		// is the before-finish crash window: the provider may have
		// committed but the journal hasn't — recovery resolves it via the
		// idempotent attempt ID and the provider pre-check.
		s.cfg.Journal.NoteFinish(&res)
	}
	s.mu.Lock()
	s.pending--
	if s.running > 0 {
		s.running--
	}
	m := s.met
	if m != nil {
		m.queueDelay.Observe(res.QueueDelay)
		m.attempts.Observe(float64(res.Attempts))
	}
	switch {
	case res.Err == nil:
		s.done++
		if res.Late {
			s.late++
		}
		rs := s.perRoute[res.Route.String()]
		if rs == nil {
			rs = &RouteStats{}
			s.perRoute[res.Route.String()] = rs
		}
		rs.Jobs++
		rs.Bytes += res.Job.Size
		rs.Seconds += res.Seconds
		s.lat.note(res.Route.String(), res.Seconds, res.Job.Size)
		if m != nil {
			m.done.Inc()
			if res.Late {
				m.late.Inc()
			}
			m.transferSec.Observe(res.Seconds)
			bm, jm := m.routeMetrics(res.Route)
			bm.Add(res.Job.Size)
			jm.Inc()
		}
	case errors.Is(res.Err, ErrShed):
		s.shed++
		if m != nil {
			m.shed.Inc()
		}
	case errors.Is(res.Err, ErrDeadline):
		s.expired++
		if m != nil {
			m.expired.Inc()
		}
	default:
		s.failed++
		if m != nil {
			m.failed.Inc()
		}
	}
	s.noteDepthLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.recordTerminal(res)
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(res)
	}
}

// runJob is a worker's whole handling of one job: route decision
// (breaker-gated), capped execution, class-aware retry with backoff,
// and failover that carries the job's checkpoint across routes.
func (s *Scheduler) runJob(j Job) Result {
	// One flight-recorder handle for the job's whole life: notes against
	// it touch only the handle, and finish hands it back for retention.
	// Nil when recording is off.
	tr := s.rec.Begin(j.Name)
	res := s.runJobTraced(j, tr)
	res.tr = tr
	return res
}

func (s *Scheduler) runJobTraced(j Job, tr *telemetry.Trace) Result {
	if s.crashed() {
		return Result{Job: j, Err: ErrCrashKilled}
	}
	if j.Deadline > 0 && s.cfg.Now() > j.Deadline {
		return Result{Job: j, Err: ErrDeadline}
	}
	key := KeyFor(j.Client, j.Provider, j.Size)
	route, hit := s.routeFor(key, j)
	route = s.gateRoute(key, j.Provider, route)
	if s.cfg.Health != nil {
		if cr, ok := s.canaryRoute(key, route); ok {
			// A probation route is owed a canary: this job probes it at
			// trickle rate so re-admission doesn't wait on the bandit
			// happening to explore a down-weighted arm.
			route = cr
			s.mu.Lock()
			s.canaries++
			s.mu.Unlock()
			if s.met != nil {
				s.met.canaries.Inc()
			}
			if tr != nil {
				tr.Note("job.canary", "route", route.String())
			}
		}
	}
	if tr != nil {
		tr.Note("job.elect", "route", route.String(), "cache", strconv.FormatBool(hit))
	}

	if j.Mode == JobMultipath {
		if res, done := s.runMultipath(j, key, route, hit); done {
			return res
		}
		// Degraded: brownout shed the extra lanes, the executor can't
		// stripe, or the striped attempt failed — run single-path below.
		s.mu.Lock()
		s.mpDegraded++
		s.mu.Unlock()
		tr.Note("job.mp-degrade")
	}

	// One checkpoint for the job's whole life: every attempt, on any
	// route, resumes from it.
	var ck *core.Checkpoint
	rex, resumable := s.cfg.Executor.(ResumableExecutor)
	if resumable && !s.cfg.DisableRecovery {
		ck = &core.Checkpoint{}
	}

	// Crash recovery: a job the journal saw in flight restores its
	// journaled checkpoint (DTN partial + provider session) and attempt
	// count, and keeps its original idempotent attempt ID — so a commit
	// the dead process already made replays instead of duplicating.
	priorAttempts := 0
	cj := s.cfg.Journal
	if cj != nil {
		precheck := false
		if rec := cj.TakeRecovered(j.Name); rec != nil {
			priorAttempts = rec.PriorAttempts
			if ck != nil && rec.HasCkpt {
				*ck = rec.Checkpoint()
			}
			precheck = true
		} else if cj.RecoveredMode() {
			// A restart prechecks every resubmitted job, not just the ones
			// with journaled attempts: a job whose records were lost past a
			// corrupted byte may still have committed before the crash.
			precheck = true
		}
		if precheck {
			// The before-finish window: the dead process may have committed
			// the object without journaling the finish. Ask the provider
			// before moving a single byte.
			if px, ok := s.cfg.Executor.(PrecheckExecutor); ok {
				if px.Precheck(j) {
					att := priorAttempts
					if att < 1 {
						att = 1
					}
					res := Result{Job: j, Route: core.DirectRoute, Attempts: att, CacheHit: true, Resumed: j.Size}
					if ck != nil {
						res.Rewritten, res.ChunkRepairs = ck.BytesRewritten, ck.ChunkRepairs
					}
					s.mu.Lock()
					s.bytesResumed += j.Size
					s.mu.Unlock()
					return res
				}
			}
		}
		if ck != nil {
			ck.AttemptID = cj.AttemptID(j.Name)
			// Journal every progress watermark; a mid-transfer crash point
			// (mid-hop1 / mid-hop2) killing here also aborts the transfer
			// cooperatively. Executors that wrap OnProgress themselves chain
			// through this hook.
			prev := ck.OnProgress
			ck.OnProgress = func(b float64) {
				cj.NoteCkpt(j, ck, b)
				if prev != nil {
					prev(b)
				}
			}
		}
	}

	var lastErr error
	attempts, detourFails, stallReroutes := priorAttempts, 0, 0
	jobHedged, jobHedgeWon := false, false
	jobReroutes, jobParked := 0, 0.0
	// Quota-mitigation state: reclaim runs at most once per provider per
	// job; spilledFrom remembers providers already abandoned as full so
	// the spill chain never revisits one.
	var reclaimTried, spilledFrom map[string]bool
	for {
		attempts++
		if tr != nil {
			tr.Note("job.attempt", "n", strconv.Itoa(attempts), "route", route.String())
		}
		if cj != nil && cj.NoteAttempt(j, attempts, route) {
			return Result{Job: j, Route: route, Attempts: attempts, CacheHit: hit, Err: ErrCrashKilled}
		}
		var sec float64
		var err error
		if !s.breakers.allow(providerKey(j.Provider)) {
			// The provider itself is benched: don't burn a transfer on it,
			// just wait out the cooldown like any other failed attempt.
			err = ProviderDown(fmt.Errorf("breaker open for provider %s", j.Provider))
		} else {
			if cerr := s.caps.acquire(j.Provider, route.Via); cerr != nil {
				res := Result{Job: j, Route: route, Attempts: attempts - 1, CacheHit: hit, Hedged: jobHedged, HedgeWon: jobHedgeWon, Reroutes: jobReroutes, Parked: jobParked, Err: cerr}
				s.noteRecovery(ck, &res)
				return res
			}
			// A winning hedge swaps route below; release what was acquired.
			acquiredVia := route.Via
			if cj != nil {
				cj.NoteCap(j.Provider, acquiredVia, true)
			}
			ran := false
			if hx, canHedge := s.cfg.Executor.(HedgedExecutor); canHedge && s.cfg.Hedge && route.Kind == core.Detour && ck != nil {
				if budget, ok := s.hedgeBudget(route, j.Size); ok {
					var winner core.Route
					var launched, won bool
					sec, winner, launched, won, err = hx.ExecuteHedged(j, route, budget, ck)
					if launched {
						jobHedged = true
						s.mu.Lock()
						s.hedges++
						if won {
							s.hedgeWins++
						}
						s.mu.Unlock()
						if s.met != nil {
							s.met.hedges.Inc()
							if won {
								s.met.hedgeWins.Inc()
							}
						}
						if tr != nil {
							if won {
								tr.Note("job.hedge", "won", "true", "route", winner.String())
							} else {
								tr.Note("job.hedge", "won", "false")
							}
						}
					}
					if won {
						jobHedgeWon = true
						route = winner
					}
					ran = true
				}
			}
			if !ran {
				if rrx, canReroute := s.cfg.Executor.(ReroutingExecutor); canReroute && s.cfg.Reroute && ck != nil {
					// Churn-hardened attempt: the executor survives
					// withdraws internally (make-before-break) and may
					// finish on a different route than it started.
					var final core.Route
					var nr int
					var parked float64
					sec, final, nr, parked, err = rrx.ExecuteRerouting(j, route, ck, s.cfg.ParkBudget)
					jobReroutes += nr
					jobParked += parked
					if nr > 0 || parked > 0 {
						s.mu.Lock()
						s.reroutes += int64(nr)
						if parked > 0 {
							s.parks++
							s.parkSeconds += parked
						}
						s.mu.Unlock()
						if s.met != nil {
							s.met.reroutes.Add(float64(nr))
							if parked > 0 {
								s.met.parks.Inc()
							}
						}
						if tr != nil {
							tr.Note("job.reroute", "n", strconv.Itoa(nr),
								"parked_s", strconv.FormatFloat(parked, 'g', -1, 64),
								"route", final.String())
						}
					}
					route = final
				} else if ck != nil {
					sec, err = rex.ExecuteResumable(j, route, ck)
				} else {
					sec, err = s.cfg.Executor.Execute(j, route)
				}
			}
			s.caps.release(j.Provider, acquiredVia)
			if cj != nil {
				cj.NoteCap(j.Provider, acquiredVia, false)
			}
		}
		if s.crashed() {
			// A mid-transfer crash point aborted this attempt (or the kill
			// landed elsewhere while we ran): the process is dead, whatever
			// err says is moot.
			return Result{Job: j, Route: route, Attempts: attempts, CacheHit: hit, Err: ErrCrashKilled}
		}
		if err == nil {
			s.breakers.success(breakerKey(j.Provider, route))
			s.breakers.success(providerKey(j.Provider))
			s.noteHealthSuccess(j, route, sec)
			if !s.brownoutActive() {
				// Brownout sheds bandit refresh: live observations are
				// optional work, the decision we have is good enough.
				s.cache.Observe(key, route, j.Size, sec)
			}
			res := Result{Job: j, Route: route, Seconds: sec, Attempts: attempts, CacheHit: hit, Hedged: jobHedged, HedgeWon: jobHedgeWon, Reroutes: jobReroutes, Parked: jobParked}
			s.noteRecovery(ck, &res)
			return res
		}
		lastErr = err
		if errors.Is(err, core.ErrIntegrity) {
			s.mu.Lock()
			s.integrityRetries++
			s.mu.Unlock()
		}
		if tr != nil {
			tr.Note("job.fail", "class", Classify(err).String(), "err", err.Error())
		}

		backoff := true
		switch Classify(err) {
		case FailProviderDown:
			// No route helps a downed provider; record provider health,
			// leave the route cache alone (quarantine is route-level only),
			// and wait it out.
			s.breakers.failure(providerKey(j.Provider))
		case FailTransient:
			// The route is fine; retry it. A checkpointed executor resumes
			// from the DTN partial / provider session instead of restarting.
		case FailStall:
			// Gray failure: the watchdog aborted a transfer that served no
			// errors but crawled below its adaptive floor. Route-down-lite:
			// blame the path softly (probation down-weights it fleet-wide;
			// no quarantine, no breaker), keep the checkpoint, and fail over
			// without burning an attempt slot or sleeping — the stall itself
			// already cost the job its time. A separate reroute cap bounds
			// ping-ponging when every path is gray.
			s.mu.Lock()
			s.stalls++
			s.mu.Unlock()
			if s.met != nil {
				s.met.stalls.Inc()
			}
			if h := s.cfg.Health; h != nil {
				h.NoteStall(health.ClassRoute, route.String())
				if route.Kind == core.Detour {
					h.NoteStall(health.ClassDTN, route.Via)
				}
			}
			if stallReroutes < maxStallReroutes {
				if next, ok := s.stallFailover(key, route); ok {
					stallReroutes++
					attempts--
					route = next
					backoff = false
					s.mu.Lock()
					s.stallRerouted++
					s.mu.Unlock()
					if s.met != nil {
						s.met.stallReroutes.Inc()
					}
					if tr != nil {
						tr.Note("job.stall-failover", "route", next.String())
					}
				}
			}
			// No alternate (or the cap is spent): fall through to the
			// normal attempt accounting like a transient failure.
		case FailQuota:
			// Storage exhaustion at the provider account: no route helps
			// and none deserves blame — leave breakers and the route cache
			// alone. Mitigation ladder: (1) reclaim abandoned upload
			// sessions once and, if bytes came back, retry after the
			// provider's hint; (2) spill to an allowed alternate provider,
			// keeping hop-1 staging progress but starting a fresh session;
			// (3) park with a typed *QuotaError.
			s.mu.Lock()
			s.quotaFails++
			s.mu.Unlock()
			if s.met != nil {
				s.met.quotaFails.Inc()
			}
			recovered := false
			if !reclaimTried[j.Provider] {
				if reclaimTried == nil {
					reclaimTried = make(map[string]bool)
				}
				reclaimTried[j.Provider] = true
				if qr, ok := s.cfg.Executor.(QuotaReclaimer); ok {
					if freed := qr.ReclaimQuota(j.Provider); freed > 0 {
						s.mu.Lock()
						s.quotaReclaims++
						s.mu.Unlock()
						if s.met != nil {
							s.met.quotaReclaims.Inc()
						}
						if tr != nil {
							tr.Note("job.quota-reclaim", "provider", j.Provider,
								"freed", strconv.FormatFloat(freed, 'g', -1, 64))
						}
						recovered = true
					}
				}
			}
			if !recovered {
				if alt, ok := nextAltProvider(j, spilledFrom); ok {
					if spilledFrom == nil {
						spilledFrom = make(map[string]bool)
					}
					spilledFrom[j.Provider] = true
					if tr != nil {
						tr.Note("job.spill", "from", j.Provider, "to", alt)
					}
					j.Provider = alt
					if ck != nil {
						// The old provider's session bytes are stranded
						// behind its full quota; the DTN partial is
						// provider-agnostic and survives the switch.
						ck.DiscardSession()
					}
					key = KeyFor(j.Client, j.Provider, j.Size)
					route, hit = s.routeFor(key, j)
					route = s.gateRoute(key, j.Provider, route)
					// A spill is a new destination, not another try at the
					// full one: don't burn an attempt slot or sleep.
					attempts--
					backoff = false
					recovered = true
					s.mu.Lock()
					s.providerSpills++
					s.mu.Unlock()
					if s.met != nil {
						s.met.spills.Inc()
					}
				}
			}
			if !recovered {
				ra := retryAfterHint(lastErr)
				if ra <= 0 {
					ra = defaultQuotaParkAfter
				}
				s.mu.Lock()
				s.quotaParks++
				s.mu.Unlock()
				if s.met != nil {
					s.met.quotaParks.Inc()
				}
				if tr != nil {
					tr.Note("job.park", "kind", "quota", "provider", j.Provider,
						"retry_after", strconv.FormatFloat(ra, 'g', -1, 64))
				}
				res := Result{Job: j, Route: route, Attempts: attempts, CacheHit: hit, Hedged: jobHedged, HedgeWon: jobHedgeWon, Reroutes: jobReroutes, Parked: jobParked, Err: &QuotaError{Provider: j.Provider, RetryAfter: ra}}
				s.noteRecovery(ck, &res)
				return res
			}
		case FailRouteDown:
			s.breakers.failure(breakerKey(j.Provider, route))
			if next, ok := s.failover(key, j.Provider, route); ok {
				route = next
				// The new route is presumed healthy: no point sleeping.
				backoff = false
				if s.met != nil {
					s.met.failovers.Inc()
				}
				if tr != nil {
					tr.Note("job.failover", "route", next.String())
				}
			}
		default:
			// Untyped error: the legacy route-level handling, so executors
			// that don't classify see exactly the old behavior.
			s.breakers.failure(breakerKey(j.Provider, route))
			if route.Kind == core.Detour {
				detourFails++
				if detourFails >= s.cfg.DetourFailLimit {
					// Repeated DTN failures: bench the detour for every
					// follower of this key and fall back to direct ourselves.
					s.cache.Invalidate(key, route)
					route = core.DirectRoute
					s.mu.Lock()
					s.fallbacks++
					s.mu.Unlock()
					if s.met != nil {
						s.met.fallbacks.Inc()
					}
					tr.Note("job.fallback")
				}
			}
		}
		if attempts >= s.cfg.MaxAttempts {
			res := Result{Job: j, Route: route, Attempts: attempts, CacheHit: hit, Hedged: jobHedged, HedgeWon: jobHedgeWon, Reroutes: jobReroutes, Parked: jobParked, Err: lastErr}
			s.noteRecovery(ck, &res)
			return res
		}
		if backoff {
			// Backoff retries spend the provider's retry budget: tokens only
			// successes earn back, so a sick provider's budget drains and the
			// job parks instead of joining a retry storm. Failover reroutes
			// (backoff=false) are free — they move work away from the
			// problem rather than hammering it.
			if h := s.cfg.Health; h != nil {
				if ok, after := h.AllowRetry(j.Provider); !ok {
					s.mu.Lock()
					s.budgetParks++
					s.mu.Unlock()
					if s.met != nil {
						s.met.budgetParks.Inc()
					}
					if tr != nil {
						tr.Note("job.park", "kind", "budget", "provider", j.Provider,
							"retry_after", strconv.FormatFloat(after, 'g', -1, 64))
					}
					res := Result{Job: j, Route: route, Attempts: attempts, CacheHit: hit, Hedged: jobHedged, HedgeWon: jobHedgeWon, Reroutes: jobReroutes, Parked: jobParked, Err: &BudgetError{Provider: j.Provider, RetryAfter: after}}
					s.noteRecovery(ck, &res)
					return res
				}
				if cj != nil {
					// The spent token is journaled so a restart can drain the
					// fresh tracker's budget to match (RestoreSpentRetries) —
					// a crash must not refill a sick provider's bucket.
					cj.NoteRetry(j.Provider)
				}
			}
			s.mu.Lock()
			s.retries++
			u := s.jitterRng.Float64()
			s.mu.Unlock()
			delay := s.cfg.Backoff.Delay(attempts, u)
			// A provider's Retry-After on a 429 floors the delay: backing
			// off into the same throttle window just burns an attempt.
			if ra := retryAfterHint(lastErr); ra > delay {
				delay = ra
			}
			if s.met != nil {
				s.met.retries.Inc()
			}
			if tr != nil {
				tr.Note("job.backoff", "delay_s", strconv.FormatFloat(delay, 'g', -1, 64))
			}
			s.cfg.Sleep(delay)
		} else {
			s.mu.Lock()
			s.retries++
			s.mu.Unlock()
			if s.met != nil {
				s.met.retries.Inc()
			}
		}
	}
}

// maxStallReroutes bounds free stall-driven route switches per job, so
// a fleet where every path is gray cannot trap a job in an unmetered
// reroute loop.
const maxStallReroutes = 3

// maxRetryAfterFloor caps the honored Retry-After hint, matching the
// SDK's own throttle-sleep cap — a buggy or hostile header must not
// stall a worker for minutes.
const maxRetryAfterFloor = 60

// defaultQuotaParkAfter is the park hint on a *QuotaError whose 507
// carried no Retry-After header.
const defaultQuotaParkAfter = 30

// retryAfterHint extracts the provider's Retry-After pacing hint from
// a 429 (throttle) or 507 (quota) in the error chain — 0 when there is
// none. Backoff delays are floored by it: retrying into the same
// throttle or quota window just burns an attempt.
func retryAfterHint(err error) float64 {
	var se *httpsim.StatusError
	if !errors.As(err, &se) || se.RetryAfter <= 0 {
		return 0
	}
	if se.Status != httpsim.StatusTooManyRequests && se.Status != httpsim.StatusInsufficientStorage {
		return 0
	}
	if se.RetryAfter > maxRetryAfterFloor {
		return maxRetryAfterFloor
	}
	return se.RetryAfter
}

// nextAltProvider returns the first allowed spill target the job has
// not already abandoned as full (and is not currently on).
func nextAltProvider(j Job, spilledFrom map[string]bool) (string, bool) {
	for _, alt := range j.AltProviders {
		if alt == "" || alt == j.Provider || spilledFrom[alt] {
			continue
		}
		return alt, true
	}
	return "", false
}

// noteHealthSuccess feeds one completed transfer into the gray-failure
// tracker at all three granularities and refunds the provider's retry
// budget.
func (s *Scheduler) noteHealthSuccess(j Job, route core.Route, sec float64) {
	h := s.cfg.Health
	if h == nil || sec <= 0 {
		return
	}
	h.NoteSuccess(j.Provider)
	h.ObserveTransfer(health.ClassRoute, route.String(), j.Size, sec)
	h.ObserveTransfer(health.ClassProvider, j.Provider, j.Size, sec)
	if route.Kind == core.Detour {
		h.ObserveTransfer(health.ClassDTN, route.Via, j.Size, sec)
	}
}

// canaryRoute redirects a job onto a probation route owed a canary
// probe (at most one per canary interval per entity).
func (s *Scheduler) canaryRoute(key CacheKey, cur core.Route) (core.Route, bool) {
	h := s.cfg.Health
	for _, cand := range s.cache.Candidates(key) {
		if cand == cur {
			continue
		}
		if h.Probation(health.ClassRoute, cand.String()) && h.CanaryTake(health.ClassRoute, cand.String()) {
			return cand, true
		}
	}
	return core.Route{}, false
}

// stallFailover picks the next route for a stalled job. Unlike
// failover it does not quarantine the old route — a stall is a soft
// signal and probation already down-weights the entity fleet-wide;
// hard-benching every gray path would turn the mitigation into an
// outage of its own. Probation routes are skipped as targets (moving a
// stalled job onto a known-gray path helps nobody).
func (s *Scheduler) stallFailover(key CacheKey, stalled core.Route) (core.Route, bool) {
	h := s.cfg.Health
	if stalled.Kind == core.Detour {
		return core.DirectRoute, true
	}
	for _, cand := range s.cache.Candidates(key) {
		if cand.Kind != core.Detour || cand == stalled {
			continue
		}
		if h != nil && h.Probation(health.ClassRoute, cand.String()) {
			continue
		}
		return cand, true
	}
	return core.Route{}, false
}

// hedgeBudget prices a hedged attempt: the primary route's learned
// pXX seconds-per-byte times the job size. It refuses (no hedge) when
// the route's distribution is too thin to trust, when the hedge budget
// cap is spent, or during brownout — hedging is optional work and must
// not amplify overload.
func (s *Scheduler) hedgeBudget(route core.Route, size float64) (float64, bool) {
	s.mu.Lock()
	if s.brown != nil && s.brown.active {
		s.mu.Unlock()
		return 0, false
	}
	submitted := s.submitted
	hedges := s.hedges
	if s.lat.count(route.String()) < s.cfg.HedgeMinSamples {
		s.mu.Unlock()
		return 0, false
	}
	spb, ok := s.lat.percentile(route.String(), s.cfg.HedgePercentile)
	s.mu.Unlock()
	if !ok {
		return 0, false
	}
	if submitted < 1 {
		submitted = 1
	}
	if float64(hedges) >= s.cfg.HedgeMaxFrac*float64(submitted) {
		return 0, false
	}
	return spb * size, true
}

// gateRoute diverts a job whose chosen route has an open breaker to an
// alternate whose breaker admits traffic. Breakers are advisory: when
// every alternate is also benched, the original route runs anyway
// rather than stranding the job.
func (s *Scheduler) gateRoute(key CacheKey, provider string, route core.Route) core.Route {
	if s.breakers.allow(breakerKey(provider, route)) {
		return route
	}
	if route.Kind == core.Detour && s.breakers.allow(breakerKey(provider, core.DirectRoute)) {
		s.mu.Lock()
		s.breakerSkip++
		s.mu.Unlock()
		return core.DirectRoute
	}
	for _, cand := range s.cache.Candidates(key) {
		if cand == route {
			continue
		}
		if s.breakers.allow(breakerKey(provider, cand)) {
			s.mu.Lock()
			s.breakerSkip++
			s.mu.Unlock()
			return cand
		}
	}
	return route
}

// failover picks the next route for a job whose current route is known
// dead. A dead detour is quarantined fleet-wide and the job drops to
// direct; a dead direct route tries an alternate, breaker-approved
// detour from the key's candidate pool. The caller keeps the job's
// checkpoint, so provider-session progress survives the switch.
func (s *Scheduler) failover(key CacheKey, provider string, failed core.Route) (core.Route, bool) {
	if failed.Kind == core.Detour {
		s.cache.Invalidate(key, failed)
		s.mu.Lock()
		s.failovers++
		s.fallbacks++
		s.mu.Unlock()
		// Direct is the route of last resort — take it even if its
		// breaker objects.
		s.breakers.allow(breakerKey(provider, core.DirectRoute))
		return core.DirectRoute, true
	}
	for _, cand := range s.cache.Candidates(key) {
		if cand.Kind != core.Detour || cand == failed {
			continue
		}
		if s.breakers.allow(breakerKey(provider, cand)) {
			s.mu.Lock()
			s.failovers++
			s.mu.Unlock()
			return cand, true
		}
	}
	return failed, false
}

// noteRecovery copies the job's checkpoint accounting into its result
// and the scheduler-wide counters.
func (s *Scheduler) noteRecovery(ck *core.Checkpoint, res *Result) {
	if ck == nil {
		return
	}
	res.Resumed, res.Rewritten = ck.BytesResumed, ck.BytesRewritten
	res.ChunkRepairs = ck.ChunkRepairs
	s.mu.Lock()
	s.bytesResumed += ck.BytesResumed
	s.bytesRewritten += ck.BytesRewritten
	s.chunkRepairs += int64(ck.ChunkRepairs)
	s.mu.Unlock()
}

// routeFor resolves the job's route: cached decision, coalesced onto an
// in-flight probe, or a fresh plan. The bool reports whether the job
// avoided paying a probe.
func (s *Scheduler) routeFor(key CacheKey, j Job) (core.Route, bool) {
	if s.brownoutActive() {
		// Brownout: probes and detour planning are optional work. Small
		// files go straight to direct (their detour gain is marginal);
		// everything else rides a stale cache entry rather than paying a
		// re-probe. Only a key with no decision at all still plans.
		if s.cfg.BrownoutSmallBucket >= 0 && key.SizeBucket <= s.cfg.BrownoutSmallBucket {
			s.mu.Lock()
			s.brownDirect++
			s.mu.Unlock()
			return core.DirectRoute, true
		}
		if r, fresh, ok := s.cache.LookupStale(key); ok {
			if fresh {
				s.noteCache(true)
			} else {
				s.mu.Lock()
				s.staleHits++
				s.mu.Unlock()
			}
			return r, true
		}
	}
	if r, ok := s.cache.Lookup(key); ok {
		s.noteCache(true)
		return r, true
	}
	s.planMu.Lock()
	if call, ok := s.planning[key]; ok {
		s.planMu.Unlock()
		<-call.done
		s.noteCache(true)
		return call.route, true
	}
	// Re-check under planMu: the planner that just finished may have
	// inserted between our Lookup and the lock.
	if r, ok := s.cache.Lookup(key); ok {
		s.planMu.Unlock()
		s.noteCache(true)
		return r, true
	}
	call := &planCall{done: make(chan struct{})}
	s.planning[key] = call
	s.planMu.Unlock()

	route, cands, err := s.cfg.Planner.Plan(j.Client, j.Provider, j.Size)
	if err != nil {
		// A failed probe is not fatal: direct always exists. The entry
		// still caches so the fleet doesn't hammer a broken prober.
		route, cands = core.DirectRoute, nil
	}
	if pp, ok := s.cfg.Planner.(PathAwarePlanner); ok {
		// Store the hops each candidate traverses so routing events can
		// invalidate exactly the affected entries.
		all := append([]core.Route{route}, cands...)
		s.cache.InsertWithPaths(key, route, cands, pp.RoutePaths(j.Client, j.Provider, all))
	} else {
		s.cache.Insert(key, route, cands)
	}
	call.route = route
	close(call.done)

	s.planMu.Lock()
	delete(s.planning, key)
	s.planMu.Unlock()
	s.noteCache(false)
	return route, false
}

func (s *Scheduler) noteCache(hit bool) {
	s.mu.Lock()
	if hit {
		s.cacheHits++
	} else {
		s.cacheMiss++
	}
	s.mu.Unlock()
}

// RouteStats aggregates completed transfers over one route.
type RouteStats struct {
	Jobs    int64
	Bytes   float64
	Seconds float64
}

// Throughput is the route's aggregate bytes/sec (0 before any job).
func (r RouteStats) Throughput() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.Bytes / r.Seconds
}

// Stats is a consistent snapshot of the control plane.
type Stats struct {
	Submitted, RateLimited int64
	Queued, Running        int64
	Done, Failed, Expired  int64
	// Shed counts jobs dropped by CoDel queue-delay shedding (distinct
	// from Expired, which counts deadline deaths); Late counts jobs that
	// completed successfully but past their deadline.
	Shed, Late int64
	// QueueFullRejects and TenantQuotaRejects count Submits bounced by
	// the bounded queue and by per-tenant quotas.
	QueueFullRejects, TenantQuotaRejects int64
	// Hedges counts launched direct-route hedges; HedgeWins counts races
	// the hedge won.
	Hedges, HedgeWins int64
	// BrownoutActive is the current brownout state; Enters/Exits count
	// transitions; BrownoutDirect counts small jobs sent direct without
	// planning; StaleServes counts expired cache entries served in lieu
	// of a re-probe.
	BrownoutActive                bool
	BrownoutEnters, BrownoutExits int64
	BrownoutDirect, StaleServes   int64
	// IntegrityRetries counts attempts failed by a provider-side digest
	// mismatch (corrupted/stale resume detected and retried).
	IntegrityRetries int64
	// Reroutes counts make-before-break route switches performed inside
	// attempts; Parks counts attempts that sat with no usable route, and
	// ParkSeconds their total wait. RouteEvents counts routing-plane
	// events pushed through RouteEvent; RouteConverges and RouteAnnounces
	// are the cache's per-route reactions (entries benched as Converging,
	// holds cleared by an announce).
	Reroutes, Parks                int64
	ParkSeconds                    float64
	RouteEvents                    int64
	RouteConverges, RouteAnnounces int64
	// MultipathJobs counts jobs that ran striped; MultipathDegraded
	// counts JobMultipath jobs that ran single-path instead (brownout,
	// unsupporting executor, or striped-attempt fallback).
	// MultipathHedged and MultipathResent aggregate the striped runs'
	// tail-hedge duplicates and failure re-dispatches;
	// MultipathDuplicateBytes their total duplicated payload.
	MultipathJobs, MultipathDegraded int64
	MultipathHedged, MultipathResent int64
	MultipathDuplicateBytes          float64
	// Stalls counts watchdog-aborted gray transfers; StallReroutes the
	// free failovers they triggered; Canaries the jobs deliberately sent
	// over probation routes to probe re-admission; BudgetParks the jobs
	// parked with *BudgetError because their provider's retry bucket ran
	// dry.
	Stalls, StallReroutes int64
	Canaries, BudgetParks int64
	// QuotaFailures counts attempts that died on provider storage
	// exhaustion (507); QuotaReclaims counts abandoned-session
	// garbage collections that actually freed bytes; ProviderSpills
	// counts jobs moved to an alternate provider after reclaim failed;
	// QuotaParks counts jobs parked with a *QuotaError because every
	// mitigation ran dry.
	QuotaFailures, QuotaReclaims int64
	ProviderSpills, QuotaParks   int64
	// JournalDegraded reports a control journal that fell back to
	// in-memory folding on a full device; JournalENOSPCSaves counts
	// appends rescued by emergency compaction, JournalDropped the
	// records folded in memory only.
	JournalDegraded                    bool
	JournalENOSPCSaves, JournalDropped int64
	// QueueDelayEWMA is the CoDel-smoothed time-in-queue;
	// QueueDelayP99 is the 99th percentile over a trailing window of
	// admitted jobs.
	QueueDelayEWMA     float64
	QueueDelayP99      float64
	Retries, Fallbacks int64
	// Failovers counts mid-job route switches driven by route-down
	// classification; BreakerSkips counts jobs diverted before their
	// first attempt because the chosen route's breaker was open.
	Failovers, BreakerSkips int64
	// BytesResumed and BytesRewritten aggregate checkpoint accounting
	// across all jobs run by a ResumableExecutor.
	BytesResumed   float64
	BytesRewritten float64
	// ChunkRepairs counts manifest chunks re-sent to heal staged-copy
	// corruption (distinct from IntegrityRetries: a repair keeps the
	// transfer, a retry discards it).
	ChunkRepairs int64
	// BreakerTransitions counts lifetime breaker state changes; Breakers
	// is each breaker's current state by "provider|route" key.
	BreakerTransitions      int64
	Breakers                map[string]string
	CacheHits, CacheMisses  int64
	CacheInvalidations      int64
	PerRoute                map[string]RouteStats
	ProviderPeak, DTNPeak   map[string]int
	ProviderInUse, DTNInUse map[string]int
}

// CacheHitRate is hits/(hits+misses), 0 before any lookup.
func (st Stats) CacheHitRate() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// String renders the one-line form the detourd daemon logs.
func (st Stats) String() string {
	line := fmt.Sprintf("queued=%d running=%d done=%d failed=%d expired=%d retries=%d fallbacks=%d rate-limited=%d cache=%.0f%%",
		st.Queued, st.Running, st.Done, st.Failed, st.Expired, st.Retries, st.Fallbacks, st.RateLimited, st.CacheHitRate()*100)
	if st.Shed+st.QueueFullRejects+st.TenantQuotaRejects+st.Hedges > 0 || st.BrownoutActive {
		line += fmt.Sprintf(" shed=%d qfull=%d quota=%d hedges=%d/%d brownout=%v",
			st.Shed, st.QueueFullRejects, st.TenantQuotaRejects, st.HedgeWins, st.Hedges, st.BrownoutActive)
	}
	if st.Stalls+st.Canaries+st.BudgetParks > 0 {
		line += fmt.Sprintf(" stalls=%d stall-reroutes=%d canaries=%d budget-parked=%d",
			st.Stalls, st.StallReroutes, st.Canaries, st.BudgetParks)
	}
	if st.QuotaFailures+st.QuotaReclaims+st.ProviderSpills+st.QuotaParks > 0 {
		line += fmt.Sprintf(" quota-fails=%d reclaims=%d spills=%d quota-parked=%d",
			st.QuotaFailures, st.QuotaReclaims, st.ProviderSpills, st.QuotaParks)
	}
	if st.JournalDegraded || st.JournalENOSPCSaves > 0 {
		line += fmt.Sprintf(" journal-degraded=%v enospc-saves=%d dropped=%d",
			st.JournalDegraded, st.JournalENOSPCSaves, st.JournalDropped)
	}
	return line
}

// Stats returns a snapshot of counters, per-route aggregates, and the
// concurrency high-water marks the caps enforce.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Submitted: s.submitted, RateLimited: s.rateLimited,
		Running: s.running,
		Done:    s.done, Failed: s.failed, Expired: s.expired,
		Shed: s.shed, Late: s.late,
		QueueFullRejects: s.queueFullRej, TenantQuotaRejects: s.quotaRej,
		Hedges: s.hedges, HedgeWins: s.hedgeWins,
		BrownoutDirect: s.brownDirect, StaleServes: s.staleHits,
		IntegrityRetries: s.integrityRetries,
		Reroutes:         s.reroutes, Parks: s.parks,
		ParkSeconds: s.parkSeconds, RouteEvents: s.routeEvents,
		MultipathJobs: s.mpJobs, MultipathDegraded: s.mpDegraded,
		MultipathHedged: s.mpHedged, MultipathResent: s.mpResent,
		MultipathDuplicateBytes: s.mpDuplicateBytes,
		Stalls:                  s.stalls, StallReroutes: s.stallRerouted,
		Canaries: s.canaries, BudgetParks: s.budgetParks,
		QuotaFailures: s.quotaFails, QuotaReclaims: s.quotaReclaims,
		ProviderSpills: s.providerSpills, QuotaParks: s.quotaParks,
		QueueDelayP99: s.delays.percentile(0.99),
		Retries:       s.retries, Fallbacks: s.fallbacks,
		Failovers: s.failovers, BreakerSkips: s.breakerSkip,
		BytesResumed: s.bytesResumed, BytesRewritten: s.bytesRewritten,
		ChunkRepairs: s.chunkRepairs,
		CacheHits:    s.cacheHits, CacheMisses: s.cacheMiss,
		PerRoute: make(map[string]RouteStats, len(s.perRoute)),
	}
	if s.brown != nil {
		st.BrownoutActive = s.brown.active
		st.BrownoutEnters, st.BrownoutExits = s.brown.enters, s.brown.exits
	}
	st.Queued = s.pending - s.running
	for k, v := range s.perRoute {
		st.PerRoute[k] = *v
	}
	s.mu.Unlock()
	if s.codel != nil {
		st.QueueDelayEWMA = s.codel.smoothed()
	}
	if cj := s.cfg.Journal; cj != nil {
		st.JournalDegraded = cj.Degraded()
		st.JournalENOSPCSaves = int64(cj.ENOSPCSaves())
		st.JournalDropped = int64(cj.DroppedAppends())
	}
	st.Breakers, st.BreakerTransitions = s.breakers.snapshot()
	_, _, st.CacheInvalidations = s.cache.Counters()
	st.RouteConverges, st.RouteAnnounces = s.cache.EventCounters()
	st.ProviderInUse, st.ProviderPeak, st.DTNInUse, st.DTNPeak = s.caps.snapshot()
	return st
}
