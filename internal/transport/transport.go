// Package transport provides a blocking, connection-oriented byte
// transport over the simulated WAN — the layer the HTTP, rsync, and
// cloud-SDK code is written against, mirroring how the paper's Java
// clients sat on TCP sockets.
//
// A Conn is one TCP(-ish) connection: Dial pays connect + TLS handshake
// round trips, each direction has its own congestion window that
// slow-starts once per connection (so protocols that reuse a connection
// ramp once, and protocols that reconnect per chunk pay the ramp every
// time), and message delivery adds the path's one-way propagation delay.
package transport

import (
	"errors"
	"fmt"

	"detournet/internal/fluid"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrRefused is returned by Dial when nothing listens at the address.
var ErrRefused = errors.New("transport: connection refused")

// EOF signals the peer closed the connection cleanly.
var EOF = errors.New("transport: EOF")

// ErrReset is returned by Send when the path fails underneath an
// in-flight transfer (a link on the route went down and the fluid flow
// was killed). The connection is dead afterwards: both ends observe a
// close, like a TCP RST.
var ErrReset = errors.New("transport: connection reset")

// DefaultOverheadFactor inflates application bytes to wire bytes
// (TCP/IP/TLS framing, ~3 %).
const DefaultOverheadFactor = 1.03

// minWireBytes floors tiny messages at one packet's worth of bytes.
const minWireBytes = 64

// Net is the transport factory bound to a topology.
type Net struct {
	g      *topology.Graph
	runner *simproc.Runner
	params tcpmodel.Params

	// OverheadFactor converts payload bytes to wire bytes; defaults to
	// DefaultOverheadFactor.
	OverheadFactor float64

	listeners map[string]*Listener
}

// NewNet returns a transport over the graph. params zero-values are
// filled with tcpmodel defaults.
func NewNet(g *topology.Graph, r *simproc.Runner, params tcpmodel.Params) *Net {
	if g == nil || r == nil {
		panic("transport: nil graph or runner")
	}
	return &Net{
		g:              g,
		runner:         r,
		params:         params.WithDefaults(),
		OverheadFactor: DefaultOverheadFactor,
		listeners:      make(map[string]*Listener),
	}
}

// Graph returns the underlying topology.
func (n *Net) Graph() *topology.Graph { return n.g }

// Runner returns the process runner.
func (n *Net) Runner() *simproc.Runner { return n.runner }

// Params returns the default TCP parameters.
func (n *Net) Params() tcpmodel.Params { return n.params }

func addrKey(host string, port int) string { return fmt.Sprintf("%s:%d", host, port) }

// Listener accepts incoming connections at a host:port.
type Listener struct {
	net     *Net
	host    string
	port    int
	backlog *simproc.Queue[*Conn]
	closed  bool
}

// Listen binds a listener. The host must exist in the topology.
func (n *Net) Listen(host string, port int) (*Listener, error) {
	if _, ok := n.g.Node(host); !ok {
		return nil, fmt.Errorf("transport: unknown host %q", host)
	}
	key := addrKey(host, port)
	if _, ok := n.listeners[key]; ok {
		return nil, fmt.Errorf("transport: address %s already bound", key)
	}
	l := &Listener{net: n, host: host, port: port, backlog: simproc.NewQueue[*Conn](n.runner)}
	n.listeners[key] = l
	return l, nil
}

// MustListen is Listen, panicking on error; for static server setup.
func (n *Net) MustListen(host string, port int) *Listener {
	l, err := n.Listen(host, port)
	if err != nil {
		panic(err)
	}
	return l
}

// Accept blocks until a connection arrives and returns its server end.
func (l *Listener) Accept(p *simproc.Proc) (*Conn, error) {
	if l.closed {
		return nil, ErrClosed
	}
	c := l.backlog.Pop(p)
	if c == nil {
		return nil, ErrClosed
	}
	return c, nil
}

// Close unbinds the listener and wakes pending Accepts with an error.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.net.listeners, addrKey(l.host, l.port))
	l.backlog.Push(nil)
}

// Addr returns the listener's bind address.
func (l *Listener) Addr() string { return addrKey(l.host, l.port) }

// DialOpts tunes one connection.
type DialOpts struct {
	// TLS adds the TLS handshake round trips and marks the connection
	// encrypted.
	TLS bool
	// Params overrides the Net's TCP parameters for this connection.
	Params *tcpmodel.Params
}

// Message is one application message as received.
type Message struct {
	// Payload is the application object (HTTP request, rsync frame, ...).
	Payload any
	// Bytes is the payload's size used for wire timing.
	Bytes float64
}

type inboxItem struct {
	msg Message
	err error
}

// Conn is one endpoint of an established connection.
type Conn struct {
	net    *Net
	local  string
	remote string
	port   int
	tls    bool
	params tcpmodel.Params

	rtt      float64
	fwdLinks []*fluid.Link
	fwdDelay float64

	sendCwnd    *tcpmodel.Cwnd
	sendBusy    bool
	sendWaiters []*simproc.Future[bool]

	inbox  *simproc.Queue[inboxItem]
	peer   *Conn
	closed bool
}

// Dial connects from srcHost to dstHost:port, blocking through the
// routing lookup and TCP/TLS handshakes. The returned connection's
// server end is delivered to the destination listener.
func (n *Net) Dial(p *simproc.Proc, srcHost, dstHost string, port int, opts DialOpts) (*Conn, error) {
	l, ok := n.listeners[addrKey(dstHost, port)]
	if !ok || l.closed {
		return nil, fmt.Errorf("%w: %s", ErrRefused, addrKey(dstHost, port))
	}
	fwd, err := n.g.RoutedLinks(srcHost, dstHost)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	rev, err := n.g.RoutedLinks(dstHost, srcHost)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	params := n.params
	if opts.Params != nil {
		params = opts.Params.WithDefaults()
	}
	rtt := fluid.PathDelay(fwd) + fluid.PathDelay(rev)
	p.Sleep(params.ConnectDelay(rtt, opts.TLS))
	if l.closed { // listener vanished during the handshake
		return nil, fmt.Errorf("%w: %s", ErrRefused, addrKey(dstHost, port))
	}

	client := &Conn{
		net: n, local: srcHost, remote: dstHost, port: port, tls: opts.TLS,
		params: params, rtt: rtt,
		fwdLinks: fwd, fwdDelay: fluid.PathDelay(fwd),
		sendCwnd: tcpmodel.NewCwnd(params),
		inbox:    simproc.NewQueue[inboxItem](n.runner),
	}
	server := &Conn{
		net: n, local: dstHost, remote: srcHost, port: port, tls: opts.TLS,
		params: params, rtt: rtt,
		fwdLinks: rev, fwdDelay: fluid.PathDelay(rev),
		sendCwnd: tcpmodel.NewCwnd(params),
		inbox:    simproc.NewQueue[inboxItem](n.runner),
	}
	client.peer = server
	server.peer = client
	l.backlog.Push(server)
	return client, nil
}

// LocalHost returns this endpoint's host name.
func (c *Conn) LocalHost() string { return c.local }

// RemoteHost returns the peer's host name.
func (c *Conn) RemoteHost() string { return c.remote }

// RTT returns the connection's round-trip propagation delay in seconds.
func (c *Conn) RTT() float64 { return c.rtt }

// TLS reports whether the connection carried a TLS handshake.
func (c *Conn) TLS() bool { return c.tls }

// acquireSend serializes senders in this direction, FIFO.
func (c *Conn) acquireSend(p *simproc.Proc) {
	for c.sendBusy {
		f := simproc.NewFuture[bool](c.net.runner)
		c.sendWaiters = append(c.sendWaiters, f)
		simproc.Await(p, f)
	}
	c.sendBusy = true
}

func (c *Conn) releaseSend() {
	c.sendBusy = false
	if len(c.sendWaiters) > 0 {
		f := c.sendWaiters[0]
		c.sendWaiters = c.sendWaiters[1:]
		f.Set(true)
	}
}

// Send transmits payload as size application bytes, blocking until the
// last byte leaves the sender (wire time under the connection's window
// and the path's fair share). The peer receives the message one-way
// propagation later.
func (c *Conn) Send(p *simproc.Proc, payload any, size float64) error {
	if c.closed {
		return ErrClosed
	}
	if size < 0 {
		return fmt.Errorf("transport: negative size %v", size)
	}
	c.acquireSend(p)
	defer c.releaseSend()
	if c.closed {
		return ErrClosed
	}
	wire := size*c.net.OverheadFactor + minWireBytes
	fl := c.net.g.Fluid()
	done := simproc.NewFuture[bool](c.net.runner)
	// Labels are "src->dst:port", prefixed "scope|" when the sending
	// process carries a flow scope — the handle a multipath driver uses
	// to abort one transfer's flows and never another's, even between
	// the same endpoint pair.
	label := fmt.Sprintf("%s->%s:%d", c.local, c.remote, c.port)
	if sc := p.Scope(); sc != "" {
		label = sc + "|" + label
	}
	flow := fl.StartFlow(c.fwdLinks, wire, fluid.FlowOpts{
		Label:      label,
		OnComplete: func(*fluid.Flow) { done.Set(true) },
		OnAbort:    func(*fluid.Flow) { done.Set(false) },
	})
	ramp := tcpmodel.StartRamp(fl, flow, c.sendCwnd, c.params, c.rtt)
	ok := simproc.Await(p, done)
	ramp.Stop()
	if !ok {
		// The path died mid-transfer: tear the connection down so both
		// ends (and any parked receivers) observe the failure.
		c.Close()
		return ErrReset
	}
	peer := c.peer
	msg := Message{Payload: payload, Bytes: size}
	c.net.runner.Engine().After(c.fwdDelay, func() {
		if !peer.closed {
			peer.inbox.Push(inboxItem{msg: msg})
		}
	})
	return nil
}

// Recv blocks until a message (or close) arrives from the peer.
func (c *Conn) Recv(p *simproc.Proc) (Message, error) {
	if c.closed {
		return Message{}, ErrClosed
	}
	it := c.inbox.Pop(p)
	return it.msg, it.err
}

// TryRecv returns a queued message without blocking.
func (c *Conn) TryRecv() (Message, bool) {
	it, ok := c.inbox.TryPop()
	if !ok || it.err != nil {
		return Message{}, false
	}
	return it.msg, true
}

// Close shuts down both directions. The peer's pending and future Recvs
// observe EOF after one-way propagation. Close is idempotent.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	peer := c.peer
	c.net.runner.Engine().After(c.fwdDelay, func() {
		if !peer.closed {
			peer.inbox.Push(inboxItem{err: EOF})
		}
	})
	// Unblock local receivers too.
	c.inbox.Push(inboxItem{err: ErrClosed})
}

// Closed reports whether this end was closed locally.
func (c *Conn) Closed() bool { return c.closed }

// Exchange is the common request/response idiom: send a message, then
// block for the reply.
func (c *Conn) Exchange(p *simproc.Proc, payload any, sendBytes float64) (Message, error) {
	if err := c.Send(p, payload, sendBytes); err != nil {
		return Message{}, err
	}
	return c.Recv(p)
}
