// Grayfail replay: the gray-failure harness behind `make grayfail`,
// the examples/grayfail program, detourd's -grayfail mode, and the
// grayfail acceptance tests. One RunGrayfail call builds a world, arms
// the faults.GrayfailSchedule — degradations that never return an
// error: a provider silently throttling one peering point, a DTN's
// staging disk dying slowly, a link shedding goodput — and drives a
// fixed UBC fleet through the scheduler, either with the health stack
// (stall watchdogs, outlier ejection with canary re-admission, retry
// budgets) or as the DisableHealth ablation that must discover the
// same degradations the hard way, through the bandit's slow relearning.
//
// Everything is deterministic per seed: Workers is 1 (sequential ⇒
// deterministic), faults are pure functions of the virtual clock, and
// the report renderer only iterates sorted data. Same seed, same
// binary ⇒ byte-identical output, which `make check` verifies.
package sched

import (
	"fmt"
	"io"
	"strings"

	"detournet/internal/faults"
	"detournet/internal/health"
	"detournet/internal/scenario"
)

// GrayfailOptions configures one gray-failure replay.
type GrayfailOptions struct {
	// Seed drives the world and the injected error bits.
	Seed int64
	// Jobs is the fleet size (default 60); Size the bytes per transfer
	// (default 60 MB — long enough that degradation windows land
	// mid-flight).
	Jobs int
	Size float64
	// Stack arms the health layer. False runs the DisableHealth
	// ablation: same scheduler, same retries, no gray-failure detection.
	Stack bool
}

// GrayfailOutcome is one replay's complete, deterministic result set.
type GrayfailOutcome struct {
	// Results in completion order.
	Results []Result
	Stats   Stats
	// Transitions is the fault injector's transition log.
	Transitions []string
	// Health is the tracker's transition log (probation entries/exits,
	// budget exhaustions); empty for the ablation.
	Health []string
	// Table and Budgets are the tracker's final entity and retry-bucket
	// snapshots; empty for the ablation.
	Table   []health.EntityHealth
	Budgets []health.RetryBudget
	// StallTimes are the virtual times of watchdog aborts (the
	// health.stall trace events), in order — the detection signal.
	StallTimes []float64
	// VirtualSeconds is the total simulated time the replay spanned.
	VirtualSeconds float64
}

// Goodput is the replay's delivered rate: successfully transferred
// bytes over the virtual seconds the whole fleet took.
func (o GrayfailOutcome) Goodput() float64 {
	if o.VirtualSeconds <= 0 {
		return 0
	}
	var bytes float64
	for _, r := range o.Results {
		if r.Err == nil {
			bytes += r.Job.Size
		}
	}
	return bytes / o.VirtualSeconds
}

// RunGrayfail replays the gray-failure scenario once.
func RunGrayfail(o GrayfailOptions) GrayfailOutcome {
	if o.Jobs <= 0 {
		o.Jobs = 60
	}
	if o.Size <= 0 {
		o.Size = 60e6
	}
	w := scenario.Build(o.Seed)
	inj := faults.NewInjector(w, o.Seed, faults.GrayfailSchedule()...)
	exec := NewSimExecutor(w)
	defer exec.Close()

	var results []Result
	cfg := Config{
		Workers:  1, // sequential ⇒ deterministic
		Executor: exec, Planner: exec,
		MaxAttempts: 4,
		// Longer than the whole replay: a short TTL would let BOTH arms
		// escape a gray window by getting lucky with a re-probe, turning
		// the comparison into a TTL-timing lottery. Pinning it means the
		// ablation can only escape through the bandit's slow relearning
		// and the stack only through the health layer — which is exactly
		// the delta the replay measures.
		CacheTTL: 3600,
		Now:      exec.VirtualNow,
		Sleep:    exec.SleepVirtual,
		OnResult: func(r Result) { results = append(results, r) },
	}
	var tracker *health.Tracker
	if o.Stack {
		tracker = health.New(health.Options{
			Now: exec.VirtualNow, Trace: w.Trace,
			// One canary per few transfers: jobs run tens of seconds, so
			// 60 s (doubling per miss) probes a probationary route often
			// enough to re-admit it promptly once a window closes without
			// flooding it while the window is open.
			CanaryInterval: 60,
		})
		cfg.Health = tracker
	} else {
		cfg.DisableHealth = true
	}
	s := New(cfg)
	s.Start()
	// A single-site fleet: UBC to Google Drive. Its favorite detour via
	// UAlberta is exactly what the schedule silently sickens — first the
	// provider throttles the DTN's peering point (the relay hop crawls,
	// invisibly to the client), then the DTN's staging disk degrades
	// (the first hop crawls, visibly slowly).
	for i := 0; i < o.Jobs; i++ {
		err := s.Submit(Job{
			Tenant: "grayfail", Client: scenario.UBC,
			Provider: scenario.GoogleDrive,
			Name:     fmt.Sprintf("gray-%03d.bin", i), Size: o.Size,
		})
		if err != nil {
			panic(err)
		}
	}
	s.Drain()
	st := s.Stats()
	s.Close()
	out := GrayfailOutcome{
		Results: results, Stats: st,
		Transitions:    inj.Transitions(),
		VirtualSeconds: exec.VirtualNow(),
	}
	for _, ev := range w.Trace.Filter("health.stall") {
		out.StallTimes = append(out.StallTimes, ev.At)
	}
	if tracker != nil {
		out.Health = tracker.Transitions()
		out.Table = tracker.Snapshot()
		out.Budgets = tracker.RetryBudgets()
	}
	return out
}

// GrayDetection is one silent fault window and when the watchdog first
// caught it.
type GrayDetection struct {
	// Fault is the injector kind string (e.g. "provider-slow").
	Fault string
	// Start is the window's first activation time; DetectedAt the first
	// watchdog abort at or after it (-1 when none fired).
	Start      float64
	DetectedAt float64
}

// Latency is detection time minus window start (-1 when undetected).
func (d GrayDetection) Latency() float64 {
	if d.DetectedAt < 0 {
		return -1
	}
	return d.DetectedAt - d.Start
}

// GrayfailVerdict is the acceptance arithmetic over an ablation/stack
// pair.
type GrayfailVerdict struct {
	// ControlGoodput and StackGoodput are delivered bytes/sec; Speedup
	// their ratio (the health stack's recovery factor).
	ControlGoodput float64
	StackGoodput   float64
	// ControlFailed and StackFailed count terminal failures.
	ControlFailed int
	StackFailed   int
	// Detections holds, per gray fault kind, the first watchdog catch.
	Detections []GrayDetection
	// RetrySpent and RetryDenied aggregate the stack's retry-bucket
	// consumption, proving retries stayed under the budget cap.
	RetrySpent  int
	RetryDenied int
}

// Speedup is stack goodput over control goodput (0 when control is 0).
func (v GrayfailVerdict) Speedup() float64 {
	if v.ControlGoodput <= 0 {
		return 0
	}
	return v.StackGoodput / v.ControlGoodput
}

// grayWindowStarts extracts each gray fault kind's first activation
// time from the injector's transition log.
func grayWindowStarts(transitions []string) []GrayDetection {
	kinds := []string{"provider-slow", "dtn-disk-slow"}
	var out []GrayDetection
	for _, kind := range kinds {
		for _, line := range transitions {
			if !strings.Contains(line, " "+kind+" ") || !strings.HasSuffix(line, "active=true") {
				continue
			}
			var t float64
			if _, err := fmt.Sscanf(line, "t=%f", &t); err == nil {
				out = append(out, GrayDetection{Fault: kind, Start: t, DetectedAt: -1})
			}
			break
		}
	}
	return out
}

// CompareGrayfail scores the DisableHealth ablation against the health
// stack for the same fleet and seed.
func CompareGrayfail(control, stack GrayfailOutcome) GrayfailVerdict {
	v := GrayfailVerdict{
		ControlGoodput: control.Goodput(),
		StackGoodput:   stack.Goodput(),
	}
	for _, r := range control.Results {
		if r.Err != nil {
			v.ControlFailed++
		}
	}
	for _, r := range stack.Results {
		if r.Err != nil {
			v.StackFailed++
		}
	}
	v.Detections = grayWindowStarts(stack.Transitions)
	for i := range v.Detections {
		for _, t := range stack.StallTimes {
			if t >= v.Detections[i].Start {
				v.Detections[i].DetectedAt = t
				break
			}
		}
	}
	for _, b := range stack.Budgets {
		v.RetrySpent += b.Spent
		v.RetryDenied += b.Denied
	}
	return v
}

// WriteGrayfailReport renders the deterministic with/without report the
// grayfail example and detourd's -grayfail mode print.
func WriteGrayfailReport(out io.Writer, control, stack GrayfailOutcome) {
	line := func(label string, o GrayfailOutcome) {
		st := o.Stats
		fmt.Fprintf(out, "%-8s %3d done %3d failed | %d stalls %d stall-reroutes %d canaries %d budget-parked | %d retries | goodput %.2f MB/s | %.0f virtual s\n",
			label, st.Done, st.Failed, st.Stalls, st.StallReroutes, st.Canaries,
			st.BudgetParks, st.Retries, o.Goodput()/1e6, o.VirtualSeconds)
	}
	fmt.Fprintf(out, "Grayfail: %d transfers vs silent degradation (%d fault transitions, hard errors only in the t=650-770 burst)\n",
		len(stack.Results), len(stack.Transitions))
	line("control", control)
	line("stack", stack)

	v := CompareGrayfail(control, stack)
	fmt.Fprintf(out, "goodput %.2fx the no-health ablation\n", v.Speedup())
	fmt.Fprintln(out, "detection (first watchdog abort at or after each silent window opens):")
	for _, d := range v.Detections {
		if d.DetectedAt < 0 {
			fmt.Fprintf(out, "  %-14s window t=%-5.0f undetected\n", d.Fault, d.Start)
			continue
		}
		fmt.Fprintf(out, "  %-14s window t=%-5.0f first stall t=%-7.1f latency %.1fs\n",
			d.Fault, d.Start, d.DetectedAt, d.Latency())
	}
	fmt.Fprintln(out, "health transitions:")
	for _, tr := range stack.Health {
		fmt.Fprintf(out, "  %s\n", tr)
	}
	fmt.Fprintln(out, "health table:")
	for _, e := range stack.Table {
		state := "healthy"
		if e.Probation {
			state = "probation"
		}
		fmt.Fprintf(out, "  %-9s %-16s baseline %6.2f MB/s  %-9s stalls %d  obs %d\n",
			e.Class, e.Entity, e.Baseline/1e6, state, e.Stalls, e.Observations)
	}
	fmt.Fprintln(out, "retry budgets:")
	for _, b := range stack.Budgets {
		fmt.Fprintf(out, "  %-12s tokens %.1f  spent %d  denied %d\n",
			b.Provider, b.Tokens, b.Spent, b.Denied)
	}
}
