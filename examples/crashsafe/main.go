// Crashsafe: the crash-consistency sweep. A journaled scheduler
// drives a fixed fleet and is killed at every enumerated control-plane
// crash point in turn — after a submit record, before/after an attempt
// record, mid-write of a journal record (torn append), mid-transfer on
// either hop, in the commit-versus-ack window around the finish
// record, and at the start of a compaction — then restarted on the
// same journal device. Replay truncates any torn tail, re-seats
// journaled finishes, and resumes in-flight transfers from their
// checkpoints under their original idempotent attempt IDs. Two extra
// legs decay the storage itself: staged chunks rot while the process
// is down (recovery re-fetches only the damaged chunks), and the
// journal itself is bit-rotted and torn (recovery trusts the longest
// valid prefix and prechecks its way past the lost records).
//
// Every leg must converge byte-identical to the crash-free control
// with no object committed twice. Output is byte-identical per seed,
// which `make check` verifies by running this program twice.
package main

import (
	"flag"
	"fmt"
	"os"

	"detournet/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 2015, "world/fault seed")
	flag.Parse()

	control, legs := sched.RunCrashsafeSweep(*seed)
	sched.WriteCrashsafeReport(os.Stdout, control, legs)
	decay := sched.RunCrashsafe(sched.CrashsafeOptions{Seed: *seed, Decay: true})
	sched.WriteCrashsafeDecayReport(os.Stdout, decay)
	if err := sched.CrashsafeSanity(control, legs); err != nil {
		fmt.Fprintf(os.Stderr, "crashsafe: %v\n", err)
		os.Exit(1)
	}
}
