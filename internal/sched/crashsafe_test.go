package sched

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"detournet/internal/core"
	"detournet/internal/journal"
	"detournet/internal/rsyncx"
	"detournet/internal/sdk"
)

// The full sweep (control + 11 legs) is deterministic and shared by
// every acceptance test below: run it once.
var (
	sweepOnce    sync.Once
	sweepControl CrashsafeOutcome
	sweepLegs    []CrashsafeLeg
)

func crashsafeSweep(t *testing.T) (CrashsafeOutcome, []CrashsafeLeg) {
	t.Helper()
	sweepOnce.Do(func() { sweepControl, sweepLegs = RunCrashsafeSweep(7) })
	return sweepControl, sweepLegs
}

func TestCrashsafeControlArm(t *testing.T) {
	control, _ := crashsafeSweep(t)
	if control.Crashed {
		t.Fatal("control arm crashed")
	}
	if got := control.Done(); got != 60 {
		t.Fatalf("control done = %d, want 60", got)
	}
	if got := len(control.Listing); got != 60 {
		t.Fatalf("control listing = %d objects, want 60", got)
	}
	if control.Compactions < 1 {
		t.Fatal("control run never compacted the journal")
	}
	if control.MaxCommits != 1 {
		t.Fatalf("control MaxCommits = %d, want 1", control.MaxCommits)
	}
	if control.IntegrityRetries != 0 {
		t.Fatalf("control IntegrityRetries = %d, want 0", control.IntegrityRetries)
	}
}

// TestCrashsafeSweepAcceptance is the tentpole's acceptance gate: a
// scheduler killed at ANY enumerated crash point (plus the bit-rot
// restart and the corrupted-journal leg) restarts, replays, and
// completes the fleet byte-identical with zero duplicate provider
// commits and a bounded re-send cost.
func TestCrashsafeSweepAcceptance(t *testing.T) {
	_, legs := crashsafeSweep(t)
	// Re-send bound: a crash costs at most a rewind of in-flight work —
	// never a whole-fleet rewrite. The bit-rot leg re-fetches exactly
	// the corrupted chunks (2), so two manifest chunks plus slack.
	maxResent := float64(2*rsyncx.ManifestChunk) + 1e5
	for _, l := range legs {
		o, v := l.Outcome, l.Verdict
		if !o.Crashed {
			t.Errorf("%s: kill never fired", l.label())
			continue
		}
		if got := o.Done(); got != 60 {
			t.Errorf("%s: done = %d, want 60", l.label(), got)
		}
		if got := len(o.Results); got != 60 {
			t.Errorf("%s: results = %d, want 60", l.label(), got)
		}
		names := make(map[string]bool, len(o.Results))
		for _, r := range o.Results {
			if names[r.Job.Name] {
				t.Errorf("%s: duplicate result for %s", l.label(), r.Job.Name)
			}
			names[r.Job.Name] = true
		}
		if !v.ByteIdentical {
			t.Errorf("%s: provider listing diverged from control", l.label())
		}
		if v.MaxCommits != 1 {
			t.Errorf("%s: MaxCommits = %d, want 1 (duplicate provider commit)", l.label(), v.MaxCommits)
		}
		if o.IntegrityRetries != 0 {
			t.Errorf("%s: IntegrityRetries = %d, want 0 (whole-transfer discard)", l.label(), o.IntegrityRetries)
		}
		if v.ResentBytes > maxResent {
			t.Errorf("%s: resent %.0f B > bound %.0f B", l.label(), v.ResentBytes, maxResent)
		}
	}
}

// TestCrashsafeCoverage asserts the sweep actually exercises every
// enumerated crash point — a point nothing reaches is dead injection.
func TestCrashsafeCoverage(t *testing.T) {
	_, legs := crashsafeSweep(t)
	totals := make(map[string]int)
	for _, l := range legs {
		for pt, n := range l.Outcome.Hits {
			totals[pt] += n
		}
	}
	for _, pt := range CrashPoints() {
		if totals[pt] == 0 {
			t.Errorf("crash point %q never reached across the sweep", pt)
		}
	}
}

// TestCrashsafeBitRotRepair pins the chunk-level repair contract: a
// decayed-disk restart re-fetches only the damaged chunks and never
// falls back to whole-transfer discard.
func TestCrashsafeBitRotRepair(t *testing.T) {
	_, legs := crashsafeSweep(t)
	found := false
	for _, l := range legs {
		if !l.BitRot {
			continue
		}
		found = true
		o := l.Outcome
		if o.RottedChunks == 0 {
			t.Fatalf("%s: no chunks rotted — the leg tests nothing", l.label())
		}
		if o.ChunkRepairs == 0 {
			t.Errorf("%s: ChunkRepairs = 0, want > 0", l.label())
		}
		if o.ChunkRepairs != o.RottedChunks {
			t.Errorf("%s: ChunkRepairs = %d, RottedChunks = %d — repair granularity drifted",
				l.label(), o.ChunkRepairs, o.RottedChunks)
		}
		if o.IntegrityRetries != 0 {
			t.Errorf("%s: IntegrityRetries = %d, want 0", l.label(), o.IntegrityRetries)
		}
		// The re-send cost is the repaired chunks, not the transfer.
		bound := float64(o.ChunkRepairs*rsyncx.ManifestChunk) + 1e5
		if l.Verdict.ResentBytes > bound {
			t.Errorf("%s: resent %.0f B > %d repaired chunks (%.0f B)",
				l.label(), l.Verdict.ResentBytes, o.ChunkRepairs, bound)
		}
	}
	if !found {
		t.Fatal("sweep has no bit-rot leg")
	}
}

// TestCrashsafeJournalRot pins recovery from a damaged journal: bit
// rot flips log bytes mid-run, a torn append kills the control plane,
// and the restart — holding only the longest valid prefix — still
// converges byte-identical with no duplicate commits (the lost-record
// window is covered by the provider precheck).
func TestCrashsafeJournalRot(t *testing.T) {
	_, legs := crashsafeSweep(t)
	found := false
	for _, l := range legs {
		if !l.JournalFaults {
			continue
		}
		found = true
		o := l.Outcome
		if !o.Crashed {
			t.Fatal("journal-faults leg: torn append never killed")
		}
		if o.TruncatedBytes == 0 {
			t.Errorf("journal-faults leg: replay truncated nothing — the rot missed the log")
		}
		if !l.Verdict.ByteIdentical || l.Verdict.MaxCommits != 1 {
			t.Errorf("journal-faults leg: identical=%v maxCommits=%d",
				l.Verdict.ByteIdentical, l.Verdict.MaxCommits)
		}
	}
	if !found {
		t.Fatal("sweep has no journal-faults leg")
	}
}

// TestCrashsafeDeterminism renders the full report twice from
// independent runs: same seed, same binary ⇒ byte-identical output.
func TestCrashsafeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full second sweep")
	}
	var a, b bytes.Buffer
	control, legs := crashsafeSweep(t)
	WriteCrashsafeReport(&a, control, legs)
	control2, legs2 := RunCrashsafeSweep(7)
	WriteCrashsafeReport(&b, control2, legs2)
	if a.String() != b.String() {
		t.Fatalf("sweep report not deterministic:\n--- first ---\n%s--- second ---\n%s", a.String(), b.String())
	}
	var da, db bytes.Buffer
	WriteCrashsafeDecayReport(&da, RunCrashsafe(CrashsafeOptions{Seed: 7, Decay: true}))
	WriteCrashsafeDecayReport(&db, RunCrashsafe(CrashsafeOptions{Seed: 7, Decay: true}))
	if da.String() != db.String() {
		t.Fatalf("decay report not deterministic:\n%s\nvs\n%s", da.String(), db.String())
	}
}

// TestCrashsafeDecay runs the storage-decay arm: DTN torn writes, a
// mid-fleet DTN crash, and staged-chunk rot under a live journal. The
// fleet must still converge exactly once per object.
func TestCrashsafeDecay(t *testing.T) {
	o := RunCrashsafe(CrashsafeOptions{Seed: 7, Decay: true})
	if got := o.Done(); got != 60 {
		t.Fatalf("decay done = %d, want 60", got)
	}
	if o.MaxCommits != 1 {
		t.Fatalf("decay MaxCommits = %d, want 1", o.MaxCommits)
	}
	if len(o.Transitions) == 0 {
		t.Fatal("decay arm injected nothing")
	}
}

// TestCrashsafeFileDevice runs the torn-append kill against a real
// file-backed journal: the torn tail hits the filesystem and the
// restart truncates it in place.
func TestCrashsafeFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "control.wal")
	o := RunCrashsafe(CrashsafeOptions{
		Seed: 7, Point: CrashTornAppend, Occurrence: 600, JournalPath: path,
	})
	if !o.Crashed {
		t.Fatal("file-backed torn-append never fired")
	}
	if o.TruncatedBytes == 0 {
		t.Fatal("file-backed replay truncated nothing")
	}
	control, _ := crashsafeSweep(t)
	v := CompareCrashsafe(control, o)
	if !v.ByteIdentical || v.MaxCommits != 1 {
		t.Fatalf("file-backed leg: identical=%v maxCommits=%d", v.ByteIdentical, v.MaxCommits)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("journal file missing or empty: %v", err)
	}
}

func csJob(name string) Job {
	return Job{
		Tenant: "t", Client: "ubco", Provider: "gdrive",
		Name: name, Size: 1e6, MD5: rsyncx.Checksum([]byte(name)),
	}
}

// TestControlJournalRecovery pins the replay fold: finished results
// re-seat, pending jobs recover their checkpoints and stable attempt
// IDs, retry spends and cap holds survive, and TakeRecovered hands the
// checkpoint out exactly once.
func TestControlJournalRecovery(t *testing.T) {
	dev := journal.NewMemDevice()
	cj, rec, err := NewControlJournal(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Finished)+len(rec.Pending) != 0 || cj.RecoveredMode() {
		t.Fatal("fresh journal claims recovered state")
	}

	j0, j1, j2 := csJob("a.bin"), csJob("b.bin"), csJob("c.bin")
	cj.NoteSubmit(j0)
	cj.NoteSubmit(j1)
	cj.NoteSubmit(j2)
	cj.NoteAttempt(j0, 1, core.DirectRoute)
	cj.NoteFinish(&Result{Job: j0, Route: core.DirectRoute, Seconds: 2, Attempts: 1})
	cj.NoteAttempt(j1, 2, core.Route{Kind: core.Detour, Via: "edmn1"})
	ck := &core.Checkpoint{
		Hop1Via: "edmn1", Hop1High: 4e5, HasSession: true,
		Session:      sdk.SessionToken{Provider: "gdrive", Ref: "sess-1", Name: j1.Name, Size: j1.Size, Offset: 2e5},
		BytesResumed: 1e5,
	}
	cj.NoteCkpt(j1, ck, 6e5)
	cj.NoteRetry("gdrive")
	cj.NoteRetry("gdrive")
	cj.NoteCap("gdrive", "edmn1", true)
	wantID := cj.AttemptID(j1.Name)
	if wantID == "" {
		t.Fatal("no attempt ID for submitted job")
	}

	cj2, rec2, err := NewControlJournal(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !cj2.RecoveredMode() {
		t.Fatal("reopened journal not in recovered mode")
	}
	if len(rec2.Finished) != 1 || rec2.Finished[0].Job.Name != j0.Name || rec2.Finished[0].Err != nil {
		t.Fatalf("recovered finished = %+v", rec2.Finished)
	}
	if len(rec2.Pending) != 2 || rec2.Pending[0].Job.Name != j1.Name || rec2.Pending[1].Job.Name != j2.Name {
		t.Fatalf("recovered pending = %+v", rec2.Pending)
	}
	pj := rec2.Pending[0]
	if !pj.HasCkpt || pj.Ck.Hop1Via != "edmn1" || pj.Ck.Session.Ref != "sess-1" || pj.PriorAttempts != 2 {
		t.Fatalf("recovered checkpoint = %+v", pj)
	}
	restored := pj.Checkpoint()
	if restored.AttemptID != wantID || !restored.HasSession || restored.Hop1High != 4e5 {
		t.Fatalf("reconstituted checkpoint = %+v", restored)
	}
	if rec2.RetrySpent["gdrive"] != 2 {
		t.Fatalf("retry spends = %v", rec2.RetrySpent)
	}
	if rec2.CapsHeld["gdrive|edmn1"] != 1 {
		t.Fatalf("caps held = %v", rec2.CapsHeld)
	}

	// Resubmission reuses the sequence number — the idempotency key is
	// stable across incarnations.
	cj2.NoteSubmit(j1)
	if got := cj2.AttemptID(j1.Name); got != wantID {
		t.Fatalf("attempt ID changed across restart: %q vs %q", got, wantID)
	}
	if got := cj2.TakeRecovered(j1.Name); got == nil || !got.HasCkpt {
		t.Fatalf("TakeRecovered = %+v", got)
	}
	if got := cj2.TakeRecovered(j1.Name); got != nil && (got.HasCkpt || got.PriorAttempts != 0) {
		t.Fatalf("TakeRecovered handed out twice: %+v", got)
	}
}

// TestControlJournalDupFinish pins the crash-between-commit-and-ack
// window: a finish record journaled twice folds to one Result.
func TestControlJournalDupFinish(t *testing.T) {
	dev := journal.NewMemDevice()
	cj, _, _ := NewControlJournal(dev)
	j := csJob("dup.bin")
	cj.NoteSubmit(j)
	res := Result{Job: j, Route: core.DirectRoute, Attempts: 1}
	cj.NoteFinish(&res)
	cj.NoteFinish(&res) // replayed ack: journaled again
	_, rec, err := NewControlJournal(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Finished) != 1 || rec.DupFinishes != 1 {
		t.Fatalf("finished=%d dup=%d, want 1/1", len(rec.Finished), rec.DupFinishes)
	}
	if rec.Finished[0].Attempts != 1 {
		t.Fatalf("replayed attempts = %d, want 1 (double-counted)", rec.Finished[0].Attempts)
	}
}

// TestControlJournalCompactEquivalence pins the snapshot contract:
// replay of (snapshot + tail) equals replay of the full log.
func TestControlJournalCompactEquivalence(t *testing.T) {
	devA, devB := journal.NewMemDevice(), journal.NewMemDevice()
	cjA, _, _ := NewControlJournal(devA)
	cjB, _, _ := NewControlJournal(devB)
	cjA.SetCompactEvery(2)
	cjB.SetCompactEvery(0)
	for _, cj := range []*ControlJournal{cjA, cjB} {
		for i := 0; i < 5; i++ {
			cj.NoteSubmit(csJob(crashsafeJobName(i)))
		}
		for i := 0; i < 4; i++ {
			j := csJob(crashsafeJobName(i))
			cj.NoteAttempt(j, 1, core.DirectRoute)
			cj.NoteFinish(&Result{Job: j, Route: core.DirectRoute, Attempts: 1})
		}
		cj.NoteRetry("gdrive")
		ck := &core.Checkpoint{Hop1Via: "vncv1", Hop1High: 5e5}
		cj.NoteCkpt(csJob(crashsafeJobName(4)), ck, 5e5)
	}
	if cjA.Compactions() != 2 {
		t.Fatalf("compactions = %d, want 2", cjA.Compactions())
	}
	if devA.Size() >= devB.Size() {
		t.Fatalf("compacted device (%d B) not smaller than raw log (%d B)", devA.Size(), devB.Size())
	}
	_, recA, _ := NewControlJournal(devA)
	_, recB, _ := NewControlJournal(devB)
	if len(recA.Finished) != len(recB.Finished) || len(recA.Finished) != 4 {
		t.Fatalf("finished: compacted %d vs raw %d", len(recA.Finished), len(recB.Finished))
	}
	for i := range recA.Finished {
		if recA.Finished[i].Job.Name != recB.Finished[i].Job.Name {
			t.Fatalf("finished[%d]: %s vs %s", i, recA.Finished[i].Job.Name, recB.Finished[i].Job.Name)
		}
	}
	if len(recA.Pending) != 1 || len(recB.Pending) != 1 ||
		recA.Pending[0].Job.Name != recB.Pending[0].Job.Name ||
		!recA.Pending[0].HasCkpt || recA.Pending[0].Ck.Hop1Via != "vncv1" {
		t.Fatalf("pending: compacted %+v vs raw %+v", recA.Pending, recB.Pending)
	}
	if recA.RetrySpent["gdrive"] != recB.RetrySpent["gdrive"] {
		t.Fatalf("retry spends: %v vs %v", recA.RetrySpent, recB.RetrySpent)
	}
}

// TestControlJournalTornKill pins the torn-append crash point: the
// record under the pen is torn mid-write, the control plane dies with
// it, and replay truncates exactly that tail.
func TestControlJournalTornKill(t *testing.T) {
	dev := journal.NewMemDevice()
	cj, _, _ := NewControlJournal(dev)
	cj.NoteSubmit(csJob("safe.bin"))
	cj.TornJournal(true)
	cj.NoteSubmit(csJob("torn.bin"))
	if !cj.Killed() {
		t.Fatal("torn append did not kill the control plane")
	}
	cj.NoteSubmit(csJob("ghost.bin")) // dead journal: must not land
	_, rec, err := NewControlJournal(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("replay truncated nothing")
	}
	if len(rec.Pending) != 1 || rec.Pending[0].Job.Name != "safe.bin" {
		t.Fatalf("recovered pending = %+v, want only safe.bin", rec.Pending)
	}
}
