// Package multipath stripes one logical upload into fixed-size chunks
// and drives them concurrently over K routes — direct plus up to N
// detours — recovering the capacity a single-path chooser leaves on the
// table when different paths bottleneck in different places (the
// paper's UBC case: the PacificWave direct hand-off and the UAlberta
// detour are limited by disjoint links).
//
// The chunk scheduler is pull-based and work-conserving: an idle path
// claims the lowest pending chunk, so faster paths automatically carry
// a throughput-proportional share without rate estimation. At the tail,
// when no pending chunks remain, an idle path may re-dispatch a
// straggler's in-flight chunk — a hedged duplicate, budgeted by
// HedgeMaxFrac so duplication can never amplify load past a fixed
// fraction of the transfer. Each path carries its own core.Checkpoint,
// so a path failure or reroute loses at most the one chunk it had in
// flight; the chunk returns to the pending set and another path carries
// it. A path whose route the routing plane has withdrawn (or whose DTN
// is draining) stops claiming new chunks but keeps polling — drained
// make-before-break, not torn down — and resumes claiming when the
// route is announced again.
//
// Chunks upload as independent part objects through each provider's own
// session semantics (Drive offset sessions, Dropbox correct_offset,
// OneDrive ranges — one resumable session per chunk); ordered
// reassembly is the provider-side compose commit (Env.Commit), which
// concatenates the parts in index order into the final object.
//
// Everything runs inside one simulation workload: path processes are
// cooperative simproc processes, shared scheduler state needs no locks,
// and claim order is deterministic per seed — the property the
// determinism regression tests pin down.
package multipath

import (
	"errors"
	"fmt"
	"math"

	"detournet/internal/core"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/stats"
	"detournet/internal/tracelog"
)

// PartName returns the deterministic provider-object name of chunk i of
// a striped upload. Part names embed the final name, so concurrent
// striped uploads never collide.
func PartName(name string, i int) string {
	return fmt.Sprintf("%s.mp%04d", name, i)
}

// FlowScope returns the simproc flow scope a striped transfer's path
// processes run under. Every transport flow a lane starts (and, via the
// DTN agent's scope adoption, every second-hop relay flow it causes)
// carries this scope in its label, so Env.Abort can kill exactly this
// transfer's flows — never another transfer's between the same
// endpoints.
func FlowScope(name string) string {
	return "mp:" + name
}

// Uploader drives one chunk object over one path. Implementations wrap
// core.DirectUploadResumable or (*core.DetourClient).UploadResumable;
// the checkpoint is the path's own and carries resume state across
// retries of the same chunk.
type Uploader interface {
	UploadChunk(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error
}

// UploaderFunc adapts a function to the Uploader interface.
type UploaderFunc func(*simproc.Proc, string, float64, *core.Checkpoint) error

// UploadChunk implements Uploader.
func (f UploaderFunc) UploadChunk(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error {
	return f(p, part, size, ck)
}

// Path is one lane of a striped transfer.
type Path struct {
	// ID is the path's index; report lines and trace events carry it.
	ID int
	// Route is the lane's route, for usability checks and reporting.
	Route core.Route
	// Upload drives one chunk over this lane; required.
	Upload Uploader
}

// Env is the striped transfer's view of the surrounding world. Every
// field is optional except Commit when the caller wants the compose
// step performed.
type Env struct {
	// Usable reports whether a route can carry work right now; existing
	// marks a retry of a chunk the path already holds progress for (a
	// draining DTN finishes existing work but refuses new). Nil means
	// always usable.
	Usable func(route core.Route, existing bool) bool
	// Abort tears down the path's in-flight transport flows — how the
	// driver cancels the losing duplicate of a hedged chunk the moment
	// the winner commits. Nil means losers run to completion (their full
	// chunk counts as duplicate bytes).
	Abort func(path Path)
	// Commit performs the ordered reassembly once every chunk has
	// landed: compose the parts, in index order, into the final object.
	// Nil skips the commit (tests that only exercise the scheduler).
	Commit func(p *simproc.Proc, parts []string) error
	// Budget, when set (and Abort is set), arms the per-lane stall
	// watchdog: it returns the gray-failure time budget for moving size
	// bytes over route (the health layer's adaptive floor). A dispatch
	// that outlives its budget is aborted; the lane sees a reset, the
	// chunk releases to a healthier lane, and a lane that keeps stalling
	// retires through the normal consecutive-failure path. Nil disables
	// lane watchdogs. A non-positive returned budget exempts that
	// dispatch.
	Budget func(route core.Route, size float64) float64
	// Trace receives mp.* events; nil is safe.
	Trace *tracelog.Log
}

// Spec describes one striped upload.
type Spec struct {
	// Name is the final object name; Size the total bytes.
	Name string
	Size float64
	// MD5 is the whole-file digest recorded at commit; empty skips it.
	MD5 string
	// Chunk is the stripe unit in bytes (default core.DefaultResumeChunk).
	Chunk float64
	// HedgeMaxFrac caps duplicated bytes as a fraction of Size — the
	// same amplification-cap idea as the scheduler's hedge budget
	// (default 0.15; negative disables tail hedging).
	HedgeMaxFrac float64
	// StragglerQuantile: at the tail, only paths whose observed rate is
	// at or below this quantile of all live path rates are hedge targets
	// (default 0.5).
	StragglerQuantile float64
	// StallTimeout fails the transfer when no chunk commits for this
	// many virtual seconds (default 900) — the backstop against every
	// path sitting drained forever.
	StallTimeout float64
	// TailSplit divides the final K-chunks-worth of bytes (K = number
	// of paths) into Chunk/TailSplit stripes (default 4; 1 disables).
	// Small tail chunks make the lanes finish nearly together — without
	// them, every lane strands up to one full chunk at the end, and on
	// a shared-bottleneck site (the paper's UCLA capped last mile) that
	// staggered tail is pure loss against the single-path baseline.
	TailSplit int
}

func (s Spec) withDefaults() Spec {
	if s.Chunk <= 0 {
		s.Chunk = core.DefaultResumeChunk
	}
	if s.HedgeMaxFrac == 0 {
		s.HedgeMaxFrac = 0.15
	}
	if s.StragglerQuantile <= 0 || s.StragglerQuantile > 1 {
		s.StragglerQuantile = 0.5
	}
	if s.StallTimeout <= 0 {
		s.StallTimeout = 900
	}
	if s.TailSplit <= 0 {
		s.TailSplit = 4
	}
	return s
}

// Layout returns the stripe sizes for a transfer over k paths: full
// chunk-sized stripes for the head, then chunk/split stripes over the
// final k-chunks-worth of bytes. Transfers too small to have a head are
// cut uniformly at chunk. Exported so tests and tools can recover the
// exact chunk boundaries of a striped transfer from its report.
func Layout(size, chunk float64, k, split int) []float64 {
	var sizes []float64
	cut := func(bytes, unit float64) {
		for bytes > 0 {
			n := unit
			if bytes < n {
				n = bytes
			}
			sizes = append(sizes, n)
			bytes -= n
		}
	}
	tail := chunk * float64(k)
	if split <= 1 || k <= 1 || size <= tail+chunk {
		cut(size, chunk)
		return sizes
	}
	head := math.Floor((size-tail)/chunk) * chunk
	cut(head, chunk)
	cut(size-head, chunk/float64(split))
	return sizes
}

// maxDispatch bounds dispatches per chunk (failures and hedges
// combined) so a poisoned chunk cannot loop forever.
const maxDispatch = 8

// laneWatchInterval is the lane watchdog's poll period in virtual
// seconds (matching the health tracker's default check interval).
const laneWatchInterval = 5

// maxPathFails retires a path after this many consecutive failures.
const maxPathFails = 4

// ErrNoPath reports a striped transfer whose every path retired or
// stalled before the chunks were done.
var ErrNoPath = errors.New("multipath: no usable path")

type chunkStatus int

const (
	chunkPending chunkStatus = iota
	chunkInflight
	chunkDone
)

type chunk struct {
	status      chunkStatus
	size        float64
	owner       int // path ID of the primary dispatch, while inflight
	dispatches  int
	committedBy int
}

// pathState is one lane's live bookkeeping.
type pathState struct {
	path      Path
	up        Uploader
	ck        core.Checkpoint
	current   int     // chunk in flight, -1 when idle
	startedAt float64 // when the in-flight dispatch began
	busy      float64
	bytes    float64 // committed bytes (first completions only)
	dup      float64 // duplicate bytes this path moved and lost
	chunks   []int   // committed chunk ids in commit order
	fails    int
	consec   int
	steals   int
	drains   int
	draining bool
	retired  bool
}

// state is the shared chunk ledger. Path processes are cooperative
// (simproc), so no locking: exactly one process touches it at a time.
type state struct {
	spec   Spec
	env    Env
	chunks []chunk
	paths  []*pathState

	pending   int
	done      int
	dupBudget float64
	resent    int
	hedged    int

	lastProgress float64
	finished     bool
	finishedAt   float64 // when the last chunk committed
	err          error
	exitQ        *simproc.Queue[int]
}

// Run drives one striped upload to completion inside the calling
// simulation process. It spawns one sub-process per path, waits for the
// chunk ledger to drain (or fail), performs the Commit, and returns the
// deterministic per-path report.
func Run(p *simproc.Proc, spec Spec, paths []Path, env Env) (Report, error) {
	spec = spec.withDefaults()
	if len(paths) == 0 {
		return Report{}, fmt.Errorf("multipath: no paths")
	}
	if spec.Name == "" || spec.Size <= 0 {
		return Report{}, fmt.Errorf("multipath: spec needs a name and positive size")
	}
	sizes := Layout(spec.Size, spec.Chunk, len(paths), spec.TailSplit)
	n := len(sizes)
	st := &state{
		spec:         spec,
		env:          env,
		chunks:       make([]chunk, n),
		pending:      n,
		dupBudget:    spec.HedgeMaxFrac * spec.Size,
		lastProgress: float64(p.Now()),
		exitQ:        simproc.NewQueue[int](p.Runner()),
	}
	if spec.HedgeMaxFrac < 0 {
		st.dupBudget = 0
	}
	for i := range st.chunks {
		st.chunks[i] = chunk{size: sizes[i], owner: -1, committedBy: -1}
	}
	for _, ph := range paths {
		if ph.Upload == nil {
			return Report{}, fmt.Errorf("multipath: path %d has no uploader", ph.ID)
		}
		st.paths = append(st.paths, &pathState{path: ph, up: ph.Upload, current: -1})
	}

	start := float64(p.Now())
	r := p.Runner()
	for _, ps := range st.paths {
		ps := ps
		env.Trace.Emit("mp.path.start", map[string]any{
			tracelog.AttrPath: ps.path.ID, tracelog.AttrRoute: ps.path.Route.String(),
		})
		r.Go(fmt.Sprintf("mp:%s:path%d", spec.Name, ps.path.ID), func(pp *simproc.Proc) {
			pp.SetScope(FlowScope(spec.Name))
			st.runPath(pp, ps)
		})
	}
	if env.Budget != nil && env.Abort != nil {
		r.Go(fmt.Sprintf("mp:%s:watchdog", spec.Name), func(pp *simproc.Proc) {
			st.watchLanes(pp)
		})
	}
	for range st.paths {
		st.exitQ.Pop(p)
	}
	if st.err == nil && st.done < n {
		st.err = fmt.Errorf("multipath: %d/%d chunks landed: %w", st.done, n, ErrNoPath)
	}
	if st.err == nil && env.Commit != nil {
		parts := make([]string, n)
		for i := range parts {
			parts[i] = PartName(spec.Name, i)
		}
		if err := env.Commit(p, parts); err != nil {
			st.err = fmt.Errorf("multipath: commit: %w", err)
		}
	}
	// Seconds measures first dispatch to last chunk commit — the data
	// plane. An unaborted hedge loser draining after the commit (or the
	// compose control call) is not transfer time.
	end := float64(p.Now())
	if st.finished && st.err == nil && st.finishedAt > 0 {
		end = st.finishedAt
	}
	rep := st.report(end - start)
	env.Trace.Emit("mp.transfer.done", map[string]any{
		"name": spec.Name, "bytes": spec.Size, "seconds": rep.Seconds,
		"chunks": n, "duplicate": rep.DuplicateBytes, "ok": st.err == nil,
	})
	return rep, st.err
}

func (st *state) usable(ps *pathState, existing bool) bool {
	if st.env.Usable == nil {
		return true
	}
	return st.env.Usable(ps.path.Route, existing)
}

// stalled fails the whole transfer when nothing has committed for
// StallTimeout; it returns true once the transfer is finished (stalled
// now or finished earlier) so pollers know to exit.
func (st *state) stalled(p *simproc.Proc) bool {
	if st.finished {
		return true
	}
	if float64(p.Now())-st.lastProgress > st.spec.StallTimeout {
		st.fail(fmt.Errorf("multipath: no chunk committed in %.0fs: %w", st.spec.StallTimeout, ErrNoPath))
		return true
	}
	return false
}

func (st *state) fail(err error) {
	if st.err == nil {
		st.err = err
	}
	st.finished = true
}

// claim hands the path its next chunk: the lowest pending one, or — at
// the tail, under the duplication budget — a straggler's in-flight
// chunk as a hedged duplicate. ok=false means nothing to do right now.
func (st *state) claim(ps *pathState, now float64) (cid int, dup bool, ok bool) {
	if st.finished {
		return 0, false, false
	}
	if st.pending > 0 {
		for i := range st.chunks {
			if st.chunks[i].status != chunkPending {
				continue
			}
			if st.chunks[i].dispatches >= maxDispatch {
				st.fail(fmt.Errorf("multipath: chunk %d failed %d dispatches", i, maxDispatch))
				return 0, false, false
			}
			st.chunks[i].status = chunkInflight
			st.chunks[i].owner = ps.path.ID
			st.chunks[i].dispatches++
			st.pending--
			return i, false, true
		}
	}
	return st.claimHedge(ps, now)
}

// claimHedge picks a straggler's in-flight chunk to duplicate. Only
// paths at or below the straggler quantile of observed rates (or
// draining/retired ones) are targets, the claimant must be strictly
// faster, and every duplicate reserves a full chunk from the budget.
func (st *state) claimHedge(ps *pathState, now float64) (int, bool, bool) {
	if st.done+st.pending >= len(st.chunks) {
		return 0, false, false // nothing in flight
	}
	rates := make([]float64, 0, len(st.paths))
	for _, q := range st.paths {
		if !q.retired {
			rates = append(rates, q.rate(now))
		}
	}
	if len(rates) == 0 {
		return 0, false, false
	}
	cut := stats.Quantile(rates, st.spec.StragglerQuantile)
	myRate := ps.rate(now)
	best, bestRate := -1, math.Inf(1)
	for i := range st.chunks {
		c := &st.chunks[i]
		if c.status != chunkInflight || c.owner == ps.path.ID {
			continue
		}
		owner := st.pathByID(c.owner)
		if owner == nil || owner.current != i {
			continue // a duplicate dispatch already owns the primary slot
		}
		or := owner.rate(now)
		slow := owner.retired || owner.draining || (or <= cut && myRate > or)
		if !slow {
			continue
		}
		if c.size > st.dupBudget || c.dispatches >= maxDispatch {
			continue
		}
		if or < bestRate {
			best, bestRate = i, or
		}
	}
	if best < 0 {
		return 0, false, false
	}
	st.dupBudget -= st.chunks[best].size
	st.chunks[best].dispatches++
	st.hedged++
	ps.steals++
	return best, true, true
}

func (st *state) pathByID(id int) *pathState {
	for _, q := range st.paths {
		if q.path.ID == id {
			return q
		}
	}
	return nil
}

// rate is the path's observed committed throughput as of now, counting
// time already spent on the chunk currently in flight (a straggler
// stuck mid-chunk reads as slow, not unknown); +Inf before any work.
func (ps *pathState) rate(now float64) float64 {
	busy := ps.busy
	if ps.current >= 0 {
		busy += now - ps.startedAt
	}
	if busy <= 0 {
		return math.Inf(1)
	}
	return ps.bytes / busy
}

// commit marks a chunk landed; reports whether this was the first
// completion (false: the caller lost a hedge race).
func (st *state) commit(ps *pathState, cid int, now float64) bool {
	c := &st.chunks[cid]
	if c.status == chunkDone {
		return false
	}
	c.status = chunkDone
	c.committedBy = ps.path.ID
	st.done++
	st.lastProgress = now
	ps.bytes += c.size
	ps.chunks = append(ps.chunks, cid)
	if st.done == len(st.chunks) {
		st.finished = true
		st.finishedAt = now
	}
	return true
}

// release returns a failed chunk to the pending set — unless some other
// dispatch of it is still in flight (the hedge may yet land it).
func (st *state) release(ps *pathState, cid int) {
	c := &st.chunks[cid]
	if c.status != chunkInflight {
		return
	}
	if c.owner == ps.path.ID {
		for _, q := range st.paths {
			if q != ps && q.current == cid {
				c.owner = q.path.ID // promote the surviving duplicate
				return
			}
		}
		c.status = chunkPending
		c.owner = -1
		st.pending++
		st.resent++
	}
}

// abortOthers cancels surviving duplicates of a just-committed chunk.
func (st *state) abortOthers(ps *pathState, cid int) {
	if st.env.Abort == nil {
		return
	}
	for _, q := range st.paths {
		if q != ps && q.current == cid {
			// Both levers: kill the loser's live flows AND raise its
			// checkpoint's cooperative latch, so a dispatch idling between
			// flows (polling a detour relay, waiting on a daemon ack) still
			// observes the abort at its next safe point.
			q.ck.RequestAbort()
			st.env.Abort(q.path)
		}
	}
}

// runPath is one lane's whole life: claim, upload (with one in-place
// resume retry), commit or release, back off on failure, drain while
// the route is withdrawn, exit when the ledger is finished.
func (st *state) runPath(p *simproc.Proc, ps *pathState) {
	defer func() {
		ps.current = -1
		st.exitQ.Push(ps.path.ID)
	}()
	backoff := 0.5
	for !st.finished {
		if ps.retired {
			return
		}
		if !st.usable(ps, false) {
			if !ps.draining {
				ps.draining = true
				ps.drains++
				st.env.Trace.Emit("mp.path.drain", map[string]any{
					tracelog.AttrPath: ps.path.ID, tracelog.AttrRoute: ps.path.Route.String(),
				})
			}
			if st.stalled(p) {
				return
			}
			p.Sleep(simclock.Duration(1))
			continue
		}
		if ps.draining {
			ps.draining = false
			st.env.Trace.Emit("mp.path.resume", map[string]any{
				tracelog.AttrPath: ps.path.ID, tracelog.AttrRoute: ps.path.Route.String(),
			})
		}
		cid, dup, ok := st.claim(ps, float64(p.Now()))
		if !ok {
			if st.finished || st.stalled(p) {
				return
			}
			p.Sleep(simclock.Duration(0.25))
			continue
		}
		part := PartName(st.spec.Name, cid)
		sz := st.chunks[cid].size
		ps.current = cid
		ps.ck.NextObject()
		st.env.Trace.Emit("mp.chunk.dispatch", map[string]any{
			tracelog.AttrPath: ps.path.ID, tracelog.AttrChunk: cid,
			tracelog.AttrRoute: ps.path.Route.String(), "bytes": sz, "hedge": dup,
		})
		var err error
		for tries := 0; ; tries++ {
			t0 := float64(p.Now())
			ps.startedAt = t0
			// A latch raised by a previous abort (lane watchdog or a lost
			// hedge) must not poison this fresh dispatch.
			ps.ck.ResetAbort()
			err = ps.up.UploadChunk(p, part, sz, &ps.ck)
			ps.busy += float64(p.Now()) - t0
			if err == nil || st.chunks[cid].status == chunkDone || tries >= 1 ||
				st.finished || !st.usable(ps, true) {
				break
			}
			// One in-place retry: the checkpoint resumes from the DTN
			// partial and the provider session, so a transient hiccup
			// costs a round trip, not the chunk.
			p.Sleep(simclock.Duration(1))
		}
		ps.current = -1
		if err == nil {
			if st.commit(ps, cid, float64(p.Now())) {
				ps.consec = 0
				backoff = 0.5
				st.env.Trace.Emit("mp.chunk.done", map[string]any{
					tracelog.AttrPath: ps.path.ID, tracelog.AttrChunk: cid,
					tracelog.AttrRoute: ps.path.Route.String(), "bytes": sz,
				})
				st.abortOthers(ps, cid)
			} else {
				// Lost the hedge race after finishing anyway: the whole
				// chunk crossed the wire twice.
				ps.dup += sz
			}
			continue
		}
		ps.fails++
		if st.chunks[cid].status == chunkDone {
			// The winner committed and (usually) aborted us; the payload
			// this dispatch moved was duplicate work. DuplicateBytes
			// counts payload, not wire bytes — the high-water marks of a
			// detour's two hops cover the SAME payload prefix, so the
			// farthest mark is what was moved and lost, matching the
			// one-chunk charge for a loser that finished (above).
			ps.dup += math.Max(ps.ck.Hop1High, ps.ck.Hop2High)
			continue
		}
		st.env.Trace.Emit("mp.chunk.fail", map[string]any{
			tracelog.AttrPath: ps.path.ID, tracelog.AttrChunk: cid,
			tracelog.AttrRoute: ps.path.Route.String(), "err": err.Error(),
		})
		st.release(ps, cid)
		ps.consec++
		if ps.consec >= maxPathFails {
			ps.retired = true
			st.env.Trace.Emit("mp.path.retire", map[string]any{
				tracelog.AttrPath: ps.path.ID, tracelog.AttrRoute: ps.path.Route.String(),
			})
			st.checkAllRetired()
			return
		}
		p.Sleep(simclock.Duration(backoff))
		if backoff < 8 {
			backoff *= 2
		}
	}
}

// watchLanes is the per-lane gray-failure watchdog: any lane whose
// current dispatch has outlived its Env.Budget is aborted. The abort
// surfaces in the lane as a reset; the normal failure path releases the
// chunk to a healthier lane, and a lane that keeps stalling retires
// through the consecutive-failure counter. The budget clock restarts on
// each dispatch try (startedAt), so an in-place resume retry gets a
// fresh window.
func (st *state) watchLanes(p *simproc.Proc) {
	for !st.finished {
		p.Sleep(simclock.Duration(laneWatchInterval))
		now := float64(p.Now())
		for _, ps := range st.paths {
			if ps.current < 0 || ps.retired {
				continue
			}
			budget := st.env.Budget(ps.path.Route, st.chunks[ps.current].size)
			if budget <= 0 || now-ps.startedAt <= budget {
				continue
			}
			st.env.Trace.Emit("mp.lane.stall", map[string]any{
				tracelog.AttrPath: ps.path.ID, tracelog.AttrChunk: ps.current,
				tracelog.AttrRoute: ps.path.Route.String(),
			})
			// Flow kill plus cooperative latch: a gray-slow dispatch may
			// have no client-side flow in flight to kill (the slowness is a
			// peer process grinding), so the latch is what actually stops it.
			ps.ck.RequestAbort()
			st.env.Abort(ps.path)
		}
	}
}

// checkAllRetired fails the transfer when no lane remains.
func (st *state) checkAllRetired() {
	for _, q := range st.paths {
		if !q.retired {
			return
		}
	}
	st.fail(fmt.Errorf("multipath: every path retired: %w", ErrNoPath))
}
