package experiments

import (
	"fmt"
	"strings"

	"detournet/internal/core"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
)

// Sensitivity analysis: the paper repeatedly calls its inefficiencies
// "transitory". These experiments quantify the boundary — how much the
// bottleneck would have to improve before the detour stops paying — and
// how the detour scales when several sites share one DTN.

// SensitivityPoint is one sweep sample.
type SensitivityPoint struct {
	// PacificWaveMBps is the hand-off capacity for this sample.
	PacificWaveMBps float64
	// DirectSeconds and DetourSeconds are 100 MB UBC→Google Drive times.
	DirectSeconds float64
	DetourSeconds float64
}

// DetourWins reports whether the UAlberta detour still beats direct.
func (s SensitivityPoint) DetourWins() bool { return s.DetourSeconds < s.DirectSeconds }

// SensitivityPacificWave sweeps the capacity of the rate-limited
// vncv1→PacificWave hand-off and measures the UBC→Google Drive 100 MB
// upload both ways at each point. The crossover capacity is where the
// paper's headline detour stops winning — i.e. how much fixing the one
// bad link would have been worth.
func SensitivityPacificWave(o Options, capsMBps []float64) []SensitivityPoint {
	out := make([]SensitivityPoint, 0, len(capsMBps))
	for _, mbps := range capsMBps {
		w := scenario.Build(o.Seed, scenario.WithLinkCapacity("vncv1", "pacificwave", mbps))
		pt := SensitivityPoint{PacificWaveMBps: mbps}
		w.RunWorkload("sensitivity", func(p *simproc.Proc) {
			client := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
			defer client.Close()
			rep, err := core.DirectUpload(p, client, "direct.bin", 100e6, "")
			if err != nil {
				panic(err)
			}
			pt.DirectSeconds = rep.Total
			dc := w.NewDetourClient(scenario.UBC, scenario.UAlberta)
			rep, err = dc.Upload(p, scenario.GoogleDrive, "detour.bin", 100e6, "")
			if err != nil {
				panic(err)
			}
			pt.DetourSeconds = rep.Total
		})
		out = append(out, pt)
	}
	return out
}

// FormatSensitivity renders the sweep with the crossover marked.
func FormatSensitivity(points []SensitivityPoint) string {
	var b strings.Builder
	b.WriteString("Sensitivity: UBC->GoogleDrive 100MB vs PacificWave hand-off capacity\n")
	fmt.Fprintf(&b, "%12s %12s %12s %10s\n", "cap (MB/s)", "direct (s)", "detour (s)", "winner")
	for _, pt := range points {
		winner := "direct"
		if pt.DetourWins() {
			winner = "detour"
		}
		fmt.Fprintf(&b, "%12.2f %12.1f %12.1f %10s\n",
			pt.PacificWaveMBps, pt.DirectSeconds, pt.DetourSeconds, winner)
	}
	return b.String()
}

// ContentionResult reports one DTN-contention sample.
type ContentionResult struct {
	// Clients lists the sites uploading via the shared DTN concurrently.
	Clients []string
	// Seconds holds each client's detour transfer time, same order.
	Seconds []float64
}

// ContentionStudy measures what happens when several sites relay
// through the UAlberta DTN at once — the deployment question the paper's
// "universities can provide routing detours" proposal raises. Each
// sample starts all k transfers simultaneously (40 MB each).
func ContentionStudy(o Options, clientSets [][]string) ([]ContentionResult, error) {
	var out []ContentionResult
	for _, clients := range clientSets {
		w := scenario.Build(o.Seed)
		res := ContentionResult{Clients: clients, Seconds: make([]float64, len(clients))}
		var firstErr error
		w.RunWorkload("contention", func(p *simproc.Proc) {
			futs := make([]*simproc.Future[float64], len(clients))
			for i, client := range clients {
				i, client := i, client
				fut := simproc.NewFuture[float64](w.Runner)
				futs[i] = fut
				w.Runner.Go("xfer-"+client, func(cp *simproc.Proc) {
					dc := w.NewDetourClient(client, scenario.UAlberta)
					rep, err := dc.Upload(cp, scenario.GoogleDrive,
						fmt.Sprintf("cont-%d.bin", i), 40e6, "")
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						fut.Set(0)
						return
					}
					fut.Set(rep.Total)
				})
			}
			for i, fut := range futs {
				res.Seconds[i] = simproc.Await(p, fut)
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatContention renders the study.
func FormatContention(results []ContentionResult) string {
	var b strings.Builder
	b.WriteString("Contention: concurrent 40MB detours via the UAlberta DTN\n")
	for _, r := range results {
		fmt.Fprintf(&b, "  %d client(s):", len(r.Clients))
		for i, c := range r.Clients {
			fmt.Fprintf(&b, "  %s=%.1fs", c, r.Seconds[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
