package faults

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"detournet/internal/core"
	"detournet/internal/scenario"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
)

func sleepWorkload(w *scenario.World, sec float64) {
	w.RunWorkload("sleep", func(p *simproc.Proc) { p.Sleep(simclock.Duration(sec)) })
}

func TestRecurrenceMath(t *testing.T) {
	sp := &state{Spec: Spec{Start: 10, Duration: 5, Period: 20, Repeat: 2}}
	cases := []struct {
		t      float64
		active bool
		next   float64
	}{
		{0, false, 10},
		{10, true, 15},
		{12, true, 15},
		{15, false, 30},
		{30, true, 35},
		{35, false, math.Inf(1)},
		{100, false, math.Inf(1)},
	}
	for _, c := range cases {
		active, next := sp.stateAt(c.t)
		if active != c.active || next != c.next {
			t.Errorf("stateAt(%v) = (%v, %v), want (%v, %v)", c.t, active, next, c.active, c.next)
		}
	}

	oneShot := &state{Spec: Spec{Start: 3, Duration: 2}}
	if a, n := oneShot.stateAt(4); !a || n != 5 {
		t.Errorf("one-shot stateAt(4) = (%v, %v)", a, n)
	}
	if a, n := oneShot.stateAt(5); a || !math.IsInf(n, 1) {
		t.Errorf("one-shot stateAt(5) = (%v, %v)", a, n)
	}
}

func TestLinkFlapTransitions(t *testing.T) {
	w := scenario.Build(1)
	inj := NewInjector(w, 42, Spec{
		Kind: LinkDown, From: "vncv1", To: "edmn1",
		Start: 10, Duration: 5, Period: 20, Repeat: 2,
	})
	sleepWorkload(w, 100)
	want := []string{
		"t=10.000 link-down vncv1<->edmn1 active=true",
		"t=15.000 link-down vncv1<->edmn1 active=false",
		"t=30.000 link-down vncv1<->edmn1 active=true",
		"t=35.000 link-down vncv1<->edmn1 active=false",
	}
	got := inj.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %q, want %q", i, got[i], want[i])
		}
	}
	e, _ := w.Graph.Edge("vncv1", "edmn1")
	if e.Down() {
		t.Fatal("edge still down after the last window closed")
	}
}

func TestFaultStatePersistsBetweenWorkloads(t *testing.T) {
	w := scenario.Build(1)
	NewInjector(w, 1, Spec{Kind: LinkDown, From: "vncv1", To: "edmn1", Start: 5, Duration: 1e6})
	sleepWorkload(w, 10)
	e, _ := w.Graph.Edge("vncv1", "edmn1")
	if !e.Down() {
		t.Fatal("edge should be down after the window opened")
	}
	// A new workload must see the fault still applied, and the pending
	// recovery event must not leak into the runner between workloads.
	sleepWorkload(w, 1)
	if !e.Down() {
		t.Fatal("fault state did not persist across workloads")
	}
}

func TestProviderOutageWindow(t *testing.T) {
	w := scenario.Build(1)
	NewInjector(w, 1, Spec{Kind: ProviderOutage, Provider: scenario.GoogleDrive, Start: 0, Duration: 50})
	client := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
	var err error
	w.RunWorkload("during", func(p *simproc.Proc) {
		_, err = core.DirectUpload(p, client, "during.bin", 1e6, "")
	})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("upload during outage: err = %v, want 503", err)
	}
	sleepWorkload(w, 60)
	w.RunWorkload("after", func(p *simproc.Proc) {
		_, err = core.DirectUpload(p, client, "after.bin", 1e6, "")
	})
	if err != nil {
		t.Fatalf("upload after outage: %v", err)
	}
	if w.Services[scenario.GoogleDrive].InjectedFaults == 0 {
		t.Fatal("service recorded no injected faults")
	}
}

func TestDTNCrashAndRestart(t *testing.T) {
	w := scenario.Build(1)
	NewInjector(w, 1, Spec{Kind: DTNCrash, DTN: scenario.UAlberta, Start: 0, Duration: 30})
	dc := w.NewDetourClient(scenario.UBC, scenario.UAlberta)
	var err error
	w.RunWorkload("during", func(p *simproc.Proc) {
		_, err = dc.Rsync.Stat(p, "x.bin")
	})
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("stat during crash: err = %v, want connection refused", err)
	}
	sleepWorkload(w, 40)
	w.RunWorkload("after", func(p *simproc.Proc) {
		_, err = dc.Rsync.Stat(p, "x.bin")
	})
	if err != nil {
		t.Fatalf("stat after restart: %v", err)
	}
}

// chaosSummary runs a small canned-schedule chaos scenario and renders
// everything observable — per-transfer outcomes, the transition log,
// the final clock — into one string.
func chaosSummary(seed int64) string {
	w := scenario.Build(seed)
	inj := NewInjector(w, seed, CannedSchedule()...)
	dc := w.NewDetourClient(scenario.UBC, scenario.UAlberta)
	gd := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
	var b strings.Builder
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("f%d.bin", i)
		ck := &core.Checkpoint{}
		var rep core.Report
		var err error
		w.RunWorkload(name, func(p *simproc.Proc) {
			if i%2 == 0 {
				rep, err = dc.UploadResumable(p, scenario.GoogleDrive, name, 40e6, "", ck)
			} else {
				rep, err = core.DirectUploadResumable(p, gd, name, 30e6, "", ck)
			}
		})
		fmt.Fprintf(&b, "%s err=%v total=%.6f resumed=%.0f rewritten=%.0f\n",
			name, err, rep.Total, ck.BytesResumed, ck.BytesRewritten)
	}
	for _, tr := range inj.Transitions() {
		b.WriteString(tr + "\n")
	}
	fmt.Fprintf(&b, "clock=%.6f injected=%d\n", float64(w.Eng.Now()), inj.Injected)
	return b.String()
}

// TestChaosDeterminism is the regression gate for reproducible chaos:
// the same seed and the same fault schedule must produce a
// byte-identical run summary.
func TestChaosDeterminism(t *testing.T) {
	a, b := chaosSummary(7), chaosSummary(7)
	if a != b {
		t.Fatalf("same seed, different chaos runs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}

// TestCrashControlHooks pins the control-plane seam: ProcCrash arms
// and disarms the journal's kill plan on its window edges, a
// journal-targeted TornWrite toggles torn-tail injection, and a
// journal-targeted BitRot flips exactly Flips bytes from the dedicated
// rot stream.
func TestCrashControlHooks(t *testing.T) {
	w := scenario.Build(1)
	var armed, disarmed []string
	var torn []bool
	flips := 0
	inj := NewInjector(w, 42,
		Spec{Kind: ProcCrash, CrashPoint: "mid-hop2", Occurrence: 3, Start: 10, Duration: 5},
		Spec{Kind: TornWrite, Journal: true, Start: 20, Duration: 5},
		Spec{Kind: BitRot, Journal: true, Start: 30, Duration: 2, Flips: 4},
	)
	inj.SetCrashControl(&CrashControl{
		ArmCrash:    func(pt string, occ int) { armed = append(armed, fmt.Sprintf("%s#%d", pt, occ)) },
		DisarmCrash: func(pt string) { disarmed = append(disarmed, pt) },
		TornJournal: func(active bool) { torn = append(torn, active) },
		FlipJournal: func(*rand.Rand) { flips++ },
	})
	sleepWorkload(w, 100)
	if len(armed) != 1 || armed[0] != "mid-hop2#3" {
		t.Fatalf("armed = %v, want [mid-hop2#3]", armed)
	}
	if len(disarmed) != 1 || disarmed[0] != "mid-hop2" {
		t.Fatalf("disarmed = %v, want [mid-hop2]", disarmed)
	}
	if len(torn) != 2 || !torn[0] || torn[1] {
		t.Fatalf("torn toggles = %v, want [true false]", torn)
	}
	if flips != 4 {
		t.Fatalf("journal flips = %d, want 4", flips)
	}
}
