GO ?= go

.PHONY: build test vet race bench check fleet chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fleet:
	$(GO) run ./examples/fleet

# Chaos: the fault-injection tests race-clean, then the fleet trace
# replayed under the canned fault schedule.
chaos:
	$(GO) test -race ./internal/faults/ ./internal/sched/
	$(GO) run ./examples/chaos

# The gate PRs must pass: everything compiles, vets clean, the full
# test suite (including the really-concurrent scheduler) is race-clean,
# and the chaos replay completes.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
	$(GO) run ./examples/chaos >/dev/null
