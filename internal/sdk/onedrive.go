package sdk

import (
	"encoding/json"
	"fmt"

	"detournet/internal/cloudsim"
	"detournet/internal/httpsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// OneDrive is the Graph-style client the paper's authors approximated
// with a patched community Java library: createUploadSession followed by
// 10 MiB Content-Range fragment PUTs.
type OneDrive struct {
	base
}

// NewOneDrive returns a OneDrive client dialing from `from` to `host`.
func NewOneDrive(eng *simclock.Engine, tn *transport.Net, from, host string, creds Credentials, opts Options) *OneDrive {
	return &OneDrive{base: newBase(eng, tn, from, host, creds, cloudsim.OneDrive, opts)}
}

// ProviderName implements Client.
func (o *OneDrive) ProviderName() string { return "OneDrive" }

// Upload implements Client.
func (o *OneDrive) Upload(p *simproc.Proc, name string, size float64, md5 string) (FileInfo, error) {
	if size < 0 {
		return FileInfo{}, fmt.Errorf("sdk: negative size")
	}
	attempt := o.attemptID // captured before I/O: the client may be shared
	req, err := o.authed(p, "POST", "/v1.0/drive/root:/"+name+":/createUploadSession")
	if err != nil {
		return FileInfo{}, err
	}
	resp, err := o.do(p, req)
	if err != nil {
		return FileInfo{}, fmt.Errorf("sdk: onedrive session: %w", err)
	}
	var sess struct {
		UploadURL string `json:"uploadUrl"`
	}
	if err := json.Unmarshal(resp.Body, &sess); err != nil || sess.UploadURL == "" {
		return FileInfo{}, fmt.Errorf("sdk: onedrive session: bad response")
	}
	if size == 0 {
		size = 1 // OneDrive rejects zero-length fragment math; store a 1-byte sentinel
	}
	n := chunksOf(size, o.chunk)
	var sent float64
	for i := 0; i < n; i++ {
		frag := o.chunk
		if sent+frag > size {
			frag = size - sent
		}
		put, err := o.authed(p, "PUT", sess.UploadURL)
		if err != nil {
			return FileInfo{}, err
		}
		put.Header["Content-Range"] = fmt.Sprintf("bytes %.0f-%.0f/%.0f", sent, sent+frag-1, size)
		if md5 != "" {
			put.Header["X-Content-MD5"] = md5
		}
		tagAttempt(put, attempt)
		put.BodySize = frag
		resp, err := o.doRaw(p, put)
		if err != nil {
			return FileInfo{}, err
		}
		sent += frag
		switch resp.Status {
		case 202: // accepted, more fragments expected
			if i == n-1 {
				return FileInfo{}, fmt.Errorf("sdk: onedrive still expects ranges after final fragment")
			}
		case httpsim.StatusCreated:
			return decodeMeta(resp.Body)
		default:
			return FileInfo{}, fmt.Errorf("sdk: onedrive fragment %d: %w", i, resp.Error())
		}
	}
	return FileInfo{}, fmt.Errorf("sdk: onedrive upload ended without completion")
}

// Download implements Client.
func (o *OneDrive) Download(p *simproc.Proc, name string) (FileInfo, error) {
	req, err := o.authed(p, "GET", "/v1.0/drive/root:/"+name+":/content")
	if err != nil {
		return FileInfo{}, err
	}
	resp, err := o.do(p, req)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: name, Size: resp.BodySize}, nil
}

// Delete implements Client.
func (o *OneDrive) Delete(p *simproc.Proc, name string) error {
	req, err := o.authed(p, "DELETE", "/v1.0/drive/root:/"+name)
	if err != nil {
		return err
	}
	_, err = o.do(p, req)
	return err
}

var _ Client = (*OneDrive)(nil)
