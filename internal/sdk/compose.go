package sdk

import (
	"encoding/json"
	"fmt"

	"detournet/internal/simproc"
)

// Composer commits a striped multipath upload: the provider
// concatenates previously uploaded part objects, in order, into the
// final object and deletes the parts. md5 optionally carries the
// whole-file digest recorded on the composed object (the same echo
// semantics as X-Content-MD5 on uploads). See cloudsim's compose
// endpoint for the modeling caveat: this is a minimal control-plane
// extension, not a 2015-era consumer API.
type Composer interface {
	Compose(p *simproc.Proc, name string, parts []string, md5 string) (FileInfo, error)
}

// compose issues the style-uniform compose call shared by all three
// clients; only the endpoint path differs per provider.
func (b *base) compose(p *simproc.Proc, path, name string, parts []string, md5 string) (FileInfo, error) {
	if name == "" || len(parts) == 0 {
		return FileInfo{}, fmt.Errorf("sdk: compose needs a name and parts")
	}
	attempt := b.attemptID // captured before I/O: the client may be shared
	req, err := b.authed(p, "POST", path)
	if err != nil {
		return FileInfo{}, err
	}
	body, _ := json.Marshal(map[string]any{"name": name, "md5": md5, "parts": parts})
	req.Header["Content-Type"] = "application/json"
	tagAttempt(req, attempt)
	req.Body = body
	resp, err := b.do(p, req)
	if err != nil {
		return FileInfo{}, fmt.Errorf("sdk: compose %q: %w", name, err)
	}
	return decodeMeta(resp.Body)
}

// Compose implements Composer.
func (g *GoogleDrive) Compose(p *simproc.Proc, name string, parts []string, md5 string) (FileInfo, error) {
	return g.compose(p, "/drive/v3/files:compose", name, parts, md5)
}

// Compose implements Composer.
func (d *Dropbox) Compose(p *simproc.Proc, name string, parts []string, md5 string) (FileInfo, error) {
	return d.compose(p, "/2/files/compose", name, parts, md5)
}

// Compose implements Composer.
func (o *OneDrive) Compose(p *simproc.Proc, name string, parts []string, md5 string) (FileInfo, error) {
	return o.compose(p, "/v1.0/drive/compose", name, parts, md5)
}

var (
	_ Composer = (*GoogleDrive)(nil)
	_ Composer = (*Dropbox)(nil)
	_ Composer = (*OneDrive)(nil)
)
