package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// The jobQueue property tests drive random interleavings of push, pop,
// and clock advances against a reference model, checking the queue's
// three contracts: strict-mode ordering (priority desc, deadline asc,
// FIFO), exact expiry (a job expires wherever it sits, exactly once),
// and conservation (every admitted job comes back out exactly once —
// popped or expired, never lost, never duplicated).

// modelJob mirrors one queued job in the reference model.
type modelJob struct {
	name     string
	prio     int
	deadline float64
	seq      int
}

// modelQueue is the executable spec: a plain slice ordered on demand by
// the same (priority, deadline, seq) rule the heap implements.
type modelQueue struct {
	jobs []modelJob
	seq  int
}

func (m *modelQueue) push(j modelJob) {
	m.seq++
	j.seq = m.seq
	m.jobs = append(m.jobs, j)
}

// expire removes and returns (in push order) every job dead at now.
func (m *modelQueue) expire(now float64) []modelJob {
	var dead []modelJob
	kept := m.jobs[:0]
	for _, j := range m.jobs {
		if j.deadline > 0 && now > j.deadline {
			dead = append(dead, j)
		} else {
			kept = append(kept, j)
		}
	}
	m.jobs = kept
	sort.Slice(dead, func(i, j int) bool { return dead[i].seq < dead[j].seq })
	return dead
}

// head returns the index of the job the strict discipline must serve.
func (m *modelQueue) head() int {
	best := 0
	for i := 1; i < len(m.jobs); i++ {
		a, b := m.jobs[i], m.jobs[best]
		if a.prio != b.prio {
			if a.prio > b.prio {
				best = i
			}
			continue
		}
		ad, bd := a.deadline, b.deadline
		switch {
		case ad == bd:
			if a.seq < b.seq {
				best = i
			}
		case ad == 0: // no deadline sorts last
		case bd == 0:
			best = i
		case ad < bd:
			best = i
		}
	}
	return best
}

func TestQueuePropertyStrictModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			now := 0.0
			q := newJobQueue(queueOpts{limit: 12, now: func() float64 { return now }})
			model := &modelQueue{}
			// accounted tracks each job's fate count; every admitted job
			// must end at exactly 1.
			admitted := map[string]bool{}
			accounted := map[string]int{}
			nextID := 0

			expectExpired := func(op string, got []queued, want []modelJob) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%s at t=%.2f: expired %d jobs, model expects %d", op, now, len(got), len(want))
				}
				for i := range got {
					if got[i].job.Name != want[i].name {
						t.Fatalf("%s at t=%.2f: expired[%d]=%q, model expects %q", op, now, i, got[i].job.Name, want[i].name)
					}
					accounted[got[i].job.Name]++
				}
			}

			const ops = 600
			for op := 0; op < ops; op++ {
				switch r := rng.Float64(); {
				case r < 0.55: // push
					j := Job{
						Tenant:   fmt.Sprintf("t%d", rng.Intn(3)),
						Name:     fmt.Sprintf("job-%04d", nextID),
						Priority: rng.Intn(3),
						Size:     1,
					}
					nextID++
					if rng.Float64() < 0.5 {
						j.Deadline = now + rng.Float64()*4
					}
					// The queue only sweeps a full queue on push; mirror that.
					var wantDead []modelJob
					wantErr := false
					if len(model.jobs) >= 12 {
						wantDead = model.expire(now)
						wantErr = len(model.jobs) >= 12
					}
					got, err := q.push(j, now)
					expectExpired("push", got, wantDead)
					if wantErr {
						if !errors.Is(err, ErrQueueFull) {
							t.Fatalf("push on full queue: err=%v, model expects ErrQueueFull", err)
						}
					} else {
						if err != nil {
							t.Fatalf("push: %v, model expects admission", err)
						}
						model.push(modelJob{name: j.Name, prio: j.Priority, deadline: j.Deadline})
						admitted[j.Name] = true
					}
				case r < 0.85: // pop
					if q.length() == 0 {
						continue
					}
					var wantDead []modelJob
					if q.nextDeadline > 0 && now >= q.nextDeadline {
						wantDead = model.expire(now)
					}
					it, exp, ok := q.pop()
					if !ok {
						t.Fatal("pop: queue reported closed")
					}
					expectExpired("pop", exp, wantDead)
					if len(model.jobs) == 0 {
						if it != nil {
							t.Fatalf("pop at t=%.2f returned %q from an (expected) empty queue", now, it.job.Name)
						}
						continue
					}
					if it == nil {
						t.Fatalf("pop at t=%.2f returned no job; model holds %d", now, len(model.jobs))
					}
					hi := model.head()
					if want := model.jobs[hi].name; it.job.Name != want {
						t.Fatalf("pop at t=%.2f = %q, model expects %q (prio/deadline/FIFO order)", now, it.job.Name, want)
					}
					model.jobs = append(model.jobs[:hi], model.jobs[hi+1:]...)
					accounted[it.job.Name]++
				default: // time advances; expiry happens lazily on the next op
					now += rng.Float64() * 2
				}
			}

			// Drain everything left.
			for q.length() > 0 {
				var wantDead []modelJob
				if q.nextDeadline > 0 && now >= q.nextDeadline {
					wantDead = model.expire(now)
				}
				it, exp, ok := q.pop()
				if !ok {
					t.Fatal("drain: queue reported closed")
				}
				expectExpired("drain", exp, wantDead)
				if it != nil {
					hi := model.head()
					if want := model.jobs[hi].name; it.job.Name != want {
						t.Fatalf("drain pop = %q, model expects %q", it.job.Name, want)
					}
					model.jobs = append(model.jobs[:hi], model.jobs[hi+1:]...)
					accounted[it.job.Name]++
				}
			}
			if len(model.jobs) != 0 {
				t.Fatalf("queue empty but model still holds %d jobs", len(model.jobs))
			}
			// Conservation: exactly once out, for every job that went in.
			for name := range admitted {
				if accounted[name] != 1 {
					t.Fatalf("job %q accounted %d times, want exactly 1", name, accounted[name])
				}
			}
			for name := range accounted {
				if !admitted[name] {
					t.Fatalf("job %q came out but never went in", name)
				}
			}
		})
	}
}

// Fair mode gives no total order to check, but conservation and
// priority dominance must still hold under random interleavings.
func TestQueuePropertyFairConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		now := 0.0
		q := newJobQueue(queueOpts{
			fair: true, quantum: 2, limit: 16,
			weights: map[string]float64{"t0": 3},
			now:     func() float64 { return now },
		})
		admitted := map[string]bool{}
		accounted := map[string]int{}
		nextID := 0
		note := func(items []queued) {
			for _, it := range items {
				accounted[it.job.Name]++
			}
		}
		for op := 0; op < 400; op++ {
			switch r := rng.Float64(); {
			case r < 0.55:
				j := Job{
					Tenant:   fmt.Sprintf("t%d", rng.Intn(4)),
					Name:     fmt.Sprintf("job-%04d", nextID),
					Priority: rng.Intn(3),
					Size:     float64(1 + rng.Intn(3)),
				}
				nextID++
				if rng.Float64() < 0.4 {
					j.Deadline = now + rng.Float64()*4
				}
				exp, err := q.push(j, now)
				note(exp)
				if err == nil {
					admitted[j.Name] = true
				} else if !errors.Is(err, ErrQueueFull) {
					t.Fatalf("push: unexpected error %v", err)
				}
			case r < 0.85:
				if q.length() == 0 {
					continue
				}
				it, exp, ok := q.pop()
				if !ok {
					t.Fatal("pop: closed")
				}
				note(exp)
				if it != nil {
					accounted[it.job.Name]++
				}
			default:
				now += rng.Float64() * 2
			}
		}
		// Drain with no more pushes: priorities must now be non-increasing.
		lastPrio := 1 << 30
		for q.length() > 0 {
			it, exp, ok := q.pop()
			if !ok {
				t.Fatal("drain: closed")
			}
			note(exp)
			if it != nil {
				if it.job.Priority > lastPrio {
					t.Fatalf("fair drain served priority %d after %d", it.job.Priority, lastPrio)
				}
				lastPrio = it.job.Priority
				accounted[it.job.Name]++
			}
		}
		for name := range admitted {
			if accounted[name] != 1 {
				t.Fatalf("seed %d: job %q accounted %d times, want 1", seed, name, accounted[name])
			}
		}
		for name := range accounted {
			if !admitted[name] {
				t.Fatalf("seed %d: job %q came out but never went in", seed, name)
			}
		}
	}
}

// Concurrent conservation: racing producers and consumers lose nothing
// (run under -race by make stress).
func TestQueuePropertyConcurrent(t *testing.T) {
	q := newJobQueue(queueOpts{})
	const producers, perProducer, consumers = 4, 50, 3
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				j := Job{
					Tenant: fmt.Sprintf("t%d", p), Name: fmt.Sprintf("p%d-%03d", p, i),
					Priority: i % 3, Size: 1,
				}
				if _, err := q.push(j, 0); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	names := make(chan string, producers*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				it, _, ok := q.pop()
				if !ok {
					return
				}
				if it != nil {
					names <- it.job.Name
				}
			}
		}()
	}
	wg.Wait()
	seen := map[string]bool{}
	for len(seen) < producers*perProducer {
		n := <-names
		if seen[n] {
			t.Fatalf("job %q popped twice", n)
		}
		seen[n] = true
	}
	q.close()
	cg.Wait()
	close(names)
	for n := range names {
		t.Fatalf("job %q popped after all %d were accounted", n, producers*perProducer)
	}
}
