package cloudsim

import (
	"encoding/json"
	"fmt"

	"detournet/internal/httpsim"
	"detournet/internal/oauthsim"
	"detournet/internal/simclock"
	"detournet/internal/transport"
)

// Style selects which provider protocol a Service speaks.
type Style int

const (
	// GoogleDrive: resumable-session init, then one (or few) large PUTs.
	GoogleDrive Style = iota
	// Dropbox: upload_session start/append_v2/finish with small chunks.
	Dropbox
	// OneDrive: createUploadSession, then Content-Range fragment PUTs.
	OneDrive
)

func (s Style) String() string {
	switch s {
	case GoogleDrive:
		return "GoogleDrive"
	case Dropbox:
		return "Dropbox"
	case OneDrive:
		return "OneDrive"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// DefaultChunkBytes returns the upload chunk/fragment size the 2015-era
// client libraries used for this provider.
func (s Style) DefaultChunkBytes() float64 {
	switch s {
	case GoogleDrive:
		return 8 << 20
	case Dropbox:
		return 4 << 20
	case OneDrive:
		return 10 << 20
	default:
		return 8 << 20
	}
}

// APIPort is the HTTPS port every provider listens on.
const APIPort = 443

// Service is one provider instance: API frontend host, auth server,
// object store, and protocol handlers.
type Service struct {
	Name  string
	Host  string
	Style Style
	Auth  *oauthsim.AuthServer
	Store *ObjectStore
	HTTP  *httpsim.Server

	eng      *simclock.Engine
	sessions map[string]*uploadSession
	nextSess int

	// Requests counts API requests served (excluding the token endpoint),
	// exposed for tests and ablations.
	Requests int
	// Throttled counts requests rejected with 429.
	Throttled int

	// RateLimit, when positive, caps API requests per RateWindow seconds
	// (token-bucket style); excess requests get 429 with a Retry-After
	// header, as the real providers throttle heavy uploaders.
	RateLimit  int
	RateWindow float64

	windowStart simclock.Time
	windowCount int
}

type uploadSession struct {
	id       string
	name     string
	total    float64 // declared size; 0 when unknown (Dropbox)
	received float64
	done     bool
}

// NewService builds a provider and mounts its routes. Call Start to bind
// the listener and begin serving.
func NewService(eng *simclock.Engine, tn *transport.Net, name, host string, style Style) *Service {
	s := &Service{
		Name:  name,
		Host:  host,
		Style: style,
		Auth:  oauthsim.NewAuthServer(eng),
		Store: NewObjectStore(eng),
		HTTP:  httpsim.NewServer(tn),

		eng:      eng,
		sessions: make(map[string]*uploadSession),
	}
	s.Auth.Mount(s.HTTP)
	switch style {
	case GoogleDrive:
		s.mountGoogleDrive()
	case Dropbox:
		s.mountDropbox()
	case OneDrive:
		s.mountOneDrive()
	default:
		panic("cloudsim: unknown style")
	}
	return s
}

// Start binds the API listener on the service host and serves forever.
func (s *Service) Start(tn *transport.Net) *transport.Listener {
	l := tn.MustListen(s.Host, APIPort)
	s.HTTP.Serve(l)
	return l
}

func (s *Service) newSession(name string, total float64) *uploadSession {
	sess := &uploadSession{
		id:    fmt.Sprintf("sess-%d", s.nextSess),
		name:  name,
		total: total,
	}
	s.nextSess++
	s.sessions[sess.id] = sess
	return sess
}

// protect wraps a handler with OAuth, rate limiting, and request
// counting.
func (s *Service) protect(fn httpsim.HandlerFunc) httpsim.HandlerFunc {
	inner := s.Auth.Protect(fn)
	return func(ctx *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
		if resp := s.throttle(); resp != nil {
			return resp
		}
		s.Requests++
		return inner(ctx, req)
	}
}

// throttle enforces the request rate limit; nil means admitted.
func (s *Service) throttle() *httpsim.Response {
	if s.RateLimit <= 0 {
		return nil
	}
	window := s.RateWindow
	if window <= 0 {
		window = 1
	}
	now := s.eng.Now()
	if float64(now-s.windowStart) >= window {
		s.windowStart = now
		s.windowCount = 0
	}
	if s.windowCount >= s.RateLimit {
		s.Throttled++
		retry := window - float64(now-s.windowStart)
		return &httpsim.Response{
			Status: httpsim.StatusTooManyRequests,
			Header: map[string]string{"Retry-After": fmt.Sprintf("%.3f", retry)},
			Body:   []byte("rate limit exceeded"),
		}
	}
	s.windowCount++
	return nil
}

func jsonResp(status int, v any) *httpsim.Response {
	body, err := json.Marshal(v)
	if err != nil {
		return &httpsim.Response{Status: httpsim.StatusInternalServerError, Body: []byte(err.Error())}
	}
	return &httpsim.Response{Status: status, Body: body,
		Header: map[string]string{"Content-Type": "application/json"}}
}

func errResp(status int, msg string) *httpsim.Response {
	return jsonResp(status, map[string]any{"error": msg})
}

// fileMeta is the metadata shape shared by the provider responses.
type fileMeta struct {
	ID   string  `json:"id"`
	Name string  `json:"name"`
	Size float64 `json:"size"`
	MD5  string  `json:"md5,omitempty"`
}

func metaOf(o *Object) fileMeta {
	return fileMeta{ID: o.ID, Name: o.Name, Size: o.Size, MD5: o.MD5}
}

// parseContentRange parses "bytes lo-hi/total" (total may be "*").
func parseContentRange(v string) (lo, hi, total float64, err error) {
	var totStr string
	n, err := fmt.Sscanf(v, "bytes %f-%f/%s", &lo, &hi, &totStr)
	if err != nil || n != 3 {
		return 0, 0, 0, fmt.Errorf("cloudsim: bad Content-Range %q", v)
	}
	if totStr == "*" {
		total = -1
	} else if _, err := fmt.Sscanf(totStr, "%f", &total); err != nil {
		return 0, 0, 0, fmt.Errorf("cloudsim: bad Content-Range total %q", totStr)
	}
	if lo < 0 || hi < lo {
		return 0, 0, 0, fmt.Errorf("cloudsim: inverted Content-Range %q", v)
	}
	return lo, hi, total, nil
}
