package sched

import (
	"fmt"

	"detournet/internal/bgppol"
	"detournet/internal/core"
	"detournet/internal/health"
	"detournet/internal/multipath"
	"detournet/internal/scenario"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
)

// Compose retry shape: enough cumulative patience (~2+4+8+16+30+30+30
// ≈ 120 s) to sit out a withdraw window plus its staged reconvergence,
// without stalling a genuinely dead provider forever.
const (
	composeAttempts   = 8
	composeBackoffCap = 30.0
)

// subscribeRouteBus wires the executor to the world's routing-plane
// event bus (once, at construction). Withdrawn sessions are held as
// converging until their convergence horizon; a multipath lane whose
// path crosses a converging session drains make-before-break — it stops
// claiming chunks before the blackhole eats one — instead of being torn
// down, and resumes when the announce clears the hold.
func (e *SimExecutor) subscribeRouteBus() {
	if e.w.RouteBus == nil {
		return
	}
	e.w.RouteBus.Subscribe(func(ev bgppol.Event) {
		if ev.DomainA == "" {
			// Link events change the topology itself; Graph.Path already
			// reflects them.
			return
		}
		k := sessionKey(ev.DomainA, ev.DomainB)
		e.convMu.Lock()
		if ev.Kind == bgppol.EventWithdraw {
			e.converging[k] = ev.ConvergedBy
		} else {
			delete(e.converging, k)
		}
		e.convMu.Unlock()
	})
}

func sessionKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// pathConverging reports whether src->dst currently crosses a session
// inside its convergence window — transiently blackhole-prone even
// though the RIBs may still resolve it. Callers hold e.mu.
func (e *SimExecutor) pathConverging(src, dst string) bool {
	e.convMu.Lock()
	if len(e.converging) == 0 {
		e.convMu.Unlock()
		return false
	}
	conv := make(map[[2]string]float64, len(e.converging))
	for k, v := range e.converging {
		conv[k] = v
	}
	e.convMu.Unlock()
	hops, ok := e.pathHops(src, dst)
	if !ok {
		return false
	}
	now := float64(e.w.Eng.Now())
	for i := 1; i < len(hops); i++ {
		if hops[i-1].Domain == hops[i].Domain {
			continue
		}
		if until, held := conv[sessionKey(hops[i-1].Domain, hops[i].Domain)]; held && now < until {
			return true
		}
	}
	return false
}

// routeConverging applies pathConverging to a whole route (both hops of
// a detour). Callers hold e.mu.
func (e *SimExecutor) routeConverging(client, provider string, r core.Route) bool {
	host, ok := scenario.Providers[provider]
	if !ok {
		host = provider
	}
	switch r.Kind {
	case core.Direct:
		return e.pathConverging(client, host)
	case core.Detour:
		return e.pathConverging(client, r.Via) || e.pathConverging(r.Via, host)
	}
	return false
}

// flowPrefixes returns the transport flow-label prefixes
// ("scope|src->dst:port") that belong to one lane of one transfer — the
// handles for aborting exactly that lane's in-flight flows and nothing
// else. The scope (multipath.FlowScope, carried by the lane's process
// and adopted by the DTN agent for the second hop) pins the transfer,
// so the prefix can never match another transfer's flows even between
// the same endpoint pair; within a transfer, lanes never share an
// endpoint pair (direct is client->provider, each detour is client->DTN
// plus DTN->provider, and no two lanes ride the same DTN).
func flowPrefixes(scope, client, provider string, r core.Route) []string {
	host, ok := scenario.Providers[provider]
	if !ok {
		host = provider
	}
	if r.Kind == core.Direct {
		return []string{scope + "|" + client + "->" + host + ":"}
	}
	return []string{
		scope + "|" + client + "->" + r.Via + ":",
		scope + "|" + r.Via + "->" + host + ":",
	}
}

// ExecuteMultipath implements MultipathExecutor: the striped transfer
// runs as ONE simulation workload whose per-path sub-processes share
// the virtual network, so lanes genuinely compete for (and jointly
// fill) link capacity. Chunks upload as independent part objects —
// direct lanes through core.DirectUploadResumable, detour lanes through
// the DTN's store-and-forward resumable relay — and commit by
// provider-side compose in index order.
func (e *SimExecutor) ExecuteMultipath(job Job, routes []core.Route, chunk float64) (multipath.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	paths := make([]multipath.Path, 0, len(routes))
	for i, r := range routes {
		r := r
		var up multipath.Uploader
		switch r.Kind {
		case core.Direct:
			cl := e.direct(job.Client, job.Provider)
			up = multipath.UploaderFunc(func(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error {
				// Per-chunk MD5s are not threaded (the whole-file digest is
				// checked at compose), so the empty digest skips the
				// per-object verify.
				_, err := core.DirectUploadResumable(p, cl, part, size, "", ck)
				return err
			})
		default:
			dc := e.detourFor(job.Client, r.Via)
			up = multipath.UploaderFunc(func(p *simproc.Proc, part string, size float64, ck *core.Checkpoint) error {
				_, err := dc.UploadResumable(p, job.Provider, part, size, "", ck)
				return err
			})
		}
		paths = append(paths, multipath.Path{ID: i, Route: r, Upload: up})
	}

	fl := e.w.Graph.Fluid()
	env := multipath.Env{
		Trace: e.w.Trace,
		Usable: func(r core.Route, existing bool) bool {
			if !e.routeUsable(job.Client, job.Provider, r, existing) {
				return false
			}
			// Existing work may finish through a converging session (it is
			// already committed to the path); new claims drain until the
			// plane settles.
			return existing || !e.routeConverging(job.Client, job.Provider, r)
		},
		Abort: func(path multipath.Path) {
			scope := multipath.FlowScope(job.Name)
			for _, prefix := range flowPrefixes(scope, job.Client, job.Provider, path.Route) {
				fl.KillFlowsLabeled(prefix)
			}
		},
		Commit: func(p *simproc.Proc, parts []string) error {
			comp, ok := e.direct(job.Client, job.Provider).(sdk.Composer)
			if !ok {
				return fmt.Errorf("sched: provider %s cannot compose parts", job.Provider)
			}
			// Every part is already durable server-side; only this one
			// control-plane call races the routing plane. A withdraw window
			// opening between the last chunk and the compose must not fail
			// the whole stripe, so wait out transient route loss with a
			// capped exponential and re-issue — compose is idempotent.
			var err error
			backoff := 2.0
			for attempt := 0; attempt < composeAttempts; attempt++ {
				if attempt > 0 {
					p.Sleep(backoff)
					if backoff *= 2; backoff > composeBackoffCap {
						backoff = composeBackoffCap
					}
				}
				var info sdk.FileInfo
				info, err = comp.Compose(p, job.Name, parts, job.MD5)
				if err != nil {
					continue
				}
				if job.MD5 != "" && info.MD5 != "" && info.MD5 != job.MD5 {
					// An integrity mismatch is a durable property of the
					// composed object, not a routing transient: fail now.
					return fmt.Errorf("sched: composed %q has digest %s, want %s: %w",
						job.Name, info.MD5, job.MD5, core.ErrIntegrity)
				}
				return nil
			}
			return err
		},
	}
	if h := e.health; h != nil {
		// Arm the per-lane stall watchdog with the health layer's adaptive
		// budgets, so a gray lane loses its chunk to a healthy one instead
		// of dragging the stripe's tail.
		env.Budget = func(r core.Route, size float64) float64 {
			return h.Budget(health.ClassRoute, r.String(), size)
		}
	}

	spec := multipath.Spec{Name: job.Name, Size: job.Size, MD5: job.MD5, Chunk: chunk}
	var rep multipath.Report
	var err error
	e.w.RunWorkload("sched-mp:"+job.Name, func(p *simproc.Proc) {
		rep, err = multipath.Run(p, spec, paths, env)
	})
	if err != nil {
		return rep, classifyExecErr(fmt.Errorf("sched: multipath execute %s: %w", job.Name, err))
	}
	e.Transfers++
	return rep, nil
}
