package telemetry

import (
	"fmt"
	"math"
	"sort"
)

// HistOpts describes a log-bucketed histogram: Buckets upper bounds
// starting at Start and growing by Factor, plus an implicit +Inf
// overflow bucket. The defaults (1 ms doubling 22 times, topping out
// around 35 minutes) cover sub-millisecond scheduler latencies through
// long parked-transfer drain times.
type HistOpts struct {
	// Start is the first (smallest) upper bound. Default 0.001.
	Start float64
	// Factor is the geometric growth between consecutive bounds.
	// Default 2.
	Factor float64
	// Buckets is the number of finite bounds. Default 22.
	Buckets int
}

func (o HistOpts) withDefaults() HistOpts {
	if o.Start <= 0 {
		o.Start = 0.001
	}
	if o.Factor <= 1 {
		o.Factor = 2
	}
	if o.Buckets <= 0 {
		o.Buckets = 22
	}
	return o
}

// bounds materializes the finite upper bounds. Bounds are computed as
// Start*Factor^i in one multiplication chain, so two histograms built
// from equal opts share bit-identical bounds and merge cleanly.
func (o HistOpts) bounds() []float64 {
	o = o.withDefaults()
	b := make([]float64, o.Buckets)
	v := o.Start
	for i := range b {
		b[i] = v
		v *= o.Factor
	}
	return b
}

// bucketFor places v in the first bucket whose upper bound is >= v
// (bucket i counts values in (bounds[i-1], bounds[i]]); values above
// the last bound land in the +Inf overflow bucket at index len(bounds).
func bucketFor(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// HistSnapshot is a point-in-time copy of one histogram child: Counts
// has len(Bounds)+1 entries, the last being the +Inf overflow bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Merge folds other into h. The bucket layouts must match exactly —
// merging histograms with different bounds is a schema error.
func (h *HistSnapshot) Merge(other *HistSnapshot) error {
	if h == nil || other == nil {
		return nil
	}
	if len(h.Bounds) != len(other.Bounds) {
		return fmt.Errorf("telemetry: merge of mismatched histograms (%d vs %d buckets)",
			len(h.Bounds), len(other.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("telemetry: merge of mismatched histograms (bound %d: %g vs %g)",
				i, h.Bounds[i], other.Bounds[i])
		}
	}
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	return nil
}

// Quantile returns an estimate of the q-quantile (0..1) assuming values
// sit at their bucket's upper bound — a deliberately conservative
// (over-) estimate that is stable across runs. Returns 0 on an empty
// histogram; the overflow bucket reports +Inf.
func (h *HistSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Mean returns Sum/Count (0 when empty).
func (h *HistSnapshot) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}
