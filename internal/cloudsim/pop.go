package cloudsim

import (
	"detournet/internal/httpsim"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// POP is a provider edge point-of-presence: a reverse proxy near the
// clients that terminates TLS and forwards API requests to the home
// datacenter over the provider's (presumably well-provisioned) path.
//
// The paper's Sec I remedy — "the identification of these inefficiencies
// may encourage cloud-storage providers to add additional POPs or
// gateways" — is exactly this object: a provider-operated detour. The
// POP ablation benchmark measures whether a Vancouver Google POP would
// have made the paper's UAlberta detour unnecessary.
type POP struct {
	// Host is the edge node the POP serves from.
	Host string
	// Forwarded counts proxied requests.
	Forwarded int

	svc      *Service
	upstream *httpsim.Client
}

// StartPOP runs an edge POP for the service on popHost. Clients use the
// provider SDK pointed at popHost instead of the datacenter; every
// request is forwarded upstream and the response relayed back. The POP
// is stateless: sessions, auth, and storage all live at the datacenter.
func StartPOP(tn *transport.Net, svc *Service, popHost string) *POP {
	pop := &POP{
		Host:     popHost,
		svc:      svc,
		upstream: httpsim.NewClient(tn, popHost, APIPort, true),
	}
	l := tn.MustListen(popHost, APIPort)
	r := tn.Runner()
	r.Go("pop:"+popHost, func(p *simproc.Proc) {
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			r.Go("pop-conn:"+c.RemoteHost(), func(hp *simproc.Proc) {
				pop.serve(hp, c)
			})
		}
	})
	return pop
}

func (pop *POP) serve(p *simproc.Proc, c *transport.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return
		}
		req, ok := msg.Payload.(*httpsim.Request)
		if !ok {
			return
		}
		// Forward upstream with the datacenter as the new host. The
		// upstream connection is kept alive across requests, so chunked
		// uploads ride one ramped connection POP->DC.
		fwd := *req
		fwd.Host = pop.svc.Host
		resp, err := pop.upstream.Do(p, &fwd)
		if err != nil {
			resp = &httpsim.Response{
				Status: httpsim.StatusInternalServerError,
				Body:   []byte("pop: upstream: " + err.Error()),
			}
		}
		pop.Forwarded++
		if err := c.Send(p, resp, resp.Size()); err != nil {
			return
		}
	}
}
