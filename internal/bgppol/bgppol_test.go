package bgppol

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
	"detournet/internal/topology"
)

// Diamond: stub1 and stub2 are customers of t1 and t2; t1 peers t2.
func diamond() *Policy {
	p := NewPolicy()
	p.MustAddCustomerProvider("stub1", "t1")
	p.MustAddCustomerProvider("stub2", "t2")
	p.MustAddPeer("t1", "t2")
	return p
}

func TestRelationshipValidation(t *testing.T) {
	p := NewPolicy()
	if err := p.AddCustomerProvider("a", "a"); err == nil {
		t.Fatal("self-provider accepted")
	}
	if err := p.AddPeer("a", "a"); err == nil {
		t.Fatal("self-peer accepted")
	}
	p.MustAddCustomerProvider("a", "b")
	if err := p.AddPeer("a", "b"); err == nil {
		t.Fatal("peer over existing transit accepted")
	}
	if err := p.AddCustomerProvider("b", "a"); err == nil {
		t.Fatal("mutual transit accepted")
	}
	q := NewPolicy()
	q.MustAddPeer("x", "y")
	if err := q.AddCustomerProvider("x", "y"); err == nil {
		t.Fatal("transit over existing peering accepted")
	}
}

func TestCustomerRoutePreferredOverPeer(t *testing.T) {
	// dest is customer of t1. src is customer of both t1 (via mid) and
	// has a peer path. Build: src -> mid -> t1 -> dest (provider chain),
	// and src peers with t1.
	p := NewPolicy()
	p.MustAddCustomerProvider("dest", "src") // dest is src's customer
	p.MustAddCustomerProvider("src", "t1")   // src also buys from t1
	p.MustAddCustomerProvider("dest", "t1")
	routes, err := p.RoutesTo("dest")
	if err != nil {
		t.Fatal(err)
	}
	r := routes["src"]
	if r.Type != CustomerRoute || r.NextHop != "dest" {
		t.Fatalf("src route = %+v, want customer via dest", r)
	}
	// t1 also has dest as a customer.
	if routes["t1"].Type != CustomerRoute {
		t.Fatalf("t1 route = %+v", routes["t1"])
	}
}

func TestPeerRouteUsedWhenNoCustomerRoute(t *testing.T) {
	p := diamond()
	routes, err := p.RoutesTo("stub2")
	if err != nil {
		t.Fatal(err)
	}
	// t1 reaches stub2 via its peer t2 (t2 has a customer route).
	if r := routes["t1"]; r.Type != PeerRoute || r.NextHop != "t2" {
		t.Fatalf("t1 route = %+v, want peer via t2", r)
	}
	// stub1 must go up to its provider t1 first.
	if r := routes["stub1"]; r.Type != ProviderRoute || r.NextHop != "t1" {
		t.Fatalf("stub1 route = %+v, want provider via t1", r)
	}
}

func TestDomainPathValleyFree(t *testing.T) {
	p := diamond()
	path, err := p.DomainPath("stub1", "stub2")
	if err != nil {
		t.Fatal(err)
	}
	want := "stub1,t1,t2,stub2"
	if got := strings.Join(path, ","); got != want {
		t.Fatalf("path = %s, want %s", got, want)
	}
	if !p.ValleyFree(path) {
		t.Fatal("computed path not valley-free")
	}
}

func TestNoValleyTransit(t *testing.T) {
	// Classic violation: stub domain must not transit between two
	// providers. p1 and p2 are both providers of stub, nothing else
	// connects them. p1 must NOT reach p2 via stub.
	p := NewPolicy()
	p.MustAddCustomerProvider("stub", "p1")
	p.MustAddCustomerProvider("stub", "p2")
	if _, err := p.DomainPath("p1", "p2"); err == nil {
		t.Fatal("valley path through stub customer was allowed")
	}
	// And the valley path is recognized as such.
	if p.ValleyFree([]string{"p1", "stub", "p2"}) {
		t.Fatal("ValleyFree accepted a valley")
	}
}

func TestPeerOnlyOnce(t *testing.T) {
	// Two peer edges in a row are not valley-free.
	p := NewPolicy()
	p.MustAddPeer("a", "b")
	p.MustAddPeer("b", "c")
	if p.ValleyFree([]string{"a", "b", "c"}) {
		t.Fatal("double-peer path accepted")
	}
	if _, err := p.DomainPath("a", "c"); err == nil {
		t.Fatal("route requiring two peer hops was computed")
	}
}

func TestProviderChainUphill(t *testing.T) {
	// a -> p -> pp (grandparent provider), dest is customer of pp.
	p := NewPolicy()
	p.MustAddCustomerProvider("a", "p")
	p.MustAddCustomerProvider("p", "pp")
	p.MustAddCustomerProvider("dest", "pp")
	path, err := p.DomainPath("a", "dest")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(path, ","); got != "a,p,pp,dest" {
		t.Fatalf("path = %s", got)
	}
	if !p.ValleyFree(path) {
		t.Fatal("uphill chain path should be valley-free")
	}
}

func TestShorterCustomerRouteWins(t *testing.T) {
	p := NewPolicy()
	// dest customer of m, m customer of top; dest also customer of top.
	p.MustAddCustomerProvider("dest", "m")
	p.MustAddCustomerProvider("m", "top")
	p.MustAddCustomerProvider("dest", "top")
	routes, _ := p.RoutesTo("dest")
	if r := routes["top"]; r.Len != 1 || r.NextHop != "dest" {
		t.Fatalf("top should take 1-hop customer route, got %+v", r)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	for i := 0; i < 5; i++ {
		p := NewPolicy()
		p.MustAddCustomerProvider("dest", "x")
		p.MustAddCustomerProvider("dest", "y")
		p.MustAddCustomerProvider("src", "x")
		p.MustAddCustomerProvider("src", "y")
		path, err := p.DomainPath("src", "dest")
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(path, ","); got != "src,x,dest" {
			t.Fatalf("tie-break chose %s, want src,x,dest", got)
		}
	}
}

func TestUnknownDomains(t *testing.T) {
	p := diamond()
	if _, err := p.RoutesTo("nope"); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if _, err := p.DomainPath("nope", "stub1"); err == nil {
		t.Fatal("unknown source accepted")
	}
}

// Property: every path DomainPath produces is valley-free, for random
// relationship graphs.
func TestPropertyAllComputedPathsValleyFree(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := NewPolicy()
		n := 8
		doms := make([]string, n)
		for i := range doms {
			doms[i] = string(rune('a' + i))
			p.AddDomain(doms[i])
		}
		// Random DAG-ish transit edges (low index buys from high index)
		// plus random peerings.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				switch rng.Intn(4) {
				case 0:
					p.MustAddCustomerProvider(doms[i], doms[j])
				case 1:
					_ = p.AddPeer(doms[i], doms[j])
				}
			}
		}
		for _, s := range doms {
			for _, d := range doms {
				if s == d {
					continue
				}
				path, err := p.DomainPath(s, d)
				if err != nil {
					continue // unreachable under policy is fine
				}
				if !p.ValleyFree(path) {
					t.Fatalf("seed %d: path %v not valley-free", seed, path)
				}
				if path[0] != s || path[len(path)-1] != d {
					t.Fatalf("seed %d: endpoints wrong: %v", seed, path)
				}
			}
		}
	}
}

// --- Finder integration over a topology ---

func buildTwoDomainGraph(t *testing.T) (*topology.Graph, *Policy) {
	t.Helper()
	g := topology.New(fluid.New(simclock.NewEngine()))
	add := func(name, dom string) {
		g.MustAddNode(&topology.Node{Name: name, Domain: dom, Kind: topology.Router, RespondsICMP: true})
	}
	// Domain A: hostA - coreA - borderA ; Domain B: borderB - coreB - hostB
	add("hostA", "A")
	add("coreA", "A")
	add("borderA", "A")
	add("borderB", "B")
	add("coreB", "B")
	add("hostB", "B")
	spec := topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.001}
	g.MustConnect("hostA", "coreA", spec)
	g.MustConnect("coreA", "borderA", spec)
	g.MustConnect("borderA", "borderB", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.010})
	g.MustConnect("borderB", "coreB", spec)
	g.MustConnect("coreB", "hostB", spec)
	p := NewPolicy()
	p.MustAddCustomerProvider("A", "B")
	return g, p
}

func TestFinderStitchesDomains(t *testing.T) {
	g, p := buildTwoDomainGraph(t)
	g.SetRouter(Finder{Policy: p})
	path, err := g.Path("hostA", "hostB")
	if err != nil {
		t.Fatal(err)
	}
	want := "hostA,coreA,borderA,borderB,coreB,hostB"
	if got := strings.Join(topology.PathNames(path), ","); got != want {
		t.Fatalf("path = %s, want %s", got, want)
	}
}

func TestFinderRejectsPolicyViolations(t *testing.T) {
	g, _ := buildTwoDomainGraph(t)
	// Policy with no relationship between A and B at all.
	p := NewPolicy()
	p.AddDomain("A")
	p.AddDomain("B")
	g.SetRouter(Finder{Policy: p})
	if _, err := g.Path("hostA", "hostB"); err == nil {
		t.Fatal("route computed despite missing relationship")
	}
}

func TestFinderNodeWithoutDomain(t *testing.T) {
	g, p := buildTwoDomainGraph(t)
	g.MustAddNode(&topology.Node{Name: "lone"})
	g.SetRouter(Finder{Policy: p})
	if _, err := g.Path("lone", "hostB"); err == nil {
		t.Fatal("domainless node routed")
	}
}

func TestFinderSameDomainUsesIntraPath(t *testing.T) {
	g, p := buildTwoDomainGraph(t)
	g.SetRouter(Finder{Policy: p})
	path, err := g.Path("hostA", "borderA")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(topology.PathNames(path), ","); got != "hostA,coreA,borderA" {
		t.Fatalf("intra-domain path = %s", got)
	}
}

func TestFinderHotPotatoPicksNearestBorder(t *testing.T) {
	// Domain A has two borders; the nearer one (by delay) must be used.
	g := topology.New(fluid.New(simclock.NewEngine()))
	add := func(name, dom string) {
		g.MustAddNode(&topology.Node{Name: name, Domain: dom, Kind: topology.Router, RespondsICMP: true})
	}
	add("src", "A")
	add("farBorder", "A")
	add("nearBorder", "A")
	add("bIn1", "B")
	add("bIn2", "B")
	add("dst", "B")
	g.MustConnect("src", "farBorder", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.050})
	g.MustConnect("src", "nearBorder", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.001})
	g.MustConnect("farBorder", "bIn1", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.001})
	g.MustConnect("nearBorder", "bIn2", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.001})
	g.MustConnect("bIn1", "dst", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.001})
	g.MustConnect("bIn2", "dst", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.001})
	p := NewPolicy()
	p.MustAddCustomerProvider("A", "B")
	g.SetRouter(Finder{Policy: p})
	path, err := g.Path("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(topology.PathNames(path), ",")
	if got != "src,nearBorder,bIn2,dst" {
		t.Fatalf("hot-potato path = %s, want src,nearBorder,bIn2,dst", got)
	}
}

func BenchmarkRoutesToLargeGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := NewPolicy()
	n := 60
	doms := make([]string, n)
	for i := range doms {
		doms[i] = fmt.Sprintf("as%d", i)
		p.AddDomain(doms[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch rng.Intn(6) {
			case 0:
				p.MustAddCustomerProvider(doms[i], doms[j])
			case 1:
				_ = p.AddPeer(doms[i], doms[j])
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RoutesTo(doms[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}

// paperDomains encodes the AS-level relationships of the paper's
// setting (IXP fabrics like PacificWave are not ASes and are omitted):
// universities buy from regional research networks, regionals buy from
// or peer with the national backbones, the backbones peer with the
// cloud providers, and Purdue additionally buys commodity transit.
func paperDomains() *Policy {
	p := NewPolicy()
	// Research side.
	p.MustAddCustomerProvider("UBC", "BCNet")
	p.MustAddCustomerProvider("BCNet", "CANARIE")
	p.MustAddCustomerProvider("UAlberta", "Cybera")
	p.MustAddCustomerProvider("Cybera", "CANARIE")
	p.MustAddCustomerProvider("UMich", "Merit")
	p.MustAddCustomerProvider("Merit", "Internet2")
	p.MustAddCustomerProvider("Purdue", "Internet2")
	p.MustAddPeer("CANARIE", "Internet2")
	// Commodity side: regionals and nationals buy commodity transit for
	// destinations without research peering.
	p.MustAddCustomerProvider("Purdue", "ISP")
	p.MustAddCustomerProvider("UCLA", "CENIC")
	p.MustAddPeer("CENIC", "ISP")
	p.MustAddCustomerProvider("CANARIE", "ISP")
	p.MustAddCustomerProvider("Merit", "ISP")
	// Providers peer with the backbones and buy commodity transit.
	p.MustAddPeer("Google", "CANARIE")
	p.MustAddPeer("Google", "Internet2")
	p.MustAddPeer("Google", "CENIC")
	p.MustAddCustomerProvider("Google", "ISP")
	p.MustAddCustomerProvider("Microsoft", "ISP")
	p.MustAddPeer("Microsoft", "CANARIE")
	p.MustAddPeer("Microsoft", "Internet2")
	p.MustAddCustomerProvider("Dropbox", "ISP")
	return p
}

func TestPaperDomainsPolicy(t *testing.T) {
	p := paperDomains()
	// Every client reaches every provider valley-free.
	for _, src := range []string{"UBC", "UAlberta", "Purdue", "UMich", "UCLA"} {
		for _, dst := range []string{"Google", "Microsoft", "Dropbox"} {
			path, err := p.DomainPath(src, dst)
			if err != nil {
				t.Fatalf("%s -> %s unreachable: %v", src, dst, err)
			}
			if !p.ValleyFree(path) {
				t.Fatalf("%s -> %s path %v not valley-free", src, dst, path)
			}
		}
	}
	// UBC and UAlberta both reach Google through CANARIE's peering —
	// the shared vncv1rtr2 hand-off of Figs 5-6.
	for _, src := range []string{"UBC", "UAlberta"} {
		path, _ := p.DomainPath(src, "Google")
		if got := strings.Join(path, ","); !strings.Contains(got, "CANARIE,Google") {
			t.Fatalf("%s -> Google should exit via the CANARIE peering: %v", src, path)
		}
	}
	// The paper's Purdue pathology emerges from policy alone: Purdue's
	// commodity provider route to Google (ISP has Google as a customer)
	// and its research route (Internet2 peers with Google) are both
	// provider routes of equal AS-path length, and nothing in vanilla
	// Gao-Rexford prefers the research path — so Purdue's traffic can
	// legitimately ride the congested commodity peering even though a
	// fast Internet2 path exists. (Operators fix this with local-pref;
	// the scenario's route pins stand in for the 2015 misconfiguration.)
	path, _ := p.DomainPath("Purdue", "Google")
	if got := strings.Join(path, ","); got != "Purdue,ISP,Google" {
		t.Fatalf("Purdue -> Google = %v, want the commodity route under plain Gao-Rexford", got)
	}
	if !p.ValleyFree([]string{"Purdue", "Internet2", "Google"}) {
		t.Fatal("the fast Internet2 alternative must exist and be policy-compliant")
	}
	// Dropbox is commodity-only: research clients must descend through
	// the ISP (no research peering exists), never through another
	// university.
	path, _ = p.DomainPath("UBC", "Dropbox")
	if !strings.Contains(strings.Join(path, ","), "ISP,Dropbox") {
		t.Fatalf("UBC -> Dropbox = %v", path)
	}
	for _, dom := range path {
		if dom == "UAlberta" || dom == "Purdue" || dom == "UMich" || dom == "UCLA" {
			t.Fatalf("path transits a stub university: %v", path)
		}
	}
	// No university ever carries transit for another: routes between
	// providers never dip into a customer stub.
	gPath, err := p.DomainPath("Google", "Microsoft")
	if err != nil {
		t.Fatalf("Google -> Microsoft: %v", err)
	}
	if !p.ValleyFree(gPath) {
		t.Fatalf("provider-to-provider path not valley-free: %v", gPath)
	}
	// The detour's policy insight: the overlay relay at UAlberta is the
	// only way UBC traffic legitimately "uses" UAlberta's connectivity —
	// native routing never sends UBC packets through the UAlberta stub.
	ubcGoogle, _ := p.DomainPath("UBC", "Google")
	for _, dom := range ubcGoogle {
		if dom == "UAlberta" || dom == "Cybera" {
			t.Fatalf("native routing should not transit UAlberta: %v", ubcGoogle)
		}
	}
}
