// Multipath: stripe one upload across the direct route and the DTN
// detours at once, and compare against the best single path — the
// natural next question after the paper's "pick the one fastest route"
// selector. For every site/provider pair the program measures each
// single route on an idle network, then re-runs the same transfer
// striped through the scheduler's JobMultipath mode, where a
// work-conserving chunk ledger feeds each lane at its own pace and
// hedges stragglers under a duplication cap.
//
// The topology's geometry shows up directly in the numbers: sites
// whose direct and detour paths bottleneck on disjoint links (UBC)
// gain up to ~1.5x over their best single path, while sites capped by
// a shared last mile (UCLA) cannot gain — there striping must merely
// not lose (never more than 5% below the best single path).
//
// A churn leg then drives one large striped transfer into the BGP
// reconvergence storm (internal/faults.ChurnSchedule): lanes crossing
// converging sessions drain make-before-break, failed chunks re-enter
// the ledger, and per-path checkpoints bound re-sent bytes to at most
// one chunk per failure.
//
// Output is byte-identical per seed, which `make check` verifies by
// running this program twice.
package main

import (
	"flag"
	"fmt"
	"os"

	"detournet/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 2015, "world seed")
	sizeMB := flag.Float64("size", 96, "MB per compared transfer")
	churnMB := flag.Float64("churn-size", 480, "MB for the churn leg")
	flag.Parse()

	o := sched.RunMultipath(sched.MultipathOptions{Seed: *seed, Size: *sizeMB * 1e6})
	churn := sched.RunMultipathChurn(*seed, *churnMB*1e6)
	sched.WriteMultipathReport(os.Stdout, o, churn)
	if err := sched.MultipathSanity(o); err != nil {
		fmt.Fprintf(os.Stderr, "multipath: %v\n", err)
		os.Exit(1)
	}
}
