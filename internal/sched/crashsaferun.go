// Crashsafe replay: the crash-consistency harness behind `make
// crashsafe`, the examples/crashsafe program, detourd's -crashsafe
// mode, and the crashsafe acceptance tests. One RunCrashsafe call
// builds a world and drives a fixed UBC fleet through a journaled
// scheduler; when a crash point is armed, the control plane dies
// there, and the harness restarts it on the same journal device — the
// replay truncates any torn tail, re-seats finished results, resumes
// in-flight transfers from their journaled checkpoints under their
// original idempotent attempt IDs, and completes the fleet. The
// verdict arithmetic checks what the paper-style operator cares about:
// the provider holds exactly the objects the crash-free run produced
// (byte-identical listing), no object was committed twice, and the
// crash cost at most a rewind's worth of re-sent bytes.
//
// Everything is deterministic per seed: Workers is 1, the virtual
// clock drives Now/Sleep, and the report renderer only iterates sorted
// data. Same seed, same binary ⇒ byte-identical output, which `make
// check` verifies.
package sched

import (
	"fmt"
	"io"
	"sort"

	"detournet/internal/faults"
	"detournet/internal/health"
	"detournet/internal/journal"
	"detournet/internal/rsyncx"
	"detournet/internal/scenario"
)

// CrashsafeOptions configures one crash-consistency replay.
type CrashsafeOptions struct {
	// Seed drives the world and the injected error bits.
	Seed int64
	// Jobs is the fleet size (default 60); Size the bytes per transfer
	// (default 60 MB).
	Jobs int
	Size float64
	// Point, when non-empty, arms a kill at the named control-plane
	// crash point (see CrashPoints); Occurrence selects which hit fires
	// (1-based). Empty runs crash-free — the control arm.
	Point      string
	Occurrence int
	// BitRot corrupts staged chunks of every in-flight job between the
	// crash and the restart — the decayed-disk restart. Recovery must
	// repair exactly the damaged chunks (ChunkRepairs), never discard
	// the transfer (IntegrityRetries).
	BitRot bool
	// Decay arms faults.CrashsafeSchedule alongside: DTN torn writes,
	// a mid-fleet DTN crash, and periodic staged-chunk rot.
	Decay bool
	// JournalFaults turns the decay on the journal itself: injected
	// bit rot flips journal bytes mid-run, then a torn append kills the
	// control plane mid-record. The restart must recover the longest
	// valid prefix and precheck its way past the lost records.
	JournalFaults bool
	// JournalPath backs the journal with a real file (torn tails and
	// compaction swaps hit the filesystem). Empty uses an in-memory
	// device.
	JournalPath string
}

// CrashsafeOutcome is one replay's complete, deterministic result set.
type CrashsafeOutcome struct {
	// Point echoes the armed crash point ("" for the control arm);
	// Crashed reports whether the kill actually fired.
	Point   string
	Crashed bool
	// Results merges the journal-replayed finishes with the restarted
	// scheduler's live ones; exactly one Result per job.
	Results []Result
	// Stats is the final incarnation's counter snapshot.
	Stats Stats
	// Listing is the provider-side truth — sorted "provider name size
	// md5" lines — the byte-identical acceptance surface. IDs and
	// timestamps are deliberately excluded: a recovered fleet commits
	// the same bytes, not the same wall-clock.
	Listing []string
	// MaxCommits is the largest materializing-commit count any fleet
	// object received (must be 1: zero duplicate provider commits);
	// DupSuppressed counts commits the provider answered from its
	// idempotent attempt table instead of re-materializing.
	MaxCommits    int
	DupSuppressed int
	// ReplayedResults is how many finishes came from the journal;
	// ReplayRecords / TruncatedBytes / DupFinishes describe the replay.
	ReplayedResults int
	ReplayRecords   int
	TruncatedBytes  int
	DupFinishes     int
	// ResumedBytes / RewrittenBytes / ChunkRepairs aggregate the merged
	// results' checkpoint accounting; IntegrityRetries sums both
	// incarnations' whole-transfer integrity discards.
	ResumedBytes     float64
	RewrittenBytes   float64
	ChunkRepairs     int
	IntegrityRetries int64
	// RottedChunks is how many staged chunks the BitRot restart
	// corrupted; Compactions counts journal snapshot swaps across both
	// incarnations.
	RottedChunks int
	Compactions  int
	// Hits is the per-crash-point reach count summed over both
	// incarnations — the sweep's coverage evidence.
	Hits map[string]int
	// Transitions is the fault injector's log (Decay arm only).
	Transitions []string
	// VirtualSeconds is the total simulated time, restart included.
	VirtualSeconds float64
}

// Done counts successful results.
func (o CrashsafeOutcome) Done() int {
	n := 0
	for _, r := range o.Results {
		if r.Err == nil {
			n++
		}
	}
	return n
}

// crashsafeJobName is the fleet's deterministic naming scheme.
func crashsafeJobName(i int) string { return fmt.Sprintf("crash-%03d.bin", i) }

// RunCrashsafe replays the crash-consistency scenario once: a crash-free
// control run when no Point is armed, otherwise kill + restart + replay
// on the same journal device.
func RunCrashsafe(o CrashsafeOptions) CrashsafeOutcome {
	if o.Jobs <= 0 {
		o.Jobs = 60
	}
	if o.Size <= 0 {
		o.Size = 60e6
	}
	w := scenario.Build(o.Seed)

	var specs []faults.Spec
	if o.Decay {
		specs = faults.CrashsafeSchedule()
	}
	if o.JournalFaults {
		// Journal decay: rot flips log bytes while transfers run, then a
		// torn append (which is also a kill — the write and the process
		// die together) forces the restart to replay the damaged log.
		specs = append(specs,
			faults.Spec{Kind: faults.BitRot, Journal: true, Start: 20, Duration: 5, Flips: 3},
			faults.Spec{Kind: faults.TornWrite, Journal: true, Start: 40, Duration: 1e9},
		)
	}
	var inj *faults.Injector
	if len(specs) > 0 {
		inj = faults.NewInjector(w, o.Seed, specs...)
	}

	var dev journal.Device
	if o.JournalPath != "" {
		fd, err := journal.OpenFileDevice(o.JournalPath)
		if err != nil {
			panic(fmt.Sprintf("crashsafe: journal device: %v", err))
		}
		dev = fd
	} else {
		dev = journal.NewMemDevice()
	}

	// --- first incarnation ---
	cj, _, err := NewControlJournal(dev)
	if err != nil {
		panic(fmt.Sprintf("crashsafe: journal open: %v", err))
	}
	if inj != nil {
		inj.SetCrashControl(&faults.CrashControl{
			ArmCrash: cj.Arm, DisarmCrash: cj.Disarm,
			TornJournal: cj.TornJournal, FlipJournal: cj.FlipJournalByte,
		})
	}
	if o.Point != "" {
		// Armed before the scheduler exists: the kill plan is part of the
		// experiment, not a mid-run race. (Virtual-time-scheduled arming
		// via faults.ProcCrash works too, but cannot deterministically
		// catch points in the t≈0 submit burst.)
		cj.Arm(o.Point, o.Occurrence)
	}
	results1, st1 := runCrashsafePhase(w, cj, o, nil, nil)

	out := CrashsafeOutcome{
		Point: o.Point,
		Hits:  make(map[string]int),
	}
	for _, pt := range CrashPoints() {
		out.Hits[pt] += cj.HitCount(pt)
	}
	out.Compactions = cj.Compactions()

	if !cj.Killed() {
		// Crash-free: the control arm (or an occurrence the run never
		// reached). No restart, no replay.
		out.Results, out.Stats = results1, st1
		out.IntegrityRetries = st1.IntegrityRetries
		finishCrashsafeOutcome(&out, w, o)
		if inj != nil {
			out.Transitions = inj.Transitions()
		}
		return out
	}
	out.Crashed = true

	// --- the crash: the dead process's memory is gone; the journal
	// device and the world (DTN disks, provider state) survive ---

	// Reopen the journal: replay, truncate any torn tail, fold.
	cj2, rec, err := NewControlJournal(dev)
	if err != nil {
		panic(fmt.Sprintf("crashsafe: journal reopen: %v", err))
	}
	if inj != nil {
		// The restart must not die at the same planned point again — the
		// fault modeled a one-shot kill, and the inherited schedule
		// windows would otherwise re-arm it through the old hooks. Journal
		// rot, though, keeps targeting the live device.
		inj.SetCrashControl(&faults.CrashControl{
			ArmCrash: func(string, int) {}, DisarmCrash: func(string) {},
			TornJournal: func(bool) {}, FlipJournal: cj2.FlipJournalByte,
		})
	}
	out.ReplayedResults = len(rec.Finished)
	out.ReplayRecords = rec.Records
	out.TruncatedBytes = rec.TruncatedBytes
	out.DupFinishes = rec.DupFinishes

	if o.BitRot {
		// Decayed-disk restart: while the process was down, the staging
		// media rotted under every in-flight job. Chunk 0 and a middle
		// chunk — deterministic, and enough to prove repair granularity.
		for _, pj := range rec.Pending {
			if !pj.HasCkpt || pj.Ck.Hop1Via == "" {
				continue
			}
			d := w.Daemons[pj.Ck.Hop1Via]
			if d == nil {
				continue
			}
			if d.RotChunk(pj.Job.Name, 0) {
				out.RottedChunks++
			}
			if n := d.StagedChunks(pj.Job.Name); n > 2 && d.RotChunk(pj.Job.Name, n/2) {
				out.RottedChunks++
			}
		}
	}

	// Skip jobs the journal proves finished; resubmit the rest in fleet
	// order so recovered names reuse their sequence numbers (and
	// therefore their idempotent attempt IDs).
	skip := make(map[string]bool, len(rec.Finished))
	for _, r := range rec.Finished {
		skip[r.Job.Name] = true
	}
	results2, st2 := runCrashsafePhase(w, cj2, o, skip, rec.RetrySpent)

	// One Result per job: journal-replayed finishes first (their
	// attempts and bytes counted exactly once — the journal's dedupe
	// already dropped any double-written finish record), then the
	// restarted scheduler's live ones.
	out.Results = append(append([]Result{}, rec.Finished...), results2...)
	out.Stats = st2
	out.IntegrityRetries = st1.IntegrityRetries + st2.IntegrityRetries
	for _, pt := range CrashPoints() {
		out.Hits[pt] += cj2.HitCount(pt)
	}
	out.Compactions += cj2.Compactions()
	if inj != nil {
		out.Transitions = inj.Transitions()
	}
	finishCrashsafeOutcome(&out, w, o)
	return out
}

// runCrashsafePhase drives one scheduler incarnation over the fleet.
// skip names jobs the journal already proved finished; retrySpent
// re-drains the fresh health tracker's budgets to the journaled level
// (a crash must not refill a sick provider's bucket).
func runCrashsafePhase(w *scenario.World, cj *ControlJournal, o CrashsafeOptions, skip map[string]bool, retrySpent map[string]int) ([]Result, Stats) {
	exec := NewSimExecutor(w)
	defer exec.Close()
	tracker := health.New(health.Options{
		Now: exec.VirtualNow, Trace: w.Trace, CanaryInterval: 60,
	})
	providers := make([]string, 0, len(retrySpent))
	for prov := range retrySpent {
		providers = append(providers, prov)
	}
	sort.Strings(providers)
	for _, prov := range providers {
		tracker.RestoreSpentRetries(prov, retrySpent[prov])
	}
	var results []Result
	cfg := Config{
		Workers:  1, // sequential ⇒ deterministic
		Executor: exec, Planner: exec,
		MaxAttempts: 4,
		CacheTTL:    3600,
		Health:      tracker,
		Journal:     cj,
		Now:         exec.VirtualNow,
		Sleep:       exec.SleepVirtual,
		OnResult: func(r Result) {
			if cj.Killed() {
				// The process is dead: nothing it produced after the kill
				// was observed by anyone. The journal is the only witness.
				return
			}
			results = append(results, r)
		},
	}
	s := New(cfg)
	// Submit before Start: the whole burst lands (and an after-submit
	// kill fires) with no transfer in flight, so every kill is
	// synchronous with the single worker — deterministic per seed.
	for i := 0; i < o.Jobs; i++ {
		name := crashsafeJobName(i)
		if skip[name] {
			continue
		}
		if cj.Killed() {
			// The submitter died with the process.
			break
		}
		err := s.Submit(Job{
			Tenant: "crashsafe", Client: scenario.UBC,
			Provider: scenario.GoogleDrive,
			Name:     name, Size: o.Size,
			MD5: rsyncx.Checksum([]byte(name)),
		})
		if err != nil {
			panic(err)
		}
	}
	s.Start()
	s.Drain()
	st := s.Stats()
	s.Close()
	return results, st
}

// finishCrashsafeOutcome derives the provider-truth fields: the sorted
// listing, the commit counts, and the merged checkpoint accounting.
func finishCrashsafeOutcome(out *CrashsafeOutcome, w *scenario.World, o CrashsafeOptions) {
	provs := make([]string, 0, len(w.Services))
	for p := range w.Services {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		for _, ob := range w.Services[p].Store.List() {
			out.Listing = append(out.Listing, fmt.Sprintf("%s %s %.0f %s", p, ob.Name, ob.Size, ob.MD5))
		}
		out.DupSuppressed += w.Services[p].Store.DuplicatesSuppressed()
	}
	store := w.Services[scenario.GoogleDrive].Store
	for i := 0; i < o.Jobs; i++ {
		if c := store.Commits(crashsafeJobName(i)); c > out.MaxCommits {
			out.MaxCommits = c
		}
	}
	for _, r := range out.Results {
		out.ResumedBytes += r.Resumed
		out.RewrittenBytes += r.Rewritten
		out.ChunkRepairs += r.ChunkRepairs
	}
	out.VirtualSeconds = float64(w.Eng.Now())
}

// CrashsafeVerdict is the acceptance arithmetic over a control/crashed
// pair.
type CrashsafeVerdict struct {
	// ByteIdentical reports the crashed run left the providers holding
	// exactly the control run's objects (same names, sizes, digests).
	ByteIdentical bool
	// MaxCommits must be 1: no fleet object was materialized twice.
	MaxCommits int
	// DupSuppressed counts provider commits answered idempotently — the
	// replays that WOULD have been duplicates without attempt IDs.
	DupSuppressed int
	// ResentBytes is the crash's re-send cost: the crashed run's
	// rewritten bytes over the control's.
	ResentBytes float64
	// ChunkRepairs and Replayed echo the crashed run's repair count and
	// journal-recovered finish count.
	ChunkRepairs int
	Replayed     int
}

// CompareCrashsafe scores a crashed run against the crash-free control
// for the same fleet and seed.
func CompareCrashsafe(control, crashed CrashsafeOutcome) CrashsafeVerdict {
	v := CrashsafeVerdict{
		ByteIdentical: len(control.Listing) == len(crashed.Listing),
		MaxCommits:    crashed.MaxCommits,
		DupSuppressed: crashed.DupSuppressed,
		ResentBytes:   crashed.RewrittenBytes - control.RewrittenBytes,
		ChunkRepairs:  crashed.ChunkRepairs,
		Replayed:      crashed.ReplayedResults,
	}
	if v.ByteIdentical {
		for i := range control.Listing {
			if control.Listing[i] != crashed.Listing[i] {
				v.ByteIdentical = false
				break
			}
		}
	}
	return v
}

// CrashsafeLeg is one swept crash scenario and its verdict.
type CrashsafeLeg struct {
	Point         string
	Occurrence    int
	BitRot        bool
	JournalFaults bool
	Outcome       CrashsafeOutcome
	Verdict       CrashsafeVerdict
}

// label renders the leg's scenario name.
func (l CrashsafeLeg) label() string {
	if l.Point == "" && l.JournalFaults {
		return "journal-rot+torn"
	}
	s := fmt.Sprintf("%s#%d", l.Point, l.Occurrence)
	if l.BitRot {
		s += "+bitrot"
	}
	if l.JournalFaults {
		s += "+jrot"
	}
	return s
}

// CrashsafeSweepLegs enumerates the sweep: every crash point, with an
// occurrence tuned to land mid-fleet, plus a bit-rot restart leg. The
// coverage test asserts the sweep reaches every enumerated point.
func CrashsafeSweepLegs() []CrashsafeLeg {
	return []CrashsafeLeg{
		{Point: CrashAfterSubmit, Occurrence: 30},
		{Point: CrashBeforeAttempt, Occurrence: 15},
		{Point: CrashAfterAttempt, Occurrence: 35},
		{Point: CrashTornAppend, Occurrence: 600},
		{Point: CrashMidHop1, Occurrence: 200},
		{Point: CrashMidHop2, Occurrence: 700},
		{Point: CrashBeforeFinish, Occurrence: 30},
		{Point: CrashAfterFinish, Occurrence: 40},
		{Point: CrashDuringCompact, Occurrence: 2},
		{Point: CrashMidHop2, Occurrence: 5, BitRot: true},
		{JournalFaults: true},
	}
}

// RunCrashsafeSweep runs the control arm once and every sweep leg
// against it.
func RunCrashsafeSweep(seed int64) (CrashsafeOutcome, []CrashsafeLeg) {
	control := RunCrashsafe(CrashsafeOptions{Seed: seed})
	legs := CrashsafeSweepLegs()
	for i := range legs {
		legs[i].Outcome = RunCrashsafe(CrashsafeOptions{
			Seed: seed, Point: legs[i].Point, Occurrence: legs[i].Occurrence,
			BitRot: legs[i].BitRot, JournalFaults: legs[i].JournalFaults,
		})
		legs[i].Verdict = CompareCrashsafe(control, legs[i].Outcome)
	}
	return control, legs
}

// WriteCrashsafeReport renders the deterministic report the crashsafe
// example and detourd's -crashsafe mode print.
func WriteCrashsafeReport(out io.Writer, control CrashsafeOutcome, legs []CrashsafeLeg) {
	fmt.Fprintf(out, "Crashsafe: %d-job fleet, kill at every control-plane crash point, restart on the journal\n", len(control.Results))
	fmt.Fprintf(out, "control: %d done | %d objects | rewritten %.1f MB | %d compactions | %.0f virtual s\n",
		control.Done(), len(control.Listing), control.RewrittenBytes/1e6, control.Compactions, control.VirtualSeconds)
	for _, l := range legs {
		o := l.Outcome
		v := l.Verdict
		ident := "IDENTICAL"
		if !v.ByteIdentical {
			ident = "DIVERGED"
		}
		fmt.Fprintf(out, "%-22s done %2d/%2d | replayed %2d (+%d records, %d B truncated, %d dup) | commits<=%d dup-suppressed %d | resent %6.1f MB | repairs %d | %s\n",
			l.label(), o.Done(), len(o.Results), v.Replayed, o.ReplayRecords,
			o.TruncatedBytes, o.DupFinishes, v.MaxCommits, v.DupSuppressed,
			v.ResentBytes/1e6, v.ChunkRepairs, ident)
	}
	fmt.Fprintln(out, "crash-point coverage (reaches across the sweep):")
	totals := make(map[string]int)
	for _, l := range legs {
		for pt, n := range l.Outcome.Hits {
			totals[pt] += n
		}
	}
	for pt, n := range control.Hits {
		totals[pt] += n
	}
	for _, pt := range CrashPoints() {
		fmt.Fprintf(out, "  %-15s %d\n", pt, totals[pt])
	}
}

// CrashsafeSanity checks the sweep's acceptance invariants: every leg
// fired its kill, recovered byte-identical to the control, and never
// committed an object twice. Non-nil means the crash-consistency
// contract is broken.
func CrashsafeSanity(control CrashsafeOutcome, legs []CrashsafeLeg) error {
	if got := control.Done(); got != len(control.Results) || got == 0 {
		return fmt.Errorf("control arm: %d/%d done", got, len(control.Results))
	}
	for _, l := range legs {
		switch {
		case !l.Outcome.Crashed:
			return fmt.Errorf("%s: kill never fired", l.label())
		case l.Outcome.Done() != control.Done():
			return fmt.Errorf("%s: %d done, control %d", l.label(), l.Outcome.Done(), control.Done())
		case !l.Verdict.ByteIdentical:
			return fmt.Errorf("%s: provider listing diverged", l.label())
		case l.Verdict.MaxCommits != 1:
			return fmt.Errorf("%s: %d commits on one object", l.label(), l.Verdict.MaxCommits)
		case l.Outcome.IntegrityRetries != 0:
			return fmt.Errorf("%s: %d whole-transfer integrity discards", l.label(), l.Outcome.IntegrityRetries)
		}
	}
	return nil
}

// journalRecName names the wire record types for the -journal dump.
var journalRecName = map[byte]string{
	recSubmit: "submit", recAttempt: "attempt", recCkpt: "ckpt",
	recCap: "cap", recRetry: "retry", recLanes: "lanes",
	recFinish: "finish", recSnapshot: "snapshot",
}

// WriteJournalDump replays a control journal file and prints the
// operator's view of it: the record census, any truncated tail, and
// the folded state a restart would recover — finished jobs, pending
// jobs with their checkpoints and idempotent attempt IDs, spent retry
// tokens, held cap slots. The detourctl -journal flag drives this.
func WriteJournalDump(out io.Writer, path string) error {
	dev, err := journal.OpenFileDevice(path)
	if err != nil {
		return err
	}
	recs, truncated, err := journal.Replay(dev)
	if err != nil {
		return err
	}
	counts := make(map[string]int)
	for _, r := range recs {
		name := journalRecName[r.Type]
		if name == "" {
			name = fmt.Sprintf("type-%d", r.Type)
		}
		counts[name]++
	}
	_, rec, err := NewControlJournal(dev)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "journal %s: %d records, %d B", path, len(recs), dev.Size())
	if truncated > 0 {
		fmt.Fprintf(out, " (torn tail: %d B truncated)", truncated)
	}
	fmt.Fprintln(out)
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(out, "  %-9s %d\n", n, counts[n])
	}
	fmt.Fprintf(out, "recovered state: %d finished, %d pending, %d duplicate finishes\n",
		len(rec.Finished), len(rec.Pending), rec.DupFinishes)
	for _, pj := range rec.Pending {
		line := fmt.Sprintf("  pending %s seq=%d id=%s attempts=%d", pj.Job.Name, pj.Seq, pj.AttemptID, pj.PriorAttempts)
		if pj.HasCkpt {
			line += fmt.Sprintf(" ckpt[hop1=%s@%.0f session=%v watermark=%.0f]",
				pj.Ck.Hop1Via, pj.Ck.Hop1High, pj.Ck.HasSession, pj.Ck.Watermark)
		}
		fmt.Fprintln(out, line)
	}
	provs := make([]string, 0, len(rec.RetrySpent))
	for p := range rec.RetrySpent {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		fmt.Fprintf(out, "  retries spent %s: %d\n", p, rec.RetrySpent[p])
	}
	keys := make([]string, 0, len(rec.CapsHeld))
	for k := range rec.CapsHeld {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "  cap held %s: %d\n", k, rec.CapsHeld[k])
	}
	return nil
}

// WriteCrashsafeDecayReport renders the storage-decay arm: DTN torn
// writes, a mid-fleet DTN crash, and staged-chunk rot, healed by
// chunk-level repair instead of whole-transfer discard.
func WriteCrashsafeDecayReport(out io.Writer, decay CrashsafeOutcome) {
	st := decay.Stats
	fmt.Fprintf(out, "decay: %d done %d failed | repairs %d integrity-retries %d | resumed %.1f MB rewritten %.1f MB | %d fault transitions | %.0f virtual s\n",
		st.Done, st.Failed, decay.ChunkRepairs, decay.IntegrityRetries,
		decay.ResumedBytes/1e6, decay.RewrittenBytes/1e6,
		len(decay.Transitions), decay.VirtualSeconds)
}
