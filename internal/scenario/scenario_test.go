package scenario

import (
	"strings"
	"testing"

	"detournet/internal/core"
	"detournet/internal/simproc"
	"detournet/internal/topology"
	"detournet/internal/traceroutex"
)

func TestBuildIsDeterministic(t *testing.T) {
	run := func() []float64 {
		w := Build(7)
		var out []float64
		client := w.NewSDKClient(UBC, GoogleDrive)
		w.RunWorkload("t", func(p *simproc.Proc) {
			for i := 0; i < 3; i++ {
				rep, err := core.DirectUpload(p, client, "f.bin", 10e6, "")
				if err != nil {
					t.Error(err)
					return
				}
				out = append(out, rep.Total)
			}
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestUBCTraceroutesMatchPaper(t *testing.T) {
	w := Build(1)
	// Fig 5: UBC -> Google Drive crosses vncv1rtr2 then PacificWave.
	res, err := traceroutex.Run(w.Graph, UBC, GDriveDC, traceroutex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CrossesHost("vncv1rtr2.canarie.ca") {
		t.Fatalf("UBC trace misses canarie middlebox: %v", res.HopNames())
	}
	if !res.CrossesHost("google-1-lo-std-707.sttlwa.pacificwave.net") {
		t.Fatalf("UBC trace misses pacificwave: %v", res.HopNames())
	}
	if len(res.Hops) != 9 {
		t.Fatalf("UBC trace has %d hops, want 9 (Fig 5)", len(res.Hops))
	}

	// Fig 6: UAlberta -> Google Drive crosses the same canarie router but
	// NOT pacificwave; the peering hop is anonymous.
	res, err = traceroutex.Run(w.Graph, UAlberta, GDriveDC, traceroutex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CrossesHost("vncv1rtr2.canarie.ca") {
		t.Fatalf("UAlberta trace misses canarie middlebox: %v", res.HopNames())
	}
	if res.CrossesHost("google-1-lo-std-707.sttlwa.pacificwave.net") {
		t.Fatalf("UAlberta trace wrongly crosses pacificwave: %v", res.HopNames())
	}
	names := res.HopNames()
	if len(names) != 13 {
		t.Fatalf("UAlberta trace has %d hops, want 13 (Fig 6): %v", len(names), names)
	}
	// Hops 2 and 10 are anonymous in the paper's Fig 6.
	if names[1] != "*" || names[9] != "*" {
		t.Fatalf("anonymous hops misplaced: %v", names)
	}
	out := res.Format()
	if !strings.Contains(out, "* * *") || !strings.Contains(out, "edmn1rtr2.canarie.ca (199.212.24.68)") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestPurdueRoutePins(t *testing.T) {
	w := Build(1)
	for _, dst := range []string{GDriveDC, OneDriveDC} {
		path, err := w.Graph.Path(Purdue, dst)
		if err != nil {
			t.Fatal(err)
		}
		names := strings.Join(topology.PathNames(path), ",")
		if !strings.Contains(names, "isp-west") {
			t.Fatalf("Purdue->%s not pinned to commodity ISP: %s", dst, names)
		}
	}
	// Dropbox (eastbound) is NOT pinned and uses research/transit paths.
	path, _ := w.Graph.Path(Purdue, DropboxDC)
	if strings.Contains(strings.Join(topology.PathNames(path), ","), "isp-west") {
		t.Fatal("Purdue->Dropbox should not cross the western ISP peering")
	}
}

// measure one upload over a route, on a fresh world per call so the
// background state is identical.
func timedUpload(t *testing.T, seed int64, from, provider string, route core.Route, size float64) float64 {
	t.Helper()
	w := Build(seed)
	var total float64
	w.RunWorkload("timed", func(p *simproc.Proc) {
		var rep core.Report
		var err error
		if route.Kind == core.Direct {
			rep, err = core.DirectUpload(p, w.NewSDKClient(from, provider), "f.bin", size, "")
		} else {
			rep, err = w.NewDetourClient(from, route.Via).Upload(p, provider, "f.bin", size, "")
		}
		if err != nil {
			t.Errorf("%s %s %v: %v", from, provider, route, err)
			return
		}
		total = rep.Total
	})
	return total
}

func TestUBCGoogleDriveCalibration(t *testing.T) {
	// Paper Table II @100MB: direct 86.92s, via UAlberta 35.79s, via
	// UMich 132.17s. Allow generous windows around the shape.
	size := 100e6
	direct := timedUpload(t, 11, UBC, GoogleDrive, core.DirectRoute, size)
	viaUAlb := timedUpload(t, 11, UBC, GoogleDrive, core.ViaRoute(UAlberta), size)
	viaUMich := timedUpload(t, 11, UBC, GoogleDrive, core.ViaRoute(UMich), size)
	t.Logf("UBC->GDrive 100MB: direct=%.1f viaUAlberta=%.1f viaUMich=%.1f", direct, viaUAlb, viaUMich)
	if direct < 70 || direct > 110 {
		t.Errorf("direct = %.1f, want ~87", direct)
	}
	if viaUAlb < 28 || viaUAlb > 50 {
		t.Errorf("via UAlberta = %.1f, want ~36", viaUAlb)
	}
	if viaUMich < 105 || viaUMich > 170 {
		t.Errorf("via UMich = %.1f, want ~132", viaUMich)
	}
	if !(viaUAlb < direct && direct < viaUMich) {
		t.Errorf("ordering broken: %v %v %v", viaUAlb, direct, viaUMich)
	}
}

func TestUBCDropboxDirectWins(t *testing.T) {
	size := 100e6
	direct := timedUpload(t, 12, UBC, Dropbox, core.DirectRoute, size)
	viaUAlb := timedUpload(t, 12, UBC, Dropbox, core.ViaRoute(UAlberta), size)
	viaUMich := timedUpload(t, 12, UBC, Dropbox, core.ViaRoute(UMich), size)
	t.Logf("UBC->Dropbox 100MB: direct=%.1f viaUAlberta=%.1f viaUMich=%.1f", direct, viaUAlb, viaUMich)
	if !(direct < viaUAlb && viaUAlb < viaUMich) {
		t.Errorf("Fig 4 ordering broken: direct=%v viaUAlb=%v viaUMich=%v", direct, viaUAlb, viaUMich)
	}
}

func TestUBCOneDriveDirectWins(t *testing.T) {
	size := 60e6
	direct := timedUpload(t, 13, UBC, OneDrive, core.DirectRoute, size)
	viaUAlb := timedUpload(t, 13, UBC, OneDrive, core.ViaRoute(UAlberta), size)
	if direct >= viaUAlb {
		t.Errorf("UBC->OneDrive direct %v should beat detour %v", direct, viaUAlb)
	}
}

func TestPurdueGoogleDriveDetoursWin(t *testing.T) {
	// Paper Table III: both detours ~70-84% faster than direct.
	size := 100e6
	direct := timedUpload(t, 14, Purdue, GoogleDrive, core.DirectRoute, size)
	viaUAlb := timedUpload(t, 14, Purdue, GoogleDrive, core.ViaRoute(UAlberta), size)
	viaUMich := timedUpload(t, 14, Purdue, GoogleDrive, core.ViaRoute(UMich), size)
	t.Logf("Purdue->GDrive 100MB: direct=%.1f viaUAlberta=%.1f viaUMich=%.1f", direct, viaUAlb, viaUMich)
	for name, v := range map[string]float64{"viaUAlberta": viaUAlb, "viaUMich": viaUMich} {
		gain := (direct - v) / direct
		if gain < 0.5 {
			t.Errorf("%s gain = %.0f%%, want >= 50%%", name, gain*100)
		}
	}
	// The two detours are comparable (within 2x of each other).
	if viaUAlb > 2*viaUMich || viaUMich > 2*viaUAlb {
		t.Errorf("detours not comparable: %v vs %v", viaUAlb, viaUMich)
	}
}

func TestPurdueDropboxDirectUsuallyBest(t *testing.T) {
	size := 100e6
	direct := timedUpload(t, 15, Purdue, Dropbox, core.DirectRoute, size)
	viaUAlb := timedUpload(t, 15, Purdue, Dropbox, core.ViaRoute(UAlberta), size)
	t.Logf("Purdue->Dropbox 100MB: direct=%.1f viaUAlberta=%.1f", direct, viaUAlb)
	if direct >= viaUAlb {
		t.Errorf("Table IV: direct mean (%v) should beat via-UAlberta mean (%v) at 100MB", direct, viaUAlb)
	}
}

func TestPurdueOneDriveDetourWinsAtLargeSizes(t *testing.T) {
	direct := timedUpload(t, 16, Purdue, OneDrive, core.DirectRoute, 100e6)
	viaUAlb := timedUpload(t, 16, Purdue, OneDrive, core.ViaRoute(UAlberta), 100e6)
	t.Logf("Purdue->OneDrive 100MB: direct=%.1f viaUAlberta=%.1f", direct, viaUAlb)
	if viaUAlb >= direct {
		t.Errorf("Fig 9 @100MB: detour (%v) should beat direct (%v)", viaUAlb, direct)
	}
}

func TestUCLAEverythingSlowDetoursUseless(t *testing.T) {
	size := 60e6
	direct := timedUpload(t, 17, UCLA, GoogleDrive, core.DirectRoute, size)
	viaUAlb := timedUpload(t, 17, UCLA, GoogleDrive, core.ViaRoute(UAlberta), size)
	viaUMich := timedUpload(t, 17, UCLA, GoogleDrive, core.ViaRoute(UMich), size)
	t.Logf("UCLA->GDrive 60MB: direct=%.1f viaUAlberta=%.1f viaUMich=%.1f", direct, viaUAlb, viaUMich)
	// Last-mile bound: direct takes ~60/0.39 ≈ 154s.
	if direct < 100 {
		t.Errorf("UCLA direct = %v, should be last-mile bound (>100s)", direct)
	}
	if viaUAlb < direct || viaUMich < direct {
		t.Errorf("detours should not help from UCLA: %v %v vs %v", viaUAlb, viaUMich, direct)
	}
}

func TestDetourHopBreakdownMatchesPaperExample(t *testing.T) {
	// The paper's intro example: 100MB UBC->UAlberta ≈ 19s, UAlberta->
	// Google ≈ 17s, total ≈ 36s.
	w := Build(18)
	var rep core.Report
	w.RunWorkload("t", func(p *simproc.Proc) {
		var err error
		rep, err = w.NewDetourClient(UBC, UAlberta).Upload(p, GoogleDrive, "f.bin", 100e6, "")
		if err != nil {
			t.Error(err)
		}
	})
	t.Logf("hop1=%.1f hop2=%.1f total=%.1f", rep.Hop1, rep.Hop2, rep.Total)
	if rep.Hop1 < 15 || rep.Hop1 > 26 {
		t.Errorf("hop1 = %.1f, want ~19", rep.Hop1)
	}
	if rep.Hop2 < 13 || rep.Hop2 > 24 {
		t.Errorf("hop2 = %.1f, want ~17", rep.Hop2)
	}
}

func TestSequentialWorkloadsShareClock(t *testing.T) {
	w := Build(19)
	var t1, t2 float64
	w.RunWorkload("a", func(p *simproc.Proc) { p.Sleep(5); t1 = float64(p.Now()) })
	w.RunWorkload("b", func(p *simproc.Proc) { p.Sleep(5); t2 = float64(p.Now()) })
	if t2 <= t1 {
		t.Fatalf("clock did not advance across workloads: %v %v", t1, t2)
	}
}

func TestAgentsServeAllProviders(t *testing.T) {
	w := Build(20)
	for _, dtn := range DTNs {
		provs := w.Agents[dtn].Providers()
		if len(provs) != 3 {
			t.Fatalf("agent %s providers = %v", dtn, provs)
		}
	}
}

func BenchmarkBuildWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(int64(i))
	}
}

func BenchmarkDirectUpload100MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := Build(11)
		client := w.NewSDKClient(UBC, GoogleDrive)
		w.RunWorkload("bench", func(p *simproc.Proc) {
			if _, err := core.DirectUpload(p, client, "f.bin", 100e6, ""); err != nil {
				b.Error(err)
			}
		})
	}
}

func BenchmarkDetourUpload100MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := Build(11)
		w.RunWorkload("bench", func(p *simproc.Proc) {
			dc := w.NewDetourClient(UBC, UAlberta)
			if _, err := dc.Upload(p, GoogleDrive, "f.bin", 100e6, ""); err != nil {
				b.Error(err)
			}
		})
	}
}

func TestTraceRecordsDetourEvents(t *testing.T) {
	w := Build(21)
	w.RunWorkload("trace", func(p *simproc.Proc) {
		dc := w.NewDetourClient(UBC, UAlberta)
		if _, err := dc.Upload(p, GoogleDrive, "f.bin", 10e6, ""); err != nil {
			t.Error(err)
		}
	})
	ups := w.Trace.Filter("detour.upload")
	if len(ups) != 1 {
		t.Fatalf("detour.upload events = %d", len(ups))
	}
	attrs := ups[0].Attrs
	if attrs["via"] != UAlberta || attrs["provider"] != GoogleDrive {
		t.Fatalf("attrs = %v", attrs)
	}
	if attrs["total"].(float64) <= 0 {
		t.Fatalf("total attr = %v", attrs["total"])
	}
	if len(w.Trace.Filter("agent.relay")) != 1 {
		t.Fatalf("agent events = %d", len(w.Trace.Filter("agent.relay")))
	}
}

func TestGoogleVancouverPOPFixesUBCArtifact(t *testing.T) {
	// The paper's "providers may add POPs" remedy: with a Google POP on
	// the Vancouver exchange, UBC's direct-to-POP upload beats both the
	// pinned direct path and the UAlberta detour.
	w := Build(81, WithGoogleVancouverPOP())
	w.StartGooglePOP()
	var direct, detour, viaPOP float64
	w.RunWorkload("pop", func(p *simproc.Proc) {
		c := w.NewSDKClient(UBC, GoogleDrive)
		rep, err := core.DirectUpload(p, c, "a.bin", 100e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		direct = rep.Total
		c.Close()
		rep, err = w.NewDetourClient(UBC, UAlberta).Upload(p, GoogleDrive, "b.bin", 100e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		detour = rep.Total
		pc := w.NewSDKClientVia(UBC, GooglePOPVancouver)
		rep, err = core.DirectUpload(p, pc, "c.bin", 100e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		viaPOP = rep.Total
		pc.Close()
	})
	t.Logf("UBC->GDrive 100MB: direct=%.1f detour=%.1f viaPOP=%.1f", direct, detour, viaPOP)
	if !(viaPOP < detour && detour < direct) {
		t.Fatalf("want POP < detour < direct, got %.1f %.1f %.1f", viaPOP, detour, direct)
	}
	if o, ok := w.Services[GoogleDrive].Store.Get("c.bin"); !ok || o.Size != 100e6 {
		t.Fatalf("POP upload not stored at DC: %+v %v", o, ok)
	}
}

func TestPOPRequiresOption(t *testing.T) {
	w := Build(82)
	defer func() {
		if recover() == nil {
			t.Fatal("StartGooglePOP without the option did not panic")
		}
	}()
	w.StartGooglePOP()
}
