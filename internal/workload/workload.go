// Package workload generates synthetic personal-cloud-storage workloads:
// file-size distributions and arrival processes. The paper argues that
// routing inefficiencies "have a real impact on many users" because
// cloud-storage traffic is a growing class; this package makes that
// claim testable by replaying realistic job mixes through the detour
// system (see the workload study in package experiments).
//
// The size distribution shapes follow the measurement literature the
// paper builds on (Drago et al., IMC'12/13): personal cloud files are
// dominated by small objects with a heavy multi-megabyte tail from
// photos, archives, and videos.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SizeDist samples file sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) float64
}

// Fixed always returns the same size.
type Fixed struct {
	Bytes float64
}

// Sample implements SizeDist.
func (f Fixed) Sample(*rand.Rand) float64 { return f.Bytes }

// Lognormal is the classic heavy-tailed file-size model.
type Lognormal struct {
	// MedianBytes is exp(mu).
	MedianBytes float64
	// Sigma is the log-space standard deviation; 1.5–2.5 gives the
	// heavy tails seen in storage traces.
	Sigma float64
	// MaxBytes truncates the tail (0 = untruncated).
	MaxBytes float64
}

// Sample implements SizeDist.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	x := l.MedianBytes * math.Exp(l.Sigma*rng.NormFloat64())
	if x < 1 {
		x = 1
	}
	if l.MaxBytes > 0 && x > l.MaxBytes {
		x = l.MaxBytes
	}
	return x
}

// Empirical samples from weighted buckets.
type Empirical struct {
	Sizes   []float64
	Weights []float64

	cum []float64
}

// NewEmpirical builds a weighted discrete distribution.
func NewEmpirical(sizes, weights []float64) (*Empirical, error) {
	if len(sizes) == 0 || len(sizes) != len(weights) {
		return nil, fmt.Errorf("workload: sizes/weights mismatch")
	}
	e := &Empirical{Sizes: sizes, Weights: weights}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: zero total weight")
	}
	acc := 0.0
	for _, w := range weights {
		acc += w / total
		e.cum = append(e.cum, acc)
	}
	return e, nil
}

// Sample implements SizeDist.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.Sizes) {
		i = len(e.Sizes) - 1
	}
	return e.Sizes[i]
}

// PersonalCloud returns a size mix calibrated to personal cloud-storage
// sync traffic: documents and thumbnails dominate counts, photos and
// media dominate bytes.
func PersonalCloud() SizeDist {
	e, err := NewEmpirical(
		[]float64{50e3, 300e3, 2e6, 8e6, 30e6, 100e6},
		[]float64{40, 25, 15, 10, 7, 3},
	)
	if err != nil {
		panic(err)
	}
	return e
}

// Arrival samples inter-arrival gaps in seconds.
type Arrival interface {
	NextGap(rng *rand.Rand) float64
}

// Poisson arrivals with the given mean rate.
type Poisson struct {
	RatePerSec float64
}

// NextGap implements Arrival.
func (p Poisson) NextGap(rng *rand.Rand) float64 {
	if p.RatePerSec <= 0 {
		panic("workload: non-positive rate")
	}
	return rng.ExpFloat64() / p.RatePerSec
}

// Periodic arrivals with a fixed gap.
type Periodic struct {
	GapSec float64
}

// NextGap implements Arrival.
func (p Periodic) NextGap(*rand.Rand) float64 { return p.GapSec }

// Phase is one constant-rate segment of a piecewise arrival process.
type Phase struct {
	// RatePerSec is the Poisson arrival rate during the phase.
	RatePerSec float64
	// Seconds is the phase duration; 0 on the final phase means it runs
	// forever.
	Seconds float64
}

// FlashCrowd is a piecewise-constant-rate Poisson arrival process — the
// overload workload: a calm baseline, a burst phase at several times
// the sustainable rate, then calm again. It is stateful (it tracks its
// own position in the phase schedule), so use one value per generated
// trace. Gaps crossing a phase boundary are re-drawn from the boundary,
// which is exact for a Poisson process (memorylessness).
type FlashCrowd struct {
	Phases []Phase

	t float64
}

// NewFlashCrowd validates the schedule: every phase needs a positive
// rate, and only the final phase may be unbounded.
func NewFlashCrowd(phases ...Phase) (*FlashCrowd, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: flash crowd needs phases")
	}
	for i, ph := range phases {
		if ph.RatePerSec <= 0 {
			return nil, fmt.Errorf("workload: phase %d has non-positive rate", i)
		}
		if ph.Seconds <= 0 && i != len(phases)-1 {
			return nil, fmt.Errorf("workload: non-final phase %d has no duration", i)
		}
	}
	return &FlashCrowd{Phases: phases}, nil
}

// NextGap implements Arrival.
func (f *FlashCrowd) NextGap(rng *rand.Rand) float64 {
	if len(f.Phases) == 0 {
		panic("workload: flash crowd with no phases")
	}
	start := f.t
	for {
		i, phaseStart := f.phaseAt(f.t)
		ph := f.Phases[i]
		if ph.RatePerSec <= 0 {
			panic("workload: non-positive flash-crowd rate")
		}
		gap := rng.ExpFloat64() / ph.RatePerSec
		last := i == len(f.Phases)-1
		if last || ph.Seconds <= 0 || f.t+gap <= phaseStart+ph.Seconds {
			f.t += gap
			return f.t - start
		}
		// The draw overshot the phase boundary: move to the boundary and
		// re-draw at the next phase's rate.
		f.t = phaseStart + ph.Seconds
	}
}

// phaseAt locates the phase containing time t and the phase's start.
func (f *FlashCrowd) phaseAt(t float64) (idx int, start float64) {
	acc := 0.0
	for i, ph := range f.Phases {
		if i == len(f.Phases)-1 || ph.Seconds <= 0 || t < acc+ph.Seconds {
			return i, acc
		}
		acc += ph.Seconds
	}
	return len(f.Phases) - 1, acc
}

// Job is one upload task.
type Job struct {
	Name string
	// At is the arrival offset in seconds from the workload start.
	At float64
	// Size is the file size in bytes.
	Size float64
}

// Generate produces n jobs with the given size and arrival models,
// deterministically from the rng.
func Generate(n int, sizes SizeDist, arrivals Arrival, rng *rand.Rand) []Job {
	if n <= 0 {
		panic("workload: non-positive job count")
	}
	if sizes == nil || arrivals == nil || rng == nil {
		panic("workload: nil argument")
	}
	jobs := make([]Job, n)
	t := 0.0
	for i := range jobs {
		t += arrivals.NextGap(rng)
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%04d.bin", i),
			At:   t,
			Size: sizes.Sample(rng),
		}
	}
	return jobs
}

// TotalBytes sums the jobs' sizes.
func TotalBytes(jobs []Job) float64 {
	var s float64
	for _, j := range jobs {
		s += j.Size
	}
	return s
}

// FleetJob is one job of a multi-tenant, multi-site trace: a Job plus
// who submits it, from where, and to which provider — the input shape
// of the transfer-scheduler control plane (package sched).
type FleetJob struct {
	Job
	Tenant   string
	Client   string
	Provider string
	// Priority is a small non-negative queueing priority; higher drains
	// sooner.
	Priority int
	// Deadline, when positive, is the workload-clock time after which
	// the job is worthless (FleetSpec.DeadlineSlack sets it).
	Deadline float64
}

// FleetSpec describes a fleet trace.
type FleetSpec struct {
	// Jobs is the trace length.
	Jobs int
	// Clients and Providers are sampled uniformly per job.
	Clients   []string
	Providers []string
	// Tenants defaults to Clients (per-site tenancy) when nil.
	Tenants []string
	// Sizes and Arrivals are the per-job models (defaults:
	// PersonalCloud sizes, Poisson 1 job/sec).
	Sizes    SizeDist
	Arrivals Arrival
	// PriorityLevels spreads jobs over priorities 0..n-1 (default 3).
	PriorityLevels int
	// Prefix names the jobs ("<prefix>-00042.bin", default "fleet") —
	// set distinct prefixes when merging several traces so object names
	// stay unique.
	Prefix string
	// DeadlineSlack, when positive, gives every job a deadline of its
	// arrival time plus this many seconds — the overload traces use it
	// so queue-rotted jobs can expire.
	DeadlineSlack float64
}

// GenerateFleet produces a fleet trace deterministically from the rng:
// every job gets a client, provider, tenant, priority, size, and
// arrival offset.
func GenerateFleet(spec FleetSpec, rng *rand.Rand) ([]FleetJob, error) {
	if spec.Jobs <= 0 {
		return nil, fmt.Errorf("workload: non-positive fleet size")
	}
	if len(spec.Clients) == 0 || len(spec.Providers) == 0 {
		return nil, fmt.Errorf("workload: fleet needs clients and providers")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: fleet needs an rng")
	}
	tenants := spec.Tenants
	if len(tenants) == 0 {
		tenants = spec.Clients
	}
	sizes := spec.Sizes
	if sizes == nil {
		sizes = PersonalCloud()
	}
	arrivals := spec.Arrivals
	if arrivals == nil {
		arrivals = Poisson{RatePerSec: 1}
	}
	levels := spec.PriorityLevels
	if levels <= 0 {
		levels = 3
	}
	prefix := spec.Prefix
	if prefix == "" {
		prefix = "fleet"
	}
	jobs := make([]FleetJob, spec.Jobs)
	t := 0.0
	for i := range jobs {
		t += arrivals.NextGap(rng)
		ci := rng.Intn(len(spec.Clients))
		tenant := spec.Clients[ci]
		if len(spec.Tenants) > 0 {
			tenant = tenants[rng.Intn(len(tenants))]
		}
		jobs[i] = FleetJob{
			Job: Job{
				Name: fmt.Sprintf("%s-%05d.bin", prefix, i),
				At:   t,
				Size: sizes.Sample(rng),
			},
			Tenant:   tenant,
			Client:   spec.Clients[ci],
			Provider: spec.Providers[rng.Intn(len(spec.Providers))],
			Priority: rng.Intn(levels),
		}
		if spec.DeadlineSlack > 0 {
			jobs[i].Deadline = t + spec.DeadlineSlack
		}
	}
	return jobs, nil
}

// MergeFleet interleaves independently generated traces into one,
// ordered by arrival time (ties resolve by trace order, then by
// position — the merge is deterministic). Use it to overlay a
// flash-crowd tenant onto a steady baseline fleet.
func MergeFleet(traces ...[]FleetJob) []FleetJob {
	var n int
	for _, t := range traces {
		n += len(t)
	}
	out := make([]FleetJob, 0, n)
	idx := make([]int, len(traces))
	for len(out) < n {
		best := -1
		for ti, t := range traces {
			if idx[ti] >= len(t) {
				continue
			}
			if best < 0 || t[idx[ti]].At < traces[best][idx[best]].At {
				best = ti
			}
		}
		out = append(out, traces[best][idx[best]])
		idx[best]++
	}
	return out
}
