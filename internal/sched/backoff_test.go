package sched

import (
	"math/rand"
	"testing"
)

// TestBackoffDelayTable pins Delay's edge behavior case by case:
// attempt clamping, cap saturation (including absurd attempt numbers
// that would overflow a naive accumulator), and the documented
// defaults.
func TestBackoffDelayTable(t *testing.T) {
	cases := []struct {
		name    string
		b       Backoff
		attempt int
		u       float64
		want    float64
	}{
		{"attempt 0 clamps to 1", Backoff{Base: 1, Max: 100, Factor: 2, Jitter: 0.5}, 0, 0, 1},
		{"negative attempt clamps to 1", Backoff{Base: 1, Max: 100, Factor: 2, Jitter: 0.5}, -3, 0, 1},
		{"second retry doubles", Backoff{Base: 1, Max: 100, Factor: 2, Jitter: 0.5}, 2, 0, 2},
		{"cap saturates", Backoff{Base: 1, Max: 8, Factor: 2, Jitter: 0.5}, 5, 0, 8},
		{"huge attempt stays at cap", Backoff{Base: 1, Max: 8, Factor: 2, Jitter: 0.5}, 500, 0, 8},
		{"defaults: first delay is 0.05", Backoff{}.withDefaults(), 1, 0, 0.05},
		{"defaults: cap is 2", Backoff{}.withDefaults(), 50, 0, 2},
		{"full jitter draw halves the delay", Backoff{Base: 1, Max: 100, Factor: 2, Jitter: 0.5}, 1, 1, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.b.Delay(tc.attempt, tc.u); got != tc.want {
				t.Errorf("Delay(%d, %v) = %v, want %v", tc.attempt, tc.u, got, tc.want)
			}
		})
	}
}

// TestBackoffDefaults pins withDefaults: every zero field takes its
// documented value, and set fields survive.
func TestBackoffDefaults(t *testing.T) {
	d := Backoff{}.withDefaults()
	if d.Base != 0.05 || d.Max != 2 || d.Factor != 2 || d.Jitter != 0.5 {
		t.Errorf("zero-value defaults = %+v, want {0.05 2 2 0.5}", d)
	}
	set := Backoff{Base: 1, Max: 30, Factor: 3, Jitter: 0.25}.withDefaults()
	if set.Base != 1 || set.Max != 30 || set.Factor != 3 || set.Jitter != 0.25 {
		t.Errorf("explicit fields clobbered: %+v", set)
	}
	// A Factor of exactly 1 would never grow; it defaults away.
	if f := (Backoff{Factor: 1}.withDefaults()).Factor; f != 2 {
		t.Errorf("Factor 1 -> %v, want default 2", f)
	}
}

// TestBackoffJitterBound: for any u in [0,1), the jittered delay stays
// within (d·(1-Jitter), d] of the deterministic curve — never zero,
// never above the un-jittered value.
func TestBackoffJitterBound(t *testing.T) {
	b := Backoff{Base: 0.2, Max: 10, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 8; attempt++ {
		full := b.Delay(attempt, 0)
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt, rng.Float64())
			if d <= full*(1-b.Jitter) || d > full {
				t.Fatalf("Delay(%d) = %v outside (%v, %v]", attempt, d, full*(1-b.Jitter), full)
			}
		}
	}
}
