package sched

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"detournet/internal/bgppol"
	"detournet/internal/core"
	"detournet/internal/faults"
	"detournet/internal/scenario"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
)

// churnPaths builds a two-candidate paths map: the detour crosses the
// cybera~canarie domain boundary, the direct route does not.
func churnPaths(det core.Route) map[core.Route][]PathHop {
	return map[core.Route][]PathHop{
		core.DirectRoute: {
			{Node: "ubc", Domain: "ubc"},
			{Node: "bcnet-core", Domain: "bcnet"},
			{Node: "gdrive-dc", Domain: "google"},
		},
		det: {
			{Node: "ubc", Domain: "ubc"},
			{Node: "cybera-core", Domain: "cybera"},
			{Node: "canarie-core", Domain: "canarie"},
			{Node: "gdrive-dc", Domain: "google"},
		},
	}
}

// TestCacheRouteEventConverging: a session withdraw touching a cached
// candidate's path marks it converging — a state distinct from
// quarantine — and re-elects the decision off the dying route at once
// instead of waiting for the TTL or a failed transfer.
func TestCacheRouteEventConverging(t *testing.T) {
	clock := 0.0
	c := NewRouteCache(1000, 30, fakeClock(&clock), rand.New(rand.NewSource(1)))
	k := KeyFor("ubc-pl", "GoogleDrive", 60e6)
	det := core.ViaRoute("ualberta")
	c.InsertWithPaths(k, det, []core.Route{core.DirectRoute, det}, churnPaths(det))

	c.ApplyRouteEvent(RouteEvent{
		Withdraw: true, DomainA: "cybera", DomainB: "canarie",
		At: 5, ConvergedBy: 50,
	})
	if h := c.Health(k, det); h != RouteConverging {
		t.Fatalf("detour health = %v, want converging", h)
	}
	if h := c.Health(k, core.DirectRoute); h != RouteHealthy {
		t.Fatalf("direct health = %v, want healthy (its path avoids the session)", h)
	}
	if r, ok := c.Lookup(k); !ok || r != core.DirectRoute {
		t.Fatalf("after withdraw Lookup = %v %v, want immediate re-election to direct", r, ok)
	}
	cv, _ := c.EventCounters()
	if cv != 1 {
		t.Fatalf("converges counter = %d, want 1", cv)
	}

	// The hold is max(event+quarantineTTL, ConvergedBy): with slow
	// convergence the route stays benched past the quarantine window
	// (5+30=35) all the way to the horizon.
	clock = 36
	if h := c.Health(k, det); h != RouteConverging {
		t.Fatalf("health before ConvergedBy = %v, want converging", h)
	}
	clock = 51
	if h := c.Health(k, det); h != RouteHealthy {
		t.Fatalf("health past ConvergedBy = %v, want healthy", h)
	}

	// A matching announce clears the hold early.
	clock = 18
	c.ApplyRouteEvent(RouteEvent{
		Withdraw: true, DomainA: "cybera", DomainB: "canarie",
		At: 18, ConvergedBy: 60,
	})
	c.ApplyRouteEvent(RouteEvent{
		DomainA: "cybera", DomainB: "canarie", At: 20,
	})
	if h := c.Health(k, det); h != RouteHealthy {
		t.Fatalf("health after announce = %v, want healthy", h)
	}
	_, an := c.EventCounters()
	if an != 1 {
		t.Fatalf("announces counter = %d, want 1", an)
	}
}

// TestCacheAnnounceClearsQuarantine is the link-flap-restore fix: a
// route that failed (quarantined) while its link was down must return
// to service the moment the restore event announces, not when the
// quarantine TTL happens to lapse.
func TestCacheAnnounceClearsQuarantine(t *testing.T) {
	clock := 0.0
	c := NewRouteCache(1000, 500, fakeClock(&clock), rand.New(rand.NewSource(1)))
	k := KeyFor("ubc-pl", "GoogleDrive", 60e6)
	det := core.ViaRoute("ualberta")
	c.InsertWithPaths(k, det, []core.Route{core.DirectRoute, det}, churnPaths(det))

	c.Invalidate(k, det) // transfer died on the downed link
	if h := c.Health(k, det); h != RouteQuarantined {
		t.Fatalf("health after failure = %v, want quarantined", h)
	}

	// Node-scoped restore event from the fault injector (a link flap
	// names its endpoints, not a BGP session).
	c.ApplyRouteEvent(RouteEvent{FromNode: "cybera-core", ToNode: "canarie-core", At: 10})
	if h := c.Health(k, det); h != RouteHealthy {
		t.Fatalf("health after restore announce = %v, want healthy, not quarantined until t=%v", h, 500.0)
	}
}

// TestInjectorLinkRestorePublishes: the fault injector's link flaps
// publish withdraw/announce route events on the world bus, so restored
// links reach subscribers (the route cache) immediately.
func TestInjectorLinkRestorePublishes(t *testing.T) {
	w := scenario.Build(11)
	var events []RouteEvent
	w.RouteBus.Subscribe(func(ev bgppol.Event) {
		events = append(events, RouteEvent{
			Withdraw: ev.Kind == bgppol.EventWithdraw,
			FromNode: ev.FromNode, ToNode: ev.ToNode,
			At: ev.At,
		})
	})
	faults.NewInjector(w, 11, faults.Spec{
		Kind: faults.LinkDown, From: "vncv1", To: "edmn1",
		Start: 5, Duration: 10,
	})
	w.RunWorkload("tick", func(p *simproc.Proc) { p.Sleep(simclock.Duration(30)) })
	if len(events) != 2 {
		t.Fatalf("events = %d, want withdraw+announce pair", len(events))
	}
	if !events[0].Withdraw || events[0].At != 5 {
		t.Fatalf("first event = %+v, want withdraw at t=5", events[0])
	}
	if events[1].Withdraw || events[1].At != 15 {
		t.Fatalf("second event = %+v, want announce at t=15", events[1])
	}
}

// TestChurnAcceptance is the PR's headline claim, asserted at the
// example's default seed: of the transfers the storm touches, the
// control run (one attempt, no recovery) fails at least half, the full
// stack saves at least 95%, and the bytes re-sent stay within one
// checkpoint chunk per reroute/retry/failover.
func TestChurnAcceptance(t *testing.T) {
	control := RunChurn(ChurnOptions{Seed: 2015, Stack: false})
	stack := RunChurn(ChurnOptions{Seed: 2015, Stack: true})
	v := CompareChurn(control, stack)

	if v.Affected == 0 {
		t.Fatal("storm touched no transfers; the schedule missed the fleet")
	}
	if got := v.ControlFailRate(); got < 0.50 {
		t.Errorf("control failure rate = %.0f%%, want >= 50%% (failed %d of %d affected)",
			100*got, v.ControlFailed, v.Affected)
	}
	if got := v.StackSurvivalRate(); got < 0.95 {
		t.Errorf("stack survival rate = %.0f%%, want >= 95%% (survived %d of %d affected)",
			100*got, v.StackSurvived, v.Affected)
	}
	if v.ResentBytes > v.ResentBudget {
		t.Errorf("re-sent %.1f MB exceeds the make-before-break budget %.1f MB",
			v.ResentBytes/1e6, v.ResentBudget/1e6)
	}
	if stack.Stats.Reroutes == 0 {
		t.Error("stack run recorded no make-before-break reroutes")
	}
	if stack.Stats.Parks == 0 || stack.Stats.ParkSeconds <= 0 {
		t.Errorf("stack run recorded no parking (parks=%d, %.0fs); the blackhole window went unexercised",
			stack.Stats.Parks, stack.Stats.ParkSeconds)
	}
	if stack.Stats.RouteEvents == 0 || stack.Stats.RouteConverges == 0 {
		t.Errorf("invalidation bus idle: %d events, %d converges",
			stack.Stats.RouteEvents, stack.Stats.RouteConverges)
	}
	if len(stack.Events) == 0 {
		t.Error("no routing-plane events recorded")
	}
}

// TestChurnDeterminism: the full report — both runs, verdict, event
// log, per-route totals — must be byte-identical for one seed and must
// differ across seeds. `make check` re-asserts this on the built
// example binary.
func TestChurnDeterminism(t *testing.T) {
	render := func(seed int64) string {
		var b bytes.Buffer
		control := RunChurn(ChurnOptions{Seed: seed, Stack: false})
		stack := RunChurn(ChurnOptions{Seed: seed, Stack: true})
		WriteChurnReport(&b, control, stack)
		return b.String()
	}
	a, b := render(2015), render(2015)
	if a != b {
		t.Fatalf("churn replay diverged for one seed:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if render(7) == a {
		t.Fatal("different seeds produced identical reports; the storm ignores its seed")
	}
}

// TestParkExhaustionIsTyped: when every route to the provider stays
// withdrawn past the park budget, the transfer fails with an error
// wrapping core.ErrNoRoute — the typed outcome detourctl and operators
// key off — classified Transient so a later attempt can park again.
func TestParkExhaustionIsTyped(t *testing.T) {
	raw := fmt.Errorf("sched: execute x via Direct: parked 90s with no usable route: %w", core.ErrNoRoute)
	err := classifyExecErr(raw)
	if !errors.Is(err, core.ErrNoRoute) {
		t.Fatalf("classified error %v hides core.ErrNoRoute", err)
	}
	if got := Classify(err); got != FailTransient {
		t.Fatalf("Classify(%v) = %v, want transient (so the scheduler retries and parks again)", err, got)
	}
}
