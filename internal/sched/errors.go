package sched

import "errors"

// Failure taxonomy: executors classify errors so the scheduler can
// react per class instead of treating every failure alike —
//
//   - transient: the route is fine, the attempt was unlucky (a reset
//     connection, an injected 5xx, throttling past the SDK's patience).
//     Retry the same route with backoff; a checkpointed executor
//     resumes instead of restarting.
//   - route-down: the path itself is dead (dial refused, no route).
//     Quarantine the route for the fleet and fail over immediately,
//     carrying the checkpoint to the new route.
//   - provider-down: the provider front-end is erroring (503). No
//     route helps; wait it out with backoff and leave the route cache
//     alone — quarantine is for route-level failures only.
//
// Untyped errors keep the legacy behavior (route-level counting with
// DetourFailLimit fallback), so executors that don't classify are
// unaffected.
var (
	// ErrTransient tags a retryable failure of a healthy route.
	ErrTransient = errors.New("sched: transient failure")
	// ErrRouteDown tags a failure of the route itself.
	ErrRouteDown = errors.New("sched: route down")
	// ErrProviderDown tags a provider-side outage affecting all routes.
	ErrProviderDown = errors.New("sched: provider down")
)

// FailureClass is the scheduler-facing classification of an error.
type FailureClass int

const (
	// FailUnknown is an untyped error (legacy handling).
	FailUnknown FailureClass = iota
	// FailTransient retries the same route.
	FailTransient
	// FailRouteDown quarantines the route and fails over.
	FailRouteDown
	// FailProviderDown waits out the outage without blaming the route.
	FailProviderDown
)

func (c FailureClass) String() string {
	switch c {
	case FailTransient:
		return "transient"
	case FailRouteDown:
		return "route-down"
	case FailProviderDown:
		return "provider-down"
	default:
		return "unknown"
	}
}

// Classify maps an error onto the taxonomy via errors.Is, so wrapped
// chains classify correctly.
func Classify(err error) FailureClass {
	switch {
	case errors.Is(err, ErrRouteDown):
		return FailRouteDown
	case errors.Is(err, ErrProviderDown):
		return FailProviderDown
	case errors.Is(err, ErrTransient):
		return FailTransient
	default:
		return FailUnknown
	}
}

// Transient tags err as a transient failure.
func Transient(err error) error { return taggedError{tag: ErrTransient, err: err} }

// RouteDown tags err as a route-level failure.
func RouteDown(err error) error { return taggedError{tag: ErrRouteDown, err: err} }

// ProviderDown tags err as a provider-side outage.
func ProviderDown(err error) error { return taggedError{tag: ErrProviderDown, err: err} }

// taggedError couples a taxonomy sentinel with the underlying cause;
// errors.Is matches both.
type taggedError struct {
	tag error
	err error
}

func (t taggedError) Error() string        { return t.tag.Error() + ": " + t.err.Error() }
func (t taggedError) Is(target error) bool { return target == t.tag }
func (t taggedError) Unwrap() error        { return t.err }
