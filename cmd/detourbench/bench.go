package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"detournet/internal/core"
	"detournet/internal/sched"
	"detournet/internal/telemetry"
)

// benchResult is the machine-readable artifact `make bench` writes
// (BENCH_10.json): the reference storm drain with and without the
// telemetry plane, and the pure-dispatch scheduler microbenchmark that
// prices the instrumentation per job.
type benchResult struct {
	Seed   int64 `json:"seed"`
	Rounds int   `json:"rounds"`

	Storm struct {
		Jobs           int     `json:"jobs"`
		Done           int     `json:"done"`
		Failed         int     `json:"failed"`
		VirtualSeconds float64 `json:"virtual_seconds"`
		GoodputMBps    float64 `json:"goodput_mbps"`
		TransferP50Sec float64 `json:"transfer_p50_sec"`
		TransferP99Sec float64 `json:"transfer_p99_sec"`
		WallMsBare     float64 `json:"drain_wall_ms_bare"`
		WallMsTelem    float64 `json:"drain_wall_ms_instrumented"`
		OverheadFrac   float64 `json:"telemetry_overhead_frac"`
	} `json:"storm"`

	Dispatch struct {
		Jobs          int     `json:"jobs"`
		NsPerJobBare  float64 `json:"ns_per_job_bare"`
		NsPerJobTelem float64 `json:"ns_per_job_instrumented"`
		TelemNsPerJob float64 `json:"telemetry_ns_per_job"`
	} `json:"dispatch"`
}

// medianWall runs fn `rounds` times and returns the median wall time.
func medianWall(rounds int, fn func()) time.Duration {
	ds := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		fn()
		ds = append(ds, time.Since(start))
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[len(ds)/2]
}

// dispatchDrain pushes instant jobs through a worker with a fixed
// planner — the scheduler's pure control-plane cost, nothing else.
func dispatchDrain(jobs int, instrumented bool) time.Duration {
	cfg := sched.Config{
		Workers: 1,
		Executor: sched.ExecutorFunc(func(j sched.Job, r core.Route) (float64, error) {
			return 0, nil
		}),
		Planner: sched.PlannerFunc(func(client, provider string, size float64) (core.Route, []core.Route, error) {
			return core.DirectRoute, []core.Route{core.DirectRoute}, nil
		}),
		ProviderCap: -1, DTNCap: -1,
	}
	if instrumented {
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Recorder = telemetry.NewFlightRecorder(nil, 32, 4)
	}
	s := sched.New(cfg)
	s.Start()
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if err := s.Submit(sched.Job{
			Tenant: "bench", Client: "c", Provider: "p",
			Name: fmt.Sprintf("b-%05d", i), Size: 1e6,
		}); err != nil {
			panic(err)
		}
	}
	s.Drain()
	el := time.Since(start)
	s.Close()
	return el
}

// runBenchSweep measures the telemetry sweep and writes BENCH_10.json.
func runBenchSweep(seed int64, out string) error {
	const rounds = 5
	var res benchResult
	res.Seed = seed
	res.Rounds = rounds

	// Representative drain: the instrumented flash-crowd replay against
	// the reconvergence storm, and the identical run with the telemetry
	// plane detached.
	o := sched.RunTelemetry(sched.TelemetryOptions{Seed: seed})
	res.Storm.Jobs = len(o.Results)
	res.Storm.Done = int(o.Stats.Done)
	res.Storm.Failed = int(o.Stats.Failed)
	res.Storm.VirtualSeconds = o.VirtualSeconds
	res.Storm.GoodputMBps = o.Goodput() / 1e6
	for _, f := range o.Snapshot.Families {
		if f.Name == "sched_transfer_seconds" && len(f.Metrics) > 0 && f.Metrics[0].Hist != nil {
			res.Storm.TransferP50Sec = f.Metrics[0].Hist.Quantile(0.5)
			res.Storm.TransferP99Sec = f.Metrics[0].Hist.Quantile(0.99)
		}
	}
	bare := medianWall(rounds, func() {
		sched.RunTelemetry(sched.TelemetryOptions{Seed: seed, NoInstrument: true})
	})
	inst := medianWall(rounds, func() {
		sched.RunTelemetry(sched.TelemetryOptions{Seed: seed})
	})
	res.Storm.WallMsBare = float64(bare) / 1e6
	res.Storm.WallMsTelem = float64(inst) / 1e6
	res.Storm.OverheadFrac = float64(inst-bare) / float64(bare)

	// Pure dispatch: instant executor, fixed route — prices the
	// instrumentation in ns per job with no transfer work to hide it.
	const dispatchJobs = 4000
	res.Dispatch.Jobs = dispatchJobs
	dispatchDrain(dispatchJobs, false) // warm-up
	b := medianWall(rounds, func() { dispatchDrain(dispatchJobs, false) })
	i := medianWall(rounds, func() { dispatchDrain(dispatchJobs, true) })
	res.Dispatch.NsPerJobBare = float64(b) / dispatchJobs
	res.Dispatch.NsPerJobTelem = float64(i) / dispatchJobs
	res.Dispatch.TelemNsPerJob = float64(i-b) / dispatchJobs

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench sweep: storm %d jobs (%d done, %d failed), goodput %.2f MB/s, telemetry overhead %.2f%% of drain wall\n",
		res.Storm.Jobs, res.Storm.Done, res.Storm.Failed, res.Storm.GoodputMBps, 100*res.Storm.OverheadFrac)
	fmt.Printf("dispatch: %.0f ns/job bare, %.0f ns/job instrumented (+%.0f ns/job)\n",
		res.Dispatch.NsPerJobBare, res.Dispatch.NsPerJobTelem, res.Dispatch.TelemNsPerJob)
	fmt.Printf("wrote %s\n", out)
	return nil
}
