package cloudsim

import (
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/httpsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

// popRig: client --slow(1MB/s)--> dc, but client --fast(8)--> pop
// --fast(8)--> dc: the POP bypasses the slow direct path.
func popRig(t *testing.T) (*simclock.Engine, *simproc.Runner, *transport.Net, *Service, *POP) {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	for _, n := range []string{"client", "pop", "dc"} {
		g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
	}
	g.MustConnect("client", "dc", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.010})
	g.MustConnect("client", "pop", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.004})
	g.MustConnect("pop", "dc", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.012})
	tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
	svc := NewService(eng, tn, "GoogleDrive", "dc", GoogleDrive)
	svc.Start(tn)
	pop := StartPOP(tn, svc, "pop")
	return eng, r, tn, svc, pop
}

func runProc(t *testing.T, r *simproc.Runner, fn func(p *simproc.Proc)) {
	t.Helper()
	done := false
	r.Go("test", func(p *simproc.Proc) {
		fn(p)
		done = true
	})
	r.RunUntil(simclock.Time(1e6))
	if !done {
		t.Fatal("proc did not finish")
	}
}

func TestPOPForwardsRequests(t *testing.T) {
	_, r, tn, svc, pop := popRig(t)
	rt := svc.Auth.RegisterClient("x", "y")
	runProc(t, r, func(p *simproc.Proc) {
		c := httpsim.NewClient(tn, "client", APIPort, true)
		// Token fetch through the POP works (forwarded to the DC's auth).
		resp, err := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/oauth2/token", Host: "pop",
			Body: []byte("grant_type=refresh_token&client_id=x&client_secret=y&refresh_token=" + rt),
		})
		if err != nil || !resp.OK() {
			t.Errorf("token via pop: %v %v", resp, err)
		}
		c.CloseIdle()
	})
	if pop.Forwarded == 0 {
		t.Fatal("pop forwarded nothing")
	}
}

func TestPOPUploadLandsAtDatacenter(t *testing.T) {
	_, r, tn, svc, _ := popRig(t)
	rt := svc.Auth.RegisterClient("x", "y")
	runProc(t, r, func(p *simproc.Proc) {
		c := httpsim.NewClient(tn, "client", APIPort, true)
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/oauth2/token", Host: "pop",
			Body: []byte("grant_type=refresh_token&client_id=x&client_secret=y&refresh_token=" + rt),
		})
		body := string(resp.Body)
		tok := body[len(`{"access_token":"`):]
		tok = tok[:findQ(tok)]
		// Resumable init + single PUT via the POP.
		resp, err := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/upload/drive/v3/files?uploadType=resumable", Host: "pop",
			Header: map[string]string{"Authorization": "Bearer " + tok},
			Body:   []byte(`{"name":"via-pop.bin","size":1000000}`),
		})
		if err != nil || !resp.OK() {
			t.Errorf("init via pop: %v %v", resp, err)
			return
		}
		resp, err = c.Do(p, &httpsim.Request{
			Method: "PUT", Path: resp.Header["Location"], Host: "pop",
			Header:   map[string]string{"Authorization": "Bearer " + tok, "Content-Range": "bytes 0-999999/1000000"},
			BodySize: 1000000,
		})
		if err != nil || !resp.OK() {
			t.Errorf("put via pop: %v %v", resp, err)
		}
		c.CloseIdle()
	})
	if o, ok := svc.Store.Get("via-pop.bin"); !ok || o.Size != 1000000 {
		t.Fatalf("object not at datacenter: %+v %v", o, ok)
	}
}

func findQ(s string) int {
	for i, c := range s {
		if c == '"' {
			return i
		}
	}
	return len(s)
}

func TestPOPFasterThanSlowDirectPath(t *testing.T) {
	_, r, tn, svc, _ := popRig(t)
	svc.Auth.RegisterClient("app", "s")
	var direct, viaPOP float64
	runProc(t, r, func(p *simproc.Proc) {
		upload := func(frontend, name string) float64 {
			c := httpsim.NewClient(tn, "client", APIPort, true)
			defer c.CloseIdle()
			resp, _ := c.Do(p, &httpsim.Request{
				Method: "POST", Path: "/oauth2/token", Host: frontend,
				Body: []byte("grant_type=refresh_token&client_id=app&client_secret=s&refresh_token=rt-app-0"),
			})
			body := string(resp.Body)
			tok := body[len(`{"access_token":"`):]
			tok = tok[:findQ(tok)]
			t0 := p.Now()
			resp, _ = c.Do(p, &httpsim.Request{
				Method: "POST", Path: "/upload/drive/v3/files?uploadType=resumable", Host: frontend,
				Header: map[string]string{"Authorization": "Bearer " + tok},
				Body:   []byte(`{"name":"` + name + `","size":20000000}`),
			})
			resp, _ = c.Do(p, &httpsim.Request{
				Method: "PUT", Path: resp.Header["Location"], Host: frontend,
				Header:   map[string]string{"Authorization": "Bearer " + tok, "Content-Range": "bytes 0-19999999/20000000"},
				BodySize: 20000000,
			})
			if !resp.OK() {
				t.Errorf("upload via %s failed: %+v", frontend, resp)
			}
			return float64(p.Now() - t0)
		}
		direct = upload("dc", "direct.bin")
		viaPOP = upload("pop", "pop.bin")
	})
	// Direct: 20MB at 1MB/s ≈ 20s. Via POP: ~2.6s + ~2.6s ≈ 5-6s.
	if viaPOP >= direct/2 {
		t.Fatalf("POP (%v) should at least halve the slow direct path (%v)", viaPOP, direct)
	}
}
