// Package sdk provides client libraries for the simulated cloud-storage
// providers — the counterpart of the official Java SDKs the paper's
// measurement programs linked against (and the community OneDrive
// library they patched). Each client speaks its provider's real upload
// protocol over the simulated HTTPS transport: OAuth2 token refresh,
// session initiation, chunk/fragment PUTs, and downloads.
package sdk

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"detournet/internal/cloudsim"
	"detournet/internal/httpsim"
	"detournet/internal/oauthsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// FileInfo describes an uploaded or downloaded object.
type FileInfo struct {
	ID   string  `json:"id"`
	Name string  `json:"name"`
	Size float64 `json:"size"`
	MD5  string  `json:"md5,omitempty"`
}

// Client is the provider-independent surface the detour relay and the
// examples program against.
type Client interface {
	// ProviderName identifies the service ("GoogleDrive", ...).
	ProviderName() string
	// Host returns the provider's API frontend host.
	Host() string
	// From returns the client's source host.
	From() string
	// Upload stores size bytes under name and returns the stored
	// metadata. md5 optionally carries a content digest for integrity.
	Upload(p *simproc.Proc, name string, size float64, md5 string) (FileInfo, error)
	// Download fetches name and returns its metadata (bytes are timed on
	// the wire, not materialized).
	Download(p *simproc.Proc, name string) (FileInfo, error)
	// Delete removes name.
	Delete(p *simproc.Proc, name string) error
	// Close releases kept-alive connections.
	Close()
}

// AttemptTagger is a client that can tag its upload commits with an
// idempotency key. The key rides the committing request as an
// X-Attempt-Id header; a provider that has already materialized a
// commit for the key answers with the stored object instead of
// committing again — what makes a crash-replayed attempt safe.
type AttemptTagger interface {
	SetAttemptID(id string)
}

// Stater is a client that can look up stored object metadata without
// moving content bytes — the recovery pre-check a restarted scheduler
// uses to learn whether an attempt committed before the crash.
type Stater interface {
	Stat(p *simproc.Proc, name string) (FileInfo, error)
}

// Credentials hold an OAuth2 client registration.
type Credentials struct {
	ClientID     string
	ClientSecret string
	RefreshToken string
}

// Options tune a client.
type Options struct {
	// ChunkBytes overrides the provider's default upload chunk size.
	ChunkBytes float64
}

// Register provisions credentials for a client id on the service's auth
// server, a setup step the paper's authors did once per provider.
func Register(svc *cloudsim.Service, clientID, secret string) Credentials {
	rt := svc.Auth.RegisterClient(clientID, secret)
	return Credentials{ClientID: clientID, ClientSecret: secret, RefreshToken: rt}
}

// base carries the machinery shared by all three clients.
type base struct {
	http  *httpsim.Client
	ts    *oauthsim.TokenSource
	host  string
	from  string
	chunk float64
	// attemptID tags upload commits for idempotent replay. Sessions
	// capture it at Begin/Resume so a client shared by concurrent
	// relays cannot cross-tag another transfer's commit.
	attemptID string
}

func newBase(eng *simclock.Engine, tn *transport.Net, from, host string, creds Credentials, style cloudsim.Style, opts Options) base {
	hc := httpsim.NewClient(tn, from, cloudsim.APIPort, true)
	chunk := opts.ChunkBytes
	if chunk <= 0 {
		chunk = style.DefaultChunkBytes()
	}
	return base{
		http:  hc,
		ts:    oauthsim.NewTokenSource(eng, hc, host, creds.ClientID, creds.ClientSecret, creds.RefreshToken),
		host:  host,
		from:  from,
		chunk: chunk,
	}
}

func (b *base) Host() string { return b.host }
func (b *base) From() string { return b.from }
func (b *base) Close()       { b.http.CloseIdle() }

// SetAttemptID implements AttemptTagger. An empty id clears the tag.
func (b *base) SetAttemptID(id string) { b.attemptID = id }

// tagAttempt stamps the idempotency key onto a committing request.
func tagAttempt(req *httpsim.Request, attempt string) {
	if attempt != "" {
		req.Header["X-Attempt-Id"] = attempt
	}
}

// authed builds a request with a fresh bearer token.
func (b *base) authed(p *simproc.Proc, method, path string) (*httpsim.Request, error) {
	hdr, err := b.ts.AuthHeader(p)
	if err != nil {
		return nil, err
	}
	return &httpsim.Request{
		Method: method, Path: path, Host: b.host,
		Header: map[string]string{"Authorization": hdr},
	}, nil
}

// maxThrottleRetries bounds 429 retries per request.
const maxThrottleRetries = 8

func (b *base) do(p *simproc.Proc, req *httpsim.Request) (*httpsim.Response, error) {
	resp, err := b.doRaw(p, req)
	if err != nil {
		return nil, err
	}
	if err := resp.Error(); err != nil {
		return resp, err
	}
	return resp, nil
}

// doRaw issues the request, sleeping out 429 Retry-After responses with
// exponential backoff the way the official client libraries do.
func (b *base) doRaw(p *simproc.Proc, req *httpsim.Request) (*httpsim.Response, error) {
	backoff := 0.5
	for attempt := 0; ; attempt++ {
		resp, err := b.http.Do(p, req)
		if err != nil {
			return nil, err
		}
		if resp.Status != httpsim.StatusTooManyRequests || attempt >= maxThrottleRetries {
			return resp, nil
		}
		wait := backoff
		if ra, ok := resp.Header["Retry-After"]; ok {
			if v, perr := strconv.ParseFloat(ra, 64); perr == nil && v > 0 {
				wait = v
			}
		}
		// Official clients cap their backoff (Drive's Java SDK caps at
		// 64 s); without a ceiling a pathological Retry-After would park
		// the client forever.
		if wait > 60 {
			wait = 60
		}
		p.Sleep(wait)
		backoff *= 2
	}
}

func decodeMeta(body []byte) (FileInfo, error) {
	var fi FileInfo
	if err := json.Unmarshal(body, &fi); err != nil {
		return FileInfo{}, fmt.Errorf("sdk: bad metadata: %w", err)
	}
	return fi, nil
}

func chunksOf(size, chunk float64) int {
	if size <= 0 {
		return 1
	}
	return int(math.Ceil(size / chunk))
}
