package sched

import (
	"container/heap"
	"sort"
	"sync"
)

// queueOpts tunes the jobQueue. The zero value is the PR-1 queue:
// unbounded, strict priority order, no proactive expiry.
type queueOpts struct {
	// limit bounds total queue occupancy (0 = unbounded); tenantLimit
	// bounds one tenant's share of it (0 = unbounded).
	limit       int
	tenantLimit int
	// fair switches draining from strict (priority, deadline, FIFO) to
	// weighted deficit-round-robin across tenants *within* each priority
	// level — priorities still strictly dominate each other.
	fair    bool
	quantum float64            // DRR deficit refill per visit (bytes)
	weights map[string]float64 // per-tenant DRR weight (default 1)
	// now is the scheduler clock; it drives the proactive expiry sweep.
	now func() float64
}

func (o queueOpts) withDefaults() queueOpts {
	if o.quantum <= 0 {
		o.quantum = 32 << 20
	}
	if o.now == nil {
		o.now = func() float64 { return 0 }
	}
	return o
}

func (o queueOpts) weight(tenant string) float64 {
	if w := o.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// jobQueue is the blocking queue between Submit and the worker pool:
// higher priority first, then — in strict mode — earlier deadline (no
// deadline sorts last) and FIFO within ties, or — in fair mode —
// weighted deficit-round-robin across the tenants of the level.
//
// The queue is bounded when opts.limit is set: push rejects with
// ErrQueueFull / ErrTenantQuota, pushWait blocks until space frees.
// Jobs whose deadline passes while queued are expired *in place* by a
// sweep that runs on pop and on push-when-full, so dead jobs stop
// occupying slots; expired jobs are handed back to the caller, which
// owns finishing them.
type jobQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond // waiters in pop (queue empty)
	space *sync.Cond // waiters in pushWait (queue full)
	opts  queueOpts

	h      jobHeap            // strict mode
	levels map[int]*drrLevel  // fair mode, by priority
	prios  []int              // fair mode: non-empty priorities, descending

	size     int
	byTenant map[string]int
	// nextDeadline is the earliest deadline anywhere in the queue (0 =
	// none); sweeps are skipped while now is before it.
	nextDeadline float64
	seq          int64
	closed       bool
}

func newJobQueue(opts queueOpts) *jobQueue {
	q := &jobQueue{
		opts:     opts.withDefaults(),
		levels:   make(map[int]*drrLevel),
		byTenant: make(map[string]int),
	}
	q.cond = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
	return q
}

// full reports whether admitting one more job for tenant would exceed a
// bound, and which bound.
func (q *jobQueue) full(tenant string) (bool, error) {
	if q.opts.limit > 0 && q.size >= q.opts.limit {
		return true, ErrQueueFull
	}
	if q.opts.tenantLimit > 0 && q.byTenant[tenant] >= q.opts.tenantLimit {
		return true, taggedError{tag: ErrQueueFull, err: ErrTenantQuota}
	}
	return false, nil
}

// push enqueues a job without blocking. When the queue is full it first
// sweeps expired jobs to free slots; if still full it rejects with a
// typed error. Any jobs expired by the sweep are returned either way —
// the caller owns finishing them.
func (q *jobQueue) push(j Job, now float64) ([]queued, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	var expired []queued
	if isFull, ferr := q.full(j.Tenant); isFull {
		expired = q.sweep(now)
		if isFull, ferr = q.full(j.Tenant); isFull {
			return expired, ferr
		}
	}
	q.add(j, now)
	return expired, nil
}

// pushWait enqueues a job, blocking while the queue (or the tenant's
// quota) is full. It returns ErrClosed if the queue closes while
// waiting, plus any jobs its sweeps expired.
func (q *jobQueue) pushWait(j Job, now func() float64) ([]queued, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var expired []queued
	for {
		if q.closed {
			return expired, ErrClosed
		}
		isFull, _ := q.full(j.Tenant)
		if isFull {
			if exp := q.sweep(now()); len(exp) > 0 {
				expired = append(expired, exp...)
				continue
			}
			q.space.Wait()
			continue
		}
		q.add(j, now())
		return expired, nil
	}
}

// pop dequeues the next job per the queue discipline, blocking while
// the queue is empty. Returns:
//
//	(nil, nil, false)      — queue closed
//	(nil, expired, true)   — the sweep expired jobs and none remain
//	                         runnable; finish them and pop again
//	(&j, expired, true)    — a job, plus anything the sweep expired
func (q *jobQueue) pop() (*queued, []queued, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, nil, false
	}
	var expired []queued
	now := q.opts.now()
	if q.nextDeadline > 0 && now >= q.nextDeadline {
		expired = q.sweep(now)
		if q.size == 0 {
			return nil, expired, true
		}
	}
	it := q.next()
	q.remove(it)
	return &it, expired, true
}

// tryPop dequeues without blocking (used to fail leftovers after close).
func (q *jobQueue) tryPop() (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return Job{}, false
	}
	it := q.next()
	q.remove(it)
	return it.job, true
}

// length reports how many jobs wait in the queue.
func (q *jobQueue) length() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close wakes all blocked receivers and producers; they observe closed.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.space.Broadcast()
	q.mu.Unlock()
}

// add inserts one job. Caller holds q.mu and has checked bounds.
func (q *jobQueue) add(j Job, now float64) {
	q.seq++
	it := queued{job: j, seq: q.seq, enq: now}
	q.size++
	q.byTenant[j.Tenant]++
	if d := j.Deadline; d > 0 && (q.nextDeadline == 0 || d < q.nextDeadline) {
		q.nextDeadline = d
	}
	if !q.opts.fair {
		heap.Push(&q.h, it)
	} else {
		q.levelFor(j.Priority).add(it)
	}
	q.cond.Signal()
}

// remove updates occupancy bookkeeping for a dequeued item and wakes a
// blocked producer. Caller holds q.mu; the item is already out of its
// heap.
func (q *jobQueue) remove(it queued) {
	q.size--
	if n := q.byTenant[it.job.Tenant] - 1; n > 0 {
		q.byTenant[it.job.Tenant] = n
	} else {
		delete(q.byTenant, it.job.Tenant)
	}
	q.space.Signal()
}

// next picks the next item per the discipline and extracts it from its
// heap (occupancy bookkeeping is remove's job). Caller holds q.mu and
// guarantees size > 0.
func (q *jobQueue) next() queued {
	if !q.opts.fair {
		return heap.Pop(&q.h).(queued)
	}
	for len(q.prios) > 0 {
		lv := q.levels[q.prios[0]]
		if lv == nil || lv.size == 0 {
			delete(q.levels, q.prios[0])
			q.prios = q.prios[1:]
			continue
		}
		return lv.take(q.opts)
	}
	panic("sched: jobQueue.next on empty queue")
}

// levelFor returns (creating if needed) the DRR level for a priority.
func (q *jobQueue) levelFor(prio int) *drrLevel {
	lv := q.levels[prio]
	if lv == nil {
		lv = &drrLevel{tenants: make(map[string]*tenantQ)}
		q.levels[prio] = lv
		i := sort.Search(len(q.prios), func(i int) bool { return q.prios[i] <= prio })
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = prio
	}
	return lv
}

// sweep expires every queued job whose deadline has passed, recomputes
// nextDeadline, and returns the expired items in submission order.
// Caller holds q.mu.
func (q *jobQueue) sweep(now float64) []queued {
	if q.nextDeadline == 0 || now < q.nextDeadline {
		return nil
	}
	var exp []queued
	q.nextDeadline = 0
	note := func(d float64) {
		if d > 0 && (q.nextDeadline == 0 || d < q.nextDeadline) {
			q.nextDeadline = d
		}
	}
	dead := func(it queued) bool { return it.job.Deadline > 0 && now > it.job.Deadline }
	if !q.opts.fair {
		kept := q.h[:0]
		for _, it := range q.h {
			if dead(it) {
				exp = append(exp, it)
			} else {
				kept = append(kept, it)
				note(it.job.Deadline)
			}
		}
		q.h = kept
		heap.Init(&q.h)
	} else {
		for _, prio := range q.prios {
			lv := q.levels[prio]
			if lv == nil {
				continue
			}
			for _, t := range lv.ring {
				tq := lv.tenants[t]
				if tq == nil {
					continue
				}
				kept := tq.h[:0]
				for _, it := range tq.h {
					if dead(it) {
						exp = append(exp, it)
						lv.size--
					} else {
						kept = append(kept, it)
						note(it.job.Deadline)
					}
				}
				tq.h = kept
				heap.Init(&tq.h)
			}
		}
	}
	sort.Slice(exp, func(i, j int) bool { return exp[i].seq < exp[j].seq })
	for _, it := range exp {
		q.remove(it)
	}
	return exp
}

// drrLevel is one priority level in fair mode: per-tenant FIFO/deadline
// sub-queues served deficit-round-robin, so a bursty tenant can no
// longer starve its peers at the same priority.
type drrLevel struct {
	tenants map[string]*tenantQ
	ring    []string // service order: first arrival first, round-robin
	pos     int
	size    int
}

type tenantQ struct {
	h       jobHeap
	deficit float64
}

func (lv *drrLevel) add(it queued) {
	tq := lv.tenants[it.job.Tenant]
	if tq == nil {
		tq = &tenantQ{}
		lv.tenants[it.job.Tenant] = tq
		lv.ring = append(lv.ring, it.job.Tenant)
	}
	heap.Push(&tq.h, it)
	lv.size++
}

// take runs the DRR scan: visit tenants round-robin, refilling each
// visited tenant's deficit by quantum×weight until one can afford its
// head job (cost = bytes). An idle tenant leaves the ring and its
// deficit resets, per classic DRR. Caller guarantees lv.size > 0.
func (lv *drrLevel) take(opts queueOpts) queued {
	for {
		if lv.pos >= len(lv.ring) {
			lv.pos = 0
		}
		t := lv.ring[lv.pos]
		tq := lv.tenants[t]
		if tq == nil || tq.h.Len() == 0 {
			delete(lv.tenants, t)
			lv.ring = append(lv.ring[:lv.pos], lv.ring[lv.pos+1:]...)
			continue
		}
		if cost := tq.h[0].job.Size; tq.deficit >= cost {
			tq.deficit -= cost
			lv.size--
			return heap.Pop(&tq.h).(queued)
		}
		tq.deficit += opts.quantum * opts.weight(t)
		lv.pos++
	}
}

// queued is one waiting job plus its queue bookkeeping: arrival order
// and the clock time it entered the queue (for delay accounting and
// CoDel shedding).
type queued struct {
	job Job
	seq int64
	enq float64
}

// before is the strict-mode ordering (and the within-tenant ordering in
// fair mode, where priorities are equal by construction).
func (a queued) before(b queued) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	ad, bd := a.job.Deadline, b.job.Deadline
	if ad != bd {
		// 0 = no deadline = least urgent.
		if ad == 0 {
			return false
		}
		if bd == 0 {
			return true
		}
		return ad < bd
	}
	return a.seq < b.seq
}

type jobHeap []queued

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(queued)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
