package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestBreakerHalfOpenSingleProbe is the half-open admission property:
// however many workers race at a breaker whose cooldown just elapsed,
// exactly one is admitted as the probe — the rest keep being rejected
// until the probe reports. Run under -race this also proves the state
// machine's locking.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	const workers = 32
	var now float64
	bs := newBreakerSet(1, 10, func() float64 { return now })

	bs.failure("k") // threshold 1: opens immediately
	if bs.allow("k") {
		t.Fatal("open breaker admitted a job inside the cooldown")
	}

	// Round 1: cooldown elapsed, workers race. Exactly one probe.
	now = 15
	admitted := raceAllow(bs, "k", workers)
	if admitted != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", admitted)
	}

	// The probe fails: straight back to open, nobody admitted until the
	// next cooldown elapses.
	bs.failure("k")
	if bs.allow("k") {
		t.Fatal("failed probe did not re-open the breaker")
	}

	// Round 2: another cooldown, another single probe — this time it
	// succeeds and the breaker closes for everyone.
	now = 30
	if admitted := raceAllow(bs, "k", workers); admitted != 1 {
		t.Fatalf("re-entered half-open admitted %d probes, want 1", admitted)
	}
	bs.success("k")
	if admitted := raceAllow(bs, "k", workers); admitted != workers {
		t.Fatalf("closed breaker admitted %d of %d", admitted, workers)
	}
}

// raceAllow fires n concurrent allow calls and returns how many were
// admitted.
func raceAllow(bs *breakerSet, key string, n int) int {
	var admitted int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if bs.allow(key) {
				atomic.AddInt64(&admitted, 1)
			}
		}()
	}
	close(start)
	wg.Wait()
	return int(admitted)
}
