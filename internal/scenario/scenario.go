// Package scenario builds the calibrated simulation world of the paper's
// experiments: the North-America topology of October–November 2015 with
// the PlanetLab client sites (UBC, Purdue, UCLA, UMich), the UAlberta
// cluster, the CANARIE/Cybera research networks, commodity transit, and
// the three providers' datacenters (Google Drive — Mountain View,
// Dropbox — Ashburn VA, OneDrive — Seattle).
//
// Calibration targets are the paper's measured throughputs, not its
// router inventory: each link's capacity and background load are chosen
// so the per-path effective bandwidths match Tables II–IV (e.g. UBC→
// Google Drive ≈ 1.2 MB/s through the PacificWave hand-off, UBC→UAlberta
// ≈ 5.5 MB/s over CANARIE, Purdue→Google ≈ 0.15 MB/s through a congested
// commodity peering). Three route pins reproduce the paper's observed
// path artifacts; everything else follows min-delay routing.
package scenario

import (
	"fmt"
	"math/rand"

	"detournet/internal/bgppol"
	"detournet/internal/cloudsim"
	"detournet/internal/core"
	"detournet/internal/fluid"
	"detournet/internal/rsyncx"
	"detournet/internal/sdk"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/tracelog"
	"detournet/internal/transport"
	"detournet/internal/xtraffic"
)

// Host names of the paper's machines.
const (
	UBC      = "ubc-pl"
	UAlberta = "ualberta"
	UMich    = "umich-pl"
	Purdue   = "purdue-pl"
	UCLA     = "ucla-pl"

	GDriveDC   = "gdrive-dc"
	DropboxDC  = "dropbox-dc"
	OneDriveDC = "onedrive-dc"
)

// Provider names as the SDK reports them.
const (
	GoogleDrive = "GoogleDrive"
	Dropbox     = "Dropbox"
	OneDrive    = "OneDrive"
)

// Clients are the paper's three measured client sites (Sec III A–C).
var Clients = []string{UBC, Purdue, UCLA}

// DTNs are the paper's two candidate intermediate nodes.
var DTNs = []string{UAlberta, UMich}

// Providers maps provider name to datacenter host.
var Providers = map[string]string{
	GoogleDrive: GDriveDC,
	Dropbox:     DropboxDC,
	OneDrive:    OneDriveDC,
}

// ProviderNames lists providers in the paper's column order.
var ProviderNames = []string{GoogleDrive, Dropbox, OneDrive}

// MBps converts megabytes/second to the bytes/second the fluid layer
// uses.
const MBps = 1e6

// World is a fully wired simulation of the paper's setting.
type World struct {
	Eng    *simclock.Engine
	Runner *simproc.Runner
	Graph  *topology.Graph
	Net    *transport.Net

	Services map[string]*cloudsim.Service // by provider name
	POPs     map[string]*cloudsim.POP     // by POP host
	Daemons  map[string]*rsyncx.Daemon    // by DTN host
	Agents   map[string]*core.Agent       // by DTN host
	Cross    *xtraffic.Controller
	// Trace receives detour and agent events from clients built by
	// NewDetourClient and from the DTN agents.
	Trace *tracelog.Log

	// RouteBus carries routing-plane events (session withdraw/announce,
	// link flaps, pin flips) to subscribers — always present so fault
	// injectors can publish even without dynamic routing.
	RouteBus *bgppol.Bus
	// Routing is the staged-convergence BGP layer, non-nil only under
	// WithDynamicRouting.
	Routing *bgppol.Dynamic

	pausers []Pauser
	seed    int64
}

// Pauser is anything that injects scheduled background activity into
// the world — cross-traffic, fault schedules — and must pause between
// workloads so the event queue can drain. Restart arms it when a
// workload starts; StopAll cancels its pending events when the
// workload ends (see xtraffic.Controller for the pattern).
type Pauser interface {
	Restart()
	StopAll()
}

// AddPauser registers extra background activity (e.g. a fault
// injector) to start and stop around every workload.
func (w *World) AddPauser(p Pauser) { w.pausers = append(w.pausers, p) }

// Option adjusts world construction, for sensitivity studies.
type Option func(*buildCfg)

type buildCfg struct {
	capOverride    map[[2]string]float64 // MB/s per directed pair
	policyRouting  bool
	dynamicRouting bool
	googlePOP      bool
}

// WithLinkCapacity overrides one adjacency's capacity (both directions)
// in MB/s — the knob the sensitivity experiments sweep (e.g. "how fast
// would the PacificWave hand-off have to be for the detour to stop
// winning?").
func WithLinkCapacity(a, b string, mbps float64) Option {
	if mbps <= 0 {
		panic("scenario: non-positive capacity override")
	}
	return func(c *buildCfg) {
		c.capOverride[[2]string{a, b}] = mbps
		c.capOverride[[2]string{b, a}] = mbps
	}
}

// GooglePOPVancouver is the edge host added by WithGoogleVancouverPOP.
const GooglePOPVancouver = "google-pop-van"

// WithGoogleVancouverPOP adds a Google edge POP in Vancouver, hanging
// off the CANARIE exchange with a well-provisioned port — the paper's
// "providers may add additional POPs or gateways" remedy. Clients opt in
// by pointing their SDK at GooglePOPVancouver instead of the datacenter.
func WithGoogleVancouverPOP() Option {
	return func(c *buildCfg) { c.googlePOP = true }
}

// Build constructs the world. The seed drives all cross-traffic; the
// same seed reproduces every timing bit-for-bit.
func Build(seed int64, opts ...Option) *World {
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	w := &World{
		Eng: eng, Runner: r, Graph: g,
		Services: make(map[string]*cloudsim.Service),
		POPs:     make(map[string]*cloudsim.POP),
		Daemons:  make(map[string]*rsyncx.Daemon),
		Agents:   make(map[string]*core.Agent),
		Cross:    xtraffic.NewController(),
		seed:     seed,
	}
	w.Trace = tracelog.New(eng)
	cfg := &buildCfg{capOverride: map[[2]string]float64{}}
	for _, opt := range opts {
		opt(cfg)
	}
	w.buildNodes()
	if cfg.googlePOP {
		w.Graph.MustAddNode(&topology.Node{Name: GooglePOPVancouver,
			Hostname: "van01s01-in-f1.1e100.net", IP: "216.58.216.1",
			Kind: topology.Host, Domain: "Google", RespondsICMP: true})
	}
	w.buildLinks(cfg)
	if cfg.googlePOP {
		// A well-provisioned exchange port (the fix the paper imagines)
		// and a fat backhaul into Google's Seattle edge.
		w.Graph.MustConnect("vncv1", GooglePOPVancouver,
			topology.LinkSpec{CapacityBps: 7 * MBps, DelaySec: 0.0024})
		w.Graph.MustConnect(GooglePOPVancouver, "google-edge-sea",
			topology.LinkSpec{CapacityBps: 20 * MBps, DelaySec: 0.0026})
	}
	// Provider networks are stubs: they never carry transit traffic. On
	// the real Internet BGP export policy enforces this; here a filtered
	// min-delay router does (see TestNoProviderTransit).
	g.SetRouter(topology.MinDelayFiltered{
		Allow: topology.NoStubTransit("Google", "Microsoft", "Dropbox"),
	})
	if cfg.policyRouting {
		w.installPolicyRouting()
	}
	w.RouteBus = bgppol.NewBus()
	if cfg.dynamicRouting {
		w.installDynamicRouting()
	}
	w.buildOverrides()
	w.Net = transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
	w.buildServices()
	w.buildDTNs()
	w.buildCrossTraffic()
	return w
}

func (w *World) buildNodes() {
	g := w.Graph
	host := func(name, hostname, ip, domain string) {
		g.MustAddNode(&topology.Node{Name: name, Hostname: hostname, IP: ip,
			Kind: topology.Host, Domain: domain, RespondsICMP: true})
	}
	router := func(name, hostname, ip, domain string) {
		g.MustAddNode(&topology.Node{Name: name, Hostname: hostname, IP: ip,
			Kind: topology.Router, Domain: domain, RespondsICMP: true})
	}
	dark := func(name, hostname, ip, domain string) {
		g.MustAddNode(&topology.Node{Name: name, Hostname: hostname, IP: ip,
			Kind: topology.Router, Domain: domain, RespondsICMP: false})
	}

	// UBC side (Fig 5).
	host(UBC, "planetlab1.cs.ubc.ca", "142.103.2.10", "UBC")
	router("ubc-gw", "142.103.2.253", "142.103.2.253", "UBC")
	router("ubc-net", "a0-a1.net.ubc.ca", "142.103.78.250", "UBC")
	router("ubc-border", "angusborder-a0.net.ubc.ca", "137.82.123.137", "UBC")
	router("bcnet", "345-IX-cr1-UBCAb.vncv1.BC.net", "134.87.0.58", "BCNet")
	router("vncv1", "vncv1rtr2.canarie.ca", "199.212.24.1", "CANARIE")
	router("pacificwave", "google-1-lo-std-707.sttlwa.pacificwave.net", "207.231.242.20", "PacificWave")
	dark("google-peer", "peer.google.internal", "209.85.249.1", "Google")
	router("google-edge-sea", "209.85.249.32", "209.85.249.32", "Google")
	router("google-bb", "216.239.51.159", "216.239.51.159", "Google")
	host(GDriveDC, "sea15s01-in-f138.1e100.net", "216.58.216.138", "Google")

	// UAlberta side (Fig 6).
	host(UAlberta, "cluster.cs.ualberta.ca", "129.128.184.10", "UAlberta")
	router("uofa-fw", "ww-fw.cs.ualberta.ca", "129.128.184.254", "UAlberta")
	dark("uofa-hidden", "fw-inside.cs.ualberta.ca", "172.26.240.1", "UAlberta")
	router("uofa-r1", "172.26.244.22", "172.26.244.22", "UAlberta")
	router("uofa-r2", "172.26.244.17", "172.26.244.17", "UAlberta")
	router("uofa-core", "core1-sc.backbone.ualberta.ca", "129.128.0.10", "UAlberta")
	router("uofa-gsb", "gsb-asr-core1.backbone.ualberta.ca", "129.128.0.21", "UAlberta")
	router("cybera", "uofa-p-1-edm.cybera.ca", "199.116.233.66", "Cybera")
	router("edmn1", "edmn1rtr2.canarie.ca", "199.212.24.68", "CANARIE")

	// Commodity transit (west, Chicago, Ashburn).
	router("tr-sea", "xe-11-0-0.sea10.transit.net", "4.68.10.1", "Transit")
	router("tr-chi", "ae-2-52.chi21.transit.net", "4.68.20.1", "Transit")
	router("tr-ash", "ae-7-8.ash41.transit.net", "4.68.30.1", "Transit")

	// Microsoft / OneDrive (Seattle).
	router("ms-sea", "ms-peering.sttlwa.ix", "198.32.134.10", "Microsoft")
	host(OneDriveDC, "blu-storage.onedrive.live.com", "134.170.0.10", "Microsoft")

	// Dropbox (Ashburn).
	host(DropboxDC, "dropbox-edge-ashburn.dropbox.com", "108.160.166.62", "Dropbox")

	// UMich (Merit / Internet2 Chicago).
	host(UMich, "planetlab1.eecs.umich.edu", "141.211.12.10", "UMich")
	router("umich-gw", "merit-umich-gw.mich.net", "198.108.1.1", "Merit")
	router("i2-chi", "et-1-1-5.4079.core1.chic.net.internet2.edu", "64.57.20.1", "Internet2")
	router("i2-sea", "et-4-0-0.4079.core2.seat.net.internet2.edu", "64.57.20.2", "Internet2")
	router("google-peer-chi", "google-peering.chic", "72.14.219.1", "Google")

	// Purdue (campus + commodity ISP for commercial prefixes).
	host(Purdue, "planetlab1.cs.purdue.edu", "128.210.48.10", "Purdue")
	router("purdue-gw", "tel-210-c6509.tcom.purdue.edu", "128.210.0.1", "Purdue")
	router("isp-chi", "ae-2-5.bar1.chicago.isp.net", "4.69.10.1", "ISP")
	router("isp-west", "ae-7-7.ebr1.sanjose.isp.net", "4.69.20.1", "ISP")
	router("isp-ash", "ae-3-80.edge2.washington.isp.net", "4.69.30.1", "ISP")

	// UCLA (CENIC).
	host(UCLA, "planetlab1.ucla.edu", "128.97.27.10", "UCLA")
	router("ucla-gw", "border-pl.ucla.edu", "128.97.0.1", "UCLA")
	router("cenic", "dc-lax-agg6.cenic.net", "137.164.11.1", "CENIC")
	router("google-sj", "google-peering.snjsca", "72.14.232.1", "Google")
}

// link is one calibrated adjacency.
type link struct {
	a, b  string
	mbps  float64 // capacity, MB/s
	ms    float64 // one-way delay, milliseconds
	load  float64 // mean cross-traffic load (0 = quiet)
	burst float64 // cross-traffic burstiness
	// oneWay adds only the a->b direction. Provider peering links are
	// one-way at the routing level so that min-delay routing cannot
	// construct valley paths that transit a provider backbone (the job
	// policy routing does on the real Internet).
	oneWay bool
	// onOff, when non-nil, replaces the AR(1) process with a two-state
	// episode process (see xtraffic.OnOffConfig) — used for the Purdue
	// westward path whose multi-minute congestion episodes produce the
	// paper's size-dependent detour benefit and huge error bars.
	onOff *xtraffic.OnOffConfig
}

// links returns the calibrated adjacency table. Comments give the
// paper-derived effective throughput targets.
func links() []link {
	return []link{
		// UBC campus and BCNet: plenty of headroom; the paper shows the
		// UBC egress is not the bottleneck (Sec III-A).
		{a: UBC, b: "ubc-gw", mbps: 100, ms: 0.2},
		{a: "ubc-gw", b: "ubc-net", mbps: 100, ms: 0.2},
		{a: "ubc-net", b: "ubc-border", mbps: 100, ms: 0.2},
		{a: "ubc-border", b: "bcnet", mbps: 10, ms: 0.5},
		{a: "bcnet", b: "vncv1", mbps: 8, ms: 0.5},

		// The paper's central artifact: from vncv1rtr2 there are two ways
		// into Google's Seattle edge. The PacificWave hand-off is
		// rate-limited (~1.2 MB/s effective — UBC direct takes 87 s for
		// 100 MB); the private peering is fast (~6.4 MB/s — UAlberta
		// direct takes 17 s).
		{a: "vncv1", b: "pacificwave", mbps: 1.25, ms: 2.5, load: 0.05, burst: 0.3},
		{a: "pacificwave", b: "google-edge-sea", mbps: 10, ms: 0.5},
		{a: "vncv1", b: "google-peer", mbps: 7.0, ms: 2.3, load: 0.08, burst: 0.3},
		{a: "google-peer", b: "google-edge-sea", mbps: 10, ms: 0.5},
		{a: "google-edge-sea", b: "google-bb", mbps: 50, ms: 1},
		{a: "google-bb", b: GDriveDC, mbps: 50, ms: 11},

		// CANARIE Vancouver<->Edmonton: UBC->UAlberta ≈ 5.5 MB/s
		// (19 s / 100 MB, Fig 2).
		{a: "vncv1", b: "edmn1", mbps: 5.8, ms: 6, load: 0.05, burst: 0.2},
		{a: "edmn1", b: "cybera", mbps: 10, ms: 0.3},
		{a: "cybera", b: "uofa-gsb", mbps: 10, ms: 0.3},
		{a: "uofa-gsb", b: "uofa-core", mbps: 100, ms: 0.2},
		{a: "uofa-core", b: "uofa-r2", mbps: 100, ms: 0.2},
		{a: "uofa-r2", b: "uofa-r1", mbps: 100, ms: 0.2},
		{a: "uofa-r1", b: "uofa-hidden", mbps: 100, ms: 0.2},
		{a: "uofa-hidden", b: "uofa-fw", mbps: 100, ms: 0.2},
		{a: "uofa-fw", b: UAlberta, mbps: 12, ms: 0.2},

		// CANARIE peering with Microsoft at Seattle: UBC/UAlberta to
		// OneDrive ≈ 4 MB/s, direct beats detours from UBC.
		{a: "vncv1", b: "ms-sea", mbps: 4.2, ms: 2.5, load: 0.05, burst: 0.3},
		{a: "ms-sea", b: OneDriveDC, mbps: 6, ms: 0.3},

		// Commodity transit westward + cross-country: UBC->Dropbox
		// ≈ 3.5 MB/s direct.
		{a: "bcnet", b: "tr-sea", mbps: 6, ms: 2.2, load: 0.15, burst: 0.5},
		{a: "vncv1", b: "tr-sea", mbps: 2.2, ms: 2.0, load: 0.10, burst: 0.4}, // CANARIE commodity hand-off (UAlberta->Dropbox ≈ 2 MB/s)
		{a: "tr-sea", b: "tr-chi", mbps: 4.2, ms: 22, load: 0.15, burst: 0.5},
		{a: "tr-chi", b: "tr-ash", mbps: 5, ms: 9, load: 0.10, burst: 0.3},
		{a: "tr-ash", b: DropboxDC, mbps: 6, ms: 0.5},
		{a: "tr-sea", b: "ms-sea", mbps: 4, ms: 0.5, load: 0.1, burst: 0.3},

		// UMich: PlanetLab ingress is capped (~0.85 MB/s — UBC->UMich
		// takes ~120 s / 100 MB) but egress and the Internet2->Google
		// peering are fast (~8 MB/s, the fastest Google path measured).
		{a: "tr-chi", b: "umich-gw", mbps: 8, ms: 3, load: 0.05, burst: 0.2},
		{a: "umich-gw", b: "i2-chi", mbps: 9, ms: 3},
		{a: "i2-chi", b: "google-peer-chi", mbps: 8.5, ms: 1, load: 0.06, burst: 0.2},
		{a: "google-peer-chi", b: "google-bb", mbps: 50, ms: 18},
		{a: "i2-chi", b: "tr-ash", mbps: 3.0, ms: 8,
			onOff: &xtraffic.OnOffConfig{GoodLoad: 0.10, BadLoad: 0.85, MeanGood: 420, MeanBad: 160}},
		{a: "i2-chi", b: "i2-sea", mbps: 4.0, ms: 20, load: 0.10, burst: 0.3},
		{a: "i2-sea", b: "ms-sea", mbps: 6, ms: 0.5},
		{a: "i2-chi", b: "edmn1", mbps: 6.0, ms: 18, load: 0.05, burst: 0.2}, // Internet2<->CANARIE (Purdue->UAlberta detour leg)

		// Purdue: the slice's access link caps research-bound traffic at
		// ~0.57 MB/s; the commodity path westward is congested
		// (~0.44 MB/s effective to Seattle) and the ISP->Google peering
		// is badly congested (~0.15 MB/s — 748 s / 100 MB in Table III).
		{a: Purdue, b: "purdue-gw", mbps: 0.6, ms: 0.3, load: 0.05, burst: 0.35},
		{a: "purdue-gw", b: "i2-chi", mbps: 8, ms: 3},
		{a: "purdue-gw", b: "isp-chi", mbps: 5, ms: 3},
		{a: "isp-chi", b: "isp-west", mbps: 2.0, ms: 22,
			onOff: &xtraffic.OnOffConfig{GoodLoad: 0.55, BadLoad: 0.93, MeanGood: 110, MeanBad: 90}},
		{a: "isp-west", b: "google-bb", mbps: 0.55, ms: 2,
			onOff: &xtraffic.OnOffConfig{GoodLoad: 0.45, BadLoad: 0.92, MeanGood: 110, MeanBad: 90}},
		{a: "isp-west", b: "ms-sea", mbps: 3, ms: 2, load: 0.15, burst: 0.4},
		{a: "isp-chi", b: "isp-ash", mbps: 2.2, ms: 9, load: 0.20, burst: 0.5},
		{a: "isp-ash", b: DropboxDC, mbps: 6, ms: 0.5},

		// UCLA: the PlanetLab node's last mile is the bottleneck
		// (~0.39 MB/s); nothing downstream matters (Sec III-C).
		{a: UCLA, b: "ucla-gw", mbps: 0.42, ms: 0.3, load: 0.08, burst: 0.4},
		{a: "ucla-gw", b: "cenic", mbps: 10, ms: 0.5},
		{a: "cenic", b: "google-sj", mbps: 8, ms: 2, load: 0.05, burst: 0.2},
		{a: "google-sj", b: "google-bb", mbps: 50, ms: 2},
		{a: "cenic", b: "tr-sea", mbps: 5, ms: 12, load: 0.10, burst: 0.3},
		{a: "cenic", b: "tr-ash", mbps: 4, ms: 28, load: 0.10, burst: 0.3},
	}
}

func (w *World) buildLinks(cfg *buildCfg) {
	for _, l := range links() {
		mbps := l.mbps
		if ov, ok := cfg.capOverride[[2]string{l.a, l.b}]; ok {
			mbps = ov
		}
		spec := topology.LinkSpec{CapacityBps: mbps * MBps, DelaySec: l.ms / 1000}
		if l.oneWay {
			w.Graph.MustConnectAsym(l.a, l.b, spec)
			continue
		}
		w.Graph.MustConnect(l.a, l.b, spec)
	}
	// PlanetLab slice ingress caps are asymmetric: replace the inbound
	// directions with tighter links. (Outbound stays as built above.)
	w.Graph.MustAddNode(&topology.Node{Name: "umich-pl-in", Hostname: "pl-ingress.umich",
		IP: "141.211.12.1", Kind: topology.Router, Domain: "UMich", RespondsICMP: true})
	w.Graph.MustConnectAsym("umich-gw", "umich-pl-in", topology.LinkSpec{CapacityBps: 0.95 * MBps, DelaySec: 0.0003})
	w.Graph.MustConnectAsym("umich-pl-in", UMich, topology.LinkSpec{CapacityBps: 10 * MBps, DelaySec: 0.0001})
	w.Graph.MustConnectAsym(UMich, "umich-gw", topology.LinkSpec{CapacityBps: 9 * MBps, DelaySec: 0.0003})
}

// buildOverrides pins the three observed path artifacts.
func (w *World) buildOverrides() {
	g := w.Graph
	// 1. UBC's Google traffic leaves CANARIE through the rate-limited
	// PacificWave hand-off (Fig 5), even though the fast private peering
	// hangs off the very same router.
	g.MustSetOverride(UBC, "ubc-gw", "ubc-net", "ubc-border", "bcnet", "vncv1",
		"pacificwave", "google-edge-sea", "google-bb", GDriveDC)
	// 2–3. Purdue's PlanetLab traffic to Google and OneDrive rides the
	// commodity ISP path with the congested westward peering, not
	// Internet2 (the paper's Purdue direct-upload pathology, Fig 7/9).
	g.MustSetOverride(Purdue, "purdue-gw", "isp-chi", "isp-west", "google-bb", GDriveDC)
	g.MustSetOverride(Purdue, "purdue-gw", "isp-chi", "isp-west", "ms-sea", OneDriveDC)
}

func (w *World) buildServices() {
	styles := map[string]cloudsim.Style{
		GoogleDrive: cloudsim.GoogleDrive,
		Dropbox:     cloudsim.Dropbox,
		OneDrive:    cloudsim.OneDrive,
	}
	for _, name := range ProviderNames {
		svc := cloudsim.NewService(w.Eng, w.Net, name, Providers[name], styles[name])
		svc.Start(w.Net)
		w.Services[name] = svc
	}
}

// StartGooglePOP starts the Vancouver POP (the world must have been
// built with WithGoogleVancouverPOP) and returns it.
func (w *World) StartGooglePOP() *cloudsim.POP {
	if _, ok := w.Graph.Node(GooglePOPVancouver); !ok {
		panic("scenario: world built without WithGoogleVancouverPOP")
	}
	pop := cloudsim.StartPOP(w.Net, w.Services[GoogleDrive], GooglePOPVancouver)
	w.POPs[GooglePOPVancouver] = pop
	return pop
}

// NewSDKClientVia builds a Google Drive SDK client that talks to an
// arbitrary API frontend host (a POP) instead of the datacenter.
func (w *World) NewSDKClientVia(from, frontend string) sdk.SessionClient {
	svc := w.Services[GoogleDrive]
	creds := sdk.Register(svc, "app-"+from+"-pop", "secret")
	return sdk.NewGoogleDrive(w.Eng, w.Net, from, frontend, creds, sdk.Options{})
}

func (w *World) buildDTNs() {
	for _, dtn := range DTNs {
		d := rsyncx.NewDaemon(w.Net, dtn)
		d.Start()
		w.Daemons[dtn] = d
		a := core.NewAgent(w.Net, dtn, d)
		a.Trace = w.Trace
		for _, prov := range ProviderNames {
			a.RegisterProvider(w.NewSDKClient(dtn, prov))
		}
		a.Start()
		w.Agents[dtn] = a
	}
}

func (w *World) buildCrossTraffic() {
	rng := rand.New(rand.NewSource(w.seed))
	fl := w.Graph.Fluid()
	for _, l := range links() {
		if l.load == 0 && l.onOff == nil {
			continue
		}
		// Load both directions; uploads stress the forward one but
		// reverse-path congestion exists too.
		for _, dir := range [][2]string{{l.a, l.b}, {l.b, l.a}} {
			e, ok := w.Graph.Edge(dir[0], dir[1])
			if !ok {
				if l.oneWay && dir[0] == l.b {
					continue
				}
				panic(fmt.Sprintf("scenario: missing edge %s->%s", dir[0], dir[1]))
			}
			seeded := rand.New(rand.NewSource(rng.Int63()))
			if l.onOff != nil {
				w.Cross.AttachOnOff(fl, e.Link, *l.onOff, seeded)
				continue
			}
			w.Cross.Attach(fl, e.Link, xtraffic.Config{
				MeanLoad: l.load, Burstiness: l.burst, Interval: 4,
			}, seeded)
		}
	}
}

// NewSDKClient builds a provider SDK client dialing from the given host,
// with fresh credentials registered on the provider's auth server.
func (w *World) NewSDKClient(from, provider string) sdk.SessionClient {
	return w.NewSDKClientWithChunk(from, provider, 0)
}

// NewSDKClientWithChunk is NewSDKClient with an explicit upload chunk
// size (bytes; zero keeps the provider's default), used by the
// chunk-size ablation.
func (w *World) NewSDKClientWithChunk(from, provider string, chunk float64) sdk.SessionClient {
	svc, ok := w.Services[provider]
	if !ok {
		panic(fmt.Sprintf("scenario: unknown provider %q", provider))
	}
	creds := sdk.Register(svc, "app-"+from, "secret-"+from)
	opts := sdk.Options{ChunkBytes: chunk}
	switch provider {
	case GoogleDrive:
		return sdk.NewGoogleDrive(w.Eng, w.Net, from, svc.Host, creds, opts)
	case Dropbox:
		return sdk.NewDropbox(w.Eng, w.Net, from, svc.Host, creds, opts)
	default:
		return sdk.NewOneDrive(w.Eng, w.Net, from, svc.Host, creds, opts)
	}
}

// NewDetourClient builds a detour client from a client host via a DTN.
func (w *World) NewDetourClient(from, via string) *core.DetourClient {
	if _, ok := w.Agents[via]; !ok {
		panic(fmt.Sprintf("scenario: %q is not a DTN", via))
	}
	dc := core.NewDetourClient(w.Net, from, via)
	dc.Trace = w.Trace
	return dc
}

// RunWorkload executes fn as a simulation process and drives the world
// to quiescence: cross-traffic restarts for the workload and stops when
// it finishes so the event queue can drain. Sequential workloads share
// the same world and virtual clock.
func (w *World) RunWorkload(name string, fn func(p *simproc.Proc)) {
	w.Cross.Restart()
	for _, pz := range w.pausers {
		pz.Restart()
	}
	done := false
	w.Runner.Go(name, func(p *simproc.Proc) {
		fn(p)
		for _, pz := range w.pausers {
			pz.StopAll()
		}
		w.Cross.StopAll()
		done = true
	})
	w.Runner.Drive()
	if !done {
		panic(fmt.Sprintf("scenario: workload %q did not finish", name))
	}
}

// Routes returns the paper's route set for a client: direct, via
// UAlberta, via UMich.
func Routes() []core.Route {
	return []core.Route{core.DirectRoute, core.ViaRoute(UAlberta), core.ViaRoute(UMich)}
}
