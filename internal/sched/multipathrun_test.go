package sched

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"detournet/internal/faults"
	"detournet/internal/multipath"
	"detournet/internal/rsyncx"
	"detournet/internal/scenario"
)

// chunkCoverage asserts the ledger invariant end-to-end: every chunk of
// the striped transfer was committed by exactly one path — nothing
// lost, nothing double-committed.
func chunkCoverage(t *testing.T, rep *multipath.Report) {
	t.Helper()
	seen := make(map[int]int)
	for _, pr := range rep.Paths {
		for _, c := range pr.Chunks {
			seen[c]++
		}
	}
	for i := 0; i < rep.NumChunks; i++ {
		if seen[i] != 1 {
			t.Fatalf("chunk %d committed %d times (want exactly 1)", i, seen[i])
		}
	}
	if len(seen) != rep.NumChunks {
		t.Fatalf("committed %d distinct chunks, layout has %d", len(seen), rep.NumChunks)
	}
}

// TestMultipathAcceptance pins the issue's acceptance numbers at seed
// 2015: striping beats the best single path by >=1.4x on at least one
// pair, never lands more than 5% below it on any pair, and no pair
// silently degrades to a single lane.
func TestMultipathAcceptance(t *testing.T) {
	o := RunMultipath(MultipathOptions{Seed: 2015})
	if err := MultipathSanity(o); err != nil {
		t.Fatalf("sanity: %v", err)
	}
	if best := o.BestSpeedup(); best < 1.4 {
		t.Errorf("best speedup %.2fx, want >= 1.4x", best)
	}
	if worst := o.WorstSpeedup(); worst < 1/1.05 {
		t.Errorf("worst speedup %.2fx, want >= %.3fx (<=1.05x worse guard)", worst, 1/1.05)
	}
	if o.Stats.MultipathJobs != int64(len(o.Pairs)) {
		t.Errorf("MultipathJobs = %d, want %d", o.Stats.MultipathJobs, len(o.Pairs))
	}
	if o.Stats.MultipathDegraded != 0 {
		t.Errorf("MultipathDegraded = %d, want 0", o.Stats.MultipathDegraded)
	}
	for _, pr := range o.Pairs {
		if pr.Striped.Err != nil {
			t.Errorf("%s->%s striped failed: %v", pr.Client, pr.Provider, pr.Striped.Err)
			continue
		}
		chunkCoverage(t, pr.Striped.Multipath)
	}
}

// TestMultipathChurnBound drives the 480 MB churn leg across several
// seeds: the transfer must complete, cover every chunk exactly once,
// and keep re-sent bytes within one chunk per failure on every path.
func TestMultipathChurnBound(t *testing.T) {
	for _, seed := range []int64{7, 42, 2015} {
		c := RunMultipathChurn(seed, 0)
		if c.Result.Err != nil {
			t.Fatalf("seed %d: churn transfer failed: %v", seed, c.Result.Err)
		}
		rep := c.Result.Multipath
		if rep == nil {
			t.Fatalf("seed %d: degraded to single-path under churn", seed)
		}
		chunkCoverage(t, rep)
		if !c.WithinResendBound() {
			t.Errorf("seed %d: re-sent bytes exceed one chunk per failure: %+v", seed, rep.Paths)
		}
		sizes := multipath.Layout(rep.Size, rep.Chunk, len(rep.Paths), rep.TailSplit)
		if len(sizes) != rep.NumChunks {
			t.Errorf("seed %d: Layout gives %d chunks, report says %d", seed, len(sizes), rep.NumChunks)
		}
		var sum float64
		for _, sz := range sizes {
			sum += sz
		}
		if sum != rep.Size {
			t.Errorf("seed %d: Layout covers %.0f of %.0f bytes", seed, sum, rep.Size)
		}
	}
	// At the pinned seed the first withdraw (t=60) is guaranteed to
	// land mid-transfer; the scheduler must have actually absorbed it.
	c := RunMultipathChurn(2015, 0)
	rep := c.Result.Multipath
	if rep == nil {
		t.Fatal("seed 2015: no multipath report")
	}
	churned := 0
	for _, pr := range rep.Paths {
		churned += pr.Failures + pr.Drains
	}
	if churned == 0 {
		t.Error("seed 2015: churn storm caused no failures or drains — schedule not exercised")
	}
}

// TestMultipathDeterminismRegression is the regression the issue asks
// for: the same seed must produce a byte-identical report and identical
// per-path chunk assignments across independent runs.
func TestMultipathDeterminismRegression(t *testing.T) {
	run := func() (MultipathOutcome, MultipathChurnOutcome, string) {
		o := RunMultipath(MultipathOptions{Seed: 2015})
		c := RunMultipathChurn(2015, 0)
		var buf bytes.Buffer
		WriteMultipathReport(&buf, o, c)
		return o, c, buf.String()
	}
	o1, c1, txt1 := run()
	o2, c2, txt2 := run()
	if txt1 != txt2 {
		t.Fatalf("report differs across runs of the same seed:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", txt1, txt2)
	}
	for i := range o1.Pairs {
		m1, m2 := o1.Pairs[i].Striped.Multipath, o2.Pairs[i].Striped.Multipath
		if m1 == nil || m2 == nil {
			t.Fatalf("pair %d: missing multipath report", i)
		}
		for j := range m1.Paths {
			if !reflect.DeepEqual(m1.Paths[j].Chunks, m2.Paths[j].Chunks) {
				t.Errorf("pair %s->%s path %d: chunk assignment differs: %v vs %v",
					o1.Pairs[i].Client, o1.Pairs[i].Provider, j, m1.Paths[j].Chunks, m2.Paths[j].Chunks)
			}
		}
	}
	r1, r2 := c1.Result.Multipath, c2.Result.Multipath
	if r1 == nil || r2 == nil || !reflect.DeepEqual(r1.Paths, r2.Paths) {
		t.Error("churn leg per-path reports differ across runs of the same seed")
	}
}

// TestMultipathChurnDigestProperty is the end-to-end integrity property
// under scripted route churn: upload real bytes striped across lanes
// while the reconvergence storm withdraws sessions mid-transfer, then
// prove the reassembled object is the source object. The scheduler's
// commit already compares the provider-echoed digest against Job.MD5
// (so a pass means the composed object matched); on top of that we
// slice the source buffer at the exact Layout boundaries and check that
// concatenating the committed chunks in index order reproduces the
// source digest.
func TestMultipathChurnDigestProperty(t *testing.T) {
	const seed = 2015
	size := 240e6 // long enough to span the first withdraw at t=60
	buf := make([]byte, int(size))
	rand.New(rand.NewSource(seed)).Read(buf)
	md5 := rsyncx.Checksum(buf)

	w := scenario.Build(seed, scenario.WithDynamicRouting())
	faults.NewInjector(w, seed, faults.ChurnSchedule()...)
	exec := NewSimExecutor(w)
	defer exec.Close()

	var res Result
	s := New(Config{
		Workers:  1,
		Executor: exec, Planner: exec,
		Now:      exec.VirtualNow,
		Sleep:    exec.SleepVirtual,
		OnResult: func(r Result) { res = r },
	})
	s.Start()
	if err := s.Submit(Job{
		Tenant: "digest", Client: scenario.UBC, Provider: scenario.GoogleDrive,
		Name: "digest.bin", Size: size, MD5: md5, Mode: JobMultipath,
	}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	s.Close()

	if res.Err != nil {
		t.Fatalf("striped transfer failed under churn: %v", res.Err)
	}
	rep := res.Multipath
	if rep == nil {
		t.Fatal("degraded to single-path")
	}
	chunkCoverage(t, rep)

	sizes := multipath.Layout(rep.Size, rep.Chunk, len(rep.Paths), rep.TailSplit)
	if len(sizes) != rep.NumChunks {
		t.Fatalf("Layout gives %d chunks, report says %d", len(sizes), rep.NumChunks)
	}
	parts := make([][]byte, len(sizes))
	off := 0
	for i, sz := range sizes {
		parts[i] = buf[off : off+int(sz)]
		off += int(sz)
	}
	if off != len(buf) {
		t.Fatalf("layout covers %d of %d bytes", off, len(buf))
	}
	if got := rsyncx.ChecksumCat(parts...); got != md5 {
		t.Fatalf("reassembled digest %s != source digest %s", got, md5)
	}
	fails, drains := 0, 0
	for _, pr := range rep.Paths {
		fails += pr.Failures
		drains += pr.Drains
	}
	t.Logf("digest ok: %d chunks over %d paths, %d fails, %d drains, %.1f MB re-sent",
		rep.NumChunks, len(rep.Paths), fails, drains, res.Rewritten/1e6)
}
