package core

import (
	"errors"
	"fmt"

	"detournet/internal/sdk"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// ErrIntegrity reports a completed resumable upload whose provider-side
// digest does not match the source file — the resumed session was stale
// or its staged bytes were corrupted. The checkpoint's session has been
// discarded, so a retry re-uploads through a fresh session instead of
// re-committing the bad bytes.
var ErrIntegrity = errors.New("core: provider digest mismatch on resumed upload")

// DefaultResumeChunk is the chunk size resumable transfers checkpoint
// at when the caller does not specify one.
const DefaultResumeChunk = 8 << 20

// Checkpoint carries a transfer's durable progress across attempts —
// and across routes: the hop-1 offset lives on a DTN's disk, the
// provider session lives server-side, so a job that fails over from a
// detour to direct (or to another detour) keeps whatever the provider
// already confirmed.
type Checkpoint struct {
	// Hop1Via names the DTN whose disk holds first-hop progress; the
	// offset itself is queried from the daemon (ground truth).
	Hop1Via string
	// Hop1High is the high-water mark of hop-1 bytes pushed, for
	// rewrite accounting.
	Hop1High float64

	// HasSession marks Session as a live provider upload session.
	HasSession bool
	Session    sdk.SessionToken
	// Hop2High is the high-water mark of provider-session bytes sent.
	Hop2High float64

	// BytesResumed counts bytes skipped thanks to checkpoints (work the
	// transfer did NOT redo); BytesRewritten counts bytes sent more than
	// once (work lost to interruptions).
	BytesResumed   float64
	BytesRewritten float64
}

// observeHop1 charges accounting for a hop-1 attempt starting at offset.
func (ck *Checkpoint) observeHop1(offset float64) {
	if offset < ck.Hop1High {
		ck.BytesRewritten += ck.Hop1High - offset
	}
	ck.BytesResumed += offset
}

// abandonHop1 switches the checkpoint's first hop to via (empty for a
// direct route). Progress sitting on a different DTN's disk cannot be
// used from here, so it is charged as rewritten — the bytes must cross
// the first hop again if the transfer ever returns to a detour.
func (ck *Checkpoint) abandonHop1(via string) {
	if ck.Hop1Via == via {
		return
	}
	ck.BytesRewritten += ck.Hop1High
	ck.Hop1Via, ck.Hop1High = via, 0
}

// observeHop2 charges accounting for a provider-session attempt that
// began at start and reached written.
func (ck *Checkpoint) observeHop2(start, written float64) {
	if start < ck.Hop2High {
		ck.BytesRewritten += ck.Hop2High - start
	}
	ck.BytesResumed += start
	if written > ck.Hop2High {
		ck.Hop2High = written
	}
}

// NextObject readies the checkpoint to carry a different object over
// the same path — the per-path reuse a striped multipath transfer
// needs, where one path uploads many chunk objects back to back. The
// per-object marks (hop-1 high water, provider session, hop-2 high
// water) are cleared so the next object starts clean, while the DTN
// affinity (Hop1Via) and the cumulative resumed/rewritten accounting
// survive: they describe the path, not the object.
func (ck *Checkpoint) NextObject() {
	ck.Hop1High = 0
	ck.HasSession = false
	ck.Session = sdk.SessionToken{}
	ck.Hop2High = 0
}

// DiscardSession abandons the checkpoint's provider session: whatever
// the provider confirmed through it is worthless (stale digest, corrupt
// staging), so those bytes are charged as rewritten and the next
// attempt begins a fresh session.
func (ck *Checkpoint) DiscardSession() {
	ck.BytesRewritten += ck.Hop2High
	ck.HasSession = false
	ck.Session = sdk.SessionToken{}
	ck.Hop2High = 0
}

// verifyDigest is the end-to-end integrity gate at upload completion:
// the provider's recorded digest must match the source file's
// (rsyncx.Checksum-produced) digest. On mismatch the session is
// discarded so the caller's retry starts clean. Either digest being
// empty skips the check — not every caller threads checksums.
func (ck *Checkpoint) verifyDigest(source, provider string) error {
	if source == "" || provider == "" || source == provider {
		return nil
	}
	ck.DiscardSession()
	return fmt.Errorf("provider has %q, source is %q: %w", provider, source, ErrIntegrity)
}

// handleRelayResume is the checkpoint-aware store-and-forward second
// hop: it reattaches to the provider session in the request's token
// when possible (falling back to a fresh session), uploads the staged
// file chunk by chunk, and always reports the session token and offsets
// so the client's checkpoint stays current even through failures.
func (a *Agent) handleRelayResume(p *simproc.Proc, c *transport.Conn, m relayResume) {
	if m.Scope != "" {
		// Relay under the caller's flow scope: the second hop's flows
		// belong to the caller's transfer, and a multipath driver must
		// be able to abort them by scoped label without touching other
		// transfers relaying through this DTN.
		old := p.Scope()
		p.SetScope(m.Scope)
		defer p.SetScope(old)
	}
	client, ok := a.clients[m.Provider]
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Err: "unknown provider " + m.Provider}, ctrlBytes)
		return
	}
	st, ok := a.daemon.Staged(m.Name)
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Err: "not staged: " + m.Name}, ctrlBytes)
		return
	}
	t0 := p.Now()
	var sess sdk.UploadSession
	if m.HasToken && m.Token.Provider == m.Provider {
		if r, ok := client.(sdk.SessionResumer); ok {
			// A failed resume (expired session, provider without resume)
			// falls back to a fresh session below.
			if s, err := r.Resume(p, m.Token); err == nil {
				sess = s
			}
		}
	}
	if sess == nil {
		s, err := client.BeginUpload(p, st.Name, st.Size, st.MD5)
		if err != nil {
			_ = c.Send(p, relayResult{OK: false, Err: err.Error()}, ctrlBytes)
			return
		}
		sess = s
	}
	start := sess.Written()
	reply := func(res relayResult) {
		res.StartOffset = start
		res.Written = sess.Written()
		if ts, ok := sess.(sdk.TokenSession); ok {
			res.Token, res.HasToken = ts.Token(), true
		}
		_ = c.Send(p, res, ctrlBytes)
	}
	var info sdk.FileInfo
	for sess.Written() < st.Size {
		n := min(float64(DefaultResumeChunk), st.Size-sess.Written())
		last := sess.Written()+n >= st.Size
		fi, err := sess.WriteChunk(p, n, last)
		if err != nil {
			reply(relayResult{OK: false, Err: err.Error()})
			return
		}
		info = fi
	}
	a.Relayed++
	a.Trace.Emit("agent.relay.resume", map[string]any{
		"name": st.Name, "provider": m.Provider, "bytes": st.Size,
		"resumed_from": start, "seconds": float64(p.Now() - t0),
	})
	reply(relayResult{OK: true, Info: info, Seconds: float64(p.Now() - t0)})
}

// DirectUploadResumable is DirectUpload with checkpointed resume: it
// uploads through a provider session, reattaches to the checkpoint's
// session when one is live, and records the session token in the
// checkpoint after every chunk so an interruption loses at most one
// chunk. Clients without session support fall back to DirectUpload.
func DirectUploadResumable(p *simproc.Proc, client sdk.Client, name string, size float64, md5 string, ck *Checkpoint) (Report, error) {
	sc, ok := client.(sdk.SessionClient)
	if !ok || size <= 0 {
		return DirectUpload(p, client, name, size, md5)
	}
	t0 := p.Now()
	ck.abandonHop1("")
	var sess sdk.UploadSession
	if ck.HasSession && ck.Session.Provider == client.ProviderName() {
		if r, ok := client.(sdk.SessionResumer); ok {
			if s, err := r.Resume(p, ck.Session); err == nil {
				sess = s
			}
		}
	}
	if sess == nil {
		s, err := sc.BeginUpload(p, name, size, md5)
		if err != nil {
			return Report{}, fmt.Errorf("core: direct begin: %w", err)
		}
		sess = s
	}
	start := sess.Written()
	checkpoint := func() {
		if ts, ok := sess.(sdk.TokenSession); ok {
			ck.Session, ck.HasSession = ts.Token(), true
		}
	}
	checkpoint()
	var info sdk.FileInfo
	for sess.Written() < size {
		n := min(float64(DefaultResumeChunk), size-sess.Written())
		last := sess.Written()+n >= size
		fi, err := sess.WriteChunk(p, n, last)
		if err != nil {
			checkpoint()
			ck.observeHop2(start, sess.Written())
			return Report{}, fmt.Errorf("core: direct upload at %.0f: %w", sess.Written(), err)
		}
		checkpoint()
		info = fi
	}
	ck.observeHop2(start, sess.Written())
	if err := ck.verifyDigest(md5, info.MD5); err != nil {
		return Report{}, fmt.Errorf("core: direct upload %q: %w", name, err)
	}
	ck.HasSession = false // consumed: the upload committed
	d := float64(p.Now() - t0)
	return Report{Route: DirectRoute, Total: d, Hop2: d, Info: info}, nil
}

// UploadResumable is the checkpoint-aware store-and-forward detour. The
// first hop resumes from the DTN daemon's confirmed partial offset (its
// disk is ground truth) and skips entirely when an identical copy is
// already staged; the second hop relays through a resumable provider
// session whose token rides in the checkpoint. The checkpoint is
// updated on both success and failure, so the next attempt — on this
// route or another — continues rather than restarts.
func (d *DetourClient) UploadResumable(p *simproc.Proc, provider, name string, size float64, md5 string, ck *Checkpoint) (Report, error) {
	t0 := p.Now()

	// Hop 1: client -> DTN over resumable rsync.
	h0 := p.Now()
	st, err := d.Rsync.Stat(p, name)
	if err != nil {
		return Report{}, fmt.Errorf("core: detour hop1 stat: %w", err)
	}
	switch {
	case st.Staged && st.Size == size && st.MD5 == md5:
		// An identical copy already landed (a previous attempt finished
		// hop1 before dying in hop2): skip the hop.
		if ck.Hop1Via == d.dtn {
			ck.observeHop1(size)
		} else {
			ck.abandonHop1(d.dtn)
		}
		ck.Hop1High = size
	default:
		offset := st.Partial
		ck.abandonHop1(d.dtn)
		ck.observeHop1(offset)
		sent, err := d.Rsync.PushSizedResumable(p, name, size, offset, DefaultResumeChunk, md5)
		if high := offset + sent; high > ck.Hop1High {
			ck.Hop1High = high
		}
		if err != nil {
			return Report{}, fmt.Errorf("core: detour hop1: %w", err)
		}
	}
	hop1 := float64(p.Now() - h0)

	// Hop 2: DTN -> provider through a resumable session.
	c, err := d.tn.Dial(p, d.from, d.dtn, AgentPort, transport.DialOpts{})
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent dial: %w", err)
	}
	defer c.Close()
	req := relayResume{Name: name, Provider: provider, Scope: p.Scope()}
	if ck.HasSession && ck.Session.Provider == provider {
		req.HasToken, req.Token = true, ck.Session
	}
	msg, err := c.Exchange(p, req, ctrlBytes)
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent: %w", err)
	}
	res, ok := msg.Payload.(relayResult)
	if !ok {
		return Report{}, fmt.Errorf("core: detour agent sent %T", msg.Payload)
	}
	if res.HasToken {
		ck.Session, ck.HasSession = res.Token, true
		ck.observeHop2(res.StartOffset, res.Written)
	}
	if !res.OK {
		return Report{}, fmt.Errorf("core: detour hop2: %s", res.Err)
	}
	if err := ck.verifyDigest(md5, res.Info.MD5); err != nil {
		return Report{}, fmt.Errorf("core: detour upload %q: %w", name, err)
	}
	ck.HasSession = false // consumed: the upload committed
	rep := Report{
		Route: d.Route(),
		Total: float64(p.Now() - t0),
		Hop1:  hop1,
		Hop2:  res.Seconds,
		Info:  res.Info,
	}
	d.Trace.Emit("detour.upload.resumed", map[string]any{
		"from": d.from, "via": d.dtn, "provider": provider, "name": name,
		"bytes": size, "total": rep.Total, "hop1": rep.Hop1, "hop2": rep.Hop2,
		"rewritten": ck.BytesRewritten, "resumed": ck.BytesResumed,
	})
	return rep, nil
}
