package sched

import (
	"bytes"
	"testing"
)

// grayfailPair runs the ablation and the stack once for the canonical
// seed, shared across the acceptance assertions below.
func grayfailPair(t *testing.T) (GrayfailOutcome, GrayfailOutcome) {
	t.Helper()
	control := RunGrayfail(GrayfailOptions{Seed: 2015, Stack: false})
	stack := RunGrayfail(GrayfailOptions{Seed: 2015, Stack: true})
	return control, stack
}

// TestGrayfailAcceptance is the PR's acceptance gate for seed 2015: the
// health stack completes the fleet with materially better goodput than
// the DisableHealth ablation, every silent degradation window is
// detected by a watchdog abort within a bounded latency, and the
// mitigation machinery (stalls, reroutes, canaries, metered retries)
// demonstrably ran.
func TestGrayfailAcceptance(t *testing.T) {
	control, stack := grayfailPair(t)
	v := CompareGrayfail(control, stack)

	if v.ControlFailed != 0 || v.StackFailed != 0 {
		t.Fatalf("failures: control %d, stack %d — gray failures must not hard-fail jobs", v.ControlFailed, v.StackFailed)
	}
	if s := v.Speedup(); s < 1.2 {
		t.Errorf("speedup = %.3fx, want >= 1.2x (control %.0fs, stack %.0fs)",
			s, control.VirtualSeconds, stack.VirtualSeconds)
	}
	if len(v.Detections) != 2 {
		t.Fatalf("detections = %+v, want the provider-slow and dtn-disk-slow windows", v.Detections)
	}
	for _, d := range v.Detections {
		if d.DetectedAt < 0 {
			t.Errorf("%s window at t=%.0f never detected", d.Fault, d.Start)
			continue
		}
		// The bound: one DefaultBudget is the worst admissible first
		// catch; in practice the adaptive budgets land far below it.
		if lat := d.Latency(); lat > 600 {
			t.Errorf("%s detection latency %.1fs, want <= 600", d.Fault, lat)
		}
	}
	if stack.Stats.Stalls == 0 || stack.Stats.StallReroutes == 0 {
		t.Errorf("stalls=%d reroutes=%d, want the watchdog to have fired and rerouted", stack.Stats.Stalls, stack.Stats.StallReroutes)
	}
	if stack.Stats.Canaries == 0 {
		t.Error("no canary probes ran — probation re-admission untested by the replay")
	}
	if len(stack.Health) == 0 {
		t.Error("no health transitions recorded")
	}
	// Retries stayed within the metered budget: something was spent,
	// nothing exceeded the bucket (Tokens never goes negative and Spent
	// minus earn-backs is bounded by the burst, which denial enforces).
	if v.RetrySpent == 0 {
		t.Error("retry budget never spent — the hard-error burst should meter at least one retry")
	}
	for _, b := range stack.Budgets {
		if b.Tokens < 0 {
			t.Errorf("provider %s bucket at %.1f tokens — overdrawn", b.Provider, b.Tokens)
		}
	}
	// The ablation, blind to gray failures, must show none of this.
	if control.Stats.Stalls != 0 || control.Stats.Canaries != 0 || len(control.Health) != 0 {
		t.Errorf("ablation ran health machinery: %+v", control.Stats)
	}
}

// TestGrayfailDeterminism: same seed, same binary, byte-identical
// report — the property `make check` re-verifies across processes.
func TestGrayfailDeterminism(t *testing.T) {
	c1, s1 := grayfailPair(t)
	c2, s2 := grayfailPair(t)
	var a, b bytes.Buffer
	WriteGrayfailReport(&a, c1, s1)
	WriteGrayfailReport(&b, c2, s2)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed replays diverged:\n--- run 1\n%s\n--- run 2\n%s", a.String(), b.String())
	}
}
