package detourselect

import (
	"fmt"
	"sort"

	"detournet/internal/core"
	"detournet/internal/overlay"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
)

// ChooseFromMesh is the monitoring-driven variant of Choose: instead of
// probing the client→DTN legs on demand, it reads the overlay mesh's
// continuously-maintained throughput estimates (the paper's "systems
// like RouteViews and dynamic network monitoring tools ... as important
// input" future work). Only the DTN→provider legs and the direct route
// are probed, because the mesh cannot see provider-side paths.
//
// The trade-off this encodes: on-demand probing pays probe traffic per
// decision but is always fresh; monitoring amortizes measurement across
// decisions but can be stale. Both paths return the same Prediction
// shape so callers can compare them (see the selector ablation).
func (s *Selector) ChooseFromMesh(p *simproc.Proc, mesh *overlay.Mesh, direct sdk.Client,
	detours map[string]*core.DetourClient, provider string, size float64) (core.Route, []Prediction, error) {
	if size <= 0 {
		return core.Route{}, nil, fmt.Errorf("detourselect: non-positive size")
	}
	if mesh == nil {
		return core.Route{}, nil, fmt.Errorf("detourselect: nil mesh")
	}
	probeB := s.ProbeBytes
	if probeB <= 0 {
		probeB = 2 << 20
	}
	var preds []Prediction

	// Direct: still an on-demand probe (providers are not mesh members).
	probeName := ".probe-direct"
	t0 := p.Now()
	if _, err := direct.Upload(p, probeName, probeB, ""); err != nil {
		return core.Route{}, nil, fmt.Errorf("detourselect: direct probe: %w", err)
	}
	directDur := float64(p.Now() - t0)
	_ = direct.Delete(p, probeName)
	preds = append(preds, Prediction{
		Route:   core.DirectRoute,
		Seconds: size / s.rateFromProbe(probeB, directDur),
		Hop2:    size / s.rateFromProbe(probeB, directDur),
	})

	names := make([]string, 0, len(detours))
	for via := range detours {
		names = append(names, via)
	}
	sort.Strings(names)
	for _, via := range names {
		dc := detours[via]
		st, ok := mesh.Stat(direct.From(), via)
		if !ok || st.Rate <= 0 {
			// The mesh has no usable estimate for this leg; skip the
			// candidate rather than block on a probe — monitoring-driven
			// selection must stay probe-free on hop1.
			continue
		}
		h2, err := dc.ProbeHop2(p, provider, probeB)
		if err != nil {
			return core.Route{}, nil, fmt.Errorf("detourselect: hop2 probe via %s: %w", via, err)
		}
		e1 := size / st.Rate
		e2 := size / s.rateFromProbe(probeB, h2)
		preds = append(preds, Prediction{
			Route:   core.ViaRoute(via),
			Seconds: e1 + e2,
			Hop1:    e1,
			Hop2:    e2,
		})
	}
	sort.SliceStable(preds, func(i, j int) bool { return preds[i].Seconds < preds[j].Seconds })
	return preds[0].Route, preds, nil
}
