package detourselect

import (
	"math/rand"
	"testing"

	"detournet/internal/core"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
)

func choose(t *testing.T, seed int64, client, provider string, size float64) (core.Route, []Prediction) {
	t.Helper()
	w := scenario.Build(seed)
	var route core.Route
	var preds []Prediction
	w.RunWorkload("select", func(p *simproc.Proc) {
		direct := w.NewSDKClient(client, provider)
		detours := map[string]*core.DetourClient{
			scenario.UAlberta: w.NewDetourClient(client, scenario.UAlberta),
			scenario.UMich:    w.NewDetourClient(client, scenario.UMich),
		}
		var err error
		route, preds, err = NewSelector().Choose(p, direct, detours, provider, size)
		if err != nil {
			t.Error(err)
		}
		direct.Close()
	})
	return route, preds
}

func TestSelectorPicksUAlbertaForUBCGoogleDrive(t *testing.T) {
	route, preds := choose(t, 31, scenario.UBC, scenario.GoogleDrive, 100e6)
	if route != core.ViaRoute(scenario.UAlberta) {
		t.Fatalf("chose %v, want via ualberta; preds=%+v", route, preds)
	}
	if len(preds) != 3 || preds[0].Seconds > preds[1].Seconds {
		t.Fatalf("predictions unsorted: %+v", preds)
	}
}

func TestSelectorPicksDirectForUBCDropbox(t *testing.T) {
	route, preds := choose(t, 32, scenario.UBC, scenario.Dropbox, 100e6)
	if route != core.DirectRoute {
		t.Fatalf("chose %v, want Direct; preds=%+v", route, preds)
	}
}

func TestSelectorPicksDetourForPurdueGoogleDrive(t *testing.T) {
	route, _ := choose(t, 33, scenario.Purdue, scenario.GoogleDrive, 100e6)
	if route.Kind != core.Detour {
		t.Fatalf("chose %v, want a detour", route)
	}
}

func TestSelectorPredictionsTrackReality(t *testing.T) {
	// The predicted time for the chosen route should be within 2.5x of
	// the realized time (probe-based extrapolation on a noisy world).
	w := scenario.Build(34)
	w.RunWorkload("verify", func(p *simproc.Proc) {
		direct := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
		detours := map[string]*core.DetourClient{
			scenario.UAlberta: w.NewDetourClient(scenario.UBC, scenario.UAlberta),
		}
		route, preds, err := NewSelector().Choose(p, direct, detours, scenario.GoogleDrive, 60e6)
		if err != nil {
			t.Error(err)
			return
		}
		rep, err := core.Upload(p, route, direct, detours, scenario.GoogleDrive, "verify.bin", 60e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		pred := preds[0].Seconds
		if rep.Total > pred*2.5 || rep.Total < pred/2.5 {
			t.Errorf("prediction %v vs actual %v: off by more than 2.5x", pred, rep.Total)
		}
		direct.Close()
	})
}

func TestSelectorValidation(t *testing.T) {
	w := scenario.Build(35)
	w.RunWorkload("bad", func(p *simproc.Proc) {
		direct := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
		if _, _, err := NewSelector().Choose(p, direct, nil, scenario.GoogleDrive, 0); err == nil {
			t.Error("zero size accepted")
		}
		direct.Close()
	})
}

func TestBanditExploresThenConverges(t *testing.T) {
	routes := []core.Route{core.DirectRoute, core.ViaRoute("a"), core.ViaRoute("b")}
	b := NewBandit(routes, 1)
	// First picks cover all arms.
	seen := map[core.Route]bool{}
	for i := 0; i < 3; i++ {
		r := b.Next()
		seen[r] = true
		// Simulated outcome: route "a" is 3x faster.
		sec := 30.0
		if r == core.ViaRoute("a") {
			sec = 10
		}
		b.Observe(r, 100e6, sec)
	}
	if len(seen) != 3 {
		t.Fatalf("bandit did not explore all arms: %v", seen)
	}
	// After convergence, "a" dominates the choices.
	picks := map[core.Route]int{}
	for i := 0; i < 200; i++ {
		r := b.Next()
		picks[r]++
		sec := 30.0
		if r == core.ViaRoute("a") {
			sec = 10
		}
		b.Observe(r, 100e6, sec)
	}
	if picks[core.ViaRoute("a")] < 150 {
		t.Fatalf("bandit did not converge: %v", picks)
	}
	if b.Best() != core.ViaRoute("a") {
		t.Fatalf("Best = %v", b.Best())
	}
}

func TestBanditAdaptsToChange(t *testing.T) {
	routes := []core.Route{core.DirectRoute, core.ViaRoute("a")}
	b := NewBandit(routes, 2)
	b.Epsilon = 0.2
	fast := core.ViaRoute("a")
	for i := 0; i < 100; i++ {
		r := b.Next()
		sec := 30.0
		if r == fast {
			sec = 10
		}
		b.Observe(r, 100e6, sec)
	}
	if b.Best() != core.ViaRoute("a") {
		t.Fatalf("pre-change Best = %v", b.Best())
	}
	// The bottleneck moves: direct becomes fast.
	fast = core.DirectRoute
	for i := 0; i < 300; i++ {
		r := b.Next()
		sec := 30.0
		if r == fast {
			sec = 10
		}
		b.Observe(r, 100e6, sec)
	}
	if b.Best() != core.DirectRoute {
		t.Fatalf("bandit did not adapt: Best = %v, throughputs direct=%v a=%v",
			b.Best(), b.Throughput(core.DirectRoute), b.Throughput(core.ViaRoute("a")))
	}
}

func TestBanditIgnoresBadObservations(t *testing.T) {
	b := NewBandit([]core.Route{core.DirectRoute}, 3)
	b.Observe(core.DirectRoute, 100, -1)
	if b.Throughput(core.DirectRoute) != 0 {
		t.Fatal("negative duration recorded")
	}
}

// TestBanditInjectableRand: bandits sharing one injected seeded source
// replay identically run-to-run, and the seed-based constructor is
// unchanged — the reproducibility contract scheduler-driven runs rely
// on.
func TestBanditInjectableRand(t *testing.T) {
	routes := []core.Route{core.DirectRoute, core.ViaRoute("a"), core.ViaRoute("b")}
	drive := func(b *Bandit) []core.Route {
		var picks []core.Route
		for i := 0; i < 100; i++ {
			r := b.Next()
			picks = append(picks, r)
			sec := 20.0
			if r == core.ViaRoute("b") {
				sec = 5
			}
			b.Observe(r, 50e6, sec)
		}
		return picks
	}
	run := func() []core.Route {
		rng := rand.New(rand.NewSource(77))
		// Two bandits drawing from the same source, as the route cache
		// keeps one per key.
		b1, b2 := NewBanditRand(routes, rng), NewBanditRand(routes, rng)
		return append(drive(b1), drive(b2)...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs across identically-seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
	// The legacy constructor must behave exactly like an injected
	// rand.New(rand.NewSource(seed)).
	c1 := drive(NewBandit(routes, 5))
	c2 := drive(NewBanditRand(routes, rand.New(rand.NewSource(5))))
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("NewBandit(5) diverges from NewBanditRand(source(5)) at pick %d", i)
		}
	}
}

func TestBanditRandValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng accepted")
		}
	}()
	NewBanditRand([]core.Route{core.DirectRoute}, nil)
}
