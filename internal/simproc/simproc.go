// Package simproc layers cooperative blocking processes over the
// discrete-event engine, in the style of SimPy: protocol code (SDK
// clients, servers, relays) is written as ordinary sequential Go that
// sleeps and awaits on *virtual* time, while the engine interleaves all
// processes deterministically.
//
// Exactly one goroutine — either the engine driver or a single process —
// runs at any moment; control is handed over explicitly through
// channels. This keeps the simulation single-threaded in effect, so no
// model state needs locking and runs are bit-reproducible.
package simproc

import (
	"fmt"
	"sort"

	"detournet/internal/simclock"
)

// Runner couples an engine with a set of processes.
type Runner struct {
	eng    *simclock.Engine
	ack    chan struct{}
	parked map[*Proc]string // parked process -> what it waits on
	nextID int
}

// New returns a Runner over the engine.
func New(eng *simclock.Engine) *Runner {
	if eng == nil {
		panic("simproc: nil engine")
	}
	return &Runner{eng: eng, ack: make(chan struct{}), parked: make(map[*Proc]string)}
}

// Engine returns the underlying engine.
func (r *Runner) Engine() *simclock.Engine { return r.eng }

// Proc is one cooperative process. Its methods must only be called from
// the process's own goroutine (the function passed to Go).
type Proc struct {
	r      *Runner
	id     int
	name   string
	scope  string
	resume chan struct{}
	done   bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Scope returns the process's flow scope (empty by default).
func (p *Proc) Scope() string { return p.scope }

// SetScope tags the process with a flow scope — an opaque string the
// transport layer prepends to the labels of flows this process starts,
// so a driver can cancel exactly one logical transfer's traffic (a
// multipath hedge abort) without matching another transfer's flows
// between the same endpoints. Server processes acting on behalf of a
// scoped peer should adopt the peer's scope for the duration and
// restore their own afterwards.
func (p *Proc) SetScope(scope string) { p.scope = scope }

// Now returns the current virtual time.
func (p *Proc) Now() simclock.Time { return p.r.eng.Now() }

// Runner returns the runner the process belongs to.
func (p *Proc) Runner() *Runner { return p.r }

// Go schedules fn to start as a new process at the current virtual time.
// It may be called from the driver (before Run) or from inside another
// process.
func (r *Runner) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{r: r, id: r.nextID, name: name, resume: make(chan struct{})}
	r.nextID++
	r.eng.Schedule(r.eng.Now(), func() {
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			r.ack <- struct{}{}
		}()
		r.handoff(p)
	})
	return p
}

// handoff transfers control to p and blocks until p parks or finishes.
// It must run in engine context (inside an event callback).
func (r *Runner) handoff(p *Proc) {
	p.resume <- struct{}{}
	<-r.ack
}

// park yields control back to the engine and blocks until resumed.
// why describes what the process waits on, for deadlock diagnostics.
func (p *Proc) park(why string) {
	p.r.parked[p] = why
	p.r.ack <- struct{}{}
	<-p.resume
	delete(p.r.parked, p)
}

// wake schedules p to resume at the current virtual time. Must be called
// while the engine or another process holds control.
func (p *Proc) wake() {
	p.r.eng.Schedule(p.r.eng.Now(), func() { p.r.handoff(p) })
}

// Sleep suspends the process for d seconds of virtual time. Negative d
// panics; zero is allowed and yields to other work at the same instant.
func (p *Proc) Sleep(d simclock.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simproc: negative sleep %v", d))
	}
	p.r.eng.After(d, func() { p.r.handoff(p) })
	p.park(fmt.Sprintf("sleep(%v)", d))
}

// Run drives the engine until no events remain. If processes are still
// parked when the queue drains, the simulation has deadlocked and Run
// panics with the list of stuck processes and what they wait on.
func (r *Runner) Run() simclock.Time {
	t := r.eng.Run()
	if len(r.parked) > 0 {
		var stuck []string
		for p, why := range r.parked {
			stuck = append(stuck, fmt.Sprintf("%s (waiting on %s)", p.name, why))
		}
		sort.Strings(stuck)
		panic(fmt.Sprintf("simproc: deadlock at t=%v; parked: %v", t, stuck))
	}
	return t
}

// RunUntil drives the engine to the deadline. Parked processes are not a
// deadlock here — the caller may keep driving.
func (r *Runner) RunUntil(deadline simclock.Time) simclock.Time {
	return r.eng.RunUntil(deadline)
}

// Drive runs the engine until the event queue is empty, tolerating
// parked processes (server accept loops park forever by design). Use Run
// when every process is expected to finish.
func (r *Runner) Drive() simclock.Time {
	return r.eng.Run()
}

// Parked returns how many processes are currently suspended.
func (r *Runner) Parked() int { return len(r.parked) }

// Future is a write-once value processes can await. The zero value is
// not usable; use NewFuture.
type Future[T any] struct {
	r       *Runner
	set     bool
	val     T
	waiters []*Proc
}

// NewFuture returns an unset future bound to the runner.
func NewFuture[T any](r *Runner) *Future[T] {
	if r == nil {
		panic("simproc: nil runner")
	}
	return &Future[T]{r: r}
}

// Set fulfils the future and wakes every waiter. Setting twice panics:
// futures are one-shot completion signals.
func (f *Future[T]) Set(v T) {
	if f.set {
		panic("simproc: Future set twice")
	}
	f.set = true
	f.val = v
	for _, w := range f.waiters {
		w.wake()
	}
	f.waiters = nil
}

// IsSet reports whether the future has been fulfilled.
func (f *Future[T]) IsSet() bool { return f.set }

// Peek returns the value and whether it is set, without blocking.
func (f *Future[T]) Peek() (T, bool) { return f.val, f.set }

// Await parks p until the future is set and returns its value.
func Await[T any](p *Proc, f *Future[T]) T {
	if f.set {
		return f.val
	}
	f.waiters = append(f.waiters, p)
	p.park("future")
	return f.val
}

// Queue is an unbounded in-order message queue between processes; the
// building block for connections and mailboxes.
type Queue[T any] struct {
	r     *Runner
	items []T
	recvs []*Proc
}

// NewQueue returns an empty queue bound to the runner.
func NewQueue[T any](r *Runner) *Queue[T] {
	if r == nil {
		panic("simproc: nil runner")
	}
	return &Queue[T]{r: r}
}

// Push appends an item and wakes one waiting receiver, if any. It never
// blocks. It may be called from engine or process context.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.recvs) > 0 {
		w := q.recvs[0]
		q.recvs = q.recvs[1:]
		w.wake()
	}
}

// Pop removes and returns the head item, parking p while the queue is
// empty. Multiple receivers are served FIFO.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.recvs = append(q.recvs, p)
		p.park("queue")
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryPop removes the head item if present.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
