package telemetry

import (
	"math"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	opts := HistOpts{Start: 1, Factor: 2, Buckets: 4} // bounds 1,2,4,8 + Inf
	bounds := opts.bounds()
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},      // at/below the floor lands in the first bucket
		{-3, 0},     // negative clamps low
		{1, 0},      // boundary is inclusive on the upper edge
		{1.0001, 1}, // just past a bound falls to the next bucket
		{2, 1},
		{4, 2},
		{7.9, 3},
		{8, 3},
		{8.1, 4}, // overflow → +Inf bucket
		{1e12, 4},
	}
	for _, c := range cases {
		if got := bucketFor(bounds, c.v); got != c.want {
			t.Errorf("bucketFor(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewRegistry().Histogram("h", "h", HistOpts{Start: 1, Factor: 2, Buckets: 4}).With()
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 6, 20} {
		h.Observe(v)
	}
	var snap *HistSnapshot
	for _, f := range h.fam.snapshot().Metrics {
		snap = f.Hist
	}
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if snap.Sum != 0.5+1.5+1.5+3+6+20 {
		t.Fatalf("sum = %g", snap.Sum)
	}
	wantCounts := []uint64{1, 2, 1, 1, 1}
	for i := range wantCounts {
		if snap.Counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", snap.Counts, wantCounts)
		}
	}
	if q := snap.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %g, want 2", q)
	}
	if q := snap.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %g, want +Inf (overflow bucket)", q)
	}
	if m := snap.Mean(); math.Abs(m-32.5/6) > 1e-12 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramMerge(t *testing.T) {
	opts := HistOpts{Start: 1, Factor: 2, Buckets: 3}
	mk := func(vals ...float64) *HistSnapshot {
		m := NewRegistry().Histogram("m", "m", opts).With()
		for _, v := range vals {
			m.Observe(v)
		}
		for _, f := range m.fam.snapshot().Metrics {
			return f.Hist
		}
		return nil
	}
	a := mk(0.5, 3)
	b := mk(1.5, 100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 4 || a.Sum != 105 {
		t.Fatalf("merged count/sum = %d/%g, want 4/105", a.Count, a.Sum)
	}
	want := []uint64{1, 1, 1, 1}
	for i := range want {
		if a.Counts[i] != want[i] {
			t.Fatalf("merged counts = %v, want %v", a.Counts, want)
		}
	}
	// Mismatched layouts must refuse to merge.
	c := NewRegistry().Histogram("c", "c", HistOpts{Start: 2, Factor: 2, Buckets: 3}).With()
	c.Observe(1)
	var cs *HistSnapshot
	for _, f := range c.fam.snapshot().Metrics {
		cs = f.Hist
	}
	if err := a.Merge(cs); err == nil {
		t.Fatal("merge of mismatched bounds should error")
	}
	wider := mk(1)
	wider.Bounds = append(wider.Bounds, 16)
	if err := a.Merge(wider); err == nil {
		t.Fatal("merge of different bucket counts should error")
	}
}

func TestEmptyHistogramStats(t *testing.T) {
	var h *HistSnapshot
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram stats should be 0")
	}
	if err := h.Merge(nil); err != nil {
		t.Fatal(err)
	}
	e := &HistSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}
	if e.Quantile(0.9) != 0 || e.Mean() != 0 {
		t.Fatal("empty histogram stats should be 0")
	}
}
