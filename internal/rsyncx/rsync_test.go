package rsyncx

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestWeakRollMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randBytes(rng, 4096)
	n := 512
	w := weak(data[0:n])
	for i := 0; i+n < len(data); i++ {
		w = roll(w, data[i], data[i+n], n)
		want := weak(data[i+1 : i+1+n])
		if w != want {
			t.Fatalf("roll diverged at offset %d: %x vs %x", i+1, w, want)
		}
	}
}

func TestPropertyWeakRoll(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 2
		data := randBytes(rng, n*4)
		w := weak(data[:n])
		for i := 0; i+n < len(data); i++ {
			w = roll(w, data[i], data[i+n], n)
			if w != weak(data[i+1:i+1+n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSignBlockLayout(t *testing.T) {
	data := make([]byte, 5000)
	sig := Sign(data, 2048)
	if len(sig.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(sig.Blocks))
	}
	if sig.Blocks[0].Len != 2048 || sig.Blocks[2].Len != 904 {
		t.Fatalf("block lens: %d %d %d", sig.Blocks[0].Len, sig.Blocks[1].Len, sig.Blocks[2].Len)
	}
	if sig.TotalLen != 5000 {
		t.Fatalf("TotalLen = %d", sig.TotalLen)
	}
	if Sign(nil, 0).BlockSize != DefaultBlockSize {
		t.Fatal("default block size not applied")
	}
	if sig.WireSize() <= float64(3*24) {
		t.Fatalf("WireSize = %v", sig.WireSize())
	}
}

func roundTrip(t *testing.T, basis, target []byte, blockSize int) *Delta {
	t.Helper()
	sig := Sign(basis, blockSize)
	d := ComputeDelta(sig, target)
	got, err := Apply(basis, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return d
}

func TestDeltaIdenticalFilesAllCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randBytes(rng, 8192)
	d := roundTrip(t, data, data, 1024)
	if d.LiteralBytes() != 0 {
		t.Fatalf("identical files shipped %d literal bytes", d.LiteralBytes())
	}
	if d.WireSize() >= float64(len(data))/10 {
		t.Fatalf("delta for identical file too big: %v", d.WireSize())
	}
}

func TestDeltaEmptyBasisAllLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randBytes(rng, 5000)
	d := roundTrip(t, nil, data, 1024)
	if d.LiteralBytes() != len(data) {
		t.Fatalf("literal bytes = %d, want %d", d.LiteralBytes(), len(data))
	}
}

func TestDeltaInsertionInMiddle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	basis := randBytes(rng, 10240)
	insert := randBytes(rng, 100)
	target := append(append(append([]byte{}, basis[:5000]...), insert...), basis[5000:]...)
	d := roundTrip(t, basis, target, 1024)
	// Rolling matching must realign after the insertion: literals should
	// be ~100 + partial blocks around the cut, nowhere near the whole file.
	if d.LiteralBytes() > 2500 {
		t.Fatalf("insertion cost %d literal bytes, want < 2500", d.LiteralBytes())
	}
}

func TestDeltaPrependShift(t *testing.T) {
	// A pure shift is the case the rolling checksum exists for.
	rng := rand.New(rand.NewSource(5))
	basis := randBytes(rng, 8192)
	target := append(randBytes(rng, 7), basis...)
	d := roundTrip(t, basis, target, 512)
	if d.LiteralBytes() > 1024 {
		t.Fatalf("prepend cost %d literal bytes", d.LiteralBytes())
	}
}

func TestDeltaTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	basis := randBytes(rng, 8192)
	roundTrip(t, basis, basis[:3000], 1024)
	roundTrip(t, basis, nil, 1024)
}

func TestDeltaCompletelyDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	basis := randBytes(rng, 4096)
	target := randBytes(rng, 4096)
	d := roundTrip(t, basis, target, 512)
	if d.LiteralBytes() != len(target) {
		t.Fatalf("random target matched %d bytes of random basis", len(target)-d.LiteralBytes())
	}
}

func TestPropertyDeltaRoundTrip(t *testing.T) {
	f := func(seed int64, editRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		basis := randBytes(rng, 2000+rng.Intn(6000))
		target := append([]byte(nil), basis...)
		// Random edits: mutate, insert, delete.
		for e := 0; e < int(editRaw%8); e++ {
			if len(target) == 0 {
				break
			}
			switch rng.Intn(3) {
			case 0:
				target[rng.Intn(len(target))] ^= 0xff
			case 1:
				at := rng.Intn(len(target))
				target = append(target[:at], append(randBytes(rng, rng.Intn(200)), target[at:]...)...)
			case 2:
				at := rng.Intn(len(target))
				end := at + rng.Intn(len(target)-at)
				target = append(target[:at], target[end:]...)
			}
		}
		sig := Sign(basis, 512)
		d := ComputeDelta(sig, target)
		got, err := Apply(basis, d)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsCorruptDelta(t *testing.T) {
	basis := make([]byte, 1000)
	d := &Delta{BlockSize: 512, TargetLen: 512, Ops: []Op{{Kind: OpCopy, Index: 99}}}
	if _, err := Apply(basis, d); err == nil {
		t.Fatal("out-of-range copy accepted")
	}
	d = &Delta{BlockSize: 512, TargetLen: 9999, Ops: []Op{{Kind: OpData, Data: make([]byte, 10)}}}
	if _, err := Apply(basis, d); err == nil {
		t.Fatal("length mismatch accepted")
	}
	d = &Delta{BlockSize: 512, TargetLen: 0, Ops: []Op{{Kind: OpKind(7)}}}
	if _, err := Apply(basis, d); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestChecksumStable(t *testing.T) {
	a := Checksum([]byte("hello"))
	b := Checksum([]byte("hello"))
	c := Checksum([]byte("world"))
	if a != b || a == c || len(a) != 32 {
		t.Fatalf("checksums: %s %s %s", a, b, c)
	}
}

func TestWireSizeAccounting(t *testing.T) {
	d := &Delta{Ops: []Op{
		{Kind: OpCopy, Index: 0},
		{Kind: OpData, Data: make([]byte, 100)},
	}}
	if d.WireSize() != 16+8+104 {
		t.Fatalf("WireSize = %v", d.WireSize())
	}
	if len(encodeOpHeader(d.Ops[0])) != 9 || len(encodeOpHeader(d.Ops[1])) != 9 {
		t.Fatal("op header layout changed")
	}
	if !equalData([]byte{1}, []byte{1}) || equalData([]byte{1}, []byte{2}) {
		t.Fatal("equalData broken")
	}
}

func BenchmarkSign(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randBytes(rng, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sign(data, DefaultBlockSize)
	}
}

func BenchmarkComputeDeltaIdentical(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := randBytes(rng, 4<<20)
	sig := Sign(data, DefaultBlockSize)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeDelta(sig, data)
	}
}

func BenchmarkComputeDeltaShifted(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	basis := randBytes(rng, 2<<20)
	target := append(randBytes(rng, 13), basis...)
	sig := Sign(basis, DefaultBlockSize)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeDelta(sig, target)
	}
}
