// Overload: a flash crowd hits the scheduler at several times the
// sustainable service rate — four steady tenants sync all day, a fifth
// tenant dumps a burst, and mid-burst the detour's first-hop link
// degrades. The example replays the identical trace twice: a control
// run (unbounded queue, no shedding, no fairness, no hedging) and an
// overload run (bounded queue with per-tenant quotas, CoDel-style
// queue-delay shedding, weighted DRR fair queuing, hedged transfers,
// brownout degradation), then compares goodput, per-tenant fairness
// (Jain's index), and queue delay.
//
// The replay is deterministic: one worker, and trace arrivals are
// injected the instant a transfer carries the virtual clock past them,
// so a fixed seed reproduces every shed, rejection, and hedge.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"detournet/internal/core"
	"detournet/internal/faults"
	"detournet/internal/scenario"
	"detournet/internal/sched"
	"detournet/internal/workload"
)

const (
	seed       = 2015
	calmSec    = 40.0
	burstSec   = 160.0
	traceEnd   = calmSec + burstSec + calmSec
	slack      = 45.0 // per-job deadline slack, seconds
	steadyRate = 0.2  // jobs/s per steady tenant
	flashRate  = 6.0  // jobs/s from the flash tenant during the burst
)

// feeder wraps the simulation executor so that every virtual-time
// advance — transfer, probe, hedge, or backoff sleep — first completes,
// then hands the new clock to the trace feed. That is what makes the
// replay deterministic with one worker: arrivals interleave with
// service by virtual time, not by goroutine timing.
type feeder struct {
	exec *sched.SimExecutor
	feed func(now float64)
}

func (f *feeder) after() {
	f.feed(f.exec.VirtualNow())
}

func (f *feeder) Execute(j sched.Job, r core.Route) (float64, error) {
	sec, err := f.exec.Execute(j, r)
	f.after()
	return sec, err
}

func (f *feeder) ExecuteResumable(j sched.Job, r core.Route, ck *core.Checkpoint) (float64, error) {
	sec, err := f.exec.ExecuteResumable(j, r, ck)
	f.after()
	return sec, err
}

func (f *feeder) ExecuteHedged(j sched.Job, r core.Route, budget float64, ck *core.Checkpoint) (float64, core.Route, bool, bool, error) {
	sec, route, launched, won, err := f.exec.ExecuteHedged(j, r, budget, ck)
	f.after()
	return sec, route, launched, won, err
}

func (f *feeder) Plan(client, provider string, size float64) (core.Route, []core.Route, error) {
	route, cands, err := f.exec.Plan(client, provider, size)
	f.after()
	return route, cands, err
}

func (f *feeder) Sleep(sec float64) {
	f.exec.SleepVirtual(sec)
	f.after()
}

// buildTrace lays the flash crowd over the steady fleet: each steady
// tenant is its own Poisson stream for the whole trace, the flash
// tenant follows the three-phase FlashCrowd schedule.
func buildTrace() []workload.FleetJob {
	rng := rand.New(rand.NewSource(seed))
	var parts [][]workload.FleetJob
	for ti := 0; ti < 4; ti++ {
		tn := fmt.Sprintf("steady-%d", ti)
		tr, err := workload.GenerateFleet(workload.FleetSpec{
			Jobs:    int(steadyRate * traceEnd),
			Clients: []string{scenario.UBC}, Providers: []string{scenario.GoogleDrive},
			Tenants:  []string{tn},
			Sizes:    workload.Fixed{Bytes: 1e6},
			Arrivals: workload.Poisson{RatePerSec: steadyRate},
			Prefix:   tn, PriorityLevels: 1, DeadlineSlack: slack,
		}, rng)
		if err != nil {
			panic(err)
		}
		parts = append(parts, clip(tr))
	}
	crowd, err := workload.NewFlashCrowd(
		workload.Phase{RatePerSec: 0.02, Seconds: calmSec},
		workload.Phase{RatePerSec: flashRate, Seconds: burstSec},
		workload.Phase{RatePerSec: 0.02},
	)
	if err != nil {
		panic(err)
	}
	flash, err := workload.GenerateFleet(workload.FleetSpec{
		Jobs:    int(flashRate*burstSec) + 40,
		Clients: []string{scenario.UBC}, Providers: []string{scenario.GoogleDrive},
		Tenants:  []string{"flash"},
		Sizes:    workload.Fixed{Bytes: 1e6},
		Arrivals: crowd,
		Prefix:   "flash", PriorityLevels: 1, DeadlineSlack: slack,
	}, rng)
	if err != nil {
		panic(err)
	}
	parts = append(parts, clip(flash))
	return workload.MergeFleet(parts...)
}

func clip(jobs []workload.FleetJob) []workload.FleetJob {
	out := jobs[:0]
	for _, j := range jobs {
		if j.At <= traceEnd {
			out = append(out, j)
		}
	}
	return out
}

type runReport struct {
	stats    sched.Stats
	goodput  float64 // deadline-met bytes
	results  []sched.Result
	attempts map[string]int
	rejected map[string]int
}

// run replays the trace through one scheduler configuration.
func run(trace []workload.FleetJob, label string, overloadOn bool) runReport {
	w := scenario.Build(seed)
	// Mid-burst, the detour's first hop (CANARIE Vancouver–Edmonton)
	// drops to 5% capacity: detour attempts stall past their learned
	// budget, and the overload run hedges them onto the direct route.
	faults.NewInjector(w, seed, faults.Spec{
		Kind: faults.LinkDegrade, From: "vncv1", To: "edmn1",
		Start: calmSec + burstSec/2, Duration: burstSec / 2, CapacityFactor: 0.05,
	})
	exec := sched.NewSimExecutor(w)
	defer exec.Close()

	rep := runReport{attempts: map[string]int{}, rejected: map[string]int{}}
	fd := &feeder{exec: exec}
	cfg := sched.Config{
		Workers: 1, Executor: fd, Planner: fd,
		MaxAttempts: 3,
		Now:         exec.VirtualNow,
		Sleep:       fd.Sleep,
		OnResult:    func(r sched.Result) { rep.results = append(rep.results, r) },
	}
	if overloadOn {
		cfg.QueueLimit = 100
		cfg.TenantQueueLimit = 80
		cfg.FairQueue = true
		cfg.DRRQuantumBytes = 1e6
		cfg.CoDelTarget = 6
		cfg.Hedge = true
		cfg.HedgeMinSamples = 4
		cfg.HedgeMaxFrac = 0.1
		cfg.BrownoutEnter = 0.8
	}
	s := sched.New(cfg)
	s.Start()
	defer s.Close()

	i := 0
	feed := func(now float64) {
		for i < len(trace) && trace[i].At <= now {
			fj := trace[i]
			i++
			rep.attempts[fj.Tenant]++
			err := s.Submit(sched.Job{
				Tenant: fj.Tenant, Client: fj.Client, Provider: fj.Provider,
				Name: fj.Name, Size: fj.Size, Deadline: fj.Deadline,
			})
			if err != nil {
				rep.rejected[fj.Tenant]++
			}
		}
	}
	fd.feed = feed
	for {
		s.Drain()
		if i >= len(trace) {
			break
		}
		if next, now := trace[i].At, exec.VirtualNow(); next > now {
			exec.SleepVirtual(next - now)
		}
		feed(exec.VirtualNow())
	}
	s.Drain()

	rep.stats = s.Stats()
	for _, r := range rep.results {
		if r.Err == nil && !r.Late {
			rep.goodput += r.Job.Size
		}
	}
	fmt.Printf("%s run: %s\n", label, rep.stats)
	return rep
}

func tenantRatios(rep runReport) (tenants []string, ratios map[string]float64) {
	done := map[string]float64{}
	for _, r := range rep.results {
		if r.Err == nil && !r.Late {
			done[r.Job.Tenant]++
		}
	}
	ratios = map[string]float64{}
	for tn, n := range rep.attempts {
		tenants = append(tenants, tn)
		ratios[tn] = done[tn] / float64(n)
	}
	sort.Strings(tenants)
	return tenants, ratios
}

func main() {
	trace := buildTrace()
	perTenant := map[string]int{}
	for _, fj := range trace {
		perTenant[fj.Tenant]++
	}
	fmt.Printf("Overload: %d jobs over %.0fs — calm %.0fs, burst %.0fs (flash tenant at %.0f jobs/s), calm %.0fs\n",
		len(trace), traceEnd, calmSec, burstSec, flashRate, calmSec)
	tenants := make([]string, 0, len(perTenant))
	for tn := range perTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		fmt.Printf("  %-10s %4d jobs\n", tn, perTenant[tn])
	}

	control := run(trace, "control ", false)
	overload := run(trace, "overload", true)

	fmt.Println()
	fmt.Printf("goodput (deadline-met): control %.0f MB, overload %.0f MB (%.2fx)\n",
		control.goodput/1e6, overload.goodput/1e6, overload.goodput/control.goodput)
	fmt.Printf("losses: control expired %d late %d | overload expired %d shed %d rejected %d late %d\n",
		control.stats.Expired, control.stats.Late,
		overload.stats.Expired, overload.stats.Shed,
		overload.stats.QueueFullRejects+overload.stats.TenantQuotaRejects, overload.stats.Late)
	fmt.Printf("queue delay p99: control %.1fs, overload %.1fs (CoDel EWMA at drain %.2fs)\n",
		control.stats.QueueDelayP99, overload.stats.QueueDelayP99, overload.stats.QueueDelayEWMA)
	fmt.Printf("hedging: %d launched, %d won (control: %d)\n",
		overload.stats.Hedges, overload.stats.HedgeWins, control.stats.Hedges)
	fmt.Printf("brownout: %d enters, %d exits; %d small jobs sent direct unplanned, %d stale cache serves\n",
		overload.stats.BrownoutEnters, overload.stats.BrownoutExits,
		overload.stats.BrownoutDirect, overload.stats.StaleServes)

	fmt.Println("per-tenant deadline-met ratio (of submission attempts):")
	names, oRatios := tenantRatios(overload)
	_, cRatios := tenantRatios(control)
	var steady []float64
	for _, tn := range names {
		fmt.Printf("  %-10s control %.2f   overload %.2f   (rejected %d)\n",
			tn, cRatios[tn], oRatios[tn], overload.rejected[tn])
		if tn != "flash" {
			steady = append(steady, oRatios[tn])
		}
	}
	// The flash aggressor is excluded: it demands several times its fair
	// share by construction, so equal *ratios* are not the goal for it.
	fmt.Printf("Jain's index over steady tenants: %.3f\n", sched.JainIndex(steady))
}
