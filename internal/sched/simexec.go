package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"detournet/internal/bgppol"
	"detournet/internal/core"
	"detournet/internal/detourselect"
	"detournet/internal/health"
	"detournet/internal/httpsim"
	"detournet/internal/scenario"
	"detournet/internal/sdk"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tracelog"
	"detournet/internal/transport"
)

// SimExecutor is the bridge between the really-concurrent control plane
// and the cooperatively-scheduled simulation: it is both the Executor
// (transfers run on the simulated topology) and the Planner (cache
// misses probe with the detourselect selector).
//
// The simulation admits one driver at a time, so every call serializes
// behind a mutex; scheduler workers overlap in real time on queueing,
// caps, and retries while their transfers execute back-to-back in
// virtual time. SDK and detour clients are built once per (client,
// provider/DTN) pair and reused — this is a long-lived daemon, not the
// paper's per-invocation measurement programs.
type SimExecutor struct {
	mu      sync.Mutex
	w       *scenario.World
	sel     *detourselect.Selector
	directs map[[2]string]sdk.Client         // (client, provider)
	detours map[[2]string]*core.DetourClient // (client, dtn)
	// converging holds withdrawn routing sessions until their
	// convergence horizon (fed by the world's RouteBus); multipath lanes
	// crossing one drain instead of racing the blackhole. Guarded by
	// convMu because bus callbacks can fire from any workload drive.
	convMu     sync.Mutex
	converging map[[2]string]float64
	// health, when set (see SetHealth), arms the stall watchdog on every
	// resumable transfer and the per-lane budget on multipath runs.
	health *health.Tracker
	// Transfers counts completed Execute calls, for reporting.
	Transfers int64
}

// NewSimExecutor wraps a built world.
func NewSimExecutor(w *scenario.World) *SimExecutor {
	e := &SimExecutor{
		w:          w,
		sel:        detourselect.NewSelector(),
		directs:    make(map[[2]string]sdk.Client),
		detours:    make(map[[2]string]*core.DetourClient),
		converging: make(map[[2]string]float64),
	}
	e.subscribeRouteBus()
	return e
}

// SetHealth arms the stall watchdog: resumable transfers run under a
// monitor that aborts (checkpoint intact) when they exceed their
// adaptive time budget or stop making byte progress, surfacing an error
// wrapping core.ErrStall. Implements sched.HealthAware; the scheduler
// calls it from New when Config.Health is set.
func (e *SimExecutor) SetHealth(h *health.Tracker) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.health = h
}

// direct returns the cached SDK client for (client, provider). Callers
// hold e.mu.
func (e *SimExecutor) direct(client, provider string) sdk.Client {
	k := [2]string{client, provider}
	c, ok := e.directs[k]
	if !ok {
		c = e.w.NewSDKClient(client, provider)
		e.directs[k] = c
	}
	return c
}

// detourFor returns the cached detour client for (client, dtn). Callers
// hold e.mu.
func (e *SimExecutor) detourFor(client, dtn string) *core.DetourClient {
	k := [2]string{client, dtn}
	dc, ok := e.detours[k]
	if !ok {
		dc = e.w.NewDetourClient(client, dtn)
		e.detours[k] = dc
	}
	return dc
}

// detourClients returns the cached detour clients from client to every
// DTN. Callers hold e.mu.
func (e *SimExecutor) detourClients(client string) map[string]*core.DetourClient {
	out := make(map[string]*core.DetourClient, len(scenario.DTNs))
	for _, dtn := range scenario.DTNs {
		k := [2]string{client, dtn}
		dc, ok := e.detours[k]
		if !ok {
			dc = e.w.NewDetourClient(client, dtn)
			e.detours[k] = dc
		}
		out[dtn] = dc
	}
	return out
}

// Execute implements Executor: it runs the transfer as one simulation
// workload and returns the virtual seconds it took.
func (e *SimExecutor) Execute(job Job, route core.Route) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var rep core.Report
	var err error
	e.w.RunWorkload("sched:"+job.Name, func(p *simproc.Proc) {
		switch route.Kind {
		case core.Direct:
			rep, err = core.DirectUpload(p, e.direct(job.Client, job.Provider), job.Name, job.Size, job.MD5)
		default:
			rep, err = e.detourFor(job.Client, route.Via).Upload(p, job.Provider, job.Name, job.Size, job.MD5)
		}
	})
	if err != nil {
		return 0, classifyExecErr(fmt.Errorf("sched: execute %s via %s: %w", job.Name, route, err))
	}
	e.Transfers++
	return rep.Total, nil
}

// ExecuteResumable implements ResumableExecutor: like Execute, but the
// transfer reads and updates the scheduler-owned checkpoint, so a retry
// resumes from the DTN's partial offset and the provider session
// instead of restarting at byte zero.
func (e *SimExecutor) ExecuteResumable(job Job, route core.Route, ck *core.Checkpoint) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var rep core.Report
	var err error
	e.w.RunWorkload("sched:"+job.Name, func(p *simproc.Proc) {
		run := func(pp *simproc.Proc) (core.Report, error) {
			switch route.Kind {
			case core.Direct:
				return core.DirectUploadResumable(pp, e.direct(job.Client, job.Provider), job.Name, job.Size, job.MD5, ck)
			default:
				return e.detourFor(job.Client, route.Via).UploadResumable(pp, job.Provider, job.Name, job.Size, job.MD5, ck)
			}
		}
		if e.health != nil {
			rep, err = e.runWatched(p, job, route, ck, run)
		} else {
			rep, err = run(p)
		}
	})
	if err != nil {
		return 0, classifyExecErr(fmt.Errorf("sched: execute %s via %s: %w", job.Name, route, err))
	}
	e.Transfers++
	return rep.Total, nil
}

// runWatched runs one transfer as a sub-process under the stall
// watchdog. The checkpoint's OnProgress feed updates a live byte
// watermark; a monitor polls it every health CheckInterval and aborts
// the transfer when either gray-failure detector fires:
//
//   - total budget: elapsed time exceeds the adaptive budget derived
//     from the route's learned baseline (catches slow-but-progressing
//     transfers — a crawling first hop keeps the watermark moving);
//   - no progress: the watermark has not advanced for the grace window
//     (catches transfers whose slowness is client-invisible, like a
//     detour's relay hop, which reports nothing until it completes).
//
// Aborting is cooperative: the watchdog raises the checkpoint's abort
// latch and the transfer observes it at its next safe point — a chunk
// ack on the first hop, a relay poll on the second — then returns with
// the checkpoint intact. Flow kills cannot do this job: gray slowness
// lives in *peer* processes (a provider service sleeping mid-write, a
// DTN daemon grinding through a dying disk), where the client side has
// no flow in flight to kill. The surfaced error wraps core.ErrStall,
// so the scheduler's failover resumes elsewhere instead of restarting.
// Callers hold e.mu and run inside a workload.
func (e *SimExecutor) runWatched(p *simproc.Proc, job Job, route core.Route, ck *core.Checkpoint, run func(pp *simproc.Proc) (core.Report, error)) (core.Report, error) {
	h := e.health
	budget := h.Budget(health.ClassRoute, route.String(), job.Size)
	interval := h.CheckInterval()
	grace := h.NoProgressGrace()
	start := float64(p.Now())
	// The checkpoint persists across attempts; a latch left over from a
	// previous watchdog abort must not fire this attempt instantly.
	ck.ResetAbort()

	var watermark float64
	prev := ck.OnProgress
	ck.OnProgress = func(b float64) {
		if b > watermark {
			watermark = b
		}
		// Chain to whatever hook was installed before the watchdog's (the
		// control journal's checkpoint writer rides here).
		if prev != nil {
			prev(b)
		}
	}
	defer func() { ck.OnProgress = prev }()

	r := p.Runner()
	done := simproc.NewFuture[bool](r)
	var rep core.Report
	var err error
	r.Go("sched-watched:"+job.Name, func(pp *simproc.Proc) {
		rep, err = run(pp)
		done.Set(err == nil)
	})
	lastMark, lastAdvance := watermark, start
	reason := ""
	for !done.IsSet() {
		p.Sleep(simclock.Duration(interval))
		if done.IsSet() {
			break
		}
		now := float64(p.Now())
		if watermark > lastMark {
			lastMark, lastAdvance = watermark, now
		}
		switch {
		case now-start > budget:
			reason = fmt.Sprintf("exceeded budget %.0fs", budget)
		case now-lastAdvance > grace:
			reason = fmt.Sprintf("no progress for %.0fs", now-lastAdvance)
		}
		if reason != "" {
			break
		}
	}
	if reason == "" {
		return rep, err
	}
	ck.RequestAbort()
	for !done.IsSet() {
		p.Sleep(simclock.Duration(0.25))
	}
	e.w.Trace.Emit("health.stall", map[string]any{
		tracelog.AttrRoute: route.String(), "job": job.Name, "reason": reason,
	})
	return rep, fmt.Errorf("watchdog aborted %s via %s after %.0fs (%s): %w",
		job.Name, route, float64(p.Now())-start, reason, core.ErrStall)
}

// Precheck implements PrecheckExecutor: one Stat against the
// destination provider, true when the object already exists with the
// job's size and (when the job carries one) digest. Crash recovery
// calls this for journal-pending jobs before re-running them, so a
// commit whose finish record died with the old process completes
// instantly instead of re-uploading.
func (e *SimExecutor) Precheck(job Job) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.direct(job.Client, job.Provider).(sdk.Stater)
	if !ok {
		return false
	}
	found := false
	e.w.RunWorkload("sched:precheck:"+job.Name, func(p *simproc.Proc) {
		fi, err := st.Stat(p, job.Name)
		if err != nil {
			return
		}
		found = fi.Size == job.Size && (job.MD5 == "" || fi.MD5 == job.MD5)
	})
	return found
}

// ExecuteHedged implements HedgedExecutor with a true in-simulation
// race: the primary detour upload starts as one sub-process; if it
// outlives the budget, a direct-route hedge starts as another, both
// sharing the virtual network. First success wins; the loser's flows
// are killed (its transfer aborts with transport.ErrReset) and its
// partial bytes are charged to the checkpoint as rewritten — hedging
// buys tail latency with redundant work, and the accounting shows it.
func (e *SimExecutor) ExecuteHedged(job Job, primary core.Route, budget float64, ck *core.Checkpoint) (float64, core.Route, bool, bool, error) {
	if primary.Kind != core.Detour || budget <= 0 {
		sec, err := e.ExecuteResumable(job, primary, ck)
		return sec, primary, false, false, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	dc := e.detourFor(job.Client, primary.Via)
	direct := e.direct(job.Client, job.Provider)

	type outcome struct {
		err   error
		route core.Route
		at    float64
	}
	var win outcome
	launched, won := false, false
	// The hedge gets its own checkpoint: two live transfers must not
	// share session state. The survivor's checkpoint is merged below.
	var hedgeCk core.Checkpoint
	e.w.RunWorkload("sched-hedge:"+job.Name, func(p *simproc.Proc) {
		r := p.Runner()
		start := float64(p.Now())
		results := simproc.NewQueue[outcome](r)
		primDone := simproc.NewFuture[bool](r)
		hedgeDone := simproc.NewFuture[bool](r)
		r.Go("hedge-primary:"+job.Name, func(pp *simproc.Proc) {
			_, err := dc.UploadResumable(pp, job.Provider, job.Name, job.Size, job.MD5, ck)
			results.Push(outcome{err, primary, float64(pp.Now())})
			primDone.Set(err == nil)
		})
		// Wait out the budget in slices, so a primary that beats it
		// doesn't leave the virtual clock running to the full budget.
		slice := simclock.Duration(budget / 16)
		for i := 0; i < 16 && !primDone.IsSet(); i++ {
			p.Sleep(slice)
		}
		if primDone.IsSet() {
			hedgeDone.Set(false) // nothing to race
		} else {
			launched = true
			r.Go("hedge-direct:"+job.Name, func(pp *simproc.Proc) {
				_, err := core.DirectUploadResumable(pp, direct, job.Name, job.Size, job.MD5, &hedgeCk)
				results.Push(outcome{err, core.DirectRoute, float64(pp.Now())})
				hedgeDone.Set(err == nil)
			})
		}
		win = results.Pop(p)
		if win.err != nil && launched {
			// The first finisher failed on its own; the other side
			// decides the job.
			if second := results.Pop(p); second.err == nil {
				win = second
			}
		}
		won = launched && win.err == nil && win.route.Kind == core.Direct
		// Cancel the loser: kill its flows until its process observes the
		// abort and exits. A kill can land between two of the loser's
		// chunk flows, so sweep repeatedly; only the racing transfers own
		// flows here (the executor serializes workloads).
		loser := hedgeDone
		if won {
			loser = primDone
		}
		fl := e.w.Graph.Fluid()
		for i := 0; i < 10000 && !loser.IsSet(); i++ {
			fl.KillFlowsWhere(nil)
			p.Sleep(simclock.Duration(0.005))
		}
		win.at -= start
	})
	switch {
	case won:
		// The hedge's checkpoint is the live one; the primary's partial
		// progress on both hops was wasted work.
		wasted := ck.Hop1High + ck.Hop2High
		rewritten := ck.BytesRewritten + hedgeCk.BytesRewritten + wasted
		resumed := ck.BytesResumed + hedgeCk.BytesResumed
		*ck = hedgeCk
		ck.BytesRewritten, ck.BytesResumed = rewritten, resumed
	case launched:
		// The primary won (or both failed): whatever the dead hedge
		// pushed through its own session is wasted.
		ck.BytesRewritten += hedgeCk.Hop2High
	}
	if win.err != nil {
		return 0, primary, launched, false, classifyExecErr(fmt.Errorf("sched: hedged execute %s via %s: %w", job.Name, primary, win.err))
	}
	e.Transfers++
	return win.at, win.route, launched, won, nil
}

// stickyWait is how long a rerouting transfer holding a chunk or more
// of hop-1 progress waits for its checkpoint's own DTN to come back
// before settling for another route. Any other DTN forfeits the staged
// bytes (they are disk-local), so a bounded wait is usually cheaper
// than re-sending them.
const stickyWait = 60

// maxReroutes bounds route switches within one ExecuteRerouting call so
// pathological churn cannot trap an attempt forever.
const maxReroutes = 6

// ExecuteRerouting implements ReroutingExecutor. The whole survive-the-
// churn loop runs as ONE simulation workload, so parking, rerouting and
// resuming spend virtual time against the same fault schedule that is
// churning the routes: a withdraw's convergence window actually passes
// while the transfer parks, and the re-announce it is waiting for fires
// mid-workload.
//
// The loop is make-before-break: a failing transfer keeps its
// checkpoint, picks (and if necessary waits for) a surviving route in
// core.RerouteOrder preference, reattaches the checkpoint there — the
// provider session token is path-portable, the DTN partial is reused
// when hop 1 survives — and only then abandons the dead path. When no
// route exists at all it parks in short virtual slices, up to
// parkBudget seconds total, and fails with core.ErrNoRoute only when
// the budget runs dry.
func (e *SimExecutor) ExecuteRerouting(job Job, route core.Route, ck *core.Checkpoint, parkBudget float64) (float64, core.Route, int, float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := route
	var (
		sec      float64
		parked   float64
		reroutes int
		finalErr error
	)
	e.w.RunWorkload("sched-reroute:"+job.Name, func(p *simproc.Proc) {
		start := float64(p.Now())
		sameRoute := 0
		reroute := func(exclude bool) bool {
			next, waited, ok := e.awaitRoute(p, job, ck, cur, parkBudget-parked, exclude)
			parked += waited
			if !ok {
				finalErr = fmt.Errorf("parked %.0fs with no usable route: %w", parked, core.ErrNoRoute)
				return false
			}
			if next != cur {
				reroutes++
				sameRoute = 0
				cur = next
			}
			return true
		}
		for {
			if !e.routeUsable(job.Client, job.Provider, cur, e.hasProgress(ck, cur)) && !reroute(false) {
				return
			}
			var err error
			switch cur.Kind {
			case core.Direct:
				_, err = core.DirectUploadResumable(p, e.direct(job.Client, job.Provider), job.Name, job.Size, job.MD5, ck)
			default:
				_, err = e.detourFor(job.Client, cur.Via).UploadResumable(p, job.Provider, job.Name, job.Size, job.MD5, ck)
			}
			if err == nil {
				sec = float64(p.Now()) - start
				return
			}
			if !isPathError(err) || reroutes >= maxReroutes {
				// Not the path's fault (or churn beyond reason): hand the
				// error back to the scheduler's retry taxonomy.
				finalErr = err
				return
			}
			if e.routeUsable(job.Client, job.Provider, cur, true) && sameRoute < 2 {
				// The topology says the route is back (or never died): a
				// couple of same-route retries preserve every staged byte.
				sameRoute++
				p.Sleep(simclock.Duration(1))
				continue
			}
			if !reroute(true) {
				return
			}
		}
	})
	if finalErr != nil {
		return 0, cur, reroutes, parked, classifyExecErr(fmt.Errorf("sched: execute %s via %s: %w", job.Name, cur, finalErr))
	}
	e.Transfers++
	return sec, cur, reroutes, parked, nil
}

// awaitRoute parks until some route can carry the job, scanning
// core.RerouteOrder preference once per 2-virtual-second slice.
// exclude skips the current route (it keeps failing despite looking
// usable). Inside stickyWait of a checkpoint holding at least one chunk
// on its hop-1 DTN, only that DTN or the current route are taken
// immediately; the best other route is remembered and settled for when
// the window — or the budget — expires. Returns the chosen route, the
// seconds parked, and ok=false when the budget ran dry routeless.
// Callers hold e.mu and run inside a workload.
func (e *SimExecutor) awaitRoute(p *simproc.Proc, job Job, ck *core.Checkpoint, cur core.Route, budget float64, exclude bool) (core.Route, float64, bool) {
	cands := make([]core.Route, 0, len(scenario.DTNs))
	for _, dtn := range scenario.DTNs {
		cands = append(cands, core.ViaRoute(dtn))
	}
	order := core.RerouteOrder(ck, cur, cands)
	stickyUntil := -1.0
	var sticky core.Route
	if ck != nil && ck.Hop1Via != "" && ck.Hop1High >= core.DefaultResumeChunk {
		sticky = core.ViaRoute(ck.Hop1Via)
		stickyUntil = float64(p.Now()) + stickyWait
	}
	waited := 0.0
	for {
		now := float64(p.Now())
		var fallback core.Route
		haveFallback := false
		for _, r := range order {
			if exclude && r == cur {
				continue
			}
			if !e.routeUsable(job.Client, job.Provider, r, r == cur || e.hasProgress(ck, r)) {
				continue
			}
			if now < stickyUntil && r != sticky && r != cur {
				if !haveFallback {
					fallback, haveFallback = r, true
				}
				continue
			}
			return r, waited, true
		}
		if waited >= budget {
			if haveFallback {
				return fallback, waited, true
			}
			return core.Route{}, waited, false
		}
		slice := budget - waited
		if slice > 2 {
			slice = 2
		}
		p.Sleep(simclock.Duration(slice))
		waited += slice
	}
}

// routeUsable reports whether a route can carry the job right now:
// the topology resolves a path end to end (under dynamic routing that
// means the latest RIBs route it — a converging blackhole fails here)
// and, for detours, the DTN agent is up and accepting. existing marks
// work the DTN already holds state for: a draining DTN refuses new
// transfers but finishes existing ones. Callers hold e.mu.
func (e *SimExecutor) routeUsable(client, provider string, r core.Route, existing bool) bool {
	host, ok := scenario.Providers[provider]
	if !ok {
		host = provider
	}
	switch r.Kind {
	case core.Direct:
		_, err := e.w.Graph.Path(client, host)
		return err == nil
	case core.Detour:
		ag, ok := e.w.Agents[r.Via]
		if !ok {
			return false
		}
		if ag.Draining() && !existing {
			return false
		}
		if _, err := e.w.Graph.Path(client, r.Via); err != nil {
			return false
		}
		_, err := e.w.Graph.Path(r.Via, host)
		return err == nil
	}
	return false
}

// hasProgress reports whether the checkpoint holds staged hop-1 bytes
// on route r — which entitles r to "existing work" treatment at a
// draining DTN and to the sticky preference in awaitRoute.
func (e *SimExecutor) hasProgress(ck *core.Checkpoint, r core.Route) bool {
	return ck != nil && r.Kind == core.Detour && r.Via == ck.Hop1Via && ck.Hop1High > 0
}

// isPathError reports an error that indicts the path rather than the
// transfer: the reroute loop owns these; everything else (integrity
// mismatch, provider 5xx, auth) goes straight back to the scheduler's
// retry taxonomy. Agent-side errors arrive flattened to strings by the
// wire protocol, hence the substring fallbacks.
func isPathError(err error) bool {
	switch {
	case errors.Is(err, transport.ErrReset),
		errors.Is(err, transport.ErrRefused),
		errors.Is(err, bgppol.ErrBlackhole),
		errors.Is(err, bgppol.ErrLoop),
		errors.Is(err, bgppol.ErrNoRoute):
		return true
	}
	msg := err.Error()
	for _, s := range []string{
		"no route", "blackhole", "ttl expired", "no border router",
		"connection reset", "connection closed", "connection refused",
		"draining",
	} {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}

// SleepVirtual advances the simulation clock by sec without sending
// traffic. Wired as Config.Sleep, it makes scheduler backoff spend
// virtual time, so retry delays interact with fault windows the way
// wall-clock delays would in a real deployment.
func (e *SimExecutor) SleepVirtual(sec float64) {
	if sec <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.w.RunWorkload("sched:backoff", func(p *simproc.Proc) {
		p.Sleep(simclock.Duration(sec))
	})
}

// classifyExecErr maps simulation errors onto the scheduler's failure
// taxonomy. Connection-level errors seen first-hand classify by
// sentinel; errors from the DTN agent arrive flattened to strings by
// the wire protocol, so those fall back to message matching.
func classifyExecErr(err error) error {
	if err == nil {
		return nil
	}
	var se *httpsim.StatusError
	switch {
	case errors.Is(err, core.ErrStall):
		// Already typed by the watchdog; Classify maps it to FailStall.
		// Must precede the reset case — the abort manifests as killed
		// flows, but the stall is the cause, not the hiccup.
		return err
	case errors.Is(err, transport.ErrReset):
		// A mid-stream reset: the path hiccuped but may already be back.
		return Transient(err)
	case errors.Is(err, transport.ErrRefused):
		return RouteDown(err)
	case errors.Is(err, core.ErrIntegrity):
		// A poisoned resume: the session is already discarded, so a
		// retry with a fresh session is the cure — the route is fine.
		return Transient(err)
	case errors.Is(err, core.ErrNoRoute):
		// Park-budget exhaustion: the routing plane may re-announce any
		// moment, so retry (and park again) rather than failing over a
		// route that doesn't exist.
		return Transient(err)
	case errors.Is(err, bgppol.ErrBlackhole),
		errors.Is(err, bgppol.ErrLoop),
		errors.Is(err, bgppol.ErrNoRoute):
		return RouteDown(err)
	case errors.As(err, &se):
		switch {
		case se.Status == httpsim.StatusInsufficientStorage:
			// Storage quota exhaustion: a property of the provider
			// account, not of any route. Must precede the generic >=500
			// case — a 507 retried on another route fails identically.
			return Quota(err)
		case se.Status == httpsim.StatusServiceUnavailable:
			return ProviderDown(err)
		case se.Status >= 500 || se.Status == httpsim.StatusTooManyRequests:
			return Transient(err)
		}
		return err
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "no route"),
		strings.Contains(msg, "blackhole"),
		strings.Contains(msg, "ttl expired"),
		strings.Contains(msg, "no border router"),
		strings.Contains(msg, "draining"),
		strings.Contains(msg, "no space"):
		// "no space" is a DTN staging disk refusing hop-1 bytes — the
		// detour path, not the job, is out of room; fail over like any
		// dead route and let capacity weights steer future elections.
		return RouteDown(err)
	case strings.Contains(msg, "status 507"),
		strings.Contains(msg, "quota exceeded"),
		strings.Contains(msg, "insufficient storage"):
		// Relayed provider 507s arrive flattened to strings; must
		// precede the generic "status 5" case.
		return Quota(err)
	case strings.Contains(msg, "status 503"):
		return ProviderDown(err)
	case strings.Contains(msg, "connection refused"):
		return RouteDown(err)
	case strings.Contains(msg, "connection reset"),
		strings.Contains(msg, "connection closed"),
		strings.Contains(msg, "status 5"),
		strings.Contains(msg, "status 429"):
		return Transient(err)
	}
	return err
}

// Plan implements Planner: it probes direct and every DTN with the
// selector and returns the predicted-fastest route plus all candidates.
func (e *SimExecutor) Plan(client, provider string, size float64) (core.Route, []core.Route, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var chosen core.Route
	var preds []detourselect.Prediction
	var err error
	e.w.RunWorkload(fmt.Sprintf("sched-plan:%s->%s", client, provider), func(p *simproc.Proc) {
		chosen, preds, err = e.sel.Choose(p, e.direct(client, provider), e.detourClients(client), provider, size)
	})
	if err != nil {
		return core.Route{}, nil, err
	}
	cands := make([]core.Route, 0, len(preds))
	for _, pr := range preds {
		cands = append(cands, pr.Route)
	}
	return chosen, cands, nil
}

// RoutePaths implements PathAwarePlanner: the node/domain hops each
// route traverses right now, so the route cache can match entries
// against routing events by the sessions they actually cross. A route
// the topology cannot resolve is simply omitted (the cache then falls
// back to whole-key invalidation for it).
func (e *SimExecutor) RoutePaths(client, provider string, routes []core.Route) map[core.Route][]PathHop {
	e.mu.Lock()
	defer e.mu.Unlock()
	host, ok := scenario.Providers[provider]
	if !ok {
		host = provider
	}
	out := make(map[core.Route][]PathHop, len(routes))
	for _, r := range routes {
		switch r.Kind {
		case core.Direct:
			if hops, ok := e.pathHops(client, host); ok {
				out[r] = hops
			}
		case core.Detour:
			h1, ok1 := e.pathHops(client, r.Via)
			h2, ok2 := e.pathHops(r.Via, host)
			if ok1 && ok2 {
				if len(h2) > 0 {
					h2 = h2[1:] // the DTN joins the hops once
				}
				out[r] = append(h1, h2...)
			}
		}
	}
	return out
}

// pathHops resolves src->dst on the live topology into (node, domain)
// hops. Callers hold e.mu.
func (e *SimExecutor) pathHops(src, dst string) ([]PathHop, bool) {
	nodes, err := e.w.Graph.Path(src, dst)
	if err != nil {
		return nil, false
	}
	hops := make([]PathHop, len(nodes))
	for i, n := range nodes {
		hops[i] = PathHop{Node: n.Name, Domain: n.Domain}
	}
	return hops, true
}

// DTNHeadroom implements CapacityOracle against the live simulation:
// the named DTN daemon's free staging bytes (+Inf for an unbounded
// disk, 0 for an unknown DTN). Reads are safe under e.mu — daemon
// state only mutates inside workload drives, which serialize behind
// the same mutex.
func (e *SimExecutor) DTNHeadroom(dtn string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.w.Daemons[dtn]
	if !ok {
		return 0
	}
	return d.Headroom()
}

// reclaimIdleSecs is how stale an unfinished provider upload session
// must be before quota reclamation may garbage-collect it. Short
// enough to matter inside one pressure storm, long enough that no
// live transfer's session (which touches its session every chunk) is
// ever at risk.
const reclaimIdleSecs = 30

// ReclaimQuota implements QuotaReclaimer: ask the provider to
// garbage-collect abandoned upload sessions, freeing their pending
// quota bytes. Returns the bytes freed (0 for an unknown provider or
// nothing to reclaim).
func (e *SimExecutor) ReclaimQuota(provider string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	svc, ok := e.w.Services[provider]
	if !ok {
		return 0
	}
	var freed float64
	e.w.RunWorkload("sched:reclaim:"+provider, func(p *simproc.Proc) {
		freed = svc.ReclaimQuota(reclaimIdleSecs)
	})
	return freed
}

// VirtualNow returns the simulation clock, i.e. the total virtual
// seconds all transfers and probes have consumed.
func (e *SimExecutor) VirtualNow() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return float64(e.w.Eng.Now())
}

// Close releases the cached SDK clients' connections.
func (e *SimExecutor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.directs {
		c.Close()
	}
}
