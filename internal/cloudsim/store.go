// Package cloudsim emulates the three cloud-storage services of the case
// study — Google Drive, Dropbox, and Microsoft OneDrive — as HTTP
// services over the simulated WAN. Each provider exposes its own 2015-era
// REST upload protocol (resumable session + single PUT for Drive, 4 MiB
// upload_session chunks for Dropbox, 10 MiB Content-Range fragments for
// OneDrive), all protected by OAuth2 bearer tokens, all backed by an
// in-memory object store at the provider's datacenter.
//
// The protocol differences matter to the paper's results: chunkier
// protocols pay more request round trips per file, which is part of why
// detour benefit is provider- and file-size-dependent.
package cloudsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"detournet/internal/simclock"
)

// ErrQuotaExceeded reports a write the store refused because it would
// push used bytes past the bucket's quota — the storage-layer origin
// of every 507 the provider front ends emit. The message substring
// "quota exceeded" is load-bearing: agent-relayed errors are flattened
// to strings on the wire and classified by content.
var ErrQuotaExceeded = errors.New("cloudsim: quota exceeded")

// Object is one stored file.
type Object struct {
	ID       string
	Name     string
	Size     float64
	MD5      string // hex digest when content bytes were provided
	Modified simclock.Time
}

// ObjectStore is an in-memory bucket, keyed by name (paths are names
// here) with stable generated IDs.
type ObjectStore struct {
	eng    *simclock.Engine
	byName map[string]*Object
	byID   map[string]*Object
	nextID int
	// Quota caps total stored bytes; zero means unlimited.
	Quota float64
	used  float64
	// attempts maps an idempotency key (X-Attempt-Id) to the object its
	// commit produced, so a replayed commit of the same attempt returns
	// the stored object instead of materializing a duplicate.
	attempts map[string]*Object
	// commits counts materializing commits per name — the crash-replay
	// harness asserts exactly one per object.
	commits map[string]int
	// dupSuppressed counts commits answered from the attempts table.
	dupSuppressed int
}

// NewObjectStore returns an empty store on the clock.
func NewObjectStore(eng *simclock.Engine) *ObjectStore {
	if eng == nil {
		panic("cloudsim: nil engine")
	}
	return &ObjectStore{
		eng: eng, byName: make(map[string]*Object), byID: make(map[string]*Object),
		attempts: make(map[string]*Object), commits: make(map[string]int),
	}
}

// Put stores (or replaces) an object by name. md5 may be empty when the
// content was never materialized.
func (s *ObjectStore) Put(name string, size float64, md5 string) (*Object, error) {
	if name == "" {
		return nil, fmt.Errorf("cloudsim: empty object name")
	}
	if size < 0 {
		return nil, fmt.Errorf("cloudsim: negative size")
	}
	var prev float64
	if old, ok := s.byName[name]; ok {
		prev = old.Size
	}
	if s.Quota > 0 && s.used-prev+size > s.Quota {
		return nil, ErrQuotaExceeded
	}
	if old, ok := s.byName[name]; ok {
		s.used -= old.Size
		delete(s.byID, old.ID)
	}
	o := &Object{
		ID:       fmt.Sprintf("f-%d", s.nextID),
		Name:     name,
		Size:     size,
		MD5:      md5,
		Modified: s.eng.Now(),
	}
	s.nextID++
	s.byName[name] = o
	s.byID[o.ID] = o
	s.used += size
	s.commits[name]++
	s.assertInvariant()
	return o, nil
}

// QuotaHeadroom reports the bytes still admissible under the quota;
// +Inf when the store is unlimited (zero quota), never negative.
func (s *ObjectStore) QuotaHeadroom() float64 {
	if s.Quota <= 0 {
		return math.Inf(1)
	}
	h := s.Quota - s.used
	if h < 0 {
		return 0
	}
	return h
}

// assertInvariant checks the store's accounting after every write:
// used must equal the sum of stored object sizes and must never
// exceed the quota. A violation is a simulator bug (for instance, a
// compose restore path over-reporting reclaimed space), not a
// recoverable condition, so it panics.
func (s *ObjectStore) assertInvariant() {
	s.assertAccounting()
	if s.Quota > 0 && s.used > s.Quota+1e-6 {
		panic(fmt.Sprintf("cloudsim: used %.0f exceeds quota %.0f", s.used, s.Quota))
	}
}

// assertAccounting is the half of the invariant that holds across
// every mutation including deletes: tracked used bytes must equal the
// stored objects. (A delete while the quota sits externally shrunk
// below used still reduces usage, so the quota half is only asserted
// after writes, whose admission checks guarantee it.)
func (s *ObjectStore) assertAccounting() {
	var sum float64
	for _, o := range s.byName {
		sum += o.Size
	}
	if math.Abs(sum-s.used) > 1e-6 {
		panic(fmt.Sprintf("cloudsim: used accounting drift: tracked %.0f, stored %.0f", s.used, sum))
	}
}

// PutIdempotent stores an object like Put, gated by an idempotency key:
// when a commit with the same non-empty key already produced an object
// that is still stored, that object is returned unchanged and no second
// commit is materialized — how a crash-replayed upload attempt avoids
// double-committing. An empty key degrades to a plain Put.
func (s *ObjectStore) PutIdempotent(name string, size float64, md5, key string) (*Object, error) {
	if key != "" {
		if o, ok := s.Replayed(key, name); ok {
			return o, nil
		}
	}
	o, err := s.Put(name, size, md5)
	if err != nil {
		return nil, err
	}
	if key != "" {
		s.attempts[key] = o
	}
	return o, nil
}

// Restore re-inserts a previously stored object after a failed
// multi-step mutation — a compose whose final Put did not fit rolls
// its freed parts back with this. Unlike Put it preserves the
// object's identity and does not count a new commit: rollback is not
// a commit, so a failed compose can neither over-report reclaimed
// space nor inflate per-name commit counts.
func (s *ObjectStore) Restore(o *Object) error {
	if o == nil || o.Name == "" {
		return fmt.Errorf("cloudsim: restoring nil or unnamed object")
	}
	var prev float64
	if old, ok := s.byName[o.Name]; ok {
		prev = old.Size
	}
	if s.Quota > 0 && s.used-prev+o.Size > s.Quota {
		return ErrQuotaExceeded
	}
	if old, ok := s.byName[o.Name]; ok {
		s.used -= old.Size
		delete(s.byID, old.ID)
	}
	s.byName[o.Name] = o
	s.byID[o.ID] = o
	s.used += o.Size
	s.assertInvariant()
	return nil
}

// Replayed answers an idempotent replay without a Put: it returns the
// object a previous commit with this key produced, provided it is still
// the stored object under name.
func (s *ObjectStore) Replayed(key, name string) (*Object, bool) {
	o, ok := s.attempts[key]
	if ok && o.Name == name && s.byName[name] == o {
		s.dupSuppressed++
		return o, true
	}
	return nil, false
}

// RecordAttempt associates an idempotency key with an already-stored
// object (compose commits record themselves after their multi-step
// Put).
func (s *ObjectStore) RecordAttempt(key string, o *Object) {
	if key != "" && o != nil {
		s.attempts[key] = o
	}
}

// Commits returns how many materializing commits name has received.
func (s *ObjectStore) Commits(name string) int { return s.commits[name] }

// DuplicatesSuppressed returns how many commits were answered from the
// idempotency table instead of materializing again.
func (s *ObjectStore) DuplicatesSuppressed() int { return s.dupSuppressed }

// Get returns an object by name.
func (s *ObjectStore) Get(name string) (*Object, bool) {
	o, ok := s.byName[name]
	return o, ok
}

// GetByID returns an object by ID.
func (s *ObjectStore) GetByID(id string) (*Object, bool) {
	o, ok := s.byID[id]
	return o, ok
}

// Delete removes an object by name, reporting whether it existed. The
// paper deletes staged files before every run; the DTN relay calls this.
func (s *ObjectStore) Delete(name string) bool {
	o, ok := s.byName[name]
	if !ok {
		return false
	}
	s.used -= o.Size
	delete(s.byName, name)
	delete(s.byID, o.ID)
	s.assertAccounting()
	return true
}

// List returns all objects sorted by name.
func (s *ObjectStore) List() []*Object {
	out := make([]*Object, 0, len(s.byName))
	for _, o := range s.byName {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of stored objects.
func (s *ObjectStore) Len() int { return len(s.byName) }

// Used returns the total stored bytes.
func (s *ObjectStore) Used() float64 { return s.used }
