module detournet

go 1.22
