package experiments

import (
	"strings"
	"testing"

	"detournet/internal/scenario"
)

func TestWorkloadStudyPurdueGoogleDrive(t *testing.T) {
	// Purdue->Google Drive is the paper's strongest detour case: both the
	// static-detour and adaptive policies must beat always-direct on mean
	// transfer time.
	results, err := WorkloadStudy(Quick(), scenario.Purdue, scenario.GoogleDrive, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byPolicy := map[WorkloadPolicy]WorkloadResult{}
	for _, r := range results {
		byPolicy[r.Policy] = r
		if len(r.Transfers) != 12 {
			t.Fatalf("%s transfers = %d", r.Policy, len(r.Transfers))
		}
		if r.Makespan <= 0 || r.MeanTransfer <= 0 {
			t.Fatalf("%s: %+v", r.Policy, r)
		}
	}
	direct := byPolicy[PolicyDirect]
	detour := byPolicy[PolicyDetour]
	adaptive := byPolicy[PolicyAdaptive]
	if direct.DetourJobs != 0 {
		t.Fatalf("direct policy took detours: %d", direct.DetourJobs)
	}
	if detour.DetourJobs != 12 {
		t.Fatalf("static detour policy skipped detours: %d", detour.DetourJobs)
	}
	if detour.MeanTransfer >= direct.MeanTransfer {
		t.Errorf("static detour mean %.1f should beat direct %.1f", detour.MeanTransfer, direct.MeanTransfer)
	}
	if adaptive.MeanTransfer >= direct.MeanTransfer {
		t.Errorf("adaptive mean %.1f should beat direct %.1f", adaptive.MeanTransfer, direct.MeanTransfer)
	}
}

func TestWorkloadStudyUCLADirectBest(t *testing.T) {
	// From UCLA the last mile binds: adaptive must not lose much to
	// direct, and the static detour should be the worst policy.
	results, err := WorkloadStudy(Quick(), scenario.UCLA, scenario.GoogleDrive, 8)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[WorkloadPolicy]WorkloadResult{}
	for _, r := range results {
		byPolicy[r.Policy] = r
	}
	direct := byPolicy[PolicyDirect]
	detour := byPolicy[PolicyDetour]
	adaptive := byPolicy[PolicyAdaptive]
	if detour.MeanTransfer <= direct.MeanTransfer {
		t.Errorf("forced detour (%.1f) should lose to direct (%.1f) at UCLA",
			detour.MeanTransfer, direct.MeanTransfer)
	}
	if adaptive.MeanTransfer > direct.MeanTransfer*1.15 {
		t.Errorf("adaptive (%.1f) should stay near direct (%.1f) at UCLA",
			adaptive.MeanTransfer, direct.MeanTransfer)
	}
}

func TestFormatWorkloadStudy(t *testing.T) {
	results, err := WorkloadStudy(Quick(), scenario.UBC, scenario.GoogleDrive, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatWorkloadStudy(scenario.UBC, scenario.GoogleDrive, results)
	for _, want := range []string{"Workload study", "direct", "detour", "adaptive", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
