// Package oauthsim emulates the OAuth2 machinery the paper's clients had
// to traverse (all three providers use RFC 6749): a token endpoint
// honouring the refresh_token grant, bearer-token validation with
// expiry on the virtual clock, and a client-side TokenSource that
// caches access tokens and refreshes them over HTTP when they expire.
//
// Functionally this is a small corner of OAuth2, but it charges the
// right costs: the first API call of a run pays an extra HTTPS round
// trip to the token endpoint, exactly like the Java SDKs of 2015.
package oauthsim

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strings"

	"detournet/internal/httpsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
)

// TokenPath is the token endpoint path, mounted on each provider's API
// server.
const TokenPath = "/oauth2/token"

// DefaultTTL is the access-token lifetime in virtual seconds (matching
// the common 3600s expires_in).
const DefaultTTL = 3600.0

// AuthServer is the provider-side authorization server.
type AuthServer struct {
	eng *simclock.Engine
	// TTL is the access-token lifetime in seconds.
	TTL float64

	clients map[string]*clientRecord
	access  map[string]*accessToken
	nextID  int
}

type clientRecord struct {
	secret        string
	refreshTokens map[string]bool
}

type accessToken struct {
	clientID string
	expires  simclock.Time
}

// NewAuthServer returns an empty authorization server on the clock.
func NewAuthServer(eng *simclock.Engine) *AuthServer {
	if eng == nil {
		panic("oauthsim: nil engine")
	}
	return &AuthServer{
		eng:     eng,
		TTL:     DefaultTTL,
		clients: make(map[string]*clientRecord),
		access:  make(map[string]*accessToken),
	}
}

// RegisterClient provisions an API client and returns a refresh token,
// mirroring the one-time interactive consent the paper's experimenters
// performed before benchmarking.
func (a *AuthServer) RegisterClient(clientID, clientSecret string) string {
	rec, ok := a.clients[clientID]
	if !ok {
		rec = &clientRecord{secret: clientSecret, refreshTokens: make(map[string]bool)}
		a.clients[clientID] = rec
	}
	rt := fmt.Sprintf("rt-%s-%d", clientID, len(rec.refreshTokens))
	rec.refreshTokens[rt] = true
	return rt
}

// tokenResponse is the RFC 6749 §5.1 success body.
type tokenResponse struct {
	AccessToken string  `json:"access_token"`
	TokenType   string  `json:"token_type"`
	ExpiresIn   float64 `json:"expires_in"`
}

// tokenError is the RFC 6749 §5.2 error body.
type tokenError struct {
	Error string `json:"error"`
}

// Mount installs the token endpoint on an API server.
func (a *AuthServer) Mount(s *httpsim.Server) {
	s.Handle("POST", TokenPath, a.handleToken)
}

func (a *AuthServer) handleToken(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	form, err := url.ParseQuery(string(req.Body))
	if err != nil {
		return oauthErr(httpsim.StatusBadRequest, "invalid_request")
	}
	if form.Get("grant_type") != "refresh_token" {
		return oauthErr(httpsim.StatusBadRequest, "unsupported_grant_type")
	}
	rec, ok := a.clients[form.Get("client_id")]
	if !ok || rec.secret != form.Get("client_secret") {
		return oauthErr(httpsim.StatusUnauthorized, "invalid_client")
	}
	if !rec.refreshTokens[form.Get("refresh_token")] {
		return oauthErr(httpsim.StatusBadRequest, "invalid_grant")
	}
	tok := fmt.Sprintf("at-%d", a.nextID)
	a.nextID++
	a.access[tok] = &accessToken{
		clientID: form.Get("client_id"),
		expires:  a.eng.Now() + simclock.Time(a.TTL),
	}
	body, _ := json.Marshal(tokenResponse{AccessToken: tok, TokenType: "Bearer", ExpiresIn: a.TTL})
	return &httpsim.Response{Status: httpsim.StatusOK, Body: body}
}

func oauthErr(status int, code string) *httpsim.Response {
	body, _ := json.Marshal(tokenError{Error: code})
	return &httpsim.Response{Status: status, Body: body}
}

// Validate checks an Authorization header value and returns the client
// id it belongs to.
func (a *AuthServer) Validate(authorization string) (string, error) {
	const prefix = "Bearer "
	if !strings.HasPrefix(authorization, prefix) {
		return "", fmt.Errorf("oauthsim: not a bearer token")
	}
	tok, ok := a.access[strings.TrimPrefix(authorization, prefix)]
	if !ok {
		return "", fmt.Errorf("oauthsim: unknown token")
	}
	if a.eng.Now() >= tok.expires {
		return "", fmt.Errorf("oauthsim: token expired")
	}
	return tok.clientID, nil
}

// Protect wraps a handler with bearer-token enforcement.
func (a *AuthServer) Protect(fn httpsim.HandlerFunc) httpsim.HandlerFunc {
	return func(ctx *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
		if _, err := a.Validate(req.Header["Authorization"]); err != nil {
			return oauthErr(httpsim.StatusUnauthorized, "invalid_token")
		}
		return fn(ctx, req)
	}
}

// TokenSource is the client side: it lazily fetches and caches an access
// token, refreshing over HTTP when the cached one is within the skew
// window of expiry.
type TokenSource struct {
	client       *httpsim.Client
	host         string
	clientID     string
	clientSecret string
	refreshToken string

	eng     *simclock.Engine
	tok     string
	expires simclock.Time
	// Skew refreshes this many seconds before nominal expiry.
	Skew float64
	// Fetches counts token-endpoint round trips, for tests.
	Fetches int
}

// NewTokenSource returns a source that refreshes against host's token
// endpoint using the registered credentials.
func NewTokenSource(eng *simclock.Engine, client *httpsim.Client, host, clientID, clientSecret, refreshToken string) *TokenSource {
	return &TokenSource{
		client: client, host: host, eng: eng,
		clientID: clientID, clientSecret: clientSecret, refreshToken: refreshToken,
		Skew: 30,
	}
}

// Token returns a valid access token, refreshing if needed.
func (ts *TokenSource) Token(p *simproc.Proc) (string, error) {
	if ts.tok != "" && ts.eng.Now() < ts.expires-simclock.Time(ts.Skew) {
		return ts.tok, nil
	}
	form := url.Values{
		"grant_type":    {"refresh_token"},
		"client_id":     {ts.clientID},
		"client_secret": {ts.clientSecret},
		"refresh_token": {ts.refreshToken},
	}
	resp, err := ts.client.Do(p, &httpsim.Request{
		Method: "POST", Path: TokenPath, Host: ts.host,
		Header: map[string]string{"Content-Type": "application/x-www-form-urlencoded"},
		Body:   []byte(form.Encode()),
	})
	if err != nil {
		return "", err
	}
	if !resp.OK() {
		var te tokenError
		_ = json.Unmarshal(resp.Body, &te)
		return "", fmt.Errorf("oauthsim: token refresh failed: %s", te.Error)
	}
	var tr tokenResponse
	if err := json.Unmarshal(resp.Body, &tr); err != nil {
		return "", fmt.Errorf("oauthsim: bad token response: %w", err)
	}
	ts.tok = tr.AccessToken
	ts.expires = ts.eng.Now() + simclock.Time(tr.ExpiresIn)
	ts.Fetches++
	return ts.tok, nil
}

// AuthHeader returns a ready Authorization header value.
func (ts *TokenSource) AuthHeader(p *simproc.Proc) (string, error) {
	tok, err := ts.Token(p)
	if err != nil {
		return "", err
	}
	return "Bearer " + tok, nil
}
