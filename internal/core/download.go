package core

import (
	"fmt"

	"detournet/internal/rsyncx"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// Downloads are the reverse of the paper's measured direction (Sec II
// notes the experiments "focus on the file-transfer operations ...
// uploading a file and downloading a file"). A detoured download flips
// the two hops: the DTN's relay agent downloads from the provider into
// the rsync staging area, and the client pulls the staged file.

// DirectDownload times a plain API download at the user machine.
func DirectDownload(p *simproc.Proc, client sdk.Client, name string) (Report, error) {
	t0 := p.Now()
	info, err := client.Download(p, name)
	if err != nil {
		return Report{}, fmt.Errorf("core: direct download: %w", err)
	}
	d := float64(p.Now() - t0)
	return Report{Route: DirectRoute, Total: d, Hop2: d, Info: info}, nil
}

type relayDownload struct {
	Name     string
	Provider string
}

// handleDownload is the detoured download's first hop: the agent pulls
// the object from the provider and stages it for the client to fetch.
func (a *Agent) handleDownload(p *simproc.Proc, c *transport.Conn, m relayDownload) {
	client, ok := a.clients[m.Provider]
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Err: "unknown provider " + m.Provider}, ctrlBytes)
		return
	}
	t0 := p.Now()
	info, err := client.Download(p, m.Name)
	if err != nil {
		_ = c.Send(p, relayResult{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	a.daemon.Stage(&rsyncx.Staged{Name: info.Name, Size: info.Size, MD5: info.MD5})
	a.Relayed++
	_ = c.Send(p, relayResult{OK: true, Info: info, Seconds: float64(p.Now() - t0)}, ctrlBytes)
}

// Download performs a detoured download: command the agent to pull the
// object from the provider to the DTN (hop 1), then rsync-fetch it from
// the DTN's staging area (hop 2). Total = Hop1 + Hop2 (+ command RTTs),
// mirroring the store-and-forward upload.
func (d *DetourClient) Download(p *simproc.Proc, provider, name string) (Report, error) {
	t0 := p.Now()
	c, err := d.tn.Dial(p, d.from, d.dtn, AgentPort, transport.DialOpts{})
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent dial: %w", err)
	}
	defer c.Close()
	msg, err := c.Exchange(p, relayDownload{Name: name, Provider: provider}, ctrlBytes)
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent: %w", err)
	}
	res, ok := msg.Payload.(relayResult)
	if !ok {
		return Report{}, fmt.Errorf("core: detour agent sent %T", msg.Payload)
	}
	if !res.OK {
		return Report{}, fmt.Errorf("core: detour download hop1: %s", res.Err)
	}
	h0 := p.Now()
	st, err := d.Rsync.Fetch(p, name)
	if err != nil {
		return Report{}, fmt.Errorf("core: detour download hop2: %w", err)
	}
	if st.Size != res.Info.Size {
		return Report{}, fmt.Errorf("core: staged size %v != provider size %v", st.Size, res.Info.Size)
	}
	rep := Report{
		Route: d.Route(),
		Total: float64(p.Now() - t0),
		Hop1:  res.Seconds,
		Hop2:  float64(p.Now() - h0),
		Info:  res.Info,
	}
	d.Trace.Emit("detour.download.done", map[string]any{
		"from": d.from, "via": d.dtn, "provider": provider, "name": name,
		"bytes": rep.Info.Size, "total": rep.Total, "hop1": rep.Hop1, "hop2": rep.Hop2,
	})
	return rep, nil
}
