package cloudsim

import (
	"encoding/json"

	"detournet/internal/httpsim"
)

// Server-side compose: concatenate previously uploaded part objects, in
// the order given, into one final object — the commit step of a striped
// multipath upload. The 2015-era consumer APIs this simulator models
// did not expose compose (GCS had Objects.compose, the consumer
// products did not); it is modeled here as the minimal control-plane
// extension a multipath data plane needs, identical in semantics across
// the three styles and mounted under each provider's path flavor:
//
//	Google Drive: POST /drive/v3/files:compose
//	Dropbox:      POST /2/files/compose
//	OneDrive:     POST /v1.0/drive/compose
//
// Body: {"name": ..., "md5": ..., "parts": ["part0", "part1", ...]}.
// Every part must exist; the final size is the sum of part sizes; the
// md5 is the client's whole-file digest (echoed into the stored
// metadata exactly like the X-Content-MD5 header on uploads). Parts are
// deleted on success — compose is a move, not a copy, so the quota
// accounting stays flat.
type composeReq struct {
	Name  string   `json:"name"`
	MD5   string   `json:"md5,omitempty"`
	Parts []string `json:"parts"`
}

func (s *Service) mountCompose() {
	var path string
	switch s.Style {
	case GoogleDrive:
		path = "/drive/v3/files:compose"
	case Dropbox:
		path = "/2/files/compose"
	default:
		path = "/v1.0/drive/compose"
	}
	s.HTTP.Handle("POST", path, s.protect(s.compose))
}

func (s *Service) compose(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	var cr composeReq
	if err := json.Unmarshal(req.Body, &cr); err != nil || cr.Name == "" || len(cr.Parts) == 0 {
		return errResp(httpsim.StatusBadRequest, "compose needs a name and at least one part")
	}
	var total float64
	seen := make(map[string]bool, len(cr.Parts))
	for _, part := range cr.Parts {
		if seen[part] {
			return errResp(httpsim.StatusBadRequest, "duplicate part "+part)
		}
		seen[part] = true
		o, ok := s.Store.Get(part)
		if !ok {
			return errResp(httpsim.StatusNotFound, "missing part "+part)
		}
		total += o.Size
	}
	// Free the parts before the final Put so a quota-bound store does
	// not double-count the bytes mid-compose.
	for _, part := range cr.Parts {
		s.Store.Delete(part)
	}
	o, err := s.Store.Put(cr.Name, total, cr.MD5)
	if err != nil {
		return errResp(httpsim.StatusPayloadTooLarge, err.Error())
	}
	status := httpsim.StatusOK
	if s.Style == OneDrive {
		status = httpsim.StatusCreated
	}
	return jsonResp(status, metaOf(o))
}
