// Command straceroute runs a simulated traceroute over the case-study
// topology and prints it in the classic format, optionally geolocating
// every hop the way the paper did with the IP Location Finder service.
//
// Usage:
//
//	straceroute [-from ubc-pl] [-to gdrive-dc] [-geo] [-seed N]
//	straceroute -list            # show available hosts
package main

import (
	"flag"
	"fmt"
	"os"

	"detournet/internal/geo"
	"detournet/internal/scenario"
	"detournet/internal/topology"
	"detournet/internal/traceroutex"
)

func main() {
	var (
		from   = flag.String("from", scenario.UBC, "source host")
		to     = flag.String("to", scenario.GDriveDC, "destination host")
		useGeo = flag.Bool("geo", false, "geolocate every hop")
		seed   = flag.Int64("seed", 2015, "world seed")
		list   = flag.Bool("list", false, "list hosts and exit")
	)
	flag.Parse()

	w := scenario.Build(*seed)
	if *list {
		for _, n := range w.Graph.Nodes() {
			if n.Kind == topology.Host {
				fmt.Printf("%-14s %-40s %s\n", n.Name, n.Hostname, n.IP)
			}
		}
		return
	}
	res, err := traceroutex.Run(w.Graph, *from, *to, traceroutex.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "straceroute: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
	if *useGeo {
		fmt.Println("\ngeolocation:")
		hops := res.Geolocate(geo.PaperDB())
		for _, h := range hops {
			if h.Hop.Hidden {
				fmt.Printf("%2d  (anonymous)\n", h.Hop.TTL)
				continue
			}
			if h.OK {
				fmt.Printf("%2d  %-44s %s\n", h.Hop.TTL, h.Hop.Node.Hostname, h.Site.City)
			} else {
				fmt.Printf("%2d  %-44s (unknown)\n", h.Hop.TTL, h.Hop.Node.Hostname)
			}
		}
		fmt.Printf("\napprox. geographic path length: %.0f km\n", traceroutex.PathKm(hops))
	}
}
