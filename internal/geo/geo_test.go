package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	// Vancouver to Edmonton is roughly 820 km.
	d := HaversineKm(UBC.Coord, UAlberta.Coord)
	if d < 750 || d > 900 {
		t.Fatalf("UBC-UAlberta = %.0f km, want ~820", d)
	}
	// Vancouver to Mountain View is roughly 1300 km.
	d = HaversineKm(UBC.Coord, GoogleDriveDC.Coord)
	if d < 1200 || d > 1450 {
		t.Fatalf("UBC-MountainView = %.0f km, want ~1300", d)
	}
	// Zero distance.
	if d := HaversineKm(UMich.Coord, UMich.Coord); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestGeographicBacktrackingOfUAlbertaDetour(t *testing.T) {
	// The paper's Fig 3 point: UBC->UAlberta->MountainView is a large
	// geographic detour versus UBC->MountainView.
	direct := HaversineKm(UBC.Coord, GoogleDriveDC.Coord)
	viaUAlb := HaversineKm(UBC.Coord, UAlberta.Coord) + HaversineKm(UAlberta.Coord, GoogleDriveDC.Coord)
	if viaUAlb < 1.5*direct {
		t.Fatalf("detour distance %.0f should be >1.5x direct %.0f", viaUAlb, direct)
	}
}

func TestPropagationDelayOrderOfMagnitude(t *testing.T) {
	// Cross-continent (~4000 km) should be tens of ms one-way.
	d := PropagationDelay(UBC.Coord, DropboxDC.Coord)
	if d < 0.015 || d > 0.050 {
		t.Fatalf("UBC-Ashburn propagation = %v s, want 15-50 ms", d)
	}
}

func TestPropertyHaversineMetric(t *testing.T) {
	clampCoord := func(lat, lon float64) Coord {
		if math.IsNaN(lat) || math.IsInf(lat, 0) {
			lat = 0
		}
		if math.IsNaN(lon) || math.IsInf(lon, 0) {
			lon = 0
		}
		return Coord{Lat: math.Mod(lat, 89), Lon: math.Mod(lon, 179)}
	}
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := clampCoord(lat1, lon1)
		b := clampCoord(lat2, lon2)
		dab := HaversineKm(a, b)
		dba := HaversineKm(b, a)
		// symmetry, non-negativity, bounded by half circumference
		return dab >= 0 && math.Abs(dab-dba) < 1e-6 && dab <= math.Pi*EarthRadiusKm+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequalityGeo(t *testing.T) {
	// Great-circle distance satisfies the triangle inequality (unlike the
	// Internet's throughput "distance", which is the paper's point).
	sites := Sites()
	for _, a := range sites {
		for _, b := range sites {
			for _, c := range sites {
				if HaversineKm(a.Coord, c.Coord) > HaversineKm(a.Coord, b.Coord)+HaversineKm(b.Coord, c.Coord)+1e-6 {
					t.Fatalf("triangle inequality violated for %s-%s-%s", a.Name, b.Name, c.Name)
				}
			}
		}
	}
}

func TestSiteByName(t *testing.T) {
	s, ok := SiteByName("Purdue")
	if !ok || s.City != "West Lafayette, IN" {
		t.Fatalf("SiteByName(Purdue) = %+v, %v", s, ok)
	}
	if _, ok := SiteByName("nowhere"); ok {
		t.Fatal("unknown site resolved")
	}
}

func TestDBLongestPrefixMatch(t *testing.T) {
	d := NewDB()
	d.MustAdd("10.0.0.0/8", UMich)
	d.MustAdd("10.1.0.0/16", Purdue)
	if s, ok := d.Lookup("10.1.2.3"); !ok || s.Name != "Purdue" {
		t.Fatalf("LPM failed: %+v %v", s, ok)
	}
	if s, ok := d.Lookup("10.2.2.3"); !ok || s.Name != "UMich" {
		t.Fatalf("fallback to /8 failed: %+v %v", s, ok)
	}
	if _, ok := d.Lookup("11.0.0.1"); ok {
		t.Fatal("address outside all prefixes resolved")
	}
	if _, ok := d.Lookup("not-an-ip"); ok {
		t.Fatal("garbage input resolved")
	}
}

func TestDBAddErrors(t *testing.T) {
	d := NewDB()
	if err := d.Add("300.0.0.0/8", UBC); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if d.Len() != 0 {
		t.Fatal("failed Add changed Len")
	}
}

func TestPaperDBGeolocatesTracerouteHops(t *testing.T) {
	d := PaperDB()
	cases := []struct {
		ip   string
		site string
	}{
		{"142.103.2.253", "UBC"},          // Fig 5 hop 1
		{"199.212.24.1", "Vancouver-IX"},  // vncv1rtr2.canarie.ca
		{"207.231.242.20", "Seattle-IX"},  // pacificwave
		{"216.58.216.138", "GoogleDrive"}, // googleapis
		{"129.128.184.254", "UAlberta"},   // Fig 6 hop 1
		{"199.116.233.66", "UAlberta"},    // cybera
	}
	for _, c := range cases {
		s, ok := d.Lookup(c.ip)
		if !ok || s.Name != c.site {
			t.Fatalf("Lookup(%s) = %+v %v, want %s", c.ip, s, ok, c.site)
		}
	}
}

func TestPaperDBMoreSpecificBeatsCanarieBlock(t *testing.T) {
	d := PaperDB()
	// 199.212.24.68 (edmn1rtr2) is inside 199.212.24.0/24 (Vancouver) but
	// has a /32 at Edmonton.
	s, ok := d.Lookup("199.212.24.68")
	if !ok || s.Name != "UAlberta" {
		t.Fatalf("edmn1 lookup = %+v %v, want UAlberta", s, ok)
	}
}
