package fluid_test

import (
	"fmt"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
)

// Max-min fair sharing on one link: a rate-capped flow keeps its cap and
// the uncapped flow absorbs the residual capacity.
func ExampleNetwork_StartFlow() {
	eng := simclock.NewEngine()
	net := fluid.New(eng)
	link := net.AddLink("bottleneck", 100, 0.001)

	capped := net.StartFlow([]*fluid.Link{link}, 1000, fluid.FlowOpts{RateCap: 20})
	greedy := net.StartFlow([]*fluid.Link{link}, 1000, fluid.FlowOpts{})

	fmt.Printf("capped: %.0f B/s\n", capped.Rate())
	fmt.Printf("greedy: %.0f B/s\n", greedy.Rate())
	eng.Run()
	fmt.Printf("greedy finished at t=%.1f s\n", float64(greedy.FinishedAt()))
	// Output:
	// capped: 20 B/s
	// greedy: 80 B/s
	// greedy finished at t=12.5 s
}
