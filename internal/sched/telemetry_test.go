package sched

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"detournet/internal/core"
	"detournet/internal/telemetry"
)

// TestTelemetryRunDeterministic: same seed ⇒ byte-identical report,
// Prometheus, JSON, and CSV dumps — the observability plane inherits
// the repo's determinism contract.
func TestTelemetryRunDeterministic(t *testing.T) {
	render := func() (report, prom, js, csv string) {
		o := RunTelemetry(TelemetryOptions{Seed: 7})
		var r, p, j, c bytes.Buffer
		WriteTelemetryReport(&r, o)
		if err := o.Snapshot.WritePrometheus(&p); err != nil {
			t.Fatal(err)
		}
		if err := o.Snapshot.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := o.Snapshot.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return r.String(), p.String(), j.String(), c.String()
	}
	r1, p1, j1, c1 := render()
	r2, p2, j2, c2 := render()
	if r1 != r2 {
		t.Error("same-seed telemetry reports differ")
	}
	if p1 != p2 {
		t.Error("same-seed prometheus dumps differ")
	}
	if j1 != j2 {
		t.Error("same-seed JSON dumps differ")
	}
	if c1 != c2 {
		t.Error("same-seed CSV dumps differ")
	}
}

// counterValue digs a no-label counter/gauge out of a snapshot.
func counterValue(t *testing.T, snap telemetry.Snapshot, name string) float64 {
	t.Helper()
	for _, f := range snap.Families {
		if f.Name == name {
			if len(f.Metrics) == 0 {
				return 0
			}
			return f.Metrics[0].Value
		}
	}
	t.Fatalf("family %q not in snapshot", name)
	return 0
}

// TestTelemetryMetricsMatchStats: the registry is a second, independent
// account of the run — it must agree with the scheduler's own counters.
func TestTelemetryMetricsMatchStats(t *testing.T) {
	o := RunTelemetry(TelemetryOptions{Seed: 7})
	st := o.Stats
	checks := []struct {
		family string
		want   int64
	}{
		{"sched_jobs_submitted_total", st.Submitted},
		{"sched_jobs_done_total", st.Done},
		{"sched_jobs_failed_total", st.Failed},
		{"sched_retries_total", st.Retries},
		{"sched_reroutes_total", st.Reroutes},
		{"sched_parks_total", st.Parks},
	}
	for _, c := range checks {
		if got := counterValue(t, o.Snapshot, c.family); got != float64(c.want) {
			t.Errorf("%s = %g, stats say %d", c.family, got, c.want)
		}
	}
	// Route byte totals must cover exactly the delivered bytes.
	var routeBytes, delivered float64
	for _, f := range o.Snapshot.Families {
		if f.Name == "sched_route_bytes_total" {
			for _, m := range f.Metrics {
				routeBytes += m.Value
			}
		}
	}
	for _, r := range o.Results {
		if r.Err == nil {
			delivered += r.Job.Size
		}
	}
	if routeBytes != delivered {
		t.Errorf("route bytes %g != delivered %g", routeBytes, delivered)
	}
	if o.Samples == 0 || len(o.Series) == 0 {
		t.Fatalf("sampler recorded nothing: %d samples, %d series", o.Samples, len(o.Series))
	}
	for _, ss := range o.Series {
		if len(ss.Values) != o.Samples && ss.Dropped == 0 {
			t.Errorf("series %s has %d points, want %d", ss.Name, len(ss.Values), o.Samples)
		}
	}
}

// TestTelemetryFlightRecorderNamesDecisions: a failed transfer's trace
// must name the control-plane decisions hop by hop — election, attempts,
// parking/rerouting, and the failure classification.
func TestTelemetryFlightRecorderNamesDecisions(t *testing.T) {
	o := RunTelemetry(TelemetryOptions{Seed: 7})
	if o.Stats.Failed == 0 {
		t.Fatal("the thin-stack storm replay should fail at least one job")
	}
	var failed *telemetry.JobTrace
	for i := range o.Traces {
		if o.Traces[i].Failed {
			failed = &o.Traces[i]
			break
		}
	}
	if failed == nil {
		t.Fatal("no failed trace retained")
	}
	kinds := map[string]int{}
	for _, ev := range failed.Events {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"job.elect", "job.attempt", "job.fail", "job.failed"} {
		if kinds[want] == 0 {
			t.Errorf("failed trace %s missing %q events (have %v)", failed.Job, want, kinds)
		}
	}
	if kinds["job.reroute"] == 0 && kinds["job.park"] == 0 {
		t.Errorf("failed trace %s shows neither a reroute nor a park (have %v)", failed.Job, kinds)
	}
	// Successes are truncated: counted, but no decision events retained.
	for _, tr := range o.Traces {
		if !tr.Failed && len(tr.Events) != 0 {
			t.Errorf("success trace %s kept %d events, want 0", tr.Job, len(tr.Events))
		}
	}
}

// drainTrace is a small fixed fleet for the overhead guard; instant
// executor, fixed planner — pure control-plane work.
func guardDrain(jobs int, reg *telemetry.Registry, rec *telemetry.FlightRecorder) time.Duration {
	exec := ExecutorFunc(func(j Job, r core.Route) (float64, error) { return 0, nil })
	plan := PlannerFunc(func(client, provider string, size float64) (core.Route, []core.Route, error) {
		return core.DirectRoute, []core.Route{core.DirectRoute}, nil
	})
	s := New(Config{
		Workers: 1, Executor: exec, Planner: plan,
		ProviderCap: -1, DTNCap: -1,
		Telemetry: reg, Recorder: rec,
	})
	s.Start()
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if err := s.Submit(Job{
			Tenant: "t", Client: "c", Provider: "p",
			Name: fmt.Sprintf("g-%05d", i), Size: 1e6,
		}); err != nil {
			panic(err)
		}
	}
	s.Drain()
	el := time.Since(start)
	s.Close()
	return el
}

// TestTelemetryNoObserverEffect: attaching the telemetry plane must not
// change what the scheduler does — the instrumented and bare replays of
// the same storm deliver identical results on the virtual timeline.
func TestTelemetryNoObserverEffect(t *testing.T) {
	inst := RunTelemetry(TelemetryOptions{Seed: 7})
	bare := RunTelemetry(TelemetryOptions{Seed: 7, NoInstrument: true})
	if len(bare.Results) != len(inst.Results) {
		t.Fatalf("result counts differ: bare %d, instrumented %d", len(bare.Results), len(inst.Results))
	}
	for i := range inst.Results {
		a, b := inst.Results[i], bare.Results[i]
		if a.Job.Name != b.Job.Name || (a.Err == nil) != (b.Err == nil) ||
			a.Seconds != b.Seconds || a.Attempts != b.Attempts || a.Route != b.Route {
			t.Fatalf("result %d diverged: instrumented %+v, bare %+v", i, a, b)
		}
	}
	if inst.VirtualSeconds != bare.VirtualSeconds {
		t.Errorf("virtual spans differ: %g vs %g", inst.VirtualSeconds, bare.VirtualSeconds)
	}
	if len(bare.Series) != 0 || bare.Snapshot.Families != nil || bare.Traces != nil {
		t.Errorf("bare run leaked observability state: %d series", len(bare.Series))
	}
}

// TestTelemetryOverheadGuard asserts the telemetry plane costs under 5%
// of wall time on the reference storm drain — the representative
// scheduler workload, where per-job control-plane work (planning,
// journaling, virtual transfers) is real. Medians over rounds damp
// machine noise; the guard re-measures before failing so a preempted
// round can't flake the suite. Skipped under the race detector, whose
// uniform slowdown distorts timing. The pure-dispatch cost per job is
// tracked separately by BenchmarkDrainBare/BenchmarkDrainInstrumented.
func TestTelemetryOverheadGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("overhead guard is a timing test; race instrumentation distorts it")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	const rounds = 5
	median := func(bare bool) time.Duration {
		var ds []time.Duration
		for i := 0; i < rounds; i++ {
			start := time.Now()
			RunTelemetry(TelemetryOptions{Seed: 7, NoInstrument: bare})
			ds = append(ds, time.Since(start))
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		return ds[len(ds)/2]
	}
	for attempt := 0; attempt < 3; attempt++ {
		base := median(true)
		inst := median(false)
		frac := float64(inst-base) / float64(base)
		t.Logf("attempt %d: bare %v, instrumented %v, overhead %.2f%%", attempt, base, inst, 100*frac)
		if frac < 0.05 {
			return
		}
	}
	t.Error("telemetry is consistently >5% of the reference drain's wall time")
}

// BenchmarkDrainBare / BenchmarkDrainInstrumented expose the same
// comparison as reportable numbers for `make bench`.
func BenchmarkDrainBare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		guardDrain(2000, nil, nil)
	}
}

func BenchmarkDrainInstrumented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		guardDrain(2000, telemetry.NewRegistry(), telemetry.NewFlightRecorder(nil, 32, 4))
	}
}
