// Grayfail: the gray-failure schedule replayed twice over the same
// fleet and seed — once as the DisableHealth ablation (same scheduler,
// same retries, no detection layer) and once with the health stack:
// stall watchdogs that abort-with-checkpoint transfers blowing their
// adaptive time budget or making no byte progress, outlier ejection
// that down-weights sustained laggards into probation with canary
// re-admission, and per-provider retry budgets. None of the injected
// degradations return an error; the ablation only escapes them through
// the bandit's slow relearning. The report contrasts goodput, shows
// detection latency per silent window, and dumps the final health
// table; output is byte-identical per seed, which `make check`
// verifies by running this program twice.
package main

import (
	"flag"
	"os"

	"detournet/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 2015, "world/fault seed")
	jobs := flag.Int("jobs", 60, "transfers in the fleet")
	flag.Parse()

	control := sched.RunGrayfail(sched.GrayfailOptions{Seed: *seed, Jobs: *jobs, Stack: false})
	stack := sched.RunGrayfail(sched.GrayfailOptions{Seed: *seed, Jobs: *jobs, Stack: true})
	sched.WriteGrayfailReport(os.Stdout, control, stack)
}
