package sched

import (
	"errors"
	"fmt"

	"detournet/internal/core"
)

// Failure taxonomy: executors classify errors so the scheduler can
// react per class instead of treating every failure alike —
//
//   - transient: the route is fine, the attempt was unlucky (a reset
//     connection, an injected 5xx, throttling past the SDK's patience).
//     Retry the same route with backoff; a checkpointed executor
//     resumes instead of restarting.
//   - route-down: the path itself is dead (dial refused, no route).
//     Quarantine the route for the fleet and fail over immediately,
//     carrying the checkpoint to the new route.
//   - provider-down: the provider front-end is erroring (503). No
//     route helps; wait it out with backoff and leave the route cache
//     alone — quarantine is for route-level failures only.
//
// Untyped errors keep the legacy behavior (route-level counting with
// DetourFailLimit fallback), so executors that don't classify are
// unaffected.
var (
	// ErrTransient tags a retryable failure of a healthy route.
	ErrTransient = errors.New("sched: transient failure")
	// ErrRouteDown tags a failure of the route itself.
	ErrRouteDown = errors.New("sched: route down")
	// ErrProviderDown tags a provider-side outage affecting all routes.
	ErrProviderDown = errors.New("sched: provider down")
)

// FailureClass is the scheduler-facing classification of an error.
type FailureClass int

const (
	// FailUnknown is an untyped error (legacy handling).
	FailUnknown FailureClass = iota
	// FailTransient retries the same route.
	FailTransient
	// FailRouteDown quarantines the route and fails over.
	FailRouteDown
	// FailProviderDown waits out the outage without blaming the route.
	FailProviderDown
	// FailStall is a gray failure: the watchdog aborted a transfer that
	// was serving no errors but crawling below its adaptive floor. The
	// scheduler treats it as route-down-lite — fail over immediately,
	// checkpoint intact, without consuming a MaxAttempts slot — because
	// the stalled attempt produced useful progress and blame belongs to
	// the path, not the job.
	FailStall
	// FailQuota is storage exhaustion at the provider account (a 507):
	// a property of the destination, not of any route, so no failover
	// helps and no route deserves blame. The scheduler reclaims
	// abandoned upload sessions, retries after the provider's hint,
	// spills to an allowed alternate provider, and only then parks the
	// job with a typed *QuotaError.
	FailQuota
)

func (c FailureClass) String() string {
	switch c {
	case FailTransient:
		return "transient"
	case FailRouteDown:
		return "route-down"
	case FailProviderDown:
		return "provider-down"
	case FailStall:
		return "stall"
	case FailQuota:
		return "quota"
	default:
		return "unknown"
	}
}

// Classify maps an error onto the taxonomy via errors.Is, so wrapped
// chains classify correctly.
func Classify(err error) FailureClass {
	switch {
	case errors.Is(err, core.ErrStall):
		return FailStall
	case errors.Is(err, core.ErrQuotaExhausted):
		return FailQuota
	case errors.Is(err, ErrRouteDown):
		return FailRouteDown
	case errors.Is(err, ErrProviderDown):
		return FailProviderDown
	case errors.Is(err, ErrTransient):
		return FailTransient
	default:
		return FailUnknown
	}
}

// Overload taxonomy: typed rejections from admission control and load
// shedding, distinct from the failure taxonomy above — these mean "the
// scheduler refused the work", not "the transfer failed".
var (
	// ErrQueueFull reports a Submit rejected because the bounded queue
	// (or the tenant's quota, see ErrTenantQuota) is at capacity.
	ErrQueueFull = errors.New("sched: queue full")
	// ErrTenantQuota reports a Submit rejected because the tenant's
	// share of the queue is exhausted; errors.Is also matches
	// ErrQueueFull, so callers can treat both as backpressure.
	ErrTenantQuota = errors.New("sched: tenant queue quota exceeded")
	// ErrShed reports a job dropped by CoDel-style queue-delay shedding;
	// the concrete error is a *ShedError carrying a retry-after hint.
	ErrShed = errors.New("sched: shed by overload control")
)

// ShedError is the typed fail-fast outcome of a CoDel shed: the queue's
// standing delay exceeded its target, so the job was dropped at dequeue
// instead of running hopelessly late. errors.Is matches ErrShed.
type ShedError struct {
	// RetryAfter advises, in scheduler-clock seconds, how long the
	// caller should wait before resubmitting — the queue's current
	// smoothed delay, i.e. roughly when today's backlog will have
	// drained.
	RetryAfter float64
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("sched: shed by overload control (retry after %.1fs)", e.RetryAfter)
}

func (e *ShedError) Is(target error) bool { return target == ErrShed }

// ErrRetryBudget reports a job parked because its provider's retry
// token bucket ran dry — the health layer's defense against retry
// storms amplifying a brownout into a metastable failure. The concrete
// error is a *BudgetError carrying a retry-after hint.
var ErrRetryBudget = errors.New("sched: provider retry budget exhausted")

// BudgetError is the typed outcome of a retry denied by the provider's
// health-layer retry budget: the job fails fast with its checkpoint
// accounting intact rather than spending another attempt against a
// provider whose failures have outrun its successes. errors.Is matches
// ErrRetryBudget.
type BudgetError struct {
	// Provider is the bucket that ran dry.
	Provider string
	// RetryAfter advises, in scheduler-clock seconds, how long to wait
	// before resubmitting — long enough for in-flight successes to earn
	// tokens back.
	RetryAfter float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sched: retry budget exhausted for provider %s (retry after %.1fs)", e.Provider, e.RetryAfter)
}

func (e *BudgetError) Is(target error) bool { return target == ErrRetryBudget }

// QuotaError is the typed terminal outcome of provider storage
// exhaustion the scheduler could not mitigate: session reclaim freed
// nothing usable, the retry after the provider's hint still answered
// 507, and no allowed alternate provider had room. The job parks with
// its checkpoint intact; errors.Is matches core.ErrQuotaExhausted, so
// callers distinguish "the account is full" from any transport
// failure.
type QuotaError struct {
	// Provider is the account that is out of storage.
	Provider string
	// RetryAfter is the provider's park hint, in scheduler-clock
	// seconds — when quota reclamation or deletions might have freed
	// space.
	RetryAfter float64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sched: storage quota exhausted for provider %s (retry after %.1fs)", e.Provider, e.RetryAfter)
}

func (e *QuotaError) Is(target error) bool { return target == core.ErrQuotaExhausted }

// Transient tags err as a transient failure.
func Transient(err error) error { return taggedError{tag: ErrTransient, err: err} }

// RouteDown tags err as a route-level failure.
func RouteDown(err error) error { return taggedError{tag: ErrRouteDown, err: err} }

// ProviderDown tags err as a provider-side outage.
func ProviderDown(err error) error { return taggedError{tag: ErrProviderDown, err: err} }

// Quota tags err as provider storage exhaustion (classifies FailQuota).
func Quota(err error) error { return taggedError{tag: core.ErrQuotaExhausted, err: err} }

// taggedError couples a taxonomy sentinel with the underlying cause;
// errors.Is matches both.
type taggedError struct {
	tag error
	err error
}

func (t taggedError) Error() string        { return t.tag.Error() + ": " + t.err.Error() }
func (t taggedError) Is(target error) bool { return target == t.tag }
func (t taggedError) Unwrap() error        { return t.err }
