// Package traceroutex reproduces the paper's traceroute evidence
// (Figs 5–6): it walks the routed path in the topology, reports each
// hop's reverse-DNS name and address, renders the classic output format,
// and shows anonymous hops as "* * *" for routers that do not answer
// ICMP (hops 2 and 10 of the paper's UAlberta trace).
package traceroutex

import (
	"fmt"
	"math/rand"
	"strings"

	"detournet/internal/geo"
	"detournet/internal/topology"
)

// Hop is one TTL step of a trace.
type Hop struct {
	TTL    int
	Node   *topology.Node
	Hidden bool       // true renders "* * *"
	RTTms  [3]float64 // three probe round trips, milliseconds
}

// Result is a completed trace.
type Result struct {
	Src, Dst *topology.Node
	Hops     []Hop
}

// Options tune a trace.
type Options struct {
	// Jitter, when non-nil, perturbs probe RTTs like real queueing noise;
	// nil keeps probes deterministic.
	Jitter *rand.Rand
	// MaxTTL truncates long paths (default 30, like the real tool).
	MaxTTL int
}

// Run traces from src to dst along the currently routed path.
func Run(g *topology.Graph, src, dst string, opts Options) (*Result, error) {
	path, err := g.Path(src, dst)
	if err != nil {
		return nil, err
	}
	maxTTL := opts.MaxTTL
	if maxTTL <= 0 {
		maxTTL = 30
	}
	res := &Result{Src: path[0], Dst: path[len(path)-1]}
	var cum float64 // one-way cumulative delay to the current hop
	for i := 1; i < len(path) && i <= maxTTL; i++ {
		e, ok := g.Edge(path[i-1].Name, path[i].Name)
		if !ok {
			return nil, fmt.Errorf("traceroutex: broken path at %s", path[i].Name)
		}
		cum += e.Link.PropDelay
		hop := Hop{TTL: i, Node: path[i], Hidden: !path[i].RespondsICMP}
		for pr := 0; pr < 3; pr++ {
			rtt := 2 * cum * 1000
			if opts.Jitter != nil {
				rtt *= 1 + 0.05*opts.Jitter.Float64()
			}
			hop.RTTms[pr] = rtt
		}
		res.Hops = append(res.Hops, hop)
	}
	return res, nil
}

// Format renders the trace in the classic traceroute layout used by the
// paper's figures.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traceroute to %s (%s)\n", r.Dst.Hostname, r.Dst.IP)
	for _, h := range r.Hops {
		if h.Hidden {
			fmt.Fprintf(&b, "%2d  * * *\n", h.TTL)
			continue
		}
		fmt.Fprintf(&b, "%2d  %s (%s)  %.3f ms  %.3f ms  %.3f ms\n",
			h.TTL, h.Node.Hostname, h.Node.IP, h.RTTms[0], h.RTTms[1], h.RTTms[2])
	}
	return b.String()
}

// HopNames returns the visible hop hostnames in order, with hidden hops
// as "*".
func (r *Result) HopNames() []string {
	out := make([]string, len(r.Hops))
	for i, h := range r.Hops {
		if h.Hidden {
			out[i] = "*"
		} else {
			out[i] = h.Node.Hostname
		}
	}
	return out
}

// CrossesHost reports whether a visible hop resolves to the given
// hostname — how the paper establishes that both routes cross
// vncv1rtr2.canarie.ca.
func (r *Result) CrossesHost(hostname string) bool {
	for _, h := range r.Hops {
		if !h.Hidden && h.Node.Hostname == hostname {
			return true
		}
	}
	return false
}

// GeoHop is a geolocated hop, the paper's Fig 3 data.
type GeoHop struct {
	Hop  Hop
	Site geo.Site
	OK   bool
}

// Geolocate resolves every visible hop against the IP location database.
func (r *Result) Geolocate(db *geo.DB) []GeoHop {
	out := make([]GeoHop, 0, len(r.Hops))
	for _, h := range r.Hops {
		gh := GeoHop{Hop: h}
		if !h.Hidden {
			gh.Site, gh.OK = db.Lookup(h.Node.IP)
		}
		out = append(out, gh)
	}
	return out
}

// PathKm sums great-circle distance over the geolocated hops, a measure
// of the geographic detour a route takes.
func PathKm(hops []GeoHop) float64 {
	var km float64
	var prev *geo.Site
	for i := range hops {
		if !hops[i].OK {
			continue
		}
		if prev != nil {
			km += geo.HaversineKm(prev.Coord, hops[i].Site.Coord)
		}
		prev = &hops[i].Site
	}
	return km
}
