package rsyncx

import (
	"fmt"

	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// Port is the rsync daemon port.
const Port = 873

// Staged is a file held in a daemon's staging area (the DTN's disk).
type Staged struct {
	Name string
	Size float64
	Data []byte // nil for sized-only transfers
	MD5  string
}

// Daemon is the DTN-side rsync server: it answers signature requests,
// applies deltas, and stages the results for the second detour hop.
type Daemon struct {
	tn   *transport.Net
	host string
	// BlockSize for signatures; DefaultBlockSize when zero.
	BlockSize int
	staging   map[string]*Staged
	// Pushes counts completed receive operations, for tests.
	Pushes int
}

// NewDaemon returns a daemon for the given DTN host.
func NewDaemon(tn *transport.Net, host string) *Daemon {
	if tn == nil {
		panic("rsyncx: nil transport")
	}
	return &Daemon{tn: tn, host: host, staging: make(map[string]*Staged)}
}

// Staged returns a staged file by name.
func (d *Daemon) Staged(name string) (*Staged, bool) {
	s, ok := d.staging[name]
	return s, ok
}

// Stage places a file into the staging area directly — the relay agent
// uses it to land provider downloads next to rsync-pushed uploads.
func (d *Daemon) Stage(st *Staged) {
	if st == nil || st.Name == "" {
		panic("rsyncx: staging nil or unnamed file")
	}
	d.staging[st.Name] = st
}

// Remove deletes a staged file, reporting whether it existed. The paper
// deletes staged files before each benchmarked run.
func (d *Daemon) Remove(name string) bool {
	if _, ok := d.staging[name]; !ok {
		return false
	}
	delete(d.staging, name)
	return true
}

// Start binds the daemon listener and serves until the listener closes.
func (d *Daemon) Start() *transport.Listener {
	l := d.tn.MustListen(d.host, Port)
	r := d.tn.Runner()
	r.Go("rsyncd:"+d.host, func(p *simproc.Proc) {
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			r.Go("rsyncd-conn:"+c.RemoteHost(), func(hp *simproc.Proc) {
				d.serve(hp, c)
			})
		}
	})
	return l
}

// Wire message types. Sizes are charged explicitly per message.

type pushReq struct {
	Name    string
	Size    float64
	HasData bool
}

type sigResp struct {
	Sig *Signature // nil when no basis exists
}

type deltaMsg struct {
	Delta *Delta // nil in sized-only mode
	MD5   string
}

type deleteReq struct {
	Name string
}

type fetchReq struct {
	Name string
}

type fetchResp struct {
	OK   bool
	Err  string
	Size float64
	MD5  string
	Data []byte
}

type ack struct {
	OK  bool
	Err string
	MD5 string
}

const ctrlBytes = 96 // rough wire size of control messages

func (d *Daemon) serve(p *simproc.Proc, c *transport.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return
		}
		switch m := msg.Payload.(type) {
		case pushReq:
			d.handlePush(p, c, m)
		case deleteReq:
			ok := d.Remove(m.Name)
			_ = c.Send(p, ack{OK: ok}, ctrlBytes)
		case fetchReq:
			st, ok := d.staging[m.Name]
			if !ok {
				_ = c.Send(p, fetchResp{OK: false, Err: "not staged: " + m.Name}, ctrlBytes)
				continue
			}
			resp := fetchResp{OK: true, Size: st.Size, MD5: st.MD5, Data: st.Data}
			_ = c.Send(p, resp, st.Size+ctrlBytes)
		default:
			_ = c.Send(p, ack{OK: false, Err: "protocol error"}, ctrlBytes)
			return
		}
	}
}

func (d *Daemon) handlePush(p *simproc.Proc, c *transport.Conn, req pushReq) {
	// 1. Answer with the signature of whatever basis we hold.
	var sig *Signature
	if base, ok := d.staging[req.Name]; ok && base.Data != nil {
		sig = Sign(base.Data, d.BlockSize)
	}
	resp := sigResp{Sig: sig}
	sigBytes := float64(ctrlBytes)
	if sig != nil {
		sigBytes += sig.WireSize()
	}
	if err := c.Send(p, resp, sigBytes); err != nil {
		return
	}

	// 2. Receive the delta (or sized payload) and stage the result.
	msg, err := c.Recv(p)
	if err != nil {
		return
	}
	dm, ok := msg.Payload.(deltaMsg)
	if !ok {
		_ = c.Send(p, ack{OK: false, Err: "expected delta"}, ctrlBytes)
		return
	}
	st := &Staged{Name: req.Name, Size: req.Size, MD5: dm.MD5}
	if req.HasData {
		if dm.Delta == nil {
			_ = c.Send(p, ack{OK: false, Err: "missing delta"}, ctrlBytes)
			return
		}
		var basis []byte
		if base, ok := d.staging[req.Name]; ok {
			basis = base.Data
		}
		data, err := Apply(basis, dm.Delta)
		if err != nil {
			_ = c.Send(p, ack{OK: false, Err: err.Error()}, ctrlBytes)
			return
		}
		if dm.MD5 != "" && Checksum(data) != dm.MD5 {
			_ = c.Send(p, ack{OK: false, Err: "checksum mismatch"}, ctrlBytes)
			return
		}
		st.Data = data
		st.Size = float64(len(data))
		st.MD5 = Checksum(data)
	}
	d.staging[req.Name] = st
	d.Pushes++
	_ = c.Send(p, ack{OK: true, MD5: st.MD5}, ctrlBytes)
}

// Client pushes files from a host to a daemon.
type Client struct {
	tn   *transport.Net
	from string
	dtn  string
	// BlockSize for delta computation; DefaultBlockSize when zero.
	BlockSize int
}

// NewClient returns an rsync client from `from` to the daemon at `dtn`.
func NewClient(tn *transport.Net, from, dtn string) *Client {
	if tn == nil {
		panic("rsyncx: nil transport")
	}
	return &Client{tn: tn, from: from, dtn: dtn}
}

func (cl *Client) dial(p *simproc.Proc) (*transport.Conn, error) {
	return cl.tn.Dial(p, cl.from, cl.dtn, Port, transport.DialOpts{})
}

// Push transfers data under name using the full rsync protocol: fetch
// the basis signature, compute and ship the delta, verify the ack.
func (cl *Client) Push(p *simproc.Proc, name string, data []byte) error {
	c, err := cl.dial(p)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(p, pushReq{Name: name, Size: float64(len(data)), HasData: true}, ctrlBytes); err != nil {
		return err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return err
	}
	sr, ok := msg.Payload.(sigResp)
	if !ok {
		return fmt.Errorf("rsyncx: expected signature, got %T", msg.Payload)
	}
	sig := sr.Sig
	if sig == nil {
		sig = Sign(nil, cl.BlockSize)
	}
	delta := ComputeDelta(sig, data)
	dm := deltaMsg{Delta: delta, MD5: Checksum(data)}
	if err := c.Send(p, dm, delta.WireSize()+ctrlBytes); err != nil {
		return err
	}
	return recvAck(p, c)
}

// PushSized transfers a file of the given size without materializing its
// bytes: the paper's staged files are random (incompressible, no basis),
// so the wire cost is simply the size plus protocol overhead. md5
// optionally carries an end-to-end digest for the relay to forward.
func (cl *Client) PushSized(p *simproc.Proc, name string, size float64, md5 string) error {
	if size < 0 {
		return fmt.Errorf("rsyncx: negative size")
	}
	c, err := cl.dial(p)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(p, pushReq{Name: name, Size: size, HasData: false}, ctrlBytes); err != nil {
		return err
	}
	if _, err := c.Recv(p); err != nil { // signature (always empty here)
		return err
	}
	if err := c.Send(p, deltaMsg{MD5: md5}, size+ctrlBytes); err != nil {
		return err
	}
	return recvAck(p, c)
}

// Fetch pulls a staged file from the daemon (the reverse direction,
// used by detoured downloads: provider → DTN → client). It returns the
// staged metadata after the bytes have crossed the wire.
func (cl *Client) Fetch(p *simproc.Proc, name string) (*Staged, error) {
	c, err := cl.dial(p)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.Send(p, fetchReq{Name: name}, ctrlBytes); err != nil {
		return nil, err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return nil, err
	}
	fr, ok := msg.Payload.(fetchResp)
	if !ok {
		return nil, fmt.Errorf("rsyncx: expected fetch response, got %T", msg.Payload)
	}
	if !fr.OK {
		return nil, fmt.Errorf("rsyncx: fetch: %s", fr.Err)
	}
	return &Staged{Name: name, Size: fr.Size, MD5: fr.MD5, Data: fr.Data}, nil
}

// Delete removes a staged file on the daemon.
func (cl *Client) Delete(p *simproc.Proc, name string) error {
	c, err := cl.dial(p)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(p, deleteReq{Name: name}, ctrlBytes); err != nil {
		return err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return err
	}
	if a, ok := msg.Payload.(ack); ok && !a.OK {
		return fmt.Errorf("rsyncx: delete: no such staged file %q", name)
	}
	return nil
}

func recvAck(p *simproc.Proc, c *transport.Conn) error {
	msg, err := c.Recv(p)
	if err != nil {
		return err
	}
	a, ok := msg.Payload.(ack)
	if !ok {
		return fmt.Errorf("rsyncx: expected ack, got %T", msg.Payload)
	}
	if !a.OK {
		return fmt.Errorf("rsyncx: push rejected: %s", a.Err)
	}
	return nil
}
