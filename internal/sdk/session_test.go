package sdk

import (
	"testing"

	"detournet/internal/cloudsim"
	"detournet/internal/simproc"
)

func TestStreamingSessionsAllProviders(t *testing.T) {
	for _, style := range []cloudsim.Style{cloudsim.GoogleDrive, cloudsim.Dropbox, cloudsim.OneDrive} {
		t.Run(style.String(), func(t *testing.T) {
			w := newWorld(t)
			c := w.client(t, style, Options{}).(SessionClient)
			w.run(t, func(p *simproc.Proc) {
				sess, err := c.BeginUpload(p, "stream.bin", 10e6, "digest")
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				var fi FileInfo
				for sent := 0.0; sent < 10e6; {
					n := 3e6
					last := false
					if sent+n >= 10e6 {
						n = 10e6 - sent
						last = true
					}
					fi, err = sess.WriteChunk(p, n, last)
					if err != nil {
						t.Errorf("chunk at %v: %v", sent, err)
						return
					}
					sent += n
				}
				if fi.Size != 10e6 {
					t.Errorf("final meta = %+v", fi)
				}
				if sess.Written() != 10e6 {
					t.Errorf("Written = %v", sess.Written())
				}
				if o, ok := w.svc[style].Store.Get("stream.bin"); !ok || o.Size != 10e6 {
					t.Errorf("stored object: %+v %v", o, ok)
				}
				c.Close()
			})
		})
	}
}

func TestSessionRejectsBadSizes(t *testing.T) {
	w := newWorld(t)
	g := w.client(t, cloudsim.GoogleDrive, Options{}).(SessionClient)
	o := w.client(t, cloudsim.OneDrive, Options{}).(SessionClient)
	w.run(t, func(p *simproc.Proc) {
		if _, err := g.BeginUpload(p, "x", 0, ""); err == nil {
			t.Error("drive zero-size session accepted")
		}
		if _, err := o.BeginUpload(p, "x", -1, ""); err == nil {
			t.Error("onedrive negative session accepted")
		}
		sess, err := g.BeginUpload(p, "x", 100, "")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.WriteChunk(p, 0, false); err == nil {
			t.Error("empty chunk accepted")
		}
		g.Close()
		o.Close()
	})
}

func TestSessionMatchesWholeUploadSemantics(t *testing.T) {
	// Uploading via session in provider-default chunks must store the
	// same object Upload() stores.
	for _, style := range []cloudsim.Style{cloudsim.GoogleDrive, cloudsim.Dropbox, cloudsim.OneDrive} {
		t.Run(style.String(), func(t *testing.T) {
			w := newWorld(t)
			c := w.client(t, style, Options{}).(SessionClient)
			size := 25e6
			chunk := style.DefaultChunkBytes()
			w.run(t, func(p *simproc.Proc) {
				sess, err := c.BeginUpload(p, "f.bin", size, "")
				if err != nil {
					t.Error(err)
					return
				}
				for sent := 0.0; sent < size; {
					n := chunk
					last := false
					if sent+n >= size {
						n = size - sent
						last = true
					}
					if _, err := sess.WriteChunk(p, n, last); err != nil {
						t.Errorf("chunk: %v", err)
						return
					}
					sent += n
				}
				c.Close()
			})
			if o, ok := w.svc[style].Store.Get("f.bin"); !ok || o.Size != size {
				t.Fatalf("stored: %+v %v", o, ok)
			}
		})
	}
}

func TestDriveResumeAfterInterruption(t *testing.T) {
	w := newWorld(t)
	g := w.client(t, cloudsim.GoogleDrive, Options{}).(*GoogleDrive)
	w.run(t, func(p *simproc.Proc) {
		size := 20e6
		sess, err := g.BeginUpload(p, "resume.bin", size, "")
		if err != nil {
			t.Error(err)
			return
		}
		// Upload half, then "crash" (abandon the session object).
		if _, err := sess.WriteChunk(p, 10e6, false); err != nil {
			t.Error(err)
			return
		}
		loc := sess.(*GDriveSession).Location()

		// Reattach: the status query reports the confirmed offset.
		resumed, err := g.ResumeUpload(p, loc, size, "")
		if err != nil {
			t.Error(err)
			return
		}
		if resumed.Written() != 10e6 {
			t.Errorf("resumed offset = %v, want 10e6", resumed.Written())
			return
		}
		fi, err := resumed.WriteChunk(p, 10e6, true)
		if err != nil {
			t.Error(err)
			return
		}
		if fi.Size != size {
			t.Errorf("final size = %v", fi.Size)
		}
		g.Close()
	})
	if o, ok := w.svc[cloudsim.GoogleDrive].Store.Get("resume.bin"); !ok || o.Size != 20e6 {
		t.Fatalf("resumed object: %+v %v", o, ok)
	}
}

func TestDriveResumeFreshSession(t *testing.T) {
	// Resuming a session with zero confirmed bytes starts at offset 0.
	w := newWorld(t)
	g := w.client(t, cloudsim.GoogleDrive, Options{}).(*GoogleDrive)
	w.run(t, func(p *simproc.Proc) {
		sess, err := g.BeginUpload(p, "f.bin", 5e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		resumed, err := g.ResumeUpload(p, sess.(*GDriveSession).Location(), 5e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		if resumed.Written() != 0 {
			t.Errorf("fresh resume offset = %v", resumed.Written())
		}
		if _, err := resumed.WriteChunk(p, 5e6, true); err != nil {
			t.Error(err)
		}
		g.Close()
	})
}

func TestDriveResumeValidation(t *testing.T) {
	w := newWorld(t)
	g := w.client(t, cloudsim.GoogleDrive, Options{}).(*GoogleDrive)
	w.run(t, func(p *simproc.Proc) {
		if _, err := g.ResumeUpload(p, "", 100, ""); err == nil {
			t.Error("empty location accepted")
		}
		if _, err := g.ResumeUpload(p, "/upload/drive/v3/sessions/sess-999", 100, ""); err == nil {
			t.Error("unknown session resumed")
		}
		g.Close()
	})
}
