// Package tcpmodel captures the TCP connection dynamics that shape the
// paper's transfer-time curves: connection and TLS handshake latency,
// slow-start ramping, and the receive-window throughput ceiling
// (rate <= min(share, rwnd/RTT)).
//
// The model is deliberately loss-free: bulk transfers on the paper's
// paths are bandwidth- or window-limited, and the fluid layer already
// imposes fair sharing at bottlenecks. What matters for the shape of
// "transfer time vs file size" is the fixed per-connection cost (DNS +
// handshakes), the sub-linear ramp on small files, and the linear
// 1/throughput slope on large ones — all three are modelled here.
package tcpmodel

import (
	"math"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
)

// Params are per-connection TCP/TLS constants.
type Params struct {
	// MSS is the maximum segment size in bytes. Default 1460.
	MSS float64
	// InitCwndSegments is the initial congestion window in segments
	// (RFC 6928's IW10 was deployed by 2015). Default 10.
	InitCwndSegments float64
	// RwndBytes is the receive-window cap in bytes; throughput never
	// exceeds RwndBytes/RTT. Default 1 MiB, a typical 2015 default for
	// untuned Linux hosts such as PlanetLab slivers.
	RwndBytes float64
	// ConnectRTTs is the round trips consumed before the first data byte
	// on a new TCP connection. Default 1 (SYN, SYN-ACK, then data rides
	// with the ACK).
	ConnectRTTs float64
	// TLSRTTs is the extra round trips for a full TLS handshake. Default
	// 2 (TLS 1.2 without resumption, as the 2015 provider endpoints).
	TLSRTTs float64
}

// WithDefaults fills zero fields with the defaults above.
func (p Params) WithDefaults() Params {
	if p.MSS <= 0 {
		p.MSS = 1460
	}
	if p.InitCwndSegments <= 0 {
		p.InitCwndSegments = 10
	}
	if p.RwndBytes <= 0 {
		p.RwndBytes = 1 << 20
	}
	if p.ConnectRTTs <= 0 {
		p.ConnectRTTs = 1
	}
	if p.TLSRTTs <= 0 {
		p.TLSRTTs = 2
	}
	return p
}

// ConnectDelay returns the virtual time consumed by connection
// establishment on a path with the given RTT, including TLS when tls is
// set.
func (p Params) ConnectDelay(rtt float64, tls bool) float64 {
	p = p.WithDefaults()
	d := p.ConnectRTTs * rtt
	if tls {
		d += p.TLSRTTs * rtt
	}
	return d
}

// MaxRate returns the receive-window throughput ceiling for a path RTT.
func (p Params) MaxRate(rtt float64) float64 {
	p = p.WithDefaults()
	if rtt <= 0 {
		return math.Inf(1)
	}
	return p.RwndBytes / rtt
}

// Cwnd is the congestion window of one connection, persisting across the
// multiple transfers (HTTP requests, upload chunks) that reuse it — the
// reason a chunked upload over one connection ramps only once while one
// connection per chunk pays the ramp repeatedly.
type Cwnd struct {
	bytes float64
}

// NewCwnd returns a window at the initial size IW*MSS.
func NewCwnd(p Params) *Cwnd {
	p = p.WithDefaults()
	return &Cwnd{bytes: p.InitCwndSegments * p.MSS}
}

// Bytes returns the current window size in bytes.
func (c *Cwnd) Bytes() float64 { return c.bytes }

// RateCap returns the window-limited rate for a path RTT.
func (c *Cwnd) RateCap(rtt float64) float64 {
	if rtt <= 0 {
		return math.Inf(1)
	}
	return c.bytes / rtt
}

// Ramp grows a connection's window while a fluid flow is active,
// doubling each RTT (slow start) up to the receive window, and keeps the
// flow's rate cap in sync. One Ramp drives one flow; create a new Ramp
// per transfer but share the Cwnd per connection.
type Ramp struct {
	fl      *fluid.Network
	flow    *fluid.Flow
	cwnd    *Cwnd
	params  Params
	rtt     float64
	stopped bool
	next    *simclock.Event
}

// StartRamp applies the window cap to the flow and begins doubling. The
// returned Ramp stops itself when the flow finishes; Stop cancels early.
func StartRamp(fl *fluid.Network, flow *fluid.Flow, cwnd *Cwnd, params Params, rtt float64) *Ramp {
	if fl == nil || flow == nil || cwnd == nil {
		panic("tcpmodel: nil argument")
	}
	if rtt <= 0 {
		panic("tcpmodel: non-positive rtt")
	}
	r := &Ramp{fl: fl, flow: flow, cwnd: cwnd, params: params.WithDefaults(), rtt: rtt}
	fl.SetFlowCap(flow, cwnd.RateCap(rtt))
	r.schedule()
	return r
}

func (r *Ramp) schedule() {
	if r.cwnd.bytes >= r.params.RwndBytes {
		return // fully ramped; the cap is already at the ceiling
	}
	r.next = r.fl.Engine().After(r.rtt, r.step)
}

func (r *Ramp) step() {
	if r.stopped || r.flow.State() != fluid.FlowActive {
		return
	}
	r.cwnd.bytes = math.Min(r.cwnd.bytes*2, r.params.RwndBytes)
	r.fl.SetFlowCap(r.flow, r.cwnd.RateCap(r.rtt))
	r.schedule()
}

// Stop cancels future window growth (the current cap stays in place).
func (r *Ramp) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	if r.next != nil {
		r.fl.Engine().Cancel(r.next)
		r.next = nil
	}
}

// EstimateTransferTime returns the closed-form time to move size bytes
// over a path with the given steady rate and RTT under this model:
// slow-start doublings from the initial window, then the steady rate.
// The detour selector uses it to predict transfer times from probe data.
func (p Params) EstimateTransferTime(size, steadyRate, rtt float64) float64 {
	p = p.WithDefaults()
	if size <= 0 {
		return 0
	}
	if steadyRate <= 0 {
		return math.Inf(1)
	}
	steadyRate = math.Min(steadyRate, p.MaxRate(rtt))
	w := p.InitCwndSegments * p.MSS // bytes sent in the first RTT
	var t, sent float64
	for sent < size && w < steadyRate*rtt {
		send := math.Min(w, size-sent)
		sent += send
		t += rtt
		w *= 2
	}
	if sent < size {
		t += (size - sent) / steadyRate
	}
	return t
}
