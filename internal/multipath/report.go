package multipath

import (
	"fmt"
	"io"
	"sort"

	"detournet/internal/stats"
)

// PathReport is one lane's contribution to a striped transfer.
type PathReport struct {
	ID    int
	Route string
	// Chunks lists the chunk indices this path committed, in commit
	// order — the per-path assignment the determinism test pins.
	Chunks []int
	// Bytes is committed payload (first completions only); Seconds is
	// busy time spent uploading (committed or not).
	Bytes   float64
	Seconds float64
	// Resumed/Rewritten come from the path's checkpoint accounting.
	Resumed   float64
	Rewritten float64
	// DuplicateBytes is hedge-race work this path moved and lost.
	DuplicateBytes float64
	Failures       int
	Drains         int
	Retired        bool
}

// Rate is the path's committed throughput in bytes/second (0 when it
// never got to carry anything).
func (pr PathReport) Rate() float64 {
	if pr.Seconds <= 0 {
		return 0
	}
	return pr.Bytes / pr.Seconds
}

// Report summarizes one striped transfer.
type Report struct {
	Name  string
	Size  float64
	Chunk float64
	// TailSplit and NumChunks, with Size and Chunk, recover the exact
	// stripe boundaries via Layout.
	TailSplit int
	NumChunks int
	// Seconds is wall-clock (virtual) time from first dispatch to
	// commit.
	Seconds float64
	Paths   []PathReport
	// DuplicateBytes totals payload bytes moved more than once due to
	// hedged duplicates (all paths) — payload, not wire bytes, so a
	// detour loser whose chunk crossed both hops still counts it once.
	DuplicateBytes float64
	// ResentChunks counts chunks released back to pending after a
	// failure — each costs at most one chunk of re-sent bytes.
	ResentChunks int
	// HedgedChunks counts tail chunks dispatched a second time.
	HedgedChunks int
	// Fairness is the Jain index over per-path committed bytes: 1 when
	// every path carried an equal share, 1/K when one path carried all.
	Fairness float64
}

// Rate is the transfer's aggregate throughput in bytes/second.
func (r Report) Rate() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.Size / r.Seconds
}

func (st *state) report(elapsed float64) Report {
	rep := Report{
		Name:         st.spec.Name,
		Size:         st.spec.Size,
		Chunk:        st.spec.Chunk,
		TailSplit:    st.spec.TailSplit,
		NumChunks:    len(st.chunks),
		Seconds:      elapsed,
		ResentChunks: st.resent,
		HedgedChunks: st.hedged,
	}
	shares := make([]float64, 0, len(st.paths))
	for _, ps := range st.paths {
		pr := PathReport{
			ID:             ps.path.ID,
			Route:          ps.path.Route.String(),
			Chunks:         append([]int(nil), ps.chunks...),
			Bytes:          ps.bytes,
			Seconds:        ps.busy,
			Resumed:        ps.ck.BytesResumed,
			Rewritten:      ps.ck.BytesRewritten,
			DuplicateBytes: ps.dup,
			Failures:       ps.fails,
			Drains:         ps.drains,
			Retired:        ps.retired,
		}
		rep.DuplicateBytes += ps.dup
		shares = append(shares, ps.bytes)
		rep.Paths = append(rep.Paths, pr)
	}
	sort.Slice(rep.Paths, func(i, j int) bool { return rep.Paths[i].ID < rep.Paths[j].ID })
	if len(shares) > 0 {
		rep.Fairness = stats.JainFairness(shares)
	}
	return rep
}

// WriteReport renders the report deterministically: fixed field order,
// paths sorted by ID, fixed float formatting — byte-identical across
// runs of the same seed.
func (r Report) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "multipath %s: %.0f bytes in %d x %.0f chunks over %d paths\n",
		r.Name, r.Size, r.NumChunks, r.Chunk, len(r.Paths)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %.1fs at %.3f MB/s  fairness=%.3f  duplicate=%.0fB  resent=%d  hedged=%d\n",
		r.Seconds, r.Rate()/1e6, r.Fairness, r.DuplicateBytes, r.ResentChunks, r.HedgedChunks); err != nil {
		return err
	}
	for _, pr := range r.Paths {
		flags := ""
		if pr.Retired {
			flags = "  RETIRED"
		}
		if _, err := fmt.Fprintf(w, "  path %d [%s]: %d chunks %.0fB in %.1fs (%.3f MB/s)  dup=%.0fB fails=%d drains=%d%s\n",
			pr.ID, pr.Route, len(pr.Chunks), pr.Bytes, pr.Seconds, pr.Rate()/1e6,
			pr.DuplicateBytes, pr.Failures, pr.Drains, flags); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "    chunks=%v\n", pr.Chunks); err != nil {
			return err
		}
	}
	return nil
}
