//go:build !race

package sched

// raceEnabled reports whether this test binary was built with the race
// detector; timing-sensitive guards skip themselves under it.
const raceEnabled = false
