// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment runs the measurement grid it needs in a
// freshly built, seeded world and renders the paper's presentation
// format; the underlying grids stay accessible so tests and benchmarks
// can assert the shape (who wins, by what factor) rather than parse
// text.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"

	"detournet/internal/core"
	"detournet/internal/fileutil"
	"detournet/internal/geo"
	"detournet/internal/measure"
	"detournet/internal/scenario"
	"detournet/internal/stats"
	"detournet/internal/traceroutex"
)

// Options control experiment scale.
type Options struct {
	// Seed drives all randomness; the paper-default 2015 reproduces the
	// committed EXPERIMENTS.md numbers.
	Seed int64
	// Runs/Keep set the measurement protocol (7/5 in the paper).
	Runs, Keep int
	// SizesMB are the file sizes; the paper's seven by default.
	SizesMB []int
}

// Default returns the paper's protocol at the committed seed.
func Default() Options {
	return Options{Seed: 2015, Runs: 7, Keep: 5, SizesMB: fileutil.PaperSizesMB}
}

// Quick returns a reduced protocol for smoke tests and examples: three
// sizes, three runs.
func Quick() Options {
	return Options{Seed: 2015, Runs: 3, Keep: 2, SizesMB: []int{10, 40, 100}}
}

// PairResult is one client→provider measurement grid.
type PairResult struct {
	Client   string
	Provider string
	Grid     *measure.Grid
}

// pairSeed derives a stable per-pair world seed.
func pairSeed(o Options, client, provider string) int64 {
	h := int64(17)
	for _, s := range []string{client, provider} {
		for _, c := range s {
			h = h*131 + int64(c)
		}
	}
	return o.Seed*1000003 + h
}

// RunPair measures one client→provider grid in a fresh world.
func RunPair(o Options, client, provider string) *PairResult {
	w := scenario.Build(pairSeed(o, client, provider))
	g := measure.RunGrid(w, measure.GridSpec{
		Client: client, Provider: provider,
		SizesMB: o.SizesMB, Runs: o.Runs, Keep: o.Keep,
		Seed: o.Seed,
	})
	return &PairResult{Client: client, Provider: provider, Grid: g}
}

// Suite holds every grid of the evaluation (3 clients × 3 providers).
type Suite struct {
	Options Options
	Pairs   map[string]*PairResult
}

func pairKey(client, provider string) string { return client + "|" + provider }

// Run executes the full evaluation suite.
func Run(o Options) *Suite {
	s := &Suite{Options: o, Pairs: make(map[string]*PairResult)}
	for _, c := range scenario.Clients {
		for _, p := range scenario.ProviderNames {
			s.Pairs[pairKey(c, p)] = RunPair(o, c, p)
		}
	}
	return s
}

// Pair returns a grid, running it lazily if the suite was built empty.
func (s *Suite) Pair(client, provider string) *PairResult {
	if s.Pairs == nil {
		s.Pairs = make(map[string]*PairResult)
	}
	k := pairKey(client, provider)
	if p, ok := s.Pairs[k]; ok {
		return p
	}
	p := RunPair(s.Options, client, provider)
	s.Pairs[k] = p
	return p
}

// --- Figures 2, 4, 7, 8, 9, 10, 11: upload-performance bar charts ---

func (s *Suite) figure(num int, client, provider string) string {
	pr := s.Pair(client, provider)
	title := fmt.Sprintf("Fig %d: Upload performance from %s to %s (mean ± 1 stddev, seconds)",
		num, siteLabel(client), provider)
	return pr.Grid.FormatFigure(title)
}

// Fig2 is UBC → Google Drive.
func (s *Suite) Fig2() string { return s.figure(2, scenario.UBC, scenario.GoogleDrive) }

// Fig4 is UBC → Dropbox.
func (s *Suite) Fig4() string { return s.figure(4, scenario.UBC, scenario.Dropbox) }

// Fig7 is Purdue → Google Drive.
func (s *Suite) Fig7() string { return s.figure(7, scenario.Purdue, scenario.GoogleDrive) }

// Fig8 is Purdue → Dropbox.
func (s *Suite) Fig8() string { return s.figure(8, scenario.Purdue, scenario.Dropbox) }

// Fig9 is Purdue → OneDrive.
func (s *Suite) Fig9() string { return s.figure(9, scenario.Purdue, scenario.OneDrive) }

// Fig10 is UCLA → Google Drive.
func (s *Suite) Fig10() string { return s.figure(10, scenario.UCLA, scenario.GoogleDrive) }

// Fig11 is UCLA → Dropbox.
func (s *Suite) Fig11() string { return s.figure(11, scenario.UCLA, scenario.Dropbox) }

// --- Tables II and III: average transfer times with relative change ---

// TableII is UBC → Google Drive.
func (s *Suite) TableII() string {
	return "Table II: UBC-to-Google Drive average transfer times\n" +
		s.Pair(scenario.UBC, scenario.GoogleDrive).Grid.FormatTable()
}

// TableIII is Purdue → Google Drive.
func (s *Suite) TableIII() string {
	return "Table III: Purdue-to-Google Drive average transfer times\n" +
		s.Pair(scenario.Purdue, scenario.GoogleDrive).Grid.FormatTable()
}

// --- Table I: fastest/slowest route summary with exceptions ---

// TableI renders the 3×3 route summary.
func (s *Suite) TableI() string {
	var b strings.Builder
	b.WriteString("Table I: Summary of average file transfer times (fastest/slowest routes)\n")
	fmt.Fprintf(&b, "%-10s", "Client")
	for _, p := range scenario.ProviderNames {
		fmt.Fprintf(&b, " | %-44s", p)
	}
	b.WriteString("\n" + strings.Repeat("-", 10+47*3) + "\n")
	for _, c := range scenario.Clients {
		fmt.Fprintf(&b, "%-10s", siteLabel(c))
		for _, p := range scenario.ProviderNames {
			g := s.Pair(c, p).Grid
			fast, slow := g.OverallFastest()
			cell := fmt.Sprintf("Fastest: %s, Slowest: %s", fast, slow)
			if ex := g.Exceptions(); len(ex) > 0 {
				cell += fmt.Sprintf(" (exceptions: %v MB)", ex)
			}
			fmt.Fprintf(&b, " | %-44s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Table IV: mean and standard deviation from Purdue ---

// TableIV renders the 60/100 MB mean±stddev rows for Dropbox and
// OneDrive from Purdue, including the overlap analysis of Sec III-B.
func (s *Suite) TableIV() string {
	var b strings.Builder
	b.WriteString("Table IV: Mean and standard deviation of upload times from Purdue (seconds)\n")
	fmt.Fprintf(&b, "%-10s %-26s %10s %10s\n", "File-size", "Type", "Mean", "StdDev")
	for _, mb := range []int{100, 60} {
		for _, prov := range []string{scenario.Dropbox, scenario.OneDrive} {
			g := s.Pair(scenario.Purdue, prov).Grid
			for _, r := range g.Spec.Routes {
				c := g.Cell(mb, r)
				if c == nil {
					continue
				}
				fmt.Fprintf(&b, "%-10d %-26s %10.2f %10.2f\n",
					mb, fmt.Sprintf("%s (%s)", prov, r), c.Summary.Mean, c.Summary.StdDev)
			}
		}
	}
	b.WriteString(s.tableIVOverlap())
	return b.String()
}

// tableIVOverlap reports which direct-vs-detour ±1σ intervals intersect.
func (s *Suite) tableIVOverlap() string {
	var b strings.Builder
	b.WriteString("±1σ overlap (direct vs detour):\n")
	for _, mb := range []int{100, 60} {
		for _, prov := range []string{scenario.Dropbox, scenario.OneDrive} {
			g := s.Pair(scenario.Purdue, prov).Grid
			direct := g.Cell(mb, core.DirectRoute)
			for _, r := range g.Spec.Routes[1:] {
				c := g.Cell(mb, r)
				if c == nil || direct == nil {
					continue
				}
				fmt.Fprintf(&b, "  %3d MB %s direct vs %s: overlap=%v\n",
					mb, prov, r, direct.Summary.Overlaps(c.Summary))
			}
		}
	}
	return b.String()
}

// --- Figures 5 and 6: traceroutes ---

// Fig5 renders the UBC → Google Drive traceroute.
func (s *Suite) Fig5() string {
	w := scenario.Build(s.Options.Seed)
	res, err := traceroutex.Run(w.Graph, scenario.UBC, scenario.GDriveDC, traceroutex.Options{})
	if err != nil {
		return "traceroute failed: " + err.Error()
	}
	return "Fig 5: UBC to Google Drive Server Traceroute\n" + res.Format()
}

// Fig6 renders the UAlberta → Google Drive traceroute.
func (s *Suite) Fig6() string {
	w := scenario.Build(s.Options.Seed)
	res, err := traceroutex.Run(w.Graph, scenario.UAlberta, scenario.GDriveDC, traceroutex.Options{})
	if err != nil {
		return "traceroute failed: " + err.Error()
	}
	return "Fig 6: UAlberta to Google Drive Server Traceroute\n" + res.Format()
}

// --- Fig 3 / Table V: geography ---

// siteOf maps scenario hosts to geographic sites.
var siteOf = map[string]geo.Site{
	scenario.UBC:        geo.UBC,
	scenario.UAlberta:   geo.UAlberta,
	scenario.UMich:      geo.UMich,
	scenario.Purdue:     geo.Purdue,
	scenario.UCLA:       geo.UCLA,
	scenario.GDriveDC:   geo.GoogleDriveDC,
	scenario.DropboxDC:  geo.DropboxDC,
	scenario.OneDriveDC: geo.OneDriveDC,
}

func siteLabel(host string) string {
	if s, ok := siteOf[host]; ok {
		return s.Name
	}
	return host
}

// Fig3 lists the locations of clients, intermediate nodes, and
// cloud-storage servers (the paper's map, as coordinates).
func (s *Suite) Fig3() string {
	var b strings.Builder
	b.WriteString("Fig 3: Locations of clients, intermediate nodes and cloud-storage servers\n")
	order := []string{scenario.UBC, scenario.UAlberta, scenario.UMich, scenario.Purdue,
		scenario.UCLA, scenario.GDriveDC, scenario.DropboxDC, scenario.OneDriveDC}
	for _, host := range order {
		site := siteOf[host]
		fmt.Fprintf(&b, "  %-12s %-22s (%.4f, %.4f)\n", site.Name, site.City, site.Lat, site.Lon)
	}
	return b.String()
}

// TableV renders the geographic summary of fastest routes: for every
// client and provider, the winning route, its path length in km, and the
// direct great-circle distance.
func (s *Suite) TableV() string {
	var b strings.Builder
	b.WriteString("Table V: Geographical summary of fastest routes\n")
	for _, c := range scenario.Clients {
		fmt.Fprintf(&b, "%s (%s):\n", siteLabel(c), siteOf[c].City)
		for _, p := range scenario.ProviderNames {
			g := s.Pair(c, p).Grid
			fast, _ := g.OverallFastest()
			dcHost := scenario.Providers[p]
			directKm := geo.HaversineKm(siteOf[c].Coord, siteOf[dcHost].Coord)
			var routeKm float64
			var desc string
			if fast.Kind == core.Direct {
				routeKm = directKm
				desc = "direct"
			} else {
				routeKm = geo.HaversineKm(siteOf[c].Coord, siteOf[fast.Via].Coord) +
					geo.HaversineKm(siteOf[fast.Via].Coord, siteOf[dcHost].Coord)
				desc = fast.String()
			}
			fmt.Fprintf(&b, "  -> %-12s fastest=%-14s path≈%5.0f km (direct %4.0f km)\n",
				p, desc, routeKm, directKm)
		}
	}
	return b.String()
}

// Mean is a convenience for tests: the mean transfer time of one cell.
func (s *Suite) Mean(client, provider string, route core.Route, sizeMB int) float64 {
	c := s.Pair(client, provider).Grid.Cell(sizeMB, route)
	if c == nil {
		return 0
	}
	return c.Summary.Mean
}

// RelativeGain returns the percent change of a detour versus direct for
// one cell (negative = faster), as bracketed in Tables II/III.
func (s *Suite) RelativeGain(client, provider string, route core.Route, sizeMB int) float64 {
	g := s.Pair(client, provider).Grid
	direct := g.Cell(sizeMB, core.DirectRoute)
	c := g.Cell(sizeMB, route)
	return stats.RelativeChange(direct.Summary.Mean, c.Summary.Mean)
}
