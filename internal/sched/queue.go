package sched

import (
	"container/heap"
	"sync"
)

// jobQueue is the blocking priority queue between Submit and the worker
// pool: higher priority first, earlier deadline next (no deadline sorts
// last), FIFO within ties.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	h      jobHeap
	seq    int64
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job; it never blocks.
func (q *jobQueue) push(j Job) {
	q.mu.Lock()
	q.seq++
	heap.Push(&q.h, queued{job: j, seq: q.seq})
	q.cond.Signal()
	q.mu.Unlock()
}

// pop dequeues the highest-priority job, blocking while the queue is
// empty. It returns ok=false once the queue is closed.
func (q *jobQueue) pop() (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.h.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return Job{}, false
	}
	return heap.Pop(&q.h).(queued).job, true
}

// tryPop dequeues without blocking (used to fail leftovers after close).
func (q *jobQueue) tryPop() (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.h.Len() == 0 {
		return Job{}, false
	}
	return heap.Pop(&q.h).(queued).job, true
}

// length reports how many jobs wait in the queue.
func (q *jobQueue) length() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.h.Len()
}

// close wakes all blocked receivers; they observe ok=false.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

type queued struct {
	job Job
	seq int64
}

// before is the queue's strict ordering.
func (a queued) before(b queued) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	ad, bd := a.job.Deadline, b.job.Deadline
	if ad != bd {
		// 0 = no deadline = least urgent.
		if ad == 0 {
			return false
		}
		if bd == 0 {
			return true
		}
		return ad < bd
	}
	return a.seq < b.seq
}

type jobHeap []queued

func (h jobHeap) Len() int            { return len(h) }
func (h jobHeap) Less(i, j int) bool  { return h[i].before(h[j]) }
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)         { *h = append(*h, x.(queued)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
