package cloudsim

import (
	"fmt"
	"strings"

	"detournet/internal/httpsim"
)

// OneDrive (Microsoft Graph era) subset: upload sessions with
// Content-Range fragment PUTs, content download, delete.
//
//	POST /v1.0/drive/root:/<name>:/createUploadSession  -> {uploadUrl}
//	PUT  /v1.0/upload/<id>   Content-Range fragment     -> 202 (more) / 201 (done)
//	GET  /v1.0/drive/root:/<name>:/content              -> bytes
//	DELETE /v1.0/drive/root:/<name>
func (s *Service) mountOneDrive() {
	s.HTTP.Handle("POST", "/v1.0/drive/root:", s.protect(s.odCreateSession))
	s.HTTP.Handle("PUT", "/v1.0/upload/", s.protect(s.odUpload))
	s.HTTP.Handle("GET", "/v1.0/drive/root:", s.protect(s.odDownload))
	s.HTTP.Handle("DELETE", "/v1.0/drive/root:", s.protect(s.odDelete))
}

// odItemPath extracts "<name>" from "/v1.0/drive/root:/<name>:/<verb>"
// or "/v1.0/drive/root:/<name>".
func odItemPath(path, verb string) (string, bool) {
	rest, ok := strings.CutPrefix(path, "/v1.0/drive/root:/")
	if !ok {
		return "", false
	}
	if verb == "" {
		return rest, rest != ""
	}
	name, ok := strings.CutSuffix(rest, ":/"+verb)
	return name, ok && name != ""
}

func (s *Service) odCreateSession(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	name, ok := odItemPath(req.Path, "createUploadSession")
	if !ok {
		return errResp(httpsim.StatusBadRequest, "bad item path")
	}
	sess := s.newSession(name, 0)
	return jsonResp(httpsim.StatusOK, map[string]any{
		"uploadUrl":          "/v1.0/upload/" + sess.id,
		"expirationDateTime": "simulated",
	})
}

func (s *Service) odUpload(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	id := strings.TrimPrefix(req.Path, "/v1.0/upload/")
	sess, ok := s.session(id)
	if !ok || sess.done {
		return errResp(httpsim.StatusNotFound, "unknown upload session")
	}
	cr, ok := req.Header["Content-Range"]
	if !ok {
		return errResp(httpsim.StatusBadRequest, "fragment PUT requires Content-Range")
	}
	lo, hi, total, err := parseContentRange(cr)
	if err != nil {
		return errResp(httpsim.StatusBadRequest, err.Error())
	}
	if total <= 0 {
		return errResp(httpsim.StatusBadRequest, "OneDrive requires a known total size")
	}
	if lo != sess.received {
		return errResp(httpsim.StatusConflict,
			fmt.Sprintf("expected offset %v, got %v", sess.received, lo))
	}
	sess.total = total
	if resp := s.admitSessionBytes(hi - lo + 1); resp != nil {
		return resp
	}
	sess.received += hi - lo + 1
	if sess.received < sess.total {
		return jsonResp(202, map[string]any{
			"nextExpectedRanges": []string{fmt.Sprintf("%.0f-%.0f", sess.received, sess.total-1)},
		})
	}
	sess.done = true
	o, err := s.Store.PutIdempotent(sess.name, sess.received, req.Header["X-Content-MD5"], req.Header["X-Attempt-Id"])
	if err != nil {
		return s.putErr(err)
	}
	return jsonResp(httpsim.StatusCreated, metaOf(o))
}

func (s *Service) odDownload(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	name, ok := odItemPath(req.Path, "content")
	if !ok {
		// Bare item path: return metadata.
		if name, ok = odItemPath(req.Path, ""); ok {
			if o, found := s.Store.Get(name); found {
				return jsonResp(httpsim.StatusOK, metaOf(o))
			}
		}
		return errResp(httpsim.StatusNotFound, "itemNotFound")
	}
	o, found := s.Store.Get(name)
	if !found {
		return errResp(httpsim.StatusNotFound, "itemNotFound")
	}
	return &httpsim.Response{Status: httpsim.StatusOK, BodySize: o.Size}
}

func (s *Service) odDelete(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	name, ok := odItemPath(req.Path, "")
	if !ok {
		return errResp(httpsim.StatusBadRequest, "bad item path")
	}
	if !s.Store.Delete(name) {
		return errResp(httpsim.StatusNotFound, "itemNotFound")
	}
	return &httpsim.Response{Status: httpsim.StatusNoContent}
}
