// Package telemetry is the observability plane for the detour stack: a
// metrics registry with typed, labeled counter/gauge/histogram families;
// a simclock-driven time-series sampler feeding bounded ring buffers; and
// a per-job flight recorder that keeps the full decision trace of failed
// transfers. Everything is deterministic under the repo's simulation
// contract — snapshot iteration orders are sorted, floats format via
// strconv with the shortest round-trip representation, and the sampler
// ticks on the virtual clock — so same-seed runs dump byte-identical
// telemetry.
//
// Hot-path cost is a single atomic op per observation: families hand out
// child metrics once (callers cache the handle) and the child's Add/Set/
// Observe touch only atomics. Every exported method is nil-safe on a nil
// receiver, mirroring tracelog: instrumented code never guards against a
// disabled registry.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType discriminates the three family kinds in snapshots.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// labelSep joins label values into a child key. 0xff cannot appear in
// the label values we use (route names, DTN hostnames), so the join is
// collision-free.
const labelSep = "\xff"

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is safe: every method returns a nil
// family whose methods are in turn no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Family is one named metric family: a type, a help string, a label
// schema, and a set of children keyed by label values. Families with no
// labels have a single child with an empty key.
type Family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	hopts  HistOpts

	mu       sync.Mutex
	children map[string]*Metric
}

// Metric is a single labeled child. Counters and gauges store a float64
// as atomic bits; histograms add per-bucket atomic counts. All methods
// are nil-safe.
type Metric struct {
	fam    *Family
	values []string

	bits atomic.Uint64 // counter/gauge value as math.Float64bits

	// histogram state (nil for counters/gauges)
	bounds []float64 // upper bounds; len(buckets)-1 entries, last bucket is +Inf
	counts []atomic.Uint64
	sumBit atomic.Uint64
	count  atomic.Uint64
}

func (r *Registry) family(name, help string, typ MetricType, labels []string, hopts HistOpts) *Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: family %q re-registered with different type or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: family %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &Family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		hopts:    hopts,
		children: make(map[string]*Metric),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) a counter family. With no labels the
// returned family's With() yields the single child.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.family(name, help, TypeCounter, labels, HistOpts{})
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.family(name, help, TypeGauge, labels, HistOpts{})
}

// Histogram registers (or fetches) a log-bucketed histogram family.
func (r *Registry) Histogram(name, help string, opts HistOpts, labels ...string) *Family {
	return r.family(name, help, TypeHistogram, labels, opts.withDefaults())
}

// With returns the child metric for the given label values, creating it
// on first use. The number of values must match the family's label
// schema. Callers on hot paths should cache the returned handle.
func (f *Family) With(values ...string) *Metric {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: family %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := &Metric{fam: f, values: append([]string(nil), values...)}
	if f.typ == TypeHistogram {
		m.bounds = f.hopts.bounds()
		m.counts = make([]atomic.Uint64, len(m.bounds)+1)
	}
	f.children[key] = m
	return m
}

// Add increments a counter or gauge by v. Counters reject negative
// deltas (silently dropped — the hot path carries no error return).
func (m *Metric) Add(v float64) {
	if m == nil {
		return
	}
	if m.fam.typ == TypeCounter && v < 0 {
		return
	}
	for {
		old := m.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if m.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds 1.
func (m *Metric) Inc() { m.Add(1) }

// Set replaces a gauge's value. No-op on counters and histograms.
func (m *Metric) Set(v float64) {
	if m == nil || m.fam.typ != TypeGauge {
		return
	}
	m.bits.Store(math.Float64bits(v))
}

// Value reads the current counter/gauge value.
func (m *Metric) Value() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}

// Observe records v into a histogram. No-op on counters and gauges.
func (m *Metric) Observe(v float64) {
	if m == nil || m.counts == nil {
		return
	}
	m.counts[bucketFor(m.bounds, v)].Add(1)
	m.count.Add(1)
	for {
		old := m.sumBit.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if m.sumBit.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Snapshot captures the whole registry in deterministic order: families
// sorted by name, children sorted by their label-value key.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*Family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		snap.Families = append(snap.Families, f.snapshot())
	}
	return snap
}

func (f *Family) snapshot() FamilySnapshot {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Metric, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	f.mu.Unlock()

	fs := FamilySnapshot{
		Name:   f.name,
		Help:   f.help,
		Type:   f.typ,
		Labels: append([]string(nil), f.labels...),
	}
	for _, m := range kids {
		ms := MetricSnapshot{LabelValues: append([]string(nil), m.values...)}
		if f.typ == TypeHistogram {
			h := &HistSnapshot{
				Bounds: append([]float64(nil), m.bounds...),
				Counts: make([]uint64, len(m.counts)),
				Count:  m.count.Load(),
				Sum:    math.Float64frombits(m.sumBit.Load()),
			}
			for i := range m.counts {
				h.Counts[i] = m.counts[i].Load()
			}
			ms.Hist = h
		} else {
			ms.Value = m.Value()
		}
		fs.Metrics = append(fs.Metrics, ms)
	}
	return fs
}

// Snapshot is a point-in-time copy of a registry, ordered
// deterministically.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family's copy.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    MetricType       `json:"type"`
	Labels  []string         `json:"labels,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one child's copy.
type MetricSnapshot struct {
	LabelValues []string      `json:"label_values,omitempty"`
	Value       float64       `json:"value,omitempty"`
	Hist        *HistSnapshot `json:"histogram,omitempty"`
}
