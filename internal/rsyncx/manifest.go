package rsyncx

import (
	"fmt"
	"math"
	"sort"

	"detournet/internal/simproc"
)

// Per-chunk hash manifests. A staged file's integrity used to be a
// single whole-file digest: one flipped bit anywhere meant discarding
// and re-sending the entire transfer. The manifest splits the file into
// ManifestChunk-sized pieces, each with its own checksum, so corruption
// repair re-fetches only the damaged chunks — the chunk-level integrity
// the file-synchronization literature argues for.
//
// Transfers in this simulator are sized-only (bytes are timed on the
// wire, not materialized), so chunk sums are derived deterministically
// from the whole-file digest: both ends compute the same expected sum
// per chunk, and the daemon reports a perturbed sum for any chunk its
// disk has marked rotten. When real bytes are staged, bit rot also
// flips them, but the rot set remains the source of truth for the
// manifest — one code path for both modes.

// ManifestChunk is the chunk granularity of integrity manifests —
// deliberately the resumable-push chunk size, so a repair re-sends
// exactly one push chunk.
const ManifestChunk = DefaultPushChunk

// ChunkCount returns the number of manifest chunks covering size bytes.
func ChunkCount(size float64) int {
	if size <= 0 {
		return 1
	}
	return int(math.Ceil(size / ManifestChunk))
}

// ChunkSpan returns the byte length of chunk idx of a size-byte file.
func ChunkSpan(size float64, idx int) float64 {
	lo := float64(idx) * ManifestChunk
	if lo >= size {
		return 0
	}
	n := size - lo
	if n > ManifestChunk {
		n = ManifestChunk
	}
	return n
}

// ChunkSum is the expected checksum of chunk idx of a file with the
// given whole-file digest — synthetic (digest-derived) because sized
// transfers never materialize bytes.
func ChunkSum(md5 string, idx int) string {
	return Checksum([]byte(fmt.Sprintf("%s#%d", md5, idx)))
}

// rotSum is what the daemon reports for a chunk its disk corrupted:
// deterministic, and never equal to the healthy ChunkSum.
func rotSum(md5 string, idx int) string {
	return Checksum([]byte(fmt.Sprintf("rot!%s#%d", md5, idx)))
}

// --- daemon-side rot tracking ---

// RotChunk marks chunk idx of name as corrupted on the daemon's disk —
// the bit-rot injector's entry point. When staged bytes are
// materialized the corresponding byte is flipped too. Rot never errors
// and is silent until a manifest or stat read detects it; it reports
// whether anything on disk was actually touched.
func (d *Daemon) RotChunk(name string, idx int) bool {
	if idx < 0 {
		return false
	}
	if st, ok := d.staging[name]; ok {
		if float64(idx)*ManifestChunk >= st.Size && !(st.Size == 0 && idx == 0) {
			return false
		}
		if st.Data != nil {
			off := idx * ManifestChunk
			if off < len(st.Data) {
				st.Data[off] ^= 0xFF
			}
		}
		d.markRot(name, idx)
		return true
	}
	if pt, ok := d.partials[name]; ok {
		if float64(idx)*ManifestChunk >= pt.received {
			return false // chunk not on disk yet
		}
		d.markRot(name, idx)
		return true
	}
	return false
}

func (d *Daemon) markRot(name string, idx int) {
	if d.rot == nil {
		d.rot = make(map[string]map[int]bool)
	}
	if d.rot[name] == nil {
		d.rot[name] = make(map[int]bool)
	}
	d.rot[name][idx] = true
}

// RottenChunks returns the sorted rotten chunk indices of name.
func (d *Daemon) RottenChunks(name string) []int {
	var out []int
	for idx := range d.rot[name] {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// StagedNames returns the names in the staging area, sorted — the
// deterministic iteration order fault injectors need.
func (d *Daemon) StagedNames() []string {
	out := make([]string, 0, len(d.staging))
	for name := range d.staging {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StagedChunks returns how many manifest chunks name's staged copy
// spans (0 when nothing is staged under that name).
func (d *Daemon) StagedChunks(name string) int {
	st, ok := d.staging[name]
	if !ok {
		return 0
	}
	return ChunkCount(st.Size)
}

// scrubPartial verifies an in-progress push against its chunk sums the
// way a restarted daemon fsck would: if any chunk below the confirmed
// offset is rotten (a torn in-place write, decayed media), the offset
// is clamped back to the start of the lowest bad chunk so the resume
// rewrites it, and those rot marks are cleared. Returns the trustworthy
// offset. This is what makes "a torn partial that passes length checks"
// impossible to resume from: Stat never reports bytes the disk cannot
// vouch for.
func (d *Daemon) scrubPartial(name string) float64 {
	pt, ok := d.partials[name]
	if !ok {
		return 0
	}
	bad := -1
	for idx := range d.rot[name] {
		if float64(idx)*ManifestChunk < pt.received && (bad < 0 || idx < bad) {
			bad = idx
		}
	}
	if bad < 0 {
		return pt.received
	}
	pt.received = float64(bad) * ManifestChunk
	for idx := range d.rot[name] {
		if float64(idx)*ManifestChunk >= pt.received {
			delete(d.rot[name], idx)
		}
	}
	if len(d.rot[name]) == 0 {
		delete(d.rot, name)
	}
	return pt.received
}

// manifest builds the chunk-sum list for a staged file.
func (d *Daemon) manifest(name string) ([]string, bool) {
	st, ok := d.staging[name]
	if !ok {
		return nil, false
	}
	n := ChunkCount(st.Size)
	sums := make([]string, n)
	for i := 0; i < n; i++ {
		if d.rot[name][i] {
			sums[i] = rotSum(st.MD5, i)
		} else {
			sums[i] = ChunkSum(st.MD5, i)
		}
	}
	return sums, true
}

// repairChunk lands a re-sent chunk over a rotten one.
func (d *Daemon) repairChunk(p *simproc.Proc, name string, idx int) error {
	st, ok := d.staging[name]
	if !ok {
		return fmt.Errorf("not staged: %s", name)
	}
	span := ChunkSpan(st.Size, idx)
	if span <= 0 && !(st.Size == 0 && idx == 0) {
		return fmt.Errorf("chunk %d out of range for %s", idx, name)
	}
	if d.DiskBps > 0 && span > 0 {
		p.Sleep(span / d.DiskBps)
	}
	if st.Data != nil {
		off := idx * ManifestChunk
		if off < len(st.Data) && d.rot[name][idx] {
			st.Data[off] ^= 0xFF // un-flip: the re-sent chunk is healthy
		}
	}
	if d.rot[name] != nil {
		delete(d.rot[name], idx)
		if len(d.rot[name]) == 0 {
			delete(d.rot, name)
		}
	}
	return nil
}

// --- wire ops ---

type manifestReq struct {
	Name string
}

type manifestResp struct {
	OK   bool
	Err  string
	Size float64
	MD5  string
	Sums []string
}

type repairChunkReq struct {
	Name  string
	Index int
	Bytes float64
}

// Manifest fetches the daemon's per-chunk checksums for a staged file.
// The wire cost is one control message plus ~33 bytes per sum, a
// rounding error next to the chunks themselves.
func (cl *Client) Manifest(p *simproc.Proc, name string) ([]string, error) {
	c, err := cl.dial(p)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.Send(p, manifestReq{Name: name}, ctrlBytes); err != nil {
		return nil, err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return nil, err
	}
	mr, ok := msg.Payload.(manifestResp)
	if !ok {
		return nil, fmt.Errorf("rsyncx: expected manifest response, got %T", msg.Payload)
	}
	if !mr.OK {
		return nil, fmt.Errorf("rsyncx: manifest: %s", mr.Err)
	}
	return mr.Sums, nil
}

// RepairChunk re-sends one manifest chunk of a staged file, paying only
// that chunk's bytes on the wire. The daemon clears the chunk's rot
// mark once the bytes land.
func (cl *Client) RepairChunk(p *simproc.Proc, name string, idx int, bytes float64) error {
	c, err := cl.dial(p)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(p, repairChunkReq{Name: name, Index: idx, Bytes: bytes}, bytes+ctrlBytes); err != nil {
		return err
	}
	return recvAck(p, c)
}

// VerifyManifest compares a daemon manifest against the expected sums
// for a file with the given whole-file digest, returning the indices of
// the chunks that need repair (sorted).
func VerifyManifest(sums []string, md5 string) []int {
	var bad []int
	for i, s := range sums {
		if s != ChunkSum(md5, i) {
			bad = append(bad, i)
		}
	}
	return bad
}
