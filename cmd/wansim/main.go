// Command wansim inspects the simulated WAN: nodes, links with their
// capacities and delays, and the routed path (with effective bottleneck
// bandwidth) between any two hosts.
//
// Usage:
//
//	wansim -nodes
//	wansim -links
//	wansim -route -from purdue-pl -to gdrive-dc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"detournet/internal/fluid"
	"detournet/internal/scenario"
	"detournet/internal/topology"
)

func main() {
	var (
		nodes = flag.Bool("nodes", false, "list nodes")
		links = flag.Bool("links", false, "list links")
		route = flag.Bool("route", false, "show the routed path from -from to -to")
		from  = flag.String("from", scenario.UBC, "route source")
		to    = flag.String("to", scenario.GDriveDC, "route destination")
		seed  = flag.Int64("seed", 2015, "world seed")
	)
	flag.Parse()
	w := scenario.Build(*seed)

	switch {
	case *nodes:
		fmt.Printf("%-16s %-6s %-12s %-44s %s\n", "NAME", "KIND", "DOMAIN", "HOSTNAME", "IP")
		for _, n := range w.Graph.Nodes() {
			fmt.Printf("%-16s %-6s %-12s %-44s %s\n", n.Name, n.Kind, n.Domain, n.Hostname, n.IP)
		}
	case *links:
		fmt.Printf("%-36s %12s %10s\n", "LINK", "CAP (MB/s)", "DELAY (ms)")
		for _, n := range w.Graph.Nodes() {
			for _, e := range w.Graph.Edges(n.Name) {
				fmt.Printf("%-36s %12.2f %10.2f\n",
					e.From.Name+" -> "+e.To.Name, e.Link.Capacity/1e6, e.Link.PropDelay*1000)
			}
		}
	case *route:
		path, err := w.Graph.Path(*from, *to)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wansim: %v\n", err)
			os.Exit(1)
		}
		lp, err := w.Graph.LinkPath(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wansim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("route %s -> %s:\n  %s\n", *from, *to,
			strings.Join(topology.PathNames(path), " -> "))
		fmt.Printf("  hops: %d\n", len(lp))
		fmt.Printf("  one-way delay: %.1f ms\n", fluid.PathDelay(lp)*1000)
		fmt.Printf("  bottleneck capacity: %.2f MB/s\n", fluid.BottleneckCapacity(lp)/1e6)
		rtt, _ := w.Graph.RTT(*from, *to)
		fmt.Printf("  rtt: %.1f ms\n", rtt*1000)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
