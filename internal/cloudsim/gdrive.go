package cloudsim

import (
	"encoding/json"
	"fmt"
	"strings"

	"detournet/internal/httpsim"
)

// Google Drive v3 subset: resumable upload (initiate + PUT with
// Content-Range), media download, metadata get, delete.
//
//	POST /upload/drive/v3/files?uploadType=resumable   {name,size} -> Location header
//	PUT  /upload/drive/v3/sessions/<id>                body (+Content-Range) -> 200 or 308
//	GET  /drive/v3/files/<id>?alt=media                -> bytes
//	GET  /drive/v3/files/<id>                          -> metadata
//	DELETE /drive/v3/files/<id>
func (s *Service) mountGoogleDrive() {
	s.HTTP.Handle("POST", "/upload/drive/v3/files", s.protect(s.gdInitiate))
	s.HTTP.Handle("PUT", "/upload/drive/v3/sessions/", s.protect(s.gdUpload))
	s.HTTP.Handle("GET", "/drive/v3/files/", s.protect(s.gdGet))
	s.HTTP.Handle("GET", "/drive/v3/files", s.protect(s.gdList))
	s.HTTP.Handle("DELETE", "/drive/v3/files/", s.protect(s.gdDelete))
}

// gdList implements the `q=name='x'` search the SDK uses to resolve a
// name to a file ID.
func (s *Service) gdList(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	_, query, _ := strings.Cut(req.Path, "?")
	var name string
	if strings.HasPrefix(query, "q=name=") {
		name = strings.Trim(strings.TrimPrefix(query, "q=name="), "'")
	}
	var files []fileMeta
	if name != "" {
		if o, ok := s.Store.Get(name); ok {
			files = append(files, metaOf(o))
		}
	} else {
		for _, o := range s.Store.List() {
			files = append(files, metaOf(o))
		}
	}
	return jsonResp(httpsim.StatusOK, map[string]any{"files": files})
}

type gdInitiateReq struct {
	Name string  `json:"name"`
	Size float64 `json:"size"`
}

func (s *Service) gdInitiate(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	if !strings.Contains(req.Path, "uploadType=resumable") {
		return errResp(httpsim.StatusBadRequest, "only resumable uploads supported")
	}
	var init gdInitiateReq
	if err := json.Unmarshal(req.Body, &init); err != nil || init.Name == "" {
		return errResp(httpsim.StatusBadRequest, "bad metadata")
	}
	sess := s.newSession(init.Name, init.Size)
	return &httpsim.Response{
		Status: httpsim.StatusOK,
		Header: map[string]string{"Location": "/upload/drive/v3/sessions/" + sess.id},
	}
}

func (s *Service) gdUpload(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	id := strings.TrimPrefix(req.Path, "/upload/drive/v3/sessions/")
	sess, ok := s.session(id)
	if !ok || sess.done {
		return errResp(httpsim.StatusNotFound, "unknown session")
	}
	n := req.ContentLength()
	if cr, ok := req.Header["Content-Range"]; ok {
		// Status query ("bytes */total"): report progress without
		// consuming the (empty) body — how real clients resume after an
		// interruption.
		if strings.HasPrefix(cr, "bytes */") {
			if sess.received == 0 {
				return &httpsim.Response{Status: httpsim.StatusPermanentRedirect}
			}
			return &httpsim.Response{
				Status: httpsim.StatusPermanentRedirect,
				Header: map[string]string{"Range": fmt.Sprintf("bytes=0-%.0f", sess.received-1)},
			}
		}
		lo, hi, total, err := parseContentRange(cr)
		if err != nil {
			return errResp(httpsim.StatusBadRequest, err.Error())
		}
		if lo != sess.received {
			return errResp(httpsim.StatusConflict,
				fmt.Sprintf("expected offset %v, got %v", sess.received, lo))
		}
		if total >= 0 {
			sess.total = total
		}
		n = hi - lo + 1
	} else if sess.total == 0 {
		sess.total = n
	}
	if resp := s.admitSessionBytes(n); resp != nil {
		return resp
	}
	sess.received += n
	if sess.total > 0 && sess.received < sess.total {
		return &httpsim.Response{
			Status: httpsim.StatusPermanentRedirect, // 308 Resume Incomplete
			Header: map[string]string{"Range": fmt.Sprintf("bytes=0-%.0f", sess.received-1)},
		}
	}
	sess.done = true
	md5 := req.Header["X-Content-MD5"] // optional integrity echo
	o, err := s.Store.PutIdempotent(sess.name, sess.received, md5, req.Header["X-Attempt-Id"])
	if err != nil {
		return s.putErr(err)
	}
	return jsonResp(httpsim.StatusOK, metaOf(o))
}

func (s *Service) gdGet(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	rest := strings.TrimPrefix(req.Path, "/drive/v3/files/")
	id, _, hasQuery := strings.Cut(rest, "?")
	o, ok := s.Store.GetByID(id)
	if !ok {
		return errResp(httpsim.StatusNotFound, "no such file")
	}
	if hasQuery && strings.Contains(rest, "alt=media") {
		return &httpsim.Response{Status: httpsim.StatusOK, BodySize: o.Size}
	}
	return jsonResp(httpsim.StatusOK, metaOf(o))
}

func (s *Service) gdDelete(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	id := strings.TrimPrefix(req.Path, "/drive/v3/files/")
	o, ok := s.Store.GetByID(id)
	if !ok {
		return errResp(httpsim.StatusNotFound, "no such file")
	}
	s.Store.Delete(o.Name)
	return &httpsim.Response{Status: httpsim.StatusNoContent}
}
