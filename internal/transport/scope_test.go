package transport

import (
	"testing"

	"detournet/internal/simproc"
)

// TestFlowLabelCarriesProcScope pins the transfer-scoped flow labels a
// multipath abort keys on: a scoped process's flows are labeled
// "scope|src->dst:port", an unscoped process's keep the bare endpoint
// label, and the scope follows the *sender*, not the connection — the
// same shared conn yields differently-scoped labels per Send.
func TestFlowLabelCarriesProcScope(t *testing.T) {
	n, r := world(t)
	fl := n.Graph().Fluid()
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		for {
			if _, err := c.Recv(p); err != nil {
				return
			}
		}
	})
	var labels []string
	r.Go("cli", func(p *simproc.Proc) {
		c, err := n.Dial(p, "client", "server", 80, DialOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		grab := func() {
			labels = append(labels, fl.SortedFlowLabels()...)
		}
		// Snapshot the in-flight flow's label by killing it mid-send:
		// schedule the grab strictly after the Send starts.
		p.Runner().Engine().After(0.5, grab)
		p.SetScope("mp:job-a")
		if err := c.Send(p, "x", 5e6); err != nil {
			t.Error(err)
			return
		}
		p.SetScope("")
		p.Runner().Engine().After(0.5, grab)
		if err := c.Send(p, "y", 5e6); err != nil {
			t.Error(err)
			return
		}
		c.Close()
	})
	r.Run()
	if len(labels) != 2 {
		t.Fatalf("captured labels = %v, want one per Send", labels)
	}
	if labels[0] != "mp:job-a|client->server:80" {
		t.Errorf("scoped label = %q, want mp:job-a|client->server:80", labels[0])
	}
	if labels[1] != "client->server:80" {
		t.Errorf("unscoped label = %q, want client->server:80", labels[1])
	}
}
