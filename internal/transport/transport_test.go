package transport

import (
	"errors"
	"math"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
)

// world builds: client -- 10 MB/s, 10ms -- router -- 5 MB/s, 15ms -- server
func world(t *testing.T) (*Net, *simproc.Runner) {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	for _, n := range []string{"client", "router", "server", "other"} {
		g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
	}
	g.MustConnect("client", "router", topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.010})
	g.MustConnect("router", "server", topology.LinkSpec{CapacityBps: 5e6, DelaySec: 0.015})
	g.MustConnect("router", "other", topology.LinkSpec{CapacityBps: 5e6, DelaySec: 0.005})
	return NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20}), r
}

func TestDialRefusedWithoutListener(t *testing.T) {
	n, r := world(t)
	var err error
	r.Go("c", func(p *simproc.Proc) {
		_, err = n.Dial(p, "client", "server", 443, DialOpts{})
	})
	r.Run()
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestListenErrors(t *testing.T) {
	n, _ := world(t)
	if _, err := n.Listen("ghost", 80); err == nil {
		t.Fatal("listen on unknown host accepted")
	}
	n.MustListen("server", 80)
	if _, err := n.Listen("server", 80); err == nil {
		t.Fatal("double bind accepted")
	}
}

func TestHandshakeDelay(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 443)
	r.Go("srv", func(p *simproc.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Error(err)
			return
		}
		c.Close()
	})
	var connectedAt simclock.Time
	var rtt float64
	r.Go("cli", func(p *simproc.Proc) {
		c, err := n.Dial(p, "client", "server", 443, DialOpts{TLS: true})
		if err != nil {
			t.Error(err)
			return
		}
		connectedAt = p.Now()
		rtt = c.RTT()
		if _, err := c.Recv(p); !errors.Is(err, EOF) {
			t.Errorf("Recv after peer close = %v, want EOF", err)
		}
	})
	r.Run()
	// RTT = 2*(10+15)ms = 50ms; TLS dial = 3 RTT = 150ms.
	if math.Abs(rtt-0.050) > 1e-9 {
		t.Fatalf("rtt = %v, want 0.050", rtt)
	}
	if math.Abs(float64(connectedAt)-0.150) > 1e-9 {
		t.Fatalf("connected at %v, want 0.150", connectedAt)
	}
}

func TestBulkTransferTime(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	var recvBytes float64
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		m, err := c.Recv(p)
		if err != nil {
			t.Error(err)
			return
		}
		recvBytes = m.Bytes
	})
	var sendDone simclock.Time
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		if err := c.Send(p, "blob", 10e6); err != nil {
			t.Error(err)
		}
		sendDone = p.Now()
	})
	end := r.Run()
	if recvBytes != 10e6 {
		t.Fatalf("received %v bytes", recvBytes)
	}
	// Bottleneck 5 MB/s, ~10.3 MB wire: >= 2.06s; plus ramp and
	// handshake, but well under 3s. And rwnd 4MB / 50ms = 80MB/s, no cap.
	if sendDone < 2.0 || sendDone > 3.0 {
		t.Fatalf("send finished at %v, want ~2.1-3s", sendDone)
	}
	if end < sendDone {
		t.Fatalf("sim ended before delivery: %v < %v", end, sendDone)
	}
}

func TestSmallRwndCapsThroughput(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		_, _ = c.Recv(p)
	})
	params := tcpmodel.Params{RwndBytes: 64 << 10} // 64 KiB on a 50ms path = 1.31 MB/s
	var sendDur float64
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{Params: &params})
		start := p.Now()
		_ = c.Send(p, nil, 10e6)
		sendDur = float64(p.Now() - start)
	})
	r.Run()
	// 10.3 MB at 1.31 MB/s ≈ 7.9s — far above the unconstrained 2.1s.
	if sendDur < 7 || sendDur > 10 {
		t.Fatalf("window-capped transfer took %v, want ~8s", sendDur)
	}
}

func TestMessagesArriveInOrder(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	var got []int
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		for i := 0; i < 3; i++ {
			m, err := c.Recv(p)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, m.Payload.(int))
		}
	})
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		for i := 1; i <= 3; i++ {
			_ = c.Send(p, i, 1000)
		}
	})
	r.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestConcurrentSendersSerialized(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	var got []string
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		for i := 0; i < 2; i++ {
			m, _ := c.Recv(p)
			got = append(got, m.Payload.(string))
		}
	})
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		inner := simproc.NewFuture[bool](r)
		r.Go("cli2", func(p2 *simproc.Proc) {
			_ = c.Send(p2, "second", 1e6) // queued behind the first send
			inner.Set(true)
		})
		_ = c.Send(p, "first", 1e6)
		simproc.Await(p, inner)
	})
	r.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
}

func TestExchange(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		m, _ := c.Recv(p)
		_ = c.Send(p, m.Payload.(string)+"-ack", 200)
	})
	var reply string
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		m, err := c.Exchange(p, "req", 300)
		if err != nil {
			t.Error(err)
			return
		}
		reply = m.Payload.(string)
	})
	r.Run()
	if reply != "req-ack" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestCloseSemantics(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		if _, err := c.Recv(p); !errors.Is(err, EOF) {
			t.Errorf("server Recv = %v, want EOF", err)
		}
	})
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		c.Close()
		c.Close() // idempotent
		if err := c.Send(p, nil, 10); !errors.Is(err, ErrClosed) {
			t.Errorf("Send after close = %v", err)
		}
		if _, err := c.Recv(p); !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after local close = %v", err)
		}
	})
	r.Run()
}

func TestListenerCloseWakesAccept(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	var acceptErr error
	r.Go("srv", func(p *simproc.Proc) {
		_, acceptErr = l.Accept(p)
	})
	r.Go("closer", func(p *simproc.Proc) {
		p.Sleep(1)
		l.Close()
	})
	r.Run()
	if !errors.Is(acceptErr, ErrClosed) {
		t.Fatalf("Accept after close = %v", acceptErr)
	}
	// Port is free again.
	if _, err := n.Listen("server", 80); err != nil {
		t.Fatalf("rebind failed: %v", err)
	}
}

func TestPerChunkConnectionsPayRampRepeatedly(t *testing.T) {
	// Sending N chunks over one connection must beat sending them over N
	// fresh connections (handshake + slow-start restart each time) —
	// the effect that differentiates the providers' chunking APIs.
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		for {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			r.Go("handler", func(p2 *simproc.Proc) {
				for {
					if _, err := c.Recv(p2); err != nil {
						return
					}
				}
			})
		}
	})
	const chunk = 1e6
	const nChunks = 8
	var oneConn, manyConn float64
	done := simproc.NewFuture[bool](r)
	r.Go("one-conn", func(p *simproc.Proc) {
		start := p.Now()
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		for i := 0; i < nChunks; i++ {
			_ = c.Send(p, i, chunk)
		}
		oneConn = float64(p.Now() - start)
		c.Close()
		// Now per-chunk connections, serially.
		start = p.Now()
		for i := 0; i < nChunks; i++ {
			ci, _ := n.Dial(p, "client", "server", 80, DialOpts{})
			_ = ci.Send(p, i, chunk)
			ci.Close()
		}
		manyConn = float64(p.Now() - start)
		done.Set(true)
	})
	r.Go("stop", func(p *simproc.Proc) {
		simproc.Await(p, done)
		l.Close()
	})
	r.Run()
	if manyConn <= oneConn*1.2 {
		t.Fatalf("per-chunk connections too cheap: one=%v many=%v", oneConn, manyConn)
	}
}

func TestNoRouteDialFails(t *testing.T) {
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	g.MustAddNode(&topology.Node{Name: "a"})
	g.MustAddNode(&topology.Node{Name: "b"})
	n := NewNet(g, r, tcpmodel.Params{})
	n.MustListen("b", 80)
	var err error
	r.Go("c", func(p *simproc.Proc) {
		_, err = n.Dial(p, "a", "b", 80, DialOpts{})
	})
	r.Run()
	if err == nil {
		t.Fatal("dial across disconnected graph succeeded")
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) { _, _ = l.Accept(p) })
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		if err := c.Send(p, nil, -5); err == nil {
			t.Error("negative size accepted")
		}
		c.Close()
	})
	r.Run()
}

func TestTryRecv(t *testing.T) {
	n, r := world(t)
	l := n.MustListen("server", 80)
	r.Go("srv", func(p *simproc.Proc) {
		c, _ := l.Accept(p)
		if _, ok := c.TryRecv(); ok {
			t.Error("TryRecv on empty inbox returned ok")
		}
		p.Sleep(5)
		if m, ok := c.TryRecv(); !ok || m.Payload.(string) != "hi" {
			t.Errorf("TryRecv = %v %v", m, ok)
		}
	})
	r.Go("cli", func(p *simproc.Proc) {
		c, _ := n.Dial(p, "client", "server", 80, DialOpts{})
		_ = c.Send(p, "hi", 100)
	})
	r.Run()
}
