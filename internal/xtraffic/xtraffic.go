// Package xtraffic generates background load on links: a seeded,
// autocorrelated (AR(1)) load process re-sampled at a fixed interval,
// standing in for the cross-traffic the paper's transfers competed with.
//
// Cross-traffic is what turns the paper's clean bandwidth story into the
// noisy one in Table IV: run-to-run variance, overlapping ±1σ error
// bars, and the file-size-dependent exceptions in Figs 8–9 all come from
// the foreground transfer sampling this process at different times.
package xtraffic

import (
	"math"
	"math/rand"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
)

// Config shapes one link's background-load process.
type Config struct {
	// MeanLoad is the long-run average fraction of link capacity consumed
	// by cross-traffic, in [0, 0.95].
	MeanLoad float64
	// Burstiness in [0, 1] scales the noise amplitude around MeanLoad.
	// Zero gives a constant load; one gives swings comparable to the mean.
	Burstiness float64
	// Interval is the virtual-time spacing of re-samples in seconds.
	// Zero defaults to 5s.
	Interval float64
	// Alpha is the AR(1) autocorrelation in [0, 1). Zero defaults to 0.7:
	// congestion episodes persist for a few intervals, as real ones do.
	Alpha float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.7
	}
	if c.Alpha >= 1 {
		c.Alpha = 0.99
	}
	if c.MeanLoad < 0 {
		c.MeanLoad = 0
	}
	if c.MeanLoad > 0.95 {
		c.MeanLoad = 0.95
	}
	if c.Burstiness < 0 {
		c.Burstiness = 0
	}
	if c.Burstiness > 1 {
		c.Burstiness = 1
	}
	return c
}

// Process is one link's running load generator.
type Process struct {
	fl      *fluid.Network
	link    *fluid.Link
	cfg     Config
	rng     *rand.Rand
	load    float64
	stopped bool
	next    *simclock.Event
}

// Attach starts a load process on link, seeding the link's load
// immediately and re-sampling every Interval until Stop. The rng is
// owned by the process afterwards; give each process its own.
func Attach(fl *fluid.Network, link *fluid.Link, cfg Config, rng *rand.Rand) *Process {
	if fl == nil || link == nil || rng == nil {
		panic("xtraffic: nil argument")
	}
	p := &Process{fl: fl, link: link, cfg: cfg.withDefaults(), rng: rng}
	p.load = p.sampleStationary()
	fl.SetLinkLoad(link, p.load)
	p.schedule()
	return p
}

// sampleStationary draws an initial load from around the stationary
// distribution so transfers starting at t=0 see typical conditions.
func (p *Process) sampleStationary() float64 {
	return clampLoad(p.cfg.MeanLoad + p.noise()/math.Sqrt(1-p.cfg.Alpha*p.cfg.Alpha))
}

func (p *Process) noise() float64 {
	sigma := p.cfg.Burstiness * math.Max(p.cfg.MeanLoad, 0.05) * 0.6
	return p.rng.NormFloat64() * sigma
}

func clampLoad(x float64) float64 {
	return math.Max(0, math.Min(0.95, x))
}

func (p *Process) schedule() {
	eng := p.fl.Engine()
	// Slightly jitter the interval so many processes never re-sample in
	// lockstep, which would create artificial global synchronization.
	d := p.cfg.Interval * (0.9 + 0.2*p.rng.Float64())
	p.next = eng.After(d, p.step)
}

func (p *Process) step() {
	if p.stopped {
		return
	}
	c := p.cfg
	p.load = clampLoad(c.MeanLoad + c.Alpha*(p.load-c.MeanLoad) + p.noise())
	p.fl.SetLinkLoad(p.link, p.load)
	p.schedule()
}

// Load returns the process's current load fraction.
func (p *Process) Load() float64 { return p.load }

// Stop halts the process and releases the link back to zero load.
func (p *Process) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	if p.next != nil {
		p.fl.Engine().Cancel(p.next)
		p.next = nil
	}
	p.fl.SetLinkLoad(p.link, 0)
}

// OnOffConfig shapes a two-state Markov-modulated load process: the link
// alternates between a quiet state and a congestion episode, with
// exponentially distributed holding times. Long-transfer runs inevitably
// straddle episodes while short ones often dodge them — the mechanism
// behind the paper's size-dependent detour benefit and the large error
// bars from Purdue (Table IV, Figs 8–9).
type OnOffConfig struct {
	// GoodLoad/BadLoad are the cross-traffic fractions in each state.
	GoodLoad, BadLoad float64
	// MeanGood/MeanBad are the mean state holding times in seconds.
	MeanGood, MeanBad float64
}

// OnOffProcess is a running two-state load generator.
type OnOffProcess struct {
	fl      *fluid.Network
	link    *fluid.Link
	cfg     OnOffConfig
	rng     *rand.Rand
	bad     bool
	stopped bool
	next    *simclock.Event
}

// AttachOnOff starts a two-state process on link. The initial state is
// drawn from the stationary distribution.
func AttachOnOff(fl *fluid.Network, link *fluid.Link, cfg OnOffConfig, rng *rand.Rand) *OnOffProcess {
	if fl == nil || link == nil || rng == nil {
		panic("xtraffic: nil argument")
	}
	if cfg.MeanGood <= 0 || cfg.MeanBad <= 0 {
		panic("xtraffic: OnOff holding times must be positive")
	}
	p := &OnOffProcess{fl: fl, link: link, cfg: cfg, rng: rng}
	pBad := cfg.MeanBad / (cfg.MeanGood + cfg.MeanBad)
	p.bad = rng.Float64() < pBad
	p.apply()
	p.schedule()
	return p
}

func (p *OnOffProcess) apply() {
	load := p.cfg.GoodLoad
	if p.bad {
		load = p.cfg.BadLoad
	}
	p.fl.SetLinkLoad(p.link, clampLoad(load))
}

func (p *OnOffProcess) schedule() {
	mean := p.cfg.MeanGood
	if p.bad {
		mean = p.cfg.MeanBad
	}
	p.next = p.fl.Engine().After(p.rng.ExpFloat64()*mean, p.step)
}

func (p *OnOffProcess) step() {
	if p.stopped {
		return
	}
	p.bad = !p.bad
	p.apply()
	p.schedule()
}

// Bad reports whether the link is currently in a congestion episode.
func (p *OnOffProcess) Bad() bool { return p.bad }

// Stop halts the process and releases the link.
func (p *OnOffProcess) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	if p.next != nil {
		p.fl.Engine().Cancel(p.next)
		p.next = nil
	}
	p.fl.SetLinkLoad(p.link, 0)
}

// Controller manages the cross-traffic processes of one experiment run
// so they can be torn down together when the foreground transfer ends
// (otherwise their re-sample events would keep the simulation alive
// forever) and restarted for the next run.
type Controller struct {
	starters []func() stopper
	procs    []stopper
	stopped  bool
}

type stopper interface{ Stop() }

// NewController returns an empty controller.
func NewController() *Controller { return &Controller{} }

// Attach starts an AR(1) process and tracks it for StopAll/Restart.
func (c *Controller) Attach(fl *fluid.Network, link *fluid.Link, cfg Config, rng *rand.Rand) *Process {
	start := func() stopper { return Attach(fl, link, cfg, rng) }
	c.starters = append(c.starters, start)
	p := Attach(fl, link, cfg, rng)
	c.procs = append(c.procs, p)
	return p
}

// AttachOnOff starts a two-state process and tracks it.
func (c *Controller) AttachOnOff(fl *fluid.Network, link *fluid.Link, cfg OnOffConfig, rng *rand.Rand) *OnOffProcess {
	start := func() stopper { return AttachOnOff(fl, link, cfg, rng) }
	c.starters = append(c.starters, start)
	p := AttachOnOff(fl, link, cfg, rng)
	c.procs = append(c.procs, p)
	return p
}

// StopAll stops every tracked process (so the event queue can drain
// between measurement phases).
func (c *Controller) StopAll() {
	for _, p := range c.procs {
		p.Stop()
	}
	c.stopped = true
}

// Restart re-attaches every tracked process after StopAll, continuing
// each link's seeded random sequence. It is a no-op while running.
func (c *Controller) Restart() {
	if !c.stopped {
		return
	}
	c.procs = c.procs[:0]
	for _, start := range c.starters {
		c.procs = append(c.procs, start())
	}
	c.stopped = false
}

// Len returns the number of tracked processes.
func (c *Controller) Len() int { return len(c.procs) }
