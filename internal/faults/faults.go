// Package faults is a sim-clock-driven fault injector for the
// detournet world: it replays declarative, scripted fault schedules —
// link flaps and degradations, provider outages and error bursts, DTN
// crashes — against a scenario.World, deterministically.
//
// Each Spec describes one fault as a (possibly recurring) window on the
// virtual clock. The injector registers as a world Pauser, so it obeys
// the same contract as cross-traffic: transitions are scheduled as
// engine events only while a workload is driving the clock, and the
// pending event is cancelled between workloads so the runner can drain.
// Fault *state* is real state and persists across workloads — a link
// downed at t=100 stays down until its window ends, no matter how many
// workloads run in between.
//
// Determinism: windows are pure functions of the virtual clock, and the
// randomness behind injected provider errors draws from per-service
// streams seeded from the injector's seed. The same seed and schedule
// reproduce every transition and every injected error bit-for-bit (see
// TestChaosDeterminism).
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"detournet/internal/bgppol"
	"detournet/internal/scenario"
	"detournet/internal/simclock"
)

// Kind enumerates the fault families the injector can script.
type Kind int

const (
	// LinkDown takes a topology edge down (both directions) for the
	// window: routing loses the edge and in-flight flows are killed.
	LinkDown Kind = iota
	// LinkDegrade keeps the edge up but shrinks its capacity by
	// CapacityFactor and/or imposes ExtraLoad for the window.
	LinkDegrade
	// ProviderOutage hard-downs a provider's API front end (every
	// request answers 503) for the window.
	ProviderOutage
	// ProviderErrors makes a provider's front end flaky for the window:
	// requests fail with 500s at ErrorRate and 429s at ThrottleRate.
	ProviderErrors
	// DTNCrash crashes a DTN's rsync daemon and relay agent at window
	// start (in-flight relays die; staged files and partials survive on
	// disk) and restarts them at window end.
	DTNCrash
	// RouteChurn drives the routing control plane for the window: with
	// DomainA/DomainB set it withdraws that BGP session at window start
	// (staged reconvergence begins, in-flight flows crossing the
	// boundary are killed) and re-announces it at window end; with
	// PinSrc/PinDst set it flips a pinned route away and back — the
	// paper's PacificWave hand-off disappearing from the tables.
	// Session churn requires a world built WithDynamicRouting.
	RouteChurn
	// DTNDrain administratively drains a DTN for the window: its relay
	// agent stops accepting new detour jobs while in-flight jobs (and
	// checkpoint continuations carrying a session token) complete.
	DTNDrain
	// LinkSilentLoss is the first gray fault: the edge silently loses
	// LossRate of its goodput for the window — capacity shrinks by
	// (1-LossRate) — with NO routing-plane event, no flow kills, and no
	// errors anywhere. Only throughput observation can see it.
	LinkSilentLoss
	// ProviderSlow is the slow-but-200 gray fault: for the window the
	// provider ingests payloads from the named Sources at SlowBps while
	// serving every request successfully — the real-world "one peering
	// point is silently rate-limited" pathology.
	ProviderSlow
	// DTNDiskSlow is the dying-disk gray fault: the DTN's staging disk
	// commits at DiskBps for the window, so relayed transfers crawl
	// through hop 1 without a single error.
	DTNDiskSlow
	// ProcCrash kills the scheduler's control-plane process at an
	// enumerated crash point (CrashPoint/Occurrence) while the window is
	// open. The actual kill is performed by the crashsafe harness's
	// CrashControl hooks; the injector arms and disarms the plan.
	ProcCrash
	// TornWrite arms torn-write injection for the window: against a DTN
	// it makes daemon crashes leave half-written (and bit-damaged)
	// partial chunks on disk instead of atomic temp-file renames;
	// against the journal (Journal=true) it tears the tail of the next
	// control-plane journal append.
	TornWrite
	// BitRot silently flips bytes at window start — Flips staged chunks
	// on a DTN's disk, or Flips bytes of the control-plane journal
	// (Journal=true). Nothing errors: the damage is only visible to
	// checksum verification (the chunk manifest, the journal CRCs).
	BitRot
	// DiskFill occupies FillBytes of a DTN's staging disk for the window
	// — a co-tenant filling the shared scratch volume. Gray by
	// construction: no routing event, no error until a push actually
	// fails admission; only headroom observation (the scheduler's
	// capacity oracle) can see it coming.
	DiskFill
	// QuotaDrain charges DrainBytes of a provider's storage quota for
	// the window by opening an abandoned upload session holding that
	// many pending bytes — another client's stalled resumable upload
	// eating the shared account. The drain is reclaimable: a scheduler
	// that reacts to 507s with a session-reclaim pass frees it early.
	QuotaDrain
	// JournalENOSPC pins the control-plane journal device at its
	// current size for the window (appends past it answer ENOSPC) — the
	// volume under the scheduler's write-ahead log filling up. The
	// actual clamp is performed by the crashsafe harness's CrashControl
	// hook.
	JournalENOSPC
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkDegrade:
		return "link-degrade"
	case ProviderOutage:
		return "provider-outage"
	case ProviderErrors:
		return "provider-errors"
	case DTNCrash:
		return "dtn-crash"
	case RouteChurn:
		return "route-churn"
	case DTNDrain:
		return "dtn-drain"
	case LinkSilentLoss:
		return "link-silent-loss"
	case ProviderSlow:
		return "provider-slow"
	case DTNDiskSlow:
		return "dtn-disk-slow"
	case ProcCrash:
		return "proc-crash"
	case TornWrite:
		return "torn-write"
	case BitRot:
		return "bit-rot"
	case DiskFill:
		return "disk-fill"
	case QuotaDrain:
		return "quota-drain"
	case JournalENOSPC:
		return "journal-enospc"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec declares one scripted fault.
type Spec struct {
	Kind Kind

	// From and To name the edge for LinkDown and LinkDegrade.
	From, To string
	// Provider names the service for ProviderOutage and ProviderErrors.
	Provider string
	// DTN names the host for DTNCrash and DTNDrain.
	DTN string
	// DomainA and DomainB name the BGP session for RouteChurn.
	DomainA, DomainB string
	// PinSrc and PinDst name a pinned route for RouteChurn's pin-flip
	// form (mutually exclusive with DomainA/DomainB).
	PinSrc, PinDst string

	// Start is the virtual time (seconds) the first window opens.
	Start float64
	// Duration is the window length in virtual seconds.
	Duration float64
	// Period, when positive, repeats the window every Period seconds
	// (must exceed Duration). Zero means one-shot.
	Period float64
	// Repeat caps the number of windows when Period is set (0 = repeat
	// for as long as the clock advances).
	Repeat int

	// CapacityFactor (LinkDegrade) multiplies the edge capacity during
	// the window; in (0, 1) to degrade, 0 to leave capacity alone.
	CapacityFactor float64
	// ExtraLoad (LinkDegrade) is the cross-traffic fraction imposed on
	// the edge during the window.
	ExtraLoad float64
	// ErrorRate and ThrottleRate (ProviderErrors) are the per-request
	// probabilities of an injected 500 and 429 during the window.
	ErrorRate    float64
	ThrottleRate float64

	// LossRate (LinkSilentLoss) is the goodput fraction silently lost on
	// the edge during the window; in (0, 1).
	LossRate float64
	// Sources (ProviderSlow) lists the client hosts whose payloads the
	// provider silently throttles; SlowBps is their ingestion rate in
	// bytes/second.
	Sources []string
	SlowBps float64
	// DiskBps (DTNDiskSlow) is the degraded staging-disk write rate in
	// bytes/second during the window.
	DiskBps float64

	// CrashPoint (ProcCrash) names the enumerated control-plane crash
	// point (see sched.CrashPoints); Occurrence selects which hit of
	// that point fires, 1-based (0 means the first).
	CrashPoint string
	Occurrence int
	// Journal (TornWrite, BitRot) targets the control-plane journal
	// instead of a DTN's staging disk.
	Journal bool
	// Flips (BitRot) is how many staged chunks (or journal bytes) to
	// corrupt at window start; 0 means one.
	Flips int

	// FillBytes (DiskFill) is how many bytes of the DTN's staging disk
	// the fault occupies during the window.
	FillBytes float64
	// DrainBytes (QuotaDrain) is how many pending bytes the abandoned
	// upload session charges against the provider's quota.
	DrainBytes float64
}

// target renders the spec's subject for logs.
func (s Spec) target() string {
	switch s.Kind {
	case LinkDown, LinkDegrade, LinkSilentLoss:
		return s.From + "<->" + s.To
	case DTNCrash, DTNDrain, DTNDiskSlow, DiskFill:
		return s.DTN
	case JournalENOSPC:
		return "journal"
	case RouteChurn:
		if s.DomainA != "" {
			return s.DomainA + "~" + s.DomainB
		}
		return s.PinSrc + "=>" + s.PinDst
	case ProcCrash:
		return s.CrashPoint
	case TornWrite, BitRot:
		if s.Journal {
			return "journal"
		}
		return s.DTN
	default:
		return s.Provider
	}
}

// state is a Spec plus its runtime position.
type state struct {
	Spec
	active   bool
	ev       *simclock.Event
	savedCap map[[2]string]float64
	// savedDisk is the staging capacity DiskFill restores at window end.
	savedDisk float64
	// drainID is the abandoned session QuotaDrain drops at window end.
	drainID string
}

// stateAt reports whether the fault is active at time t and when it
// next transitions (+Inf when it never will again).
func (sp *state) stateAt(t float64) (bool, float64) {
	if t < sp.Start {
		return false, sp.Start
	}
	if sp.Period <= 0 {
		if t < sp.Start+sp.Duration {
			return true, sp.Start + sp.Duration
		}
		return false, math.Inf(1)
	}
	k := math.Floor((t - sp.Start) / sp.Period)
	if sp.Repeat > 0 && k >= float64(sp.Repeat) {
		return false, math.Inf(1)
	}
	off := sp.Start + k*sp.Period
	if t < off+sp.Duration {
		return true, off + sp.Duration
	}
	if sp.Repeat > 0 && k+1 >= float64(sp.Repeat) {
		return false, math.Inf(1)
	}
	return false, off + sp.Period
}

// Injector replays a fault schedule against one world. Create with
// NewInjector; it wires itself in as a world Pauser.
type Injector struct {
	w       *scenario.World
	eng     *simclock.Engine
	specs   []*state
	stopped bool

	// Injected counts applied transitions (activations + recoveries).
	Injected    int
	transitions []string

	control *CrashControl
	rotRand *rand.Rand
}

// CrashControl carries the control-plane hooks the ProcCrash and
// journal-targeted TornWrite/BitRot faults act on. The crashsafe
// harness wires these to the scheduler's journal; a schedule using
// those kinds without a registered control panics at apply time.
type CrashControl struct {
	// ArmCrash arms the kill: the control plane dies when it reaches
	// the named crash point for the occurrence-th time (1-based).
	ArmCrash func(point string, occurrence int)
	// DisarmCrash cancels a pending kill at the named point.
	DisarmCrash func(point string)
	// TornJournal toggles torn-tail injection on journal appends.
	TornJournal func(active bool)
	// FlipJournal flips one byte of the journal device, chosen with rng.
	FlipJournal func(rng *rand.Rand)
	// JournalENOSPC clamps (active) or unclamps the journal device's
	// capacity at its current size, so appends past it answer ENOSPC.
	JournalENOSPC func(active bool)
}

// SetCrashControl registers the control-plane hooks. Call before the
// first ProcCrash/TornWrite{Journal}/BitRot{Journal} window opens.
func (inj *Injector) SetCrashControl(c *CrashControl) { inj.control = c }

// NewInjector validates the schedule, seeds the provider fault
// randomness, and registers the injector with the world. It panics on
// a malformed spec — a schedule is build-time configuration.
func NewInjector(w *scenario.World, seed int64, specs ...Spec) *Injector {
	inj := &Injector{w: w, eng: w.Eng, stopped: true}
	for _, sp := range specs {
		inj.validate(sp)
		inj.specs = append(inj.specs, &state{Spec: sp})
	}
	// Per-service error streams, seeded in a fixed provider order so the
	// same seed reproduces the same injected faults.
	rng := rand.New(rand.NewSource(seed))
	for _, name := range scenario.ProviderNames {
		if svc := w.Services[name]; svc != nil && svc.FaultRand == nil {
			svc.FaultRand = rand.New(rand.NewSource(rng.Int63()))
		}
	}
	// Drawn after the provider streams so pre-existing schedules keep
	// their exact fault sequences.
	inj.rotRand = rand.New(rand.NewSource(rng.Int63()))
	w.AddPauser(inj)
	return inj
}

func (inj *Injector) validate(sp Spec) {
	if sp.Duration <= 0 {
		panic(fmt.Sprintf("faults: %s %s: non-positive duration", sp.Kind, sp.target()))
	}
	if sp.Period > 0 && sp.Period <= sp.Duration {
		panic(fmt.Sprintf("faults: %s %s: period %.3g must exceed duration %.3g", sp.Kind, sp.target(), sp.Period, sp.Duration))
	}
	switch sp.Kind {
	case LinkDown, LinkDegrade:
		if _, ok := inj.w.Graph.Edge(sp.From, sp.To); !ok {
			panic(fmt.Sprintf("faults: %s: no edge %s->%s", sp.Kind, sp.From, sp.To))
		}
	case LinkSilentLoss:
		if _, ok := inj.w.Graph.Edge(sp.From, sp.To); !ok {
			panic(fmt.Sprintf("faults: %s: no edge %s->%s", sp.Kind, sp.From, sp.To))
		}
		if sp.LossRate <= 0 || sp.LossRate >= 1 {
			panic(fmt.Sprintf("faults: %s %s: loss rate must be in (0,1)", sp.Kind, sp.target()))
		}
	case ProviderSlow:
		if inj.w.Services[sp.Provider] == nil {
			panic(fmt.Sprintf("faults: %s: unknown provider %q", sp.Kind, sp.Provider))
		}
		if len(sp.Sources) == 0 || sp.SlowBps <= 0 {
			panic(fmt.Sprintf("faults: %s %s: needs Sources and positive SlowBps", sp.Kind, sp.target()))
		}
	case DTNDiskSlow:
		if inj.w.Daemons[sp.DTN] == nil {
			panic(fmt.Sprintf("faults: %s: unknown DTN %q", sp.Kind, sp.DTN))
		}
		if sp.DiskBps <= 0 {
			panic(fmt.Sprintf("faults: %s %s: needs positive DiskBps", sp.Kind, sp.target()))
		}
	case ProviderOutage, ProviderErrors:
		if inj.w.Services[sp.Provider] == nil {
			panic(fmt.Sprintf("faults: %s: unknown provider %q", sp.Kind, sp.Provider))
		}
	case DTNCrash:
		if inj.w.Daemons[sp.DTN] == nil || inj.w.Agents[sp.DTN] == nil {
			panic(fmt.Sprintf("faults: %s: unknown DTN %q", sp.Kind, sp.DTN))
		}
	case DTNDrain:
		if inj.w.Agents[sp.DTN] == nil {
			panic(fmt.Sprintf("faults: %s: unknown DTN %q", sp.Kind, sp.DTN))
		}
	case ProcCrash:
		if sp.CrashPoint == "" {
			panic(fmt.Sprintf("faults: %s: needs a CrashPoint", sp.Kind))
		}
	case DiskFill:
		if inj.w.Daemons[sp.DTN] == nil {
			panic(fmt.Sprintf("faults: %s: unknown DTN %q", sp.Kind, sp.DTN))
		}
		if sp.FillBytes <= 0 {
			panic(fmt.Sprintf("faults: %s %s: needs positive FillBytes", sp.Kind, sp.target()))
		}
	case QuotaDrain:
		if inj.w.Services[sp.Provider] == nil {
			panic(fmt.Sprintf("faults: %s: unknown provider %q", sp.Kind, sp.Provider))
		}
		if sp.DrainBytes <= 0 {
			panic(fmt.Sprintf("faults: %s %s: needs positive DrainBytes", sp.Kind, sp.target()))
		}
	case JournalENOSPC:
		// Window-only: the CrashControl hook is checked at apply time.
	case TornWrite, BitRot:
		if !sp.Journal && inj.w.Daemons[sp.DTN] == nil {
			panic(fmt.Sprintf("faults: %s: unknown DTN %q (set Journal for the control plane)", sp.Kind, sp.DTN))
		}
	case RouteChurn:
		switch {
		case sp.DomainA != "" && sp.DomainB != "" && sp.PinSrc == "" && sp.PinDst == "":
			if inj.w.Routing == nil {
				panic(fmt.Sprintf("faults: %s %s: world built without WithDynamicRouting", sp.Kind, sp.target()))
			}
			if !inj.w.Routing.SessionUp(sp.DomainA, sp.DomainB) {
				panic(fmt.Sprintf("faults: %s: no BGP session %s~%s", sp.Kind, sp.DomainA, sp.DomainB))
			}
		case sp.PinSrc != "" && sp.PinDst != "" && sp.DomainA == "" && sp.DomainB == "":
			if _, ok := inj.w.Graph.Override(sp.PinSrc, sp.PinDst); !ok {
				panic(fmt.Sprintf("faults: %s: no pinned route %s=>%s", sp.Kind, sp.PinSrc, sp.PinDst))
			}
		default:
			panic(fmt.Sprintf("faults: %s: set exactly one of DomainA/DomainB or PinSrc/PinDst", sp.Kind))
		}
	default:
		panic(fmt.Sprintf("faults: unknown kind %d", int(sp.Kind)))
	}
	if sp.ErrorRate < 0 || sp.ErrorRate > 1 || sp.ThrottleRate < 0 || sp.ThrottleRate > 1 {
		panic(fmt.Sprintf("faults: %s %s: rates must be in [0,1]", sp.Kind, sp.target()))
	}
	if sp.Kind == LinkDegrade && sp.CapacityFactor != 0 && (sp.CapacityFactor < 0 || sp.CapacityFactor >= 1) {
		panic(fmt.Sprintf("faults: %s %s: capacity factor must be in (0,1) or 0", sp.Kind, sp.target()))
	}
}

// Restart implements scenario.Pauser: it reconciles every spec with
// the current clock (applying whatever state should hold now) and arms
// the next transition event.
func (inj *Injector) Restart() {
	if !inj.stopped {
		return
	}
	inj.stopped = false
	for _, sp := range inj.specs {
		inj.arm(sp)
	}
}

// StopAll implements scenario.Pauser: pending transition events are
// cancelled so the runner can drain. Applied fault state persists — a
// downed link stays down between workloads.
func (inj *Injector) StopAll() {
	if inj.stopped {
		return
	}
	inj.stopped = true
	for _, sp := range inj.specs {
		if sp.ev != nil {
			inj.eng.Cancel(sp.ev)
			sp.ev = nil
		}
	}
}

// arm reconciles one spec with the clock and schedules its next
// transition; each transition event re-arms.
func (inj *Injector) arm(sp *state) {
	active, next := sp.stateAt(float64(inj.eng.Now()))
	if active != sp.active {
		inj.apply(sp, active)
	}
	if math.IsInf(next, 1) {
		sp.ev = nil
		return
	}
	sp.ev = inj.eng.Schedule(simclock.Time(next), func() {
		sp.ev = nil
		inj.arm(sp)
	})
}

// apply flips one fault's state on the world.
func (inj *Injector) apply(sp *state, active bool) {
	sp.active = active
	switch sp.Kind {
	case LinkDown:
		inj.w.Graph.SetLinkState(sp.From, sp.To, !active)
		inj.w.Graph.SetLinkState(sp.To, sp.From, !active)
		// Both directions of the flap go on the route bus, so push-based
		// subscribers (the scheduler's route cache) learn immediately —
		// the restore included: a healed link must clear its quarantine
		// now, not when some TTL lapses.
		inj.publishLink(active, sp.From, sp.To)
	case LinkDegrade:
		inj.applyDegrade(sp, active)
	case ProviderOutage:
		inj.w.Services[sp.Provider].Down = active
	case ProviderErrors:
		svc := inj.w.Services[sp.Provider]
		if active {
			svc.ErrorRate, svc.ThrottleRate = sp.ErrorRate, sp.ThrottleRate
		} else {
			svc.ErrorRate, svc.ThrottleRate = 0, 0
		}
	case DTNCrash:
		if active {
			inj.w.Daemons[sp.DTN].Crash()
			inj.w.Agents[sp.DTN].Crash()
		} else {
			inj.w.Daemons[sp.DTN].Start()
			inj.w.Agents[sp.DTN].Start()
		}
	case RouteChurn:
		inj.applyChurn(sp, active)
	case LinkSilentLoss:
		// Gray by construction: capacity quietly shrinks by the loss
		// fraction. Nothing is published, no flow dies — existing
		// transfers just slow down, exactly what silent loss does to TCP.
		inj.applySilentLoss(sp, active)
	case ProviderSlow:
		svc := inj.w.Services[sp.Provider]
		if active {
			if svc.SlowFor == nil {
				svc.SlowFor = make(map[string]float64)
			}
			for _, src := range sp.Sources {
				svc.SlowFor[src] = sp.SlowBps
			}
		} else {
			for _, src := range sp.Sources {
				delete(svc.SlowFor, src)
			}
		}
	case DTNDiskSlow:
		if active {
			inj.w.Daemons[sp.DTN].DiskBps = sp.DiskBps
		} else {
			inj.w.Daemons[sp.DTN].DiskBps = 0
		}
	case ProcCrash:
		if inj.control == nil || inj.control.ArmCrash == nil {
			panic(fmt.Sprintf("faults: %s %s: no CrashControl registered", sp.Kind, sp.target()))
		}
		if active {
			occ := sp.Occurrence
			if occ < 1 {
				occ = 1
			}
			inj.control.ArmCrash(sp.CrashPoint, occ)
		} else if inj.control.DisarmCrash != nil {
			inj.control.DisarmCrash(sp.CrashPoint)
		}
	case TornWrite:
		if sp.Journal {
			if inj.control == nil || inj.control.TornJournal == nil {
				panic(fmt.Sprintf("faults: %s %s: no CrashControl registered", sp.Kind, sp.target()))
			}
			inj.control.TornJournal(active)
		} else {
			inj.w.Daemons[sp.DTN].TornWrites = active
		}
	case BitRot:
		if active {
			inj.applyBitRot(sp)
		}
	case DiskFill:
		// Gray storage pressure: a co-tenant occupies FillBytes of the
		// staging volume, modeled as a capacity shrink. No bus event —
		// only headroom observation sees it before pushes start bouncing.
		d := inj.w.Daemons[sp.DTN]
		if active {
			sp.savedDisk = d.Capacity
			if d.Capacity > 0 {
				nc := d.Capacity - sp.FillBytes
				if nc < 1 {
					nc = 1
				}
				d.Capacity = nc
			}
		} else {
			d.Capacity = sp.savedDisk
		}
	case QuotaDrain:
		svc := inj.w.Services[sp.Provider]
		if active {
			sp.drainID = svc.InjectAbandonedSession("faults:quota-drain", sp.DrainBytes)
		} else {
			// The session may already be gone — a scheduler's reclaim pass
			// collecting it early is the mitigation working as intended.
			svc.DropSession(sp.drainID)
			sp.drainID = ""
		}
	case JournalENOSPC:
		if inj.control == nil || inj.control.JournalENOSPC == nil {
			panic(fmt.Sprintf("faults: %s %s: no CrashControl registered", sp.Kind, sp.target()))
		}
		inj.control.JournalENOSPC(active)
	case DTNDrain:
		if active {
			inj.w.Agents[sp.DTN].Drain()
		} else {
			inj.w.Agents[sp.DTN].Undrain()
		}
		// Node-scoped event: any cached route whose path touches the DTN
		// should stop being elected (withdraw) or become eligible again
		// (announce).
		inj.publishLink(active, sp.DTN, "")
	}
	inj.Injected++
	inj.transitions = append(inj.transitions,
		fmt.Sprintf("t=%.3f %s %s active=%v", float64(inj.eng.Now()), sp.Kind, sp.target(), active))
	inj.w.Trace.Emit("fault."+sp.Kind.String(), map[string]any{
		"target": sp.target(), "active": active,
	})
}

// applyChurn flips a routing-plane fault: a BGP session withdraw/
// announce (staged reconvergence, published by the Dynamic layer) or a
// pinned-route flip (published here as a link-scope event). Either way
// the data plane follows: flows riding the vanished adjacency are
// killed, exactly as a withdrawn next hop strands packets mid-path.
func (inj *Injector) applyChurn(sp *state, active bool) {
	if sp.DomainA != "" {
		var err error
		if active {
			err = inj.w.Routing.WithdrawSession(sp.DomainA, sp.DomainB)
		} else {
			err = inj.w.Routing.AnnounceSession(sp.DomainA, sp.DomainB)
		}
		if err != nil {
			panic(fmt.Sprintf("faults: %s %s: %v", sp.Kind, sp.target(), err))
		}
		if active {
			inj.w.Graph.KillDomainBoundaryFlows(sp.DomainA, sp.DomainB)
		}
		return
	}
	inj.w.Graph.SetOverrideEnabled(sp.PinSrc, sp.PinDst, !active)
	if active {
		if hops, ok := inj.w.Graph.Override(sp.PinSrc, sp.PinDst); ok {
			for i := 0; i+1 < len(hops); i++ {
				inj.w.Graph.KillEdgeFlows(hops[i], hops[i+1])
			}
		}
	}
	inj.publishLink(active, sp.PinSrc, sp.PinDst)
}

// publishLink puts a link-scope event on the world's route bus.
func (inj *Injector) publishLink(withdraw bool, from, to string) {
	if inj.w.RouteBus == nil {
		return
	}
	kind := bgppol.EventAnnounce
	if withdraw {
		kind = bgppol.EventWithdraw
	}
	now := float64(inj.eng.Now())
	inj.w.RouteBus.Publish(bgppol.Event{
		Kind: kind, FromNode: from, ToNode: to, At: now, ConvergedBy: now,
	})
}

// applyBitRot corrupts Flips targets at window start: random staged
// chunks on a DTN's disk, or random journal bytes. Draws come from the
// injector's dedicated rot stream, so the same seed decays the same
// bytes. Corruption is silent by construction — no error, no event;
// only checksums can see it.
func (inj *Injector) applyBitRot(sp *state) {
	n := sp.Flips
	if n < 1 {
		n = 1
	}
	if sp.Journal {
		if inj.control == nil || inj.control.FlipJournal == nil {
			panic(fmt.Sprintf("faults: %s %s: no CrashControl registered", sp.Kind, sp.target()))
		}
		for i := 0; i < n; i++ {
			inj.control.FlipJournal(inj.rotRand)
		}
		return
	}
	d := inj.w.Daemons[sp.DTN]
	names := d.StagedNames()
	if len(names) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		name := names[inj.rotRand.Intn(len(names))]
		chunks := d.StagedChunks(name)
		if chunks < 1 {
			continue
		}
		d.RotChunk(name, inj.rotRand.Intn(chunks))
	}
}

// applyDegrade shrinks or restores both directions of the edge.
func (inj *Injector) applyDegrade(sp *state, active bool) {
	fl := inj.w.Graph.Fluid()
	for _, dir := range [][2]string{{sp.From, sp.To}, {sp.To, sp.From}} {
		e, ok := inj.w.Graph.Edge(dir[0], dir[1])
		if !ok {
			continue
		}
		if active {
			if sp.savedCap == nil {
				sp.savedCap = make(map[[2]string]float64)
			}
			sp.savedCap[dir] = e.Link.Capacity
			if sp.CapacityFactor > 0 {
				fl.SetLinkCapacity(e.Link, e.Link.Capacity*sp.CapacityFactor)
			}
			if sp.ExtraLoad > 0 {
				fl.SetLinkLoad(e.Link, sp.ExtraLoad)
			}
		} else {
			if c, ok := sp.savedCap[dir]; ok && sp.CapacityFactor > 0 {
				fl.SetLinkCapacity(e.Link, c)
			}
			if sp.ExtraLoad > 0 {
				fl.SetLinkLoad(e.Link, 0)
			}
		}
	}
}

// applySilentLoss shrinks or restores both directions of the edge by
// the loss fraction — like applyDegrade, but with no bus publish and no
// load change: the degradation is invisible to everything except the
// throughput the link delivers.
func (inj *Injector) applySilentLoss(sp *state, active bool) {
	fl := inj.w.Graph.Fluid()
	for _, dir := range [][2]string{{sp.From, sp.To}, {sp.To, sp.From}} {
		e, ok := inj.w.Graph.Edge(dir[0], dir[1])
		if !ok {
			continue
		}
		if active {
			if sp.savedCap == nil {
				sp.savedCap = make(map[[2]string]float64)
			}
			sp.savedCap[dir] = e.Link.Capacity
			fl.SetLinkCapacity(e.Link, e.Link.Capacity*(1-sp.LossRate))
		} else if c, ok := sp.savedCap[dir]; ok {
			fl.SetLinkCapacity(e.Link, c)
		}
	}
}

// Transitions returns the applied-transition log, one line per state
// change, in order. The log is deterministic for a given seed and
// schedule.
func (inj *Injector) Transitions() []string {
	out := make([]string, len(inj.transitions))
	copy(out, inj.transitions)
	return out
}

// CannedSchedule is the demo schedule the chaos example and
// `detourd -chaos` replay: a recurring flap of the CANARIE
// Vancouver–Edmonton leg (the UBC detour's first hop), a degradation
// of the PacificWave hand-off, a Google Drive error burst, a Dropbox
// outage, and one UAlberta DTN crash.
func CannedSchedule() []Spec {
	return []Spec{
		{Kind: LinkDown, From: "vncv1", To: "edmn1", Start: 60, Duration: 20, Period: 300},
		{Kind: LinkDegrade, From: "vncv1", To: "pacificwave", Start: 45, Duration: 60, Period: 240, CapacityFactor: 0.4},
		{Kind: ProviderErrors, Provider: scenario.GoogleDrive, Start: 120, Duration: 45, Period: 400, ErrorRate: 0.25, ThrottleRate: 0.15},
		{Kind: ProviderOutage, Provider: scenario.Dropbox, Start: 200, Duration: 30, Period: 600},
		{Kind: DTNCrash, DTN: scenario.UAlberta, Start: 350, Duration: 40},
	}
}

// GrayfailSchedule is the gray-failure scenario the grayfail example
// and `detourd -grayfail` replay. Nothing in it (bar one short
// hard-error burst so the retry budget has something to meter) ever
// returns an error: the CANARIE Vancouver–Edmonton leg silently sheds
// half its goodput for a minute, then Google Drive silently throttles
// ingestion from the UAlberta DTN for thirty-five minutes (the
// favorite UBC detour's second hop crawls while every request still
// 200s), and finally UAlberta's staging disk degrades for thirty
// minutes (the same detour's first hop crawls). The long windows are
// the point: a gray failure lasts until someone notices, and nothing
// in the ablation ever does.
func GrayfailSchedule() []Spec {
	return []Spec{
		{Kind: LinkSilentLoss, From: "vncv1", To: "edmn1", LossRate: 0.5,
			Start: 60, Duration: 60},
		{Kind: ProviderSlow, Provider: scenario.GoogleDrive,
			Sources: []string{scenario.UAlberta}, SlowBps: 0.05 * scenario.MBps,
			Start: 150, Duration: 2100},
		{Kind: ProviderErrors, Provider: scenario.GoogleDrive,
			Start: 650, Duration: 120, ErrorRate: 0.35, ThrottleRate: 0.2},
		{Kind: DTNDiskSlow, DTN: scenario.UAlberta, DiskBps: 0.15 * scenario.MBps,
			Start: 2700, Duration: 1800},
	}
}

// CrashsafeSchedule is the storage-decay scenario the crashsafe
// example and `detourd -crashsafe` replay alongside the control-plane
// crash sweep: UAlberta's staging disk loses write atomicity early (a
// daemon crash now leaves torn, bit-damaged partials instead of atomic
// renames), the DTN crashes mid-fleet to exercise exactly that, and
// staged bytes silently rot twice while transfers are in flight — the
// chunk manifest must catch and repair every flip.
func CrashsafeSchedule() []Spec {
	return []Spec{
		{Kind: TornWrite, DTN: scenario.UAlberta, Start: 10, Duration: 3600},
		{Kind: DTNCrash, DTN: scenario.UAlberta, Start: 120, Duration: 30},
		{Kind: BitRot, DTN: scenario.UAlberta, Start: 300, Duration: 5, Period: 240, Repeat: 2, Flips: 2},
	}
}

// PressureSchedule is the storage-pressure scenario the pressure
// example and `detourd -pressure` replay against a world with finite
// staging disks and a finite Google Drive quota: a co-tenant fills
// most of UAlberta's staging volume early (the favorite detour's hop-1
// disk), then UMich's too while UAlberta is still full (so for a while
// every detour is pressured at once), an abandoned client drains a
// slice of the shared Google Drive quota for most of the run, and the
// control-plane journal volume fills mid-run. Nothing errors until
// bytes actually fail to fit: the windows are long because storage
// pressure is a slow fault — it lasts until something evicts, spills,
// or reclaims.
func PressureSchedule() []Spec {
	return []Spec{
		{Kind: DiskFill, DTN: scenario.UAlberta, FillBytes: 450e6,
			Start: 60, Duration: 1800},
		{Kind: DiskFill, DTN: scenario.UMich, FillBytes: 450e6,
			Start: 900, Duration: 1200},
		{Kind: QuotaDrain, Provider: scenario.GoogleDrive, DrainBytes: 600e6,
			Start: 120, Duration: 2400},
		{Kind: JournalENOSPC, Start: 240, Duration: 1560},
	}
}

// ChurnSchedule is the reconvergence storm the churn example and
// `detourd -churn` replay against a world built WithDynamicRouting: the
// paper's PacificWave hand-off flips away and back, the CANARIE–Google
// and ISP–Google peerings withdraw (research and commodity paths to
// Google reconverge through Internet2), the cross-border
// CANARIE–Internet2 session flaps, Cybera's only uplink withdraws
// (UAlberta unreachable until re-announce — parked transfers absorb the
// blackhole), a plain data-plane flap exercises the push-invalidation
// restore path, and UAlberta drains for maintenance mid-storm.
func ChurnSchedule() []Spec {
	return []Spec{
		{Kind: RouteChurn, PinSrc: scenario.UBC, PinDst: scenario.GDriveDC, Start: 60, Duration: 50, Period: 210},
		{Kind: RouteChurn, DomainA: "CANARIE", DomainB: "Google", Start: 95, Duration: 45, Period: 260},
		{Kind: RouteChurn, DomainA: "ISP", DomainB: "Google", Start: 120, Duration: 50, Period: 280},
		{Kind: RouteChurn, DomainA: "CANARIE", DomainB: "Internet2", Start: 175, Duration: 40, Period: 330},
		{Kind: RouteChurn, DomainA: "Cybera", DomainB: "CANARIE", Start: 240, Duration: 35, Period: 360},
		{Kind: LinkDown, From: "vncv1", To: "edmn1", Start: 40, Duration: 15, Period: 180},
		{Kind: DTNDrain, DTN: scenario.UAlberta, Start: 300, Duration: 60, Period: 450},
	}
}
