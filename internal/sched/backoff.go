package sched

import "math"

// Backoff shapes retry delays: capped exponential growth with
// proportional jitter, the standard shape for not synchronizing a
// fleet's retries into waves.
type Backoff struct {
	// Base is the first delay in seconds (default 0.05).
	Base float64
	// Max caps the delay (default 2).
	Max float64
	// Factor multiplies the delay per attempt (default 2).
	Factor float64
	// Jitter is the fraction of the delay randomized away: 0 is fully
	// deterministic, 0.5 (the default) spreads delays over
	// [0.5d, d).
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 0.05
	}
	if b.Max <= 0 {
		b.Max = 2
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// Delay returns the delay before retry number attempt (1-based: the
// delay after the first failure is Delay(1, ·)). u is a uniform [0,1)
// draw supplied by the caller, which keeps this type stateless and the
// caller in charge of rng locking and seeding.
func (b Backoff) Delay(attempt int, u float64) float64 {
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base * math.Pow(b.Factor, float64(attempt-1))
	if d > b.Max {
		d = b.Max
	}
	return d * (1 - b.Jitter*u)
}
