package sched

import (
	"math/rand"
	"sync"

	"detournet/internal/core"
	"detournet/internal/detourselect"
)

// CacheKey identifies one route decision. Size enters through a coarse
// bucket because the best route depends on file size (the paper's
// central size-dependence result), but caching per exact byte count
// would never hit.
type CacheKey struct {
	Client   string
	Provider string
	// SizeBucket is a base-4 magnitude bucket of the file size (see
	// SizeBucket).
	SizeBucket int
}

// SizeBucket buckets a byte count: 0 for sub-megabyte files, then one
// bucket per 4x of size (1–4 MB, 4–16 MB, 16–64 MB, ...), capped at 8.
// Within a bucket the ranking of routes is stable even though absolute
// times differ.
func SizeBucket(bytes float64) int {
	mb := bytes / 1e6
	b := 0
	for mb >= 1 && b < 8 {
		mb /= 4
		b++
	}
	return b
}

// KeyFor builds the cache key for one transfer.
func KeyFor(client, provider string, size float64) CacheKey {
	return CacheKey{Client: client, Provider: provider, SizeBucket: SizeBucket(size)}
}

// RouteHealth is the cache's view of one candidate route.
type RouteHealth int

const (
	// RouteHealthy: eligible for election and failover.
	RouteHealthy RouteHealth = iota
	// RouteConverging: a routing event touched the route's path and the
	// control plane has not reconverged yet. Distinct from quarantine —
	// the route did nothing wrong, the ground is moving under it. It is
	// skipped for election but cleared the moment a matching announce
	// arrives (or the hold expires).
	RouteConverging
	// RouteQuarantined: the route failed a transfer and is benched for
	// the quarantine TTL.
	RouteQuarantined
)

func (h RouteHealth) String() string {
	switch h {
	case RouteConverging:
		return "converging"
	case RouteQuarantined:
		return "quarantined"
	default:
		return "healthy"
	}
}

// PathHop is one node of a candidate route's forwarding path, kept so
// routing events can be matched against cached decisions.
type PathHop struct {
	Node   string
	Domain string
}

// RouteEvent is the scheduler-facing form of a routing-plane event (see
// bgppol.Event): a withdraw or announce scoped either to a BGP session
// (DomainA/DomainB) or to a link or node (FromNode, and optionally
// ToNode).
type RouteEvent struct {
	Withdraw         bool
	DomainA, DomainB string
	FromNode, ToNode string
	// At is the event's virtual timestamp. ApplyRouteEvent uses it as
	// "now" so it never has to read the clock — events are published from
	// inside simulation workloads, where calling back into the executor's
	// clock would deadlock. Zero falls back to the cache clock.
	At float64
	// ConvergedBy is when the last domain will have adopted the change;
	// converging holds last at least until then.
	ConvergedBy float64
}

// entry is one cached decision plus the online state that refines it.
type entry struct {
	route      core.Route
	expires    float64
	candidates []core.Route
	// bandit keeps per-route throughput estimates from completed
	// transfers, so repeated traffic refreshes the decision without
	// re-probing.
	bandit *detourselect.Bandit
	// quarantined benches failed detours until the given clock time.
	quarantined map[core.Route]float64
	// converging holds routes whose paths a withdraw touched, until the
	// given clock time or a matching announce.
	converging map[core.Route]float64
	// paths are the forwarding paths the planner resolved per candidate,
	// for event matching.
	paths map[core.Route][]PathHop
}

// RouteCache caches route decisions with TTL expiry, failure-driven
// invalidation, and bandit-driven refresh. It is safe for concurrent
// use.
type RouteCache struct {
	mu          sync.Mutex
	ttl         float64
	quarantine  float64
	now         func() float64
	rng         *rand.Rand
	entries     map[CacheKey]*entry
	// weight, when set, multiplies each candidate's bandit score at
	// election time — the health layer's probation down-weighting hook.
	weight      func(core.Route) float64
	hits        int64
	misses      int64
	invalidates int64
	converges   int64 // routes marked converging by events
	announces   int64 // routes cleared by announce events
}

// NewRouteCache builds a cache. ttl and quarantineTTL are in the
// clock's seconds; now is the clock; rng feeds the bandits.
func NewRouteCache(ttl, quarantineTTL float64, now func() float64, rng *rand.Rand) *RouteCache {
	if ttl <= 0 {
		panic("sched: non-positive cache TTL")
	}
	if now == nil {
		panic("sched: RouteCache needs a clock")
	}
	if quarantineTTL <= 0 {
		quarantineTTL = ttl
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &RouteCache{
		ttl: ttl, quarantine: quarantineTTL, now: now, rng: rng,
		entries: make(map[CacheKey]*entry),
	}
}

// SetWeight installs the selection-weight hook applied to every
// entry's bandit at election time (see detourselect.Bandit.Weight).
// Entries created before the call pick the hook up too. nil removes it.
func (c *RouteCache) SetWeight(w func(core.Route) float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.weight = w
	for _, e := range c.entries {
		if e.bandit != nil {
			e.bandit.Weight = w
		}
	}
}

// Lookup returns the cached route for a key. A hit means the caller
// skips probing entirely — including when the cached detour is
// quarantined, in which case the entry has already been switched to
// direct.
func (c *RouteCache) Lookup(k CacheKey) (core.Route, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || c.now() >= e.expires {
		if ok {
			delete(c.entries, k)
		}
		c.misses++
		return core.Route{}, false
	}
	c.hits++
	return e.route, true
}

// LookupStale returns the cached route for a key even when the entry's
// TTL has lapsed, without deleting it — brownout mode's degraded read:
// a stale decision beats paying a probe while the scheduler is
// overloaded. fresh reports whether the entry was still within TTL.
// Hit/miss counters are untouched; the caller accounts for stale serves
// itself.
func (c *RouteCache) LookupStale(k CacheKey) (route core.Route, fresh, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, present := c.entries[k]
	if !present {
		return core.Route{}, false, false
	}
	return e.route, c.now() < e.expires, true
}

// Insert stores a fresh decision for the TTL. candidates (may be nil)
// are the routes the planner considered; they seed the bandit that
// refines the decision from live traffic.
func (c *RouteCache) Insert(k CacheKey, route core.Route, candidates []core.Route) {
	c.InsertWithPaths(k, route, candidates, nil)
}

// InsertWithPaths is Insert plus the forwarding path of each candidate,
// enabling push-based invalidation: ApplyRouteEvent matches events
// against these hops instead of waiting for TTL expiry or a failed
// transfer.
func (c *RouteCache) InsertWithPaths(k CacheKey, route core.Route, candidates []core.Route, paths map[core.Route][]PathHop) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &entry{
		route:       route,
		expires:     c.now() + c.ttl,
		candidates:  append([]core.Route(nil), candidates...),
		quarantined: make(map[core.Route]float64),
		converging:  make(map[core.Route]float64),
		paths:       paths,
	}
	if len(e.candidates) > 0 {
		e.bandit = detourselect.NewBanditRand(e.candidates, c.rng)
		e.bandit.Weight = c.weight
	}
	c.entries[k] = e
}

// Observe feeds a completed transfer back into the key's bandit and
// lets the observed throughputs re-elect the cached route — repeated
// traffic keeps the decision fresh without new probes.
func (c *RouteCache) Observe(k CacheKey, route core.Route, sizeBytes, seconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || e.bandit == nil {
		return
	}
	e.bandit.Observe(route, sizeBytes, seconds)
	now := c.now()
	best, bestT := e.route, -1.0
	for _, r := range e.candidates {
		if c.benched(e, r, now) {
			continue
		}
		if t := e.bandit.Score(r); t > bestT {
			best, bestT = r, t
		}
	}
	if bestT > 0 {
		e.route = best
	}
}

// benched reports whether r is quarantined or converging at now.
// Callers hold c.mu.
func (c *RouteCache) benched(e *entry, r core.Route, now float64) bool {
	if until, q := e.quarantined[r]; q && now < until {
		return true
	}
	if until, cv := e.converging[r]; cv && now < until {
		return true
	}
	return false
}

// Invalidate benches a failed route for the quarantine TTL. If it was
// the cached decision, the entry switches to direct immediately — the
// fleet stops sending traffic into a dead DTN without waiting for
// expiry. Invalidating a direct route drops the whole entry (the next
// job re-plans).
func (c *RouteCache) Invalidate(k CacheKey, failed core.Route) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return
	}
	c.invalidates++
	if failed.Kind == core.Direct {
		delete(c.entries, k)
		return
	}
	e.quarantined[failed] = c.now() + c.quarantine
	if e.route == failed {
		e.route = core.DirectRoute
	}
}

// Candidates returns the key's non-quarantined candidate routes (nil
// when the key is absent) — the failover pool a job can switch to
// mid-flight when its chosen route dies underneath it.
func (c *RouteCache) Candidates(k CacheKey) []core.Route {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return nil
	}
	now := c.now()
	out := make([]core.Route, 0, len(e.candidates))
	for _, r := range e.candidates {
		if c.benched(e, r, now) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Health reports the cache's view of one route under a key.
func (c *RouteCache) Health(k CacheKey, r core.Route) RouteHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return RouteHealthy
	}
	now := c.now()
	if until, q := e.quarantined[r]; q && now < until {
		return RouteQuarantined
	}
	if until, cv := e.converging[r]; cv && now < until {
		return RouteConverging
	}
	return RouteHealthy
}

// pathTouched matches one candidate's forwarding path against an
// event: a node/link event matches a hop (or consecutive hop pair, in
// either direction), a session event matches a domain-boundary
// crossing in either direction.
func pathTouched(hops []PathHop, ev RouteEvent) bool {
	if ev.FromNode != "" {
		for i, h := range hops {
			if h.Node != ev.FromNode && (ev.ToNode == "" || h.Node != ev.ToNode) {
				continue
			}
			if ev.ToNode == "" {
				return true
			}
			var prev, next string
			if i > 0 {
				prev = hops[i-1].Node
			}
			if i+1 < len(hops) {
				next = hops[i+1].Node
			}
			other := ev.ToNode
			if h.Node == ev.ToNode {
				other = ev.FromNode
			}
			if prev == other || next == other {
				return true
			}
		}
		return false
	}
	if ev.DomainA != "" {
		for i := 0; i+1 < len(hops); i++ {
			a, b := hops[i].Domain, hops[i+1].Domain
			if (a == ev.DomainA && b == ev.DomainB) || (a == ev.DomainB && b == ev.DomainA) {
				return true
			}
		}
	}
	return false
}

// ApplyRouteEvent is push-based invalidation: every cached candidate
// whose stored forwarding path the event touches is marked converging
// (withdraw) or restored to health (announce — converging and
// quarantine both clear, the fix for restored links rotting in
// quarantine until TTL). A withdraw that hits the elected route
// re-elects the best healthy candidate immediately, falling back to
// direct.
func (c *RouteCache) ApplyRouteEvent(ev RouteEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := ev.At
	if now == 0 {
		now = c.now()
	}
	hold := now + c.quarantine
	if ev.ConvergedBy > hold {
		hold = ev.ConvergedBy
	}
	for _, e := range c.entries {
		for r, hops := range e.paths {
			if !pathTouched(hops, ev) {
				continue
			}
			if ev.Withdraw {
				e.converging[r] = hold
				c.converges++
				if e.route == r {
					c.invalidates++
					e.route = c.electLocked(e, now)
				}
			} else {
				delete(e.converging, r)
				delete(e.quarantined, r)
				c.announces++
			}
		}
	}
}

// electLocked picks the best unbenched candidate by observed
// throughput, defaulting to direct. Callers hold c.mu.
func (c *RouteCache) electLocked(e *entry, now float64) core.Route {
	best, bestT := core.DirectRoute, -1.0
	for _, r := range e.candidates {
		if c.benched(e, r, now) {
			continue
		}
		t := 0.0
		if e.bandit != nil {
			t = e.bandit.Score(r)
		}
		if t > bestT {
			best, bestT = r, t
		}
	}
	return best
}

// Len reports live (possibly expired-but-unswept) entries.
func (c *RouteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters returns lifetime hits, misses, and invalidations.
func (c *RouteCache) Counters() (hits, misses, invalidations int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidates
}

// EventCounters returns lifetime push-invalidation effects: routes
// marked converging by withdraws and routes restored by announces.
func (c *RouteCache) EventCounters() (converges, announces int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.converges, c.announces
}

// HitRate is hits/(hits+misses), 0 before any lookup.
func (c *RouteCache) HitRate() float64 {
	h, m, _ := c.Counters()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
