package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); !almost(m, 2.5) {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
	if m := Mean([]float64{7}); !almost(m, 7) {
		t.Fatalf("Mean = %v, want 7", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Mean(nil)
}

func TestStdDev(t *testing.T) {
	// Known value: sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %v, want ~2.138", got)
	}
	if s := StdDev([]float64{42}); s != 0 {
		t.Fatalf("StdDev of singleton = %v, want 0", s)
	}
	if s := StdDev([]float64{3, 3, 3}); !almost(s, 0) {
		t.Fatalf("StdDev of constants = %v, want 0", s)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if m := Median(xs); !almost(m, 4) {
		t.Fatalf("Median = %v, want 4", m)
	}
	if m := Median([]float64{2, 8, 5}); !almost(m, 5) {
		t.Fatalf("Median = %v, want 5", m)
	}
	// Median must not mutate its input.
	if xs[0] != 5 {
		t.Fatal("Median mutated input")
	}
}

func TestLastN(t *testing.T) {
	runs := []float64{100, 90, 10, 10, 10, 10, 10} // two warm-ups
	s := LastN(runs, 5)
	if !almost(s.Mean, 10) || !almost(s.StdDev, 0) || s.N != 5 {
		t.Fatalf("LastN = %+v", s)
	}
	// Shorter input keeps everything.
	s = LastN([]float64{4, 6}, 5)
	if !almost(s.Mean, 5) || s.N != 2 {
		t.Fatalf("LastN short = %+v", s)
	}
}

func TestPaperSummaryDropsFirstTwoOfSeven(t *testing.T) {
	runs := []float64{999, 999, 1, 2, 3, 4, 5}
	s := PaperSummary(runs)
	if !almost(s.Mean, 3) {
		t.Fatalf("PaperSummary mean = %v, want 3", s.Mean)
	}
	if s.N != 5 {
		t.Fatalf("PaperSummary N = %d, want 5", s.N)
	}
}

func TestRelativeChange(t *testing.T) {
	// Paper Table II, 10 MB: direct 9.46s, via UAlberta 6.47s => -31.6%.
	got := RelativeChange(9.46, 6.47)
	if math.Abs(got-(-31.607)) > 0.01 {
		t.Fatalf("RelativeChange = %v", got)
	}
	if s := FormatRelative(got); s != "-31.61%" {
		t.Fatalf("FormatRelative = %q", s)
	}
	if s := FormatRelative(RelativeChange(9.46, 15.41)); s != "+62.90%" {
		t.Fatalf("FormatRelative = %q", s)
	}
}

func TestIntervalOverlap(t *testing.T) {
	// Paper Table IV example: Dropbox direct 177.89±36.03 overlaps
	// via-UAlberta 237.78±56.1 (213.92 > 181.68).
	direct := Summary{Mean: 177.89, StdDev: 36.03}
	ualb := Summary{Mean: 237.78, StdDev: 56.1}
	if !direct.Overlaps(ualb) {
		t.Fatal("paper's Table IV overlap example must overlap")
	}
	a := Summary{Mean: 10, StdDev: 1}
	b := Summary{Mean: 20, StdDev: 1}
	if a.Overlaps(b) {
		t.Fatal("disjoint intervals reported overlapping")
	}
	if !a.Overlaps(a) {
		t.Fatal("interval must overlap itself")
	}
}

func TestPropertyMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStdDevNonNegativeAndShiftInvariant(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if math.IsNaN(shift) || math.Abs(shift) > 1e6 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		s1 := StdDev(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		s2 := StdDev(shifted)
		return s1 >= 0 && math.Abs(s1-s2) < 1e-6*(1+s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOverlapSymmetric(t *testing.T) {
	f := func(m1, s1, m2, s2 float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		a := Summary{Mean: clamp(m1), StdDev: math.Abs(clamp(s1))}
		b := Summary{Mean: clamp(m2), StdDev: math.Abs(clamp(s2))}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"singleton", []float64{7}, 0.99, 7},
		{"min", []float64{3, 1, 2}, 0, 1},
		{"max", []float64{3, 1, 2}, 1, 3},
		{"median-odd", []float64{5, 1, 9, 3, 7}, 0.5, 5},
		{"median-even", []float64{4, 1, 3, 2}, 0.5, 2.5},
		{"interpolated", []float64{1, 2, 3, 4}, 0.25, 1.75},
		{"p90-of-ten", []float64{10, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0.9, 9.1},
		{"unsorted-input", []float64{30, 10, 20}, 0.5, 20},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Quantile(c.xs, c.q); !almost(got, c.want) {
				t.Fatalf("Quantile(%v, %v) = %v, want %v", c.xs, c.q, got, c.want)
			}
		})
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileMatchesMedian(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Median's (a+b)/2 overflows near MaxFloat64 where the
			// interpolated form does not; stay in a realistic range.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return almost(Quantile(xs, 0.5), Median(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { Quantile(nil, 0.5) },
		"q-low":  func() { Quantile([]float64{1}, -0.1) },
		"q-high": func() { Quantile([]float64{1}, 1.1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestJainFairness(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"all-equal", []float64{5, 5, 5, 5}, 1},
		{"singleton", []float64{42}, 1},
		{"one-hog", []float64{10, 0, 0, 0}, 0.25},
		{"two-of-four", []float64{1, 1, 0, 0}, 0.5},
		{"known-mix", []float64{1, 2, 3}, 36.0 / 42.0},
		{"all-zero", []float64{0, 0, 0}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := JainFairness(c.xs); !almost(got, c.want) {
				t.Fatalf("JainFairness(%v) = %v, want %v", c.xs, got, c.want)
			}
		})
	}
}

func TestJainFairnessBoundsAndScaleInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				// Squaring near-max floats overflows; the index is for
				// byte counts, not astronomy.
				continue
			}
			xs = append(xs, math.Abs(x))
		}
		if len(xs) == 0 {
			return true
		}
		j := JainFairness(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * 3.5
		}
		return math.Abs(JainFairness(scaled)-j) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
