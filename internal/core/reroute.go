// Make-before-break rerouting support: when routing churn withdraws an
// in-flight transfer's path, the transfer establishes the best
// surviving route, reattaches its checkpoint (resume.go machinery),
// and only then abandons the old flows. The ranking below is what
// bounds the damage: a reroute that keeps the checkpoint's DTN re-sends
// at most the one chunk that was in flight when the path died.
package core

import "errors"

// ErrNoRoute is the typed parking error: no usable route to the
// provider exists right now — neither direct nor via any DTN. A parked
// transfer holds its checkpoint and resumes when a route is
// re-announced. (The substring "no route" is load-bearing for
// classification across the agent wire protocol.)
var ErrNoRoute = errors.New("core: no route to provider")

// RerouteOrder ranks the routes a rerouting transfer should try, most
// progress-preserving first:
//
//  1. the current route — if it is usable again, no reroute at all;
//  2. the DTN already holding the checkpoint's hop-1 bytes — staged
//     progress is disk-local to that DTN, so any other choice forfeits
//     it;
//  3. direct — the checkpoint's provider session token is server-side
//     state, portable across any path to the provider;
//  4. the remaining candidates in the given order.
//
// Duplicates and empty detours are dropped; the caller filters for
// usability.
func RerouteOrder(ck *Checkpoint, current Route, candidates []Route) []Route {
	seen := make(map[Route]bool, len(candidates)+3)
	out := make([]Route, 0, len(candidates)+3)
	add := func(r Route) {
		if r.Kind == Detour && r.Via == "" {
			return
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	add(current)
	if ck != nil && ck.Hop1Via != "" && ck.Hop1High > 0 {
		add(ViaRoute(ck.Hop1Via))
	}
	add(DirectRoute)
	for _, r := range candidates {
		add(r)
	}
	return out
}
