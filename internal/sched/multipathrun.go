// Multipath replay: the striped-vs-single comparison harness behind
// `make multipath`, the examples/multipath program, and detourd's
// -multipath mode. One RunMultipath call builds a world, measures every
// site/provider pair over each single route (direct, via each DTN), and
// then re-runs the same transfer striped across direct + detours
// through the scheduler's JobMultipath mode — all sequentially in one
// simulation, so every measurement sees an idle network and the same
// seeded topology.
//
// The paper's geometry predicts both outcomes this harness exposes:
// sites whose direct and detour paths bottleneck on disjoint links
// (UBC) gain nearly the sum of the lanes, while sites capped by a
// shared last-mile or access link (UCLA, Purdue) cannot gain at all —
// striping there must merely not lose (the ≤1.05× guard).
//
// Determinism: Workers is 1, the only randomness is the world seed, and
// the renderers iterate sorted data. Same seed ⇒ byte-identical report.
package sched

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"detournet/internal/core"
	"detournet/internal/faults"
	"detournet/internal/scenario"
)

// MultipathOptions configures one striped-vs-single replay.
type MultipathOptions struct {
	// Seed drives the world build.
	Seed int64
	// Size is the bytes per transfer (default 96 MB = 12 default
	// chunks, enough for every lane to carry several).
	Size float64
	// MaxPaths caps lanes per striped transfer (default 3: direct + 2
	// detours).
	MaxPaths int
}

// SingleLeg is one single-route baseline measurement.
type SingleLeg struct {
	Route   string
	Seconds float64
	Err     error
}

// PairOutcome compares one (client, provider) pair across modes.
type PairOutcome struct {
	Client, Provider string
	// Singles are the per-route baselines, in scenario.Routes() order.
	Singles []SingleLeg
	// BestRoute/BestSeconds is the fastest successful baseline.
	BestRoute   string
	BestSeconds float64
	// Striped is the JobMultipath result (Multipath report attached).
	Striped Result
	// Speedup is BestSeconds / striped seconds (>1 = striping won).
	Speedup float64
}

// MultipathOutcome is one replay's complete, deterministic result set.
type MultipathOutcome struct {
	Size           float64
	Pairs          []PairOutcome
	Stats          Stats
	VirtualSeconds float64
}

// BestSpeedup returns the replay's largest per-pair speedup.
func (o MultipathOutcome) BestSpeedup() float64 {
	best := 0.0
	for _, pr := range o.Pairs {
		if pr.Speedup > best {
			best = pr.Speedup
		}
	}
	return best
}

// WorstSpeedup returns the replay's smallest per-pair speedup — the
// number the ≤1.05×-worse guard is about.
func (o MultipathOutcome) WorstSpeedup() float64 {
	worst := 0.0
	for i, pr := range o.Pairs {
		if i == 0 || pr.Speedup < worst {
			worst = pr.Speedup
		}
	}
	return worst
}

// RunMultipath replays the comparison once over every client/provider
// pair. See the package comment.
func RunMultipath(o MultipathOptions) MultipathOutcome {
	if o.Size <= 0 {
		o.Size = 96e6
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 3
	}
	w := scenario.Build(o.Seed)
	exec := NewSimExecutor(w)
	defer exec.Close()

	// Results are read back mid-loop (after each Drain, before Close),
	// so the map needs its own lock: OnResult fires on the worker
	// goroutine.
	var resMu sync.Mutex
	results := make(map[string]Result)
	cfg := Config{
		Workers:  1, // sequential ⇒ deterministic
		Executor: exec, Planner: exec,
		Now:               exec.VirtualNow,
		Sleep:             exec.SleepVirtual,
		MultipathMaxPaths: o.MaxPaths,
		OnResult: func(r Result) {
			resMu.Lock()
			results[r.Job.Name] = r
			resMu.Unlock()
		},
	}
	s := New(cfg)
	s.Start()

	out := MultipathOutcome{Size: o.Size}
	for _, client := range scenario.Clients {
		for _, provider := range scenario.ProviderNames {
			pr := PairOutcome{Client: client, Provider: provider}
			// Single-route baselines, driven straight through the
			// executor: no queueing, no planning — pure path capacity.
			for ri, route := range scenario.Routes() {
				name := fmt.Sprintf("base-%s-%s-%d.bin", client, provider, ri)
				sec, err := exec.Execute(Job{
					Tenant: "mp", Client: client, Provider: provider,
					Name: name, Size: o.Size,
				}, route)
				leg := SingleLeg{Route: route.String(), Seconds: sec, Err: err}
				pr.Singles = append(pr.Singles, leg)
				if err == nil && (pr.BestSeconds == 0 || sec < pr.BestSeconds) {
					pr.BestRoute, pr.BestSeconds = leg.Route, sec
				}
			}
			// The striped run, through the control plane.
			name := fmt.Sprintf("mp-%s-%s.bin", client, provider)
			if err := s.Submit(Job{
				Tenant: "mp", Client: client, Provider: provider,
				Name: name, Size: o.Size, Mode: JobMultipath,
			}); err != nil {
				panic(err)
			}
			s.Drain()
			resMu.Lock()
			pr.Striped = results[name]
			resMu.Unlock()
			if pr.Striped.Err == nil && pr.Striped.Seconds > 0 && pr.BestSeconds > 0 {
				pr.Speedup = pr.BestSeconds / pr.Striped.Seconds
			}
			out.Pairs = append(out.Pairs, pr)
		}
	}
	out.Stats = s.Stats()
	s.Close()
	out.VirtualSeconds = exec.VirtualNow()
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].Client != out.Pairs[j].Client {
			return out.Pairs[i].Client < out.Pairs[j].Client
		}
		return out.Pairs[i].Provider < out.Pairs[j].Provider
	})
	return out
}

// MultipathChurnOutcome is the churn leg: one striped transfer driven
// through the faults.ChurnSchedule storm.
type MultipathChurnOutcome struct {
	Result         Result
	Stats          Stats
	Transitions    []string
	VirtualSeconds float64
}

// WithinResendBound reports whether every path's re-sent bytes stayed
// within the promise: at most one chunk per failure the churn inflicted
// on that path (a path that never failed must have re-sent nothing).
func (o MultipathChurnOutcome) WithinResendBound() bool {
	rep := o.Result.Multipath
	if rep == nil {
		return false
	}
	for _, pr := range rep.Paths {
		if pr.Rewritten > rep.Chunk*float64(pr.Failures) {
			return false
		}
	}
	return true
}

// RunMultipathChurn drives one large striped UBC->GoogleDrive transfer
// into the reconvergence storm (faults.ChurnSchedule: the first
// CANARIE~Google withdraw lands at t=60, mid-transfer) and reports how
// the chunk scheduler absorbed it.
func RunMultipathChurn(seed int64, size float64) MultipathChurnOutcome {
	if size <= 0 {
		size = 480e6
	}
	w := scenario.Build(seed, scenario.WithDynamicRouting())
	inj := faults.NewInjector(w, seed, faults.ChurnSchedule()...)
	exec := NewSimExecutor(w)
	defer exec.Close()

	var results []Result
	cfg := Config{
		Workers:  1,
		Executor: exec, Planner: exec,
		Now:      exec.VirtualNow,
		Sleep:    exec.SleepVirtual,
		OnResult: func(r Result) { results = append(results, r) },
	}
	s := New(cfg)
	s.Start()
	if err := s.Submit(Job{
		Tenant: "mp-churn", Client: scenario.UBC,
		Provider: scenario.GoogleDrive,
		Name:     "mp-churn.bin", Size: size, Mode: JobMultipath,
	}); err != nil {
		panic(err)
	}
	s.Drain()
	st := s.Stats()
	s.Close()
	out := MultipathChurnOutcome{
		Stats:          st,
		Transitions:    inj.Transitions(),
		VirtualSeconds: exec.VirtualNow(),
	}
	if len(results) > 0 {
		out.Result = results[0]
	}
	return out
}

// WriteMultipathReport renders the deterministic comparison report the
// multipath example and detourd's -multipath mode print.
func WriteMultipathReport(out io.Writer, o MultipathOutcome, churn MultipathChurnOutcome) {
	fmt.Fprintf(out, "Multipath: %d site/provider pairs, %.0f MB each, striped across direct + detours\n",
		len(o.Pairs), o.Size/1e6)
	for _, pr := range o.Pairs {
		fmt.Fprintf(out, "%s -> %s\n", pr.Client, pr.Provider)
		for _, leg := range pr.Singles {
			if leg.Err != nil {
				fmt.Fprintf(out, "  single %-16s FAILED: %v\n", leg.Route, leg.Err)
				continue
			}
			fmt.Fprintf(out, "  single %-16s %7.1fs  %6.2f MB/s\n",
				leg.Route, leg.Seconds, o.Size/leg.Seconds/1e6)
		}
		st := pr.Striped
		if st.Err != nil {
			fmt.Fprintf(out, "  striped FAILED: %v\n", st.Err)
			continue
		}
		fmt.Fprintf(out, "  striped %2d paths %6.1fs  %6.2f MB/s  %.2fx best single (%s)\n",
			len(st.Multipath.Paths), st.Seconds, o.Size/st.Seconds/1e6, pr.Speedup, pr.BestRoute)
		for _, p := range st.Multipath.Paths {
			fmt.Fprintf(out, "    path %d %-16s %2d chunks  %6.1f MB  %6.2f MB/s\n",
				p.ID, "["+p.Route+"]", len(p.Chunks), p.Bytes/1e6, p.Rate()/1e6)
		}
	}
	fmt.Fprintf(out, "best speedup %.2fx, worst %.2fx (guard: never below 0.95x)\n",
		o.BestSpeedup(), o.WorstSpeedup())
	fmt.Fprintf(out, "scheduler: %d striped jobs, %d hedged chunks, %d resent chunks, %.1f MB duplicated, fairness via per-path reports\n",
		o.Stats.MultipathJobs, o.Stats.MultipathHedged, o.Stats.MultipathResent,
		o.Stats.MultipathDuplicateBytes/1e6)

	fmt.Fprintln(out, "churn leg: one striped transfer vs the reconvergence storm")
	res := churn.Result
	if res.Err != nil {
		fmt.Fprintf(out, "  FAILED: %v\n", res.Err)
		return
	}
	rep := res.Multipath
	if rep == nil {
		fmt.Fprintln(out, "  degraded to single-path")
		return
	}
	fmt.Fprintf(out, "  %.0f MB in %.1fs (%.2f MB/s), %d resent chunks, %.1f MB re-sent\n",
		rep.Size/1e6, rep.Seconds, rep.Rate()/1e6, rep.ResentChunks, res.Rewritten/1e6)
	for _, p := range rep.Paths {
		fmt.Fprintf(out, "  path %d %-16s %2d chunks  %2d fails  %2d drains  %6.1f MB re-sent\n",
			p.ID, "["+p.Route+"]", len(p.Chunks), p.Failures, p.Drains, p.Rewritten/1e6)
	}
	fmt.Fprintf(out, "  re-sent within one-chunk-per-failure bound per path: %v\n", churn.WithinResendBound())
}

// MultipathSanity guards the harness against a silent route regression:
// every striped run must actually have used more than one lane.
func MultipathSanity(o MultipathOutcome) error {
	for _, pr := range o.Pairs {
		if pr.Striped.Err != nil {
			continue
		}
		if pr.Striped.Multipath == nil {
			return fmt.Errorf("pair %s->%s degraded to single-path", pr.Client, pr.Provider)
		}
		used := 0
		for _, p := range pr.Striped.Multipath.Paths {
			if len(p.Chunks) > 0 {
				used++
			}
		}
		if used < 2 {
			return fmt.Errorf("pair %s->%s used %d lanes", pr.Client, pr.Provider, used)
		}
	}
	return nil
}

// DefaultMultipathChunk re-exports the stripe unit so surfaces don't
// import internal/multipath just for the default.
const DefaultMultipathChunk = core.DefaultResumeChunk
