package fileutil

import (
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a := New("f", 1000, 42)
	b := New("f", 1000, 42)
	if a.MD5 != b.MD5 || a.MD5 == "" {
		t.Fatalf("digests: %q %q", a.MD5, b.MD5)
	}
	c := New("f", 1000, 43)
	if c.MD5 == a.MD5 {
		t.Fatal("different seeds, same digest")
	}
	d := New("f", 2000, 42)
	if d.MD5 == a.MD5 {
		t.Fatal("different sizes, same digest")
	}
	if a.Data != nil {
		t.Fatal("virtual file materialized data")
	}
}

func TestNewWithData(t *testing.T) {
	f := NewWithData("f", 10000, 7)
	if len(f.Data) != 10000 || f.Size != 10000 {
		t.Fatalf("size: %d %v", len(f.Data), f.Size)
	}
	g := NewWithData("f", 10000, 7)
	if f.MD5 != g.MD5 {
		t.Fatal("same seed produced different data")
	}
	// Random data should not be trivially compressible: no long runs.
	run, best := 1, 1
	for i := 1; i < len(f.Data); i++ {
		if f.Data[i] == f.Data[i-1] {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 1
		}
	}
	if best > 6 {
		t.Fatalf("suspicious run of %d identical bytes", best)
	}
}

func TestPaperSet(t *testing.T) {
	fs := PaperSet(1)
	if len(fs) != 7 {
		t.Fatalf("len = %d", len(fs))
	}
	if fs[0].Name != "file-10MB.bin" || fs[0].Size != 10*MB {
		t.Fatalf("first = %+v", fs[0])
	}
	if fs[6].Name != "file-100MB.bin" || fs[6].Size != 100*MB {
		t.Fatalf("last = %+v", fs[6])
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if seen[f.MD5] {
			t.Fatal("duplicate digest in set")
		}
		seen[f.MD5] = true
	}
	// Deterministic across calls.
	gs := PaperSet(1)
	for i := range fs {
		if fs[i].Name != gs[i].Name || fs[i].Size != gs[i].Size || fs[i].MD5 != gs[i].MD5 {
			t.Fatal("PaperSet not deterministic")
		}
	}
}
