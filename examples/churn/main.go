// Churn: a BGP reconvergence storm replayed twice over the same fleet
// and seed — once as an ablated control (one attempt, no recovery,
// TTL-only route caching) and once with the churn stack: staged
// per-domain convergence with transient blackholes and TTL loops,
// push-based route invalidation off the event bus, make-before-break
// rerouting of in-flight transfers, parking on total route loss, and a
// DTN drain. The report contrasts survival, re-sent bytes, and parked
// (blackhole) seconds; output is byte-identical per seed, which `make
// check` verifies by running this program twice.
package main

import (
	"flag"
	"os"

	"detournet/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 2015, "world/storm seed")
	jobs := flag.Int("jobs", 36, "transfers in the fleet")
	flag.Parse()

	control := sched.RunChurn(sched.ChurnOptions{Seed: *seed, Jobs: *jobs, Stack: false})
	stack := sched.RunChurn(sched.ChurnOptions{Seed: *seed, Jobs: *jobs, Stack: true})
	sched.WriteChurnReport(os.Stdout, control, stack)
}
