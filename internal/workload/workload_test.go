package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixed(t *testing.T) {
	d := Fixed{Bytes: 42}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if d.Sample(rng) != 42 {
			t.Fatal("Fixed varied")
		}
	}
}

func TestLognormalShape(t *testing.T) {
	d := Lognormal{MedianBytes: 1e6, Sigma: 1.5}
	rng := rand.New(rand.NewSource(2))
	var below, n int
	var max float64
	for i := 0; i < 10000; i++ {
		x := d.Sample(rng)
		if x < 1 {
			t.Fatalf("sample below 1 byte: %v", x)
		}
		if x < 1e6 {
			below++
		}
		if x > max {
			max = x
		}
		n++
	}
	// Median property: ~half below exp(mu).
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("median fraction = %v", frac)
	}
	// Heavy tail: the max of 10k samples should exceed 50x the median.
	if max < 50e6 {
		t.Fatalf("no heavy tail: max = %v", max)
	}
}

func TestLognormalTruncation(t *testing.T) {
	d := Lognormal{MedianBytes: 1e6, Sigma: 2.5, MaxBytes: 10e6}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if x := d.Sample(rng); x > 10e6 {
			t.Fatalf("truncation failed: %v", x)
		}
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestEmpiricalProportions(t *testing.T) {
	e, err := NewEmpirical([]float64{10, 20}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	counts := map[float64]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[e.Sample(rng)]++
	}
	frac := float64(counts[10]) / float64(n)
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("weight-3 bucket fraction = %v, want ~0.75", frac)
	}
}

func TestPersonalCloudMix(t *testing.T) {
	d := PersonalCloud()
	rng := rand.New(rand.NewSource(5))
	var small, large int
	for i := 0; i < 10000; i++ {
		x := d.Sample(rng)
		if x <= 300e3 {
			small++
		}
		if x >= 30e6 {
			large++
		}
	}
	// Counts dominated by small files, but a real large-file tail exists.
	if small < 5500 || large < 500 {
		t.Fatalf("mix off: small=%d large=%d", small, large)
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p := Poisson{RatePerSec: 0.5}
	rng := rand.New(rand.NewSource(6))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		g := p.NextGap(rng)
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.0) > 0.1 {
		t.Fatalf("mean gap = %v, want ~2", mean)
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	jobs := Generate(50, Fixed{Bytes: 1e6}, Periodic{GapSec: 10}, rng)
	if len(jobs) != 50 {
		t.Fatalf("len = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.At != float64(i+1)*10 {
			t.Fatalf("job %d at %v", i, j.At)
		}
		if j.Size != 1e6 || j.Name == "" {
			t.Fatalf("job = %+v", j)
		}
	}
	if TotalBytes(jobs) != 50e6 {
		t.Fatalf("TotalBytes = %v", TotalBytes(jobs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen := func() []Job {
		return Generate(20, PersonalCloud(), Poisson{RatePerSec: 0.1}, rand.New(rand.NewSource(8)))
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestPropertyArrivalsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := Generate(30, PersonalCloud(), Poisson{RatePerSec: 1}, rng)
		for i := 1; i < len(jobs); i++ {
			if jobs[i].At < jobs[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlashCrowdValidation(t *testing.T) {
	if _, err := NewFlashCrowd(); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewFlashCrowd(Phase{RatePerSec: 0, Seconds: 10}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewFlashCrowd(Phase{RatePerSec: 1}, Phase{RatePerSec: 2}); err == nil {
		t.Error("unbounded non-final phase accepted")
	}
	if _, err := NewFlashCrowd(Phase{RatePerSec: 1, Seconds: 10}, Phase{RatePerSec: 2}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestFlashCrowdPhaseRates(t *testing.T) {
	fc, err := NewFlashCrowd(
		Phase{RatePerSec: 1, Seconds: 100},
		Phase{RatePerSec: 10, Seconds: 100},
		Phase{RatePerSec: 1, Seconds: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	counts := [3]int{}
	t0 := 0.0
	for t0 < 300 {
		t0 += fc.NextGap(rng)
		switch {
		case t0 < 100:
			counts[0]++
		case t0 < 200:
			counts[1]++
		case t0 < 300:
			counts[2]++
		}
	}
	// ~100 arrivals in the calm phases, ~1000 in the burst.
	if counts[0] < 70 || counts[0] > 130 || counts[2] < 70 || counts[2] > 130 {
		t.Fatalf("calm phases off Poisson(1): %v", counts)
	}
	if counts[1] < 900 || counts[1] > 1100 {
		t.Fatalf("burst phase off Poisson(10): %v", counts)
	}
}

func TestFlashCrowdGapsPositiveAndMonotone(t *testing.T) {
	fc, _ := NewFlashCrowd(Phase{RatePerSec: 5, Seconds: 10}, Phase{RatePerSec: 50})
	rng := rand.New(rand.NewSource(10))
	total := 0.0
	for i := 0; i < 1000; i++ {
		g := fc.NextGap(rng)
		if g <= 0 {
			t.Fatalf("gap %d = %v", i, g)
		}
		total += g
	}
	if total < 10 {
		t.Fatalf("1000 arrivals span only %.2fs", total)
	}
}

func TestMergeFleet(t *testing.T) {
	mk := func(prefix string, ats ...float64) []FleetJob {
		out := make([]FleetJob, len(ats))
		for i, at := range ats {
			out[i] = FleetJob{Job: Job{Name: fmt.Sprintf("%s-%d", prefix, i), At: at, Size: 1}, Tenant: prefix}
		}
		return out
	}
	merged := MergeFleet(mk("a", 1, 4, 9), mk("b", 2, 3, 4), mk("c"))
	if len(merged) != 6 {
		t.Fatalf("merged %d jobs, want 6", len(merged))
	}
	last := 0.0
	for i, j := range merged {
		if j.At < last {
			t.Fatalf("merge not time-ordered at %d: %v < %v", i, j.At, last)
		}
		last = j.At
	}
	// Tie at t=4 resolves to the earlier trace (a before b).
	if merged[3].Tenant != "a" || merged[4].Tenant != "b" {
		t.Fatalf("tie-break wrong: %v then %v", merged[3].Tenant, merged[4].Tenant)
	}
}

func TestGenerateFleetPrefixAndDeadline(t *testing.T) {
	jobs, err := GenerateFleet(FleetSpec{
		Jobs: 10, Clients: []string{"a"}, Providers: []string{"P"},
		Prefix: "burst", DeadlineSlack: 30,
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Name[:5] != "burst" {
			t.Fatalf("prefix not applied: %q", j.Name)
		}
		if j.Deadline != j.At+30 {
			t.Fatalf("deadline = %v, want At+30 = %v", j.Deadline, j.At+30)
		}
	}
}

func TestGenerateFleetShape(t *testing.T) {
	clients := []string{"ubc-pl", "purdue-pl", "ucla-pl"}
	providers := []string{"GoogleDrive", "Dropbox", "OneDrive"}
	jobs, err := GenerateFleet(FleetSpec{
		Jobs: 600, Clients: clients, Providers: providers,
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 600 {
		t.Fatalf("jobs = %d, want 600", len(jobs))
	}
	seenClient, seenProv, seenPrio := map[string]int{}, map[string]int{}, map[int]int{}
	last := 0.0
	for _, j := range jobs {
		seenClient[j.Client]++
		seenProv[j.Provider]++
		seenPrio[j.Priority]++
		if j.Tenant != j.Client {
			t.Fatalf("default tenancy should be per-site: %+v", j)
		}
		if j.Size <= 0 || j.Name == "" {
			t.Fatalf("malformed job: %+v", j)
		}
		if j.At < last {
			t.Fatalf("arrivals not monotone: %v < %v", j.At, last)
		}
		last = j.At
	}
	if len(seenClient) != 3 || len(seenProv) != 3 {
		t.Fatalf("trace misses sites or providers: clients=%v providers=%v", seenClient, seenProv)
	}
	if len(seenPrio) != 3 {
		t.Fatalf("default 3 priority levels, saw %v", seenPrio)
	}
	// Uniform sampling: no cell starves (600 jobs over 3 choices).
	for c, n := range seenClient {
		if n < 100 {
			t.Errorf("client %s got only %d jobs", c, n)
		}
	}
}

func TestGenerateFleetTenantsAndDeterminism(t *testing.T) {
	spec := FleetSpec{
		Jobs: 50, Clients: []string{"a", "b"}, Providers: []string{"P"},
		Tenants: []string{"t1", "t2", "t3"},
		Sizes:   Fixed{Bytes: 1e6},
	}
	gen := func() []FleetJob {
		jobs, err := GenerateFleet(spec, rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fleet trace not deterministic")
		}
	}
	tenants := map[string]bool{}
	for _, j := range a {
		tenants[j.Tenant] = true
	}
	for _, want := range spec.Tenants {
		if !tenants[want] {
			t.Errorf("tenant %s never sampled", want)
		}
	}
}

func TestGenerateFleetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateFleet(FleetSpec{Jobs: 0, Clients: []string{"a"}, Providers: []string{"p"}}, rng); err == nil {
		t.Error("zero jobs accepted")
	}
	if _, err := GenerateFleet(FleetSpec{Jobs: 1, Providers: []string{"p"}}, rng); err == nil {
		t.Error("no clients accepted")
	}
	if _, err := GenerateFleet(FleetSpec{Jobs: 1, Clients: []string{"a"}}, rng); err == nil {
		t.Error("no providers accepted")
	}
	if _, err := GenerateFleet(FleetSpec{Jobs: 1, Clients: []string{"a"}, Providers: []string{"p"}}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
