// Package geo models the geographic layer of the case study: site
// coordinates, great-circle distances, and a synthetic IP-geolocation
// database standing in for the "IP Location Finder" service the paper
// used to place routers and datacenters on the map (Fig 3, Table V).
package geo

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
)

// Coord is a point on the globe in decimal degrees.
type Coord struct {
	Lat, Lon float64
}

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance between two coordinates
// in kilometres.
func HaversineKm(a, b Coord) float64 {
	const rad = math.Pi / 180
	lat1, lon1 := a.Lat*rad, a.Lon*rad
	lat2, lon2 := b.Lat*rad, b.Lon*rad
	dlat := lat2 - lat1
	dlon := lon2 - lon1
	h := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PropagationDelay returns an estimated one-way propagation delay in
// seconds for a fibre path between two coordinates. Light in fibre
// travels at roughly 2/3 c, and real paths are longer than great-circle
// distance; the 1.4 route-stretch factor is a standard engineering rule.
func PropagationDelay(a, b Coord) float64 {
	const fibreKmPerSec = 200000.0 // ~2/3 speed of light
	const routeStretch = 1.4
	return HaversineKm(a, b) * routeStretch / fibreKmPerSec
}

// Site is a named location from the paper's Fig 3 map.
type Site struct {
	Name string
	City string
	Coord
}

// The paper's client sites, intermediate nodes, and provider datacenters
// (Sec II: datacenter locations obtained via traceroute + IP geolocation).
var (
	UBC      = Site{Name: "UBC", City: "Vancouver, BC", Coord: Coord{49.2606, -123.2460}}
	UAlberta = Site{Name: "UAlberta", City: "Edmonton, AB", Coord: Coord{53.5232, -113.5263}}
	UMich    = Site{Name: "UMich", City: "Ann Arbor, MI", Coord: Coord{42.2780, -83.7382}}
	Purdue   = Site{Name: "Purdue", City: "West Lafayette, IN", Coord: Coord{40.4237, -86.9212}}
	UCLA     = Site{Name: "UCLA", City: "Los Angeles, CA", Coord: Coord{34.0689, -118.4452}}

	GoogleDriveDC = Site{Name: "GoogleDrive", City: "Mountain View, CA", Coord: Coord{37.4220, -122.0841}}
	DropboxDC     = Site{Name: "Dropbox", City: "Ashburn, VA", Coord: Coord{39.0438, -77.4874}}
	OneDriveDC    = Site{Name: "OneDrive", City: "Seattle, WA", Coord: Coord{47.6062, -122.3321}}

	// Network exchange/middlebox locations referenced by the traceroutes.
	VancouverIX = Site{Name: "Vancouver-IX", City: "Vancouver, BC", Coord: Coord{49.2827, -123.1207}}
	SeattleIX   = Site{Name: "Seattle-IX", City: "Seattle, WA", Coord: Coord{47.6097, -122.3331}}
	Chicago     = Site{Name: "Chicago", City: "Chicago, IL", Coord: Coord{41.8781, -87.6298}}
	Calgary     = Site{Name: "Calgary", City: "Calgary, AB", Coord: Coord{51.0447, -114.0719}}
)

// Sites lists every named site, for map rendering and lookups.
func Sites() []Site {
	return []Site{
		UBC, UAlberta, UMich, Purdue, UCLA,
		GoogleDriveDC, DropboxDC, OneDriveDC,
		VancouverIX, SeattleIX, Chicago, Calgary,
	}
}

// SiteByName returns the named site, or false when unknown.
func SiteByName(name string) (Site, bool) {
	for _, s := range Sites() {
		if s.Name == name {
			return s, true
		}
	}
	return Site{}, false
}

// DB is a prefix-based IP geolocation database, the stand-in for the
// iplocation.net lookups in the paper. Longest-prefix match wins.
type DB struct {
	entries []dbEntry // sorted by prefix bits descending for LPM
}

type dbEntry struct {
	prefix netip.Prefix
	site   Site
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{} }

// Add registers a prefix as located at site. Invalid prefixes are
// rejected with an error.
func (d *DB) Add(cidr string, site Site) error {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return fmt.Errorf("geo: bad prefix %q: %w", cidr, err)
	}
	d.entries = append(d.entries, dbEntry{prefix: p.Masked(), site: site})
	sort.SliceStable(d.entries, func(i, j int) bool {
		return d.entries[i].prefix.Bits() > d.entries[j].prefix.Bits()
	})
	return nil
}

// MustAdd is Add, panicking on a malformed prefix; for static tables.
func (d *DB) MustAdd(cidr string, site Site) {
	if err := d.Add(cidr, site); err != nil {
		panic(err)
	}
}

// Lookup geolocates an IP address. The boolean reports whether any
// registered prefix contains the address.
func (d *DB) Lookup(ip string) (Site, bool) {
	a, err := netip.ParseAddr(ip)
	if err != nil {
		return Site{}, false
	}
	for _, e := range d.entries {
		if e.prefix.Contains(a) {
			return e.site, true
		}
	}
	return Site{}, false
}

// Len reports the number of registered prefixes.
func (d *DB) Len() int { return len(d.entries) }

// PaperDB returns a geolocation database covering the address blocks
// appearing in the paper's traceroutes (Figs 5–6) and the provider
// datacenters, so simulated traceroute output can be geolocated the same
// way the authors did.
func PaperDB() *DB {
	d := NewDB()
	d.MustAdd("142.103.0.0/16", UBC) // UBC campus
	d.MustAdd("137.82.0.0/16", UBC)  // UBC border
	d.MustAdd("134.87.0.0/16", VancouverIX)
	d.MustAdd("199.212.24.0/24", VancouverIX) // canarie vncv1
	d.MustAdd("199.212.24.68/32", UAlberta)   // canarie edmn1
	d.MustAdd("207.231.242.0/24", SeattleIX)  // pacificwave
	d.MustAdd("129.128.0.0/16", UAlberta)     // UAlberta campus
	d.MustAdd("199.116.232.0/21", UAlberta)   // cybera
	d.MustAdd("216.58.216.0/24", GoogleDriveDC)
	d.MustAdd("216.239.51.0/24", GoogleDriveDC)
	d.MustAdd("209.85.249.0/24", SeattleIX) // google edge, Seattle
	d.MustAdd("108.160.160.0/20", DropboxDC)
	d.MustAdd("134.170.0.0/16", OneDriveDC)
	d.MustAdd("141.211.0.0/16", UMich)
	d.MustAdd("128.210.0.0/15", Purdue)
	d.MustAdd("128.97.0.0/16", UCLA)
	d.MustAdd("164.67.0.0/16", UCLA)
	return d
}
