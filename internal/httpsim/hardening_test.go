package httpsim

import (
	"fmt"
	"testing"

	"detournet/internal/simproc"
)

// Hardening tests: concurrency, keep-alive reuse edge cases, and
// pipelining discipline on shared connections.

func TestConcurrentClientsIndependentConnections(t *testing.T) {
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("GET", "/", func(ctx *Ctx, req *Request) *Response {
			return &Response{Status: StatusOK, Body: []byte(req.Header["X-Who"])}
		})
	})
	results := make([]string, 4)
	futs := make([]*simproc.Future[bool], 4)
	for i := 0; i < 4; i++ {
		i := i
		futs[i] = simproc.NewFuture[bool](r)
		r.Go(fmt.Sprintf("cli-%d", i), func(p *simproc.Proc) {
			c := NewClient(n, "client", 443, true)
			resp, err := c.Do(p, &Request{Method: "GET", Path: "/", Host: "server",
				Header: map[string]string{"X-Who": fmt.Sprintf("c%d", i)}})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			} else {
				results[i] = string(resp.Body)
			}
			c.CloseIdle()
			futs[i].Set(true)
		})
	}
	r.Go("closer", func(p *simproc.Proc) {
		for _, f := range futs {
			simproc.Await(p, f)
		}
		l.Close()
	})
	r.Run()
	for i, got := range results {
		if got != fmt.Sprintf("c%d", i) {
			t.Fatalf("client %d got %q", i, got)
		}
	}
}

func TestSharedClientInterleavedRequests(t *testing.T) {
	// Two processes sharing one keep-alive client: responses must match
	// requests (FIFO discipline on the shared connection).
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("POST", "/echo", func(ctx *Ctx, req *Request) *Response {
			ctx.Proc.Sleep(0.05) // make responses non-instant
			return &Response{Status: StatusOK, Body: req.Body}
		})
	})
	c := NewClient(n, "client", 443, true)
	check := func(p *simproc.Proc, tag string) {
		for k := 0; k < 3; k++ {
			body := fmt.Sprintf("%s-%d", tag, k)
			resp, err := c.Do(p, &Request{Method: "POST", Path: "/echo", Host: "server",
				Body: []byte(body)})
			if err != nil {
				t.Errorf("%s: %v", tag, err)
				return
			}
			if string(resp.Body) != body {
				t.Errorf("%s: got %q want %q (response mismatched to request)", tag, resp.Body, body)
				return
			}
		}
	}
	f1 := simproc.NewFuture[bool](r)
	f2 := simproc.NewFuture[bool](r)
	r.Go("a", func(p *simproc.Proc) { check(p, "a"); f1.Set(true) })
	r.Go("b", func(p *simproc.Proc) { check(p, "b"); f2.Set(true) })
	r.Go("closer", func(p *simproc.Proc) {
		simproc.Await(p, f1)
		simproc.Await(p, f2)
		c.CloseIdle()
		l.Close()
	})
	r.Run()
}

func TestClientSurvivesServerConnectionDrop(t *testing.T) {
	// The server drops each connection after one response; the client's
	// keep-alive retry dials a fresh connection per request.
	n, r := world(t)
	s := NewServer(n)
	s.Handle("GET", "/", func(ctx *Ctx, req *Request) *Response {
		return &Response{Status: StatusOK}
	})
	l := n.MustListen("server", 443)
	r.Go("dropper", func(p *simproc.Proc) {
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			r.Go("one-shot", func(hp *simproc.Proc) {
				msg, err := c.Recv(hp)
				if err != nil {
					return
				}
				req := msg.Payload.(*Request)
				resp := s.dispatch(&Ctx{Proc: hp, RemoteHost: c.RemoteHost()}, req)
				_ = c.Send(hp, resp, resp.Size())
				c.Close() // drop after one exchange
			})
		}
	})
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		for i := 0; i < 3; i++ {
			resp, err := c.Do(p, &Request{Method: "GET", Path: "/", Host: "server"})
			if err != nil || resp.Status != StatusOK {
				t.Errorf("request %d: %v %v", i, resp, err)
				break
			}
			// Give the close EOF time to land in the kept-alive conn.
			p.Sleep(1)
		}
		c.CloseIdle()
		l.Close()
	})
	r.Run()
}

func TestManySequentialRequestsOneConnection(t *testing.T) {
	n, r := world(t)
	served := 0
	l := startServer(t, n, func(s *Server) {
		s.Handle("GET", "/", func(ctx *Ctx, req *Request) *Response {
			served++
			return &Response{Status: StatusOK}
		})
	})
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		for i := 0; i < 50; i++ {
			if _, err := c.Do(p, &Request{Method: "GET", Path: "/", Host: "server"}); err != nil {
				t.Errorf("request %d: %v", i, err)
				break
			}
		}
		c.CloseIdle()
		l.Close()
	})
	r.Run()
	if served != 50 {
		t.Fatalf("served %d, want 50", served)
	}
}

func TestNilHandlerResponseBecomes500(t *testing.T) {
	n, r := world(t)
	l := startServer(t, n, func(s *Server) {
		s.Handle("GET", "/nil", func(ctx *Ctx, req *Request) *Response { return nil })
	})
	r.Go("cli", func(p *simproc.Proc) {
		c := NewClient(n, "client", 443, true)
		resp, err := c.Do(p, &Request{Method: "GET", Path: "/nil", Host: "server"})
		if err != nil {
			t.Error(err)
		} else if resp.Status != StatusInternalServerError {
			t.Errorf("status = %d, want 500", resp.Status)
		}
		c.CloseIdle()
		l.Close()
	})
	r.Run()
}
