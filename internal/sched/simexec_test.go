package sched

import (
	"math/rand"
	"testing"

	"detournet/internal/scenario"
	"detournet/internal/workload"
)

// TestSimExecutorFleet runs a real multi-client fleet trace through the
// control plane on the simulated topology: concurrent workers, cached
// probe decisions, transfers in virtual time. This is the miniature of
// examples/fleet that CI (and the race detector) always runs.
func TestSimExecutorFleet(t *testing.T) {
	w := scenario.Build(7)
	exec := NewSimExecutor(w)
	defer exec.Close()
	s := New(Config{
		Workers: 6, Executor: exec, Planner: exec,
		ProviderCap: 2, DTNCap: 2,
	})
	s.Start()
	defer s.Close()

	trace, err := workload.GenerateFleet(workload.FleetSpec{
		Jobs:    36,
		Clients: []string{scenario.UBC, scenario.Purdue, scenario.UCLA},
		Providers: []string{
			scenario.GoogleDrive, scenario.Dropbox, scenario.OneDrive,
		},
		Sizes: workload.Fixed{Bytes: 2e6},
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for _, fj := range trace {
		err := s.Submit(Job{
			Tenant: fj.Tenant, Client: fj.Client, Provider: fj.Provider,
			Name: fj.Name, Size: fj.Size, Priority: fj.Priority,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", fj.Name, err)
		}
	}
	s.Drain()

	st := s.Stats()
	if st.Done != int64(len(trace)) || st.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0 (stats: %s)", st.Done, st.Failed, len(trace), st)
	}
	if exec.Transfers != int64(len(trace)) {
		t.Errorf("sim transfers = %d, want %d", exec.Transfers, len(trace))
	}
	if exec.VirtualNow() <= 0 {
		t.Error("virtual clock did not advance")
	}
	// Fixed 2 MB sizes land in one bucket per (client, provider): at
	// most 9 probes for 36 jobs, so the fleet amortizes to >= 50% even
	// in the worst coalescing order; typically far higher.
	if hr := st.CacheHitRate(); hr < 0.5 {
		t.Errorf("cache hit rate = %.2f, want >= 0.5", hr)
	}
	for prov, peak := range st.ProviderPeak {
		if peak > 2 {
			t.Errorf("provider %s peak %d exceeds cap 2", prov, peak)
		}
	}
	// Every transfer must have gone somewhere we can account for.
	var jobs int64
	for _, rs := range st.PerRoute {
		jobs += rs.Jobs
	}
	if jobs != st.Done {
		t.Errorf("per-route jobs = %d, want %d", jobs, st.Done)
	}
}
