package sched

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		err  error
		want FailureClass
	}{
		{nil, FailUnknown},
		{base, FailUnknown},
		{Transient(base), FailTransient},
		{RouteDown(base), FailRouteDown},
		{ProviderDown(base), FailProviderDown},
		{fmt.Errorf("wrapped: %w", RouteDown(base)), FailRouteDown},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// The underlying cause stays reachable through the tag.
	if !errors.Is(Transient(base), base) {
		t.Error("tagged error lost its cause")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := 0.0
	b := newBreakerSet(3, 30, func() float64 { return now })
	const k = "GoogleDrive|via ualberta"

	if !b.allow(k) {
		t.Fatal("fresh breaker must allow")
	}
	b.failure(k)
	b.failure(k)
	if !b.allow(k) {
		t.Fatal("below threshold must still allow")
	}
	b.failure(k) // third consecutive failure opens
	if b.allow(k) {
		t.Fatal("open breaker must reject")
	}

	now = 10
	if b.allow(k) {
		t.Fatal("cooldown not elapsed, must still reject")
	}
	now = 31
	if !b.allow(k) {
		t.Fatal("post-cooldown must admit the half-open probe")
	}
	if b.allow(k) {
		t.Fatal("only one probe may fly at a time")
	}

	// Failed probe re-opens; a fresh cooldown starts.
	b.failure(k)
	if b.allow(k) {
		t.Fatal("failed probe must re-open the breaker")
	}
	now = 62
	if !b.allow(k) {
		t.Fatal("second cooldown must admit another probe")
	}
	b.success(k)
	if !b.allow(k) || !b.allow(k) {
		t.Fatal("closed breaker must allow freely")
	}

	states, transitions := b.snapshot()
	if states[k] != "closed" {
		t.Fatalf("state = %q, want closed", states[k])
	}
	// open, half-open, re-open, half-open, closed = 5 transitions.
	if transitions != 5 {
		t.Fatalf("transitions = %d, want 5", transitions)
	}
}
