// Package measure is the experiment harness: it drives upload grids
// (client × provider × route × file-size) through the simulated world
// with the paper's exact protocol — seven sequential runs per cell, mean
// and one standard deviation of the last five — and renders the tables
// and figure series in the paper's formats.
package measure

import (
	"fmt"
	"strings"

	"detournet/internal/core"
	"detournet/internal/fileutil"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
	"detournet/internal/stats"
)

// Direction selects the transfer direction of a grid.
type Direction int

const (
	// Upload measures client -> provider (the paper's direction).
	Upload Direction = iota
	// Download measures provider -> client (the reverse operation the
	// APIs support; an extension experiment here).
	Download
)

func (d Direction) String() string {
	if d == Download {
		return "download"
	}
	return "upload"
}

// GridSpec describes one figure/table's measurement grid.
type GridSpec struct {
	Client   string
	Provider string
	Routes   []core.Route
	SizesMB  []int
	// Direction is Upload (default, the paper's) or Download.
	Direction Direction
	// Runs per cell (paper: 7) and how many of the last to keep (5).
	Runs, Keep int
	// Seed salts the generated files (cross-traffic is seeded by the
	// world, not here).
	Seed int64
}

// WithDefaults fills the paper's protocol values.
func (s GridSpec) WithDefaults() GridSpec {
	if len(s.Routes) == 0 {
		s.Routes = scenario.Routes()
	}
	if len(s.SizesMB) == 0 {
		s.SizesMB = fileutil.PaperSizesMB
	}
	if s.Runs == 0 {
		s.Runs = 7
	}
	if s.Keep == 0 {
		s.Keep = 5
	}
	return s
}

// Cell is one (size, route) measurement.
type Cell struct {
	SizeMB  int
	Route   core.Route
	Runs    []float64 // all run durations, in order
	Summary stats.Summary
	// Hop1/Hop2 are the mean leg times of the retained runs (detours
	// only; Hop1 is zero for direct).
	Hop1, Hop2 float64
}

// Grid is a completed measurement grid.
type Grid struct {
	Spec  GridSpec
	Cells []*Cell // ordered by (size, route) in spec order
}

// Cell returns the measurement for a size and route.
func (g *Grid) Cell(sizeMB int, route core.Route) *Cell {
	for _, c := range g.Cells {
		if c.SizeMB == sizeMB && c.Route == route {
			return c
		}
	}
	return nil
}

// Series returns the per-size mean transfer times for a route, the data
// behind one plotted line of a figure.
func (g *Grid) Series(route core.Route) []float64 {
	out := make([]float64, 0, len(g.Spec.SizesMB))
	for _, mb := range g.Spec.SizesMB {
		if c := g.Cell(mb, route); c != nil {
			out = append(out, c.Summary.Mean)
		}
	}
	return out
}

// RunGrid executes the grid in the world. Runs are sequential in
// simulated time, sharing the world's evolving cross-traffic exactly as
// the paper's back-to-back runs shared the live network. Every run uses
// fresh clients (new connections, new OAuth exchange), matching the
// per-invocation behaviour of the paper's Java programs.
func RunGrid(w *scenario.World, spec GridSpec) *Grid {
	spec = spec.WithDefaults()
	g := &Grid{Spec: spec}
	w.RunWorkload(fmt.Sprintf("grid:%s->%s", spec.Client, spec.Provider), func(p *simproc.Proc) {
		for _, mb := range spec.SizesMB {
			for _, route := range spec.Routes {
				cell := &Cell{SizeMB: mb, Route: route}
				var hop1s, hop2s []float64
				for run := 0; run < spec.Runs; run++ {
					f := fileutil.New(fmt.Sprintf("%s-%dMB-run%d.bin", spec.Provider, mb, run),
						float64(mb)*fileutil.MB, spec.Seed+int64(mb*100+run))
					rep := uploadOnce(p, w, spec, route, f)
					cell.Runs = append(cell.Runs, rep.Total)
					hop1s = append(hop1s, rep.Hop1)
					hop2s = append(hop2s, rep.Hop2)
				}
				cell.Summary = stats.LastN(cell.Runs, spec.Keep)
				cell.Hop1 = stats.LastN(hop1s, spec.Keep).Mean
				cell.Hop2 = stats.LastN(hop2s, spec.Keep).Mean
				g.Cells = append(g.Cells, cell)
			}
		}
	})
	return g
}

func uploadOnce(p *simproc.Proc, w *scenario.World, spec GridSpec, route core.Route, f fileutil.TestFile) core.Report {
	var rep core.Report
	var err error
	switch {
	case spec.Direction == Download:
		// Seed the provider store out-of-band (no wire time) so the
		// download is the only measured transfer.
		if _, perr := w.Services[spec.Provider].Store.Put(f.Name, f.Size, f.MD5); perr != nil {
			panic(fmt.Sprintf("measure: seed object: %v", perr))
		}
		if route.Kind == core.Direct {
			client := w.NewSDKClient(spec.Client, spec.Provider)
			rep, err = core.DirectDownload(p, client, f.Name)
			client.Close()
		} else {
			dc := w.NewDetourClient(spec.Client, route.Via)
			rep, err = dc.Download(p, spec.Provider, f.Name)
		}
	case route.Kind == core.Direct:
		client := w.NewSDKClient(spec.Client, spec.Provider)
		rep, err = core.DirectUpload(p, client, f.Name, f.Size, f.MD5)
		client.Close()
	default:
		dc := w.NewDetourClient(spec.Client, route.Via)
		rep, err = dc.Upload(p, spec.Provider, f.Name, f.Size, f.MD5)
	}
	if err != nil {
		panic(fmt.Sprintf("measure: %s %s %s %v: %v", spec.Client, spec.Direction, spec.Provider, route, err))
	}
	return rep
}

// FormatTable renders the grid the way Tables II/III print: one row per
// file size, direct seconds first, then each detour with its relative
// change in brackets.
func (g *Grid) FormatTable() string {
	var b strings.Builder
	routes := g.Spec.Routes
	fmt.Fprintf(&b, "%-10s", "Size(MB)")
	for _, r := range routes {
		fmt.Fprintf(&b, " | %-24s", r)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 10+27*len(routes)) + "\n")
	direct := routes[0]
	for _, mb := range g.Spec.SizesMB {
		fmt.Fprintf(&b, "%-10d", mb)
		base := g.Cell(mb, direct)
		for _, r := range routes {
			c := g.Cell(mb, r)
			if c == nil {
				fmt.Fprintf(&b, " | %-24s", "-")
				continue
			}
			if r == direct || base == nil {
				fmt.Fprintf(&b, " | %-24s", fmt.Sprintf("%.2f s", c.Summary.Mean))
			} else {
				pct := stats.RelativeChange(base.Summary.Mean, c.Summary.Mean)
				fmt.Fprintf(&b, " | %-24s", fmt.Sprintf("%.2f s [%s]", c.Summary.Mean, stats.FormatRelative(pct)))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure renders the grid as the data behind one of the paper's
// bar charts: per size, each route's mean ± one standard deviation.
func (g *Grid) FormatFigure(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, mb := range g.Spec.SizesMB {
		fmt.Fprintf(&b, "  %3d MB:", mb)
		for _, r := range g.Spec.Routes {
			c := g.Cell(mb, r)
			fmt.Fprintf(&b, "  %s=%.2f±%.2f", r, c.Summary.Mean, c.Summary.StdDev)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fastest returns the route with the lowest mean for a size.
func (g *Grid) Fastest(sizeMB int) core.Route {
	best := g.Spec.Routes[0]
	bestT := g.Cell(sizeMB, best).Summary.Mean
	for _, r := range g.Spec.Routes[1:] {
		if t := g.Cell(sizeMB, r).Summary.Mean; t < bestT {
			best, bestT = r, t
		}
	}
	return best
}

// Slowest returns the route with the highest mean for a size.
func (g *Grid) Slowest(sizeMB int) core.Route {
	worst := g.Spec.Routes[0]
	worstT := g.Cell(sizeMB, worst).Summary.Mean
	for _, r := range g.Spec.Routes[1:] {
		if t := g.Cell(sizeMB, r).Summary.Mean; t > worstT {
			worst, worstT = r, t
		}
	}
	return worst
}

// OverallFastest ranks routes by total mean time across all sizes — the
// aggregation behind Table I's "Fastest/Slowest" labels.
func (g *Grid) OverallFastest() (fastest, slowest core.Route) {
	totals := make(map[core.Route]float64)
	for _, r := range g.Spec.Routes {
		for _, mb := range g.Spec.SizesMB {
			totals[r] += g.Cell(mb, r).Summary.Mean
		}
	}
	fastest, slowest = g.Spec.Routes[0], g.Spec.Routes[0]
	for _, r := range g.Spec.Routes[1:] {
		if totals[r] < totals[fastest] {
			fastest = r
		}
		if totals[r] > totals[slowest] {
			slowest = r
		}
	}
	return fastest, slowest
}

// Exceptions lists sizes where the per-size fastest route differs from
// the overall fastest — the paper's Table I footnotes.
func (g *Grid) Exceptions() []int {
	overall, _ := g.OverallFastest()
	var out []int
	for _, mb := range g.Spec.SizesMB {
		if g.Fastest(mb) != overall {
			out = append(out, mb)
		}
	}
	return out
}
