package telemetry

import (
	"strings"
	"testing"
)

func TestRecorderRetentionOnFailure(t *testing.T) {
	now := 0.0
	r := NewFlightRecorder(func() float64 { return now }, 8, 4)
	tr := r.Begin("job-a")
	now = 1
	tr.Note("job.elect", "route", "detour")
	now = 2
	tr.Note("job.reroute", "parked", "1")
	now = 3
	tr.Note("job.park", "kind", "budget")
	r.Finish(tr, "job-a", true)

	kept := r.Retained()
	if len(kept) != 1 || !kept[0].Failed {
		t.Fatalf("retained = %+v, want one failed trace", kept)
	}
	got := kept[0]
	if got.Seen != 3 || len(got.Events) != 3 || got.Dropped != 0 {
		t.Fatalf("trace = %+v", got)
	}
	kinds := []string{"job.elect", "job.reroute", "job.park"}
	for i, ev := range got.Events {
		if ev.Kind != kinds[i] || ev.At != float64(i+1) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if !strings.Contains(got.Events[0].String(), "route=detour") {
		t.Fatalf("event render = %q", got.Events[0].String())
	}
	if fin, failed := r.Counts(); fin != 1 || failed != 1 {
		t.Fatalf("counts = %d/%d", fin, failed)
	}
	// Notes against a finished handle are dropped; a double Finish
	// counts once.
	tr.Note("job.ghost")
	r.Finish(tr, "job-a", true)
	if fin, _ := r.Counts(); fin != 1 {
		t.Fatalf("double finish counted: fin = %d", fin)
	}
	if r.Live() != 0 {
		t.Fatalf("live = %d", r.Live())
	}
}

func TestRecorderTruncationOnSuccess(t *testing.T) {
	r := NewFlightRecorder(nil, 8, 4)
	tr := r.Begin("ok")
	tr.Note("job.elect")
	tr.Note("job.done")
	r.Finish(tr, "ok", false)
	kept := r.Retained()
	if len(kept) != 1 || kept[0].Failed {
		t.Fatalf("retained = %+v", kept)
	}
	if kept[0].Seen != 2 || len(kept[0].Events) != 0 {
		t.Fatalf("success trace should keep counts but drop events: %+v", kept[0])
	}
	if r.Live() != 0 {
		t.Fatalf("live = %d", r.Live())
	}
}

func TestRecorderPerJobCap(t *testing.T) {
	r := NewFlightRecorder(nil, 3, 4)
	tr := r.Begin("busy")
	for i := 0; i < 7; i++ {
		tr.Note("job.attempt", "n", string(rune('0'+i)))
	}
	r.Finish(tr, "busy", true)
	got := r.Retained()[0]
	if got.Seen != 7 || got.Dropped != 4 || len(got.Events) != 3 {
		t.Fatalf("trace = seen %d dropped %d len %d", got.Seen, got.Dropped, len(got.Events))
	}
	// FIFO eviction keeps the newest events.
	if got.Events[0].Attrs["n"] != "4" || got.Events[2].Attrs["n"] != "6" {
		t.Fatalf("kept events = %+v", got.Events)
	}
}

func TestRecorderNotePairCap(t *testing.T) {
	r := NewFlightRecorder(nil, 8, 4)
	tr := r.Begin("j")
	tr.Note("job.big", "a", "1", "b", "2", "c", "3", "d", "4")
	r.Finish(tr, "j", true)
	ev := r.Retained()[0].Events[0]
	if len(ev.Attrs) != maxNotePairs {
		t.Fatalf("attrs = %v, want %d pairs", ev.Attrs, maxNotePairs)
	}
	if ev.Attrs["a"] != "1" || ev.Attrs["c"] != "3" {
		t.Fatalf("attrs = %v", ev.Attrs)
	}
}

// finishOne is the test shorthand for a job that records a single event
// (or none, with tr == nil semantics via an empty trace).
func finishOne(r *FlightRecorder, job, kind string, failed bool) {
	tr := r.Begin(job)
	if kind != "" {
		tr.Note(kind)
	}
	r.Finish(tr, job, failed)
}

func TestRecorderFinishWithoutTrace(t *testing.T) {
	r := NewFlightRecorder(nil, 8, 4)
	// A job that never recorded anything (shed in queue, recording
	// attached mid-run) still counts and keeps an empty marker.
	r.Finish(nil, "shed", true)
	kept := r.Retained()
	if len(kept) != 1 || !kept[0].Failed || kept[0].Seen != 0 || len(kept[0].Events) != 0 {
		t.Fatalf("retained = %+v", kept)
	}
	if fin, failed := r.Counts(); fin != 1 || failed != 1 {
		t.Fatalf("counts = %d/%d", fin, failed)
	}
}

func TestRecorderRetainedBoundPrefersFailures(t *testing.T) {
	r := NewFlightRecorder(nil, 8, 3)
	finishOne(r, "f1", "job.fail", true)
	finishOne(r, "s1", "", false)
	finishOne(r, "f2", "job.fail", true)
	finishOne(r, "s2", "", false) // bound hit: evicts s1, not a failure
	kept := r.Retained()
	if len(kept) != 3 {
		t.Fatalf("retained = %d, want 3", len(kept))
	}
	var jobs []string
	for _, k := range kept {
		jobs = append(jobs, k.Job)
	}
	want := []string{"f1", "f2", "s2"} // failures first, then by name
	for i := range want {
		if jobs[i] != want[i] {
			t.Fatalf("retained jobs = %v, want %v", jobs, want)
		}
	}
	// All-failed window: the oldest failure finally gives way.
	finishOne(r, "f3", "job.fail", true)
	finishOne(r, "f4", "job.fail", true)
	jobs = jobs[:0]
	for _, k := range r.Retained() {
		jobs = append(jobs, k.Job)
	}
	want = []string{"f2", "f3", "f4"}
	for i := range want {
		if jobs[i] != want[i] {
			t.Fatalf("retained jobs = %v, want %v", jobs, want)
		}
	}
}
