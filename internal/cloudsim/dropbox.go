package cloudsim

import (
	"encoding/json"

	"detournet/internal/httpsim"
)

// Dropbox API v2 subset: single-shot upload plus chunked upload
// sessions, content download, delete. API arguments ride in the
// Dropbox-API-Arg header as JSON, content in the body — matching the
// real wire protocol.
//
//	POST /2/files/upload                      arg {path}            body -> metadata
//	POST /2/files/upload_session/start        body chunk            -> {session_id}
//	POST /2/files/upload_session/append_v2    arg {cursor}          body chunk -> 200
//	POST /2/files/upload_session/finish       arg {cursor, commit}  body chunk -> metadata
//	POST /2/files/download                    arg {path}            -> bytes
//	POST /2/files/delete_v2                   arg {path}            -> metadata
func (s *Service) mountDropbox() {
	s.HTTP.Handle("POST", "/2/files/upload_session/start", s.protect(s.dbxStart))
	s.HTTP.Handle("POST", "/2/files/upload_session/append_v2", s.protect(s.dbxAppend))
	s.HTTP.Handle("POST", "/2/files/upload_session/finish", s.protect(s.dbxFinish))
	s.HTTP.Handle("POST", "/2/files/upload", s.protect(s.dbxUpload))
	s.HTTP.Handle("POST", "/2/files/download", s.protect(s.dbxDownload))
	s.HTTP.Handle("POST", "/2/files/delete_v2", s.protect(s.dbxDelete))
}

type dbxArg struct {
	Path   string     `json:"path,omitempty"`
	Cursor *dbxCursor `json:"cursor,omitempty"`
	Commit *dbxCommit `json:"commit,omitempty"`
}

type dbxCursor struct {
	SessionID string  `json:"session_id"`
	Offset    float64 `json:"offset"`
}

type dbxCommit struct {
	Path string `json:"path"`
}

func dbxParseArg(req *httpsim.Request) (dbxArg, *httpsim.Response) {
	var a dbxArg
	raw, ok := req.Header["Dropbox-API-Arg"]
	if !ok {
		return a, errResp(httpsim.StatusBadRequest, "missing Dropbox-API-Arg")
	}
	if err := json.Unmarshal([]byte(raw), &a); err != nil {
		return a, errResp(httpsim.StatusBadRequest, "bad Dropbox-API-Arg")
	}
	return a, nil
}

func (s *Service) dbxUpload(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	a, errR := dbxParseArg(req)
	if errR != nil {
		return errR
	}
	if a.Path == "" {
		return errResp(httpsim.StatusBadRequest, "missing path")
	}
	o, err := s.Store.PutIdempotent(a.Path, req.ContentLength(), req.Header["X-Content-MD5"], req.Header["X-Attempt-Id"])
	if err != nil {
		return s.putErr(err)
	}
	return jsonResp(httpsim.StatusOK, metaOf(o))
}

func (s *Service) dbxStart(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	if resp := s.admitSessionBytes(req.ContentLength()); resp != nil {
		return resp
	}
	sess := s.newSession("", 0)
	sess.received = req.ContentLength() // start may carry the first chunk
	return jsonResp(httpsim.StatusOK, map[string]string{"session_id": sess.id})
}

func (s *Service) dbxAppend(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	a, errR := dbxParseArg(req)
	if errR != nil {
		return errR
	}
	if a.Cursor == nil {
		return errResp(httpsim.StatusBadRequest, "missing cursor")
	}
	sess, ok := s.session(a.Cursor.SessionID)
	if !ok || sess.done {
		return errResp(httpsim.StatusNotFound, "unknown session")
	}
	if a.Cursor.Offset != sess.received {
		// The real API reports the server's offset so clients can
		// self-correct after an interruption.
		return jsonResp(httpsim.StatusConflict, map[string]any{
			"error": "incorrect_offset", "correct_offset": sess.received,
		})
	}
	if resp := s.admitSessionBytes(req.ContentLength()); resp != nil {
		return resp
	}
	sess.received += req.ContentLength()
	return &httpsim.Response{Status: httpsim.StatusOK}
}

func (s *Service) dbxFinish(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	a, errR := dbxParseArg(req)
	if errR != nil {
		return errR
	}
	if a.Cursor == nil || a.Commit == nil || a.Commit.Path == "" {
		return errResp(httpsim.StatusBadRequest, "missing cursor or commit")
	}
	sess, ok := s.session(a.Cursor.SessionID)
	if !ok || sess.done {
		return errResp(httpsim.StatusNotFound, "unknown session")
	}
	if a.Cursor.Offset != sess.received {
		// The real API reports the server's offset so clients can
		// self-correct after an interruption.
		return jsonResp(httpsim.StatusConflict, map[string]any{
			"error": "incorrect_offset", "correct_offset": sess.received,
		})
	}
	if resp := s.admitSessionBytes(req.ContentLength()); resp != nil {
		return resp
	}
	sess.received += req.ContentLength()
	sess.done = true
	o, err := s.Store.PutIdempotent(a.Commit.Path, sess.received, req.Header["X-Content-MD5"], req.Header["X-Attempt-Id"])
	if err != nil {
		return s.putErr(err)
	}
	return jsonResp(httpsim.StatusOK, metaOf(o))
}

func (s *Service) dbxDownload(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	a, errR := dbxParseArg(req)
	if errR != nil {
		return errR
	}
	o, ok := s.Store.Get(a.Path)
	if !ok {
		return errResp(httpsim.StatusNotFound, "path/not_found")
	}
	return &httpsim.Response{Status: httpsim.StatusOK, BodySize: o.Size,
		Header: map[string]string{"Dropbox-API-Result": mustJSON(metaOf(o))}}
}

func (s *Service) dbxDelete(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	a, errR := dbxParseArg(req)
	if errR != nil {
		return errR
	}
	o, ok := s.Store.Get(a.Path)
	if !ok {
		return errResp(httpsim.StatusNotFound, "path_lookup/not_found")
	}
	s.Store.Delete(a.Path)
	return jsonResp(httpsim.StatusOK, metaOf(o))
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}
