package tracelog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"detournet/internal/simclock"
)

func TestEmitAndEvents(t *testing.T) {
	eng := simclock.NewEngine()
	l := New(eng)
	eng.Schedule(5, func() { l.Emit("a.b", map[string]any{"x": 1}) })
	eng.Schedule(7, func() { l.Emit("a.c", nil) })
	eng.Run()
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != 5 || evs[0].Kind != "a.b" || evs[0].Attrs["x"] != 1 {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if evs[1].At != 7 {
		t.Fatalf("ev1 = %+v", evs[1])
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit("anything", nil) // must not panic
	if l.Len() != 0 || l.Events() != nil || l.Filter("x") != nil {
		t.Fatal("nil log not inert")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if l.Summary() != "" {
		t.Fatal("nil summary")
	}
	l.Reset()
}

func TestEmptyKindPanics(t *testing.T) {
	l := New(simclock.NewEngine())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Emit("", nil)
}

func TestFilterByPrefix(t *testing.T) {
	l := New(simclock.NewEngine())
	l.Emit("detour.upload.done", nil)
	l.Emit("detour.download.done", nil)
	l.Emit("agent.relay.upload", nil)
	l.Emit("detourish", nil) // prefix must respect segment boundaries
	if got := len(l.Filter("detour")); got != 2 {
		t.Fatalf("Filter(detour) = %d, want 2", got)
	}
	if got := len(l.Filter("detour.upload.done")); got != 1 {
		t.Fatalf("exact filter = %d", got)
	}
	if got := len(l.Filter("nothing")); got != 0 {
		t.Fatalf("miss filter = %d", got)
	}
}

func TestCapEvictsOldest(t *testing.T) {
	l := New(simclock.NewEngine())
	l.Cap = 3
	for i := 0; i < 10; i++ {
		l.Emit("e", map[string]any{"i": i})
	}
	evs := l.Events()
	if len(evs) != 3 || evs[0].Attrs["i"] != 7 {
		t.Fatalf("evicted wrong events: %+v", evs)
	}
}

func TestWriteJSONL(t *testing.T) {
	eng := simclock.NewEngine()
	l := New(eng)
	l.Emit("k1", map[string]any{"a": "b"})
	l.Emit("k2", nil)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "k1" || e.Attrs["a"] != "b" {
		t.Fatalf("decoded = %+v", e)
	}
}

func TestSummaryAndReset(t *testing.T) {
	l := New(simclock.NewEngine())
	l.Emit("x", nil)
	l.Emit("x", nil)
	l.Emit("y", nil)
	s := l.Summary()
	if !strings.Contains(s, "x") || !strings.Contains(s, "2") {
		t.Fatalf("summary:\n%s", s)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}
