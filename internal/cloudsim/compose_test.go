package cloudsim

import (
	"encoding/json"
	"testing"

	"detournet/internal/httpsim"
	"detournet/internal/simclock"
)

func composeReqBody(t *testing.T, name string, parts ...string) *httpsim.Request {
	t.Helper()
	body, err := json.Marshal(composeReq{Name: name, Parts: parts})
	if err != nil {
		t.Fatal(err)
	}
	return &httpsim.Request{Method: "POST", Body: body}
}

func TestComposeMovesParts(t *testing.T) {
	s := &Service{Store: NewObjectStore(simclock.NewEngine())}
	s.Store.Put("f.mp0000", 60, "")
	s.Store.Put("f.mp0001", 40, "")
	resp := s.compose(nil, composeReqBody(t, "f", "f.mp0000", "f.mp0001"))
	if resp.Status != httpsim.StatusOK {
		t.Fatalf("compose status = %d: %s", resp.Status, resp.Body)
	}
	o, ok := s.Store.Get("f")
	if !ok || o.Size != 100 {
		t.Fatalf("composed object = %+v, %v", o, ok)
	}
	if _, ok := s.Store.Get("f.mp0000"); ok {
		t.Fatal("part survived a successful compose")
	}
	if s.Store.Used() != 100 {
		t.Fatalf("Used = %v, want 100 (compose is a move)", s.Store.Used())
	}
}

// TestComposeFailureRestoresParts pins the atomic-commit behavior: when
// the final Put fails, the part objects must be restored, so the client
// can retry the compose instead of re-uploading everything.
func TestComposeFailureRestoresParts(t *testing.T) {
	s := &Service{Store: NewObjectStore(simclock.NewEngine())}
	s.Store.Put("f.mp0000", 60, "")
	s.Store.Put("f.mp0001", 40, "")
	// Shrink the quota under the stored bytes so the final Put fails
	// even after the parts are freed.
	s.Store.Quota = 50
	resp := s.compose(nil, composeReqBody(t, "f", "f.mp0000", "f.mp0001"))
	// Quota exhaustion now answers 507 Insufficient Storage (with a
	// Retry-After hint) instead of the generic 413.
	if resp.Status != httpsim.StatusInsufficientStorage {
		t.Fatalf("compose status = %d: %s", resp.Status, resp.Body)
	}
	if _, ok := resp.Header["Retry-After"]; !ok {
		t.Fatal("507 response carries no Retry-After hint")
	}
	if _, ok := s.Store.Get("f"); ok {
		t.Fatal("final object exists after failed compose")
	}
	for _, part := range []string{"f.mp0000", "f.mp0001"} {
		if _, ok := s.Store.Get(part); !ok {
			t.Fatalf("part %s destroyed by failed compose", part)
		}
	}
	if s.Store.Used() != 100 {
		t.Fatalf("Used = %v, want 100 after rollback", s.Store.Used())
	}
}
