package sdk

import (
	"strings"
	"testing"

	"detournet/internal/cloudsim"
	"detournet/internal/simproc"
)

// TestDriveResumeAfterInjectedFailure interrupts a WriteChunk with an
// injected server error: the local session's offset runs ahead of the
// server's, and ResumeUpload must recover the true offset from the
// status query.
func TestDriveResumeAfterInjectedFailure(t *testing.T) {
	w := newWorld(t)
	svc := w.svc[cloudsim.GoogleDrive]
	g := w.client(t, cloudsim.GoogleDrive, Options{}).(*GoogleDrive)
	w.run(t, func(p *simproc.Proc) {
		size := 30e6
		sess, err := g.BeginUpload(p, "crash.bin", size, "")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.WriteChunk(p, 10e6, false); err != nil {
			t.Error(err)
			return
		}
		svc.FailNext = 1 // the next chunk dies server-side
		if _, err := sess.WriteChunk(p, 10e6, false); err == nil {
			t.Error("chunk through injected fault succeeded")
			return
		}
		// The failed chunk bumped the local offset to 20e6, but the
		// server only confirmed 10e6.
		tok := sess.(TokenSession).Token()
		if tok.Offset != 20e6 {
			t.Errorf("stale token offset = %v, want 20e6", tok.Offset)
		}
		resumed, err := g.Resume(p, tok)
		if err != nil {
			t.Error(err)
			return
		}
		if resumed.Written() != 10e6 {
			t.Errorf("resumed offset = %v, want 10e6", resumed.Written())
			return
		}
		if _, err := resumed.WriteChunk(p, 20e6, true); err != nil {
			t.Error(err)
			return
		}
		g.Close()
	})
	if o, ok := w.svc[cloudsim.GoogleDrive].Store.Get("crash.bin"); !ok || o.Size != 30e6 {
		t.Fatalf("resumed object: %+v %v", o, ok)
	}
}

// TestDropboxResumeRoundTrip abandons a session mid-upload and
// reattaches by session id + offset.
func TestDropboxResumeRoundTrip(t *testing.T) {
	w := newWorld(t)
	d := w.client(t, cloudsim.Dropbox, Options{}).(*Dropbox)
	w.run(t, func(p *simproc.Proc) {
		sess, err := d.BeginUpload(p, "dbx.bin", 12e6, "digest")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.WriteChunk(p, 8e6, false); err != nil {
			t.Error(err)
			return
		}
		tok := sess.(TokenSession).Token()
		if tok.Ref == "" || tok.Offset != 8e6 {
			t.Errorf("token = %+v", tok)
		}

		resumed, err := d.Resume(p, tok)
		if err != nil {
			t.Error(err)
			return
		}
		if resumed.Written() != 8e6 {
			t.Errorf("resumed offset = %v, want 8e6", resumed.Written())
			return
		}
		fi, err := resumed.WriteChunk(p, 4e6, true)
		if err != nil {
			t.Error(err)
			return
		}
		if fi.Size != 12e6 {
			t.Errorf("final size = %v", fi.Size)
		}
		d.Close()
	})
	if o, ok := w.svc[cloudsim.Dropbox].Store.Get("dbx.bin"); !ok || o.Size != 12e6 {
		t.Fatalf("stored: %+v %v", o, ok)
	}
}

// TestDropboxResumeOffsetMismatch resumes with a stale offset; the 409
// incorrect_offset response carries the server's correct offset and the
// client self-corrects.
func TestDropboxResumeOffsetMismatch(t *testing.T) {
	w := newWorld(t)
	d := w.client(t, cloudsim.Dropbox, Options{}).(*Dropbox)
	w.run(t, func(p *simproc.Proc) {
		sess, err := d.BeginUpload(p, "skew.bin", 10e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.WriteChunk(p, 6e6, false); err != nil {
			t.Error(err)
			return
		}
		id := sess.(*DropboxSession).sessionID
		// Believed offset is wrong in both directions; the server wins.
		for _, stale := range []float64{0, 9e6} {
			resumed, err := d.ResumeUpload(p, id, "skew.bin", stale, "")
			if err != nil {
				t.Errorf("resume at %v: %v", stale, err)
				return
			}
			if resumed.Written() != 6e6 {
				t.Errorf("resume at %v corrected to %v, want 6e6", stale, resumed.Written())
			}
		}
		d.Close()
	})
}

// TestResumeExpiredSession ages sessions past the service TTL; both
// providers' resume paths must surface the 404.
func TestResumeExpiredSession(t *testing.T) {
	w := newWorld(t)
	g := w.client(t, cloudsim.GoogleDrive, Options{}).(*GoogleDrive)
	d := w.client(t, cloudsim.Dropbox, Options{}).(*Dropbox)
	w.svc[cloudsim.GoogleDrive].SessionTTL = 600
	w.svc[cloudsim.Dropbox].SessionTTL = 600
	w.run(t, func(p *simproc.Proc) {
		gs, err := g.BeginUpload(p, "old.bin", 10e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := gs.WriteChunk(p, 5e6, false); err != nil {
			t.Error(err)
			return
		}
		ds, err := d.BeginUpload(p, "old2.bin", 10e6, "")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := ds.WriteChunk(p, 5e6, false); err != nil {
			t.Error(err)
			return
		}

		p.Sleep(3600) // outlive the TTL

		if _, err := g.Resume(p, gs.(TokenSession).Token()); err == nil {
			t.Error("drive resume of expired session succeeded")
		} else if !strings.Contains(err.Error(), "404") {
			t.Errorf("drive expired resume: %v", err)
		}
		if _, err := d.Resume(p, ds.(TokenSession).Token()); err == nil {
			t.Error("dropbox resume of expired session succeeded")
		} else if !strings.Contains(err.Error(), "404") {
			t.Errorf("dropbox expired resume: %v", err)
		}
		g.Close()
		d.Close()
	})
}
