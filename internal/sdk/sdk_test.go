package sdk

import (
	"math"
	"strings"
	"testing"

	"detournet/internal/cloudsim"
	"detournet/internal/fluid"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

type world struct {
	eng *simclock.Engine
	r   *simproc.Runner
	tn  *transport.Net
	svc map[cloudsim.Style]*cloudsim.Service
}

func newWorld(t *testing.T) *world {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	hosts := []string{"client", "gdrive-dc", "dropbox-dc", "onedrive-dc"}
	for _, h := range hosts {
		g.MustAddNode(&topology.Node{Name: h, Kind: topology.Host, RespondsICMP: true})
	}
	for _, h := range hosts[1:] {
		g.MustConnect("client", h, topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.025})
	}
	tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
	w := &world{eng: eng, r: r, tn: tn, svc: map[cloudsim.Style]*cloudsim.Service{}}
	for style, host := range map[cloudsim.Style]string{
		cloudsim.GoogleDrive: "gdrive-dc",
		cloudsim.Dropbox:     "dropbox-dc",
		cloudsim.OneDrive:    "onedrive-dc",
	} {
		svc := cloudsim.NewService(eng, tn, style.String(), host, style)
		svc.Start(tn)
		w.svc[style] = svc
	}
	return w
}

// run executes fn in a proc and drives the sim to completion; server
// accept loops stay parked, so drive with RunUntil on a far horizon.
func (w *world) run(t *testing.T, fn func(p *simproc.Proc)) {
	t.Helper()
	done := false
	w.r.Go("test", func(p *simproc.Proc) {
		fn(p)
		done = true
	})
	w.r.RunUntil(simclock.Time(1e7))
	if !done {
		t.Fatal("test proc did not finish")
	}
}

func (w *world) client(t *testing.T, style cloudsim.Style, opts Options) Client {
	t.Helper()
	svc := w.svc[style]
	creds := Register(svc, "bench-app", "secret")
	switch style {
	case cloudsim.GoogleDrive:
		return NewGoogleDrive(w.eng, w.tn, "client", svc.Host, creds, opts)
	case cloudsim.Dropbox:
		return NewDropbox(w.eng, w.tn, "client", svc.Host, creds, opts)
	default:
		return NewOneDrive(w.eng, w.tn, "client", svc.Host, creds, opts)
	}
}

func TestUploadDownloadDeleteAllProviders(t *testing.T) {
	for _, style := range []cloudsim.Style{cloudsim.GoogleDrive, cloudsim.Dropbox, cloudsim.OneDrive} {
		t.Run(style.String(), func(t *testing.T) {
			w := newWorld(t)
			c := w.client(t, style, Options{})
			w.run(t, func(p *simproc.Proc) {
				fi, err := c.Upload(p, "test.bin", 10e6, "digest123")
				if err != nil {
					t.Errorf("upload: %v", err)
					return
				}
				if fi.Size != 10e6 || fi.Name != "test.bin" {
					t.Errorf("meta = %+v", fi)
				}
				store := w.svc[style].Store
				if o, ok := store.Get("test.bin"); !ok || o.Size != 10e6 {
					t.Errorf("store missing object: %+v %v", o, ok)
				}
				dl, err := c.Download(p, "test.bin")
				if err != nil {
					t.Errorf("download: %v", err)
					return
				}
				if dl.Size != 10e6 {
					t.Errorf("downloaded size = %v", dl.Size)
				}
				if err := c.Delete(p, "test.bin"); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
				if store.Len() != 0 {
					t.Errorf("store not empty after delete")
				}
				c.Close()
			})
		})
	}
}

func TestDownloadMissingFileFails(t *testing.T) {
	for _, style := range []cloudsim.Style{cloudsim.GoogleDrive, cloudsim.Dropbox, cloudsim.OneDrive} {
		t.Run(style.String(), func(t *testing.T) {
			w := newWorld(t)
			c := w.client(t, style, Options{})
			w.run(t, func(p *simproc.Proc) {
				if _, err := c.Download(p, "ghost.bin"); err == nil {
					t.Error("download of missing file succeeded")
				}
				if err := c.Delete(p, "ghost.bin"); err == nil {
					t.Error("delete of missing file succeeded")
				}
				c.Close()
			})
		})
	}
}

func TestChunkCountsPerProvider(t *testing.T) {
	// 20 MB: Drive (8 MiB) = 1 init + 3 PUTs; Dropbox (4 MiB) = start +
	// 3 append + finish; OneDrive (10 MiB) = create + 2 PUTs. Plus one
	// token fetch each.
	cases := []struct {
		style    cloudsim.Style
		wantReqs int
	}{
		{cloudsim.GoogleDrive, 1 + 3},
		{cloudsim.Dropbox, 1 + 3 + 1},
		{cloudsim.OneDrive, 1 + 2},
	}
	for _, tc := range cases {
		t.Run(tc.style.String(), func(t *testing.T) {
			w := newWorld(t)
			c := w.client(t, tc.style, Options{})
			w.run(t, func(p *simproc.Proc) {
				if _, err := c.Upload(p, "f.bin", 20<<20, ""); err != nil {
					t.Errorf("upload: %v", err)
				}
				c.Close()
			})
			if got := w.svc[tc.style].Requests; got != tc.wantReqs {
				t.Errorf("requests = %d, want %d", got, tc.wantReqs)
			}
		})
	}
}

func TestSmallFileSingleShotDropbox(t *testing.T) {
	w := newWorld(t)
	c := w.client(t, cloudsim.Dropbox, Options{})
	w.run(t, func(p *simproc.Proc) {
		if _, err := c.Upload(p, "small.bin", 1e6, ""); err != nil {
			t.Errorf("upload: %v", err)
		}
		c.Close()
	})
	if got := w.svc[cloudsim.Dropbox].Requests; got != 1 {
		t.Errorf("small upload used %d requests, want 1", got)
	}
}

func TestCustomChunkSize(t *testing.T) {
	w := newWorld(t)
	c := w.client(t, cloudsim.GoogleDrive, Options{ChunkBytes: 1 << 20})
	w.run(t, func(p *simproc.Proc) {
		if _, err := c.Upload(p, "f.bin", 4<<20, ""); err != nil {
			t.Errorf("upload: %v", err)
		}
		c.Close()
	})
	// 1 initiate + 4 chunk PUTs
	if got := w.svc[cloudsim.GoogleDrive].Requests; got != 5 {
		t.Errorf("requests = %d, want 5", got)
	}
}

func TestOverwriteReplacesObject(t *testing.T) {
	w := newWorld(t)
	c := w.client(t, cloudsim.Dropbox, Options{})
	w.run(t, func(p *simproc.Proc) {
		if _, err := c.Upload(p, "f.bin", 1e6, ""); err != nil {
			t.Error(err)
		}
		if _, err := c.Upload(p, "f.bin", 2e6, ""); err != nil {
			t.Error(err)
		}
		c.Close()
	})
	store := w.svc[cloudsim.Dropbox].Store
	o, ok := store.Get("f.bin")
	if !ok || o.Size != 2e6 || store.Len() != 1 {
		t.Fatalf("after overwrite: %+v len=%d", o, store.Len())
	}
}

func TestUploadTimeScalesWithSizeAndProvider(t *testing.T) {
	// Same path, same bandwidth: more chunks => more request round trips
	// => Dropbox (4 MiB chunks) slower than Drive (8 MiB) for the same
	// bytes on a long-RTT path.
	w := newWorld(t)
	gd := w.client(t, cloudsim.GoogleDrive, Options{})
	dbx := w.client(t, cloudsim.Dropbox, Options{})
	var tGD, tDBX float64
	w.run(t, func(p *simproc.Proc) {
		t0 := p.Now()
		if _, err := gd.Upload(p, "a.bin", 40<<20, ""); err != nil {
			t.Error(err)
		}
		tGD = float64(p.Now() - t0)
		t0 = p.Now()
		if _, err := dbx.Upload(p, "b.bin", 40<<20, ""); err != nil {
			t.Error(err)
		}
		tDBX = float64(p.Now() - t0)
		gd.Close()
		dbx.Close()
	})
	if tGD <= 0 || tDBX <= 0 {
		t.Fatalf("times: gd=%v dbx=%v", tGD, tDBX)
	}
	if tDBX <= tGD {
		t.Fatalf("chunkier Dropbox (%v) should be slower than Drive (%v) here", tDBX, tGD)
	}
	// Both are within 2x of the bandwidth bound (40MiB at 8MB/s ≈ 5.2s).
	bound := 40 * float64(1<<20) / 8e6
	if tGD < bound || tGD > 2.5*bound {
		t.Fatalf("Drive upload time %v implausible (bound %v)", tGD, bound)
	}
}

func TestTokenReusedAcrossCalls(t *testing.T) {
	w := newWorld(t)
	c := w.client(t, cloudsim.GoogleDrive, Options{}).(*GoogleDrive)
	w.run(t, func(p *simproc.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := c.Upload(p, "f.bin", 1e6, ""); err != nil {
				t.Error(err)
			}
		}
		c.Close()
	})
	if c.ts.Fetches != 1 {
		t.Fatalf("token fetches = %d, want 1", c.ts.Fetches)
	}
}

func TestQuotaEnforced(t *testing.T) {
	w := newWorld(t)
	w.svc[cloudsim.Dropbox].Store.Quota = 5e6
	c := w.client(t, cloudsim.Dropbox, Options{})
	w.run(t, func(p *simproc.Proc) {
		if _, err := c.Upload(p, "ok.bin", 4e6, ""); err != nil {
			t.Errorf("within quota: %v", err)
		}
		if _, err := c.Upload(p, "big.bin", 4e6, ""); err == nil {
			t.Error("over-quota upload succeeded")
		} else if !strings.Contains(err.Error(), "quota") && !strings.Contains(err.Error(), "413") {
			t.Errorf("unexpected error: %v", err)
		}
		c.Close()
	})
}

func TestZeroByteUpload(t *testing.T) {
	for _, style := range []cloudsim.Style{cloudsim.GoogleDrive, cloudsim.Dropbox, cloudsim.OneDrive} {
		t.Run(style.String(), func(t *testing.T) {
			w := newWorld(t)
			c := w.client(t, style, Options{})
			w.run(t, func(p *simproc.Proc) {
				if _, err := c.Upload(p, "empty.bin", 0, ""); err != nil {
					t.Errorf("zero-byte upload: %v", err)
				}
				c.Close()
			})
		})
	}
}

func TestUploadExactChunkMultiple(t *testing.T) {
	// Exactly 2 chunks, no remainder: must not send an empty extra chunk.
	w := newWorld(t)
	c := w.client(t, cloudsim.GoogleDrive, Options{ChunkBytes: 1 << 20})
	w.run(t, func(p *simproc.Proc) {
		fi, err := c.Upload(p, "f.bin", 2<<20, "")
		if err != nil {
			t.Errorf("upload: %v", err)
		}
		if fi.Size != float64(2<<20) {
			t.Errorf("size = %v", fi.Size)
		}
		c.Close()
	})
	if got := w.svc[cloudsim.GoogleDrive].Requests; got != 3 { // init + 2 PUTs
		t.Errorf("requests = %d, want 3", got)
	}
}

func TestProviderIdentity(t *testing.T) {
	w := newWorld(t)
	if n := w.client(t, cloudsim.GoogleDrive, Options{}).ProviderName(); n != "GoogleDrive" {
		t.Fatal(n)
	}
	if n := w.client(t, cloudsim.Dropbox, Options{}).ProviderName(); n != "Dropbox" {
		t.Fatal(n)
	}
	c := w.client(t, cloudsim.OneDrive, Options{})
	if c.ProviderName() != "OneDrive" || c.Host() != "onedrive-dc" || c.From() != "client" {
		t.Fatalf("identity: %s %s %s", c.ProviderName(), c.Host(), c.From())
	}
}

func TestUploadTimesAreFinite(t *testing.T) {
	w := newWorld(t)
	c := w.client(t, cloudsim.OneDrive, Options{})
	w.run(t, func(p *simproc.Proc) {
		t0 := p.Now()
		if _, err := c.Upload(p, "f.bin", 100<<20, ""); err != nil {
			t.Error(err)
		}
		dur := float64(p.Now() - t0)
		if math.IsInf(dur, 0) || dur <= 0 {
			t.Errorf("dur = %v", dur)
		}
		// 100 MiB at 8 MB/s ≈ 13.1s; allow ramp + 11 fragments of overhead.
		if dur < 13 || dur > 20 {
			t.Errorf("100MB upload took %v, want ~13-20s", dur)
		}
		c.Close()
	})
}

func TestRateLimitedUploadRetriesAndSucceeds(t *testing.T) {
	w := newWorld(t)
	svc := w.svc[cloudsim.GoogleDrive]
	svc.RateLimit = 2 // 2 requests/second: a chunked upload must back off
	svc.RateWindow = 1
	c := w.client(t, cloudsim.GoogleDrive, Options{ChunkBytes: 2 << 20})
	var dur float64
	w.run(t, func(p *simproc.Proc) {
		t0 := p.Now()
		fi, err := c.Upload(p, "f.bin", 10<<20, "") // init + 5 chunk PUTs
		if err != nil {
			t.Errorf("throttled upload failed: %v", err)
			return
		}
		if fi.Size != float64(10<<20) {
			t.Errorf("size = %v", fi.Size)
		}
		dur = float64(p.Now() - t0)
		c.Close()
	})
	if svc.Throttled == 0 {
		t.Fatal("rate limit never triggered")
	}
	if o, ok := svc.Store.Get("f.bin"); !ok || o.Size != float64(10<<20) {
		t.Fatalf("object not stored: %+v %v", o, ok)
	}
	if dur <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestRateLimitExhaustionSurfacesError(t *testing.T) {
	w := newWorld(t)
	svc := w.svc[cloudsim.Dropbox]
	svc.RateLimit = 1
	svc.RateWindow = 1e7 // effectively never resets within the test
	c := w.client(t, cloudsim.Dropbox, Options{})
	w.run(t, func(p *simproc.Proc) {
		// First call consumes the only slot.
		if _, err := c.Upload(p, "a.bin", 1e6, ""); err != nil {
			t.Errorf("first upload: %v", err)
		}
		// Second call retries maxThrottleRetries times, then errors.
		if _, err := c.Upload(p, "b.bin", 1e6, ""); err == nil {
			t.Error("exhausted rate limit did not surface an error")
		} else if !strings.Contains(err.Error(), "429") {
			t.Errorf("unexpected error: %v", err)
		}
		c.Close()
	})
}

func TestThrottlingSlowsButPreservesSemantics(t *testing.T) {
	// The same upload with and without throttling stores identical
	// objects; only the time differs.
	base := func(limit int) (float64, float64) {
		w := newWorld(t)
		svc := w.svc[cloudsim.OneDrive]
		if limit > 0 {
			svc.RateLimit = limit
			svc.RateWindow = 2
		}
		c := w.client(t, cloudsim.OneDrive, Options{})
		var dur float64
		w.run(t, func(p *simproc.Proc) {
			t0 := p.Now()
			if _, err := c.Upload(p, "f.bin", 30<<20, ""); err != nil {
				t.Errorf("upload: %v", err)
			}
			dur = float64(p.Now() - t0)
			c.Close()
		})
		o, _ := svc.Store.Get("f.bin")
		return dur, o.Size
	}
	freeDur, freeSize := base(0)
	limDur, limSize := base(1)
	if freeSize != limSize {
		t.Fatalf("sizes differ: %v vs %v", freeSize, limSize)
	}
	if limDur <= freeDur {
		t.Fatalf("throttled upload (%v) not slower than free (%v)", limDur, freeDur)
	}
}
