// Telemetry replay: the observability harness behind `make telemetry`,
// the examples/telemetry program, detourd's -telemetry mode, and
// detourctl's -dash dashboard. One RunTelemetry call builds a world with
// dynamic routing, arms the reconvergence storm, and drives a
// flash-crowd fleet through a fully instrumented scheduler: a metrics
// registry collects counters and histograms, a simclock-driven sampler
// records per-window time series (link utilization, queue depth, DTN
// staging fill, provider quota headroom, journal size, active flows)
// into ring buffers, and a flight recorder keeps the complete decision
// trace of every failed transfer.
//
// Determinism is inherited, not asserted: one worker, arrivals fed at
// virtual-time boundaries, the sampler ticking on the virtual clock as a
// scenario pauser, and report renderers that iterate only sorted data.
// Same seed, same binary ⇒ byte-identical reports, Prometheus dumps, and
// JSON exports — which `make check` verifies.
package sched

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"detournet/internal/bgppol"
	"detournet/internal/core"
	"detournet/internal/faults"
	"detournet/internal/journal"
	"detournet/internal/scenario"
	"detournet/internal/telemetry"
	"detournet/internal/workload"
)

// TelemetryOptions configures one instrumented replay.
type TelemetryOptions struct {
	// Seed drives the world, the storm, and the flash-crowd trace.
	Seed int64
	// Jobs is the fleet size (default 40); Size the bytes per transfer
	// (default 24 MB).
	Jobs int
	Size float64
	// SampleEvery is the sampler's virtual-second grid (default 15).
	SampleEvery float64
	// DumpEvery, when positive with DumpTo set, prints a compact
	// telemetry line every so many virtual seconds — the periodic dump
	// behind `detourd -telemetry`.
	DumpEvery float64
	DumpTo    io.Writer
	// NoInstrument runs the identical storm with the whole telemetry
	// plane detached (no registry, recorder, or sampler) — the overhead
	// guard's baseline. The outcome's observability fields stay empty.
	NoInstrument bool
}

// TelemetryOutcome is one replay's complete, deterministic result set:
// plain results plus every observability surface, captured as value
// snapshots so callers can render or diff them without touching live
// state.
type TelemetryOutcome struct {
	Results []Result
	Stats   Stats
	// Snapshot is the metrics registry at end of run.
	Snapshot telemetry.Snapshot
	// Series are the sampler's ring buffers, sorted by name.
	Series []telemetry.SeriesSnapshot
	// Traces are the flight recorder's retained terminal traces (failed
	// in full, successes truncated to counts), failures first.
	Traces []telemetry.JobTrace
	// RecorderFinished / RecorderFailed count jobs through the recorder.
	RecorderFinished, RecorderFailed int
	// Transitions is the fault injector's transition log.
	Transitions []string
	// VirtualSeconds is the simulated span; SampleEvery and Samples
	// describe the sampling grid actually used.
	VirtualSeconds float64
	SampleEvery    float64
	Samples        int
}

// Goodput is delivered bytes per virtual second across the whole run.
func (o TelemetryOutcome) Goodput() float64 {
	if o.VirtualSeconds <= 0 {
		return 0
	}
	var bytes float64
	for _, r := range o.Results {
		if r.Err == nil {
			bytes += r.Job.Size
		}
	}
	return bytes / o.VirtualSeconds
}

// telemetryFeeder wraps the simulation executor so every virtual-time
// advance completes and then offers the new clock to the arrival feed —
// the overload example's idiom, extended with the rerouting entry point
// so the churn stack stays armed.
type telemetryFeeder struct {
	exec *SimExecutor
	feed func(now float64)
}

func (f *telemetryFeeder) after() {
	if f.feed != nil {
		f.feed(f.exec.VirtualNow())
	}
}

func (f *telemetryFeeder) Execute(j Job, r core.Route) (float64, error) {
	sec, err := f.exec.Execute(j, r)
	f.after()
	return sec, err
}

func (f *telemetryFeeder) ExecuteResumable(j Job, r core.Route, ck *core.Checkpoint) (float64, error) {
	sec, err := f.exec.ExecuteResumable(j, r, ck)
	f.after()
	return sec, err
}

func (f *telemetryFeeder) ExecuteRerouting(j Job, r core.Route, ck *core.Checkpoint, parkBudget float64) (float64, core.Route, int, float64, error) {
	sec, final, nr, parked, err := f.exec.ExecuteRerouting(j, r, ck, parkBudget)
	f.after()
	return sec, final, nr, parked, err
}

func (f *telemetryFeeder) Plan(client, provider string, size float64) (core.Route, []core.Route, error) {
	route, cands, err := f.exec.Plan(client, provider, size)
	f.after()
	return route, cands, err
}

func (f *telemetryFeeder) Sleep(sec float64) {
	f.exec.SleepVirtual(sec)
	f.after()
}

// RunTelemetry replays the instrumented flash crowd once. See the
// package comment.
func RunTelemetry(o TelemetryOptions) TelemetryOutcome {
	if o.Jobs <= 0 {
		o.Jobs = 40
	}
	if o.Size <= 0 {
		o.Size = 24e6
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 15
	}

	w := scenario.Build(o.Seed, scenario.WithDynamicRouting())
	inj := faults.NewInjector(w, o.Seed, faults.ChurnSchedule()...)
	exec := NewSimExecutor(w)
	defer exec.Close()

	// The observability plane: registry for counters/histograms, sampler
	// on the virtual clock, flight recorder stamped with virtual time.
	// Every consumer below is nil-safe, so the NoInstrument baseline
	// runs the identical code with the plane detached.
	var (
		reg  *telemetry.Registry
		rec  *telemetry.FlightRecorder
		samp *telemetry.Sampler
	)
	if !o.NoInstrument {
		reg = telemetry.NewRegistry()
		rec = telemetry.NewFlightRecorder(exec.VirtualNow, 64, 6)
		samp = telemetry.NewSampler(w.Eng, o.SampleEvery, 1024)
		// The sampler pauses like cross-traffic: armed only while a
		// workload drives the engine, so its self-rescheduling tick never
		// wedges the event-queue drain between transfers.
		w.AddPauser(samp)
	}

	cj, _, err := NewControlJournal(journal.NewMemDevice())
	if err != nil {
		panic(err)
	}

	// A finite provider quota (ample — double the fleet) makes the
	// headroom series meaningful without ever rejecting a byte.
	store := w.Services[scenario.GoogleDrive].Store
	store.Quota = 2 * float64(o.Jobs) * o.Size

	var results []Result
	fd := &telemetryFeeder{exec: exec}
	cfg := Config{
		Workers:  1, // sequential ⇒ deterministic
		Executor: fd, Planner: fd,
		// A deliberately thin survival stack: rerouting with a short park
		// budget and only one retry, so the storm's blackhole windows
		// produce real failures — the traces the flight recorder exists
		// to keep.
		MaxAttempts: 2,
		Reroute:     true,
		ParkBudget:  20,
		Journal:     cj,
		Telemetry:   reg,
		Recorder:    rec,
		Now:         exec.VirtualNow,
		Sleep:       fd.Sleep,
		OnResult:    func(r Result) { results = append(results, r) },
	}
	s := New(cfg)
	w.RouteBus.Subscribe(func(ev bgppol.Event) {
		s.RouteEvent(RouteEvent{
			Withdraw: ev.Kind == bgppol.EventWithdraw,
			DomainA:  ev.DomainA, DomainB: ev.DomainB,
			FromNode: ev.FromNode, ToNode: ev.ToNode,
			At: ev.At, ConvergedBy: ev.ConvergedBy,
		})
	})
	s.Start()

	// Sampler sources, one probe per series. Link picks: the paper's
	// rate-limited PacificWave hand-off, the fast private peering, and
	// the CANARIE detour's first hop.
	type linkProbe struct {
		name  string
		probe func() float64
	}
	var linkProbes []linkProbe
	for _, lk := range [][2]string{
		{"vncv1", "pacificwave"},
		{"vncv1", "google-peer"},
		{"vncv1", "edmn1"},
	} {
		e, ok := w.Graph.Edge(lk[0], lk[1])
		if !ok {
			continue
		}
		l := e.Link
		lp := linkProbe{name: "link." + lk[0] + ">" + lk[1] + ".util", probe: l.Utilization}
		linkProbes = append(linkProbes, lp)
		samp.Track(lp.name, lp.probe)
	}
	fl := w.Graph.Fluid()
	samp.Track("net.flows", func() float64 { return float64(fl.ActiveFlows()) })
	samp.Track("sched.queued", func() float64 { q, _ := s.Depths(); return float64(q) })
	samp.Track("sched.running", func() float64 { _, r := s.Depths(); return float64(r) })
	for _, dtn := range scenario.DTNs {
		d := w.Daemons[dtn]
		samp.Track("dtn."+dtn+".staged_mb", func() float64 { return d.Stats().Used / 1e6 })
	}
	svc := w.Services[scenario.GoogleDrive]
	samp.Track("provider.gdrive.stored_mb", func() float64 { return store.Used() / 1e6 })
	samp.Track("provider.gdrive.headroom_mb", func() float64 { return store.QuotaHeadroom() / 1e6 })
	samp.Track("provider.gdrive.pending_mb", func() float64 { return svc.PendingBytes() / 1e6 })
	samp.Track("journal.kb", func() float64 { return float64(cj.DeviceSize()) / 1024 })

	if o.DumpEvery > 0 && o.DumpTo != nil {
		next := o.DumpEvery
		samp.OnSample(func(t float64) {
			if t+1e-9 < next {
				return
			}
			next = (math.Floor(t/o.DumpEvery) + 1) * o.DumpEvery
			q, run := s.Depths()
			fmt.Fprintf(o.DumpTo, "[t=%6.0f] queued=%2d running=%d flows=%2.0f", t, q, run,
				float64(fl.ActiveFlows()))
			for _, lp := range linkProbes {
				fmt.Fprintf(o.DumpTo, " %s=%.2f", lp.name[len("link."):], lp.probe())
			}
			fmt.Fprintf(o.DumpTo, " journal=%.1fKB\n", float64(cj.DeviceSize())/1024)
		})
	}

	// The flash crowd: a calm lead-in, a burst that lands inside the
	// storm's churn windows, and a calm tail.
	crowd, err := workload.NewFlashCrowd(
		workload.Phase{RatePerSec: 0.05, Seconds: 40},
		workload.Phase{RatePerSec: 0.5, Seconds: 120},
		workload.Phase{RatePerSec: 0.05},
	)
	if err != nil {
		panic(err)
	}
	trace, err := workload.GenerateFleet(workload.FleetSpec{
		Jobs:      o.Jobs,
		Clients:   []string{scenario.UBC, scenario.UAlberta},
		Providers: []string{scenario.GoogleDrive},
		Tenants:   []string{"telemetry"},
		Sizes:     workload.Fixed{Bytes: o.Size},
		Arrivals:  crowd,
		Prefix:    "tlm", PriorityLevels: 1,
	}, rand.New(rand.NewSource(o.Seed)))
	if err != nil {
		panic(err)
	}

	i := 0
	feed := func(now float64) {
		for i < len(trace) && trace[i].At <= now {
			fj := trace[i]
			i++
			err := s.Submit(Job{
				Tenant: fj.Tenant, Client: fj.Client, Provider: fj.Provider,
				Name: fj.Name, Size: fj.Size, Priority: fj.Priority,
			})
			if err != nil {
				panic(err)
			}
		}
	}
	fd.feed = feed
	feed(exec.VirtualNow())
	for {
		s.Drain()
		if i >= len(trace) {
			break
		}
		if next, now := trace[i].At, exec.VirtualNow(); next > now {
			exec.SleepVirtual(next - now)
		}
		feed(exec.VirtualNow())
	}
	s.Drain()

	st := s.Stats()
	s.Close()
	out := TelemetryOutcome{
		Results: results, Stats: st,
		Snapshot:       reg.Snapshot(),
		Series:         samp.Snapshot(),
		Traces:         rec.Retained(),
		Transitions:    inj.Transitions(),
		VirtualSeconds: exec.VirtualNow(),
		SampleEvery:    o.SampleEvery,
		Samples:        samp.Samples(),
	}
	out.RecorderFinished, out.RecorderFailed = rec.Counts()
	return out
}

// sparkWidth is the dashboard sparkline width in columns.
const sparkWidth = 48

// writeSeries renders one time-series line: name, min/max/last, spark.
func writeSeries(out io.Writer, ss telemetry.SeriesSnapshot) {
	fmt.Fprintf(out, "  %-32s %9.2f .. %-9.2f last %9.2f  |%s|\n",
		ss.Name, ss.Min(), ss.Max(), ss.Last(), telemetry.Spark(ss.Values, sparkWidth))
}

// WriteTelemetryReport renders the deterministic full report the
// telemetry example and detourd's -telemetry mode print: run stats, the
// sampled time series with sparklines, the failed jobs' flight-recorder
// traces decision by decision, and the Prometheus dump.
func WriteTelemetryReport(out io.Writer, o TelemetryOutcome) {
	fmt.Fprintf(out, "Telemetry: %d transfers through a reconvergence storm (%d fault transitions, %.0f virtual s, goodput %.2f MB/s)\n",
		len(o.Results), len(o.Transitions), o.VirtualSeconds, o.Goodput()/1e6)
	fmt.Fprintf(out, "stats: %s\n", o.Stats)

	fmt.Fprintf(out, "time series (every %g virtual s, %d samples):\n", o.SampleEvery, o.Samples)
	for _, ss := range o.Series {
		writeSeries(out, ss)
	}

	fmt.Fprintf(out, "flight recorder: %d jobs finished, %d failed traces retained in full\n",
		o.RecorderFinished, o.RecorderFailed)
	for _, tr := range o.Traces {
		if !tr.Failed {
			continue
		}
		fmt.Fprintf(out, "  %s — %d events (%d dropped):\n", tr.Job, tr.Seen, tr.Dropped)
		for _, ev := range tr.Events {
			fmt.Fprintf(out, "    %s\n", ev.String())
		}
	}

	fmt.Fprintln(out, "metrics (prometheus):")
	if err := o.Snapshot.WritePrometheus(out); err != nil {
		panic(err)
	}
}

// WriteTelemetryDash renders the compact terminal dashboard behind
// `detourctl -dash`: headline counters, every sampled series as a
// sparkline, and one line per retained failed trace.
func WriteTelemetryDash(out io.Writer, o TelemetryOutcome) {
	st := o.Stats
	fmt.Fprintf(out, "== detour telemetry dashboard (%.0f virtual s, %d samples every %gs) ==\n",
		o.VirtualSeconds, o.Samples, o.SampleEvery)
	fmt.Fprintf(out, " jobs: %d done / %d failed / %d expired / %d shed | goodput %.2f MB/s\n",
		st.Done, st.Failed, st.Expired, st.Shed, o.Goodput()/1e6)
	fmt.Fprintf(out, " churn: %d reroutes, %d parks (%.0fs), %d retries, %d failovers, %d fallbacks\n",
		st.Reroutes, st.Parks, st.ParkSeconds, st.Retries, st.Failovers, st.Fallbacks)
	fmt.Fprintln(out, " series:")
	for _, ss := range o.Series {
		writeSeries(out, ss)
	}
	fmt.Fprintf(out, " flight recorder: %d finished, %d failed retained\n",
		o.RecorderFinished, o.RecorderFailed)
	for _, tr := range o.Traces {
		if !tr.Failed {
			continue
		}
		last := "-"
		if len(tr.Events) > 0 {
			last = tr.Events[len(tr.Events)-1].String()
		}
		fmt.Fprintf(out, "  failed %-14s %2d events, last: %s\n", tr.Job, tr.Seen, last)
	}
}
