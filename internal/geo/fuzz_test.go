package geo

import "testing"

// FuzzDBLookup: arbitrary strings must never panic the geolocation
// lookup, and garbage must not resolve.
func FuzzDBLookup(f *testing.F) {
	f.Add("142.103.2.253")
	f.Add("not-an-ip")
	f.Add("999.999.999.999")
	f.Add("::1")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		d := PaperDB()
		_, _ = d.Lookup(s)
	})
}
