// Package rsyncx implements the rsync algorithm (Tridgell & Mackerras)
// and a daemon/client pair over the simulated transport — the tool the
// paper uses for the first hop of every detour (client → intermediate
// DTN).
//
// The paper notes that staged files are deleted before each run, so
// detour timings never benefit from rsync's delta transfer; the
// algorithm is nonetheless implemented in full (rolling weak checksum,
// strong block hashes, block matching, delta encode/apply) so the
// library is honest about what the tool costs and so re-sync workloads
// can be studied (see the ablation benchmarks).
package rsyncx

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"fmt"
)

// DefaultBlockSize is rsync's traditional block size heuristic floor.
const DefaultBlockSize = 2048

// weakMod is the modulus of the rolling checksum (rsync uses 1<<16).
const weakMod = 1 << 16

// WeakSum is the Adler-style rolling checksum of a block.
type WeakSum uint32

// weak computes the rolling checksum of p from scratch.
func weak(p []byte) WeakSum {
	var a, b uint32
	n := len(p)
	for i, c := range p {
		a += uint32(c)
		b += uint32(n-i) * uint32(c)
	}
	return WeakSum((a % weakMod) | ((b % weakMod) << 16))
}

// roll slides the checksum one byte for a window of n bytes: out leaves
// on the left, in enters on the right. With a(k) = Σ p[k+i] and
// b(k) = Σ (n-i)·p[k+i], the recurrences are a' = a - out + in and
// b' = b - n·out + a'.
func roll(s WeakSum, out, in byte, n int) WeakSum {
	a := uint32(s) & 0xffff
	b := uint32(s) >> 16
	a = (a + weakMod - uint32(out)%weakMod + uint32(in)) % weakMod
	nOut := (uint32(n) % weakMod) * uint32(out) % weakMod
	b = (b + weakMod - nOut + a) % weakMod
	return WeakSum(a | (b << 16))
}

// StrongSum is the collision-resistant block digest.
type StrongSum [md5.Size]byte

func strong(p []byte) StrongSum { return md5.Sum(p) }

// BlockSig is one block's signature.
type BlockSig struct {
	Index  int
	Weak   WeakSum
	Strong StrongSum
	Len    int
}

// Signature describes a basis file as block signatures.
type Signature struct {
	BlockSize int
	Blocks    []BlockSig
	TotalLen  int
}

// WireSize returns the bytes a signature occupies on the wire
// (4B weak + 16B strong + 4B len per block, plus a small header).
func (s *Signature) WireSize() float64 {
	return 16 + float64(len(s.Blocks))*24
}

// Sign computes the signature of basis with the given block size
// (DefaultBlockSize if <= 0).
func Sign(basis []byte, blockSize int) *Signature {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	sig := &Signature{BlockSize: blockSize, TotalLen: len(basis)}
	for i := 0; i < len(basis); i += blockSize {
		end := i + blockSize
		if end > len(basis) {
			end = len(basis)
		}
		blk := basis[i:end]
		sig.Blocks = append(sig.Blocks, BlockSig{
			Index:  len(sig.Blocks),
			Weak:   weak(blk),
			Strong: strong(blk),
			Len:    len(blk),
		})
	}
	return sig
}

// OpKind tags a delta operation.
type OpKind byte

const (
	// OpCopy references a block of the basis file.
	OpCopy OpKind = iota
	// OpData carries literal bytes.
	OpData
)

// Op is one delta operation.
type Op struct {
	Kind  OpKind
	Index int    // OpCopy: basis block index
	Data  []byte // OpData: literal bytes
}

// Delta is the instruction stream that rebuilds the target from the
// basis.
type Delta struct {
	BlockSize int
	Ops       []Op
	TargetLen int
}

// WireSize returns the delta's on-the-wire size: literals dominate;
// copies cost 8 bytes each.
func (d *Delta) WireSize() float64 {
	n := 16.0
	for _, op := range d.Ops {
		if op.Kind == OpCopy {
			n += 8
		} else {
			n += 4 + float64(len(op.Data))
		}
	}
	return n
}

// LiteralBytes returns how many literal bytes the delta carries.
func (d *Delta) LiteralBytes() int {
	var n int
	for _, op := range d.Ops {
		if op.Kind == OpData {
			n += len(op.Data)
		}
	}
	return n
}

// ComputeDelta matches target against the basis signature and produces a
// delta, using the rolling checksum to find block alignments at any
// offset (the heart of rsync).
func ComputeDelta(sig *Signature, target []byte) *Delta {
	bs := sig.BlockSize
	d := &Delta{BlockSize: bs, TargetLen: len(target)}

	// Index weak sums -> candidate blocks.
	byWeak := make(map[WeakSum][]*BlockSig, len(sig.Blocks))
	for i := range sig.Blocks {
		b := &sig.Blocks[i]
		if b.Len == bs { // only full blocks are matchable mid-stream
			byWeak[b.Weak] = append(byWeak[b.Weak], b)
		}
	}

	var lit []byte
	flush := func() {
		if len(lit) > 0 {
			d.Ops = append(d.Ops, Op{Kind: OpData, Data: append([]byte(nil), lit...)})
			lit = lit[:0]
		}
	}

	i := 0
	var w WeakSum
	fresh := true
	for i+bs <= len(target) {
		if fresh {
			w = weak(target[i : i+bs])
			fresh = false
		}
		matched := false
		if cands, ok := byWeak[w]; ok {
			s := strong(target[i : i+bs])
			for _, c := range cands {
				if c.Strong == s {
					flush()
					d.Ops = append(d.Ops, Op{Kind: OpCopy, Index: c.Index})
					i += bs
					fresh = true
					matched = true
					break
				}
			}
		}
		if !matched {
			lit = append(lit, target[i])
			if i+bs < len(target) {
				w = roll(w, target[i], target[i+bs], bs)
			}
			i++
		}
	}
	lit = append(lit, target[i:]...)
	flush()

	// Tail: a final short basis block matching the target tail exactly.
	// (Handled implicitly above as literals; an optimization pass could
	// copy it, but literals keep the operation stream simple.)
	return d
}

// Apply rebuilds the target from the basis and a delta.
func Apply(basis []byte, d *Delta) ([]byte, error) {
	bs := d.BlockSize
	out := make([]byte, 0, d.TargetLen)
	for _, op := range d.Ops {
		switch op.Kind {
		case OpCopy:
			lo := op.Index * bs
			hi := lo + bs
			if lo < 0 || lo > len(basis) {
				return nil, fmt.Errorf("rsyncx: copy of block %d outside basis", op.Index)
			}
			if hi > len(basis) {
				hi = len(basis)
			}
			out = append(out, basis[lo:hi]...)
		case OpData:
			out = append(out, op.Data...)
		default:
			return nil, fmt.Errorf("rsyncx: unknown op kind %d", op.Kind)
		}
	}
	if len(out) != d.TargetLen {
		return nil, fmt.Errorf("rsyncx: rebuilt %d bytes, want %d", len(out), d.TargetLen)
	}
	return out, nil
}

// Checksum is a whole-file digest used for end-to-end verification.
func Checksum(p []byte) string {
	s := md5.Sum(p)
	return fmt.Sprintf("%x", s)
}

// ChecksumCat digests the concatenation of parts without copying them
// into one buffer — the digest a striped multipath transfer's chunks
// must reassemble to. ChecksumCat(a, b) == Checksum(append(a, b...)).
func ChecksumCat(parts ...[]byte) string {
	h := md5.New()
	for _, part := range parts {
		h.Write(part)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// encodeOpHeader is used by the wire format tests to pin layout.
func encodeOpHeader(op Op) []byte {
	var b [9]byte
	b[0] = byte(op.Kind)
	if op.Kind == OpCopy {
		binary.BigEndian.PutUint64(b[1:], uint64(op.Index))
	} else {
		binary.BigEndian.PutUint64(b[1:], uint64(len(op.Data)))
	}
	return b[:]
}

// equalData reports whether two byte slices match; split out for tests.
func equalData(a, b []byte) bool { return bytes.Equal(a, b) }
