// Fleet: the paper measures one client uploading one file at a time;
// this example replays a 600-job multi-tenant trace — three campuses,
// three providers, personal-cloud file sizes — through the scheduler
// control plane on the simulated topology. Probing is paid once per
// (client, provider, size-bucket) and amortized across the fleet by the
// route cache; per-provider and per-DTN caps keep the shared detour
// nodes from self-congesting.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"detournet/internal/scenario"
	"detournet/internal/sched"
	"detournet/internal/workload"
)

func main() {
	const nJobs = 600
	trace, err := workload.GenerateFleet(workload.FleetSpec{
		Jobs:    nJobs,
		Clients: scenario.Clients, // ubc-pl, purdue-pl, ucla-pl
		Providers: []string{
			scenario.GoogleDrive, scenario.Dropbox, scenario.OneDrive,
		},
	}, rand.New(rand.NewSource(2015)))
	if err != nil {
		panic(err)
	}

	w := scenario.Build(2015)
	exec := sched.NewSimExecutor(w)
	defer exec.Close()
	s := sched.New(sched.Config{
		Workers: 8, Executor: exec, Planner: exec,
		ProviderCap: 4, DTNCap: 2,
	})
	s.Start()
	defer s.Close()

	perClient := map[string]int{}
	for _, fj := range trace {
		perClient[fj.Client]++
		err := s.Submit(sched.Job{
			Tenant: fj.Tenant, Client: fj.Client, Provider: fj.Provider,
			Name: fj.Name, Size: fj.Size, Priority: fj.Priority,
		})
		if err != nil {
			panic(err)
		}
	}
	fmt.Printf("Fleet: %d jobs submitted across %d clients and 3 providers\n",
		len(trace), len(perClient))
	s.Drain()

	st := s.Stats()
	fmt.Printf("drained: %d done, %d failed (%d retries, %d detour->direct fallbacks)\n",
		st.Done, st.Failed, st.Retries, st.Fallbacks)
	clients := make([]string, 0, len(perClient))
	for c := range perClient {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		fmt.Printf("  %-12s %d jobs\n", c, perClient[c])
	}
	fmt.Printf("route cache: %.0f%% hit rate — %d probes served %d route decisions\n",
		st.CacheHitRate()*100, st.CacheMisses, st.CacheHits+st.CacheMisses)
	fmt.Printf("virtual transfer time: %.1f s across %d simulated uploads\n",
		exec.VirtualNow(), exec.Transfers)

	fmt.Println("per-route totals:")
	routes := make([]string, 0, len(st.PerRoute))
	for r := range st.PerRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		rs := st.PerRoute[r]
		fmt.Printf("  %-16s %4d jobs  %8.1f MB  %6.2f MB/s\n",
			r, rs.Jobs, rs.Bytes/1e6, rs.Throughput()/1e6)
	}

	fmt.Println("concurrency peaks (caps: provider 4, dtn 2):")
	provs := make([]string, 0, len(st.ProviderPeak))
	for p := range st.ProviderPeak {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		fmt.Printf("  provider %-12s peak %d\n", p, st.ProviderPeak[p])
	}
	dtns := make([]string, 0, len(st.DTNPeak))
	for d := range st.DTNPeak {
		dtns = append(dtns, d)
	}
	sort.Strings(dtns)
	for _, d := range dtns {
		fmt.Printf("  dtn      %-12s peak %d\n", d, st.DTNPeak[d])
	}
}
