GO ?= go

.PHONY: build test vet race bench check fleet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fleet:
	$(GO) run ./examples/fleet

# The gate PRs must pass: everything compiles, vets clean, and the full
# test suite (including the really-concurrent scheduler) is race-clean.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
