// Multipath job mode: stripe one upload across several concurrent
// routes. The scheduler owns admission — it acquires one capacity slot
// per lane (the provider slot plus, for detours, the DTN slot, exactly
// as K single-path jobs would) and sheds the extra lanes under brownout
// (a multipath job degrades to a plain single-path transfer rather than
// amplifying an overloaded fleet). The striping itself — the chunk
// ledger, work stealing, hedged tail re-dispatch, per-path checkpoints
// — lives in internal/multipath behind the MultipathExecutor seam.
package sched

import (
	"detournet/internal/core"
	"detournet/internal/multipath"
)

// JobMode selects a job's transfer strategy.
type JobMode int

const (
	// JobSingle runs the job over one chosen route (the default).
	JobSingle JobMode = iota
	// JobMultipath stripes the job across direct + detour routes
	// concurrently when the Executor implements MultipathExecutor.
	JobMultipath
)

// MultipathExecutor is an Executor that can stripe one job across
// several routes at once. Routes are the lanes to drive concurrently
// (the scheduler has already taken a capacity slot for each); the
// returned report carries per-path chunk assignment and accounting.
type MultipathExecutor interface {
	Executor
	ExecuteMultipath(job Job, routes []core.Route, chunk float64) (multipath.Report, error)
}

// runMultipath runs one striped attempt. done=false means the caller
// should fall back to the single-path flow: brownout is shedding
// optional work, the executor can't stripe, no second lane exists, or
// the striped attempt itself failed (the job's data is intact — parts
// are separate objects — so a plain retry is safe).
func (s *Scheduler) runMultipath(j Job, key CacheKey, route core.Route, hit bool) (Result, bool) {
	mx, ok := s.cfg.Executor.(MultipathExecutor)
	if !ok || s.brownoutActive() {
		return Result{}, false
	}
	routes := s.multipathRoutes(key, j, route)
	if len(routes) < 2 {
		return Result{}, false
	}
	// One capacity slot per lane, all taken in a single atomic,
	// non-blocking step: a per-lane blocking loop would hold earlier
	// slots while waiting on later ones, deadlocking two striped jobs
	// against each other (or one job against a ProviderCap below its
	// lane count). Lanes that don't fit right now are simply dropped;
	// fewer than two means striping is pointless, so degrade to the
	// single-path flow, which queues fairly like any other job.
	vias := make([]string, len(routes))
	for i, r := range routes {
		vias[i] = r.Via
	}
	idx := s.caps.tryAcquireLanes(j.Provider, vias)
	if len(idx) < 2 {
		for _, i := range idx {
			s.caps.release(j.Provider, routes[i].Via)
		}
		return Result{}, false
	}
	lanes := make([]core.Route, len(idx))
	for n, i := range idx {
		lanes[n] = routes[i]
	}
	rep, err := mx.ExecuteMultipath(j, lanes, s.cfg.MultipathChunk)
	for _, r := range lanes {
		s.caps.release(j.Provider, r.Via)
	}
	if err != nil {
		s.breakers.failure(breakerKey(j.Provider, route))
		return Result{}, false
	}
	var resumed, rewritten float64
	for _, pr := range rep.Paths {
		resumed += pr.Resumed
		rewritten += pr.Rewritten
	}
	s.mu.Lock()
	s.mpJobs++
	s.mpHedged += int64(rep.HedgedChunks)
	s.mpResent += int64(rep.ResentChunks)
	s.mpDuplicateBytes += rep.DuplicateBytes
	s.bytesResumed += resumed
	s.bytesRewritten += rewritten
	s.mu.Unlock()
	s.breakers.success(providerKey(j.Provider))
	if s.cfg.Journal != nil {
		// Journal the lane outcome: which routes carried how many stripe
		// chunks. Observational — a recovered multipath job re-stripes
		// from scratch (stripe parts are provider-side objects) — but the
		// record makes the dead process's lane state auditable.
		paths := make([]string, len(rep.Paths))
		chunks := make([]int, len(rep.Paths))
		for i, pr := range rep.Paths {
			paths[i] = pr.Route
			chunks[i] = len(pr.Chunks)
		}
		s.cfg.Journal.NoteLanes(j.Name, paths, chunks)
	}
	if !s.brownoutActive() {
		// Feed the bandit per lane: each lane's committed bytes over its
		// own busy time is a genuine (if contended, conservative)
		// observation of that route. Crediting the striped aggregate to
		// the primary route would teach the cache a multi-lane rate no
		// single path can deliver and skew later single-path selection.
		for _, pr := range rep.Paths {
			if pr.ID < 0 || pr.ID >= len(lanes) || pr.Bytes <= 0 || pr.Seconds <= 0 {
				continue
			}
			s.cache.Observe(key, lanes[pr.ID], pr.Bytes, pr.Seconds)
		}
	}
	return Result{
		Job: j, Route: route, Seconds: rep.Seconds, Attempts: 1,
		CacheHit: hit, Resumed: resumed, Rewritten: rewritten,
		Multipath: &rep,
	}, true
}

// multipathRoutes assembles the job's lane set: direct first (it is
// always a lane — the paper's capped-last-mile sites lose nothing, and
// everyone else gains its capacity), then the planned route and the
// cache's detour candidates, deduplicated, capped at the job's or the
// config's path limit.
func (s *Scheduler) multipathRoutes(key CacheKey, j Job, primary core.Route) []core.Route {
	maxPaths := j.MaxPaths
	if maxPaths <= 0 {
		maxPaths = s.cfg.MultipathMaxPaths
	}
	// A striped job can never hold more provider slots than the cap —
	// asking for more would just burn admission attempts.
	if s.cfg.ProviderCap > 0 && maxPaths > s.cfg.ProviderCap {
		maxPaths = s.cfg.ProviderCap
	}
	routes := []core.Route{core.DirectRoute}
	add := func(r core.Route) {
		if r.Kind != core.Detour || len(routes) >= maxPaths {
			return
		}
		if s.cfg.Capacity != nil && s.capacityWeight(r) <= capWeightCritical {
			// A critically full DTN is no lane at all: its staging disk
			// would nack the stripe's hop-1 bytes on arrival.
			return
		}
		for _, have := range routes {
			if have == r {
				return
			}
		}
		routes = append(routes, r)
	}
	add(primary)
	for _, c := range s.cache.Candidates(key) {
		add(c)
	}
	if s.cfg.Capacity != nil && len(routes) > 2 {
		// Graceful degradation under storage pressure: when any chosen
		// lane's DTN is inside the discounted headroom band, stripe over
		// two lanes instead of rejecting (or draining the fleet's last
		// staging bytes across a wide stripe).
		pressured := false
		for _, r := range routes {
			if s.capacityWeight(r) < 1 {
				pressured = true
				break
			}
		}
		if pressured {
			routes = routes[:2]
		}
	}
	return routes
}
